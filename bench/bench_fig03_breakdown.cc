// Reproduces Figure 3: runtime breakdown (read base tables / compute joins
// / write final output) of a CTAS joining four tables (the TPC-H Q8 join
// of customer, orders, lineitem, nation in the paper) across data scales.
//
// The paper ran this on an anonymous vendor-managed cloud warehouse that
// scales out with data size; we model that elasticity with a per-scale I/O
// parallelism factor, keeping the per-table commit overhead fixed. The
// claim being reproduced: writing the joined result into persistent
// storage takes 37%-69% of each statement's runtime, with the share
// highest at small scales (overhead-dominated) and falling as bandwidth
// terms take over.
#include "bench_util.h"

int main() {
  using namespace sc;
  bench::Banner(
      "Figure 3: runtime breakdown of a 4-table join CTAS",
      "write (serialize/compress/persist) takes 37%-69% of total runtime "
      "from 1GB to 1000GB (paper totals: 5.4s / 14s / 52s / 560s)");

  cost::DeviceProfile profile = cost::DeviceProfile::PaperTestbed();
  profile.table_write_overhead = 3.0;  // CTAS commit into the warehouse
  profile.table_read_overhead = 0.1;   // warm catalog metadata
  const cost::CostModel model{profile};

  TablePrinter table({"Data size", "Read (s)", "Compute (s)", "Write (s)",
                      "Total (s)", "Write share", "Paper write share",
                      "Paper total"});
  // The join scans ~25% of the dataset (columnar projection of the four
  // tables) and emits ~17%; the warehouse's worker pool grows with scale.
  const double scales_gb[] = {1, 10, 100, 1000};
  // Reads scale out with the worker pool; writes scale out more slowly
  // (coordinator commit + compression bottlenecks).
  const double read_parallelism[] = {1.0, 2.5, 6.0, 12.0};
  const double write_parallelism[] = {1.0, 1.6, 3.0, 5.0};
  const double compute_s[] = {1.0, 3.0, 11.0, 95.0};
  const double paper_share[] = {0.69, 0.60, 0.49, 0.37};
  const double paper_total[] = {5.4, 14.0, 52.0, 560.0};
  for (int i = 0; i < 4; ++i) {
    const double gb = scales_gb[i];
    const auto in_bytes =
        static_cast<std::int64_t>(gb * 0.25 * kGB / read_parallelism[i]);
    const auto out_bytes =
        static_cast<std::int64_t>(gb * 0.17 * kGB / write_parallelism[i]);
    const double read = model.DiskReadSeconds(in_bytes, /*files=*/4.0);
    const double compute = compute_s[i];
    const double write = model.DiskWriteSeconds(out_bytes);
    const double total = read + compute + write;
    table.AddRow({StrFormat("%.0fGB", gb), StrFormat("%.1f", read),
                  StrFormat("%.1f", compute), StrFormat("%.1f", write),
                  StrFormat("%.1f", total),
                  StrFormat("%.0f%%", 100.0 * write / total),
                  StrFormat("%.0f%%", 100.0 * paper_share[i]),
                  StrFormat("%.1fs", paper_total[i])});
  }
  table.Print(std::cout);
  return 0;
}
