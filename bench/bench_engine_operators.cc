// Engine-operator microbench: filter / project / hash join / hash
// aggregate / sort at 10^4..10^6 rows, vectorized engine
// (engine/operators.h) vs the retained row-at-a-time scalar reference
// (engine/scalar_reference.h). Reports million input rows per second per
// path and the speedup; emits JSON (stdout and a file).
//
//   $ ./bench/bench_engine_operators [--smoke] [--out FILE] [--floor FILE]
//
// --smoke caps the sweep at 10^5 rows for CI. --floor reads a committed
// JSON of baseline throughputs (bench/engine_bench_floor.json) and exits
// non-zero if the vectorized hash join or hash aggregate at the largest
// benchmarked size runs below 70% of its baseline — the CI guard against
// >30% regressions of the two hottest operators.
#include <algorithm>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "engine/morsel.h"
#include "engine/operators.h"
#include "engine/scalar_reference.h"
#include "runtime/lane_pool.h"
#include "runtime/morsel.h"

namespace sc::bench {
namespace {

using engine::AggSpec;
using engine::Col;
using engine::Column;
using engine::DataType;
using engine::Field;
using engine::Lit;
using engine::Schema;
using engine::Table;

/// Mixed-type table: sequential id, skewed int join/group key, values,
/// and a low-cardinality string key.
Table MakeTable(Rng* rng, std::size_t rows, std::size_t key_range) {
  std::vector<std::int64_t> id(rows);
  std::vector<std::int64_t> key(rows);
  std::vector<double> val(rows);
  std::vector<std::string> cat(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    id[r] = static_cast<std::int64_t>(r);
    key[r] = rng->UniformInt(
        0, static_cast<std::int64_t>(key_range) - 1);
    val[r] = rng->UniformDouble(0.0, 100.0);
    cat[r] = "cat_" + std::to_string(key[r]);
  }
  return Table(Schema({Field{"id", DataType::kInt64},
                       Field{"key", DataType::kInt64},
                       Field{"val", DataType::kFloat64},
                       Field{"cat", DataType::kString}}),
               {Column::FromInts(std::move(id)),
                Column::FromInts(std::move(key)),
                Column::FromDoubles(std::move(val)),
                Column::FromStrings(std::move(cat))});
}

struct OpSample {
  std::string op;
  std::size_t rows = 0;
  double scalar_mrows = 0.0;      // million input rows / second
  double vectorized_mrows = 0.0;
  double speedup = 0.0;
};

double BestOfSeconds(int reps, const std::function<void()>& fn) {
  double best = 0.0;
  for (int i = 0; i < reps; ++i) {
    WallTimer timer;
    fn();
    const double s = timer.Seconds();
    if (best == 0.0 || s < best) best = s;
  }
  return best;
}

/// Reads `"key":<number>` out of a flat JSON file (no external JSON
/// dependency; the floor file is committed and tiny).
bool ParseJsonNumber(const std::string& text, const std::string& key,
                     double* out) {
  const std::string needle = "\"" + key + "\"";
  const std::size_t at = text.find(needle);
  if (at == std::string::npos) return false;
  const std::size_t colon = text.find(':', at + needle.size());
  if (colon == std::string::npos) return false;
  *out = std::strtod(text.c_str() + colon + 1, nullptr);
  return true;
}

int Main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_engine_operators.json";
  std::string floor_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--floor") == 0 && i + 1 < argc) {
      floor_path = argv[++i];
    } else {
      std::cerr << "usage: " << argv[0]
                << " [--smoke] [--out FILE] [--floor FILE]\n";
      return 2;
    }
  }

  Banner("Vectorized operators vs scalar reference",
         "engine hot path: typed FNV hash keys, selection-vector "
         "filtering, batch gather, vectorized expressions (no paper "
         "counterpart; MonetDB/X100-style execution)");

  const std::vector<std::size_t> row_sweep =
      smoke ? std::vector<std::size_t>{10'000, 100'000}
            : std::vector<std::size_t>{10'000, 100'000, 1'000'000};
  const int reps = smoke ? 2 : 3;

  const auto filter_pred =
      engine::And(engine::Gt(Col("val"), Lit(25.0)),
                  engine::Ne(engine::Mod(Col("key"), Lit(std::int64_t{7})),
                             Lit(std::int64_t{0})));
  const std::vector<engine::NamedExpr> projections = {
      {"id", Col("id")},
      {"scaled", engine::Mul(engine::Add(Col("val"), Lit(1.5)),
                             Lit(0.25))},
      {"bucket", engine::Mod(engine::Add(Col("key"), Col("id")),
                             Lit(std::int64_t{1024}))},
  };
  const std::vector<AggSpec> aggregates = {
      engine::SumOf(Col("val"), "sum_val"),
      engine::CountAll("cnt"),
      engine::AvgOf(Col("val"), "avg_val"),
      engine::MaxOf(Col("id"), "max_id"),
  };

  std::vector<OpSample> samples;
  TablePrinter table({"operator", "rows", "scalar Mrows/s",
                      "vectorized Mrows/s", "speedup"});
  std::size_t sink = 0;  // defeat dead-code elimination
  for (const std::size_t rows : row_sweep) {
    Rng rng(271828);
    const Table input = MakeTable(&rng, rows, rows / 8 + 1);
    const Table build = MakeTable(&rng, rows / 4 + 1, rows / 8 + 1);

    struct Variant {
      std::string name;
      std::function<Table()> scalar;
      std::function<Table()> vectorized;
    };
    const std::vector<Variant> variants = {
        {"filter",
         [&] { return engine::scalar::FilterTableScalar(input,
                                                        *filter_pred); },
         [&] { return engine::FilterTable(input, *filter_pred); }},
        {"project",
         [&] {
           return engine::scalar::ProjectTableScalar(input, projections);
         },
         [&] { return engine::ProjectTable(input, projections); }},
        {"hash_join_int",
         [&] {
           return engine::scalar::HashJoinTablesScalar(input, build,
                                                       {"key"}, {"key"});
         },
         [&] {
           return engine::HashJoinTables(input, build, {"key"}, {"key"});
         }},
        {"hash_join_string",
         [&] {
           return engine::scalar::HashJoinTablesScalar(input, build,
                                                       {"cat"}, {"cat"});
         },
         [&] {
           return engine::HashJoinTables(input, build, {"cat"}, {"cat"});
         }},
        {"hash_aggregate_int",
         [&] {
           return engine::scalar::AggregateTableScalar(input, {"key"},
                                                       aggregates);
         },
         [&] { return engine::AggregateTable(input, {"key"}, aggregates); }},
        {"hash_aggregate_string",
         [&] {
           return engine::scalar::AggregateTableScalar(input, {"cat"},
                                                       aggregates);
         },
         [&] { return engine::AggregateTable(input, {"cat"}, aggregates); }},
        {"sort",
         [&] {
           return engine::scalar::SortTableScalar(input, {"key", "val"},
                                                  {false, true});
         },
         [&] {
           return engine::SortTable(input, {"key", "val"}, {false, true});
         }},
    };

    for (const Variant& v : variants) {
      // Correctness cross-check before timing: the two paths must agree
      // bit-for-bit on the bench inputs too.
      if (!(v.scalar() == v.vectorized())) {
        std::cerr << "MISMATCH between scalar and vectorized " << v.name
                  << " at " << rows << " rows\n";
        return 1;
      }
      const double scalar_s =
          BestOfSeconds(reps, [&] { sink += v.scalar().num_rows(); });
      const double vector_s =
          BestOfSeconds(reps, [&] { sink += v.vectorized().num_rows(); });
      OpSample s;
      s.op = v.name;
      s.rows = rows;
      s.scalar_mrows = static_cast<double>(rows) / scalar_s / 1e6;
      s.vectorized_mrows = static_cast<double>(rows) / vector_s / 1e6;
      s.speedup = scalar_s / vector_s;
      samples.push_back(s);
      table.AddRow({s.op, std::to_string(rows),
                    StrFormat("%.2f", s.scalar_mrows),
                    StrFormat("%.2f", s.vectorized_mrows),
                    StrFormat("%.2fx", s.speedup)});
    }
  }
  table.Print(std::cout);
  if (sink == 0) std::cout << " ";  // keep `sink` observable

  // -------------------------------------------------------------------
  // Morsel lane scaling: the same wide hash join / hash aggregate run
  // under a MorselScope at 1/2/4/8 morsels, fanning interior build,
  // probe, and partial-aggregate passes across a LanePool via
  // runtime::LaneMorselRunner — exactly the path the stage runtime
  // installs around a node. Speedup is relative to the 1-morsel run of
  // the same binary (1 morsel takes the sequential code path).
  // -------------------------------------------------------------------
  Banner("Morsel lane scaling (intra-operator parallelism)",
         "partitioned hash build/probe and partial-aggregate merge on "
         "the LanePool; bit-identity vs scalar reference checked before "
         "timing");
  struct MorselSample {
    std::string op;
    std::size_t rows = 0;
    int morsels = 0;
    double mrows = 0.0;
    double speedup = 0.0;  // vs the 1-morsel run
  };
  std::vector<MorselSample> morsel_samples;
  {
    const std::size_t rows = smoke ? 100'000 : 1'000'000;
    Rng rng(314159);
    const Table input = MakeTable(&rng, rows, rows / 8 + 1);
    const Table build = MakeTable(&rng, rows / 4 + 1, rows / 8 + 1);
    runtime::LanePool pool(8);

    struct MorselVariant {
      std::string name;
      std::function<Table()> run;
      std::function<Table()> reference;
    };
    const std::vector<MorselVariant> mvariants = {
        {"morsel_hash_join",
         [&] { return engine::HashJoinTables(input, build, {"key"},
                                             {"key"}); },
         [&] {
           return engine::scalar::HashJoinTablesScalar(input, build,
                                                       {"key"}, {"key"});
         }},
        {"morsel_hash_aggregate",
         [&] { return engine::AggregateTable(input, {"key"}, aggregates); },
         [&] {
           return engine::scalar::AggregateTableScalar(input, {"key"},
                                                       aggregates);
         }},
    };
    TablePrinter mtable({"operator", "rows", "morsels", "Mrows/s",
                         "speedup vs 1"});
    for (const MorselVariant& v : mvariants) {
      const Table ref = v.reference();
      double one_morsel_s = 0.0;
      for (const int morsels : {1, 2, 4, 8}) {
        engine::MorselRunner* runner_ptr = nullptr;
        runtime::LaneMorselRunner runner(&pool, /*trace=*/nullptr,
                                         /*trace_job_id=*/0, v.name,
                                         /*task_counter=*/nullptr);
        if (morsels > 1) runner_ptr = &runner;
        engine::MorselContext context(runner_ptr, morsels,
                                      /*min_morsel_rows=*/1);
        engine::MorselScope scope(&context);
        if (!(v.run() == ref)) {
          std::cerr << "MISMATCH vs scalar reference for " << v.name
                    << " at " << morsels << " morsels\n";
          return 1;
        }
        const double s =
            BestOfSeconds(reps, [&] { sink += v.run().num_rows(); });
        if (morsels == 1) one_morsel_s = s;
        MorselSample m;
        m.op = v.name;
        m.rows = rows;
        m.morsels = morsels;
        m.mrows = static_cast<double>(rows) / s / 1e6;
        m.speedup = one_morsel_s / s;
        morsel_samples.push_back(m);
        mtable.AddRow({m.op, std::to_string(rows),
                       std::to_string(morsels),
                       StrFormat("%.2f", m.mrows),
                       StrFormat("%.2fx", m.speedup)});
      }
    }
    mtable.Print(std::cout);
    if (sink == 0) std::cout << " ";
  }

  // -------------------------------------------------------------------
  // Dictionary-encoded string keys: hash join and hash aggregate on a
  // low-cardinality (<= 1k distinct) long-string key, plain string
  // columns vs shared-dictionary columns. With one dictionary object on
  // both sides the engine hashes and compares int32 codes instead of
  // strings — the compressed-residency fast path. Bit-identity between
  // the two representations is checked before timing.
  // -------------------------------------------------------------------
  Banner("Dictionary-encoded string keys (compressed residency)",
         "shared-dictionary int32 code path vs plain std::string hashing "
         "for hash join / hash aggregate at <= 1k distinct keys");
  struct DictSample {
    std::string op;
    std::size_t rows = 0;
    std::size_t distinct = 0;
    double plain_mrows = 0.0;
    double dict_mrows = 0.0;
    double speedup = 0.0;  // plain seconds / dict seconds
  };
  std::vector<DictSample> dict_samples;
  {
    const std::size_t distinct = 1'000;
    // Long (non-SSO) category names; zero-padding keeps lexicographic
    // order equal to numeric order, so code i == name index i.
    std::vector<std::string> names(distinct);
    for (std::size_t i = 0; i < distinct; ++i) {
      std::string digits = std::to_string(i);
      names[i] = "warehouse_category_" +
                 std::string(6 - digits.size(), '0') + digits;
    }
    const Column::DictionaryPtr dict =
        Column::MakeDictionary(std::vector<std::string>(names));

    const auto make_pair = [&](Rng* rng, std::size_t rows)
        -> std::pair<Table, Table> {  // {plain, dict-encoded twin}
      std::vector<std::int64_t> id(rows);
      std::vector<double> val(rows);
      std::vector<std::int32_t> codes(rows);
      std::vector<std::string> cat(rows);
      for (std::size_t r = 0; r < rows; ++r) {
        id[r] = static_cast<std::int64_t>(r);
        val[r] = rng->UniformDouble(0.0, 100.0);
        codes[r] = static_cast<std::int32_t>(
            rng->UniformInt(0, static_cast<std::int64_t>(distinct) - 1));
        cat[r] = names[static_cast<std::size_t>(codes[r])];
      }
      const Schema schema({Field{"id", DataType::kInt64},
                           Field{"val", DataType::kFloat64},
                           Field{"cat", DataType::kString}});
      Table plain(schema, {Column::FromInts(std::vector<std::int64_t>(id)),
                           Column::FromDoubles(std::vector<double>(val)),
                           Column::FromStrings(std::move(cat))});
      Table encoded(schema,
                    {Column::FromInts(std::move(id)),
                     Column::FromDoubles(std::move(val)),
                     Column::FromDictionary(dict, std::move(codes))});
      return {std::move(plain), std::move(encoded)};
    };

    TablePrinter dtable({"operator", "rows", "distinct", "plain Mrows/s",
                         "dict Mrows/s", "speedup"});
    for (const std::size_t rows : row_sweep) {
      if (rows < 100'000) continue;  // the acceptance range is 1e5..1e6
      Rng rng(161803);
      const auto [probe_plain, probe_dict] = make_pair(&rng, rows);
      // Dimension-shaped build side (~1 row per key): the join output
      // stays ~`rows` rows instead of fanning out by rows/distinct.
      const auto [build_plain, build_dict] = make_pair(&rng, distinct);

      struct DictVariant {
        std::string name;
        std::function<Table()> plain;
        std::function<Table()> dict;
      };
      const std::vector<DictVariant> dvariants = {
          {"dict_hash_join",
           [&] {
             return engine::HashJoinTables(probe_plain, build_plain,
                                           {"cat"}, {"cat"});
           },
           [&] {
             return engine::HashJoinTables(probe_dict, build_dict,
                                           {"cat"}, {"cat"});
           }},
          {"dict_hash_aggregate",
           [&] {
             return engine::AggregateTable(probe_plain, {"cat"},
                                           aggregates);
           },
           [&] {
             return engine::AggregateTable(probe_dict, {"cat"},
                                           aggregates);
           }},
      };
      for (const DictVariant& v : dvariants) {
        if (!(v.plain() == v.dict())) {
          std::cerr << "MISMATCH between plain and dictionary " << v.name
                    << " at " << rows << " rows\n";
          return 1;
        }
        const double plain_s =
            BestOfSeconds(reps, [&] { sink += v.plain().num_rows(); });
        const double dict_s =
            BestOfSeconds(reps, [&] { sink += v.dict().num_rows(); });
        DictSample d;
        d.op = v.name;
        d.rows = rows;
        d.distinct = distinct;
        d.plain_mrows = static_cast<double>(rows) / plain_s / 1e6;
        d.dict_mrows = static_cast<double>(rows) / dict_s / 1e6;
        d.speedup = plain_s / dict_s;
        dict_samples.push_back(d);
        dtable.AddRow({d.op, std::to_string(rows),
                       std::to_string(distinct),
                       StrFormat("%.2f", d.plain_mrows),
                       StrFormat("%.2f", d.dict_mrows),
                       StrFormat("%.2fx", d.speedup)});
      }
    }
    dtable.Print(std::cout);
    if (sink == 0) std::cout << " ";
  }

  std::ostringstream json;
  json << "{\"bench\":\"engine_operators\",\"samples\":[";
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const OpSample& s = samples[i];
    if (i > 0) json << ",";
    json << StrFormat(
        "{\"op\":\"%s\",\"rows\":%zu,\"scalar_mrows_per_sec\":%.3f,"
        "\"vectorized_mrows_per_sec\":%.3f,\"speedup\":%.3f}",
        s.op.c_str(), s.rows, s.scalar_mrows, s.vectorized_mrows,
        s.speedup);
  }
  json << "],\"morsels\":[";
  for (std::size_t i = 0; i < morsel_samples.size(); ++i) {
    const MorselSample& m = morsel_samples[i];
    if (i > 0) json << ",";
    json << StrFormat(
        "{\"op\":\"%s\",\"rows\":%zu,\"morsels\":%d,"
        "\"mrows_per_sec\":%.3f,\"speedup_vs_1\":%.3f}",
        m.op.c_str(), m.rows, m.morsels, m.mrows, m.speedup);
  }
  json << "],\"dictionary\":[";
  for (std::size_t i = 0; i < dict_samples.size(); ++i) {
    const DictSample& d = dict_samples[i];
    if (i > 0) json << ",";
    json << StrFormat(
        "{\"op\":\"%s\",\"rows\":%zu,\"distinct\":%zu,"
        "\"plain_mrows_per_sec\":%.3f,\"dict_mrows_per_sec\":%.3f,"
        "\"speedup\":%.3f}",
        d.op.c_str(), d.rows, d.distinct, d.plain_mrows, d.dict_mrows,
        d.speedup);
  }
  json << "]}";
  std::cout << "\n" << json.str() << "\n";
  std::ofstream(out_path) << json.str() << "\n";

  if (!floor_path.empty()) {
    std::ifstream in(floor_path);
    if (!in) {
      std::cerr << "cannot read floor file " << floor_path << "\n";
      return 1;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    const std::string text = buffer.str();
    bool ok = true;
    for (const std::string op : {"hash_join_int", "hash_aggregate_int"}) {
      double baseline = 0.0;
      if (!ParseJsonNumber(text, op + "_mrows_per_sec", &baseline)) {
        std::cerr << "floor file missing " << op << "_mrows_per_sec\n";
        ok = false;
        continue;
      }
      // Largest benchmarked size for this op.
      double measured = 0.0;
      for (const OpSample& s : samples) {
        if (s.op == op) measured = s.vectorized_mrows;  // last = largest
      }
      const double floor = 0.7 * baseline;
      std::cout << StrFormat(
          "floor check %s: measured %.2f Mrows/s vs floor %.2f (baseline "
          "%.2f - 30%%): %s\n",
          op.c_str(), measured, floor, baseline,
          measured >= floor ? "ok" : "REGRESSION");
      if (measured < floor) ok = false;
    }
    // Morsel scaling floor: the 4-morsel speedup over the 1-morsel run
    // must stay above 0.7 x the committed baseline. The baseline is set
    // conservatively (CI runners may have fewer cores than lanes) so
    // this catches fan-out turning into a slowdown, not tuning noise.
    for (const std::string op :
         {"morsel_hash_join", "morsel_hash_aggregate"}) {
      double baseline = 0.0;
      if (!ParseJsonNumber(text, op + "_speedup_4", &baseline)) {
        std::cerr << "floor file missing " << op << "_speedup_4\n";
        ok = false;
        continue;
      }
      double measured = 0.0;
      for (const MorselSample& m : morsel_samples) {
        if (m.op == op && m.morsels == 4) measured = m.speedup;
      }
      const double floor = 0.7 * baseline;
      std::cout << StrFormat(
          "floor check %s: 4-morsel speedup %.2fx vs floor %.2fx "
          "(baseline %.2fx - 30%%): %s\n",
          op.c_str(), measured, floor, baseline,
          measured >= floor ? "ok" : "REGRESSION");
      if (measured < floor) ok = false;
    }
    // Dictionary code-path floor: the shared-dict join/aggregate speedup
    // over the plain string path at the largest size must stay above
    // 0.7 x the committed baseline AND above the 2x acceptance bar for
    // low-cardinality keys — the compressed-residency fast path must
    // never quietly decay into string hashing.
    for (const std::string op : {"dict_hash_join", "dict_hash_aggregate"}) {
      double baseline = 0.0;
      if (!ParseJsonNumber(text, op + "_speedup", &baseline)) {
        std::cerr << "floor file missing " << op << "_speedup\n";
        ok = false;
        continue;
      }
      double measured = 0.0;
      for (const DictSample& d : dict_samples) {
        if (d.op == op) measured = d.speedup;  // last = largest
      }
      const double floor = std::max(0.7 * baseline, 2.0);
      std::cout << StrFormat(
          "floor check %s: dict speedup %.2fx vs floor %.2fx (baseline "
          "%.2fx - 30%%, min 2x): %s\n",
          op.c_str(), measured, floor, baseline,
          measured >= floor ? "ok" : "REGRESSION");
      if (measured < floor) ok = false;
    }
    if (!ok) return 1;
  }
  return 0;
}

}  // namespace
}  // namespace sc::bench

int main(int argc, char** argv) { return sc::bench::Main(argc, argv); }
