// Micro-benchmarks (google-benchmark) of S/C's hot components: constraint
// construction, the MKP branch-and-bound, MA-DFS, full alternating
// optimization, memory accounting, and the engine's core operators.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "engine/operators.h"
#include "opt/alternating.h"
#include "opt/constraints.h"
#include "opt/ma_dfs.h"
#include "opt/memory_usage.h"
#include "opt/mkp.h"
#include "workload/dag_gen.h"
#include "workload/scale_model.h"
#include "workload/workloads.h"

namespace {

using namespace sc;

graph::Graph BenchDag(std::int32_t nodes) {
  workload::DagGenOptions options;
  options.num_nodes = nodes;
  options.seed = 1234;
  return workload::GenerateDag(options);
}

constexpr std::int64_t kBudget = 1600LL * 1000 * 1000;

void BM_GetConstraints(benchmark::State& state) {
  const graph::Graph g = BenchDag(static_cast<std::int32_t>(state.range(0)));
  const graph::Order order = graph::KahnTopologicalOrder(g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(opt::GetConstraints(g, order, kBudget));
  }
}
BENCHMARK(BM_GetConstraints)->Arg(25)->Arg(50)->Arg(100);

void BM_SimplifiedMkp(benchmark::State& state) {
  const graph::Graph g = BenchDag(static_cast<std::int32_t>(state.range(0)));
  const graph::Order order = graph::KahnTopologicalOrder(g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(opt::SimplifiedMkp(g, order, kBudget));
  }
}
BENCHMARK(BM_SimplifiedMkp)->Arg(25)->Arg(50)->Arg(100);

void BM_MaDfs(benchmark::State& state) {
  const graph::Graph g = BenchDag(static_cast<std::int32_t>(state.range(0)));
  const graph::Order order = graph::KahnTopologicalOrder(g);
  const opt::FlagSet flags = opt::SimplifiedMkp(g, order, kBudget);
  for (auto _ : state) {
    benchmark::DoNotOptimize(opt::MaDfsOrder(g, flags));
  }
}
BENCHMARK(BM_MaDfs)->Arg(25)->Arg(50)->Arg(100);

void BM_AlternatingOptimize(benchmark::State& state) {
  const graph::Graph g = BenchDag(static_cast<std::int32_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(opt::AlternatingOptimize(g, kBudget));
  }
}
BENCHMARK(BM_AlternatingOptimize)->Arg(25)->Arg(50)->Arg(100);

void BM_PeakMemoryUsage(benchmark::State& state) {
  const graph::Graph g = BenchDag(static_cast<std::int32_t>(state.range(0)));
  const graph::Order order = graph::KahnTopologicalOrder(g);
  opt::FlagSet flags(g.num_nodes());
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) flags[v] = v % 2 == 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(opt::PeakMemoryUsage(g, order, flags));
  }
}
BENCHMARK(BM_PeakMemoryUsage)->Arg(100)->Arg(1000);

engine::Table RandomTable(std::size_t rows) {
  Rng rng(7);
  std::vector<std::int64_t> keys(rows), cats(rows);
  std::vector<double> values(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    keys[r] = rng.UniformInt(1, static_cast<std::int64_t>(rows) / 4 + 1);
    cats[r] = rng.UniformInt(1, 10);
    values[r] = rng.UniformDouble(0, 1000);
  }
  std::vector<engine::Column> cols;
  cols.push_back(engine::Column::FromInts(std::move(keys)));
  cols.push_back(engine::Column::FromInts(std::move(cats)));
  cols.push_back(engine::Column::FromDoubles(std::move(values)));
  return engine::Table(
      engine::Schema({engine::Field{"k", engine::DataType::kInt64},
                      engine::Field{"cat", engine::DataType::kInt64},
                      engine::Field{"v", engine::DataType::kFloat64}}),
      std::move(cols));
}

void BM_EngineFilter(benchmark::State& state) {
  const engine::Table t = RandomTable(
      static_cast<std::size_t>(state.range(0)));
  const auto predicate = engine::Gt(engine::Col("v"), engine::Lit(500.0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine::FilterTable(t, *predicate));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EngineFilter)->Arg(10000)->Arg(100000);

void BM_EngineHashJoin(benchmark::State& state) {
  const engine::Table left = RandomTable(
      static_cast<std::size_t>(state.range(0)));
  const engine::Table right = RandomTable(
      static_cast<std::size_t>(state.range(0)) / 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine::HashJoinTables(left, right, {"k"}, {"k"}));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EngineHashJoin)->Arg(10000)->Arg(50000);

void BM_EngineAggregate(benchmark::State& state) {
  const engine::Table t = RandomTable(
      static_cast<std::size_t>(state.range(0)));
  const std::vector<engine::AggSpec> aggs = {
      engine::SumOf(engine::Col("v"), "total"), engine::CountAll("n")};
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine::AggregateTable(t, {"cat"}, aggs));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EngineAggregate)->Arg(10000)->Arg(100000);

}  // namespace

BENCHMARK_MAIN();
