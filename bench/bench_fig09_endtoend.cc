// Reproduces Figure 9: end-to-end MV refresh times for the five workloads
// under No-opt / LRU / Random / Greedy / Ratio / S/C.
//   (a) 100GB TPC-DS with a 1.6GB Memory Catalog
//   (b) 100GB TPC-DSp (date-partitioned) with a 0.8GB Memory Catalog
#include "bench_util.h"

namespace {

void RunPanel(const char* title, bool partitioned, double budget_percent) {
  using namespace sc;
  const std::int64_t budget =
      workload::BudgetForPercent(100.0, budget_percent);
  std::cout << title << " (Memory Catalog "
            << FormatBytes(budget) << ")\n";
  std::vector<std::string> header = {"Workload"};
  for (const auto method : bench::AllMethods()) {
    header.push_back(bench::ToString(method));
  }
  header.push_back("S/C speedup");
  TablePrinter table(header);
  double noopt_total = 0;
  double sc_total = 0;
  for (int i = 0; i < 5; ++i) {
    const workload::MvWorkload wl =
        bench::AnnotatedWorkload(i, 100.0, partitioned);
    const sim::SimOptions options = bench::MakeSimOptions(budget);
    std::vector<std::string> row = {wl.name};
    double noopt = 0;
    double sc = 0;
    for (const auto method : bench::AllMethods()) {
      const double seconds =
          bench::EndToEndSeconds(method, wl.graph, budget, options);
      if (method == bench::Method::kNoOpt) noopt = seconds;
      if (method == bench::Method::kSc) sc = seconds;
      row.push_back(StrFormat("%.1fs", seconds));
    }
    row.push_back(StrFormat("%.2fx", noopt / sc));
    table.AddRow(std::move(row));
    noopt_total += noopt;
    sc_total += sc;
  }
  table.AddSeparator();
  table.AddRow({"TOTAL", "", "", "", "", "",
                StrFormat("%.1fs -> %.1fs", noopt_total, sc_total),
                StrFormat("%.2fx", noopt_total / sc_total)});
  table.Print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main() {
  sc::bench::Banner(
      "Figure 9: end-to-end MV refresh times (100GB)",
      "S/C achieves 1.04x-5.08x over unoptimized Presto with 1.6/0.8GB "
      "Memory Catalog; up to an extra 2.22x over off-the-shelf methods");
  RunPanel("(a) TPC-DS, 1.6GB Memory Catalog", /*partitioned=*/false, 1.6);
  RunPanel("(b) TPC-DSp, 0.8GB Memory Catalog", /*partitioned=*/true, 0.8);
  return 0;
}
