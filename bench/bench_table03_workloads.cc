// Reproduces Table III: summary of the five MV refresh workloads —
// originating TPC-DS queries, node counts, and the fraction of (NoOpt)
// execution time spent on intermediate-table I/O.
#include "bench_util.h"

int main() {
  using namespace sc;
  bench::Banner("Table III: workload summary",
                "I/O1: q5,77,80 / 21 nodes / 51.5% | I/O2: q2,59,74,75 / 19 "
                "/ 59.0% | I/O3: q44,49 / 26 / 46.6% | Compute1: "
                "q33,56,60,61 / 21 / 0.9% | Compute2: q14,23 / 16 / 28.3%");

  const double kPaperRatio[] = {51.5, 59.0, 46.6, 0.9, 28.3};
  TablePrinter table({"Workload", "TPC-DS queries", "# Nodes", "# Edges",
                      "I/O ratio (measured)", "I/O ratio (paper)"});
  for (int i = 0; i < 5; ++i) {
    workload::MvWorkload wl = bench::AnnotatedWorkload(i, 100.0, false);
    workload::ScaleModelOptions options;
    options.dataset_gb = 100.0;
    const double ratio = workload::IntermediateIoRatio(wl, options);
    std::vector<std::string> queries;
    for (int q : wl.tpcds_queries) queries.push_back(std::to_string(q));
    table.AddRow({wl.name, Join(queries, ", "),
                  std::to_string(wl.num_nodes()),
                  std::to_string(wl.graph.num_edges()),
                  StrFormat("%.1f%%", ratio * 100.0),
                  StrFormat("%.1f%%", kPaperRatio[i])});
  }
  table.Print(std::cout);
  return 0;
}
