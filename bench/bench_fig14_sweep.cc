// Reproduces Figure 14: predicted savings from S/C versus the synthetic
// workload generation parameters (DAG size, height/width ratio, node max
// out-degree, stage-size standard deviation), normalized to the reference
// configuration (100 nodes, ratio 1, out-degree 4, stdev 1).
#include "bench_util.h"
#include "workload/dag_gen.h"

namespace {

using sc::workload::DagGenOptions;

/// Average absolute saving (NoOpt - S/C makespan) over `count` DAGs.
double AverageSavings(const DagGenOptions& base, int count,
                      std::int64_t budget) {
  using namespace sc;
  double total = 0;
  for (int d = 0; d < count; ++d) {
    DagGenOptions gen = base;
    gen.seed = static_cast<std::uint64_t>(d) * 977 + 13;
    const graph::Graph g = workload::GenerateDag(gen);
    const sim::SimOptions options = bench::MakeSimOptions(budget);
    const double noopt = sim::SimulateNoOpt(g, options).makespan;
    const opt::Plan plan = opt::AlternatingOptimize(g, budget).plan;
    const double sc_time = sim::SimulateRun(g, plan, options).makespan;
    total += noopt - sc_time;
  }
  return total / count;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sc;
  int dags = 30;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--full") dags = 1000;
  }
  bench::Banner(
      "Figure 14: DAG complexity vs normalized predicted savings",
      "savings grow with DAG size and max out-degree; 'thin' DAGs (high "
      "height/width) save more; stage-size variance has negligible effect");
  std::cout << "averaging over " << dags
            << " DAGs per setting (use --full for the paper's 1000)\n\n";

  const std::int64_t budget = workload::BudgetForPercent(100.0, 1.6);
  DagGenOptions reference;  // 100 nodes, ratio 1, outdegree 4, stdev 1
  reference.num_nodes = 100;
  const double base_savings = AverageSavings(reference, dags, budget);

  auto sweep = [&](const std::string& title,
                   const std::vector<std::pair<std::string, DagGenOptions>>&
                       settings,
                   const std::vector<double>& paper) {
    TablePrinter table({title, "Normalized savings", "Paper (approx)"});
    for (std::size_t i = 0; i < settings.size(); ++i) {
      const double savings =
          AverageSavings(settings[i].second, dags, budget);
      table.AddRow({settings[i].first,
                    StrFormat("%.2f", savings / base_savings),
                    StrFormat("%.2f", paper[i])});
    }
    table.Print(std::cout);
    std::cout << "\n";
  };

  {
    std::vector<std::pair<std::string, DagGenOptions>> settings;
    for (const std::int32_t n : {25, 50, 100}) {
      DagGenOptions o = reference;
      o.num_nodes = n;
      settings.emplace_back(std::to_string(n), o);
    }
    sweep("DAG size", settings, {0.72, 0.83, 1.0});
  }
  {
    std::vector<std::pair<std::string, DagGenOptions>> settings;
    for (const double r : {4.0, 2.0, 1.0, 0.5, 0.25}) {
      DagGenOptions o = reference;
      o.height_width_ratio = r;
      settings.emplace_back(StrFormat("%.2f", r), o);
    }
    sweep("DAG height/width", settings, {1.15, 1.08, 1.0, 0.92, 0.85});
  }
  {
    std::vector<std::pair<std::string, DagGenOptions>> settings;
    for (const std::int32_t d : {1, 2, 3, 4, 5}) {
      DagGenOptions o = reference;
      o.max_outdegree = d;
      settings.emplace_back(std::to_string(d), o);
    }
    sweep("Node max. outdegree", settings, {0.65, 0.8, 0.92, 1.0, 1.08});
  }
  {
    std::vector<std::pair<std::string, DagGenOptions>> settings;
    for (const double s : {0.0, 1.0, 2.0, 3.0, 4.0}) {
      DagGenOptions o = reference;
      o.stage_stdev = s;
      settings.emplace_back(StrFormat("%.0f", s), o);
    }
    sweep("Stage node count StDev", settings, {1.0, 1.0, 1.0, 0.98, 0.97});
  }
  return 0;
}
