// Reproduces Figure 10: S/C speedup across dataset scales (10GB-1TB) with
// the Memory Catalog fixed at 1.6% of the dataset size.
//   (a) TPC-DS       paper: 1.58x / 1.63x / 1.71x / 1.68x / 1.58x
//   (b) TPC-DSp      paper: 4.26x / 4.12x / 4.10x / 3.53x / 2.31x
#include "bench_util.h"

namespace {

void RunPanel(const char* title, bool partitioned,
              const double* paper_speedups) {
  using namespace sc;
  std::cout << title << "\n";
  TablePrinter table({"Scale (GB)", "Memory Catalog", "No opt (s)",
                      "S/C (s)", "Speedup", "Paper"});
  const double scales[] = {10, 25, 50, 100, 1000};
  for (int s = 0; s < 5; ++s) {
    const double gb = scales[s];
    const std::int64_t budget = workload::BudgetForPercent(gb, 1.6);
    double noopt_total = 0;
    double sc_total = 0;
    for (int i = 0; i < 5; ++i) {
      const workload::MvWorkload wl =
          bench::AnnotatedWorkload(i, gb, partitioned);
      const sim::SimOptions options = bench::MakeSimOptions(budget);
      noopt_total += bench::EndToEndSeconds(bench::Method::kNoOpt, wl.graph,
                                            budget, options);
      sc_total += bench::EndToEndSeconds(bench::Method::kSc, wl.graph,
                                         budget, options);
    }
    table.AddRow({StrFormat("%.0f", gb), FormatBytes(budget),
                  StrFormat("%.1f", noopt_total),
                  StrFormat("%.1f", sc_total),
                  StrFormat("%.2fx", noopt_total / sc_total),
                  StrFormat("%.2fx", paper_speedups[s])});
  }
  table.Print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main() {
  sc::bench::Banner(
      "Figure 10: speedup vs dataset scale (Memory Catalog = 1.6% of data)",
      "consistent speedups across scales: 1.58-1.71x on TPC-DS, "
      "2.31-4.26x on TPC-DSp");
  const double paper_a[] = {1.58, 1.63, 1.71, 1.68, 1.58};
  const double paper_b[] = {4.26, 4.12, 4.10, 3.53, 2.31};
  RunPanel("(a) TPC-DS", /*partitioned=*/false, paper_a);
  RunPanel("(b) TPC-DSp", /*partitioned=*/true, paper_b);
  return 0;
}
