// Reproduces Figure 12: ablation of the S/C Opt solution on the 100GB
// datasets — swapping the node selector (MKP -> Greedy/Random/Ratio) or
// the scheduler (MA-DFS -> SA/Separator) inside alternating optimization.
#include "bench_util.h"

namespace {

struct Ablation {
  const char* label;
  sc::opt::SelectorMethod selector;
  sc::opt::SchedulerMethod scheduler;
};

const Ablation kAblations[] = {
    {"Random + MA-DFS", sc::opt::SelectorMethod::kRandom,
     sc::opt::SchedulerMethod::kMaDfs},
    {"Greedy + MA-DFS", sc::opt::SelectorMethod::kGreedy,
     sc::opt::SchedulerMethod::kMaDfs},
    {"Ratio + MA-DFS", sc::opt::SelectorMethod::kRatio,
     sc::opt::SchedulerMethod::kMaDfs},
    {"MKP + SA", sc::opt::SelectorMethod::kMkp,
     sc::opt::SchedulerMethod::kSimAnneal},
    {"MKP + Separator", sc::opt::SelectorMethod::kMkp,
     sc::opt::SchedulerMethod::kSeparator},
    {"MKP + MA-DFS (ours)", sc::opt::SelectorMethod::kMkp,
     sc::opt::SchedulerMethod::kMaDfs},
};

void RunPanel(const char* title, bool partitioned, double budget_percent) {
  using namespace sc;
  const std::int64_t budget =
      workload::BudgetForPercent(100.0, budget_percent);
  std::cout << title << " (Memory Catalog " << FormatBytes(budget)
            << ")\n";
  TablePrinter table({"Method", "Total time (s)", "vs No opt"});
  double noopt_total = 0;
  for (int i = 0; i < 5; ++i) {
    const workload::MvWorkload wl =
        bench::AnnotatedWorkload(i, 100.0, partitioned);
    noopt_total += bench::EndToEndSeconds(
        bench::Method::kNoOpt, wl.graph, budget,
        bench::MakeSimOptions(budget));
  }
  table.AddRow({"No opt", StrFormat("%.1f", noopt_total), "1.00x"});
  for (const Ablation& ablation : kAblations) {
    opt::AlternatingOptions options;
    options.selector = ablation.selector;
    options.scheduler = ablation.scheduler;
    double total = 0;
    for (int i = 0; i < 5; ++i) {
      const workload::MvWorkload wl =
          bench::AnnotatedWorkload(i, 100.0, partitioned);
      const opt::Plan plan =
          opt::AlternatingOptimize(wl.graph, budget, options).plan;
      total += sim::SimulateRun(wl.graph, plan,
                                bench::MakeSimOptions(budget))
                   .makespan;
    }
    table.AddRow({ablation.label, StrFormat("%.1f", total),
                  StrFormat("%.2fx", noopt_total / total)});
  }
  table.Print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main() {
  sc::bench::Banner(
      "Figure 12: S/C Opt ablation on the 100GB datasets",
      "MKP+MA-DFS saves an additional 3%-11% of execution time over "
      "ablated methods (up to 1.09x vs selector ablations, up to 1.21x vs "
      "scheduler ablations)");
  RunPanel("(a) TPC-DS, 1.6% Memory Catalog", /*partitioned=*/false, 1.6);
  RunPanel("(b) TPC-DSp, 0.8% Memory Catalog", /*partitioned=*/true, 0.8);
  return 0;
}
