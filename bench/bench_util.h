#ifndef SC_BENCH_BENCH_UTIL_H_
#define SC_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/str_util.h"
#include "common/table_printer.h"
#include "opt/optimizer.h"
#include "sim/cluster.h"
#include "sim/lru_cache.h"
#include "sim/refresh_sim.h"
#include "workload/scale_model.h"
#include "workload/workloads.h"

namespace sc::bench {

/// The end-to-end methods compared in Figures 9-11 (paper §VI-A):
/// heuristic selectors run on the plain topological order (they do not
/// reorder); LRU models the DBMS result cache grown by the Memory Catalog
/// size; S/C is the full alternating optimization.
enum class Method { kNoOpt, kLru, kRandom, kGreedy, kRatio, kSc };

inline const std::vector<Method>& AllMethods() {
  static const std::vector<Method> kAll = {
      Method::kNoOpt, Method::kLru,   Method::kRandom,
      Method::kGreedy, Method::kRatio, Method::kSc};
  return kAll;
}

inline std::string ToString(Method method) {
  switch (method) {
    case Method::kNoOpt: return "No opt";
    case Method::kLru: return "LRU";
    case Method::kRandom: return "Random";
    case Method::kGreedy: return "Greedy";
    case Method::kRatio: return "Ratio";
    case Method::kSc: return "S/C (ours)";
  }
  return "?";
}

/// Builds the plan a method would execute (identity order for baselines).
inline opt::Plan PlanFor(Method method, const graph::Graph& g,
                         std::int64_t budget, std::uint64_t seed = 42) {
  opt::Plan plan;
  plan.order = graph::KahnTopologicalOrder(g);
  switch (method) {
    case Method::kNoOpt:
    case Method::kLru:
      plan.flags = opt::EmptyFlags(g.num_nodes());
      return plan;
    case Method::kRandom:
      plan.flags = opt::SelectRandom(g, plan.order, budget, seed);
      return plan;
    case Method::kGreedy:
      plan.flags = opt::SelectGreedy(g, plan.order, budget);
      return plan;
    case Method::kRatio:
      plan.flags = opt::SelectRatio(g, plan.order, budget);
      return plan;
    case Method::kSc:
      return opt::AlternatingOptimize(g, budget).plan;
  }
  return plan;
}

/// Simulated end-to-end refresh time for a method.
inline double EndToEndSeconds(Method method, const graph::Graph& g,
                              std::int64_t budget,
                              const sim::SimOptions& options) {
  if (method == Method::kLru) {
    return sim::SimulateLruBaseline(g, budget, options).makespan;
  }
  const opt::Plan plan = PlanFor(method, g, budget);
  return sim::SimulateRun(g, plan, options).makespan;
}

/// Annotated copy of workload `index` (0..4) at the given scale.
inline workload::MvWorkload AnnotatedWorkload(int index, double dataset_gb,
                                              bool partitioned) {
  workload::MvWorkload wl =
      workload::StandardWorkloads()[static_cast<std::size_t>(index)];
  workload::ScaleModelOptions options;
  options.dataset_gb = dataset_gb;
  options.partitioned = partitioned;
  workload::AnnotateWorkload(&wl, options);
  return wl;
}

inline sim::SimOptions MakeSimOptions(std::int64_t budget) {
  sim::SimOptions options;
  options.budget = budget;
  return options;
}

/// Wall-clock timer for optimizer benchmarks.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Prints the standard bench banner.
inline void Banner(const std::string& experiment,
                   const std::string& paper_claim) {
  std::cout << "\n=== " << experiment << " ===\n";
  std::cout << "paper: " << paper_claim << "\n\n";
}

}  // namespace sc::bench

#endif  // SC_BENCH_BENCH_UTIL_H_
