// Reproduces Table IV: effect of S/C's optimization on cumulative table
// read / compute / query latencies on the 100GB datasets, sweeping the
// Memory Catalog from 0.4% to 6.4% of the data size.
#include "bench_util.h"

namespace {

struct Latencies {
  double read = 0;
  double compute = 0;
  double query = 0;
};

Latencies TotalsFor(bool partitioned, double percent) {
  using namespace sc;
  Latencies out;
  for (int i = 0; i < 5; ++i) {
    const workload::MvWorkload wl =
        bench::AnnotatedWorkload(i, 100.0, partitioned);
    sim::RunResult run;
    if (percent <= 0) {
      run = sim::SimulateNoOpt(wl.graph, bench::MakeSimOptions(0));
    } else {
      const std::int64_t budget =
          workload::BudgetForPercent(100.0, percent);
      const opt::Plan plan =
          bench::PlanFor(bench::Method::kSc, wl.graph, budget);
      run = sim::SimulateRun(wl.graph, plan, bench::MakeSimOptions(budget));
    }
    out.read += run.total_read_seconds;
    out.compute += run.total_compute_seconds;
    out.query += run.total_query_seconds;
  }
  return out;
}

void RunPanel(const char* dataset, bool partitioned,
              const double* paper_read) {
  using namespace sc;
  std::cout << dataset << "\n";
  TablePrinter table({"Latency (s)", "No opt", "0.4%", "0.8%", "1.6%",
                      "3.2%", "6.4%"});
  const double percents[] = {0.0, 0.4, 0.8, 1.6, 3.2, 6.4};
  std::vector<Latencies> cols;
  for (double p : percents) cols.push_back(TotalsFor(partitioned, p));
  auto row = [&](const char* label, double Latencies::* field) {
    std::vector<std::string> out = {label};
    for (const Latencies& l : cols) {
      out.push_back(StrFormat("%.0f", l.*field));
    }
    return out;
  };
  table.AddRow(row("Table read", &Latencies::read));
  table.AddRow(row("Compute", &Latencies::compute));
  table.AddRow(row("Query", &Latencies::query));
  table.AddSeparator();
  std::vector<std::string> paper_row = {"Table read (paper)"};
  for (int i = 0; i < 6; ++i) {
    paper_row.push_back(StrFormat("%.0f", paper_read[i]));
  }
  table.AddRow(std::move(paper_row));
  table.Print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main() {
  sc::bench::Banner(
      "Table IV: CPU latency breakdown vs Memory Catalog size (100GB)",
      "table-read latency falls 1.51x (TPC-DS) / 1.42x (TPC-DSp) at 6.4%; "
      "compute latency is essentially unchanged");
  const double paper_ds[] = {4243, 4308, 3934, 3574, 3128, 2884};
  const double paper_dsp[] = {1710, 1514, 1314, 1106, 1106, 1096};
  RunPanel("TPC-DS", /*partitioned=*/false, paper_ds);
  RunPanel("TPC-DSp", /*partitioned=*/true, paper_dsp);
  return 0;
}
