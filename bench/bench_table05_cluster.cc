// Reproduces Table V: S/C on multi-worker DB clusters — total runtime
// falls with each added worker while S/C's relative speedup stays flat.
#include "bench_util.h"

int main() {
  using namespace sc;
  bench::Banner(
      "Table V: cluster scaling (100GB TPC-DS, 1.6% Memory Catalog)",
      "no-opt 1528/868/656/546/487s for 1-5 workers; S/C speedup stays "
      "1.60x-1.71x regardless of worker count");

  const double paper_noopt[] = {1528, 868, 656, 546, 487};
  const double paper_speedup[] = {1.63, 1.67, 1.71, 1.64, 1.60};

  const std::int64_t budget = workload::BudgetForPercent(100.0, 1.6);
  const sim::ClusterModel cluster;
  TablePrinter table({"Metric", "1 node", "2 nodes", "3 nodes", "4 nodes",
                      "5 nodes"});
  std::vector<std::string> noopt_row = {"No opt runtime (s)"};
  std::vector<std::string> sc_row = {"S/C runtime (s)"};
  std::vector<std::string> speedup_row = {"Speedup"};
  std::vector<std::string> paper_noopt_row = {"No opt (paper, s)"};
  std::vector<std::string> paper_speedup_row = {"Speedup (paper)"};
  for (int workers = 1; workers <= 5; ++workers) {
    double noopt_total = 0;
    double sc_total = 0;
    for (int i = 0; i < 5; ++i) {
      const workload::MvWorkload wl =
          bench::AnnotatedWorkload(i, 100.0, /*partitioned=*/false);
      const sim::SimOptions scaled =
          cluster.Scale(bench::MakeSimOptions(budget), workers);
      noopt_total += sim::SimulateNoOpt(wl.graph, scaled).makespan;
      const opt::Plan plan =
          bench::PlanFor(bench::Method::kSc, wl.graph, budget);
      sc_total += sim::SimulateRun(wl.graph, plan, scaled).makespan;
    }
    noopt_row.push_back(StrFormat("%.0f", noopt_total));
    sc_row.push_back(StrFormat("%.0f", sc_total));
    speedup_row.push_back(StrFormat("%.2fx", noopt_total / sc_total));
    paper_noopt_row.push_back(StrFormat("%.0f", paper_noopt[workers - 1]));
    paper_speedup_row.push_back(
        StrFormat("%.2fx", paper_speedup[workers - 1]));
  }
  table.AddRow(std::move(noopt_row));
  table.AddRow(std::move(sc_row));
  table.AddRow(std::move(speedup_row));
  table.AddSeparator();
  table.AddRow(std::move(paper_noopt_row));
  table.AddRow(std::move(paper_speedup_row));
  table.Print(std::cout);
  return 0;
}
