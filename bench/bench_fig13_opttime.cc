// Reproduces Figure 13: optimization time of the S/C Opt method pairs on
// synthetic DAGs of 10-100 nodes. The paper generates 1000 DAGs per
// setting; the default here is 50 for a fast run (pass --full for 1000).
#include <cstring>

#include "bench_util.h"
#include "workload/dag_gen.h"

namespace {

struct MethodPair {
  const char* label;
  sc::opt::SelectorMethod selector;
  sc::opt::SchedulerMethod scheduler;
};

const MethodPair kPairs[] = {
    {"Random + MA-DFS", sc::opt::SelectorMethod::kRandom,
     sc::opt::SchedulerMethod::kMaDfs},
    {"Greedy + MA-DFS", sc::opt::SelectorMethod::kGreedy,
     sc::opt::SchedulerMethod::kMaDfs},
    {"Ratio + MA-DFS", sc::opt::SelectorMethod::kRatio,
     sc::opt::SchedulerMethod::kMaDfs},
    {"MKP + SA", sc::opt::SelectorMethod::kMkp,
     sc::opt::SchedulerMethod::kSimAnneal},
    {"MKP + Separator", sc::opt::SelectorMethod::kMkp,
     sc::opt::SchedulerMethod::kSeparator},
    {"MKP + MA-DFS (ours)", sc::opt::SelectorMethod::kMkp,
     sc::opt::SchedulerMethod::kMaDfs},
};

}  // namespace

int main(int argc, char** argv) {
  using namespace sc;
  int dags_per_setting = 50;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) dags_per_setting = 1000;
  }
  bench::Banner(
      "Figure 13: optimization time vs DAG size (synthetic workloads)",
      "MKP+MA-DFS scales ~linearly, ~0.02s at 100 nodes; SA and Separator "
      "are 10-100x slower; Greedy/Random/Ratio marginally faster");
  std::cout << "averaging over " << dags_per_setting
            << " DAGs per size (use --full for the paper's 1000)\n\n";

  TablePrinter table({"Method", "10 nodes", "25 nodes", "50 nodes",
                      "100 nodes"});
  const std::int32_t sizes[] = {10, 25, 50, 100};
  const std::int64_t budget = workload::BudgetForPercent(100.0, 1.6);
  for (const MethodPair& pair : kPairs) {
    std::vector<std::string> row = {pair.label};
    for (const std::int32_t size : sizes) {
      opt::AlternatingOptions options;
      options.selector = pair.selector;
      options.scheduler = pair.scheduler;
      double total_seconds = 0;
      for (int d = 0; d < dags_per_setting; ++d) {
        workload::DagGenOptions gen;
        gen.num_nodes = size;
        gen.seed = static_cast<std::uint64_t>(d) * 131 + 7;
        const graph::Graph g = workload::GenerateDag(gen);
        const bench::WallTimer timer;
        (void)opt::AlternatingOptimize(g, budget, options);
        total_seconds += timer.Seconds();
      }
      row.push_back(StrFormat(
          "%.3f ms", total_seconds / dags_per_setting * 1000.0));
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
  std::cout << "\npaper (100 nodes): Greedy 1 ms, Random 22 ms, Ratio 8 "
               "ms, MKP+MA-DFS 24 ms; SA/Separator 100-1000 ms\n";
  return 0;
}
