// Refresh-Service throughput: jobs/sec and tail latency as the worker
// pool grows, plus the intra-job DAG-parallel runtime: an inter-job
// workers × intra-job lanes sweep, a wide synthetic DAG refreshed at
// 1/2/4 lanes against throttled storage, and the stage-aware ordering
// (opt::WidenStages) section. Every parallel config reports the
// persistent LanePool's thread-start count and mean lane utilization, so
// pool reuse and ordering wins are visible in the JSON, not just
// jobs/sec. Emits JSON (stdout and, by default,
// BENCH_service_throughput.json).
//
//   $ ./bench/bench_service_throughput [--smoke] [--out FILE]
//                                      [--trace [FILE]]
//
// --smoke shrinks the sweeps for CI; --out overrides the JSON path.
// --trace writes the traced run's Chrome trace (default
// BENCH_trace.json) for chrome://tracing / trace_inspect. The tracing
// overhead section runs either way — it is the bench backing for the
// zero-overhead-when-off contract.
#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "obs/registry.h"
#include "storage/format.h"
#include "obs/trace.h"
#include "opt/optimizer.h"
#include "opt/stages.h"
#include "runtime/controller.h"
#include "runtime/lane_pool.h"
#include "service/service.h"
#include "storage/throttled_disk.h"
#include "workload/datagen.h"

namespace sc::bench {
namespace {

struct Sample {
  int workers = 0;
  int lanes = 1;
  double jobs_per_second = 0.0;
  double p50_seconds = 0.0;
  double p99_seconds = 0.0;
  double mean_queue_wait_seconds = 0.0;
  double catalog_hit_rate = 0.0;
  /// LanePool threads started during the timed segment / jobs — zero in
  /// steady state (persistent lanes), one-per-lane-per-job before PR 3.
  double thread_starts_per_job = 0.0;
  /// Mean fraction of the pool's thread budget that was executing nodes
  /// (busy lane-seconds / (wall × capacity)); 0 for 1-lane configs,
  /// which bypass the pool.
  double lane_utilization = 0.0;
};

using WorkloadSet =
    std::vector<std::shared_ptr<const workload::MvWorkload>>;

Sample RunConfig(storage::ThrottledDisk* disk, const WorkloadSet& wls,
                 int workers, int lanes, int jobs) {
  service::ServiceOptions options;
  options.num_workers = workers * lanes;  // total thread budget
  options.max_intra_job_lanes = lanes;
  options.global_budget = 32LL * 1024 * 1024;
  // Sections 1-2 track worker/lane *execution* scaling (the PR-1/PR-3
  // trajectories): cross-job reuse would serve the repeat jobs from the
  // shared layer and decouple the numbers from the sweep variable.
  // Section 5 measures sharing, toggling this flag both ways.
  options.share_catalog = false;
  service::RefreshService service(disk, options);

  // Warm the plan cache so every timed config pays optimization once per
  // workload at most — the steady-state serving regime.
  for (const auto& wl : wls) {
    service::RefreshJobSpec warmup;
    warmup.workload = wl;
    warmup.tenant = "warmup";
    warmup.requested_budget = options.global_budget / 8;
    service.Submit(warmup).get();
  }
  // Snapshot the pool after warmup: the timed segment's deltas show the
  // steady-state behaviour (persistent lanes ⇒ ~zero thread starts).
  const std::int64_t threads_before =
      service.lane_pool().threads_started();
  const double busy_before = service.lane_pool().busy_seconds();

  WallTimer timer;
  std::vector<std::future<service::JobResult>> futures;
  futures.reserve(static_cast<std::size_t>(jobs));
  for (int i = 0; i < jobs; ++i) {
    service::RefreshJobSpec spec;
    spec.workload = wls[static_cast<std::size_t>(i) % wls.size()];
    spec.tenant = "tenant" + std::to_string(i % 4);
    spec.requested_budget = options.global_budget / 8;
    futures.push_back(service.Submit(std::move(spec)));
  }
  // Stats come from the timed jobs' results directly — the service
  // metrics registry also holds the warmup jobs' (uncached-optimization)
  // latencies, which would dominate the reported p99.
  int failed = 0;
  std::vector<double> latencies;
  double total_wait = 0.0;
  std::int64_t hits = 0;
  std::int64_t misses = 0;
  latencies.reserve(futures.size());
  for (auto& future : futures) {
    const service::JobResult r = future.get();
    if (!r.report.ok) ++failed;
    latencies.push_back(r.queue_wait_seconds + r.exec_seconds);
    total_wait += r.queue_wait_seconds;
    hits += r.report.catalog_hits;
    misses += r.report.catalog_misses;
  }
  const double wall = timer.Seconds();
  if (failed > 0) {
    std::cerr << "warning: " << failed << " jobs failed\n";
  }

  std::sort(latencies.begin(), latencies.end());
  auto percentile = [&](double q) {
    const double rank = q * static_cast<double>(latencies.size() - 1);
    return latencies[static_cast<std::size_t>(rank + 0.5)];
  };
  Sample sample;
  sample.workers = workers;
  sample.lanes = lanes;
  sample.jobs_per_second = jobs / wall;
  sample.p50_seconds = percentile(0.50);
  sample.p99_seconds = percentile(0.99);
  sample.mean_queue_wait_seconds = total_wait / jobs;
  sample.catalog_hit_rate =
      hits + misses == 0 ? 0.0
                         : static_cast<double>(hits) / (hits + misses);
  sample.thread_starts_per_job = static_cast<double>(
      service.lane_pool().threads_started() - threads_before) /
      jobs;
  sample.lane_utilization =
      (service.lane_pool().busy_seconds() - busy_before) /
      (wall * options.num_workers);
  return sample;
}


struct WideSample {
  int lanes = 1;
  double wall_seconds = 0.0;
  double speedup = 1.0;
  std::int64_t thread_starts = 0;  // across warmup + all reps
  double lane_utilization = 0.0;   // best rep, vs `lanes` threads
  std::int64_t reserve_denials = 0;
};

struct WidenSample {
  bool widened = false;
  double wall_seconds = 0.0;
  double lane_utilization = 0.0;
};

struct SharedSample {
  int tenants = 0;
  bool shared = false;
  double jobs_per_second = 0.0;
  double cross_job_hit_rate = 0.0;  // of all catalog resolutions
  std::int64_t bytes_saved = 0;
  double total_compute_seconds = 0.0;
};

/// Cross-job sharing sweep config: `tenants` tenants all refreshing the
/// same workload, `jobs_per_tenant` times each, with or without the
/// shared catalog. A seed job warms the shared layer (and the plan
/// cache) before the timed segment, mirroring steady-state traffic.
SharedSample RunSharedConfig(storage::ThrottledDisk* disk,
                             const std::shared_ptr<const workload::MvWorkload>& wl,
                             int tenants, int jobs_per_tenant,
                             bool shared) {
  service::ServiceOptions options;
  options.num_workers = 4;
  options.global_budget = 32LL * 1024 * 1024;
  options.share_catalog = shared;
  service::RefreshService service(disk, options);

  service::RefreshJobSpec warmup;
  warmup.workload = wl;
  warmup.tenant = "warmup";
  service.Submit(warmup).get();

  WallTimer timer;
  std::vector<std::future<service::JobResult>> futures;
  for (int round = 0; round < jobs_per_tenant; ++round) {
    for (int t = 0; t < tenants; ++t) {
      service::RefreshJobSpec spec;
      spec.workload = wl;
      spec.tenant = "tenant" + std::to_string(t);
      futures.push_back(service.Submit(std::move(spec)));
    }
  }
  SharedSample sample;
  sample.tenants = tenants;
  sample.shared = shared;
  std::int64_t cross_hits = 0;
  std::int64_t resolutions = 0;
  for (auto& future : futures) {
    const service::JobResult r = future.get();
    if (!r.report.ok) {
      std::cerr << "shared-sweep job failed: " << r.report.error << "\n";
    }
    cross_hits += r.report.cross_job_hits;
    resolutions += r.report.catalog_hits + r.report.catalog_misses;
    sample.bytes_saved += r.report.cross_job_bytes_saved;
    sample.total_compute_seconds += r.report.TotalComputeSeconds();
  }
  sample.jobs_per_second =
      static_cast<double>(futures.size()) / timer.Seconds();
  sample.cross_job_hit_rate =
      resolutions == 0
          ? 0.0
          : static_cast<double>(cross_hits) / resolutions;
  return sample;
}

struct ResidencySample {
  std::string cardinality;
  std::int64_t distinct = 0;
  bool compressed = false;  // dict residency + spill tier vs PR-8 plain
  std::int64_t budget = 0;
  double jobs_per_second = 0.0;
  std::int64_t cross_job_hits = 0;
  std::int64_t bytes_saved = 0;
  double total_compute_seconds = 0.0;
  std::int64_t spills = 0;
  std::int64_t spill_refills = 0;
  std::int64_t spill_bytes = 0;
};

/// One compressed-residency config: string-heavy data at the given
/// cardinality on a fresh disk, a seed job then `followers` concurrent
/// repeat tenants at a fixed (tight) budget. `compressed` toggles the
/// whole PR-9 stack — dictionary residency plus the spill/refill tier —
/// against the plain-string, drop-on-evict baseline. Profiling matches
/// the runtime representation so the optimizer sees honest sizes either
/// way.
ResidencySample RunResidencyConfig(workload::StringCardinality cardinality,
                                   const std::string& cardinality_name,
                                   bool compressed, std::int64_t budget,
                                   double scale, int followers) {
  const std::string tag = cardinality_name + (compressed ? "_dict" : "_plain");
  const std::string dir =
      (std::filesystem::temp_directory_path() / ("sc_bench_residency_" + tag))
          .string();
  std::filesystem::remove_all(dir);
  storage::DiskProfile profile;
  profile.throttle = false;
  storage::ThrottledDisk disk(dir, profile);

  workload::StringHeavyOptions data_options;
  data_options.scale = scale;
  data_options.cardinality = cardinality;
  runtime::ControllerOptions profile_options;
  profile_options.compress_residency = compressed;
  runtime::Controller profiler(&disk, profile_options);
  profiler.LoadBaseTables(workload::GenerateStringHeavyData(data_options));
  auto wl = std::make_shared<workload::MvWorkload>(
      workload::BuildStringHeavySynthetic(6));
  const runtime::RunReport profiled = profiler.ProfileAndAnnotate(wl.get());
  if (!profiled.ok) {
    std::cerr << "string-heavy profiling failed: " << profiled.error << "\n";
    return {};
  }

  service::ServiceOptions options;
  options.num_workers = 4;
  options.global_budget = budget;
  options.compress_residency = compressed;
  if (compressed) {
    options.spill_directory =
        (std::filesystem::temp_directory_path() /
         ("sc_bench_residency_spill_" + tag))
            .string();
    std::filesystem::remove_all(options.spill_directory);
  }
  service::RefreshService service(&disk, options);

  ResidencySample sample;
  sample.cardinality = cardinality_name;
  sample.distinct = workload::StringCardinalityValues(cardinality);
  sample.compressed = compressed;
  sample.budget = budget;

  service::RefreshJobSpec seed;
  seed.workload = wl;
  seed.tenant = "seed";
  const service::JobResult seed_result = service.Submit(seed).get();
  if (!seed_result.report.ok) {
    std::cerr << "residency seed job failed: " << seed_result.report.error
              << "\n";
    return sample;
  }

  WallTimer timer;
  std::vector<std::future<service::JobResult>> futures;
  for (int i = 0; i < followers; ++i) {
    service::RefreshJobSpec spec;
    spec.workload = wl;
    spec.tenant = "tenant" + std::to_string(i);
    futures.push_back(service.Submit(std::move(spec)));
  }
  for (auto& future : futures) {
    const service::JobResult r = future.get();
    if (!r.report.ok) {
      std::cerr << "residency follower failed: " << r.report.error << "\n";
    }
    sample.cross_job_hits += r.report.cross_job_hits;
    sample.bytes_saved += r.report.cross_job_bytes_saved;
    sample.total_compute_seconds += r.report.TotalComputeSeconds();
  }
  sample.jobs_per_second =
      static_cast<double>(futures.size()) / timer.Seconds();
  sample.spills = service.shared_catalog().spills();
  sample.spill_refills = service.shared_catalog().spill_refills();
  sample.spill_bytes = service.shared_catalog().spill_bytes();
  return sample;
}

struct ChecksumOverheadSample {
  std::string format;  // "sct1" or "scc1"
  std::int64_t bytes = 0;
  double unverified_seconds = 0.0;  // best-of-reps single deserialize
  double verified_seconds = 0.0;
  double overhead_fraction = 0.0;
};

/// Measures the cost of checksum verification on the format read path:
/// one representative table written to a file once, then read back
/// repeatedly through the file wrappers (the serving path — warehouse
/// reads and spill refills both go through them) with verification off
/// and on, best-of-reps each. The CRC32C arithmetic rides along with a
/// read that already touches every byte, so the gate holds verified
/// reads within 5% of the fast path.
ChecksumOverheadSample RunChecksumOverhead(const engine::Table& table,
                                           bool compressed, int reps) {
  ChecksumOverheadSample sample;
  sample.format = compressed ? "scc1" : "sct1";
  const std::string path = (std::filesystem::temp_directory_path() /
                            ("sc_bench_checksum." + sample.format))
                               .string();
  sample.bytes = compressed
                     ? storage::WriteTableFileCompressed(table, path)
                     : storage::WriteTableFile(table, path);
  auto read_once = [&](bool verify) {
    WallTimer timer;
    const engine::Table loaded =
        compressed
            ? storage::ReadTableFileCompressed(path,
                                               storage::ReadOptions{verify})
            : storage::ReadTableFile(path, storage::ReadOptions{verify});
    const double seconds = timer.Seconds();
    if (loaded.num_rows() != table.num_rows()) {
      std::cerr << "checksum-overhead read returned wrong row count\n";
    }
    return seconds;
  };
  sample.unverified_seconds = read_once(false);
  sample.verified_seconds = read_once(true);
  for (int rep = 1; rep < reps; ++rep) {
    sample.unverified_seconds =
        std::min(sample.unverified_seconds, read_once(false));
    sample.verified_seconds =
        std::min(sample.verified_seconds, read_once(true));
  }
  std::error_code ec;
  std::filesystem::remove(path, ec);
  sample.overhead_fraction =
      sample.unverified_seconds <= 0.0
          ? 0.0
          : (sample.verified_seconds - sample.unverified_seconds) /
                sample.unverified_seconds;
  return sample;
}

struct RecoverySample {
  std::int64_t spills = 0;
  std::int64_t spilled_at_shutdown = 0;
  std::int64_t recovered_entries = 0;
  std::int64_t recovered_bytes = 0;
  std::int64_t orphans_removed = 0;
  std::int64_t corrupt_files = 0;
  std::int64_t refills_after_restart = 0;
  std::int64_t cross_job_hits_after_restart = 0;
  double hit_rate_after_restart = 0.0;
};

/// The kill-and-restart recovery smoke: a durable-spill service builds a
/// spill population under a tight budget and is torn down; a fresh
/// service on the same directory recovers the population from the
/// manifest and serves the restarted tenants from it — cross-job hits
/// with zero recompute for the recovered MVs.
RecoverySample RunRecoverySection(double scale, int followers) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "sc_bench_recovery").string();
  std::filesystem::remove_all(dir);
  storage::DiskProfile profile;
  profile.throttle = false;
  storage::ThrottledDisk disk(dir, profile);

  workload::StringHeavyOptions data_options;
  data_options.scale = scale;
  data_options.cardinality = workload::StringCardinality::kLow;
  runtime::Controller profiler(&disk, runtime::ControllerOptions{});
  profiler.LoadBaseTables(workload::GenerateStringHeavyData(data_options));
  auto wl = std::make_shared<workload::MvWorkload>(
      workload::BuildStringHeavySynthetic(6));
  const runtime::RunReport profiled = profiler.ProfileAndAnnotate(wl.get());
  RecoverySample sample;
  if (!profiled.ok) {
    std::cerr << "recovery profiling failed: " << profiled.error << "\n";
    return sample;
  }

  service::ServiceOptions options;
  options.num_workers = 2;
  options.global_budget = 64LL * 1024;  // well under the working set
  options.spill_directory =
      (std::filesystem::temp_directory_path() / "sc_bench_recovery_spill")
          .string();
  options.spill_recover = true;
  std::filesystem::remove_all(options.spill_directory);

  auto run_jobs = [&](service::RefreshService* service,
                      const std::string& tag, int jobs,
                      std::int64_t* hits_out) {
    std::vector<std::future<service::JobResult>> futures;
    for (int i = 0; i < jobs; ++i) {
      service::RefreshJobSpec spec;
      spec.workload = wl;
      spec.tenant = tag + std::to_string(i);
      futures.push_back(service->Submit(std::move(spec)));
    }
    for (auto& future : futures) {
      const service::JobResult r = future.get();
      if (!r.report.ok) {
        std::cerr << "recovery job failed: " << r.report.error << "\n";
      }
      if (hits_out != nullptr) *hits_out += r.report.cross_job_hits;
    }
  };

  {
    service::RefreshService service(&disk, options);
    run_jobs(&service, "seed", 1, nullptr);
    run_jobs(&service, "tenant", followers, nullptr);
    sample.spills = service.shared_catalog().spills();
    sample.spilled_at_shutdown =
        static_cast<std::int64_t>(service.shared_catalog().spilled_entries());
    service.Shutdown();
  }  // teardown keeps the spill files + manifest (spill_recover)

  service::RefreshService service(&disk, options);
  sample.recovered_entries = service.shared_catalog().recovered_entries();
  sample.recovered_bytes = service.shared_catalog().recovered_bytes();
  sample.orphans_removed = service.shared_catalog().orphans_removed();
  run_jobs(&service, "restart", followers,
           &sample.cross_job_hits_after_restart);
  sample.corrupt_files = service.shared_catalog().corrupt_files();
  sample.refills_after_restart = service.shared_catalog().spill_refills();
  const std::int64_t hits = service.shared_catalog().hits();
  const std::int64_t misses = service.shared_catalog().misses();
  sample.hit_rate_after_restart =
      hits + misses == 0 ? 0.0
                         : static_cast<double>(hits) / (hits + misses);
  service.Shutdown();
  return sample;
}

/// One rep of the tracing-overhead config: a 4-tenant, 4-lane service
/// over the mixed workloads, with or without a trace recorder attached.
/// The config mirrors steady-state serving (warmed plan cache, shared
/// catalog on), so the off-vs-on ratio isolates the recorder cost.
double RunTraceConfig(storage::ThrottledDisk* disk, const WorkloadSet& wls,
                      int jobs, obs::TraceRecorder* trace,
                      std::map<std::string, double>* registry_delta) {
  service::ServiceOptions options;
  options.num_workers = 8;  // 2 inter-job workers × up to 4 lanes
  options.max_intra_job_lanes = 4;
  options.global_budget = 32LL * 1024 * 1024;
  options.trace = trace;
  service::RefreshService service(disk, options);

  for (const auto& wl : wls) {
    service::RefreshJobSpec warmup;
    warmup.workload = wl;
    warmup.tenant = "warmup";
    warmup.requested_budget = options.global_budget / 8;
    service.Submit(warmup).get();
  }
  const std::map<std::string, double> before =
      registry_delta != nullptr ? service.registry().Snapshot()
                                : std::map<std::string, double>{};

  WallTimer timer;
  std::vector<std::future<service::JobResult>> futures;
  futures.reserve(static_cast<std::size_t>(jobs));
  for (int i = 0; i < jobs; ++i) {
    service::RefreshJobSpec spec;
    spec.workload = wls[static_cast<std::size_t>(i) % wls.size()];
    spec.tenant = "tenant" + std::to_string(i % 4);
    spec.requested_budget = options.global_budget / 8;
    futures.push_back(service.Submit(std::move(spec)));
  }
  int failed = 0;
  for (auto& future : futures) {
    if (!future.get().report.ok) ++failed;
  }
  const double wall = timer.Seconds();
  if (failed > 0) {
    std::cerr << "warning: " << failed << " traced jobs failed\n";
  }
  if (registry_delta != nullptr) {
    *registry_delta =
        obs::SnapshotDelta(before, service.registry().Snapshot());
  }
  return jobs / wall;
}

/// One rep of the cancellation-overhead config: the steady-state
/// 4-worker service, with every job either plain or carrying a far
/// deadline. The token itself is always wired (the service polls it at
/// every stage / node / morsel boundary); a deadline additionally makes
/// each poll read the monotonic clock, so deadline-vs-plain bounds the
/// full per-boundary cost of the fault-tolerance layer.
double RunCancelConfig(storage::ThrottledDisk* disk, const WorkloadSet& wls,
                       int jobs, bool with_deadline) {
  service::ServiceOptions options;
  options.num_workers = 4;
  options.global_budget = 32LL * 1024 * 1024;
  service::RefreshService service(disk, options);

  for (const auto& wl : wls) {
    service::RefreshJobSpec warmup;
    warmup.workload = wl;
    warmup.tenant = "warmup";
    warmup.requested_budget = options.global_budget / 8;
    service.Submit(warmup).get();
  }

  WallTimer timer;
  std::vector<std::future<service::JobResult>> futures;
  futures.reserve(static_cast<std::size_t>(jobs));
  for (int i = 0; i < jobs; ++i) {
    service::RefreshJobSpec spec;
    spec.workload = wls[static_cast<std::size_t>(i) % wls.size()];
    spec.tenant = "tenant" + std::to_string(i % 4);
    spec.requested_budget = options.global_budget / 8;
    if (with_deadline) spec.deadline_seconds = 3600.0;  // never expires
    futures.push_back(service.Submit(std::move(spec)));
  }
  int failed = 0;
  for (auto& future : futures) {
    if (future.get().status != service::JobStatus::kOk) ++failed;
  }
  const double wall = timer.Seconds();
  if (failed > 0) {
    std::cerr << "warning: " << failed << " cancel-config jobs failed\n";
  }
  return jobs / wall;
}

int Main(int argc, char** argv) {
  bool smoke = false;
  bool write_trace = false;
  std::string out_path = "BENCH_service_throughput.json";
  std::string trace_path = "BENCH_trace.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      write_trace = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') trace_path = argv[++i];
    } else {
      std::cerr << "usage: " << argv[0]
                << " [--smoke] [--out FILE] [--trace [FILE]]\n";
      return 2;
    }
  }

  Banner("Refresh-Service throughput: workers, intra-job lanes, wide DAG",
         "serving-layer extension: concurrent jobs + stage-parallel "
         "intra-job execution under one shared Memory-Catalog budget "
         "(no paper counterpart)");

  const std::string dir =
      (std::filesystem::temp_directory_path() / "sc_bench_service")
          .string();
  std::filesystem::remove_all(dir);
  storage::DiskProfile profile;
  profile.throttle = false;  // scaling limited by compute, not emulation
  profile.channels = 8;      // warehouse storage serves workers in parallel
  storage::ThrottledDisk disk(dir, profile);

  workload::DataGenOptions data_options;
  data_options.scale = 0.03;
  runtime::Controller profiler(&disk, runtime::ControllerOptions{});
  profiler.LoadBaseTables(workload::GenerateTpcdsData(data_options));
  WorkloadSet wls;
  for (workload::MvWorkload& wl : workload::StandardWorkloads()) {
    auto shared = std::make_shared<workload::MvWorkload>(std::move(wl));
    const runtime::RunReport profiled =
        profiler.ProfileAndAnnotate(shared.get());
    if (!profiled.ok) {
      std::cerr << "profiling failed: " << profiled.error << "\n";
      return 1;
    }
    wls.push_back(std::move(shared));
  }

  // -------------------------------------------------------------------
  // 1. Worker sweep (sequential jobs), the PR-1 baseline trajectory.
  // -------------------------------------------------------------------
  const int kJobs = smoke ? 12 : 40;
  const std::vector<int> worker_sweep =
      smoke ? std::vector<int>{1, 4} : std::vector<int>{1, 2, 4, 8};
  std::vector<Sample> samples;
  TablePrinter table(
      {"workers", "jobs/s", "p50", "p99", "avg wait", "catalog hit%"});
  for (int workers : worker_sweep) {
    const Sample s = RunConfig(&disk, wls, workers, /*lanes=*/1, kJobs);
    table.AddRow({std::to_string(s.workers),
                  StrFormat("%.1f", s.jobs_per_second),
                  StrFormat("%.3fs", s.p50_seconds),
                  StrFormat("%.3fs", s.p99_seconds),
                  StrFormat("%.3fs", s.mean_queue_wait_seconds),
                  StrFormat("%.1f", 100.0 * s.catalog_hit_rate)});
    samples.push_back(s);
  }
  table.Print(std::cout);
  std::cout << StrFormat(
      "\nscaling: %.2fx jobs/s at %d workers vs 1 worker\n",
      samples.back().jobs_per_second / samples.front().jobs_per_second,
      samples.back().workers);

  // -------------------------------------------------------------------
  // 2. Inter-job workers × intra-job lanes sweep: same mixed workload,
  //    total threads = workers × lanes. Speedup is vs the 1-lane
  //    (sequential Controller) config at the same worker count. Thread
  //    starts per job and lane utilization make the persistent-pool and
  //    relaxed-publish wins visible.
  // -------------------------------------------------------------------
  const int kLaneJobs = smoke ? 8 : 24;
  const int kLaneReps = smoke ? 2 : 3;
  const std::vector<int> lane_workers =
      smoke ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 4};
  const std::vector<int> lane_sweep =
      smoke ? std::vector<int>{1, 4} : std::vector<int>{1, 2, 4};
  std::vector<Sample> lane_samples;
  TablePrinter lane_table({"workers", "lanes", "jobs/s", "p99",
                           "speedup vs 1 lane", "thr starts/job",
                           "lane util%"});
  std::map<int, double> lane1_jps;
  for (int workers : lane_workers) {
    // Interleave reps across lane counts (rep-major) and keep each
    // config's best: one config's short timed segment is dominated by
    // host noise, and back-to-back reps of the *same* config would bake
    // slow-minute drift into the lane-count ratios.
    std::map<int, Sample> best;
    for (int rep = 0; rep < kLaneReps; ++rep) {
      for (int lanes : lane_sweep) {
        const Sample s = RunConfig(&disk, wls, workers, lanes, kLaneJobs);
        auto it = best.find(lanes);
        if (it == best.end() ||
            s.jobs_per_second > it->second.jobs_per_second) {
          best[lanes] = s;
        }
      }
    }
    for (int lanes : lane_sweep) {
      const Sample& s = best[lanes];
      if (lanes == 1) lane1_jps[workers] = s.jobs_per_second;
      lane_samples.push_back(s);
      lane_table.AddRow(
          {std::to_string(s.workers), std::to_string(s.lanes),
           StrFormat("%.1f", s.jobs_per_second),
           StrFormat("%.3fs", s.p99_seconds),
           StrFormat("%.2fx", s.jobs_per_second / lane1_jps[workers]),
           StrFormat("%.2f", s.thread_starts_per_job),
           StrFormat("%.1f", 100.0 * s.lane_utilization)});
    }
  }
  std::cout << "\n";
  lane_table.Print(std::cout);

  // -------------------------------------------------------------------
  // 3. Wide synthetic DAG, one job: intra-job lanes vs the sequential
  //    Controller. Run against *throttled* multi-channel storage — the
  //    paper's regime, where refresh time is dominated by warehouse I/O.
  //    Independent nodes overlap their storage time on separate
  //    channels, so the antichain width (12), the channel count, and the
  //    lane count bound the speedup (compute also overlaps on
  //    multi-core hosts). All configs borrow lanes from one shared
  //    LanePool — thread starts stay bounded by its capacity across the
  //    whole sweep.
  // -------------------------------------------------------------------
  const std::string wide_dir =
      (std::filesystem::temp_directory_path() / "sc_bench_service_wide")
          .string();
  std::filesystem::remove_all(wide_dir);
  storage::DiskProfile wide_profile;
  wide_profile.throttle = true;
  wide_profile.channels = 8;
  wide_profile.read_bw = 48e6;   // modest warehouse storage: I/O-bound
  wide_profile.write_bw = 32e6;  // refresh, visible at bench scale
  storage::ThrottledDisk wide_disk(wide_dir, wide_profile);
  {
    runtime::Controller loader(&wide_disk, runtime::ControllerOptions{});
    workload::DataGenOptions wide_data;
    wide_data.scale = smoke ? 0.05 : 0.1;
    loader.LoadBaseTables(workload::GenerateTpcdsData(wide_data));
  }
  const workload::MvWorkload wide =
      workload::BuildWideSynthetic(12, /*heavy=*/true);
  const int kWideReps = smoke ? 1 : 3;
  runtime::LanePool wide_pool(4);  // shared across every lane config
  std::vector<WideSample> wide_samples;
  TablePrinter wide_table({"lanes", "wall", "speedup vs sequential",
                           "thr starts", "lane util%"});
  double sequential_wall = 0.0;
  for (int lanes : {1, 2, 4}) {
    runtime::ControllerOptions options;
    options.max_parallel_nodes = lanes;
    options.lane_pool = &wide_pool;
    runtime::Controller controller(&wide_disk, options);
    const std::int64_t starts_before = wide_pool.threads_started();
    // One untimed warmup, then best-of-N.
    if (!controller.RunUnoptimized(wide).ok) {
      std::cerr << "wide DAG run failed\n";
      return 1;
    }
    double best = 0.0;
    double best_util = 0.0;
    std::int64_t denials = 0;
    for (int rep = 0; rep < kWideReps; ++rep) {
      const double busy_before = wide_pool.busy_seconds();
      WallTimer timer;
      const runtime::RunReport report = controller.RunUnoptimized(wide);
      const double wall = timer.Seconds();
      if (!report.ok) {
        std::cerr << "wide DAG run failed: " << report.error << "\n";
        return 1;
      }
      denials += report.reserve_denials;
      if (best == 0.0 || wall < best) {
        best = wall;
        best_util = lanes > 1 ? (wide_pool.busy_seconds() - busy_before) /
                                    (wall * lanes)
                              : 0.0;
      }
    }
    if (lanes == 1) sequential_wall = best;
    WideSample sample;
    sample.lanes = lanes;
    sample.wall_seconds = best;
    sample.speedup = sequential_wall / best;
    sample.thread_starts = wide_pool.threads_started() - starts_before;
    sample.lane_utilization = best_util;
    sample.reserve_denials = denials;
    wide_samples.push_back(sample);
    wide_table.AddRow({std::to_string(lanes), StrFormat("%.3fs", best),
                       StrFormat("%.2fx", sample.speedup),
                       std::to_string(sample.thread_starts),
                       StrFormat("%.1f",
                                 100.0 * sample.lane_utilization)});
  }
  std::cout << "\n";
  wide_table.Print(std::cout);

  // -------------------------------------------------------------------
  // 4. Stage-aware ordering: a chains-shaped workload (4 chains × 4
  //    deep) whose MA-DFS order lists each chain depth-first. With the
  //    in-order publish protocol that starves early antichains; the
  //    opt::WidenStages post-pass reorders stage-major among
  //    memory-equivalent prefixes, feeding all 4 lanes from the start.
  // -------------------------------------------------------------------
  workload::MvWorkload chains = workload::BuildChainsSynthetic(4, 4);
  {
    runtime::Controller chain_profiler(&wide_disk,
                                       runtime::ControllerOptions{});
    const runtime::RunReport profiled =
        chain_profiler.ProfileAndAnnotate(&chains);
    if (!profiled.ok) {
      std::cerr << "chains profiling failed: " << profiled.error << "\n";
      return 1;
    }
  }
  std::vector<WidenSample> widen_samples;
  TablePrinter widen_table(
      {"ordering", "wall", "lane util%", "speedup vs ma-dfs"});
  const std::int64_t chains_budget = 24LL * 1024 * 1024;
  double madfs_wall = 0.0;
  for (const bool widen : {false, true}) {
    opt::AlternatingOptions opt_options;
    opt_options.widen_stages = widen;
    const opt::Plan plan =
        opt::AlternatingOptimize(chains.graph, chains_budget, opt_options)
            .plan;
    runtime::ControllerOptions options;
    options.budget = chains_budget;
    options.max_parallel_nodes = 4;
    options.lane_pool = &wide_pool;
    runtime::Controller controller(&wide_disk, options);
    if (!controller.Run(chains, plan).ok) {
      std::cerr << "chains warmup failed\n";
      return 1;
    }
    double best = 0.0;
    double best_util = 0.0;
    for (int rep = 0; rep < kWideReps; ++rep) {
      const double busy_before = wide_pool.busy_seconds();
      WallTimer timer;
      const runtime::RunReport report = controller.Run(chains, plan);
      const double wall = timer.Seconds();
      if (!report.ok) {
        std::cerr << "chains run failed: " << report.error << "\n";
        return 1;
      }
      if (best == 0.0 || wall < best) {
        best = wall;
        best_util =
            (wide_pool.busy_seconds() - busy_before) / (wall * 4);
      }
    }
    if (!widen) madfs_wall = best;
    WidenSample sample;
    sample.widened = widen;
    sample.wall_seconds = best;
    sample.lane_utilization = best_util;
    widen_samples.push_back(sample);
    widen_table.AddRow({widen ? "widened" : "ma-dfs",
                        StrFormat("%.3fs", best),
                        StrFormat("%.1f", 100.0 * best_util),
                        StrFormat("%.2fx", madfs_wall / best)});
  }
  std::cout << "\n";
  widen_table.Print(std::cout);

  // -------------------------------------------------------------------
  // 5. Cross-job shared catalog (PR 4): N tenants refreshing the *same*
  //    workload, with the content-keyed SharedCatalog vs the private-
  //    catalog baseline. Sharing turns repeat refreshes into memory
  //    reads: cross-job hit rate, bytes saved, and the recompute work
  //    eliminated are reported next to the jobs/sec win.
  // -------------------------------------------------------------------
  const int kSharedJobsPerTenant = smoke ? 4 : 8;
  const std::vector<int> tenant_sweep =
      smoke ? std::vector<int>{2, 4} : std::vector<int>{2, 4, 8};
  std::vector<SharedSample> shared_samples;
  TablePrinter shared_table({"tenants", "catalog", "jobs/s",
                             "speedup vs private", "xjob hit%",
                             "bytes saved", "compute (s)"});
  for (const int tenants : tenant_sweep) {
    double private_jps = 0.0;
    for (const bool shared : {false, true}) {
      const SharedSample s = RunSharedConfig(
          &disk, wls.front(), tenants, kSharedJobsPerTenant, shared);
      if (!shared) private_jps = s.jobs_per_second;
      shared_samples.push_back(s);
      shared_table.AddRow(
          {std::to_string(tenants), shared ? "shared" : "private",
           StrFormat("%.1f", s.jobs_per_second),
           StrFormat("%.2fx", s.jobs_per_second / private_jps),
           StrFormat("%.1f", 100.0 * s.cross_job_hit_rate),
           FormatBytes(s.bytes_saved),
           StrFormat("%.3f", s.total_compute_seconds)});
    }
  }
  std::cout << "\n";
  shared_table.Print(std::cout);

  // -------------------------------------------------------------------
  // 6. Tracing overhead (PR 6): the identical 4-tenant / 4-lane config
  //    with tracing off vs on, best-of-N each. Off is the production
  //    default (one branch per boundary — the zero-overhead-when-off
  //    contract); on additionally shows the recorder's cost and, with
  //    --trace, emits the Chrome trace artifact plus the metrics
  //    registry's per-segment snapshot delta.
  // -------------------------------------------------------------------
  // Smoke timed segments are ~1ms, so the disabled-vs-off comparison is
  // noise-dominated per rep; more best-of reps (they are cheap at smoke
  // scale) keep the CI overhead gate stable.
  const int kTraceJobs = smoke ? 16 : 24;
  const int kTraceReps = smoke ? 5 : 3;
  double trace_off_jps = 0.0;       // no recorder wired at all
  double trace_disabled_jps = 0.0;  // recorder wired, enabled == false
  double trace_on_jps = 0.0;
  std::unique_ptr<obs::TraceRecorder> recorder;
  std::map<std::string, double> registry_delta;
  for (int rep = 0; rep < kTraceReps; ++rep) {
    trace_off_jps = std::max(
        trace_off_jps,
        RunTraceConfig(&disk, wls, kTraceJobs, nullptr, nullptr));
    // The production tracing-off path: a recorder is attached but its
    // enabled flag is down, so every boundary pays exactly one relaxed
    // load and a branch. off vs disabled is the zero-overhead-when-off
    // contract, gated in CI.
    obs::TraceRecorderOptions disabled_options;
    disabled_options.enabled = false;
    obs::TraceRecorder disabled(disabled_options);
    trace_disabled_jps = std::max(
        trace_disabled_jps,
        RunTraceConfig(&disk, wls, kTraceJobs, &disabled, nullptr));
    // Fresh recorder per rep: the artifact holds exactly one service
    // run's spans, so job ids are unambiguous.
    recorder = std::make_unique<obs::TraceRecorder>();
    registry_delta.clear();
    trace_on_jps = std::max(
        trace_on_jps, RunTraceConfig(&disk, wls, kTraceJobs,
                                     recorder.get(), &registry_delta));
  }
  auto overhead_vs_off = [&](double jps) {
    return trace_off_jps <= 0.0 ? 0.0
                                : (trace_off_jps - jps) / trace_off_jps;
  };
  const double trace_overhead = overhead_vs_off(trace_on_jps);
  const double disabled_overhead = overhead_vs_off(trace_disabled_jps);
  TablePrinter trace_table({"tracing", "jobs/s", "overhead"});
  trace_table.AddRow({"off", StrFormat("%.1f", trace_off_jps), "-"});
  trace_table.AddRow({"disabled", StrFormat("%.1f", trace_disabled_jps),
                      StrFormat("%.1f%%", 100.0 * disabled_overhead)});
  trace_table.AddRow({"on", StrFormat("%.1f", trace_on_jps),
                      StrFormat("%.1f%%", 100.0 * trace_overhead)});
  std::cout << "\n";
  trace_table.Print(std::cout);
  std::cout << StrFormat(
      "events recorded: %zu (dropped %lld)\n", recorder->event_count(),
      static_cast<long long>(recorder->dropped()));
  std::cout << "registry deltas over the traced segment (nonzero):\n";
  int printed = 0;
  for (const auto& [name, delta] : registry_delta) {
    if (delta == 0.0 || printed >= 14) continue;
    std::cout << StrFormat("  %-44s %+.1f\n", name.c_str(), delta);
    ++printed;
  }
  if (write_trace) {
    if (obs::WriteChromeTraceFile(*recorder, trace_path)) {
      std::cout << "trace written to " << trace_path
                << " (chrome://tracing, ui.perfetto.dev, or "
                   "trace_inspect)\n";
    } else {
      std::cerr << "error: cannot write trace to " << trace_path << "\n";
      return 1;
    }
  }

  // -------------------------------------------------------------------
  // 7. Cancellation / deadline overhead (PR 8): the same steady-state
  //    service with plain jobs vs every job carrying a far deadline.
  //    The cancel token is polled at every stage / node / morsel /
  //    materialize boundary either way; a live deadline makes each poll
  //    also read the clock. The ratio is the price of the fault-
  //    tolerance layer on the fault-free hot path, gated loosely in CI
  //    (smoke segments are noisy); the <2% claim is measured on quiet
  //    hardware against the committed BENCH_pr7.json baseline.
  // -------------------------------------------------------------------
  const int kCancelJobs = smoke ? 16 : 24;
  const int kCancelReps = smoke ? 5 : 3;
  double cancel_plain_jps = 0.0;
  double cancel_deadline_jps = 0.0;
  for (int rep = 0; rep < kCancelReps; ++rep) {
    cancel_plain_jps = std::max(
        cancel_plain_jps, RunCancelConfig(&disk, wls, kCancelJobs, false));
    cancel_deadline_jps = std::max(
        cancel_deadline_jps,
        RunCancelConfig(&disk, wls, kCancelJobs, true));
  }
  const double cancel_overhead =
      cancel_plain_jps <= 0.0
          ? 0.0
          : (cancel_plain_jps - cancel_deadline_jps) / cancel_plain_jps;
  TablePrinter cancel_table({"jobs", "jobs/s", "overhead"});
  cancel_table.AddRow(
      {"plain", StrFormat("%.1f", cancel_plain_jps), "-"});
  cancel_table.AddRow({"deadline", StrFormat("%.1f", cancel_deadline_jps),
                       StrFormat("%.1f%%", 100.0 * cancel_overhead)});
  std::cout << "\n";
  cancel_table.Print(std::cout);

  // -------------------------------------------------------------------
  // 8. Compressed residency + spill (PR 9): the string-heavy workload
  //    at low/medium/high key cardinality, repeat tenants at a budget
  //    tight enough that plain-string MV outputs evict. Dictionary
  //    residency packs more MVs into the same budget and the spill tier
  //    serves what still overflows, so cross-job hits rise and follower
  //    recompute falls; at high cardinality (near-unique strings) the
  //    encoder declines and the two configs converge — the honesty
  //    check. The low-cardinality pair is gated: spills and refills must
  //    occur and the compressed config must strictly beat plain on hits
  //    and recompute, also under --smoke in CI.
  // -------------------------------------------------------------------
  const double kResidencyScale = smoke ? 0.2 : 0.5;
  const int kResidencyFollowers = smoke ? 3 : 4;
  struct ResidencyConfig {
    workload::StringCardinality cardinality;
    std::string name;
    std::int64_t budget = 0;
  };
  // MV output size is bounded by group cardinality (32 categories x 32
  // buckets at low), not by `scale`, so the tight low-cardinality budget
  // is the same in smoke and full runs.
  std::vector<ResidencyConfig> residency_sweep = {
      {workload::StringCardinality::kLow, "low", 192LL * 1024},
  };
  if (!smoke) {
    residency_sweep.push_back(
        {workload::StringCardinality::kMedium, "medium", 2LL * 1024 * 1024});
    residency_sweep.push_back(
        {workload::StringCardinality::kHigh, "high", 8LL * 1024 * 1024});
  }
  std::vector<ResidencySample> residency_samples;
  TablePrinter residency_table({"cardinality", "residency", "jobs/s",
                                "xjob hits", "bytes saved", "compute (s)",
                                "spills", "refills"});
  for (const ResidencyConfig& config : residency_sweep) {
    for (const bool compressed : {false, true}) {
      const ResidencySample s = RunResidencyConfig(
          config.cardinality, config.name, compressed, config.budget,
          kResidencyScale, kResidencyFollowers);
      residency_samples.push_back(s);
      residency_table.AddRow(
          {config.name, compressed ? "dict+spill" : "plain",
           StrFormat("%.1f", s.jobs_per_second),
           std::to_string(s.cross_job_hits), FormatBytes(s.bytes_saved),
           StrFormat("%.3f", s.total_compute_seconds),
           std::to_string(s.spills), std::to_string(s.spill_refills)});
    }
  }
  std::cout << "\n";
  residency_table.Print(std::cout);
  // The gate: the low-cardinality pair ran first, plain then compressed.
  // Smoke-only (the CI scenario): full sweeps run bigger data where the
  // single-run compute comparison is noise-dominated — the strict
  // version of that claim is pinned by service_residency_test.
  if (smoke) {
    const ResidencySample& plain = residency_samples[0];
    const ResidencySample& dict = residency_samples[1];
    bool gate_ok = true;
    if (dict.spills <= 0 || dict.spill_refills <= 0) {
      std::cerr << "residency gate: expected spill activity, got spills="
                << dict.spills << " refills=" << dict.spill_refills << "\n";
      gate_ok = false;
    }
    if (dict.cross_job_hits <= plain.cross_job_hits) {
      std::cerr << "residency gate: dict cross-job hits "
                << dict.cross_job_hits << " not above plain "
                << plain.cross_job_hits << "\n";
      gate_ok = false;
    }
    if (dict.total_compute_seconds >= plain.total_compute_seconds) {
      std::cerr << "residency gate: dict recompute "
                << dict.total_compute_seconds << "s not below plain "
                << plain.total_compute_seconds << "s\n";
      gate_ok = false;
    }
    if (!gate_ok) return 1;
    std::cout << StrFormat(
        "\nresidency gate (low cardinality): hits %lld -> %lld, compute "
        "%.3fs -> %.3fs, %lld spills / %lld refills: ok\n",
        static_cast<long long>(plain.cross_job_hits),
        static_cast<long long>(dict.cross_job_hits),
        plain.total_compute_seconds, dict.total_compute_seconds,
        static_cast<long long>(dict.spills),
        static_cast<long long>(dict.spill_refills));
  }

  // -------------------------------------------------------------------
  // 9. Durability (PR 10): (a) checksum-overhead gate — the verifying
  //    read mode (the serving default) must stay within 5% of the
  //    unverified fast path in both formats, since the CRC arithmetic
  //    rides along with parsing that already touches every byte; (b)
  //    kill-and-restart recovery smoke — a durable-spill service is
  //    torn down mid-population and a fresh one recovers the manifest's
  //    spill files as warm cross-job residency. Both gated under
  //    --smoke (the CI scenario).
  // -------------------------------------------------------------------
  const std::int64_t kChecksumRows = smoke ? 200'000 : 1'000'000;
  engine::Table checksum_table = [&] {
    std::vector<std::int64_t> ints;
    std::vector<double> doubles;
    std::vector<std::string> strs;
    ints.reserve(static_cast<std::size_t>(kChecksumRows));
    doubles.reserve(static_cast<std::size_t>(kChecksumRows));
    strs.reserve(static_cast<std::size_t>(kChecksumRows));
    for (std::int64_t i = 0; i < kChecksumRows; ++i) {
      ints.push_back(i * 2654435761LL);
      doubles.push_back(static_cast<double>(i) * 0.5);
      strs.push_back("cat_" + std::to_string(i % 64));
    }
    std::vector<engine::Column> cols;
    cols.push_back(engine::Column::FromInts(std::move(ints)));
    cols.push_back(engine::Column::FromDoubles(std::move(doubles)));
    cols.push_back(engine::Column::FromStrings(std::move(strs)));
    return engine::Table(
        engine::Schema({engine::Field{"k", engine::DataType::kInt64},
                        engine::Field{"v", engine::DataType::kFloat64},
                        engine::Field{"s", engine::DataType::kString}}),
        std::move(cols));
  }();
  // The smoke gate rides on these timings, so it takes more reps than
  // the full run: best-of-N floors tighten with N, and one read pair is
  // only ~15 ms.
  const int kChecksumReps = smoke ? 11 : 7;
  std::vector<ChecksumOverheadSample> checksum_samples;
  TablePrinter checksum_table_out(
      {"format", "bytes", "read (ms)", "verified (ms)", "overhead"});
  for (const bool compressed : {false, true}) {
    const ChecksumOverheadSample s =
        RunChecksumOverhead(checksum_table, compressed, kChecksumReps);
    checksum_samples.push_back(s);
    checksum_table_out.AddRow(
        {s.format, FormatBytes(s.bytes),
         StrFormat("%.2f", 1e3 * s.unverified_seconds),
         StrFormat("%.2f", 1e3 * s.verified_seconds),
         StrFormat("%.1f%%", 100.0 * s.overhead_fraction)});
  }
  std::cout << "\n";
  checksum_table_out.Print(std::cout);

  const RecoverySample recovery =
      RunRecoverySection(kResidencyScale, kResidencyFollowers);
  TablePrinter recovery_table(
      {"spills", "parked", "recovered", "bytes", "refills", "xjob hits",
       "hit rate", "corrupt"});
  recovery_table.AddRow(
      {std::to_string(recovery.spills),
       std::to_string(recovery.spilled_at_shutdown),
       std::to_string(recovery.recovered_entries),
       FormatBytes(recovery.recovered_bytes),
       std::to_string(recovery.refills_after_restart),
       std::to_string(recovery.cross_job_hits_after_restart),
       StrFormat("%.2f", recovery.hit_rate_after_restart),
       std::to_string(recovery.corrupt_files)});
  std::cout << "\n";
  recovery_table.Print(std::cout);

  // Gate on the smoke workload's reads in aggregate (byte-weighted over
  // both formats): per-format ratios are reported above, but scc1's
  // denominator is a ~2 ms varint decode where run-to-run noise alone
  // swings several percent, so the stable signal is total verified time
  // over total unverified time across the workload.
  double checksum_unverified_total = 0.0;
  double checksum_verified_total = 0.0;
  for (const ChecksumOverheadSample& s : checksum_samples) {
    checksum_unverified_total += s.unverified_seconds;
    checksum_verified_total += s.verified_seconds;
  }
  const double checksum_overall =
      checksum_unverified_total <= 0.0
          ? 0.0
          : (checksum_verified_total - checksum_unverified_total) /
                checksum_unverified_total;

  if (smoke) {
    bool durability_ok = true;
    if (checksum_overall > 0.05) {
      std::cerr << "durability gate: verified read overhead "
                << StrFormat("%.1f%%", 100.0 * checksum_overall)
                << " over the smoke workload exceeds 5%\n";
      durability_ok = false;
    }
    if (recovery.recovered_entries <= 0 ||
        recovery.refills_after_restart <= 0 ||
        recovery.cross_job_hits_after_restart <= 0) {
      std::cerr << "durability gate: recovery served nothing (recovered="
                << recovery.recovered_entries
                << " refills=" << recovery.refills_after_restart
                << " hits=" << recovery.cross_job_hits_after_restart
                << ")\n";
      durability_ok = false;
    }
    if (recovery.corrupt_files != 0) {
      std::cerr << "durability gate: clean recovery reported "
                << recovery.corrupt_files << " corrupt files\n";
      durability_ok = false;
    }
    if (!durability_ok) return 1;
    std::cout << StrFormat(
        "\ndurability gate: checksum overhead %.1f%% overall (%.1f%% sct1 "
        "/ %.1f%% scc1), recovery %lld entries -> %lld refills, %lld "
        "corrupt: ok\n",
        100.0 * checksum_overall,
        100.0 * checksum_samples[0].overhead_fraction,
        100.0 * checksum_samples[1].overhead_fraction,
        static_cast<long long>(recovery.recovered_entries),
        static_cast<long long>(recovery.refills_after_restart),
        static_cast<long long>(recovery.corrupt_files));
  }

  std::ostringstream json;
  json << "{\"bench\":\"service_throughput\",\"jobs\":" << kJobs
       << ",\"samples\":[";
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const Sample& s = samples[i];
    if (i > 0) json << ",";
    json << StrFormat(
        "{\"workers\":%d,\"jobs_per_second\":%.3f,"
        "\"p50_latency_seconds\":%.6f,\"p99_latency_seconds\":%.6f,"
        "\"mean_queue_wait_seconds\":%.6f,\"catalog_hit_rate\":%.4f}",
        s.workers, s.jobs_per_second, s.p50_seconds, s.p99_seconds,
        s.mean_queue_wait_seconds, s.catalog_hit_rate);
  }
  json << "],\"lane_sweep\":{\"jobs\":" << kLaneJobs << ",\"samples\":[";
  for (std::size_t i = 0; i < lane_samples.size(); ++i) {
    const Sample& s = lane_samples[i];
    if (i > 0) json << ",";
    json << StrFormat(
        "{\"workers\":%d,\"lanes\":%d,\"jobs_per_second\":%.3f,"
        "\"p99_latency_seconds\":%.6f,\"speedup_vs_sequential\":%.4f,"
        "\"thread_starts_per_job\":%.4f,\"lane_utilization\":%.4f}",
        s.workers, s.lanes, s.jobs_per_second, s.p99_seconds,
        s.jobs_per_second / lane1_jps[s.workers],
        s.thread_starts_per_job, s.lane_utilization);
  }
  json << "]},\"wide_dag\":{\"width\":12,\"samples\":[";
  for (std::size_t i = 0; i < wide_samples.size(); ++i) {
    const WideSample& s = wide_samples[i];
    if (i > 0) json << ",";
    json << StrFormat(
        "{\"lanes\":%d,\"wall_seconds\":%.6f,"
        "\"speedup_vs_sequential\":%.4f,\"thread_starts\":%lld,"
        "\"lane_utilization\":%.4f,\"reserve_denials\":%lld}",
        s.lanes, s.wall_seconds, s.speedup,
        static_cast<long long>(s.thread_starts), s.lane_utilization,
        static_cast<long long>(s.reserve_denials));
  }
  json << "]},\"widen_stages\":{\"chains\":4,\"depth\":4,\"lanes\":4,"
       << "\"samples\":[";
  for (std::size_t i = 0; i < widen_samples.size(); ++i) {
    const WidenSample& s = widen_samples[i];
    if (i > 0) json << ",";
    json << StrFormat(
        "{\"widened\":%s,\"wall_seconds\":%.6f,"
        "\"lane_utilization\":%.4f,\"speedup_vs_madfs\":%.4f}",
        s.widened ? "true" : "false", s.wall_seconds, s.lane_utilization,
        madfs_wall / s.wall_seconds);
  }
  json << "]},\"shared_catalog\":{\"jobs_per_tenant\":"
       << kSharedJobsPerTenant << ",\"samples\":[";
  for (std::size_t i = 0; i < shared_samples.size(); ++i) {
    const SharedSample& s = shared_samples[i];
    if (i > 0) json << ",";
    json << StrFormat(
        "{\"tenants\":%d,\"shared\":%s,\"jobs_per_second\":%.3f,"
        "\"cross_job_hit_rate\":%.4f,\"cross_job_bytes_saved\":%lld,"
        "\"total_compute_seconds\":%.6f}",
        s.tenants, s.shared ? "true" : "false", s.jobs_per_second,
        s.cross_job_hit_rate,
        static_cast<long long>(s.bytes_saved),
        s.total_compute_seconds);
  }
  json << StrFormat(
      "]},\"trace_overhead\":{\"jobs\":%d,"
      "\"jobs_per_second_off\":%.3f,"
      "\"jobs_per_second_disabled\":%.3f,"
      "\"jobs_per_second_on\":%.3f,"
      "\"disabled_overhead_fraction\":%.4f,"
      "\"overhead_fraction\":%.4f,\"events\":%lld,\"dropped\":%lld}",
      kTraceJobs, trace_off_jps, trace_disabled_jps, trace_on_jps,
      disabled_overhead, trace_overhead,
      static_cast<long long>(recorder->event_count()),
      static_cast<long long>(recorder->dropped()));
  json << StrFormat(
      ",\"cancel_overhead\":{\"jobs\":%d,"
      "\"jobs_per_second_plain\":%.3f,"
      "\"jobs_per_second_deadline\":%.3f,"
      "\"overhead_fraction\":%.4f}",
      kCancelJobs, cancel_plain_jps, cancel_deadline_jps,
      cancel_overhead);
  json << StrFormat(
      ",\"residency\":{\"scale\":%.3f,\"followers\":%d,\"samples\":[",
      kResidencyScale, kResidencyFollowers);
  for (std::size_t i = 0; i < residency_samples.size(); ++i) {
    const ResidencySample& s = residency_samples[i];
    if (i > 0) json << ",";
    json << StrFormat(
        "{\"cardinality\":\"%s\",\"distinct\":%lld,\"compressed\":%s,"
        "\"budget_bytes\":%lld,\"jobs_per_second\":%.3f,"
        "\"cross_job_hits\":%lld,\"cross_job_bytes_saved\":%lld,"
        "\"total_compute_seconds\":%.6f,\"spills\":%lld,"
        "\"spill_refills\":%lld,\"spill_bytes\":%lld}",
        s.cardinality.c_str(), static_cast<long long>(s.distinct),
        s.compressed ? "true" : "false",
        static_cast<long long>(s.budget), s.jobs_per_second,
        static_cast<long long>(s.cross_job_hits),
        static_cast<long long>(s.bytes_saved), s.total_compute_seconds,
        static_cast<long long>(s.spills),
        static_cast<long long>(s.spill_refills),
        static_cast<long long>(s.spill_bytes));
  }
  json << "]}";
  json << ",\"durability\":{\"checksum_overhead\":[";
  for (std::size_t i = 0; i < checksum_samples.size(); ++i) {
    const ChecksumOverheadSample& s = checksum_samples[i];
    if (i > 0) json << ",";
    json << StrFormat(
        "{\"format\":\"%s\",\"bytes\":%lld,"
        "\"unverified_seconds\":%.6f,\"verified_seconds\":%.6f,"
        "\"overhead_fraction\":%.4f}",
        s.format.c_str(), static_cast<long long>(s.bytes),
        s.unverified_seconds, s.verified_seconds, s.overhead_fraction);
  }
  json << StrFormat("],\"checksum_overhead_overall\":%.4f",
                    checksum_overall);
  json << StrFormat(
      ",\"recovery\":{\"spills\":%lld,\"spilled_at_shutdown\":%lld,"
      "\"recovered_entries\":%lld,\"recovered_bytes\":%lld,"
      "\"orphans_removed\":%lld,\"corrupt_files\":%lld,"
      "\"refills_after_restart\":%lld,"
      "\"cross_job_hits_after_restart\":%lld,"
      "\"hit_rate_after_restart\":%.4f}}",
      static_cast<long long>(recovery.spills),
      static_cast<long long>(recovery.spilled_at_shutdown),
      static_cast<long long>(recovery.recovered_entries),
      static_cast<long long>(recovery.recovered_bytes),
      static_cast<long long>(recovery.orphans_removed),
      static_cast<long long>(recovery.corrupt_files),
      static_cast<long long>(recovery.refills_after_restart),
      static_cast<long long>(recovery.cross_job_hits_after_restart),
      recovery.hit_rate_after_restart);
  json << "}";
  std::cout << "\n" << json.str() << "\n";
  std::ofstream(out_path) << json.str() << "\n";
  return 0;
}

}  // namespace
}  // namespace sc::bench

int main(int argc, char** argv) { return sc::bench::Main(argc, argv); }
