// Reproduces Figure 11: S/C speedup on the 100GB TPC-DSp dataset vs Memory
// Catalog size (0.4% - 6.4% of data size), for (a) spare system memory and
// (b) memory reallocated from DBMS query memory.
#include "bench_util.h"

namespace {

void RunPanel(const char* title, bool from_query_memory,
              const double* paper_speedups) {
  using namespace sc;
  std::cout << title << "\n";
  TablePrinter table({"Memory (%)", "Memory Catalog", "No opt (s)",
                      "S/C (s)", "Speedup", "Paper"});
  const double percents[] = {0.4, 0.8, 1.6, 3.2, 6.4};
  for (int p = 0; p < 5; ++p) {
    const std::int64_t budget =
        workload::BudgetForPercent(100.0, percents[p]);
    double noopt_total = 0;
    double sc_total = 0;
    for (int i = 0; i < 5; ++i) {
      const workload::MvWorkload wl =
          bench::AnnotatedWorkload(i, 100.0, /*partitioned=*/true);
      sim::SimOptions options = bench::MakeSimOptions(budget);
      if (from_query_memory) {
        // Reallocating query memory slows compute slightly (less hash /
        // sort memory for the engine): the paper observes at most a 0.25x
        // speedup difference; we model a small compute tax proportional
        // to the memory taken.
        options.compute_scale = 1.0 / (1.0 + 0.01 * percents[p]);
      }
      noopt_total +=
          bench::EndToEndSeconds(bench::Method::kNoOpt, wl.graph, budget,
                                 bench::MakeSimOptions(budget));
      sc_total += bench::EndToEndSeconds(bench::Method::kSc, wl.graph,
                                         budget, options);
    }
    table.AddRow({StrFormat("%.1f", percents[p]), FormatBytes(budget),
                  StrFormat("%.1f", noopt_total),
                  StrFormat("%.1f", sc_total),
                  StrFormat("%.2fx", noopt_total / sc_total),
                  StrFormat("%.2fx", paper_speedups[p])});
  }
  table.Print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main() {
  sc::bench::Banner(
      "Figure 11: speedup vs Memory Catalog size (100GB TPC-DSp)",
      "significant savings even at 0.4% of data size; reallocating query "
      "memory costs at most 0.25x of speedup");
  // Paper values keyed by Memory Catalog percent (0.4 ... 6.4): speedup
  // grows from 1.50x at 0.4% and saturates at ~4.35x by 3.2%.
  const double paper_a[] = {1.50, 2.07, 4.12, 4.35, 4.35};
  const double paper_b[] = {1.40, 1.96, 3.96, 4.12, 4.11};
  RunPanel("(a) Memory Catalog from spare memory", false, paper_a);
  RunPanel("(b) Memory Catalog from query memory", true, paper_b);
  return 0;
}
