// Ablation of this implementation's own design choices (DESIGN.md §6) —
// knobs the paper leaves implicit but that materially affect behaviour:
//   1. convergence criterion: total speedup score (prose) vs total flagged
//      size (Algorithm 2's literal pseudocode);
//   2. initial execution order: DFS-based (paper §I hint) vs plain
//      breadth-first topological order;
//   3. background materialization vs synchronous writes for flagged nodes
//      (isolates how much of S/C's win is the write overlap vs the reads).
#include "bench_util.h"

namespace {

using namespace sc;

double TotalSeconds(const opt::AlternatingOptions& options,
                    bool background) {
  const std::int64_t budget = workload::BudgetForPercent(100.0, 1.6);
  double total = 0;
  for (int i = 0; i < 5; ++i) {
    const workload::MvWorkload wl =
        bench::AnnotatedWorkload(i, 100.0, /*partitioned=*/false);
    const opt::Plan plan =
        opt::AlternatingOptimize(wl.graph, budget, options).plan;
    sim::SimOptions sim_options = bench::MakeSimOptions(budget);
    sim_options.background_materialize = background;
    total += sim::SimulateRun(wl.graph, plan, sim_options).makespan;
  }
  return total;
}

double TotalScoreAll(const opt::AlternatingOptions& options) {
  const std::int64_t budget = workload::BudgetForPercent(100.0, 1.6);
  double total = 0;
  for (int i = 0; i < 5; ++i) {
    const workload::MvWorkload wl =
        bench::AnnotatedWorkload(i, 100.0, false);
    total += opt::AlternatingOptimize(wl.graph, budget, options).total_score;
  }
  return total;
}

}  // namespace

int main() {
  using namespace sc;
  bench::Banner(
      "Design-choice ablation (100GB TPC-DS, 1.6GB Memory Catalog)",
      "this repo's own knobs: convergence criterion, initial order, and "
      "background materialization");

  TablePrinter table({"Variant", "Total time (s)", "Total score (s)"});
  const double noopt = [] {
    double total = 0;
    const std::int64_t budget = workload::BudgetForPercent(100.0, 1.6);
    for (int i = 0; i < 5; ++i) {
      const workload::MvWorkload wl =
          bench::AnnotatedWorkload(i, 100.0, false);
      total += sim::SimulateNoOpt(wl.graph, bench::MakeSimOptions(budget))
                   .makespan;
    }
    return total;
  }();
  table.AddRow({"No opt", StrFormat("%.1f", noopt), "0"});

  opt::AlternatingOptions defaults;
  table.AddRow({"S/C defaults (score convergence, background writes)",
                StrFormat("%.1f", TotalSeconds(defaults, true)),
                StrFormat("%.1f", TotalScoreAll(defaults))});

  opt::AlternatingOptions size_criterion;
  size_criterion.convergence =
      opt::AlternatingOptions::Convergence::kSize;
  table.AddRow({"Convergence by flagged size (pseudocode literal)",
                StrFormat("%.1f", TotalSeconds(size_criterion, true)),
                StrFormat("%.1f", TotalScoreAll(size_criterion))});

  table.AddRow({"Synchronous materialization (no write overlap)",
                StrFormat("%.1f", TotalSeconds(defaults, false)), "-"});

  table.Print(std::cout);
  std::cout << "\nThe write-overlap row isolates Figure 1's mechanism: "
               "with synchronous writes S/C only saves reads.\n";
  return 0;
}
