#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <memory>
#include <thread>
#include <vector>

#include "runtime/lane_pool.h"
#include "service/service.h"
#include "workload/datagen.h"
#include "workload/workloads.h"

namespace sc::runtime {
namespace {

void WaitFor(const std::function<bool()>& done, double seconds = 10.0) {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(seconds));
  while (!done() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

TEST(LanePoolTest, SpawnsLanesOnDemandUpToCapacity) {
  LanePool pool(3);
  EXPECT_EQ(pool.capacity(), 3);
  EXPECT_EQ(pool.live_lanes(), 0);  // lazy: no thread until work arrives
  EXPECT_EQ(pool.threads_started(), 0);

  std::atomic<int> done{0};
  for (int i = 0; i < 64; ++i) {
    pool.Submit([&done] { done.fetch_add(1); });
  }
  WaitFor([&] { return done.load() == 64; });
  EXPECT_EQ(done.load(), 64);
  EXPECT_LE(pool.threads_started(), 3);
  EXPECT_EQ(pool.tasks_completed(), 64);
}

TEST(LanePoolTest, ThrowingTaskIsCapturedNotFatal) {
  LanePool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 16; ++i) {
    if (i % 4 == 0) {
      pool.Submit([] { throw std::runtime_error("task bug"); });
    } else {
      pool.Submit([&done] { done.fetch_add(1); });
    }
  }
  // The pool survives escaped exceptions (no std::terminate), keeps
  // executing queued work, and reports the failures on a counter.
  WaitFor([&] { return pool.tasks_failed() == 4 && done.load() == 12; });
  EXPECT_EQ(pool.tasks_failed(), 4);
  EXPECT_EQ(done.load(), 12);
  EXPECT_EQ(pool.tasks_completed(), 16);  // failed tasks still complete
}

TEST(LanePoolTest, ReusesLanesAcrossBursts) {
  LanePool pool(4);
  std::atomic<int> done{0};
  for (int burst = 0; burst < 5; ++burst) {
    const int target = (burst + 1) * 16;
    for (int i = 0; i < 16; ++i) {
      pool.Submit([&done] { done.fetch_add(1); });
    }
    WaitFor([&] { return done.load() == target; });
    ASSERT_EQ(done.load(), target);
  }
  // Five back-to-back bursts, zero thread churn after the first.
  EXPECT_LE(pool.threads_started(), 4);
}

TEST(LanePoolTest, IdleShutdownStopsLanesAndRespawnsOnDemand) {
  LanePoolOptions options;
  options.capacity = 2;
  options.idle_shutdown_seconds = 0.05;
  LanePool pool(options);

  std::atomic<int> done{0};
  pool.Submit([&done] { done.fetch_add(1); });
  pool.Submit([&done] { done.fetch_add(1); });
  WaitFor([&] { return done.load() == 2; });
  const std::int64_t started = pool.threads_started();
  EXPECT_GE(started, 1);

  // Idle lanes exit after the shutdown horizon…
  WaitFor([&] { return pool.live_lanes() == 0; });
  EXPECT_EQ(pool.live_lanes(), 0);

  // …and the pool respawns on demand.
  pool.Submit([&done] { done.fetch_add(1); });
  WaitFor([&] { return done.load() == 3; });
  EXPECT_EQ(done.load(), 3);
  EXPECT_GT(pool.threads_started(), started);
}

TEST(LanePoolTest, DestructorRunsEveryQueuedTask) {
  std::atomic<int> done{0};
  {
    LanePool pool(2);
    for (int i = 0; i < 32; ++i) {
      pool.Submit([&done] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        done.fetch_add(1);
      });
    }
  }
  EXPECT_EQ(done.load(), 32);
}

// Borrow/return race coverage (runs under TSAN in CI): many threads
// submitting while lanes idle out and respawn concurrently.
TEST(LanePoolTest, ConcurrentSubmitStress) {
  LanePoolOptions options;
  options.capacity = 4;
  options.idle_shutdown_seconds = 0.001;  // force constant lane churn
  LanePool pool(options);
  std::atomic<int> done{0};
  constexpr int kProducers = 8;
  constexpr int kPerProducer = 100;
  std::vector<std::thread> producers;
  for (int t = 0; t < kProducers; ++t) {
    producers.emplace_back([&] {
      for (int i = 0; i < kPerProducer; ++i) {
        pool.Submit([&done] { done.fetch_add(1); });
        if (i % 10 == 0) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
      }
    });
  }
  for (auto& p : producers) p.join();
  WaitFor([&] { return done.load() == kProducers * kPerProducer; });
  EXPECT_EQ(done.load(), kProducers * kPerProducer);
  EXPECT_EQ(pool.tasks_completed(), kProducers * kPerProducer);
}

// The service-level reuse guarantee: back-to-back RefreshService jobs
// execute on the same service-wide pool, with zero thread construction
// for the second job.
TEST(LanePoolTest, BackToBackServiceJobsReuseLanes) {
  const std::string dir =
      testing::TempDir() + "/sc_lane_pool_service";
  std::filesystem::remove_all(dir);
  storage::DiskProfile profile;
  profile.throttle = false;
  storage::ThrottledDisk disk(dir, profile);

  workload::DataGenOptions data_options;
  data_options.scale = 0.03;
  {
    runtime::Controller loader(&disk, runtime::ControllerOptions{});
    loader.LoadBaseTables(workload::GenerateTpcdsData(data_options));
  }
  auto wl = std::make_shared<workload::MvWorkload>(
      workload::BuildWideSynthetic(6));

  service::ServiceOptions options;
  options.num_workers = 4;
  options.max_intra_job_lanes = 4;
  service::RefreshService service(&disk, options);

  service::RefreshJobSpec spec;
  spec.workload = wl;
  const service::JobResult first = service.Submit(spec).get();
  ASSERT_TRUE(first.report.ok) << first.report.error;
  EXPECT_GT(first.report.parallel_lanes, 1);
  const std::int64_t started = service.lane_pool().threads_started();
  EXPECT_GE(started, 1);
  EXPECT_LE(started, 4);

  for (int i = 0; i < 3; ++i) {
    const service::JobResult next = service.Submit(spec).get();
    ASSERT_TRUE(next.report.ok) << next.report.error;
    EXPECT_GT(next.report.parallel_lanes, 1);
  }
  EXPECT_EQ(service.lane_pool().threads_started(), started);
}

TEST(LanePoolTest, BusySecondsMonotonicUnderConcurrentReaders) {
  // The PR-6 busy-seconds race fix: lanes fold their task time into one
  // atomic before re-taking the pool lock, so concurrent completions
  // never lose an increment and a monitoring reader always sees a
  // monotonically non-decreasing value.
  LanePool pool(4);
  std::atomic<bool> stop{false};
  std::atomic<bool> regressed{false};
  std::thread reader([&pool, &stop, &regressed] {
    double last = 0.0;
    while (!stop.load()) {
      const double now = pool.busy_seconds();
      if (now < last) regressed.store(true);
      last = now;
      std::this_thread::yield();
    }
  });

  constexpr int kTasks = 200;
  std::atomic<int> done{0};
  for (int i = 0; i < kTasks; ++i) {
    pool.Submit([&done] {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      done.fetch_add(1);
    });
  }
  WaitFor([&done] { return done.load() == kTasks; });
  stop.store(true);
  reader.join();
  EXPECT_EQ(done.load(), kTasks);
  EXPECT_FALSE(regressed.load());
  // 200 tasks x 200us of sleep each: the accumulated busy time must at
  // least cover the sleeps (scheduling overhead only adds to it).
  EXPECT_GE(pool.busy_seconds(), kTasks * 200e-6 * 0.9);
  EXPECT_EQ(pool.tasks_completed(), kTasks);
}

}  // namespace
}  // namespace sc::runtime
