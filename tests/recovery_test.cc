// Crash-recovery acceptance (ISSUE 10): the SharedCatalog spill tier in
// recover mode survives process teardown — a fresh catalog/service
// adopts the manifest-live spill population and serves it as warm
// cross-job residency with zero recompute — while every form of file
// damage (bit flips, truncation, torn writes, injected corruption) is
// detected by the checksummed formats, counted, and never served. The
// chaos proof: a run with corruption injected into every spill write
// still produces on-disk MVs bit-identical to a fault-free baseline.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <future>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "fault/fault.h"
#include "runtime/controller.h"
#include "service/service.h"
#include "storage/shared_catalog.h"
#include "storage/spill_manifest.h"
#include "workload/datagen.h"
#include "workload/workloads.h"

namespace sc::service {
namespace {

namespace fs = std::filesystem;

constexpr int kWidth = 6;
constexpr int kFollowers = 3;

storage::DiskProfile FastDisk() {
  storage::DiskProfile profile;
  profile.throttle = false;
  return profile;
}

std::string FreshDir(const std::string& tag) {
  const std::string dir = testing::TempDir() + "/sc_recovery_" + tag;
  fs::remove_all(dir);
  return dir;
}

engine::TablePtr MakeTable(int salt) {
  std::vector<std::int64_t> ints;
  std::vector<std::string> strs;
  ints.reserve(512);
  strs.reserve(512);
  for (int i = 0; i < 512; ++i) {
    ints.push_back(static_cast<std::int64_t>(salt) * 100000 + i * 7);
    strs.push_back("cat_" + std::to_string((i * (salt + 3)) % 13));
  }
  std::vector<engine::Column> cols;
  cols.push_back(engine::Column::FromInts(std::move(ints)));
  cols.push_back(engine::Column::FromStrings(std::move(strs)));
  return std::make_shared<engine::Table>(
      engine::Schema({engine::Field{"k", engine::DataType::kInt64},
                      engine::Field{"s", engine::DataType::kString}}),
      std::move(cols));
}

std::vector<std::string> SpillFiles(const std::string& dir) {
  std::vector<std::string> files;
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.size() > 4 && name.substr(name.size() - 4) == ".scc") {
      files.push_back(entry.path().string());
    }
  }
  return files;
}

storage::SpillOptions RecoverSpill(const std::string& dir) {
  storage::SpillOptions spill;
  spill.directory = dir;
  spill.recover = true;
  return spill;
}

/// Publishes two tables into a budget that only holds one, so the first
/// is evicted to a spill file; returns that table for later comparison.
engine::TablePtr SpillOne(const std::string& dir, bool mark_durable) {
  engine::TablePtr first = MakeTable(1);
  engine::TablePtr second = MakeTable(2);
  const std::int64_t budget = first->ByteSize() * 3 / 2;
  storage::SharedCatalog catalog(budget, 8, RecoverSpill(dir));
  EXPECT_TRUE(catalog.Publish(1, first, first->ByteSize()));
  EXPECT_TRUE(catalog.Publish(2, second, second->ByteSize()));
  EXPECT_EQ(catalog.spills(), 1);
  EXPECT_EQ(catalog.spilled_entries(), 1u);
  if (mark_durable) catalog.MarkDurable(1);
  return first;  // catalog destructs here; recover mode keeps the file
}

TEST(RecoveryTest, CatalogRecoversSpilledEntriesAcrossLifetimes) {
  const std::string dir = FreshDir("unit_roundtrip");
  const engine::TablePtr original = SpillOne(dir, /*mark_durable=*/true);
  ASSERT_EQ(SpillFiles(dir).size(), 1u);
  ASSERT_TRUE(fs::exists(dir + "/" + storage::SpillManifest::kFileName));
  {
    storage::SharedCatalog catalog(original->ByteSize() * 2, 8,
                                   RecoverSpill(dir));
    EXPECT_EQ(catalog.recovered_entries(), 1);
    EXPECT_GT(catalog.recovered_bytes(), 0);
    EXPECT_TRUE(catalog.Contains(1));
    std::int64_t size = 0;
    bool durable = false;
    const engine::TablePtr pinned = catalog.Pin(1, &size, true, &durable);
    ASSERT_NE(pinned, nullptr);
    // Logical equality across the spill's dictionary re-encoding, and
    // the durable upgrade survived the restart via the journal.
    EXPECT_TRUE(*pinned == *original);
    EXPECT_TRUE(durable);
    EXPECT_EQ(catalog.spill_refills(), 1);
    EXPECT_EQ(catalog.hits(), 1);
    EXPECT_EQ(catalog.corrupt_files(), 0);
    catalog.Unpin(1);
  }
  // The refill consumed the spill file and journaled its removal: a
  // third incarnation has nothing to recover.
  storage::SharedCatalog third(original->ByteSize() * 2, 8,
                               RecoverSpill(dir));
  EXPECT_EQ(third.recovered_entries(), 0);
}

TEST(RecoveryTest, DamagedSpillFilesDetectedCountedNeverServed) {
  // Same-size damage (bit flip, torn zero-tail) passes the adoption
  // size check and must be caught by the verified refill instead.
  const fault::CorruptKind kinds[] = {fault::CorruptKind::kBitFlip,
                                      fault::CorruptKind::kTornRename};
  for (const fault::CorruptKind kind : kinds) {
    const std::string dir =
        FreshDir(std::string("unit_") + fault::CorruptKindName(kind));
    const engine::TablePtr original = SpillOne(dir, false);
    const std::vector<std::string> files = SpillFiles(dir);
    ASSERT_EQ(files.size(), 1u);
    fault::CorruptionSpec spec;
    spec.kind = kind;
    spec.offset_u = 0.5;
    spec.bit_u = 0.5;
    fault::CorruptFile(files[0], spec);

    storage::SharedCatalog catalog(original->ByteSize() * 2, 8,
                                   RecoverSpill(dir));
    EXPECT_EQ(catalog.recovered_entries(), 1);
    EXPECT_EQ(catalog.Pin(1), nullptr) << fault::CorruptKindName(kind);
    EXPECT_EQ(catalog.corrupt_files(), 1);
    EXPECT_EQ(catalog.spilled_entries(), 0u);
    EXPECT_TRUE(SpillFiles(dir).empty());  // quarantined = deleted
    EXPECT_EQ(catalog.misses(), 1);        // fell back to recompute
  }
}

TEST(RecoveryTest, TruncatedSpillFileRejectedAtAdoption) {
  const std::string dir = FreshDir("unit_truncate");
  const engine::TablePtr original = SpillOne(dir, false);
  const std::vector<std::string> files = SpillFiles(dir);
  ASSERT_EQ(files.size(), 1u);
  fault::CorruptionSpec spec;
  spec.kind = fault::CorruptKind::kTruncate;
  spec.offset_u = 0.5;
  fault::CorruptFile(files[0], spec);

  // The journal promises more bytes than the file holds: rejected before
  // any read, counted, removed.
  storage::SharedCatalog catalog(original->ByteSize() * 2, 8,
                                 RecoverSpill(dir));
  EXPECT_EQ(catalog.recovered_entries(), 0);
  EXPECT_EQ(catalog.corrupt_files(), 1);
  EXPECT_FALSE(catalog.Contains(1));
  EXPECT_TRUE(SpillFiles(dir).empty());
}

TEST(RecoveryTest, OrphanFilesRemovedAtStartup) {
  const std::string dir = FreshDir("unit_orphans");
  const engine::TablePtr original = SpillOne(dir, false);
  // A spill file whose journal append never landed, and a stray temp
  // file from an interrupted atomic write.
  { std::ofstream out(dir + "/spill_777.scc"); out << "unjournaled"; }
  { std::ofstream out(dir + "/spill_0.scc.tmp"); out << "half-written"; }

  storage::SharedCatalog catalog(original->ByteSize() * 2, 8,
                                 RecoverSpill(dir));
  EXPECT_EQ(catalog.recovered_entries(), 1);
  EXPECT_EQ(catalog.orphans_removed(), 2);
  EXPECT_FALSE(fs::exists(dir + "/spill_777.scc"));
  EXPECT_FALSE(fs::exists(dir + "/spill_0.scc.tmp"));
  // The adopted file itself survived the sweep.
  EXPECT_EQ(SpillFiles(dir).size(), 1u);
}

TEST(RecoveryTest, ScratchModeStillWipesDirectoryAndJournal) {
  const std::string dir = FreshDir("unit_scratch");
  {
    engine::TablePtr first = MakeTable(1);
    storage::SpillOptions spill;
    spill.directory = dir;  // recover stays false: pre-durability lifecycle
    storage::SharedCatalog catalog(first->ByteSize() * 3 / 2, 8, spill);
    ASSERT_TRUE(catalog.Publish(1, first, first->ByteSize()));
    engine::TablePtr second = MakeTable(2);
    ASSERT_TRUE(catalog.Publish(2, second, second->ByteSize()));
    ASSERT_EQ(catalog.spilled_entries(), 1u);
  }
  EXPECT_TRUE(SpillFiles(dir).empty());
  EXPECT_FALSE(fs::exists(dir + "/" + storage::SpillManifest::kFileName));
}

// ---- Service-level kill-and-restart harness ----

std::shared_ptr<const workload::MvWorkload> AnnotatedStringHeavy(
    storage::ThrottledDisk* disk) {
  workload::StringHeavyOptions data_options;
  data_options.scale = 0.2;  // 12k events
  data_options.cardinality = workload::StringCardinality::kLow;
  runtime::Controller profiler(disk, runtime::ControllerOptions{});
  profiler.LoadBaseTables(workload::GenerateStringHeavyData(data_options));
  auto wl = std::make_shared<workload::MvWorkload>(
      workload::BuildStringHeavySynthetic(kWidth));
  const runtime::RunReport report = profiler.ProfileAndAnnotate(wl.get());
  EXPECT_TRUE(report.ok) << report.error;
  return wl;
}

std::vector<JobResult> RunJobs(
    RefreshService* service,
    std::shared_ptr<const workload::MvWorkload> wl, const std::string& tag,
    int jobs) {
  std::vector<std::future<JobResult>> futures;
  for (int i = 0; i < jobs; ++i) {
    RefreshJobSpec spec;
    spec.workload = wl;
    spec.tenant = tag + std::to_string(i);
    futures.push_back(service->Submit(std::move(spec)));
  }
  std::vector<JobResult> results;
  for (auto& future : futures) {
    results.push_back(future.get());
    EXPECT_TRUE(results.back().report.ok) << results.back().report.error;
  }
  return results;
}

std::int64_t SumCrossJobHits(const std::vector<JobResult>& results) {
  std::int64_t hits = 0;
  for (const JobResult& r : results) hits += r.report.cross_job_hits;
  return hits;
}

ServiceOptions RecoverableService(const std::string& spill_dir) {
  ServiceOptions options;
  options.num_workers = 2;
  // Well under the compressed working set: spills are guaranteed, and a
  // non-trivial spill population is still parked when the run ends.
  options.global_budget = 64LL * 1024;
  options.spill_directory = spill_dir;
  options.spill_recover = true;
  return options;
}

TEST(RecoveryTest, ServiceRecoversSpillPopulationAcrossRestart) {
  storage::ThrottledDisk disk(FreshDir("svc_restart"), FastDisk());
  auto wl = AnnotatedStringHeavy(&disk);
  const std::string spill_dir = FreshDir("svc_restart_spill");
  const ServiceOptions options = RecoverableService(spill_dir);
  {
    RefreshService service(&disk, options);
    RunJobs(&service, wl, "seed", 1);
    RunJobs(&service, wl, "tenant", kFollowers);
    ASSERT_GT(service.shared_catalog().spills(), 0);
    ASSERT_GT(service.shared_catalog().spilled_entries(), 0u);
    service.Shutdown();
  }
  // The torn-down process left its spill population and journal behind.
  ASSERT_TRUE(
      fs::exists(spill_dir + "/" + storage::SpillManifest::kFileName));
  ASSERT_FALSE(SpillFiles(spill_dir).empty());

  RefreshService service(&disk, options);
  EXPECT_GT(service.shared_catalog().recovered_entries(), 0);
  EXPECT_GT(service.shared_catalog().recovered_bytes(), 0);
  // A cold restart with no seed job: every cross-job hit below is
  // served by the recovered population — zero recompute for those MVs.
  const std::vector<JobResult> after =
      RunJobs(&service, wl, "restart", kFollowers);
  EXPECT_GT(SumCrossJobHits(after), 0);
  EXPECT_GT(service.shared_catalog().spill_refills(), 0);
  EXPECT_EQ(service.shared_catalog().corrupt_files(), 0);

  const std::map<std::string, double> gauges = service.registry().Snapshot();
  ASSERT_TRUE(gauges.count("sc_recovered_entries_total"));
  ASSERT_TRUE(gauges.count("sc_recovered_bytes"));
  ASSERT_TRUE(gauges.count("sc_corrupt_files_total"));
  ASSERT_TRUE(gauges.count("sc_spill_orphans_removed_total"));
  ASSERT_TRUE(gauges.count("sc_manifest_compactions_total"));
  EXPECT_GT(gauges.at("sc_recovered_entries_total"), 0.0);
  EXPECT_EQ(gauges.at("sc_corrupt_files_total"), 0.0);
  service.Shutdown();
}

std::map<std::string, std::string> WarehouseBytes(const std::string& root) {
  std::map<std::string, std::string> files;
  for (const auto& entry : fs::directory_iterator(root)) {
    if (!entry.is_regular_file()) continue;
    std::ifstream in(entry.path(), std::ios::binary);
    std::stringstream buffer;
    buffer << in.rdbuf();
    files[entry.path().filename().string()] = buffer.str();
  }
  return files;
}

TEST(RecoveryTest, InjectedCorruptionDetectedNeverServedMvsBitIdentical) {
  // Fault-free baseline: same workload, same budget, clean spill tier.
  storage::ThrottledDisk clean_disk(FreshDir("chaos_clean"), FastDisk());
  {
    auto wl = AnnotatedStringHeavy(&clean_disk);
    ServiceOptions options =
        RecoverableService(FreshDir("chaos_clean_spill"));
    RefreshService service(&clean_disk, options);
    RunJobs(&service, wl, "seed", 1);
    RunJobs(&service, wl, "tenant", kFollowers);
    service.Shutdown();
  }

  // Chaos run: every spill write is corrupted the instant it lands.
  storage::ThrottledDisk chaos_disk(FreshDir("chaos"), FastDisk());
  auto wl = AnnotatedStringHeavy(&chaos_disk);
  const std::string spill_dir = FreshDir("chaos_spill");
  fault::FaultInjector injector(/*seed=*/7);
  fault::FaultRule rule;
  rule.site = fault::Site::kSpillWrite;
  rule.probability = 1.0;
  rule.max_fires = 0;  // unlimited
  rule.corrupt = fault::CorruptKind::kBitFlip;
  injector.AddRule(rule);
  {
    ServiceOptions options = RecoverableService(spill_dir);
    options.fault_injector = &injector;
    RefreshService service(&chaos_disk, options);
    RunJobs(&service, wl, "seed", 1);
    RunJobs(&service, wl, "tenant", kFollowers);
    ASSERT_GT(service.shared_catalog().spills(), 0);
    service.Shutdown();
    // Every spill file was damaged as it landed, so every refill attempt
    // in the run hit a verified read that caught it: detected, erased,
    // recomputed — and the jobs above still all succeeded.
    EXPECT_GT(service.shared_catalog().corrupt_files(), 0);
    EXPECT_GT(service.registry().Snapshot().at("sc_corrupt_files_total"),
              0.0);
  }
  ASSERT_GT(injector.total_corruptions(), 0);

  // Second damage window: rebuild a clean spill population on the same
  // directory, tear the service down, then corrupt every surviving file
  // *between* teardown and recovery (bit-rot while the service was
  // down). Same-size bit flips pass the adoption size check; the lazy
  // verified refills after restart must catch every one.
  {
    RefreshService service(&chaos_disk, RecoverableService(spill_dir));
    RunJobs(&service, wl, "rebuild-seed", 1);
    RunJobs(&service, wl, "rebuild", kFollowers);
    ASSERT_GT(service.shared_catalog().spilled_entries(), 0u);
    service.Shutdown();
  }
  const std::vector<std::string> survivors = SpillFiles(spill_dir);
  ASSERT_FALSE(survivors.empty());
  for (const std::string& file : survivors) {
    fault::CorruptionSpec spec;
    spec.kind = fault::CorruptKind::kBitFlip;
    spec.offset_u = 0.5;
    spec.bit_u = 0.5;
    fault::CorruptFile(file, spec);
  }
  {
    RefreshService service(&chaos_disk, RecoverableService(spill_dir));
    EXPECT_GT(service.shared_catalog().recovered_entries(), 0);
    RunJobs(&service, wl, "restart", kFollowers);
    EXPECT_GT(service.shared_catalog().corrupt_files(), 0);
    EXPECT_GT(service.registry().Snapshot().at("sc_corrupt_files_total"),
              0.0);
    service.Shutdown();
  }

  // The chaos proof: despite corrupting every spill file, the final
  // on-disk MVs are bit-identical to the fault-free baseline — damaged
  // residency was detected and recomputed, never written through.
  const auto clean = WarehouseBytes(clean_disk.root_dir());
  const auto chaos = WarehouseBytes(chaos_disk.root_dir());
  ASSERT_EQ(clean.size(), chaos.size());
  for (const auto& [name, bytes] : clean) {
    ASSERT_TRUE(chaos.count(name)) << name;
    EXPECT_TRUE(chaos.at(name) == bytes)
        << name << " differs from the fault-free baseline";
  }
}

}  // namespace
}  // namespace sc::service
