#ifndef SC_TESTS_TEST_UTIL_H_
#define SC_TESTS_TEST_UTIL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "graph/graph.h"
#include "graph/topo.h"

namespace sc::test {

/// The toy graph of paper Figure 7 (sizes in GB, speedup score == size):
///
///   v1(100) -> v2(10) -> v3(100) -> v5(10) -> v6(10)
///   v1      -> v4(10)
///   v3      -> v4? No: v1 -> v4; v4 depends only on v1.
///
/// Structure used in the paper: v1 feeds v2 and v4; v2 feeds v3; v3 feeds
/// v5; v5 feeds v6. Executing v4 before v3 (order 2) lets both 100GB nodes
/// be flagged under M = 100GB.
inline graph::Graph Figure7Graph() {
  graph::Graph g;
  auto add = [&](const std::string& name, std::int64_t gb) {
    graph::NodeInfo info;
    info.name = name;
    info.size_bytes = gb;          // use GB as abstract units
    info.speedup_score = static_cast<double>(gb);
    return g.AddNode(std::move(info));
  };
  const auto v1 = add("v1", 100);
  const auto v2 = add("v2", 10);
  const auto v3 = add("v3", 100);
  const auto v4 = add("v4", 10);
  const auto v5 = add("v5", 10);
  const auto v6 = add("v6", 10);
  g.AddEdge(v1, v2);
  g.AddEdge(v1, v4);
  g.AddEdge(v2, v3);
  g.AddEdge(v3, v5);
  g.AddEdge(v5, v6);
  return g;
}

/// The toy graph of paper Figure 8 (sizes in GB, score == size):
/// v1(20) feeds v2(100) and v3(80); v2 feeds v5(20) via v4? The paper's
/// figure: v1 -> {v2, v3}; v2 -> v4(80); v3 -> {v5(20), v6(20)};
/// v5 -> v7(100); v6 joins v7's branch. We reproduce the essential
/// tie-break situation: after v1, both v2 (unflagged, 100GB) and v3
/// (flagged, 80GB) are ready; scheduling v2's branch first keeps v3
/// resident longer.
inline graph::Graph Figure8Graph() {
  graph::Graph g;
  auto add = [&](const std::string& name, std::int64_t gb) {
    graph::NodeInfo info;
    info.name = name;
    info.size_bytes = gb;
    info.speedup_score = static_cast<double>(gb);
    return g.AddNode(std::move(info));
  };
  const auto v1 = add("v1", 20);
  const auto v2 = add("v2", 100);
  const auto v3 = add("v3", 80);
  const auto v4 = add("v4", 80);
  const auto v5 = add("v5", 20);
  const auto v6 = add("v6", 20);
  const auto v7 = add("v7", 100);
  g.AddEdge(v1, v2);
  g.AddEdge(v1, v3);
  g.AddEdge(v2, v4);
  g.AddEdge(v3, v5);
  g.AddEdge(v3, v6);
  g.AddEdge(v5, v7);
  g.AddEdge(v6, v7);
  return g;
}

/// A simple diamond: a -> {b, c} -> d.
inline graph::Graph DiamondGraph(std::int64_t size = 10) {
  graph::Graph g;
  auto add = [&](const std::string& name) {
    graph::NodeInfo info;
    info.name = name;
    info.size_bytes = size;
    info.speedup_score = static_cast<double>(size);
    return g.AddNode(std::move(info));
  };
  const auto a = add("a");
  const auto b = add("b");
  const auto c = add("c");
  const auto d = add("d");
  g.AddEdge(a, b);
  g.AddEdge(a, c);
  g.AddEdge(b, d);
  g.AddEdge(c, d);
  return g;
}

/// Random layered DAG with random sizes/scores for property tests.
inline graph::Graph RandomDag(std::int32_t num_nodes, std::uint64_t seed,
                              std::int64_t max_size = 100) {
  Rng rng(seed);
  graph::Graph g;
  for (std::int32_t i = 0; i < num_nodes; ++i) {
    graph::NodeInfo info;
    info.name = "n" + std::to_string(i);
    info.size_bytes = rng.UniformInt(1, max_size);
    info.speedup_score = static_cast<double>(rng.UniformInt(0, 50));
    g.AddNode(std::move(info));
  }
  // Edges only from lower to higher ids: acyclic by construction.
  for (std::int32_t to = 1; to < num_nodes; ++to) {
    const std::int64_t num_parents = rng.UniformInt(0, 3);
    for (std::int64_t e = 0; e < num_parents; ++e) {
      const auto from =
          static_cast<graph::NodeId>(rng.UniformInt(0, to - 1));
      g.AddEdge(from, to);
    }
  }
  return g;
}

}  // namespace sc::test

#endif  // SC_TESTS_TEST_UTIL_H_
