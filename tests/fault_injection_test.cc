#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "fault/fault.h"
#include "runtime/cancel.h"
#include "runtime/controller.h"
#include "service/service.h"
#include "workload/datagen.h"
#include "workload/workloads.h"

namespace sc::service {
namespace {

storage::DiskProfile FastDisk() {
  storage::DiskProfile profile;
  profile.throttle = false;
  return profile;
}

std::string FreshDir(const std::string& tag) {
  const std::string dir = testing::TempDir() + "/sc_fault_" + tag;
  std::filesystem::remove_all(dir);
  return dir;
}

/// Loads tiny TPC-DS data into `disk` and returns the Io1 workload with
/// observed execution metadata. Data generation is seeded, so every
/// disk prepared this way holds bit-identical base tables — the anchor
/// for the bit-identical-output assertions below.
std::shared_ptr<const workload::MvWorkload> AnnotatedWorkload(
    storage::ThrottledDisk* disk) {
  workload::DataGenOptions data_options;
  data_options.scale = 0.03;
  runtime::Controller profiler(disk, runtime::ControllerOptions{});
  profiler.LoadBaseTables(workload::GenerateTpcdsData(data_options));
  auto wl = std::make_shared<workload::MvWorkload>(workload::BuildIo1());
  const runtime::RunReport report = profiler.ProfileAndAnnotate(wl.get());
  EXPECT_TRUE(report.ok) << report.error;
  return wl;
}

/// Runs the workload once on a fresh fault-free service and returns the
/// disk directory, which then holds the reference MV bytes.
std::string BaselineRun(const std::string& tag) {
  const std::string dir = FreshDir(tag);
  storage::ThrottledDisk disk(dir, FastDisk());
  auto wl = AnnotatedWorkload(&disk);
  ServiceOptions options;
  options.num_workers = 2;
  RefreshService service(&disk, options);
  RefreshJobSpec spec;
  spec.workload = wl;
  const JobResult result = service.Submit(std::move(spec)).get();
  EXPECT_TRUE(result.report.ok) << result.report.error;
  EXPECT_EQ(result.status, JobStatus::kOk);
  service.Shutdown();
  return dir;
}

// ---------------------------------------------------------------------------
// Chaos: faults at every site, exact cleanup invariants
// ---------------------------------------------------------------------------

TEST(FaultInjectionTest, ChaosEverySiteInvariantsHold) {
  const std::string baseline_dir = BaselineRun("chaos_baseline");
  storage::ThrottledDisk baseline_disk(baseline_dir, FastDisk());

  const std::string dir = FreshDir("chaos");
  storage::ThrottledDisk disk(dir, FastDisk());
  auto wl = AnnotatedWorkload(&disk);

  // A seeded failure schedule covering every injection site, a mix of
  // transient (retryable) and permanent rules. max_fires bounds each
  // rule so the tail of the run executes clean.
  fault::FaultInjector faults(/*seed=*/42);
  faults.AddRule({fault::Site::kDiskWrite, "", 0.05, 0, 6, true});
  faults.AddRule({fault::Site::kDiskWrite, "", 0.02, 0, 2, false});
  faults.AddRule({fault::Site::kDiskRead, "", 0.03, 0, 4, true});
  faults.AddRule({fault::Site::kCatalogPublish, "", 0.10, 0, 8, true});
  faults.AddRule({fault::Site::kBudgetGrant, "", 0.10, 0, 2, false});
  faults.AddRule({fault::Site::kNodeExecute, "", 0.03, 0, 6, true});
  faults.AddRule({fault::Site::kNodeExecute, "", 0.01, 0, 2, false});

  ServiceOptions options;
  options.num_workers = 4;
  options.max_intra_job_lanes = 2;
  options.global_budget = 24LL * 1024 * 1024;
  options.fault_injector = &faults;
  options.retry_limit = 2;
  options.retry_backoff_ms = 0.1;
  RefreshService service(&disk, options);

  constexpr int kTenants = 8;
  constexpr int kJobs = 24;
  std::vector<std::future<JobResult>> futures;
  for (int i = 0; i < kJobs; ++i) {
    RefreshJobSpec spec;
    spec.workload = wl;
    spec.tenant = "tenant" + std::to_string(i % kTenants);
    spec.priority = i % 3;
    spec.requested_budget = options.global_budget / 2;
    futures.push_back(service.Submit(std::move(spec)));
  }

  int ok = 0;
  int failed = 0;
  for (auto& future : futures) {
    const JobResult result = future.get();
    EXPECT_EQ(result.report.ok, result.status == JobStatus::kOk);
    if (result.status == JobStatus::kOk) {
      ++ok;
    } else {
      ++failed;
      EXPECT_FALSE(result.report.error.empty());
    }
  }
  service.Shutdown();

  // Detach the injector: the verification reads below must see the
  // disk as it was left, not consume leftover fault-rule budget.
  disk.SetFaultInjector(nullptr);

  // The schedule actually fired, and the run survived it: with a
  // retry budget most jobs recover from the transient rules.
  EXPECT_GT(faults.total_fires(), 0);
  EXPECT_GT(ok, 0);

  // Exact-cleanup invariants: whatever mix of failures, cancels, and
  // successes the schedule produced, every grant was released, every
  // waiter drained, every shared pin dropped, and every reservation
  // returned.
  EXPECT_EQ(service.broker().reserved_bytes(), 0);
  EXPECT_EQ(service.broker().waiting_count(), 0u);
  for (int t = 0; t < kTenants; ++t) {
    const std::string tenant = "tenant" + std::to_string(t);
    EXPECT_EQ(service.broker().tenant_reserved_bytes(tenant), 0)
        << tenant;
    EXPECT_EQ(service.broker().tenant_shared_bytes(tenant), 0) << tenant;
  }
  EXPECT_EQ(service.shared_catalog().pinned_bytes(), 0);

  // No partial MV ever becomes visible: every table on the chaos disk
  // is bit-identical to the fault-free baseline (failed writes are
  // atomic — the previous complete version survives).
  for (graph::NodeId v = 0; v < wl->graph.num_nodes(); ++v) {
    const std::string& name = wl->graph.node(v).name;
    if (!disk.Exists(name)) continue;  // never successfully refreshed
    EXPECT_TRUE(disk.ReadTable(name) == baseline_disk.ReadTable(name))
        << name;
  }

  // The disposition taxonomy reached the metrics layer.
  const MetricsSnapshot snapshot = service.metrics().Snapshot();
  EXPECT_EQ(snapshot.aggregate.jobs_completed, ok);
  EXPECT_EQ(snapshot.aggregate.jobs_failed, failed);
}

// ---------------------------------------------------------------------------
// Cancellation
// ---------------------------------------------------------------------------

TEST(FaultInjectionTest, CancelQueuedJobReleasesEverything) {
  storage::ThrottledDisk disk(FreshDir("cancel_queued"), FastDisk());
  auto wl = AnnotatedWorkload(&disk);

  ServiceOptions options;
  options.num_workers = 1;  // one worker: later submissions stay queued
  RefreshService service(&disk, options);

  RefreshJobSpec running;
  running.workload = wl;
  auto running_future = service.Submit(std::move(running));

  RefreshJobSpec queued;
  queued.workload = wl;
  RefreshService::JobHandle handle = service.SubmitJob(std::move(queued));
  EXPECT_TRUE(service.Cancel(handle.job_id));

  const JobResult cancelled = handle.future.get();
  EXPECT_EQ(cancelled.status, JobStatus::kCancelled);
  EXPECT_FALSE(cancelled.report.ok);
  EXPECT_TRUE(cancelled.report.cancelled);
  EXPECT_EQ(cancelled.report.error, runtime::kCancelledMessage);
  EXPECT_EQ(cancelled.granted_budget, 0);  // never admitted

  const JobResult first = running_future.get();
  EXPECT_EQ(first.status, JobStatus::kOk) << first.report.error;

  // Cancelling a finished job is a no-op, not an error.
  EXPECT_FALSE(service.Cancel(handle.job_id));
  EXPECT_FALSE(service.Cancel(999999));

  service.Shutdown();
  EXPECT_EQ(service.broker().reserved_bytes(), 0);
  EXPECT_EQ(service.shared_catalog().pinned_bytes(), 0);
  const MetricsSnapshot snapshot = service.metrics().Snapshot();
  EXPECT_EQ(snapshot.aggregate.jobs_cancelled, 1);
  EXPECT_NE(service.PrometheusText().find("status=\"cancelled\""),
            std::string::npos);
}

TEST(FaultInjectionTest, CancelMidExecutionStopsAtBoundary) {
  storage::ThrottledDisk disk(FreshDir("cancel_exec"), FastDisk());
  auto wl = AnnotatedWorkload(&disk);

  // Deterministic mid-run window: the first node execution hits a
  // transient fault whose retry backoff parks the job for ~10 s. The
  // backoff polls the token every millisecond, so the Cancel() below
  // lands while the job is provably mid-execution.
  fault::FaultInjector faults(/*seed=*/7);
  faults.AddRule(
      {fault::Site::kNodeExecute, "", 0.0, /*nth_hit=*/1, 1, true});

  ServiceOptions options;
  options.num_workers = 1;
  options.fault_injector = &faults;
  options.retry_limit = 1;
  options.retry_backoff_ms = 10000.0;
  RefreshService service(&disk, options);

  RefreshJobSpec spec;
  spec.workload = wl;
  RefreshService::JobHandle handle = service.SubmitJob(std::move(spec));
  // Wait for the injected fault to fire (the job is then in backoff).
  while (faults.total_fires() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const auto cancel_at = std::chrono::steady_clock::now();
  EXPECT_TRUE(service.Cancel(handle.job_id));
  const JobResult result = handle.future.get();
  const double latency =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    cancel_at)
          .count();

  EXPECT_EQ(result.status, JobStatus::kCancelled);
  EXPECT_TRUE(result.report.cancelled);
  EXPECT_EQ(result.report.cancel_reason, runtime::CancelReason::kCancelled);
  // Responsive cancellation: the job aborted its 10 s backoff at the
  // next poll, not after it.
  EXPECT_LT(latency, 5.0);

  service.Shutdown();
  EXPECT_EQ(service.broker().reserved_bytes(), 0);
  EXPECT_EQ(service.shared_catalog().pinned_bytes(), 0);
  EXPECT_EQ(service.broker().tenant_shared_bytes("default"), 0);
}

// ---------------------------------------------------------------------------
// Deadlines and shedding
// ---------------------------------------------------------------------------

TEST(FaultInjectionTest, DeadlineExpiredJobTimesOut) {
  storage::ThrottledDisk disk(FreshDir("deadline"), FastDisk());
  auto wl = AnnotatedWorkload(&disk);

  ServiceOptions options;
  options.num_workers = 1;
  RefreshService service(&disk, options);

  RefreshJobSpec spec;
  spec.workload = wl;
  spec.deadline_seconds = 1e-6;  // expired by the first token probe
  const JobResult result = service.Submit(std::move(spec)).get();

  EXPECT_EQ(result.status, JobStatus::kTimeout);
  EXPECT_FALSE(result.report.ok);
  EXPECT_TRUE(result.report.cancelled);
  EXPECT_EQ(result.report.cancel_reason, runtime::CancelReason::kDeadline);
  EXPECT_EQ(result.report.error, runtime::kDeadlineMessage);

  service.Shutdown();
  EXPECT_EQ(service.broker().reserved_bytes(), 0);
  const MetricsSnapshot snapshot = service.metrics().Snapshot();
  EXPECT_EQ(snapshot.aggregate.jobs_timeout, 1);
  EXPECT_NE(service.PrometheusText().find("status=\"timeout\""),
            std::string::npos);
}

TEST(FaultInjectionTest, QueueWaitSheddingDropsStaleJobs) {
  storage::ThrottledDisk disk(FreshDir("shed"), FastDisk());
  auto wl = AnnotatedWorkload(&disk);

  ServiceOptions options;
  options.num_workers = 1;
  RefreshService service(&disk, options);

  RefreshJobSpec spec;
  spec.workload = wl;
  spec.max_queue_wait_seconds = 1e-9;  // any real queue wait exceeds it
  const JobResult result = service.Submit(std::move(spec)).get();

  EXPECT_EQ(result.status, JobStatus::kShed);
  EXPECT_FALSE(result.report.ok);
  EXPECT_NE(result.report.error.find("shed"), std::string::npos);
  EXPECT_FALSE(result.report.cancelled);  // a service decision, not a
                                          // token cancel

  service.Shutdown();
  const MetricsSnapshot snapshot = service.metrics().Snapshot();
  EXPECT_EQ(snapshot.aggregate.jobs_shed, 1);
  EXPECT_NE(service.PrometheusText().find("status=\"shed\""),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Retry with backoff: transient faults, bit-identical recovery
// ---------------------------------------------------------------------------

TEST(FaultInjectionTest, TransientFaultWithRetriesIsBitIdentical) {
  const std::string baseline_dir = BaselineRun("retry_baseline");
  storage::ThrottledDisk baseline_disk(baseline_dir, FastDisk());

  const std::string dir = FreshDir("retry");
  storage::ThrottledDisk disk(dir, FastDisk());
  auto wl = AnnotatedWorkload(&disk);

  // One transient fault on the first MV write and one on the first node
  // execution; the per-node retry budget absorbs both.
  fault::FaultInjector faults(/*seed=*/3);
  faults.AddRule(
      {fault::Site::kDiskWrite, "", 0.0, /*nth_hit=*/1, 1, true});
  faults.AddRule(
      {fault::Site::kNodeExecute, "", 0.0, /*nth_hit=*/1, 1, true});

  ServiceOptions options;
  options.num_workers = 2;
  options.fault_injector = &faults;
  options.retry_limit = 2;
  options.retry_backoff_ms = 0.1;
  RefreshService service(&disk, options);

  RefreshJobSpec spec;
  spec.workload = wl;
  const JobResult result = service.Submit(std::move(spec)).get();

  EXPECT_EQ(result.status, JobStatus::kOk) << result.report.error;
  EXPECT_EQ(faults.total_fires(), 2);
  EXPECT_GT(result.report.node_retries, 0);
  EXPECT_NE(service.PrometheusText().find("sc_job_retries_total"),
            std::string::npos);
  service.Shutdown();
  disk.SetFaultInjector(nullptr);

  // Recovery is exact: every MV matches the fault-free baseline bit for
  // bit.
  for (graph::NodeId v = 0; v < wl->graph.num_nodes(); ++v) {
    const std::string& name = wl->graph.node(v).name;
    EXPECT_TRUE(disk.ReadTable(name) == baseline_disk.ReadTable(name))
        << name;
  }
}

// ---------------------------------------------------------------------------
// Graceful degradation under overload
// ---------------------------------------------------------------------------

TEST(FaultInjectionTest, OverloadDegradesBudgetRequests) {
  storage::ThrottledDisk disk(FreshDir("overload"), FastDisk());
  auto wl = AnnotatedWorkload(&disk);

  ServiceOptions options;
  options.num_workers = 1;  // pile the queue behind one worker
  options.global_budget = 16LL * 1024 * 1024;
  options.overload_queue_depth = 2;
  options.overload_budget_fraction = 0.5;
  RefreshService service(&disk, options);

  constexpr int kJobs = 8;
  std::vector<std::future<JobResult>> futures;
  for (int i = 0; i < kJobs; ++i) {
    RefreshJobSpec spec;
    spec.workload = wl;
    spec.requested_budget = options.global_budget;
    futures.push_back(service.Submit(std::move(spec)));
  }

  bool degraded = false;
  for (auto& future : futures) {
    const JobResult result = future.get();
    EXPECT_EQ(result.status, JobStatus::kOk) << result.report.error;
    // A degraded job was granted at most the scaled request; the run
    // then simply optimized at the granted budget.
    degraded |= result.granted_budget <= options.global_budget / 2;
  }
  EXPECT_TRUE(degraded);
  EXPECT_NE(service.PrometheusText().find("sc_jobs_degraded_total"),
            std::string::npos);
  service.Shutdown();
  EXPECT_EQ(service.broker().reserved_bytes(), 0);
}

}  // namespace
}  // namespace sc::service
