#include "storage/spill_manifest.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

namespace sc::storage {
namespace {

namespace fs = std::filesystem;

std::string FreshDir(const std::string& tag) {
  const std::string dir = testing::TempDir() + "/sc_manifest_" + tag;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

SpillManifest::Entry MakeEntry(std::uint64_t key) {
  SpillManifest::Entry entry;
  entry.key = key;
  entry.file_bytes = static_cast<std::int64_t>(100 + key);
  entry.stamp = 1000 + key;
  entry.durable = key % 2 == 0;
  entry.file = "spill_" + std::to_string(key) + ".scc";
  return entry;
}

TEST(SpillManifestTest, RoundTripAppendRemove) {
  const std::string dir = FreshDir("roundtrip");
  {
    SpillManifest manifest(dir);
    EXPECT_EQ(manifest.Open().live.size(), 0u);
    manifest.Append(MakeEntry(1));
    manifest.Append(MakeEntry(2));
    manifest.Append(MakeEntry(3));
    manifest.Remove(2);
  }
  SpillManifest reopened(dir);
  const auto result = reopened.Open();
  EXPECT_EQ(result.corrupt_lines, 0);
  ASSERT_EQ(result.live.size(), 2u);
  for (const auto& entry : result.live) {
    ASSERT_TRUE(entry.key == 1 || entry.key == 3);
    const auto expected = MakeEntry(entry.key);
    EXPECT_EQ(entry.file_bytes, expected.file_bytes);
    EXPECT_EQ(entry.stamp, expected.stamp);
    EXPECT_EQ(entry.durable, expected.durable);
    EXPECT_EQ(entry.file, expected.file);
  }
}

TEST(SpillManifestTest, ReAppendAfterRemoveRevives) {
  const std::string dir = FreshDir("revive");
  {
    SpillManifest manifest(dir);
    manifest.Open();
    manifest.Append(MakeEntry(7));
    manifest.Remove(7);
    manifest.Append(MakeEntry(7));
  }
  SpillManifest reopened(dir);
  EXPECT_EQ(reopened.Open().live.size(), 1u);
}

TEST(SpillManifestTest, CompactsPastThresholdAndStaysRecoverable) {
  const std::string dir = FreshDir("compact");
  SpillManifest manifest(dir, /*compact_threshold_bytes=*/256);
  manifest.Open();
  // Churn far past the threshold: every key is appended then removed,
  // except the last ten survivors.
  for (std::uint64_t key = 0; key < 100; ++key) {
    manifest.Append(MakeEntry(key));
    if (key >= 10) manifest.Remove(key);
  }
  EXPECT_GT(manifest.compactions(), 0);
  // The journal stays proportional to the live set, not the churn.
  EXPECT_LT(manifest.bytes(), 1024);
  SpillManifest reopened(dir);
  const auto result = reopened.Open();
  EXPECT_EQ(result.corrupt_lines, 0);
  EXPECT_EQ(result.live.size(), 10u);
}

TEST(SpillManifestTest, TornFinalAppendIsSkippedNotFatal) {
  const std::string dir = FreshDir("torn");
  {
    SpillManifest manifest(dir);
    manifest.Open();
    manifest.Append(MakeEntry(1));
    manifest.Append(MakeEntry(2));
  }
  // Crash mid-append: cut the journal inside its final line.
  const std::string path = dir + "/" + SpillManifest::kFileName;
  const auto size = fs::file_size(path);
  fs::resize_file(path, size - 5);
  SpillManifest reopened(dir);
  const auto result = reopened.Open();
  EXPECT_EQ(result.corrupt_lines, 1);
  ASSERT_EQ(result.live.size(), 1u);
  EXPECT_EQ(result.live[0].key, 1u);
  // The reopened journal accepts further appends.
  reopened.Append(MakeEntry(3));
  SpillManifest again(dir);
  EXPECT_EQ(again.Open().live.size(), 2u);
}

TEST(SpillManifestTest, FlippedBitInEarlyLineSkipsOnlyThatLine) {
  const std::string dir = FreshDir("bitflip");
  {
    SpillManifest manifest(dir);
    manifest.Open();
    manifest.Append(MakeEntry(1));
    manifest.Append(MakeEntry(2));
    manifest.Append(MakeEntry(3));
  }
  const std::string path = dir + "/" + SpillManifest::kFileName;
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  f.seekp(4);  // inside the first record's body
  char byte = 0;
  f.seekg(4);
  f.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x08);
  f.seekp(4);
  f.write(&byte, 1);
  f.close();
  SpillManifest reopened(dir);
  const auto result = reopened.Open();
  EXPECT_EQ(result.corrupt_lines, 1);
  EXPECT_EQ(result.live.size(), 2u);
}

TEST(SpillManifestTest, GarbageJournalYieldsEmptyLiveSet) {
  const std::string dir = FreshDir("garbage");
  {
    std::ofstream out(dir + "/" + SpillManifest::kFileName);
    out << "this is not a manifest\nnor is this\n";
  }
  SpillManifest manifest(dir);
  const auto result = manifest.Open();
  EXPECT_EQ(result.corrupt_lines, 2);
  EXPECT_EQ(result.live.size(), 0u);
}

}  // namespace
}  // namespace sc::storage
