#include <gtest/gtest.h>

#include "opt/memory_usage.h"
#include "opt/schedulers.h"
#include "test_util.h"

namespace sc::opt {
namespace {

TEST(SchedulersTest, ToStringNames) {
  EXPECT_EQ(ToString(SchedulerMethod::kMaDfs), "MA-DFS");
  EXPECT_EQ(ToString(SchedulerMethod::kSimAnneal), "SA");
  EXPECT_EQ(ToString(SchedulerMethod::kSeparator), "Separator");
  EXPECT_EQ(ToString(SchedulerMethod::kRandomDfs), "RandomDFS");
  EXPECT_EQ(ToString(SchedulerMethod::kKahn), "Topo");
}

TEST(SimAnnealTest, KeepsOrderTopological) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const graph::Graph g = test::RandomDag(25, seed);
    const FlagSet flags = MakeFlags(g.num_nodes(), {0, 3, 7, 11});
    SimAnnealOptions options;
    options.iterations = 500;
    options.seed = seed;
    const graph::Order out = SimulatedAnnealingOrder(
        g, flags, graph::KahnTopologicalOrder(g), options);
    EXPECT_TRUE(graph::IsTopologicalOrder(g, out)) << "seed " << seed;
  }
}

TEST(SimAnnealTest, NeverWorseThanInitial) {
  // SA returns the best order seen, which includes the initial one.
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const graph::Graph g = test::RandomDag(25, seed);
    FlagSet flags(g.num_nodes());
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
      flags[v] = (v % 2) == 0;
    }
    const graph::Order initial = graph::KahnTopologicalOrder(g);
    SimAnnealOptions options;
    options.iterations = 2000;
    options.seed = seed;
    const graph::Order out =
        SimulatedAnnealingOrder(g, flags, initial, options);
    EXPECT_LE(AverageMemoryUsage(g, out, flags),
              AverageMemoryUsage(g, initial, flags) + 1e-9);
  }
}

TEST(SimAnnealTest, ImprovesFigure7Order) {
  // Starting from tau1 with {v1, v3} flagged, SA should discover that
  // moving v4 earlier shortens v1's residency.
  const graph::Graph g = test::Figure7Graph();
  const FlagSet flags = MakeFlags(6, {0, 2});
  const graph::Order tau1 = graph::Order::FromSequence({0, 1, 2, 3, 4, 5});
  SimAnnealOptions options;
  options.iterations = 5000;
  options.seed = 3;
  const graph::Order out = SimulatedAnnealingOrder(g, flags, tau1, options);
  EXPECT_LT(AverageMemoryUsage(g, out, flags),
            AverageMemoryUsage(g, tau1, flags));
}

TEST(SimAnnealTest, RespectsBudgetWhenSet) {
  const graph::Graph g = test::Figure7Graph();
  const FlagSet flags = MakeFlags(6, {0});
  const graph::Order initial = graph::Order::FromSequence({0, 1, 2, 3, 4, 5});
  SimAnnealOptions options;
  options.iterations = 3000;
  options.budget = 100;
  const graph::Order out =
      SimulatedAnnealingOrder(g, flags, initial, options);
  EXPECT_TRUE(IsFeasible(g, out, flags, 100));
}

TEST(SimAnnealTest, TrivialGraphsPassThrough) {
  graph::Graph g;
  g.AddNode("only", 5, 1.0);
  const graph::Order initial = graph::KahnTopologicalOrder(g);
  const graph::Order out = SimulatedAnnealingOrder(
      g, MakeFlags(1, {0}), initial, SimAnnealOptions{});
  EXPECT_EQ(out.sequence, initial.sequence);
}

TEST(SeparatorTest, KeepsOrderTopological) {
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    const graph::Graph g = test::RandomDag(30, seed);
    FlagSet flags(g.num_nodes());
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
      flags[v] = (v % 4) == 0;
    }
    const graph::Order out = SeparatorOrder(g, flags);
    EXPECT_TRUE(graph::IsTopologicalOrder(g, out)) << "seed " << seed;
  }
}

TEST(SeparatorTest, HandlesChainAndSingleton) {
  graph::Graph chain;
  const auto a = chain.AddNode("a", 1, 1.0);
  const auto b = chain.AddNode("b", 1, 1.0);
  const auto c = chain.AddNode("c", 1, 1.0);
  chain.AddEdge(a, b);
  chain.AddEdge(b, c);
  const graph::Order out = SeparatorOrder(chain, EmptyFlags(3));
  EXPECT_EQ(out.sequence, (std::vector<graph::NodeId>{0, 1, 2}));

  graph::Graph single;
  single.AddNode("x", 1, 1.0);
  EXPECT_EQ(SeparatorOrder(single, EmptyFlags(1)).sequence,
            std::vector<graph::NodeId>{0});
}

TEST(ScheduleOrderTest, DispatchProducesValidOrders) {
  const graph::Graph g = test::RandomDag(20, 1);
  const FlagSet flags = MakeFlags(g.num_nodes(), {0, 5, 10});
  const graph::Order current = graph::KahnTopologicalOrder(g);
  for (const auto method :
       {SchedulerMethod::kMaDfs, SchedulerMethod::kSimAnneal,
        SchedulerMethod::kSeparator, SchedulerMethod::kRandomDfs,
        SchedulerMethod::kKahn}) {
    const graph::Order out =
        ScheduleOrder(method, g, flags, current, /*seed=*/7,
                      /*budget=*/INT64_MAX);
    EXPECT_TRUE(graph::IsTopologicalOrder(g, out)) << ToString(method);
  }
}

}  // namespace
}  // namespace sc::opt
