// Parameterized property sweeps over randomized DAGs: the invariants the
// optimizer must uphold for ANY workload, exercised across seeds and
// budgets (TEST_P / INSTANTIATE_TEST_SUITE_P per the repo test policy).
#include <gtest/gtest.h>

#include "opt/constraints.h"
#include "opt/memory_usage.h"
#include "opt/mkp.h"
#include "opt/optimizer.h"
#include "test_util.h"

namespace sc::opt {
namespace {

struct PropertyCase {
  std::uint64_t seed;
  std::int32_t nodes;
  std::int64_t budget;
};

std::string CaseName(const testing::TestParamInfo<PropertyCase>& info) {
  return "seed" + std::to_string(info.param.seed) + "_n" +
         std::to_string(info.param.nodes) + "_m" +
         std::to_string(info.param.budget);
}

class OptimizerPropertyTest : public testing::TestWithParam<PropertyCase> {
 protected:
  graph::Graph MakeGraph() const {
    return test::RandomDag(GetParam().nodes, GetParam().seed);
  }
};

TEST_P(OptimizerPropertyTest, PlanIsFeasibleAndTopological) {
  const graph::Graph g = MakeGraph();
  const AlternatingResult result =
      AlternatingOptimize(g, GetParam().budget);
  std::string error;
  EXPECT_TRUE(ValidatePlan(g, result.plan, GetParam().budget, &error))
      << error;
}

TEST_P(OptimizerPropertyTest, ScoreNeverBelowGreedyBaseline) {
  const graph::Graph g = MakeGraph();
  const std::int64_t budget = GetParam().budget;
  const graph::Order kahn = graph::KahnTopologicalOrder(g);
  const double greedy = TotalScore(g, SelectGreedy(g, kahn, budget));
  const AlternatingResult ours = AlternatingOptimize(g, budget);
  EXPECT_GE(ours.total_score + 1e-9, greedy);
}

TEST_P(OptimizerPropertyTest, FlaggedNodesAllFitIndividually) {
  const graph::Graph g = MakeGraph();
  const AlternatingResult result =
      AlternatingOptimize(g, GetParam().budget);
  for (graph::NodeId v : FlaggedNodes(result.plan.flags)) {
    EXPECT_LE(g.node(v).size_bytes, GetParam().budget);
    EXPECT_GT(g.node(v).speedup_score, 0.0);
  }
}

TEST_P(OptimizerPropertyTest, MkpOptimalVsBruteForceOnSubsets) {
  // For small graphs, the MKP step must be exactly optimal with respect
  // to the constraint sets it was given.
  const PropertyCase param = GetParam();
  if (param.nodes > 14) GTEST_SKIP() << "brute force cap";
  const graph::Graph g = MakeGraph();
  const graph::Order order = graph::KahnTopologicalOrder(g);
  const ConstraintSets cs = GetConstraints(g, order, param.budget);
  const MkpProblem problem = BuildMkpProblem(g, cs, param.budget);
  if (problem.profits.size() > 20) GTEST_SKIP();
  const MkpResult bnb = SolveMkpBranchAndBound(problem);
  const MkpResult brute = SolveMkpBruteForce(problem);
  EXPECT_DOUBLE_EQ(bnb.objective, brute.objective);
}

TEST_P(OptimizerPropertyTest, ConstraintModelMatchesTimelineSimulation) {
  // Whatever the MKP flags under the order must match an independent
  // slot-by-slot residency simulation.
  const graph::Graph g = MakeGraph();
  const graph::Order order = graph::KahnTopologicalOrder(g);
  const FlagSet flags = SimplifiedMkp(g, order, GetParam().budget);
  // Independent check: walk slots, maintaining resident set.
  std::vector<std::int64_t> live(g.num_nodes(), 0);
  std::int64_t resident = 0;
  std::int64_t peak = 0;
  std::vector<std::int32_t> pending(g.num_nodes());
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    pending[v] = static_cast<std::int32_t>(g.children(v).size());
  }
  for (graph::NodeId v : order.sequence) {
    if (flags[v]) {
      resident += g.node(v).size_bytes;
    }
    peak = std::max(peak, resident);
    if (flags[v] && pending[v] == 0) resident -= g.node(v).size_bytes;
    for (graph::NodeId p : g.parents(v)) {
      if (--pending[p] == 0 && flags[p]) {
        resident -= g.node(p).size_bytes;
      }
    }
  }
  EXPECT_LE(peak, GetParam().budget);
  EXPECT_EQ(resident, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, OptimizerPropertyTest,
    testing::Values(PropertyCase{1, 8, 50}, PropertyCase{2, 8, 150},
                    PropertyCase{3, 12, 80}, PropertyCase{4, 12, 200},
                    PropertyCase{5, 20, 60}, PropertyCase{6, 20, 250},
                    PropertyCase{7, 40, 100}, PropertyCase{8, 40, 400},
                    PropertyCase{9, 70, 120}, PropertyCase{10, 70, 30},
                    PropertyCase{11, 100, 90}, PropertyCase{12, 100, 500}),
    CaseName);

class BudgetMonotoneTest : public testing::TestWithParam<std::uint64_t> {};

TEST_P(BudgetMonotoneTest, SingleShotMkpScoreMonotoneInBudget) {
  // For a fixed order, a larger Memory Catalog can never decrease the MKP
  // optimum (every feasible flag set stays feasible).
  const graph::Graph g = test::RandomDag(30, GetParam());
  const graph::Order order = graph::KahnTopologicalOrder(g);
  double previous = -1.0;
  for (const std::int64_t budget : {0LL, 25LL, 50LL, 100LL, 200LL, 400LL}) {
    const double score = TotalScore(g, SimplifiedMkp(g, order, budget));
    EXPECT_GE(score + 1e-9, previous) << "budget " << budget;
    previous = score;
  }
}

TEST_P(BudgetMonotoneTest, AlternatingNeverBelowItsFirstIteration) {
  const graph::Graph g = test::RandomDag(30, GetParam());
  const graph::Order order = graph::KahnTopologicalOrder(g);
  for (const std::int64_t budget : {50LL, 150LL}) {
    const double first = TotalScore(g, SimplifiedMkp(g, order, budget));
    const double final_score = AlternatingOptimize(g, budget).total_score;
    EXPECT_GE(final_score + 1e-9, first) << "budget " << budget;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BudgetMonotoneTest,
                         testing::Range<std::uint64_t>(0, 8));

}  // namespace
}  // namespace sc::opt
