#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "engine/plan_serde.h"
#include "workload/workload_io.h"

namespace sc::workload {
namespace {

std::string FreshDir(const std::string& tag) {
  const std::string dir = testing::TempDir() + "/sc_wlio_" + tag;
  std::filesystem::remove_all(dir);
  return dir;
}

class WorkloadIoTest : public testing::TestWithParam<int> {};

TEST_P(WorkloadIoTest, SaveLoadRoundTrip) {
  const MvWorkload original =
      StandardWorkloads()[static_cast<std::size_t>(GetParam())];
  const std::string dir = FreshDir(original.name);
  std::string error;
  ASSERT_TRUE(SaveWorkload(original, dir, &error)) << error;

  MvWorkload loaded;
  ASSERT_TRUE(LoadWorkload(dir, &loaded, &error)) << error;
  EXPECT_EQ(loaded.name, original.name);
  EXPECT_EQ(loaded.tpcds_queries, original.tpcds_queries);
  ASSERT_EQ(loaded.graph.num_nodes(), original.graph.num_nodes());
  EXPECT_EQ(loaded.graph.num_edges(), original.graph.num_edges());
  for (graph::NodeId v = 0; v < original.graph.num_nodes(); ++v) {
    EXPECT_EQ(loaded.graph.node(v).name, original.graph.node(v).name);
    EXPECT_EQ(engine::SerializePlan(*loaded.plans[v]),
              engine::SerializePlan(*original.plans[v]))
        << original.graph.node(v).name;
  }
}

INSTANTIATE_TEST_SUITE_P(AllFive, WorkloadIoTest, testing::Range(0, 5),
                         [](const testing::TestParamInfo<int>& info) {
                           return StandardWorkloads()
                               [static_cast<std::size_t>(info.param)]
                                   .name;
                         });

TEST(WorkloadIoTest, MissingDirectoryFails) {
  MvWorkload wl;
  std::string error;
  EXPECT_FALSE(LoadWorkload("/nonexistent/sc_dir", &wl, &error));
  EXPECT_FALSE(error.empty());
}

TEST(WorkloadIoTest, CorruptPlanFails) {
  const MvWorkload original = BuildCompute2();
  const std::string dir = FreshDir("corrupt");
  std::string error;
  ASSERT_TRUE(SaveWorkload(original, dir, &error)) << error;
  // Corrupt one plan line.
  {
    std::ofstream plans(dir + "/plans.scp", std::ios::app);
    plans << "c2_ss_sales (scan\n";
  }
  MvWorkload loaded;
  EXPECT_FALSE(LoadWorkload(dir, &loaded, &error));
}

TEST(WorkloadIoTest, MissingPlanFails) {
  const MvWorkload original = BuildIo2();
  const std::string dir = FreshDir("missingplan");
  std::string error;
  ASSERT_TRUE(SaveWorkload(original, dir, &error)) << error;
  // Rewrite plans.scp with the first line dropped.
  std::vector<std::string> lines;
  {
    std::ifstream in(dir + "/plans.scp");
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
  }
  {
    std::ofstream out(dir + "/plans.scp", std::ios::trunc);
    for (std::size_t i = 1; i < lines.size(); ++i) out << lines[i] << '\n';
  }
  MvWorkload loaded;
  EXPECT_FALSE(LoadWorkload(dir, &loaded, &error));
  EXPECT_NE(error.find("missing"), std::string::npos);
}

}  // namespace
}  // namespace sc::workload
