#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "storage/throttled_disk.h"

namespace sc::storage {
namespace {

using engine::Column;
using engine::DataType;
using engine::Field;
using engine::Schema;
using engine::Table;

Table SmallTable() {
  std::vector<Column> cols;
  cols.push_back(Column::FromInts(std::vector<std::int64_t>(1000, 7)));
  return Table(Schema({Field{"x", DataType::kInt64}}), std::move(cols));
}

DiskProfile FastProfile() {
  DiskProfile profile;
  profile.throttle = false;
  return profile;
}

TEST(ThrottledDiskTest, WriteReadRoundTrip) {
  ThrottledDisk disk(testing::TempDir() + "/sc_disk_rt", FastProfile());
  const Table t = SmallTable();
  const std::int64_t bytes = disk.WriteTable("t1", t);
  EXPECT_GT(bytes, 8000);
  EXPECT_TRUE(disk.Exists("t1"));
  EXPECT_EQ(disk.FileSize("t1"), bytes);
  const Table loaded = disk.ReadTable("t1");
  EXPECT_TRUE(loaded == t);
}

TEST(ThrottledDiskTest, RemoveAndMissing) {
  ThrottledDisk disk(testing::TempDir() + "/sc_disk_rm", FastProfile());
  disk.WriteTable("t", SmallTable());
  disk.Remove("t");
  EXPECT_FALSE(disk.Exists("t"));
  EXPECT_EQ(disk.FileSize("t"), -1);
  EXPECT_THROW(disk.ReadTable("t"), std::runtime_error);
  disk.Remove("t");  // idempotent
}

TEST(ThrottledDiskTest, ThrottlePadsDuration) {
  // 8KB at 100 KB/s -> at least ~80ms.
  DiskProfile slow;
  slow.write_bw = 100e3;
  slow.read_bw = 100e3;
  slow.latency = 0;
  slow.throttle = true;
  ThrottledDisk disk(testing::TempDir() + "/sc_disk_slow", slow);
  const auto start = std::chrono::steady_clock::now();
  disk.WriteTable("t", SmallTable());
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_GT(elapsed, 0.05);
  EXPECT_GT(disk.total_write_seconds(), 0.05);
}

TEST(ThrottledDiskTest, AccumulatesTimers) {
  ThrottledDisk disk(testing::TempDir() + "/sc_disk_timers", FastProfile());
  disk.WriteTable("a", SmallTable());
  disk.ReadTable("a");
  EXPECT_GT(disk.total_write_seconds(), 0.0);
  EXPECT_GT(disk.total_read_seconds(), 0.0);
}

TEST(ThrottledDiskTest, OverwriteReplacesContent) {
  ThrottledDisk disk(testing::TempDir() + "/sc_disk_ow", FastProfile());
  disk.WriteTable("t", SmallTable());
  std::vector<Column> cols;
  cols.push_back(Column::FromInts({1}));
  const Table tiny(Schema({Field{"x", DataType::kInt64}}), std::move(cols));
  disk.WriteTable("t", tiny);
  EXPECT_EQ(disk.ReadTable("t").num_rows(), 1u);
}


TEST(ThrottledDiskTest, MultiChannelReadsOverlap) {
  // Two concurrent reads of one table on a 2-channel throttled disk
  // finish in ~one padded read time; a single channel would need two.
  DiskProfile slow;
  slow.read_bw = 1e9;
  slow.write_bw = 1e9;
  slow.latency = 0.25;  // 250ms floor per access dominates
  slow.channels = 2;
  ThrottledDisk disk(testing::TempDir() + "/sc_disk_channels", slow);
  disk.WriteTable("t", SmallTable());
  const auto start = std::chrono::steady_clock::now();
  std::thread other([&] { disk.ReadTable("t"); });
  disk.ReadTable("t");
  other.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  // Overlapped: well under the 500ms a single channel would need, with
  // 200ms slack for thread spawn and scheduling on loaded runners.
  EXPECT_LT(elapsed, 0.45);
}

TEST(ThrottledDiskTest, SingleChannelSerializesReads) {
  DiskProfile slow;
  slow.read_bw = 1e9;
  slow.write_bw = 1e9;
  slow.latency = 0.05;
  slow.channels = 1;
  ThrottledDisk disk(testing::TempDir() + "/sc_disk_onechan", slow);
  disk.WriteTable("t", SmallTable());
  const auto start = std::chrono::steady_clock::now();
  std::thread other([&] { disk.ReadTable("t"); });
  disk.ReadTable("t");
  other.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_GT(elapsed, 0.095);
}

}  // namespace
}  // namespace sc::storage
