#include <gtest/gtest.h>

#include "engine/executor.h"
#include "engine/plan_serde.h"
#include "workload/datagen.h"
#include "workload/workloads.h"

namespace sc::engine {
namespace {

ExprPtr RoundTripExpr(const ExprPtr& expr) {
  std::string error;
  ExprPtr parsed = ParseExpr(SerializeExpr(*expr), &error);
  EXPECT_NE(parsed, nullptr) << error;
  return parsed;
}

TEST(ExprSerdeTest, LiteralsRoundTrip) {
  EXPECT_EQ(SerializeExpr(*RoundTripExpr(Lit(std::int64_t{-42}))),
            "(i -42)");
  EXPECT_EQ(SerializeExpr(*RoundTripExpr(Lit(2.5))), "(f 2.5)");
  EXPECT_EQ(SerializeExpr(*RoundTripExpr(Lit(std::string("a\"b\\c")))),
            "(s \"a\\\"b\\\\c\")");
}

TEST(ExprSerdeTest, ColumnAndOperatorsRoundTrip) {
  const auto expr = And(Ge(Col("d_year"), Lit(std::int64_t{1998})),
                        Lt(Div(Col("profit"), Col("revenue")), Lit(0.5)));
  const std::string text = SerializeExpr(*expr);
  EXPECT_EQ(SerializeExpr(*RoundTripExpr(expr)), text);
  EXPECT_NE(text.find("(col \"d_year\")"), std::string::npos);
}

TEST(ExprSerdeTest, UnaryRoundTrip) {
  const auto expr = Not(Neg(Col("x")));
  EXPECT_EQ(SerializeExpr(*RoundTripExpr(expr)), SerializeExpr(*expr));
}

TEST(ExprSerdeTest, FloatPrecisionPreserved) {
  const double value = 0.1234567890123456789;
  std::string error;
  ExprPtr parsed = ParseExpr(SerializeExpr(*Lit(value)), &error);
  ASSERT_NE(parsed, nullptr) << error;
  EXPECT_DOUBLE_EQ(std::get<double>(parsed->literal), value);
}

TEST(ExprSerdeTest, ParseErrorsAreReported) {
  std::string error;
  EXPECT_EQ(ParseExpr("(col", &error), nullptr);
  EXPECT_FALSE(error.empty());
  EXPECT_EQ(ParseExpr("(frobnicate 1 2)", &error), nullptr);
  EXPECT_EQ(ParseExpr("(i 1) trailing", &error), nullptr);
  EXPECT_EQ(ParseExpr("(+ (i 1))", &error), nullptr);  // wrong arity
  EXPECT_EQ(ParseExpr("(s unquoted)", &error), nullptr);
}

TEST(PlanSerdeTest, ScanRoundTrip) {
  std::string error;
  PlanPtr plan = ParsePlan("(scan \"store_sales\")", &error);
  ASSERT_NE(plan, nullptr) << error;
  EXPECT_EQ(plan->kind, PlanNode::Kind::kScan);
  EXPECT_EQ(plan->table_name, "store_sales");
}

TEST(PlanSerdeTest, EveryNodeKindRoundTrips) {
  const PlanPtr plan = Limit(
      Sort(Aggregate(
               HashJoin(Filter(Scan("a"),
                               Gt(Col("x"), Lit(std::int64_t{3}))),
                        Project(Scan("b"),
                                {NamedExpr{"y", Col("k")},
                                 NamedExpr{"z", Add(Col("k"), Lit(1.5))}}),
                        {"x"}, {"y"}),
               {"x"},
               {SumOf(Col("z"), "total"), CountAll("n"),
                MinOf(Col("z"), "lo"), MaxOf(Col("z"), "hi"),
                AvgOf(Col("z"), "mean")}),
           {"total", "n"}, {true, false}),
      25);
  const std::string text = SerializePlan(*plan);
  std::string error;
  const PlanPtr parsed = ParsePlan(text, &error);
  ASSERT_NE(parsed, nullptr) << error;
  // Canonical form: serializing the parse must reproduce the text.
  EXPECT_EQ(SerializePlan(*parsed), text);
}

TEST(PlanSerdeTest, UnionRoundTrip) {
  const PlanPtr plan = UnionAll(Scan("a"), UnionAll(Scan("b"), Scan("c")));
  std::string error;
  const PlanPtr parsed = ParsePlan(SerializePlan(*plan), &error);
  ASSERT_NE(parsed, nullptr) << error;
  EXPECT_EQ(SerializePlan(*parsed), SerializePlan(*plan));
}

TEST(PlanSerdeTest, MultiKeyJoinRoundTrip) {
  const PlanPtr plan = HashJoin(Scan("l"), Scan("r"), {"a", "b"},
                                {"c", "d"});
  std::string error;
  const PlanPtr parsed = ParsePlan(SerializePlan(*plan), &error);
  ASSERT_NE(parsed, nullptr) << error;
  EXPECT_EQ(parsed->left_keys, plan->left_keys);
  EXPECT_EQ(parsed->right_keys, plan->right_keys);
}

TEST(PlanSerdeTest, ParseErrorsAreReported) {
  std::string error;
  EXPECT_EQ(ParsePlan("(scan)", &error), nullptr);
  EXPECT_EQ(ParsePlan("(join (scan \"a\") (scan \"b\"))", &error), nullptr);
  EXPECT_EQ(ParsePlan("(sort (scan \"a\") (key \"x\" sideways))", &error),
            nullptr);
  EXPECT_EQ(ParsePlan("(limit (scan \"a\") many)", &error), nullptr);
  EXPECT_EQ(ParsePlan(")", &error), nullptr);
  EXPECT_EQ(ParsePlan("", &error), nullptr);
}

TEST(PlanSerdeTest, AllStandardWorkloadPlansRoundTrip) {
  // Round-trip all 103 MV plans of the five standard workloads and check
  // canonical-form stability.
  for (const auto& wl : workload::StandardWorkloads()) {
    for (graph::NodeId v = 0; v < wl.graph.num_nodes(); ++v) {
      const std::string text = SerializePlan(*wl.plans[v]);
      std::string error;
      const PlanPtr parsed = ParsePlan(text, &error);
      ASSERT_NE(parsed, nullptr)
          << wl.graph.node(v).name << ": " << error;
      EXPECT_EQ(SerializePlan(*parsed), text) << wl.graph.node(v).name;
    }
  }
}

TEST(PlanSerdeTest, ParsedPlanExecutesIdentically) {
  // A parsed plan must produce the same table as the original.
  workload::DataGenOptions options;
  options.scale = 0.03;
  const auto tables = workload::GenerateTpcdsData(options);
  MapResolver resolver;
  for (const auto& [name, table] : tables) resolver.Put(name, table);

  const workload::MvWorkload wl = workload::BuildIo1();
  // Node 0 is the ss normalized-sales plan (reads only base tables).
  const PlanPtr original = wl.plans[0];
  std::string error;
  const PlanPtr parsed = ParsePlan(SerializePlan(*original), &error);
  ASSERT_NE(parsed, nullptr) << error;
  const Table a = ExecutePlan(*original, resolver);
  const Table b = ExecutePlan(*parsed, resolver);
  EXPECT_TRUE(a == b);
}

TEST(PlanSerdeTest, WhitespaceInsensitive) {
  std::string error;
  const PlanPtr plan = ParsePlan(
      "(filter\n  (scan \"t\")\n  (>= (col \"x\")\n      (i 5)))", &error);
  ASSERT_NE(plan, nullptr) << error;
  EXPECT_EQ(plan->kind, PlanNode::Kind::kFilter);
}

}  // namespace
}  // namespace sc::engine
