#include <gtest/gtest.h>

#include <filesystem>

#include "opt/optimizer.h"
#include "runtime/controller.h"
#include "storage/format.h"
#include "workload/datagen.h"
#include "workload/workloads.h"

namespace sc::runtime {
namespace {

storage::DiskProfile FastDisk() {
  storage::DiskProfile profile;
  profile.throttle = false;
  return profile;
}

std::string FreshDir(const std::string& tag) {
  const std::string dir = testing::TempDir() + "/sc_ctrl_" + tag;
  std::filesystem::remove_all(dir);
  return dir;
}

workload::MvWorkload TinyWorkload() {
  return workload::BuildIo1();
}

std::map<std::string, engine::TablePtr> TinyData() {
  workload::DataGenOptions options;
  options.scale = 0.03;
  return workload::GenerateTpcdsData(options);
}

TEST(MaterializerTest, WritesInBackground) {
  storage::ThrottledDisk disk(FreshDir("mat"), FastDisk());
  Materializer materializer(&disk);
  std::vector<engine::Column> cols;
  cols.push_back(engine::Column::FromInts({1, 2, 3}));
  auto table = std::make_shared<engine::Table>(engine::Table(
      engine::Schema({engine::Field{"x", engine::DataType::kInt64}}),
      std::move(cols)));
  auto f1 = materializer.Enqueue("t1", table);
  auto f2 = materializer.Enqueue("t2", table);
  f1.get();
  f2.get();
  EXPECT_TRUE(disk.Exists("t1"));
  EXPECT_TRUE(disk.Exists("t2"));
  materializer.Drain();
}

TEST(ControllerTest, UnoptimizedRunMaterializesAllMvs) {
  storage::ThrottledDisk disk(FreshDir("noopt"), FastDisk());
  ControllerOptions options;
  Controller controller(&disk, options);
  controller.LoadBaseTables(TinyData());
  const workload::MvWorkload wl = TinyWorkload();
  const RunReport report = controller.RunUnoptimized(wl);
  ASSERT_TRUE(report.ok) << report.error;
  for (graph::NodeId v = 0; v < wl.graph.num_nodes(); ++v) {
    EXPECT_TRUE(disk.Exists(wl.graph.node(v).name))
        << wl.graph.node(v).name;
  }
  EXPECT_EQ(report.peak_memory, 0);
  EXPECT_EQ(report.nodes.size(),
            static_cast<std::size_t>(wl.graph.num_nodes()));
}

TEST(ControllerTest, OptimizedRunProducesIdenticalMvs) {
  // The headline correctness property: with S/C's plan the materialized
  // content of every MV is byte-identical to the unoptimized run.
  const auto data = TinyData();
  workload::MvWorkload wl = TinyWorkload();

  storage::ThrottledDisk disk_a(FreshDir("ident_a"), FastDisk());
  Controller controller_a(&disk_a, ControllerOptions{});
  controller_a.LoadBaseTables(data);
  ASSERT_TRUE(controller_a.ProfileAndAnnotate(&wl).ok);

  const std::int64_t budget = 8LL * 1024 * 1024;
  const opt::Optimizer optimizer;
  const auto result = optimizer.Optimize(wl.graph, budget);
  EXPECT_FALSE(opt::FlaggedNodes(result.plan.flags).empty());

  storage::ThrottledDisk disk_b(FreshDir("ident_b"), FastDisk());
  ControllerOptions options_b;
  options_b.budget = budget;
  Controller controller_b(&disk_b, options_b);
  controller_b.LoadBaseTables(data);
  const RunReport report = controller_b.Run(wl, result.plan);
  ASSERT_TRUE(report.ok) << report.error;
  EXPECT_LE(report.peak_memory, budget);

  for (graph::NodeId v = 0; v < wl.graph.num_nodes(); ++v) {
    const std::string& name = wl.graph.node(v).name;
    const engine::Table a = disk_a.ReadTable(name);
    const engine::Table b = disk_b.ReadTable(name);
    EXPECT_TRUE(a == b) << name;
  }
}

TEST(ControllerTest, FlaggedNodesServedFromMemory) {
  const auto data = TinyData();
  workload::MvWorkload wl = TinyWorkload();
  storage::ThrottledDisk disk(FreshDir("mem"), FastDisk());
  Controller profiler(&disk, ControllerOptions{});
  profiler.LoadBaseTables(data);
  ASSERT_TRUE(profiler.ProfileAndAnnotate(&wl).ok);

  const std::int64_t budget = 16LL * 1024 * 1024;
  const auto result = opt::Optimizer{}.Optimize(wl.graph, budget);
  ControllerOptions options;
  options.budget = budget;
  Controller controller(&disk, options);
  const RunReport report = controller.Run(wl, result.plan);
  ASSERT_TRUE(report.ok) << report.error;
  bool any_in_memory = false;
  for (const auto& node : report.nodes) {
    if (node.output_in_memory) any_in_memory = true;
  }
  EXPECT_TRUE(any_in_memory);
  EXPECT_GT(report.peak_memory, 0);
}

TEST(ControllerTest, RejectsInvalidPlan) {
  storage::ThrottledDisk disk(FreshDir("invalid"), FastDisk());
  Controller controller(&disk, ControllerOptions{});
  const workload::MvWorkload wl = TinyWorkload();
  opt::Plan bogus;
  bogus.order = graph::Order::FromSequence({0});  // wrong length
  bogus.flags = opt::EmptyFlags(wl.graph.num_nodes());
  const RunReport report = controller.Run(wl, bogus);
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.error.find("invalid plan"), std::string::npos);
}

TEST(ControllerTest, RejectsPlanOverBudget) {
  storage::ThrottledDisk disk(FreshDir("overbudget"), FastDisk());
  workload::MvWorkload wl = TinyWorkload();
  for (graph::NodeId v = 0; v < wl.graph.num_nodes(); ++v) {
    wl.graph.mutable_node(v).size_bytes = 100;
    wl.graph.mutable_node(v).speedup_score = 1.0;
  }
  ControllerOptions options;
  options.budget = 10;  // everything oversize
  Controller controller(&disk, options);
  opt::Plan plan;
  plan.order = graph::KahnTopologicalOrder(wl.graph);
  plan.flags = opt::MakeFlags(wl.graph.num_nodes(), {0});
  const RunReport report = controller.Run(wl, plan);
  EXPECT_FALSE(report.ok);
}

TEST(ControllerTest, MissingBaseTableFailsGracefully) {
  storage::ThrottledDisk disk(FreshDir("missing"), FastDisk());
  Controller controller(&disk, ControllerOptions{});
  // No LoadBaseTables: the first scan must fail and be reported.
  const RunReport report = controller.RunUnoptimized(TinyWorkload());
  EXPECT_FALSE(report.ok);
  EXPECT_FALSE(report.error.empty());
}

TEST(ControllerTest, ProfileAnnotatesMetadata) {
  storage::ThrottledDisk disk(FreshDir("profile"), FastDisk());
  Controller controller(&disk, ControllerOptions{});
  controller.LoadBaseTables(TinyData());
  workload::MvWorkload wl = TinyWorkload();
  ASSERT_TRUE(controller.ProfileAndAnnotate(&wl).ok);
  bool any_score = false;
  for (graph::NodeId v = 0; v < wl.graph.num_nodes(); ++v) {
    EXPECT_GT(wl.graph.node(v).size_bytes, 0);
    if (wl.graph.node(v).speedup_score > 0) any_score = true;
  }
  EXPECT_TRUE(any_score);
}

TEST(ControllerTest, SynchronousMaterializationModeWorks) {
  storage::ThrottledDisk disk(FreshDir("sync"), FastDisk());
  workload::MvWorkload wl = TinyWorkload();
  Controller profiler(&disk, ControllerOptions{});
  profiler.LoadBaseTables(TinyData());
  ASSERT_TRUE(profiler.ProfileAndAnnotate(&wl).ok);
  const std::int64_t budget = 16LL * 1024 * 1024;
  const auto result = opt::Optimizer{}.Optimize(wl.graph, budget);
  ControllerOptions options;
  options.budget = budget;
  options.background_materialize = false;
  Controller controller(&disk, options);
  const RunReport report = controller.Run(wl, result.plan);
  EXPECT_TRUE(report.ok) << report.error;
}


TEST(ControllerTest, BackgroundMaterializationFailureIsReported) {
  const auto data = TinyData();
  workload::MvWorkload wl = TinyWorkload();
  storage::ThrottledDisk disk(FreshDir("failbg"), FastDisk());
  Controller profiler(&disk, ControllerOptions{});
  profiler.LoadBaseTables(data);
  ASSERT_TRUE(profiler.ProfileAndAnnotate(&wl).ok);
  const std::int64_t budget = 16LL * 1024 * 1024;
  const auto result = opt::Optimizer{}.Optimize(wl.graph, budget);
  const auto flagged = opt::FlaggedNodes(result.plan.flags);
  ASSERT_FALSE(flagged.empty());
  // Fail the background write of the first flagged MV.
  disk.InjectWriteFailure(wl.graph.node(flagged.front()).name);
  ControllerOptions options;
  options.budget = budget;
  Controller controller(&disk, options);
  const RunReport report = controller.Run(wl, result.plan);
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.error.find("injected write failure"),
            std::string::npos);
}

TEST(ControllerTest, ForegroundWriteFailureIsReported) {
  const auto data = TinyData();
  const workload::MvWorkload wl = TinyWorkload();
  storage::ThrottledDisk disk(FreshDir("failfg"), FastDisk());
  Controller controller(&disk, ControllerOptions{});
  controller.LoadBaseTables(data);
  // Unoptimized run writes every MV synchronously; fail one mid-run.
  disk.InjectWriteFailure(wl.graph.node(5).name);
  const RunReport report = controller.RunUnoptimized(wl);
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.error.find("injected write failure"),
            std::string::npos);
}

TEST(ControllerTest, RecoversOnRerunAfterFailure) {
  const auto data = TinyData();
  const workload::MvWorkload wl = TinyWorkload();
  storage::ThrottledDisk disk(FreshDir("recover"), FastDisk());
  Controller controller(&disk, ControllerOptions{});
  controller.LoadBaseTables(data);
  disk.InjectWriteFailure(wl.graph.node(0).name);
  EXPECT_FALSE(controller.RunUnoptimized(wl).ok);
  // The injected failure is one-shot: a rerun succeeds and materializes
  // everything.
  const RunReport report = controller.RunUnoptimized(wl);
  EXPECT_TRUE(report.ok) << report.error;
  for (graph::NodeId v = 0; v < wl.graph.num_nodes(); ++v) {
    EXPECT_TRUE(disk.Exists(wl.graph.node(v).name));
  }
}

}  // namespace
}  // namespace sc::runtime
