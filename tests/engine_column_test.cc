#include <gtest/gtest.h>

#include "engine/column.h"

namespace sc::engine {
namespace {

TEST(TypesTest, TypeOfMatchesAlternative) {
  EXPECT_EQ(TypeOf(Value{std::int64_t{1}}), DataType::kInt64);
  EXPECT_EQ(TypeOf(Value{1.5}), DataType::kFloat64);
  EXPECT_EQ(TypeOf(Value{std::string("x")}), DataType::kString);
}

TEST(TypesTest, ToStringRendering) {
  EXPECT_EQ(ToString(Value{std::int64_t{42}}), "42");
  EXPECT_EQ(ToString(Value{std::string("abc")}), "abc");
  EXPECT_EQ(ToString(DataType::kInt64), "int64");
  EXPECT_EQ(ToString(DataType::kFloat64), "float64");
  EXPECT_EQ(ToString(DataType::kString), "string");
}

TEST(TypesTest, CompareNumericCrossType) {
  EXPECT_EQ(CompareValues(Value{std::int64_t{2}}, Value{2.0}), 0);
  EXPECT_LT(CompareValues(Value{std::int64_t{1}}, Value{1.5}), 0);
  EXPECT_GT(CompareValues(Value{2.5}, Value{std::int64_t{2}}), 0);
}

TEST(TypesTest, CompareStrings) {
  EXPECT_LT(CompareValues(Value{std::string("a")}, Value{std::string("b")}),
            0);
  EXPECT_EQ(CompareValues(Value{std::string("x")}, Value{std::string("x")}),
            0);
}

TEST(TypesTest, CompareStringNumericThrows) {
  EXPECT_THROW(CompareValues(Value{std::string("a")}, Value{1.0}),
               std::invalid_argument);
}

TEST(TypesTest, CoercionHelpers) {
  EXPECT_DOUBLE_EQ(AsDouble(Value{std::int64_t{3}}), 3.0);
  EXPECT_EQ(AsInt64(Value{2.6}), 3);  // rounds
  EXPECT_THROW(AsDouble(Value{std::string("x")}), std::invalid_argument);
}

TEST(ColumnTest, FactoryAndSize) {
  const Column ints = Column::FromInts({1, 2, 3});
  EXPECT_EQ(ints.type(), DataType::kInt64);
  EXPECT_EQ(ints.size(), 3u);
  EXPECT_EQ(ints.GetInt(1), 2);

  const Column strs = Column::FromStrings({"a", "b"});
  EXPECT_EQ(strs.type(), DataType::kString);
  EXPECT_EQ(strs.GetString(0), "a");
}

TEST(ColumnTest, GetAndAppendValue) {
  Column c(DataType::kFloat64);
  c.AppendValue(Value{1.5});
  c.AppendValue(Value{std::int64_t{2}});  // coerced
  EXPECT_EQ(c.size(), 2u);
  EXPECT_DOUBLE_EQ(c.GetDouble(1), 2.0);
  EXPECT_EQ(TypeOf(c.GetValue(0)), DataType::kFloat64);
}

TEST(ColumnTest, AppendFromChecksType) {
  Column a = Column::FromInts({7});
  Column b(DataType::kInt64);
  b.AppendFrom(a, 0);
  EXPECT_EQ(b.GetInt(0), 7);
  Column wrong(DataType::kString);
  EXPECT_THROW(wrong.AppendFrom(a, 0), std::invalid_argument);
}

TEST(ColumnTest, ByteSizeScalesWithRows) {
  Column a = Column::FromInts({1, 2, 3, 4});
  EXPECT_EQ(a.ByteSize(), 32);
  Column s = Column::FromStrings({"hello"});
  EXPECT_GT(s.ByteSize(), 5);
}

// Pins the string accounting: ByteSize must charge the std::string
// objects plus each string's *heap capacity* (the bytes the allocator
// actually handed out), not just the character count — string-heavy MVs
// were undercounted in the Memory Catalog before.
TEST(ColumnTest, StringByteSizeCountsHeapCapacity) {
  const auto obj = static_cast<std::int64_t>(sizeof(std::string));

  // SSO-resident strings own no heap block: object size only.
  Column sso = Column::FromStrings({"ab", "cd"});
  EXPECT_EQ(sso.ByteSize(), 2 * obj);

  // A long string charges object + its heap capacity (+ terminator).
  // The expected heap size comes from the *stored* string: copies made
  // on the way in may round capacity up, implementation-defined.
  Column one = Column::FromStrings({std::string(256, 'x')});
  const auto heap =
      static_cast<std::int64_t>(one.strings()[0].capacity()) + 1;
  EXPECT_EQ(one.ByteSize(), obj + heap);
  EXPECT_GE(one.ByteSize(), obj + 256);

  // Capacity, not size: a shrunk-but-over-allocated string still
  // occupies its full heap block (AppendString moves, so the stored
  // string keeps the reserved capacity).
  std::string grown;
  grown.reserve(512);
  grown.assign("tiny");
  Column c(DataType::kString);
  c.AppendString(std::move(grown));
  const auto grown_heap =
      static_cast<std::int64_t>(c.strings()[0].capacity()) + 1;
  EXPECT_EQ(c.ByteSize(), obj + grown_heap);
  EXPECT_GE(c.ByteSize(), obj + 512);
}

TEST(ColumnTest, NumericAtThrowsOnStrings) {
  Column s = Column::FromStrings({"x"});
  EXPECT_THROW(s.NumericAt(0), std::invalid_argument);
  Column i = Column::FromInts({5});
  EXPECT_DOUBLE_EQ(i.NumericAt(0), 5.0);
}

TEST(ColumnTest, Equality) {
  EXPECT_TRUE(Column::FromInts({1, 2}) == Column::FromInts({1, 2}));
  EXPECT_FALSE(Column::FromInts({1}) == Column::FromInts({2}));
}

}  // namespace
}  // namespace sc::engine
