#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <future>
#include <memory>
#include <vector>

#include "runtime/controller.h"
#include "service/service.h"
#include "workload/datagen.h"
#include "workload/workloads.h"

namespace sc::service {
namespace {

storage::DiskProfile FastDisk() {
  storage::DiskProfile profile;
  profile.throttle = false;
  return profile;
}

std::string FreshDir(const std::string& tag) {
  const std::string dir = testing::TempDir() + "/sc_service_" + tag;
  std::filesystem::remove_all(dir);
  return dir;
}

/// Loads tiny TPC-DS data into `disk` and returns the Io1 workload with
/// observed execution metadata (sizes, compute times, speedup scores).
std::shared_ptr<const workload::MvWorkload> AnnotatedWorkload(
    storage::ThrottledDisk* disk) {
  workload::DataGenOptions data_options;
  data_options.scale = 0.03;
  runtime::Controller profiler(disk, runtime::ControllerOptions{});
  profiler.LoadBaseTables(workload::GenerateTpcdsData(data_options));
  auto wl = std::make_shared<workload::MvWorkload>(workload::BuildIo1());
  const runtime::RunReport report = profiler.ProfileAndAnnotate(wl.get());
  EXPECT_TRUE(report.ok) << report.error;
  return wl;
}

TEST(RefreshServiceTest, StressConcurrentTenantsNeverExceedGlobalBudget) {
  storage::ThrottledDisk disk(FreshDir("stress"), FastDisk());
  auto wl = AnnotatedWorkload(&disk);

  const std::int64_t global_budget = 16LL * 1024 * 1024;
  ServiceOptions options;
  options.num_workers = 4;
  options.global_budget = global_budget;
  RefreshService service(&disk, options);

  // 12 jobs from 3 tenants asking for half or three quarters of the
  // global budget, so concurrent grants contend and some jobs run on
  // partial funding (and re-optimize at their granted budget).
  constexpr int kJobs = 12;
  std::vector<std::future<JobResult>> futures;
  for (int i = 0; i < kJobs; ++i) {
    RefreshJobSpec spec;
    spec.workload = wl;
    spec.tenant = "tenant" + std::to_string(i % 3);
    spec.priority = i % 2;
    spec.requested_budget =
        i % 2 == 0 ? global_budget / 2 : 3 * global_budget / 4;
    futures.push_back(service.Submit(std::move(spec)));
  }

  for (auto& future : futures) {
    const JobResult result = future.get();
    EXPECT_TRUE(result.report.ok) << result.report.error;
    EXPECT_GT(result.granted_budget, 0);
    EXPECT_LE(result.granted_budget, result.requested_budget);
    // Each run stayed inside its granted slice of the catalog.
    EXPECT_LE(result.report.peak_memory, result.granted_budget);
  }

  // The arbitration invariant: concurrent reservations never exceeded
  // the global budget, and everything was handed back.
  EXPECT_LE(service.broker().peak_reserved_bytes(), global_budget);
  EXPECT_GT(service.broker().peak_reserved_bytes(), 0);
  service.Shutdown();
  EXPECT_EQ(service.broker().reserved_bytes(), 0);

  const MetricsSnapshot snapshot = service.metrics().Snapshot();
  EXPECT_EQ(snapshot.aggregate.jobs_completed, kJobs);
  EXPECT_EQ(snapshot.aggregate.jobs_failed, 0);
  EXPECT_EQ(snapshot.per_tenant.size(), 3u);
  EXPECT_GT(snapshot.aggregate.p99_latency_seconds, 0.0);
  EXPECT_GE(snapshot.aggregate.p99_latency_seconds,
            snapshot.aggregate.p50_latency_seconds);
}

TEST(RefreshServiceTest, RepeatRefreshHitsPlanCache) {
  storage::ThrottledDisk disk(FreshDir("plancache"), FastDisk());
  auto wl = AnnotatedWorkload(&disk);
  ServiceOptions options;
  options.num_workers = 1;
  options.global_budget = 16LL * 1024 * 1024;
  RefreshService service(&disk, options);

  RefreshJobSpec spec;
  spec.workload = wl;
  spec.tenant = "repeat";
  const JobResult first = service.Submit(spec).get();
  EXPECT_TRUE(first.report.ok) << first.report.error;
  EXPECT_FALSE(first.plan_cache_hit);

  // With cross-job sharing on (the default), the second refresh sees the
  // first's outputs resident and re-optimizes for that residency — an
  // honest non-hit. The adjusted plan is cached under the residency-
  // salted key, so the *third* refresh (same resident set) is a pure
  // cache hit: the steady-state serving regime.
  const JobResult second = service.Submit(spec).get();
  EXPECT_TRUE(second.report.ok) << second.report.error;
  EXPECT_TRUE(second.reoptimized);
  const JobResult third = service.Submit(spec).get();
  EXPECT_TRUE(third.report.ok) << third.report.error;
  EXPECT_TRUE(third.plan_cache_hit);
  EXPECT_FALSE(third.reoptimized);
  EXPECT_GE(service.plan_cache().stats().hits, 1);

  // Sharing off restores the PR-1 behaviour: the second refresh is a
  // direct hit.
  storage::ThrottledDisk private_disk(FreshDir("plancache_priv"),
                                      FastDisk());
  auto private_wl = AnnotatedWorkload(&private_disk);
  options.share_catalog = false;
  RefreshService private_service(&private_disk, options);
  RefreshJobSpec private_spec;
  private_spec.workload = private_wl;
  private_spec.tenant = "repeat";
  EXPECT_FALSE(private_service.Submit(private_spec).get().plan_cache_hit);
  EXPECT_TRUE(private_service.Submit(private_spec).get().plan_cache_hit);
}

TEST(RefreshServiceTest, CatalogStatsFlowIntoMetrics) {
  storage::ThrottledDisk disk(FreshDir("catstats"), FastDisk());
  auto wl = AnnotatedWorkload(&disk);
  ServiceOptions options;
  options.num_workers = 1;
  options.global_budget = 16LL * 1024 * 1024;
  RefreshService service(&disk, options);

  RefreshJobSpec spec;
  spec.workload = wl;
  spec.tenant = "stats";
  const JobResult result = service.Submit(spec).get();
  ASSERT_TRUE(result.report.ok) << result.report.error;
  // A funded run serves at least one input from the Memory Catalog.
  EXPECT_GT(result.report.catalog_hits, 0);
  EXPECT_GT(result.report.CatalogHitRate(), 0.0);

  const MetricsSnapshot snapshot = service.metrics().Snapshot();
  const auto it = snapshot.per_tenant.find("stats");
  ASSERT_NE(it, snapshot.per_tenant.end());
  EXPECT_GT(it->second.catalog_hit_rate(), 0.0);
  EXPECT_FALSE(service.metrics().ToJson().empty());
  EXPECT_FALSE(service.metrics().FormatTable().empty());
}

TEST(RefreshServiceTest, TenantQuotaCapsGrant) {
  storage::ThrottledDisk disk(FreshDir("quota"), FastDisk());
  auto wl = AnnotatedWorkload(&disk);
  ServiceOptions options;
  options.num_workers = 1;
  options.global_budget = 16LL * 1024 * 1024;
  RefreshService service(&disk, options);
  const std::int64_t quota = 2LL * 1024 * 1024;
  service.SetTenantQuota("capped", quota);

  RefreshJobSpec spec;
  spec.workload = wl;
  spec.tenant = "capped";
  spec.requested_budget = 8LL * 1024 * 1024;
  const JobResult result = service.Submit(spec).get();
  EXPECT_TRUE(result.report.ok) << result.report.error;
  EXPECT_LE(result.granted_budget, quota);
}

TEST(RefreshServiceTest, ExecutionFailureIsReportedNotThrown) {
  storage::ThrottledDisk disk(FreshDir("fail"), FastDisk());
  // No base tables loaded: every job must fail cleanly.
  auto wl = std::make_shared<workload::MvWorkload>(workload::BuildIo1());
  ServiceOptions options;
  options.num_workers = 2;
  RefreshService service(&disk, options);

  RefreshJobSpec spec;
  spec.workload = wl;
  spec.tenant = "broken";
  const JobResult result = service.Submit(spec).get();
  EXPECT_FALSE(result.report.ok);
  EXPECT_FALSE(result.report.error.empty());
  const MetricsSnapshot snapshot = service.metrics().Snapshot();
  EXPECT_EQ(snapshot.aggregate.jobs_failed, 1);
  // The failure released its budget: the broker is clean.
  EXPECT_EQ(service.broker().reserved_bytes(), 0);
}

TEST(RefreshServiceTest, SubmitAfterShutdownThrows) {
  storage::ThrottledDisk disk(FreshDir("shutdown"), FastDisk());
  auto wl = std::make_shared<workload::MvWorkload>(workload::BuildIo1());
  RefreshService service(&disk, ServiceOptions{});
  service.Shutdown();
  RefreshJobSpec spec;
  spec.workload = wl;
  EXPECT_THROW(service.Submit(std::move(spec)), std::runtime_error);
}

TEST(RefreshServiceTest, NonDrainingShutdownFailsPendingJobs) {
  storage::ThrottledDisk disk(FreshDir("nodrain"), FastDisk());
  auto wl = AnnotatedWorkload(&disk);
  ServiceOptions options;
  options.num_workers = 1;
  RefreshService service(&disk, options);

  std::vector<std::future<JobResult>> futures;
  for (int i = 0; i < 6; ++i) {
    RefreshJobSpec spec;
    spec.workload = wl;
    futures.push_back(service.Submit(std::move(spec)));
  }
  service.Shutdown(/*drain=*/false);
  int completed = 0;
  int rejected = 0;
  for (auto& future : futures) {
    const JobResult result = future.get();  // every future must resolve
    if (result.report.ok) {
      ++completed;
    } else {
      EXPECT_NE(result.report.error.find("shutting down"),
                std::string::npos);
      ++rejected;
    }
  }
  EXPECT_EQ(completed + rejected, 6);
}

TEST(RefreshServiceTest, MetricsJsonEscapesTenantNames) {
  storage::ThrottledDisk disk(FreshDir("jsonesc"), FastDisk());
  // Jobs fail (no base tables), which must still be counted per tenant.
  auto wl = std::make_shared<workload::MvWorkload>(workload::BuildIo1());
  ServiceOptions options;
  options.num_workers = 1;
  RefreshService service(&disk, options);
  RefreshJobSpec spec;
  spec.workload = wl;
  spec.tenant = "acme\"prod\\eu";
  const JobResult result = service.Submit(std::move(spec)).get();
  EXPECT_FALSE(result.report.ok);
  const std::string json = service.metrics().ToJson();
  EXPECT_NE(json.find("acme\\\"prod\\\\eu"), std::string::npos) << json;
  const MetricsSnapshot snapshot = service.metrics().Snapshot();
  EXPECT_EQ(snapshot.aggregate.jobs_failed, 1);
}

TEST(RefreshServiceTest, NullWorkloadRejected) {
  storage::ThrottledDisk disk(FreshDir("null"), FastDisk());
  RefreshService service(&disk, ServiceOptions{});
  EXPECT_THROW(service.Submit(RefreshJobSpec{}), std::invalid_argument);
}

TEST(ParallelismBrokerTest, SplitKeepsThreadBudgetBounded) {
  const ParallelismSplit a = ParallelismBroker::Split(8, 1);
  EXPECT_EQ(a.workers, 8);
  EXPECT_EQ(a.lanes_per_job, 1);
  const ParallelismSplit b = ParallelismBroker::Split(8, 4);
  EXPECT_EQ(b.workers, 2);
  EXPECT_EQ(b.lanes_per_job, 4);
  // Lanes above the budget are clamped; the budget is never multiplied.
  const ParallelismSplit c = ParallelismBroker::Split(2, 8);
  EXPECT_EQ(c.workers, 1);
  EXPECT_EQ(c.lanes_per_job, 2);
  EXPECT_LE(c.workers * c.lanes_per_job, 2);
}

TEST(ParallelismBrokerTest, PreferredWidthCapsTheLease) {
  ParallelismBroker broker(8, 4);
  // A chain-shaped job (antichain width 1) leases a single lane even
  // though its cap and the free budget would allow more.
  const int narrow = broker.AcquireLanes(/*preferred=*/1);
  EXPECT_EQ(narrow, 1);
  const int wide = broker.AcquireLanes(/*preferred=*/16);
  EXPECT_EQ(wide, 4);  // clamped to the per-job cap
  broker.ReleaseLanes(narrow);
  broker.ReleaseLanes(wide);
  EXPECT_EQ(broker.lanes_in_use(), 0);
}

TEST(ParallelismBrokerTest, IdleWorkersLanesAreBorrowable) {
  ParallelismBroker broker(8, 4);
  const int first = broker.AcquireLanes();
  EXPECT_EQ(first, 4);  // lone job gets its full cap
  const int second = broker.AcquireLanes();
  EXPECT_EQ(second, 4);
  // Budget exhausted: further jobs still run, at one lane.
  const int third = broker.AcquireLanes();
  EXPECT_EQ(third, 1);
  broker.ReleaseLanes(first);
  broker.ReleaseLanes(second);
  broker.ReleaseLanes(third);
  EXPECT_EQ(broker.lanes_in_use(), 0);
}

TEST(RefreshServiceTest, IntraJobLanesExecuteJobsCorrectly) {
  storage::ThrottledDisk disk(FreshDir("lanes"), FastDisk());
  auto wl = AnnotatedWorkload(&disk);
  ServiceOptions options;
  options.num_workers = 4;  // total thread budget
  options.max_intra_job_lanes = 4;
  options.global_budget = 16LL * 1024 * 1024;
  RefreshService service(&disk, options);
  EXPECT_EQ(service.parallelism().workers, 1);
  EXPECT_EQ(service.parallelism().lanes_per_job, 4);

  std::vector<std::future<JobResult>> futures;
  for (int i = 0; i < 4; ++i) {
    RefreshJobSpec spec;
    spec.workload = wl;
    spec.tenant = "lanes";
    futures.push_back(service.Submit(std::move(spec)));
  }
  for (auto& future : futures) {
    const JobResult result = future.get();
    EXPECT_TRUE(result.report.ok) << result.report.error;
    EXPECT_GE(result.lanes, 1);
    EXPECT_LE(result.lanes, 4);
    EXPECT_LE(result.report.peak_memory, result.granted_budget);
  }
  service.Shutdown();
  EXPECT_EQ(service.lanes_broker().lanes_in_use(), 0);
}

TEST(RefreshServiceTest, UnusedBudgetIsReturnedMidRun) {
  storage::ThrottledDisk disk(FreshDir("return"), FastDisk());
  auto wl = AnnotatedWorkload(&disk);
  ServiceOptions options;
  options.num_workers = 1;
  options.global_budget = 256LL * 1024 * 1024;
  RefreshService service(&disk, options);

  // The whole global budget is far more than Io1's flagged set needs at
  // tiny scale, so most of the grant goes back to the broker early.
  RefreshJobSpec spec;
  spec.workload = wl;
  spec.tenant = "frugal";
  spec.requested_budget = options.global_budget;
  const JobResult result = service.Submit(std::move(spec)).get();
  ASSERT_TRUE(result.report.ok) << result.report.error;
  EXPECT_GT(result.returned_budget, 0);
  EXPECT_LT(result.report.budget,
            result.granted_budget);  // ran on the shrunk grant
  EXPECT_LE(result.report.peak_memory, result.report.budget);
  const MetricsSnapshot snapshot = service.metrics().Snapshot();
  EXPECT_GT(snapshot.aggregate.bytes_returned, 0);
  EXPECT_EQ(service.broker().reserved_bytes(), 0);
}

/// Sum of per-node compute seconds across a set of finished jobs — the
/// recompute work the shared catalog is supposed to eliminate.
double TotalComputeSeconds(const std::vector<JobResult>& results) {
  double total = 0.0;
  for (const JobResult& r : results) total += r.report.TotalComputeSeconds();
  return total;
}

/// Runs one seed job (tenant "seed") followed by `followers` concurrent
/// tenants refreshing the same workload, and returns all results.
std::vector<JobResult> RunSharedWorkload(RefreshService* service,
                                         std::shared_ptr<const workload::MvWorkload> wl,
                                         int followers) {
  RefreshJobSpec seed;
  seed.workload = wl;
  seed.tenant = "seed";
  std::vector<JobResult> results;
  results.push_back(service->Submit(seed).get());
  std::vector<std::future<JobResult>> futures;
  for (int i = 0; i < followers; ++i) {
    RefreshJobSpec spec;
    spec.workload = wl;
    spec.tenant = "tenant" + std::to_string(i);
    futures.push_back(service->Submit(std::move(spec)));
  }
  for (auto& future : futures) results.push_back(future.get());
  return results;
}

// The ISSUE-4 acceptance criterion: tenants refreshing the same workload
// concurrently read each other's resident outputs — nonzero
// cross_job_hits and strictly less total recompute than the same traffic
// against private catalogs.
TEST(RefreshServiceTest, CrossJobSharingCutsRecomputeAcrossTenants) {
  constexpr int kFollowers = 3;

  // Shared-catalog service (the default).
  storage::ThrottledDisk disk(FreshDir("xjob_shared"), FastDisk());
  auto wl = AnnotatedWorkload(&disk);
  ServiceOptions options;
  options.num_workers = 4;
  options.global_budget = 64LL * 1024 * 1024;
  ASSERT_TRUE(options.share_catalog);
  std::vector<JobResult> shared_results;
  {
    RefreshService service(&disk, options);
    shared_results = RunSharedWorkload(&service, wl, kFollowers);
    for (const JobResult& r : shared_results) {
      ASSERT_TRUE(r.report.ok) << r.report.error;
    }
    // The seed job computed everything; every follower found the seed's
    // outputs resident and reused them instead of recomputing.
    EXPECT_EQ(shared_results[0].report.cross_job_hits, 0);
    for (std::size_t i = 1; i < shared_results.size(); ++i) {
      EXPECT_GT(shared_results[i].report.cross_job_hits, 0) << i;
      EXPECT_GT(shared_results[i].report.cross_job_bytes_saved, 0) << i;
    }
    EXPECT_GT(service.shared_catalog().hits(), 0);
    EXPECT_LE(service.shared_catalog().used_bytes(),
              service.shared_catalog().budget_bytes());

    // The gauges flow into the metrics registry.
    const MetricsSnapshot snapshot = service.metrics().Snapshot();
    EXPECT_GT(snapshot.aggregate.cross_job_hits, 0);
    EXPECT_GT(snapshot.aggregate.cross_job_bytes_saved, 0);
    EXPECT_GT(snapshot.aggregate.cross_job_hit_rate(), 0.0);
    const std::string json = service.metrics().ToJson();
    EXPECT_NE(json.find("\"cross_job_hit_rate\""), std::string::npos);

    service.Shutdown();
    // Every run dropped its pins: nothing stays charged to any tenant.
    for (std::size_t i = 1; i < shared_results.size(); ++i) {
      EXPECT_EQ(service.broker().tenant_shared_bytes(
                    shared_results[i].tenant),
                0);
    }
    EXPECT_EQ(service.shared_catalog().pinned_bytes(), 0);
  }

  // Private-catalog baseline: same traffic, sharing off.
  storage::ThrottledDisk private_disk(FreshDir("xjob_private"),
                                      FastDisk());
  auto private_wl = AnnotatedWorkload(&private_disk);
  options.share_catalog = false;
  RefreshService private_service(&private_disk, options);
  const std::vector<JobResult> private_results =
      RunSharedWorkload(&private_service, private_wl, kFollowers);
  for (const JobResult& r : private_results) {
    ASSERT_TRUE(r.report.ok) << r.report.error;
    EXPECT_EQ(r.report.cross_job_hits, 0);
  }

  // Followers reused the seed's outputs wholesale, so the shared run's
  // total recompute is strictly below the private baseline's.
  EXPECT_LT(TotalComputeSeconds(shared_results),
            TotalComputeSeconds(private_results));
}

TEST(ServiceMetricsTest, PerPriorityWaitsAndStarvationGauge) {
  ServiceMetrics metrics;
  const double now =
      std::chrono::duration<double>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count();
  metrics.JobQueued(1, /*priority=*/0, now - 5.0);
  metrics.JobQueued(2, /*priority=*/3, now - 1.0);
  EXPECT_GE(metrics.StarvationSeconds(), 5.0);

  JobObservation slow;
  slow.tenant = "t";
  slow.priority = 0;
  slow.ok = true;
  slow.queue_wait_seconds = 5.0;
  metrics.Record(slow);
  metrics.JobDequeued(1);
  EXPECT_LT(metrics.StarvationSeconds(), 5.0);

  JobObservation fast;
  fast.tenant = "t";
  fast.priority = 3;
  fast.ok = true;
  fast.queue_wait_seconds = 0.5;
  metrics.Record(fast);
  metrics.JobDequeued(2);
  EXPECT_EQ(metrics.StarvationSeconds(), 0.0);

  const MetricsSnapshot snapshot = metrics.Snapshot();
  ASSERT_EQ(snapshot.per_priority.size(), 2u);
  EXPECT_EQ(snapshot.per_priority.at(0).jobs, 1);
  EXPECT_DOUBLE_EQ(snapshot.per_priority.at(0).max_wait_seconds, 5.0);
  EXPECT_DOUBLE_EQ(snapshot.per_priority.at(3).mean_wait_seconds(), 0.5);
  EXPECT_EQ(snapshot.queued_jobs, 0u);

  const std::string json = metrics.ToJson();
  EXPECT_NE(json.find("\"per_priority\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"starvation_seconds\""), std::string::npos);
  const std::string table = metrics.FormatTable();
  EXPECT_NE(table.find("priority"), std::string::npos) << table;
  EXPECT_NE(table.find("starvation"), std::string::npos);
}

TEST(RefreshServiceTest, StarvationGaugeTracksLiveQueue) {
  storage::ThrottledDisk disk(FreshDir("starve"), FastDisk());
  auto wl = AnnotatedWorkload(&disk);
  ServiceOptions options;
  options.num_workers = 1;
  options.global_budget = 16LL * 1024 * 1024;
  RefreshService service(&disk, options);
  std::vector<std::future<JobResult>> futures;
  for (int i = 0; i < 6; ++i) {
    RefreshJobSpec spec;
    spec.workload = wl;
    spec.tenant = "starve";
    futures.push_back(service.Submit(std::move(spec)));
  }
  for (auto& future : futures) future.get();
  service.Shutdown();
  // Everything ran: the gauge must be clean.
  EXPECT_EQ(service.metrics().StarvationSeconds(), 0.0);
  EXPECT_EQ(service.metrics().Snapshot().queued_jobs, 0u);
}

}  // namespace
}  // namespace sc::service
