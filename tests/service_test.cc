#include <gtest/gtest.h>

#include <filesystem>
#include <future>
#include <memory>
#include <vector>

#include "runtime/controller.h"
#include "service/service.h"
#include "workload/datagen.h"
#include "workload/workloads.h"

namespace sc::service {
namespace {

storage::DiskProfile FastDisk() {
  storage::DiskProfile profile;
  profile.throttle = false;
  return profile;
}

std::string FreshDir(const std::string& tag) {
  const std::string dir = testing::TempDir() + "/sc_service_" + tag;
  std::filesystem::remove_all(dir);
  return dir;
}

/// Loads tiny TPC-DS data into `disk` and returns the Io1 workload with
/// observed execution metadata (sizes, compute times, speedup scores).
std::shared_ptr<const workload::MvWorkload> AnnotatedWorkload(
    storage::ThrottledDisk* disk) {
  workload::DataGenOptions data_options;
  data_options.scale = 0.03;
  runtime::Controller profiler(disk, runtime::ControllerOptions{});
  profiler.LoadBaseTables(workload::GenerateTpcdsData(data_options));
  auto wl = std::make_shared<workload::MvWorkload>(workload::BuildIo1());
  const runtime::RunReport report = profiler.ProfileAndAnnotate(wl.get());
  EXPECT_TRUE(report.ok) << report.error;
  return wl;
}

TEST(RefreshServiceTest, StressConcurrentTenantsNeverExceedGlobalBudget) {
  storage::ThrottledDisk disk(FreshDir("stress"), FastDisk());
  auto wl = AnnotatedWorkload(&disk);

  const std::int64_t global_budget = 16LL * 1024 * 1024;
  ServiceOptions options;
  options.num_workers = 4;
  options.global_budget = global_budget;
  RefreshService service(&disk, options);

  // 12 jobs from 3 tenants asking for half or three quarters of the
  // global budget, so concurrent grants contend and some jobs run on
  // partial funding (and re-optimize at their granted budget).
  constexpr int kJobs = 12;
  std::vector<std::future<JobResult>> futures;
  for (int i = 0; i < kJobs; ++i) {
    RefreshJobSpec spec;
    spec.workload = wl;
    spec.tenant = "tenant" + std::to_string(i % 3);
    spec.priority = i % 2;
    spec.requested_budget =
        i % 2 == 0 ? global_budget / 2 : 3 * global_budget / 4;
    futures.push_back(service.Submit(std::move(spec)));
  }

  for (auto& future : futures) {
    const JobResult result = future.get();
    EXPECT_TRUE(result.report.ok) << result.report.error;
    EXPECT_GT(result.granted_budget, 0);
    EXPECT_LE(result.granted_budget, result.requested_budget);
    // Each run stayed inside its granted slice of the catalog.
    EXPECT_LE(result.report.peak_memory, result.granted_budget);
  }

  // The arbitration invariant: concurrent reservations never exceeded
  // the global budget, and everything was handed back.
  EXPECT_LE(service.broker().peak_reserved_bytes(), global_budget);
  EXPECT_GT(service.broker().peak_reserved_bytes(), 0);
  service.Shutdown();
  EXPECT_EQ(service.broker().reserved_bytes(), 0);

  const MetricsSnapshot snapshot = service.metrics().Snapshot();
  EXPECT_EQ(snapshot.aggregate.jobs_completed, kJobs);
  EXPECT_EQ(snapshot.aggregate.jobs_failed, 0);
  EXPECT_EQ(snapshot.per_tenant.size(), 3u);
  EXPECT_GT(snapshot.aggregate.p99_latency_seconds, 0.0);
  EXPECT_GE(snapshot.aggregate.p99_latency_seconds,
            snapshot.aggregate.p50_latency_seconds);
}

TEST(RefreshServiceTest, RepeatRefreshHitsPlanCache) {
  storage::ThrottledDisk disk(FreshDir("plancache"), FastDisk());
  auto wl = AnnotatedWorkload(&disk);
  ServiceOptions options;
  options.num_workers = 1;
  options.global_budget = 16LL * 1024 * 1024;
  RefreshService service(&disk, options);

  RefreshJobSpec spec;
  spec.workload = wl;
  spec.tenant = "repeat";
  const JobResult first = service.Submit(spec).get();
  EXPECT_TRUE(first.report.ok) << first.report.error;
  EXPECT_FALSE(first.plan_cache_hit);

  const JobResult second = service.Submit(spec).get();
  EXPECT_TRUE(second.report.ok) << second.report.error;
  EXPECT_TRUE(second.plan_cache_hit);
  EXPECT_GE(service.plan_cache().stats().hits, 1);
}

TEST(RefreshServiceTest, CatalogStatsFlowIntoMetrics) {
  storage::ThrottledDisk disk(FreshDir("catstats"), FastDisk());
  auto wl = AnnotatedWorkload(&disk);
  ServiceOptions options;
  options.num_workers = 1;
  options.global_budget = 16LL * 1024 * 1024;
  RefreshService service(&disk, options);

  RefreshJobSpec spec;
  spec.workload = wl;
  spec.tenant = "stats";
  const JobResult result = service.Submit(spec).get();
  ASSERT_TRUE(result.report.ok) << result.report.error;
  // A funded run serves at least one input from the Memory Catalog.
  EXPECT_GT(result.report.catalog_hits, 0);
  EXPECT_GT(result.report.CatalogHitRate(), 0.0);

  const MetricsSnapshot snapshot = service.metrics().Snapshot();
  const auto it = snapshot.per_tenant.find("stats");
  ASSERT_NE(it, snapshot.per_tenant.end());
  EXPECT_GT(it->second.catalog_hit_rate(), 0.0);
  EXPECT_FALSE(service.metrics().ToJson().empty());
  EXPECT_FALSE(service.metrics().FormatTable().empty());
}

TEST(RefreshServiceTest, TenantQuotaCapsGrant) {
  storage::ThrottledDisk disk(FreshDir("quota"), FastDisk());
  auto wl = AnnotatedWorkload(&disk);
  ServiceOptions options;
  options.num_workers = 1;
  options.global_budget = 16LL * 1024 * 1024;
  RefreshService service(&disk, options);
  const std::int64_t quota = 2LL * 1024 * 1024;
  service.SetTenantQuota("capped", quota);

  RefreshJobSpec spec;
  spec.workload = wl;
  spec.tenant = "capped";
  spec.requested_budget = 8LL * 1024 * 1024;
  const JobResult result = service.Submit(spec).get();
  EXPECT_TRUE(result.report.ok) << result.report.error;
  EXPECT_LE(result.granted_budget, quota);
}

TEST(RefreshServiceTest, ExecutionFailureIsReportedNotThrown) {
  storage::ThrottledDisk disk(FreshDir("fail"), FastDisk());
  // No base tables loaded: every job must fail cleanly.
  auto wl = std::make_shared<workload::MvWorkload>(workload::BuildIo1());
  ServiceOptions options;
  options.num_workers = 2;
  RefreshService service(&disk, options);

  RefreshJobSpec spec;
  spec.workload = wl;
  spec.tenant = "broken";
  const JobResult result = service.Submit(spec).get();
  EXPECT_FALSE(result.report.ok);
  EXPECT_FALSE(result.report.error.empty());
  const MetricsSnapshot snapshot = service.metrics().Snapshot();
  EXPECT_EQ(snapshot.aggregate.jobs_failed, 1);
  // The failure released its budget: the broker is clean.
  EXPECT_EQ(service.broker().reserved_bytes(), 0);
}

TEST(RefreshServiceTest, SubmitAfterShutdownThrows) {
  storage::ThrottledDisk disk(FreshDir("shutdown"), FastDisk());
  auto wl = std::make_shared<workload::MvWorkload>(workload::BuildIo1());
  RefreshService service(&disk, ServiceOptions{});
  service.Shutdown();
  RefreshJobSpec spec;
  spec.workload = wl;
  EXPECT_THROW(service.Submit(std::move(spec)), std::runtime_error);
}

TEST(RefreshServiceTest, NonDrainingShutdownFailsPendingJobs) {
  storage::ThrottledDisk disk(FreshDir("nodrain"), FastDisk());
  auto wl = AnnotatedWorkload(&disk);
  ServiceOptions options;
  options.num_workers = 1;
  RefreshService service(&disk, options);

  std::vector<std::future<JobResult>> futures;
  for (int i = 0; i < 6; ++i) {
    RefreshJobSpec spec;
    spec.workload = wl;
    futures.push_back(service.Submit(std::move(spec)));
  }
  service.Shutdown(/*drain=*/false);
  int completed = 0;
  int rejected = 0;
  for (auto& future : futures) {
    const JobResult result = future.get();  // every future must resolve
    if (result.report.ok) {
      ++completed;
    } else {
      EXPECT_NE(result.report.error.find("shutting down"),
                std::string::npos);
      ++rejected;
    }
  }
  EXPECT_EQ(completed + rejected, 6);
}

TEST(RefreshServiceTest, MetricsJsonEscapesTenantNames) {
  storage::ThrottledDisk disk(FreshDir("jsonesc"), FastDisk());
  // Jobs fail (no base tables), which must still be counted per tenant.
  auto wl = std::make_shared<workload::MvWorkload>(workload::BuildIo1());
  ServiceOptions options;
  options.num_workers = 1;
  RefreshService service(&disk, options);
  RefreshJobSpec spec;
  spec.workload = wl;
  spec.tenant = "acme\"prod\\eu";
  const JobResult result = service.Submit(std::move(spec)).get();
  EXPECT_FALSE(result.report.ok);
  const std::string json = service.metrics().ToJson();
  EXPECT_NE(json.find("acme\\\"prod\\\\eu"), std::string::npos) << json;
  const MetricsSnapshot snapshot = service.metrics().Snapshot();
  EXPECT_EQ(snapshot.aggregate.jobs_failed, 1);
}

TEST(RefreshServiceTest, NullWorkloadRejected) {
  storage::ThrottledDisk disk(FreshDir("null"), FastDisk());
  RefreshService service(&disk, ServiceOptions{});
  EXPECT_THROW(service.Submit(RefreshJobSpec{}), std::invalid_argument);
}

}  // namespace
}  // namespace sc::service
