// End-to-end integration: workloads -> scale model -> optimizer ->
// simulator, asserting the paper's qualitative claims hold in this
// reproduction (S/C beats NoOpt and every baseline; partitioned datasets
// benefit more; memory sweeps are monotone-ish).
#include <gtest/gtest.h>

#include "opt/optimizer.h"
#include "sim/lru_cache.h"
#include "sim/refresh_sim.h"
#include "workload/scale_model.h"
#include "workload/workloads.h"

namespace sc {
namespace {

using opt::AlternatingOptions;
using opt::Optimizer;
using sim::SimOptions;
using workload::AnnotateWorkload;
using workload::BudgetForPercent;
using workload::MvWorkload;
using workload::ScaleModelOptions;
using workload::StandardWorkloads;

SimOptions MakeSimOptions(std::int64_t budget) {
  SimOptions options;
  options.budget = budget;
  return options;
}

class WorkloadSimTest : public testing::TestWithParam<int> {
 protected:
  MvWorkload AnnotatedWorkload(double gb, bool partitioned) const {
    MvWorkload wl =
        StandardWorkloads()[static_cast<std::size_t>(GetParam())];
    ScaleModelOptions options;
    options.dataset_gb = gb;
    options.partitioned = partitioned;
    AnnotateWorkload(&wl, options);
    return wl;
  }
};

TEST_P(WorkloadSimTest, ScSpeedsUpAt100GbWithPaperBudget) {
  const MvWorkload wl = AnnotatedWorkload(100.0, false);
  const std::int64_t budget = BudgetForPercent(100.0, 1.6);  // 1.6GB
  const auto result = Optimizer{}.Optimize(wl.graph, budget);
  const SimOptions options = MakeSimOptions(budget);
  const double speedup =
      sim::SpeedupOverNoOpt(wl.graph, result.plan, options);
  // Paper Figure 9: 1.04x - 2.72x on TPC-DS.
  EXPECT_GE(speedup, 1.0);
  EXPECT_LT(speedup, 6.0);
}

TEST_P(WorkloadSimTest, PartitionedDatasetGainsAtLeastAsMuch) {
  const MvWorkload normal = AnnotatedWorkload(100.0, false);
  const MvWorkload part = AnnotatedWorkload(100.0, true);
  const std::int64_t budget = BudgetForPercent(100.0, 0.8);
  const SimOptions options = MakeSimOptions(budget);
  const double normal_speedup = sim::SpeedupOverNoOpt(
      normal.graph, Optimizer{}.Optimize(normal.graph, budget).plan,
      options);
  const double part_speedup = sim::SpeedupOverNoOpt(
      part.graph, Optimizer{}.Optimize(part.graph, budget).plan, options);
  // Paper Figure 10: TPC-DSp speedups dominate TPC-DS at equal budgets
  // (smaller intermediates fit more nodes into the Memory Catalog).
  EXPECT_GE(part_speedup, normal_speedup * 0.9);
}

TEST_P(WorkloadSimTest, ScBeatsEveryBaselineSelector) {
  const MvWorkload wl = AnnotatedWorkload(100.0, false);
  const std::int64_t budget = BudgetForPercent(100.0, 1.6);
  const SimOptions options = MakeSimOptions(budget);
  const double ours = sim::SimulateRun(
      wl.graph, Optimizer{}.Optimize(wl.graph, budget).plan, options)
                          .makespan;
  for (const auto selector :
       {opt::SelectorMethod::kGreedy, opt::SelectorMethod::kRandom,
        opt::SelectorMethod::kRatio}) {
    AlternatingOptions ablated;
    ablated.selector = selector;
    const double theirs =
        sim::SimulateRun(wl.graph,
                         Optimizer{ablated}.Optimize(wl.graph, budget).plan,
                         options)
            .makespan;
    EXPECT_LE(ours, theirs * 1.02) << opt::ToString(selector);
  }
}

TEST_P(WorkloadSimTest, ScBeatsLruCacheBaseline) {
  const MvWorkload wl = AnnotatedWorkload(100.0, false);
  const std::int64_t budget = BudgetForPercent(100.0, 1.6);
  const SimOptions options = MakeSimOptions(budget);
  const double ours = sim::SimulateRun(
      wl.graph, Optimizer{}.Optimize(wl.graph, budget).plan, options)
                          .makespan;
  const double lru =
      sim::SimulateLruBaseline(wl.graph, budget, options).makespan;
  EXPECT_LE(ours, lru * 1.001);
}

TEST_P(WorkloadSimTest, MemorySweepIsMonotoneInSpeedup) {
  // Paper Figure 11: larger Memory Catalogs help (monotone up to noise).
  const MvWorkload wl = AnnotatedWorkload(100.0, true);
  double previous = 0.0;
  for (const double percent : {0.4, 0.8, 1.6, 3.2, 6.4}) {
    const std::int64_t budget = BudgetForPercent(100.0, percent);
    const auto result = Optimizer{}.Optimize(wl.graph, budget);
    const double speedup = sim::SpeedupOverNoOpt(wl.graph, result.plan,
                                                 MakeSimOptions(budget));
    EXPECT_GE(speedup, previous * 0.98) << percent;
    previous = speedup;
  }
}

TEST_P(WorkloadSimTest, TableReadTimeShrinksWithBudget) {
  // Paper Table IV: table-read CPU time falls as the Memory Catalog
  // grows; compute time is essentially untouched.
  const MvWorkload wl = AnnotatedWorkload(100.0, false);
  const SimOptions base = MakeSimOptions(0);
  const double noopt_read =
      sim::SimulateNoOpt(wl.graph, base).total_read_seconds;
  const double noopt_compute =
      sim::SimulateNoOpt(wl.graph, base).total_compute_seconds;
  const std::int64_t budget = BudgetForPercent(100.0, 6.4);
  const auto result = Optimizer{}.Optimize(wl.graph, budget);
  const auto run =
      sim::SimulateRun(wl.graph, result.plan, MakeSimOptions(budget));
  EXPECT_LE(run.total_read_seconds, noopt_read);
  EXPECT_NEAR(run.total_compute_seconds, noopt_compute,
              noopt_compute * 0.01);
}

INSTANTIATE_TEST_SUITE_P(AllFive, WorkloadSimTest, testing::Range(0, 5),
                         [](const testing::TestParamInfo<int>& info) {
                           return StandardWorkloads()
                               [static_cast<std::size_t>(info.param)]
                                   .name;
                         });

TEST(IntegrationTest, FiveWorkloadAggregateSpeedupInPaperBand) {
  // Aggregate end-to-end time across all 5 workloads at 100GB with the
  // paper's 1.6GB Memory Catalog: overall speedup must be > 1.2x and
  // below the paper's 5.08x ceiling.
  double noopt_total = 0;
  double sc_total = 0;
  const std::int64_t budget = BudgetForPercent(100.0, 1.6);
  for (MvWorkload wl : StandardWorkloads()) {
    ScaleModelOptions sm;
    sm.dataset_gb = 100.0;
    AnnotateWorkload(&wl, sm);
    const SimOptions options = MakeSimOptions(budget);
    noopt_total += sim::SimulateNoOpt(wl.graph, options).makespan;
    const auto result = Optimizer{}.Optimize(wl.graph, budget);
    sc_total += sim::SimulateRun(wl.graph, result.plan, options).makespan;
  }
  const double speedup = noopt_total / sc_total;
  EXPECT_GT(speedup, 1.2);
  EXPECT_LT(speedup, 5.08);
}

TEST(IntegrationTest, ComputeWorkloadsGainLessThanIoWorkloads) {
  // The design goal (paper §VI-B): savings concentrate on I/O-heavy
  // workloads.
  const std::int64_t budget = BudgetForPercent(100.0, 1.6);
  auto speedup_of = [&](int index) {
    MvWorkload wl = StandardWorkloads()[static_cast<std::size_t>(index)];
    ScaleModelOptions sm;
    sm.dataset_gb = 100.0;
    AnnotateWorkload(&wl, sm);
    const auto result = Optimizer{}.Optimize(wl.graph, budget);
    return sim::SpeedupOverNoOpt(wl.graph, result.plan,
                                 MakeSimOptions(budget));
  };
  const double io_best = std::max({speedup_of(0), speedup_of(1),
                                   speedup_of(2)});
  const double compute1 = speedup_of(3);
  EXPECT_GT(io_best, compute1);
}

}  // namespace
}  // namespace sc
