#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "service/budget_broker.h"

namespace sc::service {
namespace {

BudgetBrokerOptions Opts(std::int64_t global,
                         std::int64_t default_quota = 0,
                         double min_fraction = 0.25) {
  BudgetBrokerOptions options;
  options.global_budget = global;
  options.default_tenant_quota = default_quota;
  options.min_grant_fraction = min_fraction;
  return options;
}

TEST(BudgetBrokerTest, GrantsFullRequestWhenFree) {
  BudgetBroker broker(Opts(1000));
  BudgetGrant grant = broker.Acquire("a", 400);
  EXPECT_TRUE(grant.valid());
  EXPECT_EQ(grant.bytes, 400);
  EXPECT_EQ(broker.reserved_bytes(), 400);
  EXPECT_EQ(broker.free_bytes(), 600);
  broker.Release(&grant);
  EXPECT_EQ(broker.reserved_bytes(), 0);
}

TEST(BudgetBrokerTest, ReleaseIsIdempotent) {
  BudgetBroker broker(Opts(1000));
  BudgetGrant grant = broker.Acquire("a", 100);
  broker.Release(&grant);
  EXPECT_FALSE(grant.valid());
  broker.Release(&grant);  // no-op
  broker.Release(nullptr);
  EXPECT_EQ(broker.reserved_bytes(), 0);
}

TEST(BudgetBrokerTest, RequestClampedToGlobalBudget) {
  BudgetBroker broker(Opts(1000));
  BudgetGrant grant = broker.Acquire("a", 5000);
  EXPECT_EQ(grant.bytes, 1000);
  broker.Release(&grant);
}

TEST(BudgetBrokerTest, ZeroRequestGrantedImmediately) {
  BudgetBroker broker(Opts(1000));
  BudgetGrant big = broker.Acquire("a", 1000);
  BudgetGrant zero = broker.Acquire("b", 0);  // must not block
  EXPECT_TRUE(zero.valid());
  EXPECT_EQ(zero.bytes, 0);
  broker.Release(&big);
  broker.Release(&zero);
}

TEST(BudgetBrokerTest, ZeroRequestPassesUnfundableHead) {
  // A zero-byte grant reserves nothing, so it must be admitted even
  // while a large request waits unfunded at the head of the queue.
  BudgetBroker broker(Opts(1000, 0, 1.0));
  BudgetGrant held = broker.Acquire("a", 1000);
  std::thread blocked([&] {
    BudgetGrant grant = broker.Acquire("big", 800);
    broker.Release(&grant);
  });
  while (broker.waiting_count() < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  BudgetGrant zero = broker.Acquire("c", 0);  // must not block behind big
  EXPECT_TRUE(zero.valid());
  EXPECT_EQ(zero.bytes, 0);
  broker.Release(&held);
  blocked.join();
  broker.Release(&zero);
}

TEST(BudgetBrokerTest, QuotaLoweredUnderPendingWaiterDoesNotWedge) {
  // The waiter's funding terms must follow the current quota: shrinking
  // a tenant's quota below the original floor re-floors the request
  // instead of stranding it (and the whole queue) forever.
  BudgetBroker broker(Opts(1000, 0, 0.25));
  BudgetGrant held = broker.Acquire("other", 1000);
  std::atomic<std::int64_t> granted{-1};
  std::thread waiter([&] {
    BudgetGrant grant = broker.Acquire("x", 800);  // original floor 200
    granted = grant.bytes;
    broker.Release(&grant);
  });
  while (broker.waiting_count() < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  broker.SetTenantQuota("x", 100);  // below the original floor
  broker.Release(&held);
  waiter.join();  // must not hang
  EXPECT_GT(granted.load(), 0);
  EXPECT_LE(granted.load(), 100);
  EXPECT_EQ(broker.reserved_bytes(), 0);
}

TEST(BudgetBrokerTest, PartialGrantUnderContention) {
  BudgetBroker broker(Opts(1000, 0, 0.25));
  BudgetGrant first = broker.Acquire("a", 700);
  // 300 free; request of 800 has floor 200, so it is funded partially.
  BudgetGrant second = broker.Acquire("b", 800);
  EXPECT_EQ(second.bytes, 300);
  EXPECT_EQ(broker.reserved_bytes(), 1000);
  broker.Release(&first);
  broker.Release(&second);
}

TEST(BudgetBrokerTest, TenantQuotaEnforced) {
  BudgetBroker broker(Opts(1000, /*default_quota=*/300));
  BudgetGrant grant = broker.Acquire("a", 900);
  EXPECT_EQ(grant.bytes, 300);  // clamped to the tenant quota
  EXPECT_EQ(broker.tenant_reserved_bytes("a"), 300);
  // A different tenant still has global headroom.
  BudgetGrant other = broker.Acquire("b", 300);
  EXPECT_EQ(other.bytes, 300);
  broker.Release(&grant);
  broker.Release(&other);
}

TEST(BudgetBrokerTest, QuotaAboveGlobalBudgetCannotWedgeAdmission) {
  // A quota larger than the pool must not produce a floor no grant can
  // ever satisfy (which would block the queue head forever).
  BudgetBroker broker(Opts(1000, 0, 0.5));
  broker.SetTenantQuota("huge", 100000);
  BudgetGrant grant = broker.Acquire("huge", 50000);
  EXPECT_EQ(grant.bytes, 1000);  // clamped to the global budget
  broker.Release(&grant);
  BudgetGrant tried = broker.TryAcquire("huge", 50000);
  EXPECT_TRUE(tried.valid());
  EXPECT_EQ(tried.bytes, 1000);
  broker.Release(&tried);
}

TEST(BudgetBrokerTest, PerTenantQuotaOverride) {
  BudgetBroker broker(Opts(1000, 300));
  broker.SetTenantQuota("vip", 800);
  BudgetGrant grant = broker.Acquire("vip", 900);
  EXPECT_EQ(grant.bytes, 800);
  broker.Release(&grant);
}

TEST(BudgetBrokerTest, TryAcquireDoesNotBlockOrOvercommit) {
  BudgetBroker broker(Opts(1000, 0, 0.5));
  BudgetGrant held = broker.Acquire("a", 900);
  // 100 free, floor of a 400-byte request at fraction .5 is 200: refuse.
  BudgetGrant refused = broker.TryAcquire("b", 400);
  EXPECT_FALSE(refused.valid());
  BudgetGrant small = broker.TryAcquire("b", 100);
  EXPECT_TRUE(small.valid());
  EXPECT_EQ(small.bytes, 100);
  EXPECT_LE(broker.reserved_bytes(), 1000);
  broker.Release(&held);
  broker.Release(&small);
}

TEST(BudgetBrokerTest, BlockedAcquireWakesOnRelease) {
  BudgetBroker broker(Opts(1000, 0, 1.0));
  BudgetGrant held = broker.Acquire("a", 1000);
  std::atomic<bool> granted{false};
  std::thread waiter([&] {
    BudgetGrant grant = broker.Acquire("b", 500);
    granted = true;
    broker.Release(&grant);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(granted.load());
  EXPECT_EQ(broker.waiting_count(), 1u);
  broker.Release(&held);
  waiter.join();
  EXPECT_TRUE(granted.load());
  EXPECT_EQ(broker.reserved_bytes(), 0);
}

TEST(BudgetBrokerTest, ReturnUnusedWakesHeadOfLineWaiter) {
  BudgetBroker broker(Opts(1000, 0, 1.0));
  BudgetGrant held = broker.Acquire("a", 1000);
  std::atomic<bool> granted{false};
  std::int64_t waiter_bytes = 0;
  std::thread waiter([&] {
    BudgetGrant grant = broker.Acquire("b", 400);
    waiter_bytes = grant.bytes;
    granted = true;
    broker.Release(&grant);
  });
  while (broker.waiting_count() < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_FALSE(granted.load());
  // Returning part of the running grant funds the waiter mid-run.
  broker.ReturnUnused(&held, 400);
  waiter.join();
  EXPECT_TRUE(granted.load());
  EXPECT_EQ(waiter_bytes, 400);
  EXPECT_EQ(held.bytes, 600);
  EXPECT_TRUE(held.valid());
  broker.Release(&held);
  EXPECT_EQ(broker.reserved_bytes(), 0);
}

TEST(BudgetBrokerTest, ReturnUnusedClampsAndIgnoresInvalidGrants) {
  BudgetBroker broker(Opts(1000, 0, 1.0));
  BudgetGrant grant = broker.Acquire("a", 300);
  broker.ReturnUnused(&grant, -5);  // no-op
  EXPECT_EQ(grant.bytes, 300);
  broker.ReturnUnused(&grant, 1000);  // clamped to the outstanding bytes
  EXPECT_EQ(grant.bytes, 0);
  EXPECT_EQ(broker.reserved_bytes(), 0);
  broker.Release(&grant);
  EXPECT_EQ(broker.reserved_bytes(), 0);
  BudgetGrant invalid;
  broker.ReturnUnused(&invalid, 100);  // no-op, no underflow
  EXPECT_EQ(broker.reserved_bytes(), 0);
  broker.ReturnUnused(nullptr, 100);
}

TEST(BudgetBrokerTest, HigherPriorityWaiterIsFundedFirst) {
  BudgetBroker broker(Opts(1000, 0, 1.0));
  BudgetGrant held = broker.Acquire("a", 1000);

  std::atomic<int> low_order{0};
  std::atomic<int> high_order{0};
  std::atomic<int> next{1};
  std::thread low([&] {
    BudgetGrant grant = broker.Acquire("low", 600, /*priority=*/0);
    low_order = next.fetch_add(1);
    broker.Release(&grant);
  });
  // Let the low-priority request queue up first.
  while (broker.waiting_count() < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::thread high([&] {
    BudgetGrant grant = broker.Acquire("high", 600, /*priority=*/5);
    high_order = next.fetch_add(1);
    broker.Release(&grant);
  });
  while (broker.waiting_count() < 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  broker.Release(&held);
  low.join();
  high.join();
  // The later-arriving high-priority request preempted the queue.
  EXPECT_LT(high_order.load(), low_order.load());
}

TEST(BudgetBrokerTest, UnfundableHeadBlocksLowerPrecedence) {
  BudgetBroker broker(Opts(1000, 0, 1.0));
  BudgetGrant held = broker.Acquire("a", 600);
  std::thread big([&] {
    // Needs 800, only 400 free: waits at the head of the queue.
    BudgetGrant grant = broker.Acquire("big", 800, /*priority=*/5);
    broker.Release(&grant);
  });
  while (broker.waiting_count() < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Fundable in isolation, but must not jump over the waiting head.
  BudgetGrant refused = broker.TryAcquire("small", 100, /*priority=*/0);
  EXPECT_FALSE(refused.valid());
  broker.Release(&held);
  big.join();
}

TEST(BudgetBrokerTest, QuotaStalledWaiterDoesNotConvoyOtherTenants) {
  // A waiter blocked by its own tenant quota (not the pool) must not
  // hold up admission of other tenants queued behind it.
  BudgetBroker broker(Opts(1000, 0, 0.25));
  broker.SetTenantQuota("a", 100);
  BudgetGrant first = broker.Acquire("a", 100);  // exhausts a's quota
  std::atomic<std::int64_t> second_bytes{-1};
  std::thread stalled([&] {
    BudgetGrant grant = broker.Acquire("a", 100);  // waits on own quota
    second_bytes = grant.bytes;
    broker.Release(&grant);
  });
  while (broker.waiting_count() < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Tenant b, queued behind the stalled waiter, is funded from the
  // plentiful free pool immediately.
  BudgetGrant other = broker.Acquire("b", 500);
  EXPECT_EQ(other.bytes, 500);
  EXPECT_EQ(second_bytes.load(), -1);  // a's second job still waits
  broker.Release(&first);              // frees a's quota
  stalled.join();
  EXPECT_EQ(second_bytes.load(), 100);
  broker.Release(&other);
  EXPECT_EQ(broker.reserved_bytes(), 0);
}

TEST(BudgetBrokerTest, ConcurrentAcquireReleaseNeverOverReserves) {
  const std::int64_t global = 1000;
  BudgetBroker broker(Opts(global, /*default_quota=*/400));
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&broker, t] {
      const std::string tenant = "t" + std::to_string(t % 3);
      for (int i = 0; i < 100; ++i) {
        BudgetGrant grant =
            broker.Acquire(tenant, 50 + 37 * (i % 7), i % 3);
        EXPECT_LE(grant.bytes, 400);
        broker.Release(&grant);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(broker.reserved_bytes(), 0);
  EXPECT_LE(broker.peak_reserved_bytes(), global);
  EXPECT_GT(broker.peak_reserved_bytes(), 0);
  EXPECT_EQ(broker.waiting_count(), 0u);
}

}  // namespace
}  // namespace sc::service
