#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "opt/constraints.h"
#include "opt/memory_usage.h"
#include "test_util.h"

namespace sc::opt {
namespace {

using graph::Order;

TEST(AllLiveSetsTest, DiamondFlagRootLiveUntilLastChild) {
  const graph::Graph g = test::DiamondGraph();
  const Order order = Order::FromSequence({0, 1, 2, 3});
  const auto live = AllLiveSets(g, order, /*budget=*/1000);
  // a (id 0) is live at slots 0,1,2 (children b@1, c@2); d's slot has
  // b? b is childless except d... b's child d is at slot 3, so b live 1..3.
  EXPECT_EQ(live[0], (std::vector<graph::NodeId>{0}));
  EXPECT_EQ(live[1], (std::vector<graph::NodeId>{0, 1}));
  EXPECT_EQ(live[2], (std::vector<graph::NodeId>{0, 1, 2}));
  EXPECT_EQ(live[3], (std::vector<graph::NodeId>{1, 2, 3}));
}

TEST(AllLiveSetsTest, ExcludesOversizeAndZeroScore) {
  graph::Graph g;
  const auto big = g.AddNode("big", 1000, 5.0);
  const auto zero = g.AddNode("zero", 10, 0.0);
  const auto ok = g.AddNode("ok", 10, 5.0);
  g.AddEdge(big, ok);
  g.AddEdge(zero, ok);
  const Order order = graph::KahnTopologicalOrder(g);
  const auto live = AllLiveSets(g, order, /*budget=*/100);
  for (const auto& s : live) {
    EXPECT_EQ(std::count(s.begin(), s.end(), big), 0);
    EXPECT_EQ(std::count(s.begin(), s.end(), zero), 0);
  }
}

TEST(GetConstraintsTest, ExcludedNodesListed) {
  graph::Graph g;
  g.AddNode("big", 1000, 5.0);
  g.AddNode("zero", 10, 0.0);
  g.AddNode("ok", 10, 5.0);
  const Order order = graph::KahnTopologicalOrder(g);
  const ConstraintSets cs = GetConstraints(g, order, /*budget=*/100);
  EXPECT_EQ(cs.excluded, (std::vector<graph::NodeId>{0, 1}));
}

TEST(GetConstraintsTest, TrivialSetsPruned) {
  // Total size well under budget: every live set is trivial; all
  // candidates become free nodes.
  const graph::Graph g = test::DiamondGraph(/*size=*/10);
  const Order order = graph::KahnTopologicalOrder(g);
  const ConstraintSets cs = GetConstraints(g, order, /*budget=*/1000);
  EXPECT_TRUE(cs.sets.empty());
  EXPECT_EQ(cs.free_nodes.size(), 4u);
  EXPECT_TRUE(cs.mkp_nodes.empty());
}

TEST(GetConstraintsTest, NonMaximalSetsPruned) {
  const graph::Graph g = test::DiamondGraph(/*size=*/10);
  const Order order = Order::FromSequence({0, 1, 2, 3});
  // Budget 15: sets {0},{0,1},{0,1,2},{1,2,3} -> only maximal+nontrivial
  // survive: {0,1,2} and {1,2,3}.
  const ConstraintSets cs = GetConstraints(g, order, /*budget=*/15);
  ASSERT_EQ(cs.sets.size(), 2u);
  EXPECT_EQ(cs.sets[0], (std::vector<graph::NodeId>{0, 1, 2}));
  EXPECT_EQ(cs.sets[1], (std::vector<graph::NodeId>{1, 2, 3}));
  EXPECT_TRUE(cs.free_nodes.empty());
  EXPECT_EQ(cs.mkp_nodes.size(), 4u);
}

TEST(GetConstraintsTest, EverySlotCoveredByRecordedSet) {
  // Property: for each slot, the slot's live set must be a subset of some
  // recorded (pre-pruning trivial/maximal logic aside, after restoring
  // trivial sets this must hold). We verify against surviving sets plus
  // trivial ones implied by budget.
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    const graph::Graph g = test::RandomDag(20, seed);
    const Order order = graph::KahnTopologicalOrder(g);
    const std::int64_t budget = 120;
    const ConstraintSets cs = GetConstraints(g, order, budget);
    const auto live = AllLiveSets(g, order, budget);
    for (const auto& slot_set : live) {
      std::int64_t total = 0;
      for (graph::NodeId v : slot_set) total += g.node(v).size_bytes;
      if (total <= budget) continue;  // trivial: pruning is safe
      const bool covered = std::any_of(
          cs.sets.begin(), cs.sets.end(),
          [&](const std::vector<graph::NodeId>& s) {
            return std::includes(s.begin(), s.end(), slot_set.begin(),
                                 slot_set.end());
          });
      EXPECT_TRUE(covered) << "seed " << seed;
    }
  }
}

TEST(GetConstraintsTest, FreeNodesReallyAreSafe) {
  // Flagging every free node alone can never violate the budget.
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    const graph::Graph g = test::RandomDag(20, seed);
    const Order order = graph::KahnTopologicalOrder(g);
    const std::int64_t budget = 150;
    const ConstraintSets cs = GetConstraints(g, order, budget);
    const FlagSet flags = MakeFlags(g.num_nodes(), cs.free_nodes);
    EXPECT_TRUE(IsFeasible(g, order, flags, budget)) << "seed " << seed;
  }
}

TEST(GetConstraintsTest, MkpNodesDisjointFromExcludedAndFree) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const graph::Graph g = test::RandomDag(30, seed);
    const Order order = graph::KahnTopologicalOrder(g);
    const ConstraintSets cs = GetConstraints(g, order, 100);
    std::set<graph::NodeId> mkp(cs.mkp_nodes.begin(), cs.mkp_nodes.end());
    for (graph::NodeId v : cs.excluded) EXPECT_EQ(mkp.count(v), 0u);
    for (graph::NodeId v : cs.free_nodes) EXPECT_EQ(mkp.count(v), 0u);
    // Partition covers all nodes.
    EXPECT_EQ(cs.mkp_nodes.size() + cs.excluded.size() +
                  cs.free_nodes.size(),
              static_cast<std::size_t>(g.num_nodes()));
  }
}

TEST(GetConstraintsTest, SetsAreSortedAndUnique) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const graph::Graph g = test::RandomDag(25, seed);
    const Order order = graph::KahnTopologicalOrder(g);
    const ConstraintSets cs = GetConstraints(g, order, 80);
    for (const auto& s : cs.sets) {
      EXPECT_TRUE(std::is_sorted(s.begin(), s.end()));
      EXPECT_EQ(std::adjacent_find(s.begin(), s.end()), s.end());
    }
    // No set is a subset of another.
    for (std::size_t i = 0; i < cs.sets.size(); ++i) {
      for (std::size_t j = 0; j < cs.sets.size(); ++j) {
        if (i == j) continue;
        EXPECT_FALSE(std::includes(cs.sets[j].begin(), cs.sets[j].end(),
                                   cs.sets[i].begin(), cs.sets[i].end()))
            << "set " << i << " subset of " << j << " seed " << seed;
      }
    }
  }
}

}  // namespace
}  // namespace sc::opt
