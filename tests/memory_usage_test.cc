#include <gtest/gtest.h>

#include "opt/memory_usage.h"
#include "test_util.h"

namespace sc::opt {
namespace {

using graph::Order;

TEST(FlagSetTest, FlaggedNodesRoundTrip) {
  const FlagSet flags = MakeFlags(5, {0, 3});
  EXPECT_EQ(FlaggedNodes(flags), (std::vector<graph::NodeId>{0, 3}));
  EXPECT_TRUE(FlaggedNodes(EmptyFlags(4)).empty());
}

TEST(FlagSetTest, TotalScoreAndSize) {
  const graph::Graph g = test::Figure7Graph();
  const FlagSet flags = MakeFlags(g.num_nodes(), {0, 2});
  EXPECT_DOUBLE_EQ(TotalScore(g, flags), 200.0);
  EXPECT_EQ(TotalFlaggedSize(g, flags), 200);
}

TEST(ReleaseSlotTest, ChildlessNodeReleasesAtOwnSlot) {
  const graph::Graph g = test::Figure7Graph();
  const Order order = graph::KahnTopologicalOrder(g);
  // v6 (id 5) is a leaf.
  EXPECT_EQ(ReleaseSlot(g, order, 5), order.position[5]);
}

TEST(ReleaseSlotTest, ReleasesAtLastChild) {
  const graph::Graph g = test::Figure7Graph();
  // Order: v1 v2 v3 v4 v5 v6 (ids 0 1 2 3 4 5).
  const Order order = Order::FromSequence({0, 1, 2, 3, 4, 5});
  // v1 (id 0) has children v2 (slot 1) and v4 (slot 3).
  EXPECT_EQ(ReleaseSlot(g, order, 0), 3);
  // v3 (id 2) has child v5 (slot 4).
  EXPECT_EQ(ReleaseSlot(g, order, 2), 4);
}

TEST(MemoryTimelineTest, PaperFigure7Order1) {
  // tau1 = v1 v2 v3 v4 v5 v6: v1 and v3 both live at slot 2 -> cannot both
  // be flagged under M=100.
  const graph::Graph g = test::Figure7Graph();
  const Order tau1 = Order::FromSequence({0, 1, 2, 3, 4, 5});
  const FlagSet both = MakeFlags(6, {0, 2});
  EXPECT_EQ(PeakMemoryUsage(g, tau1, both), 200);
  EXPECT_FALSE(IsFeasible(g, tau1, both, 100));
}

TEST(MemoryTimelineTest, PaperFigure7Order2) {
  // tau2 = v1 v2 v4 v3 v5 v6: v1 released after v4, so v1 and v3 never
  // coexist -> both flaggable under M=100.
  const graph::Graph g = test::Figure7Graph();
  const Order tau2 = Order::FromSequence({0, 1, 3, 2, 4, 5});
  const FlagSet both = MakeFlags(6, {0, 2});
  // v1 lives slots 0..2 (its last child v4 runs at slot 2); v3 lives
  // slots 3..4 — they never coexist, so the peak is a single 100GB node.
  EXPECT_EQ(PeakMemoryUsage(g, tau2, both), 100);
  EXPECT_TRUE(IsFeasible(g, tau2, both, 100));
}

TEST(MemoryTimelineTest, Figure7Order2AllowsMaxScore) {
  // Under tau2, flagging {v1, v3, v6} (score 210) is feasible with M=100
  // only when... v1 is 100GB and lives slots 0..2; v3 is 100GB and lives
  // slots 3..4; v6 lives slot 5. Peak is exactly 100.
  const graph::Graph g = test::Figure7Graph();
  const Order tau2 = Order::FromSequence({0, 1, 3, 2, 4, 5});
  const FlagSet flags = MakeFlags(6, {0, 2, 5});
  EXPECT_EQ(PeakMemoryUsage(g, tau2, flags), 100);
  EXPECT_TRUE(IsFeasible(g, tau2, flags, 100));
  EXPECT_DOUBLE_EQ(TotalScore(g, flags), 210.0);
}

TEST(MemoryTimelineTest, EmptyFlagsUseNoMemory) {
  const graph::Graph g = test::Figure7Graph();
  const Order order = graph::KahnTopologicalOrder(g);
  const auto timeline = MemoryTimeline(g, order, EmptyFlags(6));
  for (const auto usage : timeline) EXPECT_EQ(usage, 0);
  EXPECT_EQ(PeakMemoryUsage(g, order, EmptyFlags(6)), 0);
}

TEST(MemoryTimelineTest, TimelineMatchesManualDiamond) {
  // Diamond a->{b,c}->d, all size 10, flag a only.
  const graph::Graph g = test::DiamondGraph();
  const Order order = Order::FromSequence({0, 1, 2, 3});
  const auto timeline = MemoryTimeline(g, order, MakeFlags(4, {0}));
  // a lives from its own slot until last child c (slot 2).
  EXPECT_EQ(timeline, (std::vector<std::int64_t>{10, 10, 10, 0}));
}

TEST(AverageMemoryUsageTest, MatchesPaperFormula) {
  // avg = (1/n) * sum over flagged v of (release - position) * size.
  const graph::Graph g = test::DiamondGraph();
  const Order order = Order::FromSequence({0, 1, 2, 3});
  // a: span 2 (slots 0..2), size 10 -> 20; / n=4 -> 5.
  EXPECT_DOUBLE_EQ(AverageMemoryUsage(g, order, MakeFlags(4, {0})), 5.0);
  // Childless d: span 0 -> contributes nothing.
  EXPECT_DOUBLE_EQ(AverageMemoryUsage(g, order, MakeFlags(4, {3})), 0.0);
}

TEST(AverageMemoryUsageTest, BetterOrderLowersAverage) {
  const graph::Graph g = test::Figure7Graph();
  const FlagSet flags = MakeFlags(6, {0, 2});
  const Order tau1 = Order::FromSequence({0, 1, 2, 3, 4, 5});
  const Order tau2 = Order::FromSequence({0, 1, 3, 2, 4, 5});
  // tau2 releases v1 one slot later but lets v3 start later; for v1+v3 the
  // combined residency shrinks? v1: tau1 span 3, tau2 span 2. v3: tau1
  // span 2, tau2 span 1.
  EXPECT_LT(AverageMemoryUsage(g, tau2, flags),
            AverageMemoryUsage(g, tau1, flags));
}

TEST(FeasibilityTest, ZeroBudgetOnlyEmptySet) {
  const graph::Graph g = test::DiamondGraph();
  const Order order = graph::KahnTopologicalOrder(g);
  EXPECT_TRUE(IsFeasible(g, order, EmptyFlags(4), 0));
  EXPECT_FALSE(IsFeasible(g, order, MakeFlags(4, {0}), 0));
}

TEST(FeasibilityTest, RandomDagsTimelineNonNegative) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const graph::Graph g = test::RandomDag(25, seed);
    const Order order = graph::KahnTopologicalOrder(g);
    FlagSet flags(g.num_nodes());
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
      flags[v] = (v % 2) == 0;
    }
    for (const auto usage : MemoryTimeline(g, order, flags)) {
      EXPECT_GE(usage, 0);
    }
  }
}

}  // namespace
}  // namespace sc::opt
