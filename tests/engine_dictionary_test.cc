// Dictionary-encoded string columns, end to end: randomized
// encode/decode round-trips, bit-identity of every operator on
// dictionary-encoded inputs vs their plain twins (and vs the scalar
// reference), the shared-dictionary join/aggregate code paths, the
// dict-vs-literal comparison fast path, and the SCC1 compressed block
// format (dictionary pages for strings, frame-of-reference zig-zag
// varints for ints) through stream and file round-trips.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "engine/expr.h"
#include "engine/operators.h"
#include "engine/scalar_reference.h"
#include "storage/format.h"

namespace sc::engine {
namespace {

/// Edge-heavy string pool: empty string, SSO-sized, heap-sized,
/// embedded NUL and non-ASCII bytes — everything the dictionary page
/// serializer has to carry byte-exactly.
std::vector<std::string> EdgePool() {
  return {"",
          "a",
          "short",
          "exactly_15_ch_s",
          std::string("embedded\0nul", 12),
          std::string(40, 'x'),
          "caf\xc3\xa9_utf8",
          "zzz_" + std::string(100, 'q')};
}

Table RandomStringTable(Rng* rng, std::size_t rows) {
  const std::vector<std::string> pool = EdgePool();
  std::vector<std::int64_t> id(rows), key(rows);
  std::vector<double> x(rows);
  std::vector<std::string> s(rows), t(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    id[r] = static_cast<std::int64_t>(r) - 100;
    key[r] = rng->Zipf(11, 1.1);
    if (rng->Bernoulli(0.05)) {
      x[r] = std::numeric_limits<double>::quiet_NaN();
    } else if (rng->Bernoulli(0.05)) {
      x[r] = -0.0;
    } else {
      x[r] = rng->UniformDouble(-5.0, 5.0);
    }
    s[r] = pool[static_cast<std::size_t>(rng->UniformInt(
        0, static_cast<std::int64_t>(pool.size()) - 1))];
    t[r] = "grp_" + std::to_string(rng->UniformInt(0, 6));
  }
  return Table(Schema({Field{"id", DataType::kInt64},
                       Field{"key", DataType::kInt64},
                       Field{"x", DataType::kFloat64},
                       Field{"s", DataType::kString},
                       Field{"t", DataType::kString}}),
               {Column::FromInts(std::move(id)),
                Column::FromInts(std::move(key)),
                Column::FromDoubles(std::move(x)),
                Column::FromStrings(std::move(s)),
                Column::FromStrings(std::move(t))});
}

/// Twin with every string column dictionary-encoded. Logically equal to
/// the input (Table::operator== is representation-agnostic).
Table EncodeStrings(const Table& t) {
  std::vector<Column> cols;
  for (std::size_t i = 0; i < t.num_columns(); ++i) {
    const Column& col = t.column(i);
    cols.push_back(col.type() == DataType::kString &&
                           !col.dictionary_encoded()
                       ? col.DictionaryEncode()
                       : col);
  }
  return Table(t.schema(), std::move(cols));
}

TEST(DictionaryColumnTest, RandomizedRoundTrip) {
  Rng rng(9001);
  const std::vector<std::string> pool = EdgePool();
  for (const std::size_t rows :
       {std::size_t{0}, std::size_t{1}, std::size_t{7}, std::size_t{500}}) {
    std::vector<std::string> values(rows);
    for (std::size_t r = 0; r < rows; ++r) {
      values[r] = pool[static_cast<std::size_t>(rng.UniformInt(
          0, static_cast<std::int64_t>(pool.size()) - 1))];
    }
    const Column plain = Column::FromStrings(values);
    const Column encoded = plain.DictionaryEncode();
    ASSERT_TRUE(encoded.dictionary_encoded());
    ASSERT_EQ(encoded.size(), rows);
    // Dictionary is sorted and unique; codes are in range.
    const auto& dict = *encoded.dictionary();
    for (std::size_t i = 0; i + 1 < dict.size(); ++i) {
      EXPECT_LT(dict[i], dict[i + 1]);
    }
    for (std::size_t r = 0; r < rows; ++r) {
      ASSERT_GE(encoded.codes()[r], 0);
      ASSERT_LT(static_cast<std::size_t>(encoded.codes()[r]), dict.size());
      EXPECT_EQ(encoded.GetString(r), values[r]);
    }
    // Representation-agnostic equality both ways, and decode restores
    // the exact plain column.
    EXPECT_TRUE(encoded == plain);
    EXPECT_TRUE(plain == encoded);
    const Column decoded = encoded.DecodeDictionary();
    EXPECT_FALSE(decoded.dictionary_encoded());
    EXPECT_EQ(decoded.strings(), values);
  }
}

TEST(DictionaryColumnTest, EncodedByteSizeShrinksRepetitiveColumns) {
  // 4k rows over 8 distinct heap-length strings: codes + one dictionary
  // must be far smaller than 4k heap-allocated strings.
  std::vector<std::string> values(4096);
  for (std::size_t r = 0; r < values.size(); ++r) {
    values[r] = "warehouse_category_" + std::to_string(r % 8) +
                std::string(20, 'p');
  }
  const Column plain = Column::FromStrings(std::move(values));
  const Column encoded = plain.DictionaryEncode();
  EXPECT_LT(encoded.ByteSize(), plain.ByteSize() / 4);
}

TEST(DictionaryOperatorTest, EveryOperatorBitIdenticalVsPlain) {
  Rng rng(9002);
  for (const std::size_t rows :
       {std::size_t{0}, std::size_t{3}, std::size_t{400}}) {
    const Table plain = RandomStringTable(&rng, rows);
    const Table dict = EncodeStrings(plain);
    ASSERT_TRUE(plain == dict);

    const auto pred = And(Eq(Col("s"), Lit(std::string("short"))),
                          Gt(Col("key"), Lit(std::int64_t{1})));
    EXPECT_TRUE(FilterTable(dict, *pred) == FilterTable(plain, *pred));
    EXPECT_TRUE(FilterTable(dict, *pred) ==
                scalar::FilterTableScalar(plain, *pred));

    const std::vector<NamedExpr> projections = {
        {"s2", Col("s")}, {"flag", Ge(Col("t"), Lit(std::string("grp_3")))}};
    EXPECT_TRUE(ProjectTable(dict, projections) ==
                ProjectTable(plain, projections));

    const std::vector<AggSpec> aggs = {CountAll("n"), SumOf(Col("x"), "sx"),
                                       MinOf(Col("s"), "min_s"),
                                       MaxOf(Col("s"), "max_s")};
    for (const std::vector<std::string> keys :
         {std::vector<std::string>{"t"}, std::vector<std::string>{"s", "t"},
          std::vector<std::string>{"key", "s"}}) {
      EXPECT_TRUE(AggregateTable(dict, keys, aggs) ==
                  AggregateTable(plain, keys, aggs));
      EXPECT_TRUE(AggregateTable(dict, keys, aggs) ==
                  scalar::AggregateTableScalar(plain, keys, aggs));
    }

    EXPECT_TRUE(SortTable(dict, {"s", "id"}, {false, false}) ==
                SortTable(plain, {"s", "id"}, {false, false}));
    EXPECT_TRUE(SortTable(dict, {"t", "x"}, {true, false}) ==
                scalar::SortTableScalar(plain, {"t", "x"}, {true, false}));
  }
}

TEST(DictionaryOperatorTest, JoinsAcrossRepresentationsAgree) {
  Rng rng(9003);
  const Table left_plain = RandomStringTable(&rng, 300);
  const Table right_plain = RandomStringTable(&rng, 90);
  const Table ref = scalar::HashJoinTablesScalar(left_plain, right_plain,
                                                 {"s"}, {"s"});
  const Table left_dict = EncodeStrings(left_plain);
  const Table right_dict = EncodeStrings(right_plain);
  // Distinct dictionary objects (built per column): correct via the
  // decoded-hash fallback.
  EXPECT_TRUE(HashJoinTables(left_dict, right_dict, {"s"}, {"s"}) == ref);
  // Mixed representations on the two sides.
  EXPECT_TRUE(HashJoinTables(left_dict, right_plain, {"s"}, {"s"}) == ref);
  EXPECT_TRUE(HashJoinTables(left_plain, right_dict, {"s"}, {"s"}) == ref);
  // Multi-key with a string component.
  const Table ref2 = scalar::HashJoinTablesScalar(
      left_plain, right_plain, {"key", "s"}, {"key", "s"});
  EXPECT_TRUE(HashJoinTables(left_dict, right_dict, {"key", "s"},
                             {"key", "s"}) == ref2);
}

TEST(DictionaryOperatorTest, SharedDictionaryJoinTakesCodePath) {
  // Both sides built over ONE dictionary object — the int32-code
  // hash/compare path. The result must still match the plain twins.
  Rng rng(9004);
  auto dict = Column::MakeDictionary(EdgePool());
  const auto n = static_cast<std::int32_t>(dict->size());
  std::vector<std::int32_t> lcodes(500), rcodes(120);
  std::vector<std::int64_t> lid(500), rid(120);
  for (std::size_t r = 0; r < lcodes.size(); ++r) {
    lcodes[r] = static_cast<std::int32_t>(rng.UniformInt(0, n - 1));
    lid[r] = static_cast<std::int64_t>(r);
  }
  for (std::size_t r = 0; r < rcodes.size(); ++r) {
    rcodes[r] = static_cast<std::int32_t>(rng.UniformInt(0, n - 1));
    rid[r] = static_cast<std::int64_t>(r) * 7;
  }
  const Schema lschema({Field{"s", DataType::kString},
                        Field{"lid", DataType::kInt64}});
  const Schema rschema({Field{"s", DataType::kString},
                        Field{"rid", DataType::kInt64}});
  const Table left(lschema, {Column::FromDictionary(dict, lcodes),
                             Column::FromInts(std::move(lid))});
  const Table right(rschema, {Column::FromDictionary(dict, rcodes),
                              Column::FromInts(std::move(rid))});
  const Table left_plain(
      lschema, {left.column(0).DecodeDictionary(), left.column(1)});
  const Table right_plain(
      rschema, {right.column(0).DecodeDictionary(), right.column(1)});
  EXPECT_TRUE(HashJoinTables(left, right, {"s"}, {"s"}) ==
              scalar::HashJoinTablesScalar(left_plain, right_plain, {"s"},
                                           {"s"}));
  const std::vector<AggSpec> aggs = {CountAll("n"), MaxOf(Col("lid"), "m")};
  EXPECT_TRUE(AggregateTable(left, {"s"}, aggs) ==
              scalar::AggregateTableScalar(left_plain, {"s"}, aggs));
}

TEST(DictionaryExprTest, LiteralComparisonFastPathAllOpsBothSides) {
  Rng rng(9005);
  const Table plain = RandomStringTable(&rng, 300);
  const Table dict = EncodeStrings(plain);
  // Literals present in, absent from, below, and above the dictionary.
  const std::vector<std::string> lits = {"short", "exactly_15_ch_s",
                                         "not_in_dictionary", "", "~~~"};
  using Builder = ExprPtr (*)(ExprPtr, ExprPtr);
  const std::vector<Builder> ops = {&Eq, &Ne, &Lt, &Le, &Gt, &Ge};
  for (const std::string& lit : lits) {
    for (const Builder op : ops) {
      const auto col_lit = op(Col("s"), Lit(lit));
      EXPECT_TRUE(FilterTable(dict, *col_lit) ==
                  scalar::FilterTableScalar(plain, *col_lit))
          << "lit=" << lit;
      // Literal on the left flips the comparison.
      const auto lit_col = op(Lit(lit), Col("s"));
      EXPECT_TRUE(FilterTable(dict, *lit_col) ==
                  scalar::FilterTableScalar(plain, *lit_col))
          << "flipped lit=" << lit;
    }
  }
}

TEST(CompressedFormatTest, RandomizedStreamRoundTrip) {
  Rng rng(9006);
  for (const std::size_t rows :
       {std::size_t{0}, std::size_t{1}, std::size_t{350}}) {
    const Table original = RandomStringTable(&rng, rows);
    std::stringstream buffer;
    storage::WriteTableCompressed(original, buffer);
    const Table restored = storage::ReadTableCompressed(buffer);
    EXPECT_TRUE(restored == original);
    // String columns come back dictionary-encoded — the compressed
    // residency representation survives the spill round-trip.
    for (std::size_t i = 0; i < restored.num_columns(); ++i) {
      if (restored.column(i).type() == DataType::kString && rows > 0) {
        EXPECT_TRUE(restored.column(i).dictionary_encoded());
      }
    }
  }
}

TEST(CompressedFormatTest, IntExtremesSurviveZigZagFor) {
  // Frame-of-reference + zig-zag varints with the worst-case deltas:
  // int64 min/max in one column forces the uint64-wraparound-safe path.
  std::vector<std::int64_t> v = {std::numeric_limits<std::int64_t>::min(),
                                 std::numeric_limits<std::int64_t>::max(),
                                 0,
                                 -1,
                                 1,
                                 std::numeric_limits<std::int64_t>::min()};
  std::vector<double> d = {std::numeric_limits<double>::quiet_NaN(), -0.0,
                           0.0, 1e308, -1e-308, 2.5};
  const Table t(Schema({Field{"v", DataType::kInt64},
                        Field{"d", DataType::kFloat64}}),
                {Column::FromInts(std::move(v)),
                 Column::FromDoubles(std::move(d))});
  std::stringstream buffer;
  storage::WriteTableCompressed(t, buffer);
  EXPECT_TRUE(storage::ReadTableCompressed(buffer) == t);
}

TEST(CompressedFormatTest, FileRoundTripAndBadMagic) {
  Rng rng(9007);
  const Table original = RandomStringTable(&rng, 64);
  const auto dir = std::filesystem::temp_directory_path() / "sc_scc1_test";
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "t.scc").string();
  storage::WriteTableFileCompressed(original, path);
  EXPECT_TRUE(storage::ReadTableFileCompressed(path) == original);
  // An SCT1 (uncompressed) file is not an SCC1 file.
  storage::WriteTableFile(original, path);
  EXPECT_THROW(storage::ReadTableFileCompressed(path), std::runtime_error);
  std::filesystem::remove_all(dir);
}

TEST(CompressedFormatTest, CompressedSmallerThanPlainOnRepetitiveStrings) {
  std::vector<std::string> s(2000);
  std::vector<std::int64_t> v(2000);
  for (std::size_t r = 0; r < s.size(); ++r) {
    s[r] = "warehouse_category_" + std::to_string(r % 16);
    v[r] = 1'000'000 + static_cast<std::int64_t>(r % 3);  // tiny FOR deltas
  }
  const Table t(Schema({Field{"s", DataType::kString},
                        Field{"v", DataType::kInt64}}),
                {Column::FromStrings(std::move(s)),
                 Column::FromInts(std::move(v))});
  std::stringstream compressed, plain;
  storage::WriteTableCompressed(t, compressed);
  storage::WriteTable(t, plain);
  EXPECT_LT(compressed.str().size(), plain.str().size() / 3);
}

}  // namespace
}  // namespace sc::engine
