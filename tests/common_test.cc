#include <gtest/gtest.h>

#include <set>

#include "common/bytes.h"
#include "common/rng.h"
#include "common/str_util.h"
#include "common/table_printer.h"

namespace sc {
namespace {

TEST(BytesTest, FormatPlainBytes) {
  EXPECT_EQ(FormatBytes(0), "0B");
  EXPECT_EQ(FormatBytes(999), "999B");
}

TEST(BytesTest, FormatDecimalUnits) {
  EXPECT_EQ(FormatBytes(1600 * kMB), "1.60GB");
  EXPECT_EQ(FormatBytes(1 * kKB), "1.00KB");
  EXPECT_EQ(FormatBytes(25 * kMB), "25.00MB");
}

TEST(BytesTest, FormatNegative) {
  EXPECT_EQ(FormatBytes(-2 * kGB), "-2.00GB");
}

TEST(BytesTest, ParseRoundTrip) {
  EXPECT_EQ(ParseBytes("123"), 123);
  EXPECT_EQ(ParseBytes("1.6GB"), 1600 * kMB);
  EXPECT_EQ(ParseBytes("512MB"), 512 * kMB);
  EXPECT_EQ(ParseBytes("4KiB"), 4 * kKiB);
  EXPECT_EQ(ParseBytes("2g"), 2 * kGB);
}

TEST(BytesTest, ParseRejectsGarbage) {
  EXPECT_EQ(ParseBytes(""), -1);
  EXPECT_EQ(ParseBytes("abc"), -1);
  EXPECT_EQ(ParseBytes("12XB"), -1);
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000), b.UniformInt(0, 1000));
  }
}

TEST(RngTest, UniformIntRespectsBounds) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(1);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
}

TEST(RngTest, ZipfBoundsAndSkew) {
  Rng rng(3);
  std::int64_t ones = 0;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.Zipf(100, 1.1);
    ASSERT_GE(v, 1);
    ASSERT_LE(v, 100);
    if (v == 1) ++ones;
  }
  // Skewed: rank 1 should appear far more often than uniform (20/2000).
  EXPECT_GT(ones, 100);
}

TEST(RngTest, WeightedIndexHonoursZeroWeights) {
  Rng rng(5);
  const std::vector<double> weights = {0.0, 1.0, 0.0};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.WeightedIndex(weights), 1u);
  }
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(11);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  auto copy = v;
  rng.Shuffle(&v);
  std::multiset<int> a(v.begin(), v.end());
  std::multiset<int> b(copy.begin(), copy.end());
  EXPECT_EQ(a, b);
}

TEST(StrUtilTest, SplitKeepsEmptyFields) {
  const auto parts = Split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StrUtilTest, JoinRoundTrip) {
  EXPECT_EQ(Join({"x", "y", "z"}, ", "), "x, y, z");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StrUtilTest, TrimWhitespace) {
  EXPECT_EQ(Trim("  hello \t\n"), "hello");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StrUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("store_sales", "store"));
  EXPECT_FALSE(StartsWith("ss", "store"));
  EXPECT_TRUE(EndsWith("table.sct", ".sct"));
  EXPECT_FALSE(EndsWith("x", ".sct"));
}

TEST(StrUtilTest, StrFormatBasics) {
  EXPECT_EQ(StrFormat("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(StrFormat("%.2f", 1.5), "1.50");
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter printer({"name", "value"});
  printer.AddRow({"a", "1"});
  printer.AddRow({"long-name", "22"});
  const std::string out = printer.ToString();
  EXPECT_NE(out.find("| name      | value |"), std::string::npos);
  EXPECT_NE(out.find("| long-name | 22    |"), std::string::npos);
}

TEST(TablePrinterTest, PadsShortRows) {
  TablePrinter printer({"a", "b", "c"});
  printer.AddRow({"only"});
  const std::string out = printer.ToString();
  EXPECT_NE(out.find("only"), std::string::npos);
}

TEST(TablePrinterTest, SeparatorAddsRule) {
  TablePrinter printer({"h"});
  printer.AddRow({"x"});
  printer.AddSeparator();
  printer.AddRow({"y"});
  const std::string out = printer.ToString();
  // 5 rules: top, after header, mid separator, bottom... count '+--' lines.
  int rules = 0;
  for (std::size_t pos = 0; (pos = out.find("+-", pos)) != std::string::npos;
       ++pos) {
    ++rules;
  }
  EXPECT_GE(rules, 4);
}

}  // namespace
}  // namespace sc
