#include "obs/trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <future>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "opt/optimizer.h"
#include "runtime/controller.h"
#include "service/service.h"
#include "workload/datagen.h"
#include "workload/workloads.h"

namespace sc::obs {
namespace {

using service::JobResult;
using service::RefreshJobSpec;
using service::RefreshService;
using service::ServiceOptions;

storage::DiskProfile FastDisk() {
  storage::DiskProfile profile;
  profile.throttle = false;
  return profile;
}

std::string FreshDir(const std::string& tag) {
  const std::string dir = testing::TempDir() + "/sc_obs_" + tag;
  std::filesystem::remove_all(dir);
  return dir;
}

// ---------------------------------------------------------------------------
// Recorder primitives
// ---------------------------------------------------------------------------

TEST(TraceRecorderTest, RecordsSpansAndInstants) {
  TraceRecorder recorder;
  recorder.Complete("job", "execute", 1.0, 0.5, "\"job\":7");
  recorder.Instant("budget", "grant", "\"bytes\":64");
  const auto events = recorder.Events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(recorder.event_count(), 2u);
  // Events() sorts by start time; the span was stamped at t=1.0 while
  // the instant used the live monotonic clock (far larger).
  EXPECT_EQ(events[0].category, "job");
  EXPECT_EQ(events[0].name, "execute");
  EXPECT_DOUBLE_EQ(events[0].start_seconds, 1.0);
  EXPECT_DOUBLE_EQ(events[0].dur_seconds, 0.5);
  EXPECT_FALSE(events[0].instant);
  EXPECT_EQ(events[0].args_json, "\"job\":7");
  EXPECT_EQ(events[1].category, "budget");
  EXPECT_TRUE(events[1].instant);
}

TEST(TraceRecorderTest, DisabledRecorderRecordsNothing) {
  TraceRecorderOptions options;
  options.enabled = false;
  TraceRecorder recorder(options);
  EXPECT_FALSE(recorder.enabled());
  for (int i = 0; i < 100; ++i) {
    recorder.Complete("node", "n", 0.0, 1.0);
    recorder.Instant("budget", "grant");
  }
  EXPECT_EQ(recorder.event_count(), 0u);
  EXPECT_TRUE(recorder.Events().empty());
  EXPECT_EQ(recorder.dropped(), 0);

  // Flipping the flag live starts recording without reconstruction.
  recorder.set_enabled(true);
  recorder.Instant("budget", "grant");
  EXPECT_EQ(recorder.event_count(), 1u);
}

TEST(TraceRecorderTest, RingWrapDropsOldestAndCounts) {
  TraceRecorderOptions options;
  // Capacities are clamped to at least 16 per thread.
  options.per_thread_capacity = 16;
  TraceRecorder recorder(options);
  for (int i = 0; i < 40; ++i) {
    recorder.Complete("node", "n" + std::to_string(i),
                      static_cast<double>(i), 0.1);
  }
  EXPECT_EQ(recorder.event_count(), 16u);
  EXPECT_EQ(recorder.dropped(), 24);
  // The survivors are the newest sixteen.
  const auto events = recorder.Events();
  ASSERT_EQ(events.size(), 16u);
  EXPECT_EQ(events.front().name, "n24");
  EXPECT_EQ(events.back().name, "n39");
}

TEST(TraceRecorderTest, EventsCarryThreadTrackNames) {
  TraceRecorder recorder;
  std::thread lane([&recorder] {
    SetThreadTrack("lane-7");
    recorder.Complete("node", "on-lane", 0.0, 1.0);
  });
  lane.join();
  std::thread unnamed([&recorder] {
    recorder.Complete("node", "anonymous", 2.0, 1.0);
  });
  unnamed.join();
  const auto events = recorder.Events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].track, "lane-7");
  // Threads that never set a track still get a stable fallback row.
  EXPECT_EQ(events[1].track.rfind("thread-", 0), 0u) << events[1].track;
}

TEST(TraceRecorderTest, ConcurrentEmittersLoseNothing) {
  TraceRecorder recorder;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&recorder, t] {
      SetThreadTrack("emitter-" + std::to_string(t));
      for (int i = 0; i < kPerThread; ++i) {
        recorder.Complete("node", "n", static_cast<double>(i), 0.001);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(recorder.event_count(),
            static_cast<std::size_t>(kThreads * kPerThread));
  EXPECT_EQ(recorder.dropped(), 0);
}

// ---------------------------------------------------------------------------
// Chrome trace round-trip
// ---------------------------------------------------------------------------

TEST(ChromeTraceTest, WriteLoadRoundTrip) {
  TraceRecorder recorder;
  recorder.Complete("job", "execute", 10.0, 2.5, "\"job\":3");
  recorder.Complete("publish", "v1", 11.0, 0.25,
                    "\"job\":3,\"flagged\":true");
  recorder.Instant("stage", "dispatch-stage-1", "", 10.5);
  std::ostringstream out;
  WriteChromeTrace(recorder, out);

  std::istringstream in(out.str());
  std::vector<TraceEvent> loaded;
  std::string error;
  ASSERT_TRUE(LoadChromeTrace(in, &loaded, &error)) << error;
  ASSERT_EQ(loaded.size(), 3u);
  std::sort(loaded.begin(), loaded.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.start_seconds < b.start_seconds;
            });
  // Timestamps are rebased to the earliest event, so compare offsets.
  EXPECT_EQ(loaded[0].category, "job");
  EXPECT_EQ(loaded[0].name, "execute");
  EXPECT_NEAR(loaded[0].start_seconds, 0.0, 1e-6);
  EXPECT_NEAR(loaded[0].dur_seconds, 2.5, 1e-6);
  EXPECT_EQ(loaded[0].args_json, "\"job\":3");
  EXPECT_EQ(loaded[1].category, "stage");
  EXPECT_TRUE(loaded[1].instant);
  EXPECT_NEAR(loaded[1].start_seconds, 0.5, 1e-6);
  EXPECT_EQ(loaded[2].category, "publish");
  EXPECT_NEAR(loaded[2].start_seconds, 1.0, 1e-6);
  EXPECT_EQ(loaded[2].args_json, "\"job\":3,\"flagged\":true");
  // All three were emitted from this (same) thread: one shared track.
  EXPECT_EQ(loaded[0].track, loaded[2].track);
}

TEST(ChromeTraceTest, RejectsMalformedInput) {
  std::istringstream in("this is not json");
  std::vector<TraceEvent> events;
  std::string error;
  EXPECT_FALSE(LoadChromeTrace(in, &events, &error));
  EXPECT_FALSE(error.empty());
}

// ---------------------------------------------------------------------------
// Controller span ordering (1 lane vs 4 lanes)
// ---------------------------------------------------------------------------

struct TracedRun {
  runtime::RunReport report;
  std::vector<TraceEvent> events;
};

TracedRun RunControllerTraced(const std::string& tag, int lanes) {
  storage::ThrottledDisk disk(FreshDir(tag), FastDisk());
  workload::MvWorkload wl = workload::BuildIo1();
  {
    runtime::Controller profiler(&disk, runtime::ControllerOptions{});
    workload::DataGenOptions data_options;
    data_options.scale = 0.03;
    profiler.LoadBaseTables(workload::GenerateTpcdsData(data_options));
    EXPECT_TRUE(profiler.ProfileAndAnnotate(&wl).ok);
  }
  const std::int64_t budget = 16LL * 1024 * 1024;
  const auto optimized = opt::Optimizer{}.Optimize(wl.graph, budget);

  TraceRecorder recorder;
  runtime::ControllerOptions options;
  options.budget = budget;
  options.max_parallel_nodes = lanes;
  options.force_stage_runtime = true;
  // Force every node onto a LanePool lane so lane tracks appear even
  // for the cheap profiled nodes the dispatcher would inline.
  options.inline_node_cost_seconds = 0.0;
  options.trace = &recorder;
  options.trace_job_id = 42;
  runtime::Controller controller(&disk, options);
  TracedRun run;
  run.report = controller.Run(wl, optimized.plan);
  run.events = recorder.Events();
  return run;
}

std::vector<std::string> NamesInCategory(
    const std::vector<TraceEvent>& events, const std::string& category) {
  std::vector<std::string> names;
  for (const auto& event : events) {
    if (event.category == category && !event.instant) {
      names.push_back(event.name);
    }
  }
  return names;
}

TEST(ControllerTraceTest, SpanOrderingMatchesPublishOrderAcrossLanes) {
  const TracedRun one = RunControllerTraced("lanes1", 1);
  const TracedRun four = RunControllerTraced("lanes4", 4);
  ASSERT_TRUE(one.report.ok) << one.report.error;
  ASSERT_TRUE(four.report.ok) << four.report.error;
  EXPECT_GT(four.report.parallel_lanes, 1);

  // Every executed node emitted exactly one node span and one publish
  // span, regardless of lane count.
  const std::size_t num_nodes = one.report.nodes.size();
  ASSERT_GT(num_nodes, 0u);
  EXPECT_EQ(NamesInCategory(one.events, "node").size(), num_nodes);
  EXPECT_EQ(NamesInCategory(four.events, "node").size(), num_nodes);

  // The publish replay is strictly in plan order on both runtimes (the
  // relaxed-publish contract): publish spans sorted by start time must
  // match the report's node order — which is itself publish order.
  auto publish_order = [](const TracedRun& run) {
    return NamesInCategory(run.events, "publish");
  };
  std::vector<std::string> expected;
  for (const auto& node : one.report.nodes) expected.push_back(node.name);
  EXPECT_EQ(publish_order(one), expected);
  std::vector<std::string> expected_four;
  for (const auto& node : four.report.nodes) {
    expected_four.push_back(node.name);
  }
  EXPECT_EQ(publish_order(four), expected_four);
  // Same plan, same publish order.
  EXPECT_EQ(expected, expected_four);

  // Node spans nest inside the run: every span carries the job id arg
  // and a track; the 4-lane run actually used lane tracks.
  std::set<std::string> four_tracks;
  for (const auto& event : four.events) {
    if (event.category == "node" && !event.instant) {
      EXPECT_NE(event.args_json.find("\"job\":42"), std::string::npos);
      four_tracks.insert(event.track);
    }
  }
  const bool any_lane_track =
      std::any_of(four_tracks.begin(), four_tracks.end(),
                  [](const std::string& track) {
                    return track.rfind("lane-", 0) == 0;
                  });
  EXPECT_TRUE(any_lane_track)
      << "expected lane-* tracks among " << four_tracks.size();

  // Parallel dispatch emits stage-advance instants.
  bool any_stage_instant = false;
  for (const auto& event : four.events) {
    if (event.category == "stage" && event.instant) {
      any_stage_instant = true;
    }
  }
  EXPECT_TRUE(any_stage_instant);
}

// ---------------------------------------------------------------------------
// End-to-end service trace (the ISSUE acceptance scenario)
// ---------------------------------------------------------------------------

TEST(ServiceTraceTest, FourTenantFourLaneRunReconstructs) {
  storage::ThrottledDisk disk(FreshDir("service"), FastDisk());
  auto wl = std::make_shared<workload::MvWorkload>(workload::BuildIo1());
  {
    runtime::Controller profiler(&disk, runtime::ControllerOptions{});
    workload::DataGenOptions data_options;
    data_options.scale = 0.03;
    profiler.LoadBaseTables(workload::GenerateTpcdsData(data_options));
    ASSERT_TRUE(profiler.ProfileAndAnnotate(wl.get()).ok);
  }

  TraceRecorder recorder;
  ServiceOptions options;
  options.num_workers = 8;
  options.max_intra_job_lanes = 4;
  options.global_budget = 32LL * 1024 * 1024;
  // Force lane dispatch so the trace shows lane occupancy.
  options.inline_node_cost_seconds = 0.0;
  options.trace = &recorder;
  RefreshService service(&disk, options);

  constexpr int kJobs = 8;
  std::vector<std::future<JobResult>> futures;
  for (int i = 0; i < kJobs; ++i) {
    RefreshJobSpec spec;
    spec.workload = wl;
    spec.tenant = "tenant" + std::to_string(i % 4);
    futures.push_back(service.Submit(std::move(spec)));
  }
  for (auto& future : futures) {
    const JobResult result = future.get();
    ASSERT_TRUE(result.report.ok) << result.report.error;
  }
  service.Shutdown();

  const auto events = recorder.Events();
  const TraceAnalysis analysis = AnalyzeTrace(events);

  // Every phase a service run crosses left at least one span.
  for (const char* category :
       {"job", "budget", "plan", "node", "publish"}) {
    EXPECT_GT(analysis.category_counts.count(category)
                  ? analysis.category_counts.at(category)
                  : 0,
              0)
        << category;
  }

  // Per-job breakdown: all jobs reconstructed, each with execution time
  // and all four tenants represented.
  EXPECT_EQ(analysis.jobs.size(), static_cast<std::size_t>(kJobs));
  std::set<std::string> tenants;
  for (const auto& [job_id, breakdown] : analysis.jobs) {
    EXPECT_GT(job_id, 0u);
    EXPECT_GT(breakdown.executing_seconds, 0.0) << "job " << job_id;
    EXPECT_GE(breakdown.queued_seconds, 0.0);
    EXPECT_GE(breakdown.budget_wait_seconds, 0.0);
    tenants.insert(breakdown.tenant);
  }
  EXPECT_EQ(tenants.size(), 4u);

  // Lane occupancy: worker tracks (and lane tracks, since inlining is
  // off) accumulated busy time inside the trace wall span.
  EXPECT_GT(analysis.wall_seconds, 0.0);
  bool any_worker_track = false;
  for (const auto& [track, busy] : analysis.track_busy_seconds) {
    EXPECT_GE(busy, 0.0);
    // Busy time sums span durations, and a worker's job/node/publish
    // spans nest — so utilization can exceed 1; it just has to be a
    // sane finite number.
    EXPECT_LT(analysis.TrackUtilization(track), 100.0) << track;
    if (track.rfind("worker-", 0) == 0) {
      any_worker_track = true;
      EXPECT_GT(busy, 0.0) << track;
    }
  }
  EXPECT_TRUE(any_worker_track);

  // The registry mirrored the run: jobs counted per tenant, component
  // gauges live, and the whole thing renders as Prometheus text.
  const auto snapshot = service.registry().Snapshot();
  double jobs_ok = 0.0;
  for (const auto& [key, value] : snapshot) {
    if (key.rfind("sc_jobs_total", 0) == 0 &&
        key.find("status=\"ok\"") != std::string::npos) {
      jobs_ok += value;
    }
  }
  EXPECT_DOUBLE_EQ(jobs_ok, static_cast<double>(kJobs));
  EXPECT_GT(snapshot.at("sc_lane_pool_tasks_completed"), 0.0);
  const std::string text = service.PrometheusText();
  EXPECT_NE(text.find("# TYPE sc_jobs_total counter"), std::string::npos);
  EXPECT_NE(text.find("sc_job_exec_seconds_bucket"), std::string::npos);
}

TEST(ServiceTraceTest, TracePathWritesLoadableFileAtShutdown) {
  storage::ThrottledDisk disk(FreshDir("tracepath"), FastDisk());
  auto wl = std::make_shared<workload::MvWorkload>(workload::BuildIo1());
  {
    runtime::Controller profiler(&disk, runtime::ControllerOptions{});
    workload::DataGenOptions data_options;
    data_options.scale = 0.03;
    profiler.LoadBaseTables(workload::GenerateTpcdsData(data_options));
    ASSERT_TRUE(profiler.ProfileAndAnnotate(wl.get()).ok);
  }
  const std::string trace_path =
      testing::TempDir() + "/sc_obs_service_trace.json";
  std::filesystem::remove(trace_path);
  {
    ServiceOptions options;
    options.num_workers = 2;
    options.global_budget = 16LL * 1024 * 1024;
    options.trace_path = trace_path;
    RefreshService service(&disk, options);
    RefreshJobSpec spec;
    spec.workload = wl;
    spec.tenant = "solo";
    ASSERT_TRUE(service.Submit(spec).get().report.ok);
    service.Shutdown();
  }
  std::vector<TraceEvent> events;
  std::string error;
  ASSERT_TRUE(LoadChromeTraceFile(trace_path, &events, &error)) << error;
  const TraceAnalysis analysis = AnalyzeTrace(events);
  EXPECT_EQ(analysis.jobs.size(), 1u);
  EXPECT_GT(analysis.jobs.begin()->second.executing_seconds, 0.0);
}

}  // namespace
}  // namespace sc::obs
