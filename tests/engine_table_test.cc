#include <gtest/gtest.h>

#include "engine/table.h"

namespace sc::engine {
namespace {

Schema TwoColSchema() {
  return Schema({Field{"id", DataType::kInt64},
                 Field{"name", DataType::kString}});
}

TEST(SchemaTest, IndexOfAndContains) {
  const Schema s = TwoColSchema();
  EXPECT_EQ(s.IndexOf("id"), 0);
  EXPECT_EQ(s.IndexOf("name"), 1);
  EXPECT_EQ(s.IndexOf("missing"), -1);
  EXPECT_TRUE(s.Contains("id"));
  EXPECT_EQ(s.num_fields(), 2u);
}

TEST(SchemaTest, DuplicateFieldThrows) {
  EXPECT_THROW(Schema({Field{"a", DataType::kInt64},
                       Field{"a", DataType::kString}}),
               std::invalid_argument);
}

TEST(TableTest, ConstructionValidatesShape) {
  std::vector<Column> cols;
  cols.push_back(Column::FromInts({1, 2}));
  cols.push_back(Column::FromStrings({"x", "y"}));
  const Table t(TwoColSchema(), std::move(cols));
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.num_columns(), 2u);
}

TEST(TableTest, TypeMismatchThrows) {
  std::vector<Column> cols;
  cols.push_back(Column::FromStrings({"x"}));
  cols.push_back(Column::FromStrings({"y"}));
  EXPECT_THROW(Table(TwoColSchema(), std::move(cols)),
               std::invalid_argument);
}

TEST(TableTest, RaggedColumnsThrow) {
  std::vector<Column> cols;
  cols.push_back(Column::FromInts({1, 2}));
  cols.push_back(Column::FromStrings({"only-one"}));
  EXPECT_THROW(Table(TwoColSchema(), std::move(cols)), std::logic_error);
}

TEST(TableTest, EmptyFactory) {
  const Table t = Table::Empty(TwoColSchema());
  EXPECT_EQ(t.num_rows(), 0u);
  EXPECT_EQ(t.num_columns(), 2u);
}

TEST(TableTest, ColumnByName) {
  std::vector<Column> cols;
  cols.push_back(Column::FromInts({5}));
  cols.push_back(Column::FromStrings({"z"}));
  const Table t(TwoColSchema(), std::move(cols));
  EXPECT_EQ(t.column("id").GetInt(0), 5);
  EXPECT_THROW(t.column("nope"), std::out_of_range);
}

TEST(TableTest, AppendRowFrom) {
  std::vector<Column> cols;
  cols.push_back(Column::FromInts({1, 2}));
  cols.push_back(Column::FromStrings({"a", "b"}));
  const Table src(TwoColSchema(), std::move(cols));
  Table dst = Table::Empty(TwoColSchema());
  dst.AppendRowFrom(src, 1);
  EXPECT_EQ(dst.num_rows(), 1u);
  EXPECT_EQ(dst.column("name").GetString(0), "b");
}

TEST(TableTest, ByteSizePositive) {
  std::vector<Column> cols;
  cols.push_back(Column::FromInts({1, 2, 3}));
  cols.push_back(Column::FromStrings({"a", "b", "c"}));
  const Table t(TwoColSchema(), std::move(cols));
  EXPECT_GT(t.ByteSize(), 24);
}

TEST(TableTest, ToStringTruncates) {
  std::vector<std::int64_t> many(50, 7);
  std::vector<Column> cols;
  cols.push_back(Column::FromInts(std::move(many)));
  const Table t(Schema({Field{"x", DataType::kInt64}}), std::move(cols));
  const std::string s = t.ToString(/*max_rows=*/5);
  EXPECT_NE(s.find("45 more rows"), std::string::npos);
}

TEST(TableTest, EqualityComparesData) {
  auto make = [](std::int64_t v) {
    std::vector<Column> cols;
    cols.push_back(Column::FromInts({v}));
    return Table(Schema({Field{"x", DataType::kInt64}}), std::move(cols));
  };
  EXPECT_TRUE(make(1) == make(1));
  EXPECT_FALSE(make(1) == make(2));
}

}  // namespace
}  // namespace sc::engine
