#include <gtest/gtest.h>

#include "engine/expr.h"

namespace sc::engine {
namespace {

Table TestTable() {
  std::vector<Column> cols;
  cols.push_back(Column::FromInts({1, 2, 3, 4}));
  cols.push_back(Column::FromDoubles({1.5, 2.5, 3.5, 4.5}));
  cols.push_back(Column::FromStrings({"a", "b", "a", "c"}));
  return Table(Schema({Field{"i", DataType::kInt64},
                       Field{"d", DataType::kFloat64},
                       Field{"s", DataType::kString}}),
               std::move(cols));
}

TEST(ExprTest, ColumnReference) {
  const Table t = TestTable();
  const Column c = EvalExpr(*Col("i"), t);
  EXPECT_EQ(c.type(), DataType::kInt64);
  EXPECT_EQ(c.GetInt(2), 3);
}

TEST(ExprTest, UnknownColumnThrows) {
  const Table t = TestTable();
  EXPECT_THROW(EvalExpr(*Col("missing"), t), std::out_of_range);
}

TEST(ExprTest, LiteralBroadcast) {
  const Table t = TestTable();
  const Column c = EvalExpr(*Lit(std::int64_t{7}), t);
  EXPECT_EQ(c.size(), 4u);
  EXPECT_EQ(c.GetInt(3), 7);
}

TEST(ExprTest, IntegerArithmetic) {
  const Table t = TestTable();
  const Column c = EvalExpr(*Add(Col("i"), Lit(std::int64_t{10})), t);
  EXPECT_EQ(c.type(), DataType::kInt64);
  EXPECT_EQ(c.GetInt(0), 11);
  const Column m = EvalExpr(*Mod(Col("i"), Lit(std::int64_t{2})), t);
  EXPECT_EQ(m.GetInt(1), 0);
  EXPECT_EQ(m.GetInt(2), 1);
}

TEST(ExprTest, DivisionAlwaysDouble) {
  const Table t = TestTable();
  const Column c = EvalExpr(*Div(Col("i"), Lit(std::int64_t{2})), t);
  EXPECT_EQ(c.type(), DataType::kFloat64);
  EXPECT_DOUBLE_EQ(c.GetDouble(0), 0.5);
}

TEST(ExprTest, DivisionByZeroYieldsZero) {
  const Table t = TestTable();
  const Column c = EvalExpr(*Div(Col("i"), Lit(std::int64_t{0})), t);
  EXPECT_DOUBLE_EQ(c.GetDouble(0), 0.0);
}

TEST(ExprTest, MixedTypePromotion) {
  const Table t = TestTable();
  const Column c = EvalExpr(*Mul(Col("i"), Col("d")), t);
  EXPECT_EQ(c.type(), DataType::kFloat64);
  EXPECT_DOUBLE_EQ(c.GetDouble(1), 5.0);
}

TEST(ExprTest, NumericComparisons) {
  const Table t = TestTable();
  const Column c = EvalExpr(*Ge(Col("i"), Lit(std::int64_t{3})), t);
  EXPECT_EQ(c.type(), DataType::kInt64);
  EXPECT_EQ(c.GetInt(0), 0);
  EXPECT_EQ(c.GetInt(2), 1);
  EXPECT_EQ(c.GetInt(3), 1);
}

TEST(ExprTest, StringEquality) {
  const Table t = TestTable();
  const Column c = EvalExpr(*Eq(Col("s"), Lit(std::string("a"))), t);
  EXPECT_EQ(c.GetInt(0), 1);
  EXPECT_EQ(c.GetInt(1), 0);
  EXPECT_EQ(c.GetInt(2), 1);
}

TEST(ExprTest, StringNumericComparisonThrows) {
  const Table t = TestTable();
  EXPECT_THROW(EvalExpr(*Eq(Col("s"), Lit(std::int64_t{1})), t),
               std::invalid_argument);
}

TEST(ExprTest, ArithmeticOnStringsThrows) {
  const Table t = TestTable();
  EXPECT_THROW(EvalExpr(*Add(Col("s"), Col("s")), t),
               std::invalid_argument);
}

TEST(ExprTest, LogicalOperators) {
  const Table t = TestTable();
  const auto expr = And(Gt(Col("i"), Lit(std::int64_t{1})),
                        Lt(Col("d"), Lit(4.0)));
  const Column c = EvalExpr(*expr, t);
  EXPECT_EQ(c.GetInt(0), 0);  // i=1 fails
  EXPECT_EQ(c.GetInt(1), 1);
  EXPECT_EQ(c.GetInt(2), 1);
  EXPECT_EQ(c.GetInt(3), 0);  // d=4.5 fails

  const Column o =
      EvalExpr(*Or(Eq(Col("i"), Lit(std::int64_t{1})),
                   Eq(Col("i"), Lit(std::int64_t{4}))),
               t);
  EXPECT_EQ(o.GetInt(0), 1);
  EXPECT_EQ(o.GetInt(1), 0);
  EXPECT_EQ(o.GetInt(3), 1);
}

TEST(ExprTest, NotAndNeg) {
  const Table t = TestTable();
  const Column n = EvalExpr(*Not(Gt(Col("i"), Lit(std::int64_t{2}))), t);
  EXPECT_EQ(n.GetInt(0), 1);
  EXPECT_EQ(n.GetInt(3), 0);
  const Column m = EvalExpr(*Neg(Col("i")), t);
  EXPECT_EQ(m.GetInt(0), -1);
  const Column md = EvalExpr(*Neg(Col("d")), t);
  EXPECT_DOUBLE_EQ(md.GetDouble(0), -1.5);
}

TEST(ExprTest, ResultTypeStaticChecks) {
  const Schema s = TestTable().schema();
  EXPECT_EQ(ResultType(*Col("i"), s), DataType::kInt64);
  EXPECT_EQ(ResultType(*Div(Col("i"), Col("i")), s), DataType::kFloat64);
  EXPECT_EQ(ResultType(*Eq(Col("s"), Lit(std::string("a"))), s),
            DataType::kInt64);
  EXPECT_EQ(ResultType(*Add(Col("i"), Col("d")), s), DataType::kFloat64);
  EXPECT_THROW(ResultType(*Col("zzz"), s), std::invalid_argument);
  EXPECT_THROW(ResultType(*Add(Col("s"), Col("i")), s),
               std::invalid_argument);
}

TEST(ExprTest, ToStringReadable) {
  const auto e = And(Ge(Col("x"), Lit(std::int64_t{5})),
                     Lt(Col("y"), Lit(2.5)));
  EXPECT_EQ(e->ToString(), "((x >= 5) AND (y < 2.5))");
}

}  // namespace
}  // namespace sc::engine
