#include "common/crc32c.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <string>

namespace sc::common {
namespace {

/// Definitional bit-at-a-time CRC-32C: the reference every accelerated
/// path (slicing-by-8, crc32-instruction chains, the pclmul hybrid) must
/// agree with. Deliberately shares no code or tables with the library.
std::uint32_t ReferenceCrc32c(const std::string& data) {
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const char ch : data) {
    crc ^= static_cast<unsigned char>(ch);
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1) ? (crc >> 1) ^ 0x82F63B78u : crc >> 1;
    }
  }
  return ~crc;
}

TEST(Crc32cTest, KnownAnswerVector) {
  // The standard CRC-32C check value (iSCSI, RFC 3720 appendix).
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
  EXPECT_EQ(Crc32c("", 0), 0u);
}

TEST(Crc32cTest, MatchesBitwiseReferenceAcrossSizes) {
  // Sizes straddle every internal regime: the byte/word tail, the
  // three-chain block (6 KB), and the hybrid super-block (24 KB), plus
  // off-by-one edges and unaligned tails around each.
  std::mt19937_64 rng(2024);
  for (const std::size_t size :
       {std::size_t{0}, std::size_t{1}, std::size_t{7}, std::size_t{8},
        std::size_t{9}, std::size_t{255}, std::size_t{2047},
        std::size_t{6143}, std::size_t{6144}, std::size_t{6145},
        std::size_t{24575}, std::size_t{24576}, std::size_t{24577},
        std::size_t{100000}}) {
    std::string data(size, '\0');
    for (char& ch : data) ch = static_cast<char>(rng());
    EXPECT_EQ(Crc32c(data.data(), data.size()), ReferenceCrc32c(data))
        << "size " << size;
  }
}

TEST(Crc32cTest, ChainingMatchesWholeBuffer) {
  std::mt19937_64 rng(7);
  std::string data(70000, '\0');
  for (char& ch : data) ch = static_cast<char>(rng());
  const std::uint32_t whole = Crc32c(data.data(), data.size());
  // Split at points that leave every path a differently-shaped tail.
  for (const std::size_t split :
       {std::size_t{1}, std::size_t{13}, std::size_t{6144},
        std::size_t{24576}, std::size_t{50001}}) {
    const std::uint32_t chained =
        Crc32c(data.data() + split, data.size() - split,
               Crc32c(data.data(), split));
    EXPECT_EQ(chained, whole) << "split " << split;
  }
}

TEST(Crc32cTest, RandomizedChunkingEquivalence) {
  std::mt19937_64 rng(99);
  std::string data(150000, '\0');
  for (char& ch : data) ch = static_cast<char>(rng());
  const std::uint32_t whole = Crc32c(data.data(), data.size());
  for (int trial = 0; trial < 8; ++trial) {
    std::uint32_t crc = 0;
    std::size_t pos = 0;
    while (pos < data.size()) {
      const std::size_t step =
          std::min<std::size_t>(data.size() - pos, rng() % 40000 + 1);
      crc = Crc32c(data.data() + pos, step, crc);
      pos += step;
    }
    EXPECT_EQ(crc, whole) << "trial " << trial;
  }
}

}  // namespace
}  // namespace sc::common
