#include <gtest/gtest.h>

#include <map>

#include "opt/alternating.h"
#include "opt/memory_usage.h"
#include "opt/optimizer.h"
#include "test_util.h"

namespace sc::opt {
namespace {

TEST(AlternatingTest, Figure7ReachesPaperOptimum) {
  // Starting from the plain topological order, alternating optimization
  // must discover an order in which both 100GB nodes are flagged (score
  // 210, paper §IV).
  const graph::Graph g = test::Figure7Graph();
  const AlternatingResult result = AlternatingOptimize(g, /*budget=*/100);
  EXPECT_DOUBLE_EQ(result.total_score, 210.0);
  EXPECT_TRUE(IsFeasible(g, result.plan.order, result.plan.flags, 100));
  EXPECT_TRUE(result.plan.flags[0]);  // v1
  EXPECT_TRUE(result.plan.flags[2]);  // v3
}

TEST(AlternatingTest, PlanIsAlwaysValid) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const graph::Graph g = test::RandomDag(25, seed);
    for (const std::int64_t budget : {0LL, 60LL, 200LL}) {
      const AlternatingResult result = AlternatingOptimize(g, budget);
      std::string error;
      EXPECT_TRUE(ValidatePlan(g, result.plan, budget, &error))
          << "seed " << seed << " budget " << budget << ": " << error;
    }
  }
}

TEST(AlternatingTest, ScoreMonotoneAcrossIterations) {
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    const graph::Graph g = test::RandomDag(30, seed);
    const AlternatingResult result = AlternatingOptimize(g, 120);
    for (std::size_t i = 1; i < result.trace.size(); ++i) {
      EXPECT_GT(result.trace[i].total_score,
                result.trace[i - 1].total_score)
          << "seed " << seed;
    }
  }
}

TEST(AlternatingTest, ConvergesWithinTenIterationsOn100Nodes) {
  // Paper §V-C: "typically converges in <10 iterations for dependency
  // graphs with up to 100 nodes."
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const graph::Graph g = test::RandomDag(100, seed);
    const AlternatingResult result = AlternatingOptimize(g, 200);
    EXPECT_LE(result.iterations, 10) << "seed " << seed;
  }
}

TEST(AlternatingTest, BeatsOrMatchesSingleShotMkp) {
  // Reordering can only help: final score >= score under the initial
  // topological order.
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    const graph::Graph g = test::RandomDag(30, seed);
    const graph::Order kahn = graph::KahnTopologicalOrder(g);
    const double single_shot = TotalScore(g, SimplifiedMkp(g, kahn, 100));
    const AlternatingResult result = AlternatingOptimize(g, 100);
    EXPECT_GE(result.total_score, single_shot) << "seed " << seed;
  }
}

TEST(AlternatingTest, ZeroBudgetYieldsEmptyPlan) {
  const graph::Graph g = test::Figure7Graph();
  const AlternatingResult result = AlternatingOptimize(g, 0);
  EXPECT_TRUE(FlaggedNodes(result.plan.flags).empty());
  EXPECT_DOUBLE_EQ(result.total_score, 0.0);
  EXPECT_EQ(result.stop_reason, StopReason::kNoImprovement);
}

TEST(AlternatingTest, UnlimitedBudgetFlagsEverythingUseful) {
  const graph::Graph g = test::Figure7Graph();
  const AlternatingResult result = AlternatingOptimize(g, 1'000'000);
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(result.plan.flags[v], g.node(v).speedup_score > 0);
  }
}

TEST(AlternatingTest, SizeConvergenceCriterionAlsoTerminates) {
  AlternatingOptions options;
  options.convergence = AlternatingOptions::Convergence::kSize;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const graph::Graph g = test::RandomDag(25, seed);
    const AlternatingResult result = AlternatingOptimize(g, 100, options);
    EXPECT_LE(result.iterations, options.max_iterations);
    std::string error;
    EXPECT_TRUE(ValidatePlan(g, result.plan, 100, &error)) << error;
  }
}

TEST(AlternatingTest, AblatedSelectorsStillProduceValidPlans) {
  for (const auto selector :
       {SelectorMethod::kGreedy, SelectorMethod::kRandom,
        SelectorMethod::kRatio}) {
    AlternatingOptions options;
    options.selector = selector;
    for (std::uint64_t seed = 0; seed < 5; ++seed) {
      const graph::Graph g = test::RandomDag(25, seed);
      const AlternatingResult result = AlternatingOptimize(g, 100, options);
      std::string error;
      EXPECT_TRUE(ValidatePlan(g, result.plan, 100, &error))
          << ToString(selector) << ": " << error;
    }
  }
}

TEST(AlternatingTest, AblatedSchedulersStillProduceValidPlans) {
  for (const auto scheduler :
       {SchedulerMethod::kSimAnneal, SchedulerMethod::kSeparator,
        SchedulerMethod::kRandomDfs}) {
    AlternatingOptions options;
    options.scheduler = scheduler;
    // Keep SA fast in tests.
    for (std::uint64_t seed = 0; seed < 3; ++seed) {
      const graph::Graph g = test::RandomDag(20, seed);
      const AlternatingResult result = AlternatingOptimize(g, 100, options);
      std::string error;
      EXPECT_TRUE(ValidatePlan(g, result.plan, 100, &error))
          << ToString(scheduler) << ": " << error;
    }
  }
}

TEST(AlternatingTest, MkpMaDfsBeatsAblationsInAggregate) {
  // Alternating optimization is a local method, so MKP+MA-DFS can lose to
  // an ablated selector on an individual adversarial DAG; the paper's
  // claim (§VI-F) is aggregate dominance over a workload population. We
  // assert it over 25 random DAGs.
  double ours_total = 0.0;
  std::map<SelectorMethod, double> ablated_total;
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    const graph::Graph g = test::RandomDag(30, seed);
    ours_total += AlternatingOptimize(g, 100).total_score;
    for (const auto selector :
         {SelectorMethod::kGreedy, SelectorMethod::kRandom,
          SelectorMethod::kRatio}) {
      AlternatingOptions options;
      options.selector = selector;
      ablated_total[selector] +=
          AlternatingOptimize(g, 100, options).total_score;
    }
  }
  for (const auto& [selector, total] : ablated_total) {
    EXPECT_GE(ours_total + 1e-9, total) << ToString(selector);
  }
}

TEST(AlternatingTest, EmptyGraph) {
  graph::Graph g;
  const AlternatingResult result = AlternatingOptimize(g, 100);
  EXPECT_TRUE(result.plan.order.sequence.empty());
  EXPECT_DOUBLE_EQ(result.total_score, 0.0);
}

}  // namespace
}  // namespace sc::opt
