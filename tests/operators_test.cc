#include <gtest/gtest.h>

#include "engine/operators.h"

namespace sc::engine {
namespace {

Table Orders() {
  std::vector<Column> cols;
  cols.push_back(Column::FromInts({1, 2, 3, 4, 5}));
  cols.push_back(Column::FromInts({10, 20, 10, 30, 20}));  // customer
  cols.push_back(Column::FromDoubles({5.0, 10.0, 2.5, 40.0, 7.5}));
  return Table(Schema({Field{"o_id", DataType::kInt64},
                       Field{"o_cust", DataType::kInt64},
                       Field{"o_amount", DataType::kFloat64}}),
               std::move(cols));
}

Table Customers() {
  std::vector<Column> cols;
  cols.push_back(Column::FromInts({10, 20, 40}));
  cols.push_back(Column::FromStrings({"alice", "bob", "carol"}));
  return Table(Schema({Field{"c_id", DataType::kInt64},
                       Field{"c_name", DataType::kString}}),
               std::move(cols));
}

TEST(FilterTest, KeepsMatchingRows) {
  const Table out =
      FilterTable(Orders(), *Gt(Col("o_amount"), Lit(6.0)));
  EXPECT_EQ(out.num_rows(), 3u);
  EXPECT_EQ(out.column("o_id").GetInt(0), 2);
  EXPECT_EQ(out.column("o_id").GetInt(2), 5);
}

TEST(FilterTest, EmptyResultKeepsSchema) {
  const Table out =
      FilterTable(Orders(), *Gt(Col("o_amount"), Lit(1000.0)));
  EXPECT_EQ(out.num_rows(), 0u);
  EXPECT_EQ(out.schema(), Orders().schema());
}

TEST(ProjectTest, ComputesNamedExpressions) {
  const Table out = ProjectTable(
      Orders(), {NamedExpr{"id", Col("o_id")},
                 NamedExpr{"doubled", Mul(Col("o_amount"), Lit(2.0))}});
  EXPECT_EQ(out.num_columns(), 2u);
  EXPECT_EQ(out.schema().field(1).name, "doubled");
  EXPECT_DOUBLE_EQ(out.column("doubled").GetDouble(3), 80.0);
}

TEST(HashJoinTest, InnerJoinMatchesKeys) {
  const Table out = HashJoinTables(Orders(), Customers(), {"o_cust"},
                                   {"c_id"});
  // Customers 10 and 20 match 2+2 orders; customer 40 matches none;
  // customer 30 on the left has no match.
  EXPECT_EQ(out.num_rows(), 4u);
  EXPECT_TRUE(out.schema().Contains("c_name"));
  // Every row's o_cust equals its joined c_id.
  for (std::size_t r = 0; r < out.num_rows(); ++r) {
    EXPECT_EQ(out.column("o_cust").GetInt(r),
              out.column("c_id").GetInt(r));
  }
}

TEST(HashJoinTest, DuplicateBuildKeysFanOut) {
  // Right side with duplicate keys: each probe row matches all of them.
  std::vector<Column> cols;
  cols.push_back(Column::FromInts({10, 10}));
  cols.push_back(Column::FromStrings({"x", "y"}));
  const Table dup(Schema({Field{"c_id", DataType::kInt64},
                          Field{"tag", DataType::kString}}),
                  std::move(cols));
  const Table out = HashJoinTables(Orders(), dup, {"o_cust"}, {"c_id"});
  EXPECT_EQ(out.num_rows(), 4u);  // 2 left rows with cust 10, x2 tags
}

TEST(HashJoinTest, SameNameKeyColumnsDeduplicated) {
  std::vector<Column> left_cols;
  left_cols.push_back(Column::FromInts({1, 2}));
  const Table left(Schema({Field{"k", DataType::kInt64}}),
                   std::move(left_cols));
  std::vector<Column> right_cols;
  right_cols.push_back(Column::FromInts({2, 3}));
  right_cols.push_back(Column::FromDoubles({0.5, 0.7}));
  const Table right(Schema({Field{"k", DataType::kInt64},
                            Field{"v", DataType::kFloat64}}),
                    std::move(right_cols));
  const Table out = HashJoinTables(left, right, {"k"}, {"k"});
  EXPECT_EQ(out.num_rows(), 1u);
  EXPECT_EQ(out.num_columns(), 2u);  // "k" appears once
}

TEST(HashJoinTest, KeyTypeMismatchThrows) {
  EXPECT_THROW(
      HashJoinTables(Orders(), Customers(), {"o_amount"}, {"c_id"}),
      std::invalid_argument);
  EXPECT_THROW(HashJoinTables(Orders(), Customers(), {}, {}),
               std::invalid_argument);
}

TEST(AggregateTest, GroupBySums) {
  const Table out = AggregateTable(
      Orders(), {"o_cust"},
      {SumOf(Col("o_amount"), "total"), CountAll("n")});
  EXPECT_EQ(out.num_rows(), 3u);
  // Find group 10: total 7.5, count 2.
  for (std::size_t r = 0; r < out.num_rows(); ++r) {
    if (out.column("o_cust").GetInt(r) == 10) {
      EXPECT_DOUBLE_EQ(out.column("total").GetDouble(r), 7.5);
      EXPECT_EQ(out.column("n").GetInt(r), 2);
    }
  }
}

TEST(AggregateTest, GlobalAggregateSingleRow) {
  const Table out = AggregateTable(
      Orders(), {},
      {SumOf(Col("o_amount"), "sum"), MinOf(Col("o_amount"), "lo"),
       MaxOf(Col("o_amount"), "hi"), AvgOf(Col("o_amount"), "avg"),
       CountAll("n")});
  ASSERT_EQ(out.num_rows(), 1u);
  EXPECT_DOUBLE_EQ(out.column("sum").GetDouble(0), 65.0);
  EXPECT_DOUBLE_EQ(out.column("lo").GetDouble(0), 2.5);
  EXPECT_DOUBLE_EQ(out.column("hi").GetDouble(0), 40.0);
  EXPECT_DOUBLE_EQ(out.column("avg").GetDouble(0), 13.0);
  EXPECT_EQ(out.column("n").GetInt(0), 5);
}

TEST(AggregateTest, IntSumsStayInt) {
  const Table out = AggregateTable(Orders(), {},
                                   {SumOf(Col("o_cust"), "s")});
  EXPECT_EQ(out.column("s").type(), DataType::kInt64);
  EXPECT_EQ(out.column("s").GetInt(0), 90);
}

TEST(AggregateTest, GlobalOnEmptyInputYieldsZeroRow) {
  const Table empty = FilterTable(Orders(), *Lt(Col("o_id"), Lit(0.0)));
  const Table out = AggregateTable(empty, {}, {CountAll("n")});
  ASSERT_EQ(out.num_rows(), 1u);
  EXPECT_EQ(out.column("n").GetInt(0), 0);
}

TEST(AggregateTest, GroupedOnEmptyInputYieldsNoRows) {
  const Table empty = FilterTable(Orders(), *Lt(Col("o_id"), Lit(0.0)));
  const Table out = AggregateTable(empty, {"o_cust"}, {CountAll("n")});
  EXPECT_EQ(out.num_rows(), 0u);
}

TEST(SortTest, SortsByKeyAscending) {
  const Table out = SortTable(Orders(), {"o_amount"}, {false});
  EXPECT_DOUBLE_EQ(out.column("o_amount").GetDouble(0), 2.5);
  EXPECT_DOUBLE_EQ(out.column("o_amount").GetDouble(4), 40.0);
}

TEST(SortTest, DescendingAndMultiKey) {
  const Table out =
      SortTable(Orders(), {"o_cust", "o_amount"}, {false, true});
  // Within customer 10, larger amount first.
  EXPECT_EQ(out.column("o_cust").GetInt(0), 10);
  EXPECT_DOUBLE_EQ(out.column("o_amount").GetDouble(0), 5.0);
  EXPECT_DOUBLE_EQ(out.column("o_amount").GetDouble(1), 2.5);
}

TEST(SortTest, StableForEqualKeys) {
  const Table out = SortTable(Orders(), {"o_cust"}, {false});
  // Customers 10: o_id 1 then 3 (original order preserved).
  EXPECT_EQ(out.column("o_id").GetInt(0), 1);
  EXPECT_EQ(out.column("o_id").GetInt(1), 3);
}

TEST(LimitTest, TruncatesAndPassesThrough) {
  EXPECT_EQ(LimitTable(Orders(), 2).num_rows(), 2u);
  EXPECT_EQ(LimitTable(Orders(), -1).num_rows(), 5u);
  EXPECT_EQ(LimitTable(Orders(), 100).num_rows(), 5u);
  EXPECT_EQ(LimitTable(Orders(), 0).num_rows(), 0u);
}

TEST(UnionAllTest, ConcatenatesRows) {
  const Table out = UnionAllTables(Orders(), Orders());
  EXPECT_EQ(out.num_rows(), 10u);
}

TEST(UnionAllTest, SchemaMismatchThrows) {
  EXPECT_THROW(UnionAllTables(Orders(), Customers()),
               std::invalid_argument);
}

}  // namespace
}  // namespace sc::engine
