#include <gtest/gtest.h>

#include <set>

#include "workload/datagen.h"
#include "workload/tpcds.h"

namespace sc::workload {
namespace {

TEST(TpcdsSchemaTest, SalesSchemaUsesPrefix) {
  const engine::Schema s = SalesSchema("ss");
  EXPECT_TRUE(s.Contains("ss_sold_date_sk"));
  EXPECT_TRUE(s.Contains("ss_net_profit"));
  const engine::Schema w = SalesSchema("ws");
  EXPECT_TRUE(w.Contains("ws_item_sk"));
}

TEST(TpcdsSchemaTest, ChannelPrefixMapping) {
  EXPECT_EQ(ChannelPrefix("store_sales"), "ss");
  EXPECT_EQ(ChannelPrefix("catalog_sales"), "cs");
  EXPECT_EQ(ChannelPrefix("web_sales"), "ws");
  EXPECT_THROW(ChannelPrefix("item"), std::invalid_argument);
}

TEST(DataGenTest, GeneratesAllBaseTables) {
  DataGenOptions options;
  options.scale = 0.05;
  const auto tables = GenerateTpcdsData(options);
  for (const std::string& name : BaseTableNames()) {
    ASSERT_TRUE(tables.count(name) > 0) << name;
    EXPECT_GT(tables.at(name)->num_rows(), 0u) << name;
  }
}

TEST(DataGenTest, RowCountsScaleLinearlyForFacts) {
  DataGenOptions small;
  small.scale = 0.5;
  DataGenOptions large;
  large.scale = 2.0;
  EXPECT_EQ(RowCountsFor(large).sales_per_channel,
            4 * RowCountsFor(small).sales_per_channel);
}

TEST(DataGenTest, DeterministicForSeed) {
  DataGenOptions options;
  options.scale = 0.05;
  const auto a = GenerateTpcdsData(options);
  const auto b = GenerateTpcdsData(options);
  EXPECT_TRUE(*a.at("store_sales") == *b.at("store_sales"));
  options.seed = 43;
  const auto c = GenerateTpcdsData(options);
  EXPECT_FALSE(*a.at("store_sales") == *c.at("store_sales"));
}

TEST(DataGenTest, ForeignKeysResolve) {
  DataGenOptions options;
  options.scale = 0.05;
  const auto tables = GenerateTpcdsData(options);
  const auto& sales = *tables.at("store_sales");
  const auto& date_dim = *tables.at("date_dim");
  const auto& item = *tables.at("item");

  std::set<std::int64_t> date_keys(date_dim.column("d_date_sk").ints().begin(),
                                   date_dim.column("d_date_sk").ints().end());
  const std::int64_t max_item =
      static_cast<std::int64_t>(item.num_rows());
  for (std::size_t r = 0; r < sales.num_rows(); ++r) {
    ASSERT_TRUE(date_keys.count(
        sales.column("ss_sold_date_sk").GetInt(r)) > 0);
    const std::int64_t item_sk = sales.column("ss_item_sk").GetInt(r);
    ASSERT_GE(item_sk, 1);
    ASSERT_LE(item_sk, max_item);
  }
}

TEST(DataGenTest, DateDimCoversConfiguredYears) {
  DataGenOptions options;
  options.scale = 0.01;
  options.first_year = 2000;
  options.num_years = 2;
  const auto tables = GenerateTpcdsData(options);
  const auto& years = tables.at("date_dim")->column("d_year").ints();
  const auto [lo, hi] = std::minmax_element(years.begin(), years.end());
  EXPECT_EQ(*lo, 2000);
  EXPECT_EQ(*hi, 2001);
}

TEST(DataGenTest, ExtPriceConsistent) {
  DataGenOptions options;
  options.scale = 0.02;
  const auto tables = GenerateTpcdsData(options);
  const auto& sales = *tables.at("web_sales");
  for (std::size_t r = 0; r < sales.num_rows(); ++r) {
    EXPECT_NEAR(sales.column("ws_ext_sales_price").GetDouble(r),
                sales.column("ws_sales_price").GetDouble(r) *
                    static_cast<double>(
                        sales.column("ws_quantity").GetInt(r)),
                1e-6);
  }
}

}  // namespace
}  // namespace sc::workload
