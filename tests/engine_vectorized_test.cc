// Golden equivalence suite for the vectorized execution engine: every
// operator's vectorized path (engine/operators.h, engine/expr.h) is run
// against the retained row-at-a-time scalar reference
// (engine/scalar_reference.h) on randomized tables covering all three
// column types, and the results are asserted bit-identical through
// Table::operator== / Column::operator==.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/rng.h"
#include "engine/operators.h"
#include "engine/scalar_reference.h"

namespace sc::engine {
namespace {

/// Randomized table with all three types: an int row id, a skewed int
/// key (joins/groups collide), signed ints, doubles (some repeated so
/// equality predicates hit), and strings from a small pool plus random
/// suffixes (SSO and heap-allocated lengths).
Table RandomTable(Rng* rng, std::size_t rows) {
  std::vector<std::int64_t> id(rows);
  std::vector<std::int64_t> key(rows);
  std::vector<std::int64_t> a(rows);
  std::vector<double> x(rows);
  std::vector<std::string> s(rows);
  const std::vector<std::string> pool = {"alpha", "beta", "gamma", "delta",
                                         "epsilon"};
  for (std::size_t r = 0; r < rows; ++r) {
    id[r] = static_cast<std::int64_t>(r);
    key[r] = rng->Zipf(17, 1.1);
    a[r] = rng->UniformInt(-50, 50);
    x[r] = rng->Bernoulli(0.2) ? static_cast<double>(rng->UniformInt(0, 5))
                               : rng->UniformDouble(-10.0, 10.0);
    s[r] = pool[static_cast<std::size_t>(rng->UniformInt(
        0, static_cast<std::int64_t>(pool.size()) - 1))];
    if (rng->Bernoulli(0.3)) {
      s[r] += "_" + std::string(static_cast<std::size_t>(
                                    rng->UniformInt(0, 40)),
                                'z');
    }
  }
  return Table(Schema({Field{"id", DataType::kInt64},
                       Field{"key", DataType::kInt64},
                       Field{"a", DataType::kInt64},
                       Field{"x", DataType::kFloat64},
                       Field{"s", DataType::kString}}),
               {Column::FromInts(std::move(id)),
                Column::FromInts(std::move(key)),
                Column::FromInts(std::move(a)),
                Column::FromDoubles(std::move(x)),
                Column::FromStrings(std::move(s))});
}

std::vector<ExprPtr> PredicateZoo() {
  return {
      Gt(Col("key"), Lit(std::int64_t{5})),
      And(Ge(Col("a"), Lit(std::int64_t{-10})), Lt(Col("x"), Lit(3.5))),
      Or(Eq(Col("s"), Lit(std::string("beta"))),
         Ne(Mod(Col("a"), Lit(std::int64_t{7})), Lit(std::int64_t{0}))),
      Not(Le(Col("x"), Mul(Col("a"), Lit(0.1)))),
      Eq(Col("a"), Col("key")),
      Lt(Col("s"), Col("s")),  // string vs string, always false
      // Constant-folded subtrees on both sides of the comparison.
      Gt(Add(Col("a"), Mul(Lit(std::int64_t{2}), Lit(std::int64_t{3}))),
         Sub(Lit(std::int64_t{10}), Lit(std::int64_t{4}))),
      // Literal-only predicate (folds to a broadcast).
      Gt(Lit(std::int64_t{2}), Lit(std::int64_t{1})),
  };
}

std::vector<ExprPtr> ProjectionZoo() {
  return {
      Add(Col("a"), Col("key")),
      Sub(Mul(Col("x"), Lit(2.5)), Col("a")),
      Div(Col("a"), Col("key")),          // int/int division -> double
      Div(Col("x"), Sub(Col("x"), Col("x"))),  // division by zero -> 0.0
      Mod(Col("a"), Lit(std::int64_t{5})),
      Mod(Col("x"), Lit(2.0)),
      Neg(Col("a")),
      Neg(Col("x")),
      Not(Col("a")),
      Add(Lit(std::int64_t{3}), Lit(std::int64_t{4})),  // folded literal
      Col("s"),                                         // borrowed column
  };
}

TEST(VectorizedExprTest, MatchesScalarReference) {
  Rng rng(7);
  for (const std::size_t rows : {std::size_t{0}, std::size_t{1},
                                 std::size_t{257}, std::size_t{1000}}) {
    const Table t = RandomTable(&rng, rows);
    std::vector<ExprPtr> exprs = PredicateZoo();
    const auto projections = ProjectionZoo();
    exprs.insert(exprs.end(), projections.begin(), projections.end());
    for (const ExprPtr& e : exprs) {
      const Column vec = EvalExpr(*e, t);
      const Column ref = scalar::EvalExprScalar(*e, t);
      EXPECT_TRUE(vec == ref) << "rows=" << rows
                              << " expr=" << e->ToString();
    }
  }
}

// The scalar path type-checked logical/unary operands per row, so empty
// inputs never threw even over string columns; the vectorized kernels
// must preserve that (they dispatch on operand types up front).
TEST(VectorizedExprTest, EmptyInputLogicalUnaryOverStringsMatches) {
  Rng rng(43);
  const Table empty = RandomTable(&rng, 0);
  const std::vector<ExprPtr> exprs = {
      Not(Col("s")),
      And(Col("s"), Col("s")),
      Or(Col("s"), Lit(std::int64_t{1})),
      Neg(Col("s")),
  };
  for (const ExprPtr& e : exprs) {
    const Column vec = EvalExpr(*e, empty);
    const Column ref = scalar::EvalExprScalar(*e, empty);
    EXPECT_TRUE(vec == ref) << e->ToString();
    EXPECT_TRUE(FilterTable(empty, *e) ==
                scalar::FilterTableScalar(empty, *e))
        << e->ToString();
  }
  // With rows present, both paths throw.
  const Table t = RandomTable(&rng, 4);
  for (const ExprPtr& e : exprs) {
    EXPECT_THROW(EvalExpr(*e, t), std::invalid_argument) << e->ToString();
    EXPECT_THROW(scalar::EvalExprScalar(*e, t), std::invalid_argument)
        << e->ToString();
  }
}

TEST(VectorizedExprTest, TypeErrorsMatchScalarReference) {
  Rng rng(11);
  const Table t = RandomTable(&rng, 16);
  EXPECT_THROW(EvalExpr(*Add(Col("s"), Col("a")), t),
               std::invalid_argument);
  EXPECT_THROW(EvalExpr(*Lt(Col("s"), Col("a")), t),
               std::invalid_argument);
  EXPECT_THROW(EvalExpr(*Col("missing"), t), std::out_of_range);
}

TEST(VectorizedFilterTest, MatchesScalarReference) {
  Rng rng(13);
  for (const std::size_t rows : {std::size_t{0}, std::size_t{1},
                                 std::size_t{513}, std::size_t{2000}}) {
    const Table t = RandomTable(&rng, rows);
    for (const ExprPtr& pred : PredicateZoo()) {
      const Table vec = FilterTable(t, *pred);
      const Table ref = scalar::FilterTableScalar(t, *pred);
      EXPECT_TRUE(vec == ref) << "rows=" << rows
                              << " pred=" << pred->ToString();
    }
  }
}

TEST(VectorizedProjectTest, MatchesScalarReference) {
  Rng rng(17);
  const Table t = RandomTable(&rng, 777);
  std::vector<NamedExpr> exprs;
  int i = 0;
  for (const ExprPtr& e : ProjectionZoo()) {
    exprs.push_back(NamedExpr{"p" + std::to_string(i++), e});
  }
  const Table vec = ProjectTable(t, exprs);
  const Table ref = scalar::ProjectTableScalar(t, exprs);
  EXPECT_TRUE(vec == ref);
}

TEST(VectorizedJoinTest, MatchesScalarReference) {
  Rng rng(19);
  for (const std::size_t rows : {std::size_t{0}, std::size_t{1},
                                 std::size_t{300}, std::size_t{1500}}) {
    const Table left = RandomTable(&rng, rows);
    const Table right = RandomTable(&rng, rows / 2 + 1);
    // Single int key (duplicates on both sides), composite int+string
    // key, and a double key.
    const std::vector<std::pair<std::vector<std::string>,
                                std::vector<std::string>>> key_sets = {
        {{"key"}, {"key"}},
        {{"key", "s"}, {"key", "s"}},
        {{"x"}, {"x"}},
        {{"a"}, {"key"}},  // differently named columns
    };
    for (const auto& [lk, rk] : key_sets) {
      const Table vec = HashJoinTables(left, right, lk, rk);
      const Table ref = scalar::HashJoinTablesScalar(left, right, lk, rk);
      EXPECT_TRUE(vec == ref) << "rows=" << rows << " key=" << lk[0];
    }
  }
}

TEST(VectorizedJoinTest, DoubleKeyBitPatternSemantics) {
  // EncodeKey hashed doubles by bit pattern: -0.0 and 0.0 are distinct
  // keys, NaN equals NaN. The typed keys must preserve exactly that.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  auto make = [&](std::vector<double> v, std::vector<std::int64_t> tag) {
    return Table(Schema({Field{"d", DataType::kFloat64},
                         Field{"tag", DataType::kInt64}}),
                 {Column::FromDoubles(std::move(v)),
                  Column::FromInts(std::move(tag))});
  };
  const Table left = make({0.0, -0.0, nan, 1.5}, {1, 2, 3, 4});
  const Table right = make({-0.0, nan, 0.0, 1.5}, {10, 20, 30, 40});
  const Table vec = HashJoinTables(left, right, {"d"}, {"d"});
  const Table ref = scalar::HashJoinTablesScalar(left, right, {"d"}, {"d"});
  EXPECT_TRUE(vec == ref);
  EXPECT_EQ(vec.num_rows(), 4u);  // each left row matches exactly once
}

TEST(VectorizedJoinTest, ErrorsMatchScalarReference) {
  Rng rng(23);
  const Table t = RandomTable(&rng, 8);
  EXPECT_THROW(HashJoinTables(t, t, {}, {}), std::invalid_argument);
  EXPECT_THROW(HashJoinTables(t, t, {"key"}, {"s"}),
               std::invalid_argument);
}

TEST(VectorizedAggregateTest, MatchesScalarReference) {
  Rng rng(29);
  const std::vector<AggSpec> aggs = {
      SumOf(Col("a"), "sum_a"),           // int64 sum
      SumOf(Col("x"), "sum_x"),           // float64 sum
      SumOf(Mul(Col("a"), Col("x")), "sum_ax"),
      CountAll("cnt"),
      AvgOf(Col("x"), "avg_x"),
      AvgOf(Col("a"), "avg_a"),
      MinOf(Col("a"), "min_a"),
      MaxOf(Col("a"), "max_a"),
      MinOf(Col("x"), "min_x"),
      MaxOf(Col("x"), "max_x"),
      MinOf(Col("s"), "min_s"),           // string min/max
      MaxOf(Col("s"), "max_s"),
  };
  for (const std::size_t rows : {std::size_t{0}, std::size_t{1},
                                 std::size_t{400}, std::size_t{3000}}) {
    const Table t = RandomTable(&rng, rows);
    const std::vector<std::vector<std::string>> key_sets = {
        {"key"}, {"s"}, {"key", "s"}, {"x"}};
    for (const auto& keys : key_sets) {
      const Table vec = AggregateTable(t, keys, aggs);
      const Table ref = scalar::AggregateTableScalar(t, keys, aggs);
      EXPECT_TRUE(vec == ref) << "rows=" << rows << " key=" << keys[0];
    }
  }
}

TEST(VectorizedAggregateTest, GlobalAggregateMatchesScalarReference) {
  Rng rng(31);
  const std::vector<AggSpec> aggs = {SumOf(Col("a"), "sum_a"),
                                     CountAll("cnt"),
                                     AvgOf(Col("x"), "avg_x"),
                                     MinOf(Col("a"), "min_a"),
                                     MaxOf(Col("x"), "max_x")};
  for (const std::size_t rows : {std::size_t{0}, std::size_t{1},
                                 std::size_t{512}}) {
    const Table t = RandomTable(&rng, rows);
    const Table vec = AggregateTable(t, {}, aggs);
    const Table ref = scalar::AggregateTableScalar(t, {}, aggs);
    EXPECT_TRUE(vec == ref) << "rows=" << rows;
    EXPECT_EQ(vec.num_rows(), 1u);  // global group exists even when empty
  }
}

TEST(VectorizedSortTest, MatchesScalarReference) {
  Rng rng(37);
  for (const std::size_t rows : {std::size_t{0}, std::size_t{1},
                                 std::size_t{900}}) {
    const Table t = RandomTable(&rng, rows);
    const std::vector<std::pair<std::vector<std::string>,
                                std::vector<bool>>> sorts = {
        {{"key"}, {}},
        {{"key", "x"}, {true, false}},
        {{"s", "a"}, {false, true}},
        {{"x"}, {true}},
    };
    for (const auto& [keys, desc] : sorts) {
      const Table vec = SortTable(t, keys, desc);
      const Table ref = scalar::SortTableScalar(t, keys, desc);
      EXPECT_TRUE(vec == ref) << "rows=" << rows << " key=" << keys[0];
    }
  }
}

TEST(VectorizedLimitUnionTest, MatchesScalarReference) {
  Rng rng(41);
  const Table t = RandomTable(&rng, 100);
  const Table u = RandomTable(&rng, 37);
  for (const std::int64_t limit : {-1, 0, 1, 50, 99, 100, 1000}) {
    EXPECT_TRUE(LimitTable(t, limit) ==
                scalar::LimitTableScalar(t, limit))
        << limit;
  }
  EXPECT_TRUE(UnionAllTables(t, u) == scalar::UnionAllTablesScalar(t, u));
  const Table empty = Table::Empty(t.schema());
  EXPECT_TRUE(UnionAllTables(t, empty) ==
              scalar::UnionAllTablesScalar(t, empty));
  EXPECT_TRUE(UnionAllTables(empty, u) ==
              scalar::UnionAllTablesScalar(empty, u));
}

// Documented divergences from the scalar reference, where the old
// behaviour was a latent bug (see scalar_reference.h): these pin the
// *vectorized* semantics, not equivalence.
TEST(VectorizedDivergenceTest, Int64ComparesExactlyBeyondDoublePrecision) {
  // 2^53 and 2^53 + 1 round to the same double; the scalar path calls
  // them equal, the vectorized engine does not.
  const std::int64_t big = (std::int64_t{1} << 53);
  const Table t(Schema({Field{"a", DataType::kInt64},
                        Field{"b", DataType::kInt64}}),
                {Column::FromInts({big, big}),
                 Column::FromInts({big + 1, big})});
  const Column vec = EvalExpr(*Eq(Col("a"), Col("b")), t);
  EXPECT_TRUE(vec == Column::FromInts({0, 1}));  // exact comparison
  const Column ref = scalar::EvalExprScalar(*Eq(Col("a"), Col("b")), t);
  EXPECT_TRUE(ref == Column::FromInts({1, 1}));  // double rounding
}

TEST(VectorizedDivergenceTest, EmptyGlobalStringMinMaxYieldsEmptyString) {
  const Table empty(Schema({Field{"s", DataType::kString}}),
                    {Column(DataType::kString)});
  const std::vector<AggSpec> aggs = {MinOf(Col("s"), "min_s"),
                                     MaxOf(Col("s"), "max_s")};
  const Table vec = AggregateTable(empty, {}, aggs);
  ASSERT_EQ(vec.num_rows(), 1u);
  EXPECT_EQ(vec.column("min_s").GetString(0), "");
  EXPECT_EQ(vec.column("max_s").GetString(0), "");
  // The scalar reference throws here (int64 placeholder appended into a
  // string column).
  EXPECT_THROW(scalar::AggregateTableScalar(empty, {}, aggs),
               std::bad_variant_access);
}

TEST(VectorizedGatherTest, GatherFromAndRangeAppend) {
  const Column ints = Column::FromInts({10, 20, 30, 40, 50});
  Column out(DataType::kInt64);
  out.GatherFrom(ints, {4, 0, 2, 2});
  EXPECT_TRUE(out == Column::FromInts({50, 10, 30, 30}));
  out.AppendRangeFrom(ints, 1, 3);
  EXPECT_TRUE(out == Column::FromInts({50, 10, 30, 30, 20, 30}));

  const Column strs = Column::FromStrings({"a", "b", "c"});
  Column sout(DataType::kString);
  sout.GatherFrom(strs, {2, 2, 0});
  EXPECT_TRUE(sout == Column::FromStrings({"c", "c", "a"}));
  EXPECT_THROW(sout.GatherFrom(ints, {0}), std::invalid_argument);
  EXPECT_THROW(sout.AppendRangeFrom(ints, 0, 1), std::invalid_argument);
}

}  // namespace
}  // namespace sc::engine
