#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "storage/shared_catalog.h"

namespace sc::storage {
namespace {

using engine::Column;
using engine::DataType;
using engine::Field;
using engine::Schema;
using engine::Table;

engine::TablePtr Tiny() {
  std::vector<Column> cols;
  cols.push_back(Column::FromInts({1}));
  return std::make_shared<Table>(
      Table(Schema({Field{"x", DataType::kInt64}}), std::move(cols)));
}

TEST(SharedCatalogTest, PublishPinServe) {
  SharedCatalog catalog(100);
  EXPECT_TRUE(catalog.Publish(1, Tiny(), 40));
  EXPECT_TRUE(catalog.Contains(1));
  EXPECT_EQ(catalog.used_bytes(), 40);
  EXPECT_EQ(catalog.pinned_bytes(), 0);

  engine::TablePtr table = catalog.Pin(1);
  ASSERT_NE(table, nullptr);
  EXPECT_EQ(catalog.pinned_bytes(), 40);
  EXPECT_EQ(catalog.hits(), 1);
  catalog.Unpin(1);
  EXPECT_EQ(catalog.pinned_bytes(), 0);
  EXPECT_EQ(catalog.Pin(2), nullptr);
  EXPECT_EQ(catalog.misses(), 1);
}

TEST(SharedCatalogTest, PublishExistingKeyKeepsFirstTable) {
  SharedCatalog catalog(100);
  engine::TablePtr first = Tiny();
  EXPECT_TRUE(catalog.Publish(7, first, 10));
  EXPECT_TRUE(catalog.Publish(7, Tiny(), 10));  // no-op refresh
  EXPECT_EQ(catalog.used_bytes(), 10);
  EXPECT_EQ(catalog.publishes(), 1);
  EXPECT_EQ(catalog.Pin(7), first);
}

TEST(SharedCatalogTest, EvictsUnpinnedLruUnderPressure) {
  SharedCatalog catalog(100);
  EXPECT_TRUE(catalog.Publish(1, Tiny(), 40));
  EXPECT_TRUE(catalog.Publish(2, Tiny(), 40));
  // Touch 1 so 2 becomes the LRU victim.
  catalog.Pin(1);
  catalog.Unpin(1);
  EXPECT_TRUE(catalog.Publish(3, Tiny(), 40));  // evicts 2
  EXPECT_TRUE(catalog.Contains(1));
  EXPECT_FALSE(catalog.Contains(2));
  EXPECT_TRUE(catalog.Contains(3));
  EXPECT_EQ(catalog.evictions(), 1);
  EXPECT_LE(catalog.used_bytes(), catalog.budget_bytes());
}

TEST(SharedCatalogTest, PinnedEntriesNeverEvicted) {
  SharedCatalog catalog(100);
  EXPECT_TRUE(catalog.Publish(1, Tiny(), 60));
  ASSERT_NE(catalog.Pin(1), nullptr);
  // Fits only by evicting 1 — which is pinned, so the publish fails.
  EXPECT_FALSE(catalog.Publish(2, Tiny(), 60));
  EXPECT_EQ(catalog.rejects(), 1);
  EXPECT_TRUE(catalog.Contains(1));
  // A smaller entry fits alongside the pin and may be evicted instead.
  EXPECT_TRUE(catalog.Publish(3, Tiny(), 40));
  EXPECT_TRUE(catalog.Publish(4, Tiny(), 40));  // evicts 3, not 1
  EXPECT_TRUE(catalog.Contains(1));
  EXPECT_FALSE(catalog.Contains(3));
  catalog.Unpin(1);
  // Unpinned, 1 is evictable again.
  EXPECT_TRUE(catalog.Publish(5, Tiny(), 60));
  EXPECT_FALSE(catalog.Contains(1));
}

TEST(SharedCatalogTest, DurabilityTracksPublisherWrites) {
  SharedCatalog catalog(100);
  // Published while the producer's write is still in flight.
  EXPECT_TRUE(catalog.Publish(1, Tiny(), 10, /*durable=*/false));
  bool durable = true;
  ASSERT_NE(catalog.Pin(1, nullptr, true, &durable), nullptr);
  EXPECT_FALSE(durable);
  catalog.Unpin(1);
  // The write landed.
  catalog.MarkDurable(1);
  ASSERT_NE(catalog.Pin(1, nullptr, true, &durable), nullptr);
  EXPECT_TRUE(durable);
  catalog.Unpin(1);
  // Re-publishing durable content upgrades an in-flight entry.
  EXPECT_TRUE(catalog.Publish(2, Tiny(), 10, /*durable=*/false));
  EXPECT_TRUE(catalog.Publish(2, Tiny(), 10, /*durable=*/true));
  ASSERT_NE(catalog.Pin(2, nullptr, true, &durable), nullptr);
  EXPECT_TRUE(durable);
  catalog.Unpin(2);
  catalog.MarkDurable(42);  // unknown key: no-op
}

TEST(SharedCatalogTest, OversizeAndNegativeRejected) {
  SharedCatalog catalog(100);
  EXPECT_FALSE(catalog.Publish(1, Tiny(), 101));
  EXPECT_FALSE(catalog.Publish(2, Tiny(), -1));
  EXPECT_EQ(catalog.used_bytes(), 0);
}

TEST(SharedCatalogTest, ClearDropsUnpinnedOnly) {
  SharedCatalog catalog(100);
  catalog.Publish(1, Tiny(), 30);
  catalog.Publish(2, Tiny(), 30);
  catalog.Pin(1);
  catalog.Clear();
  EXPECT_TRUE(catalog.Contains(1));
  EXPECT_FALSE(catalog.Contains(2));
  EXPECT_EQ(catalog.used_bytes(), 30);
  EXPECT_EQ(catalog.peak_bytes(), 60);  // peak survives Clear
  catalog.Unpin(1);
}

TEST(SharedCatalogTest, UnpinUnknownOrUnpinnedIsNoOp) {
  SharedCatalog catalog(100);
  catalog.Unpin(42);
  catalog.Publish(1, Tiny(), 10);
  catalog.Unpin(1);  // never pinned
  EXPECT_EQ(catalog.pinned_bytes(), 0);
  EXPECT_TRUE(catalog.Contains(1));
}

// The TSAN stress contract (ISSUE 4): concurrent Publish / Pin / Unpin
// with eviction pressure from 8 threads — the budget is never exceeded
// and a pinned entry is never evicted.
TEST(SharedCatalogTest, ConcurrentPublishPinEvictStress) {
  constexpr std::int64_t kBudget = 1000;
  constexpr int kThreads = 8;
  constexpr int kIters = 400;
  SharedCatalog catalog(kBudget);
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&catalog, &failed, t] {
      // Each thread owns one key it keeps pinned through the churn.
      const std::uint64_t own = 1000 + static_cast<std::uint64_t>(t);
      catalog.Publish(own, Tiny(), 50);
      engine::TablePtr pinned = catalog.Pin(own);
      for (int i = 0; i < kIters; ++i) {
        // Churn: shared keyspace across threads, sized to force
        // eviction pressure against the 1000-byte budget.
        const std::uint64_t key = static_cast<std::uint64_t>(i % 40);
        catalog.Publish(key, Tiny(), 90);
        if (engine::TablePtr table = catalog.Pin(key)) {
          catalog.Unpin(key);
        }
        if (catalog.used_bytes() > kBudget) failed.store(true);
        // The own key is pinned (if the initial publish fit): it must
        // never be evicted.
        if (pinned != nullptr && !catalog.Contains(own)) {
          failed.store(true);
        }
        catalog.Contains(key);
        catalog.pinned_bytes();
      }
      if (pinned != nullptr) catalog.Unpin(own);
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_FALSE(failed.load());
  EXPECT_LE(catalog.used_bytes(), kBudget);
  EXPECT_LE(catalog.peak_bytes(), kBudget);
  EXPECT_EQ(catalog.pinned_bytes(), 0);
  EXPECT_GT(catalog.hits() + catalog.misses(), 0);
}

TEST(SharedCatalogTest, NegativeLookupDampingCapsPerKeyMisses) {
  SharedCatalog catalog(100, /*negative_lookup_damp_limit=*/3);
  // Repeated probes of the same absent key: the first 3 count as
  // misses, the rest as damped.
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(catalog.Pin(7), nullptr);
  }
  EXPECT_EQ(catalog.misses(), 3);
  EXPECT_EQ(catalog.damped_lookups(), 7);
  // A different absent key gets its own budget.
  catalog.Pin(8);
  EXPECT_EQ(catalog.misses(), 4);
  // Uncounted (speculative) probes touch neither counter.
  catalog.Pin(7, nullptr, /*count=*/false);
  EXPECT_EQ(catalog.misses(), 4);
  EXPECT_EQ(catalog.damped_lookups(), 7);
}

TEST(SharedCatalogTest, PublishOpensNewDampingEpoch) {
  SharedCatalog catalog(100, /*negative_lookup_damp_limit=*/2);
  const std::uint64_t before = catalog.epoch();
  for (int i = 0; i < 5; ++i) catalog.Pin(7);
  EXPECT_EQ(catalog.misses(), 2);
  EXPECT_EQ(catalog.damped_lookups(), 3);

  // A successful publish bumps the epoch: fresh content can turn any
  // miss into a hit, so past miss counts are forgotten.
  EXPECT_TRUE(catalog.Publish(99, Tiny(), 10));
  EXPECT_GT(catalog.epoch(), before);
  for (int i = 0; i < 5; ++i) catalog.Pin(7);
  EXPECT_EQ(catalog.misses(), 4);
  EXPECT_EQ(catalog.damped_lookups(), 6);

  // Clear also opens a new epoch.
  catalog.Clear();
  catalog.Pin(7);
  EXPECT_EQ(catalog.misses(), 5);
}

TEST(SharedCatalogTest, DampingDisabledCountsEveryMiss) {
  SharedCatalog catalog(100, /*negative_lookup_damp_limit=*/0);
  for (int i = 0; i < 10; ++i) catalog.Pin(7);
  EXPECT_EQ(catalog.misses(), 10);
  EXPECT_EQ(catalog.damped_lookups(), 0);
}

}  // namespace
}  // namespace sc::storage
