#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "storage/shared_catalog.h"

namespace sc::storage {
namespace {

using engine::Column;
using engine::DataType;
using engine::Field;
using engine::Schema;
using engine::Table;

engine::TablePtr Tiny() {
  std::vector<Column> cols;
  cols.push_back(Column::FromInts({1}));
  return std::make_shared<Table>(
      Table(Schema({Field{"x", DataType::kInt64}}), std::move(cols)));
}

TEST(SharedCatalogTest, PublishPinServe) {
  SharedCatalog catalog(100);
  EXPECT_TRUE(catalog.Publish(1, Tiny(), 40));
  EXPECT_TRUE(catalog.Contains(1));
  EXPECT_EQ(catalog.used_bytes(), 40);
  EXPECT_EQ(catalog.pinned_bytes(), 0);

  engine::TablePtr table = catalog.Pin(1);
  ASSERT_NE(table, nullptr);
  EXPECT_EQ(catalog.pinned_bytes(), 40);
  EXPECT_EQ(catalog.hits(), 1);
  catalog.Unpin(1);
  EXPECT_EQ(catalog.pinned_bytes(), 0);
  EXPECT_EQ(catalog.Pin(2), nullptr);
  EXPECT_EQ(catalog.misses(), 1);
}

TEST(SharedCatalogTest, PublishExistingKeyKeepsFirstTable) {
  SharedCatalog catalog(100);
  engine::TablePtr first = Tiny();
  EXPECT_TRUE(catalog.Publish(7, first, 10));
  EXPECT_TRUE(catalog.Publish(7, Tiny(), 10));  // no-op refresh
  EXPECT_EQ(catalog.used_bytes(), 10);
  EXPECT_EQ(catalog.publishes(), 1);
  EXPECT_EQ(catalog.Pin(7), first);
}

TEST(SharedCatalogTest, EvictsUnpinnedLruUnderPressure) {
  SharedCatalog catalog(100);
  EXPECT_TRUE(catalog.Publish(1, Tiny(), 40));
  EXPECT_TRUE(catalog.Publish(2, Tiny(), 40));
  // Touch 1 so 2 becomes the LRU victim.
  catalog.Pin(1);
  catalog.Unpin(1);
  EXPECT_TRUE(catalog.Publish(3, Tiny(), 40));  // evicts 2
  EXPECT_TRUE(catalog.Contains(1));
  EXPECT_FALSE(catalog.Contains(2));
  EXPECT_TRUE(catalog.Contains(3));
  EXPECT_EQ(catalog.evictions(), 1);
  EXPECT_LE(catalog.used_bytes(), catalog.budget_bytes());
}

TEST(SharedCatalogTest, PinnedEntriesNeverEvicted) {
  SharedCatalog catalog(100);
  EXPECT_TRUE(catalog.Publish(1, Tiny(), 60));
  ASSERT_NE(catalog.Pin(1), nullptr);
  // Fits only by evicting 1 — which is pinned, so the publish fails.
  EXPECT_FALSE(catalog.Publish(2, Tiny(), 60));
  EXPECT_EQ(catalog.rejects(), 1);
  EXPECT_TRUE(catalog.Contains(1));
  // A smaller entry fits alongside the pin and may be evicted instead.
  EXPECT_TRUE(catalog.Publish(3, Tiny(), 40));
  EXPECT_TRUE(catalog.Publish(4, Tiny(), 40));  // evicts 3, not 1
  EXPECT_TRUE(catalog.Contains(1));
  EXPECT_FALSE(catalog.Contains(3));
  catalog.Unpin(1);
  // Unpinned, 1 is evictable again.
  EXPECT_TRUE(catalog.Publish(5, Tiny(), 60));
  EXPECT_FALSE(catalog.Contains(1));
}

TEST(SharedCatalogTest, DurabilityTracksPublisherWrites) {
  SharedCatalog catalog(100);
  // Published while the producer's write is still in flight.
  EXPECT_TRUE(catalog.Publish(1, Tiny(), 10, /*durable=*/false));
  bool durable = true;
  ASSERT_NE(catalog.Pin(1, nullptr, true, &durable), nullptr);
  EXPECT_FALSE(durable);
  catalog.Unpin(1);
  // The write landed.
  catalog.MarkDurable(1);
  ASSERT_NE(catalog.Pin(1, nullptr, true, &durable), nullptr);
  EXPECT_TRUE(durable);
  catalog.Unpin(1);
  // Re-publishing durable content upgrades an in-flight entry.
  EXPECT_TRUE(catalog.Publish(2, Tiny(), 10, /*durable=*/false));
  EXPECT_TRUE(catalog.Publish(2, Tiny(), 10, /*durable=*/true));
  ASSERT_NE(catalog.Pin(2, nullptr, true, &durable), nullptr);
  EXPECT_TRUE(durable);
  catalog.Unpin(2);
  catalog.MarkDurable(42);  // unknown key: no-op
}

TEST(SharedCatalogTest, OversizeAndNegativeRejected) {
  SharedCatalog catalog(100);
  EXPECT_FALSE(catalog.Publish(1, Tiny(), 101));
  EXPECT_FALSE(catalog.Publish(2, Tiny(), -1));
  EXPECT_EQ(catalog.used_bytes(), 0);
}

TEST(SharedCatalogTest, ClearDropsUnpinnedOnly) {
  SharedCatalog catalog(100);
  catalog.Publish(1, Tiny(), 30);
  catalog.Publish(2, Tiny(), 30);
  catalog.Pin(1);
  catalog.Clear();
  EXPECT_TRUE(catalog.Contains(1));
  EXPECT_FALSE(catalog.Contains(2));
  EXPECT_EQ(catalog.used_bytes(), 30);
  EXPECT_EQ(catalog.peak_bytes(), 60);  // peak survives Clear
  catalog.Unpin(1);
}

TEST(SharedCatalogTest, UnpinUnknownOrUnpinnedIsNoOp) {
  SharedCatalog catalog(100);
  catalog.Unpin(42);
  catalog.Publish(1, Tiny(), 10);
  catalog.Unpin(1);  // never pinned
  EXPECT_EQ(catalog.pinned_bytes(), 0);
  EXPECT_TRUE(catalog.Contains(1));
}

// The TSAN stress contract (ISSUE 4): concurrent Publish / Pin / Unpin
// with eviction pressure from 8 threads — the budget is never exceeded
// and a pinned entry is never evicted.
TEST(SharedCatalogTest, ConcurrentPublishPinEvictStress) {
  constexpr std::int64_t kBudget = 1000;
  constexpr int kThreads = 8;
  constexpr int kIters = 400;
  SharedCatalog catalog(kBudget);
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&catalog, &failed, t] {
      // Each thread owns one key it keeps pinned through the churn.
      const std::uint64_t own = 1000 + static_cast<std::uint64_t>(t);
      catalog.Publish(own, Tiny(), 50);
      engine::TablePtr pinned = catalog.Pin(own);
      for (int i = 0; i < kIters; ++i) {
        // Churn: shared keyspace across threads, sized to force
        // eviction pressure against the 1000-byte budget.
        const std::uint64_t key = static_cast<std::uint64_t>(i % 40);
        catalog.Publish(key, Tiny(), 90);
        if (engine::TablePtr table = catalog.Pin(key)) {
          catalog.Unpin(key);
        }
        if (catalog.used_bytes() > kBudget) failed.store(true);
        // The own key is pinned (if the initial publish fit): it must
        // never be evicted.
        if (pinned != nullptr && !catalog.Contains(own)) {
          failed.store(true);
        }
        catalog.Contains(key);
        catalog.pinned_bytes();
      }
      if (pinned != nullptr) catalog.Unpin(own);
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_FALSE(failed.load());
  EXPECT_LE(catalog.used_bytes(), kBudget);
  EXPECT_LE(catalog.peak_bytes(), kBudget);
  EXPECT_EQ(catalog.pinned_bytes(), 0);
  EXPECT_GT(catalog.hits() + catalog.misses(), 0);
}

TEST(SharedCatalogTest, NegativeLookupDampingCapsPerKeyMisses) {
  SharedCatalog catalog(100, /*negative_lookup_damp_limit=*/3);
  // Repeated probes of the same absent key: the first 3 count as
  // misses, the rest as damped.
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(catalog.Pin(7), nullptr);
  }
  EXPECT_EQ(catalog.misses(), 3);
  EXPECT_EQ(catalog.damped_lookups(), 7);
  // A different absent key gets its own budget.
  catalog.Pin(8);
  EXPECT_EQ(catalog.misses(), 4);
  // Uncounted (speculative) probes touch neither counter.
  catalog.Pin(7, nullptr, /*count=*/false);
  EXPECT_EQ(catalog.misses(), 4);
  EXPECT_EQ(catalog.damped_lookups(), 7);
}

TEST(SharedCatalogTest, PublishOpensNewDampingEpoch) {
  SharedCatalog catalog(100, /*negative_lookup_damp_limit=*/2);
  const std::uint64_t before = catalog.epoch();
  for (int i = 0; i < 5; ++i) catalog.Pin(7);
  EXPECT_EQ(catalog.misses(), 2);
  EXPECT_EQ(catalog.damped_lookups(), 3);

  // A successful publish bumps the epoch: fresh content can turn any
  // miss into a hit, so past miss counts are forgotten.
  EXPECT_TRUE(catalog.Publish(99, Tiny(), 10));
  EXPECT_GT(catalog.epoch(), before);
  for (int i = 0; i < 5; ++i) catalog.Pin(7);
  EXPECT_EQ(catalog.misses(), 4);
  EXPECT_EQ(catalog.damped_lookups(), 6);

  // Clear also opens a new epoch.
  catalog.Clear();
  catalog.Pin(7);
  EXPECT_EQ(catalog.misses(), 5);
}

TEST(SharedCatalogTest, DampingDisabledCountsEveryMiss) {
  SharedCatalog catalog(100, /*negative_lookup_damp_limit=*/0);
  for (int i = 0; i < 10; ++i) catalog.Pin(7);
  EXPECT_EQ(catalog.misses(), 10);
  EXPECT_EQ(catalog.damped_lookups(), 0);
}

// ---------------------------------------------------------------------
// Spill/refill tier (compressed columnar residency).
// ---------------------------------------------------------------------

/// Distinguishable content per tag, with a string column so the spill
/// round-trip exercises the SCC1 dictionary pages.
engine::TablePtr Tagged(std::int64_t tag) {
  std::vector<std::int64_t> v = {tag, tag + 1, tag + 2};
  std::vector<std::string> s = {"spill_" + std::to_string(tag), "x",
                                "spill_" + std::to_string(tag)};
  std::vector<Column> cols;
  cols.push_back(Column::FromInts(std::move(v)));
  cols.push_back(Column::FromStrings(std::move(s)));
  return std::make_shared<Table>(
      Table(Schema({Field{"v", DataType::kInt64},
                    Field{"s", DataType::kString}}),
            std::move(cols)));
}

/// Fresh empty spill directory for one test.
std::string SpillDir(const std::string& name) {
  const auto dir =
      std::filesystem::temp_directory_path() / ("sc_spill_" + name);
  std::filesystem::remove_all(dir);
  return dir.string();
}

TEST(SharedCatalogSpillTest, EvictSpillsAndPinRefillsBitIdentical) {
  const std::string dir = SpillDir("roundtrip");
  SharedCatalog catalog(4096, 8, SpillOptions{dir, 0});
  engine::TablePtr original = Tagged(100);
  EXPECT_TRUE(catalog.Publish(1, original, 3000));
  EXPECT_TRUE(catalog.Publish(2, Tagged(200), 3000));  // evicts + spills 1
  EXPECT_EQ(catalog.evictions(), 1);
  EXPECT_EQ(catalog.spills(), 1);
  EXPECT_GT(catalog.spill_bytes(), 0);
  EXPECT_EQ(catalog.spilled_entries(), 1u);
  // A spilled entry still counts as resident for the optimizer's
  // residency snapshot — pinning it is a refill, not a recompute.
  EXPECT_TRUE(catalog.Contains(1));
  const auto residency = catalog.ContainsAll({1, 2, 3});
  EXPECT_TRUE(residency[0]);
  EXPECT_TRUE(residency[1]);
  EXPECT_FALSE(residency[2]);

  const std::int64_t hits_before = catalog.hits();
  std::int64_t size = 0;
  engine::TablePtr refilled = catalog.Pin(1, &size);
  ASSERT_NE(refilled, nullptr);
  EXPECT_TRUE(*refilled == *original);  // bit-identical round trip
  // Refilled strings come back dictionary-encoded, so the re-admitted
  // accounted size is the compressed ByteSize.
  EXPECT_TRUE(refilled->column(1).dictionary_encoded());
  EXPECT_EQ(size, refilled->ByteSize());
  EXPECT_EQ(catalog.spill_refills(), 1);
  EXPECT_EQ(catalog.hits(), hits_before + 1);
  EXPECT_EQ(catalog.spilled_entries(), 0u);
  EXPECT_EQ(catalog.spill_bytes(), 0);
  EXPECT_GT(catalog.pinned_bytes(), 0);  // refill is born pinned
  catalog.Unpin(1);
  std::filesystem::remove_all(dir);
}

TEST(SharedCatalogSpillTest, PinnedEntriesAreNeverSpilled) {
  const std::string dir = SpillDir("pinned");
  SharedCatalog catalog(100, 8, SpillOptions{dir, 0});
  EXPECT_TRUE(catalog.Publish(1, Tagged(1), 60));
  ASSERT_NE(catalog.Pin(1), nullptr);
  // Fits only by evicting the pinned entry — rejected, nothing spilled.
  EXPECT_FALSE(catalog.Publish(2, Tagged(2), 60));
  EXPECT_EQ(catalog.spills(), 0);
  EXPECT_EQ(catalog.spilled_entries(), 0u);
  EXPECT_TRUE(catalog.Contains(1));
  catalog.Unpin(1);
  std::filesystem::remove_all(dir);
}

TEST(SharedCatalogSpillTest, QuarantinedSpillIsNeverRefilled) {
  const std::string dir = SpillDir("quarantine");
  SharedCatalog catalog(4096, 8, SpillOptions{dir, 0});
  std::uint64_t stamp = 0;
  // Non-durable: the publisher's write never landed.
  EXPECT_TRUE(catalog.Publish(1, Tagged(1), 3000, /*durable=*/false,
                              &stamp));
  EXPECT_TRUE(catalog.Publish(2, Tagged(2), 3000));  // spills 1
  EXPECT_EQ(catalog.spilled_entries(), 1u);
  // The failure-unwind path condemns the spilled entry by stamp: it must
  // vanish rather than ever be served again.
  EXPECT_TRUE(catalog.Invalidate(1, stamp));
  EXPECT_EQ(catalog.quarantines(), 1);
  EXPECT_EQ(catalog.spilled_entries(), 0u);
  EXPECT_FALSE(catalog.Contains(1));
  EXPECT_EQ(catalog.Pin(1), nullptr);
  EXPECT_EQ(catalog.spill_refills(), 0);
  // A stale stamp never condemns a spilled republish.
  std::uint64_t stamp3 = 0;
  EXPECT_TRUE(catalog.Publish(3, Tagged(3), 3000, false, &stamp3));
  EXPECT_TRUE(catalog.Publish(4, Tagged(4), 3000));  // spills 3
  EXPECT_FALSE(catalog.Invalidate(3, stamp3 + 999));
  EXPECT_TRUE(catalog.Contains(3));
  std::filesystem::remove_all(dir);
}

TEST(SharedCatalogSpillTest, DurableSpillIgnoresInvalidate) {
  const std::string dir = SpillDir("durable");
  SharedCatalog catalog(4096, 8, SpillOptions{dir, 0});
  std::uint64_t stamp = 0;
  EXPECT_TRUE(catalog.Publish(1, Tagged(1), 3000, /*durable=*/true,
                              &stamp));
  EXPECT_TRUE(catalog.Publish(2, Tagged(2), 3000));  // spills 1
  // The content is already on external storage: a late failure unwind
  // must not condemn it.
  EXPECT_FALSE(catalog.Invalidate(1, stamp));
  EXPECT_EQ(catalog.quarantines(), 0);
  bool durable = false;
  engine::TablePtr refilled = catalog.Pin(1, nullptr, true, &durable);
  ASSERT_NE(refilled, nullptr);
  EXPECT_TRUE(durable);  // durability survives the spill round trip
  catalog.Unpin(1);
  std::filesystem::remove_all(dir);
}

TEST(SharedCatalogSpillTest, SpillCapDropsOldestFiles) {
  const std::string dir = SpillDir("cap");
  // Each Tagged table compresses to ~73 bytes: a 100-byte cap holds at
  // most one spill file.
  SharedCatalog catalog(4096, 8, SpillOptions{dir, 100});
  EXPECT_TRUE(catalog.Publish(1, Tagged(1), 3000));
  EXPECT_TRUE(catalog.Publish(2, Tagged(2), 3000));  // spills 1
  EXPECT_TRUE(catalog.Publish(3, Tagged(3), 3000));  // spills 2, drops 1
  EXPECT_EQ(catalog.spills(), 2);
  EXPECT_EQ(catalog.spilled_entries(), 1u);
  EXPECT_LE(catalog.spill_bytes(), 100);
  EXPECT_FALSE(catalog.Contains(1));  // dropped: back to recompute
  EXPECT_TRUE(catalog.Contains(2));
  EXPECT_EQ(catalog.Pin(1), nullptr);
  ASSERT_NE(catalog.Pin(2), nullptr);
  catalog.Unpin(2);
  std::filesystem::remove_all(dir);
}

TEST(SharedCatalogSpillTest, FreshPublishSupersedesStaleSpill) {
  const std::string dir = SpillDir("supersede");
  SharedCatalog catalog(4096, 8, SpillOptions{dir, 0});
  EXPECT_TRUE(catalog.Publish(1, Tagged(1), 3000));
  EXPECT_TRUE(catalog.Publish(2, Tagged(2), 3000));  // spills 1
  EXPECT_EQ(catalog.spilled_entries(), 1u);
  // The same content republished fresh (a concurrent job recomputed it):
  // the stale spill file is dropped, the resident entry stands.
  engine::TablePtr fresh = Tagged(1);
  EXPECT_TRUE(catalog.Publish(1, fresh, 500));
  EXPECT_EQ(catalog.spilled_entries(), 0u);
  EXPECT_EQ(catalog.spill_bytes(), 0);
  EXPECT_EQ(catalog.Pin(1), fresh);
  EXPECT_EQ(catalog.spill_refills(), 0);
  catalog.Unpin(1);
  std::filesystem::remove_all(dir);
}

TEST(SharedCatalogSpillTest, DestructorRemovesSpillFiles) {
  const std::string dir = SpillDir("cleanup");
  {
    SharedCatalog catalog(4096, 8, SpillOptions{dir, 0});
    EXPECT_TRUE(catalog.Publish(1, Tagged(1), 3000));
    EXPECT_TRUE(catalog.Publish(2, Tagged(2), 3000));
    EXPECT_EQ(catalog.spilled_entries(), 1u);
    ASSERT_TRUE(std::filesystem::exists(dir));
    EXPECT_FALSE(std::filesystem::is_empty(dir));
  }
  EXPECT_TRUE(std::filesystem::is_empty(dir));
  std::filesystem::remove_all(dir);
}

TEST(SharedCatalogSpillTest, DisabledSpillKeepsDropSemantics) {
  SharedCatalog catalog(100);  // no spill directory
  EXPECT_TRUE(catalog.Publish(1, Tagged(1), 60));
  EXPECT_TRUE(catalog.Publish(2, Tagged(2), 60));  // plain drop of 1
  EXPECT_EQ(catalog.spills(), 0);
  EXPECT_EQ(catalog.spilled_entries(), 0u);
  EXPECT_FALSE(catalog.Contains(1));
  EXPECT_EQ(catalog.Pin(1), nullptr);
}

/// Spill-tier variant of the TSAN stress: publish/pin churn against a
/// tight budget with spilling enabled, so evict→spill, refill, and
/// supersede races all fire concurrently. The budget invariant and the
/// pinned-never-evicted contract must hold throughout.
TEST(SharedCatalogSpillTest, ConcurrentSpillRefillStress) {
  constexpr std::int64_t kBudget = 8192;
  constexpr int kThreads = 8;
  constexpr int kIters = 150;
  const std::string dir = SpillDir("stress");
  std::atomic<bool> failed{false};
  {
    SharedCatalog catalog(kBudget, 8, SpillOptions{dir, 4096});
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&catalog, &failed, t] {
        for (int i = 0; i < kIters; ++i) {
          const auto key = static_cast<std::uint64_t>((t + i) % 12);
          catalog.Publish(key, Tagged(static_cast<std::int64_t>(key)),
                          1500);
          if (engine::TablePtr table = catalog.Pin(key)) {
            // Whether served resident or refilled from spill, content
            // under one key is immutable.
            if (table->num_rows() != 3) failed.store(true);
            catalog.Unpin(key);
          }
          if (catalog.used_bytes() > kBudget) failed.store(true);
        }
      });
    }
    for (auto& thread : threads) thread.join();
    EXPECT_FALSE(failed.load());
    EXPECT_LE(catalog.used_bytes(), kBudget);
    EXPECT_EQ(catalog.pinned_bytes(), 0);
  }
  EXPECT_TRUE(!std::filesystem::exists(dir) ||
              std::filesystem::is_empty(dir));
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace sc::storage
