#include <gtest/gtest.h>

#include "common/bytes.h"
#include "cost/cost_model.h"
#include "cost/speedup.h"
#include "test_util.h"

namespace sc::cost {
namespace {

TEST(CostModelTest, ZeroBytesCostNothing) {
  CostModel model;
  EXPECT_DOUBLE_EQ(model.DiskReadSeconds(0), 0.0);
  EXPECT_DOUBLE_EQ(model.DiskWriteSeconds(0), 0.0);
  EXPECT_DOUBLE_EQ(model.MemReadSeconds(0), 0.0);
  EXPECT_DOUBLE_EQ(model.MemWriteSeconds(0), 0.0);
}

TEST(CostModelTest, PaperTestbedNumbers) {
  CostModel model{DeviceProfile::PaperTestbed()};
  // 519.8 MB at 519.8 MB/s ~ 1 second, plus access latency and the
  // per-table open overhead.
  const DeviceProfile& p = model.profile();
  const double t = model.DiskReadSeconds(static_cast<std::int64_t>(519.8e6));
  EXPECT_NEAR(t, 1.0 + p.disk_latency + p.table_read_overhead, 1e-6);
}

TEST(CostModelTest, WriteChannelExcludesTableOverhead) {
  CostModel model;
  const std::int64_t b = 200 * kMB;
  EXPECT_NEAR(model.DiskWriteSeconds(b) - model.DiskWriteChannelSeconds(b),
              model.profile().table_write_overhead, 1e-9);
}

TEST(CostModelTest, WriteSlowerThanRead) {
  CostModel model;
  const std::int64_t gb = kGB;
  EXPECT_GT(model.DiskWriteSeconds(gb), model.DiskReadSeconds(gb));
}

TEST(CostModelTest, MemoryMuchFasterThanDisk) {
  CostModel model;
  const std::int64_t gb = kGB;
  EXPECT_LT(model.MemReadSeconds(gb) * 10, model.DiskReadSeconds(gb));
}

TEST(CostModelTest, WriteAmplificationScalesChannelTime) {
  DeviceProfile profile;
  profile.write_amplification = 2.0;
  CostModel amplified{profile};
  CostModel plain;
  const std::int64_t b = 100 * kMB;
  EXPECT_NEAR(
      amplified.DiskWriteChannelSeconds(b) - profile.disk_latency,
      2.0 * (plain.DiskWriteChannelSeconds(b) - profile.disk_latency),
      1e-9);
}

TEST(CostModelTest, RejectsNonPositiveBandwidth) {
  DeviceProfile profile;
  profile.disk_read_bw = 0;
  EXPECT_THROW(CostModel{profile}, std::invalid_argument);
}

TEST(SpeedupTest, ScoreZeroForEmptyOutput) {
  graph::Graph g;
  g.AddNode("empty", 0);
  SpeedupEstimator estimator{CostModel{}};
  EXPECT_DOUBLE_EQ(estimator.ScoreFor(g, 0), 0.0);
}

TEST(SpeedupTest, ScoreGrowsWithFanOut) {
  // Same node size, more children -> higher score (more reads saved).
  graph::Graph g1;
  auto a1 = g1.AddNode("a", kGB);
  auto b1 = g1.AddNode("b", 1);
  g1.AddEdge(a1, b1);

  graph::Graph g2;
  auto a2 = g2.AddNode("a", kGB);
  auto b2 = g2.AddNode("b", 1);
  auto c2 = g2.AddNode("c", 1);
  g2.AddEdge(a2, b2);
  g2.AddEdge(a2, c2);

  SpeedupEstimator estimator{CostModel{}};
  EXPECT_GT(estimator.ScoreFor(g2, a2), estimator.ScoreFor(g1, a1));
}

TEST(SpeedupTest, MatchesPaperFormula) {
  // t_i = children * (disk_read - mem_read) + (disk_write - mem_write).
  graph::Graph g;
  const auto a = g.AddNode("a", 100 * kMB);
  const auto b = g.AddNode("b", 1);
  const auto c = g.AddNode("c", 1);
  g.AddEdge(a, b);
  g.AddEdge(a, c);
  CostModel model;
  SpeedupEstimator estimator{model};
  const std::int64_t s = 100 * kMB;
  const double expected =
      2.0 * (model.DiskReadSeconds(s) - model.MemReadSeconds(s)) +
      (model.DiskWriteSeconds(s) - model.MemWriteSeconds(s));
  EXPECT_NEAR(estimator.ScoreFor(g, a), expected, 1e-12);
}

TEST(SpeedupTest, AnnotateGraphFillsAllNodes) {
  graph::Graph g = test::RandomDag(25, 3, /*max_size=*/kMB);
  SpeedupEstimator estimator{CostModel{}};
  estimator.AnnotateGraph(&g);
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_GE(g.node(v).speedup_score, 0.0);
    if (g.node(v).size_bytes > 0) {
      EXPECT_GT(g.node(v).speedup_score, 0.0);
    }
  }
}

TEST(SpeedupTest, ChildlessNodeStillHasWriteSaving) {
  graph::Graph g;
  g.AddNode("leaf", kGB);
  SpeedupEstimator estimator{CostModel{}};
  EXPECT_GT(estimator.ScoreFor(g, 0), 0.0);
}

}  // namespace
}  // namespace sc::cost
