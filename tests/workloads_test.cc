#include <gtest/gtest.h>

#include "engine/executor.h"

#include "graph/topo.h"
#include "workload/datagen.h"
#include "workload/scale_model.h"
#include "workload/workloads.h"

namespace sc::workload {
namespace {

class StandardWorkloadsTest : public testing::TestWithParam<int> {
 protected:
  MvWorkload Workload() const {
    return StandardWorkloads()[static_cast<std::size_t>(GetParam())];
  }
};

TEST(WorkloadsTest, TableIIINodeCounts) {
  const auto workloads = StandardWorkloads();
  ASSERT_EQ(workloads.size(), 5u);
  EXPECT_EQ(workloads[0].name, "io1");
  EXPECT_EQ(workloads[0].num_nodes(), 21);
  EXPECT_EQ(workloads[1].name, "io2");
  EXPECT_EQ(workloads[1].num_nodes(), 19);
  EXPECT_EQ(workloads[2].name, "io3");
  EXPECT_EQ(workloads[2].num_nodes(), 26);
  EXPECT_EQ(workloads[3].name, "compute1");
  EXPECT_EQ(workloads[3].num_nodes(), 21);
  EXPECT_EQ(workloads[4].name, "compute2");
  EXPECT_EQ(workloads[4].num_nodes(), 16);
}

TEST_P(StandardWorkloadsTest, PassesValidation) {
  const MvWorkload wl = Workload();
  std::string error;
  EXPECT_TRUE(ValidateWorkload(wl, &error)) << error;
}

TEST_P(StandardWorkloadsTest, GraphIsConnectedEnough) {
  const MvWorkload wl = Workload();
  // Every workload has at least one edge per non-root node.
  std::int32_t roots = 0;
  for (graph::NodeId v = 0; v < wl.graph.num_nodes(); ++v) {
    if (wl.graph.parents(v).empty()) ++roots;
  }
  EXPECT_GT(roots, 0);
  EXPECT_LT(roots, wl.graph.num_nodes());
  EXPECT_GE(wl.graph.num_edges(), wl.graph.num_nodes() - roots);
}

TEST_P(StandardWorkloadsTest, ExecutesOnTinyDataset) {
  // Every node's plan must execute successfully against generated data in
  // dependency order, with non-degenerate outputs somewhere.
  const MvWorkload wl = Workload();
  DataGenOptions options;
  options.scale = 0.05;
  const auto base = GenerateTpcdsData(options);
  engine::MapResolver resolver;
  resolver.Reserve(base.size() +
                   static_cast<std::size_t>(wl.graph.num_nodes()));
  for (const auto& [name, table] : base) resolver.Put(name, table);

  const graph::Order order = graph::KahnTopologicalOrder(wl.graph);
  std::uint64_t total_rows = 0;
  for (graph::NodeId v : order.sequence) {
    const engine::Table out =
        engine::ExecutePlan(*wl.plans[v], resolver);
    total_rows += out.num_rows();
    resolver.Put(wl.graph.node(v).name,
                 std::make_shared<engine::Table>(out));
  }
  EXPECT_GT(total_rows, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllFive, StandardWorkloadsTest,
                         testing::Range(0, 5),
                         [](const testing::TestParamInfo<int>& info) {
                           return StandardWorkloads()
                               [static_cast<std::size_t>(info.param)]
                                   .name;
                         });

TEST(WorkloadsTest, ValidateCatchesNonParentScan) {
  MvWorkload wl = BuildIo1();
  // Tamper: make one node's plan reference an MV that is not its parent.
  wl.plans[5] = engine::Scan("io1_q5_report");
  std::string error;
  EXPECT_FALSE(ValidateWorkload(wl, &error));
}

TEST(WorkloadsTest, ValidateCatchesCountMismatch) {
  MvWorkload wl = BuildIo2();
  wl.plans.pop_back();
  std::string error;
  EXPECT_FALSE(ValidateWorkload(wl, &error));
  EXPECT_NE(error.find("plan count"), std::string::npos);
}

TEST(WorkloadsTest, QueriesRecorded) {
  EXPECT_EQ(BuildIo1().tpcds_queries, (std::vector<int>{5, 77, 80}));
  EXPECT_EQ(BuildCompute2().tpcds_queries, (std::vector<int>{14, 23}));
}

}  // namespace
}  // namespace sc::workload
