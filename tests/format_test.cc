#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <sstream>

#include "storage/format.h"

namespace sc::storage {
namespace {

using engine::Column;
using engine::DataType;
using engine::Field;
using engine::Schema;
using engine::Table;

Table SampleTable() {
  std::vector<Column> cols;
  cols.push_back(Column::FromInts({1, -5, 1LL << 40}));
  cols.push_back(Column::FromDoubles({0.25, -1e9, 3.14159}));
  cols.push_back(Column::FromStrings({"", "hello", "utf8 ✓"}));
  return Table(Schema({Field{"i", DataType::kInt64},
                       Field{"d", DataType::kFloat64},
                       Field{"s", DataType::kString}}),
               std::move(cols));
}

TEST(FormatTest, StreamRoundTrip) {
  const Table original = SampleTable();
  std::stringstream buffer;
  const std::int64_t written = WriteTable(original, buffer);
  EXPECT_GT(written, 0);
  const Table loaded = ReadTable(buffer);
  EXPECT_TRUE(loaded == original);
}

TEST(FormatTest, SerializedSizeMatchesBytesWritten) {
  const Table t = SampleTable();
  std::stringstream buffer;
  EXPECT_EQ(WriteTable(t, buffer), SerializedSize(t));
}

TEST(FormatTest, EmptyTableRoundTrip) {
  const Table empty = Table::Empty(
      Schema({Field{"a", DataType::kInt64},
              Field{"b", DataType::kString}}));
  std::stringstream buffer;
  WriteTable(empty, buffer);
  const Table loaded = ReadTable(buffer);
  EXPECT_EQ(loaded.num_rows(), 0u);
  EXPECT_TRUE(loaded.schema() == empty.schema());
}

TEST(FormatTest, BadMagicThrows) {
  std::stringstream buffer("NOPE....");
  EXPECT_THROW(ReadTable(buffer), std::runtime_error);
}

TEST(FormatTest, TruncatedStreamThrows) {
  const Table t = SampleTable();
  std::stringstream buffer;
  WriteTable(t, buffer);
  std::string data = buffer.str();
  data.resize(data.size() / 2);
  std::stringstream truncated(data);
  EXPECT_THROW(ReadTable(truncated), std::runtime_error);
}

TEST(FormatTest, FileRoundTrip) {
  const Table t = SampleTable();
  const std::string path = testing::TempDir() + "/sc_format_test.sct";
  WriteTableFile(t, path);
  const Table loaded = ReadTableFile(path);
  EXPECT_TRUE(loaded == t);
}

TEST(FormatTest, MissingFileThrows) {
  EXPECT_THROW(ReadTableFile("/nonexistent/dir/x.sct"),
               std::runtime_error);
}

// ---- Durability: checksum verification and hostile-input hardening ----

std::string Serialize(const Table& t, bool compressed) {
  std::stringstream buffer;
  if (compressed) {
    WriteTableCompressed(t, buffer);
  } else {
    WriteTable(t, buffer);
  }
  return buffer.str();
}

Table Deserialize(const std::string& data, bool compressed,
                  const ReadOptions& options = {}) {
  std::stringstream in(data);
  return compressed ? ReadTableCompressed(in, options)
                    : ReadTable(in, options);
}

// A verifying read detects a single flipped bit anywhere in the stream —
// header, column payloads, per-column checksums, footer. Randomized
// offsets with a fixed seed keep the run deterministic while covering
// the whole byte range over time.
TEST(FormatTest, VerifiedReadDetectsSingleBitFlipsEverywhere) {
  for (const bool compressed : {false, true}) {
    const std::string clean = Serialize(SampleTable(), compressed);
    std::mt19937_64 rng(42);
    std::uniform_int_distribution<std::size_t> pos(0, clean.size() - 1);
    std::uniform_int_distribution<int> bit(0, 7);
    for (int trial = 0; trial < 64; ++trial) {
      std::string damaged = clean;
      damaged[pos(rng)] ^= static_cast<char>(1 << bit(rng));
      EXPECT_THROW(Deserialize(damaged, compressed), CorruptFileError)
          << (compressed ? "SCC1" : "SCT1") << " trial " << trial;
    }
  }
}

// Truncation at every prefix length must throw (never return a partial
// table), in verifying AND non-verifying mode: the footer end marker
// catches torn tails even without checksum arithmetic.
TEST(FormatTest, TruncationAtEveryLengthThrowsBothModes) {
  for (const bool compressed : {false, true}) {
    const std::string clean = Serialize(SampleTable(), compressed);
    for (std::size_t len = 0; len < clean.size(); ++len) {
      const std::string cut = clean.substr(0, len);
      EXPECT_THROW(Deserialize(cut, compressed), CorruptFileError);
      EXPECT_THROW(Deserialize(cut, compressed, ReadOptions{false}),
                   CorruptFileError);
    }
  }
}

// The torn-write shape: right length, tail zeroed. Structural EOF checks
// cannot see it; checksums (and the footer end marker) must.
TEST(FormatTest, ZeroedTailDetected) {
  for (const bool compressed : {false, true}) {
    std::string torn = Serialize(SampleTable(), compressed);
    std::memset(torn.data() + torn.size() / 2, 0, torn.size() / 2);
    EXPECT_THROW(Deserialize(torn, compressed), CorruptFileError);
  }
}

// Hostile headers must never drive allocation: a count field claiming
// 2^60 rows against a tiny stream has to fail fast (bounded reads), not
// attempt the allocation. These streams are garbage after valid magic.
TEST(FormatTest, HostileHeaderCountsNeverOverAllocate) {
  const std::string magics[] = {"SCT1", "SCC1"};
  for (const std::string& magic : magics) {
    const bool compressed = magic == "SCC1";
    // num_cols = 0xFFFFFFFF, num_rows = 2^60, then nothing.
    std::string data = magic;
    data += std::string("\xFF\xFF\xFF\xFF", 4);
    std::uint64_t rows = 1ULL << 60;
    data.append(reinterpret_cast<const char*>(&rows), sizeof(rows));
    EXPECT_THROW(Deserialize(data, compressed), CorruptFileError);

    // Plausible col count but a payload_len far past the actual bytes.
    std::string lying = magic;
    std::uint32_t cols = 1;
    lying.append(reinterpret_cast<const char*>(&cols), sizeof(cols));
    lying.append(reinterpret_cast<const char*>(&rows), sizeof(rows));
    std::uint32_t name_len = 1;
    lying.append(reinterpret_cast<const char*>(&name_len),
                 sizeof(name_len));
    lying += "c";
    lying += '\0';  // type = int64
    if (compressed) lying += '\x01';  // encoding = for-varint
    if (compressed) {
      std::int64_t frame_min = 0;
      lying.append(reinterpret_cast<const char*>(&frame_min),
                   sizeof(frame_min));
    }
    std::uint64_t payload_len = 1ULL << 59;
    lying.append(reinterpret_cast<const char*>(&payload_len),
                 sizeof(payload_len));
    lying += "only a few real bytes";
    EXPECT_THROW(Deserialize(lying, compressed), CorruptFileError);
  }
}

// Unverified mode still cross-checks the footer's row/column counts and
// end marker, so swapping two files' tails (or garbage counts) is caught
// without checksum arithmetic.
TEST(FormatTest, UnverifiedModeRoundTripsAndChecksFooter) {
  for (const bool compressed : {false, true}) {
    const std::string clean = Serialize(SampleTable(), compressed);
    const Table loaded = Deserialize(clean, compressed, ReadOptions{false});
    EXPECT_TRUE(loaded == SampleTable());
    // Damage the footer's end marker only.
    std::string bad_marker = clean;
    bad_marker[bad_marker.size() - 1] ^= 0x20;
    EXPECT_THROW(Deserialize(bad_marker, compressed, ReadOptions{false}),
                 CorruptFileError);
  }
}

TEST(FormatTest, CorruptFileErrorIsRuntimeError) {
  // Pre-durability catch sites use std::runtime_error; the typed error
  // must keep satisfying them.
  static_assert(std::is_base_of_v<std::runtime_error, CorruptFileError>);
}

}  // namespace
}  // namespace sc::storage
