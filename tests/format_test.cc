#include <gtest/gtest.h>

#include <sstream>

#include "storage/format.h"

namespace sc::storage {
namespace {

using engine::Column;
using engine::DataType;
using engine::Field;
using engine::Schema;
using engine::Table;

Table SampleTable() {
  std::vector<Column> cols;
  cols.push_back(Column::FromInts({1, -5, 1LL << 40}));
  cols.push_back(Column::FromDoubles({0.25, -1e9, 3.14159}));
  cols.push_back(Column::FromStrings({"", "hello", "utf8 ✓"}));
  return Table(Schema({Field{"i", DataType::kInt64},
                       Field{"d", DataType::kFloat64},
                       Field{"s", DataType::kString}}),
               std::move(cols));
}

TEST(FormatTest, StreamRoundTrip) {
  const Table original = SampleTable();
  std::stringstream buffer;
  const std::int64_t written = WriteTable(original, buffer);
  EXPECT_GT(written, 0);
  const Table loaded = ReadTable(buffer);
  EXPECT_TRUE(loaded == original);
}

TEST(FormatTest, SerializedSizeMatchesBytesWritten) {
  const Table t = SampleTable();
  std::stringstream buffer;
  EXPECT_EQ(WriteTable(t, buffer), SerializedSize(t));
}

TEST(FormatTest, EmptyTableRoundTrip) {
  const Table empty = Table::Empty(
      Schema({Field{"a", DataType::kInt64},
              Field{"b", DataType::kString}}));
  std::stringstream buffer;
  WriteTable(empty, buffer);
  const Table loaded = ReadTable(buffer);
  EXPECT_EQ(loaded.num_rows(), 0u);
  EXPECT_TRUE(loaded.schema() == empty.schema());
}

TEST(FormatTest, BadMagicThrows) {
  std::stringstream buffer("NOPE....");
  EXPECT_THROW(ReadTable(buffer), std::runtime_error);
}

TEST(FormatTest, TruncatedStreamThrows) {
  const Table t = SampleTable();
  std::stringstream buffer;
  WriteTable(t, buffer);
  std::string data = buffer.str();
  data.resize(data.size() / 2);
  std::stringstream truncated(data);
  EXPECT_THROW(ReadTable(truncated), std::runtime_error);
}

TEST(FormatTest, FileRoundTrip) {
  const Table t = SampleTable();
  const std::string path = testing::TempDir() + "/sc_format_test.sct";
  WriteTableFile(t, path);
  const Table loaded = ReadTableFile(path);
  EXPECT_TRUE(loaded == t);
}

TEST(FormatTest, MissingFileThrows) {
  EXPECT_THROW(ReadTableFile("/nonexistent/dir/x.sct"),
               std::runtime_error);
}

}  // namespace
}  // namespace sc::storage
