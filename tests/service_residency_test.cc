// Compressed-residency acceptance (ISSUE 9): at a fixed global budget on
// the string-heavy workload, dictionary compression + the SharedCatalog
// spill/refill tier must yield strictly more cross-job hits and strictly
// less follower recompute than the plain-string, no-spill baseline (the
// PR-8 service behaviour, reproduced via the compress_residency /
// spill_directory knobs). Also pins the obs::Registry export of the new
// spill / dictionary gauges.
#include <gtest/gtest.h>

#include <filesystem>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "runtime/controller.h"
#include "service/service.h"
#include "workload/datagen.h"
#include "workload/workloads.h"

namespace sc::service {
namespace {

constexpr int kWidth = 6;
constexpr int kFollowers = 3;

storage::DiskProfile FastDisk() {
  storage::DiskProfile profile;
  profile.throttle = false;
  return profile;
}

std::string FreshDir(const std::string& tag) {
  const std::string dir = testing::TempDir() + "/sc_residency_" + tag;
  std::filesystem::remove_all(dir);
  return dir;
}

/// Loads the string-heavy tables into `disk` and returns the annotated
/// string-heavy workload. Profiling honours `compress` so each service
/// config is fed estimates matching its own runtime representation
/// (estimating compressed sizes and then running uncompressed would
/// overrun the Memory Catalog).
std::shared_ptr<const workload::MvWorkload> AnnotatedStringHeavy(
    storage::ThrottledDisk* disk, bool compress) {
  workload::StringHeavyOptions data_options;
  data_options.scale = 0.2;  // 12k events
  data_options.cardinality = workload::StringCardinality::kLow;
  runtime::ControllerOptions profile_options;
  profile_options.compress_residency = compress;
  runtime::Controller profiler(disk, profile_options);
  profiler.LoadBaseTables(workload::GenerateStringHeavyData(data_options));
  auto wl = std::make_shared<workload::MvWorkload>(
      workload::BuildStringHeavySynthetic(kWidth));
  const runtime::RunReport report = profiler.ProfileAndAnnotate(wl.get());
  EXPECT_TRUE(report.ok) << report.error;
  return wl;
}

std::vector<JobResult> SeedThenFollowers(RefreshService* service,
                                         std::shared_ptr<const workload::MvWorkload> wl) {
  RefreshJobSpec seed;
  seed.workload = wl;
  seed.tenant = "seed";
  std::vector<JobResult> results;
  results.push_back(service->Submit(seed).get());
  std::vector<std::future<JobResult>> futures;
  for (int i = 0; i < kFollowers; ++i) {
    RefreshJobSpec spec;
    spec.workload = wl;
    spec.tenant = "tenant" + std::to_string(i);
    futures.push_back(service->Submit(std::move(spec)));
  }
  for (auto& future : futures) results.push_back(future.get());
  return results;
}

std::int64_t SumCrossJobHits(const std::vector<JobResult>& results) {
  std::int64_t hits = 0;
  for (const JobResult& r : results) hits += r.report.cross_job_hits;
  return hits;
}

double FollowerComputeSeconds(const std::vector<JobResult>& results) {
  double total = 0.0;
  for (std::size_t i = 1; i < results.size(); ++i) {
    total += results[i].report.TotalComputeSeconds();
  }
  return total;
}

TEST(CompressedResidencyTest, MoreHitsAndLessRecomputeThanPlainBaseline) {
  // Tight on purpose: the plain-string MV outputs do not all fit, the
  // dictionary-encoded ones mostly do, and what still overflows lands in
  // the spill tier instead of being recomputed.
  const std::int64_t global_budget = 192LL * 1024;

  // Treatment: compressed residency + spill tier (the defaults plus a
  // spill directory).
  storage::ThrottledDisk disk(FreshDir("treatment"), FastDisk());
  auto wl = AnnotatedStringHeavy(&disk, /*compress=*/true);
  std::vector<JobResult> treatment;
  std::int64_t treatment_spills = 0;
  std::int64_t treatment_refills = 0;
  {
    ServiceOptions options;
    options.num_workers = 4;
    options.global_budget = global_budget;
    options.spill_directory = FreshDir("treatment_spill");
    ASSERT_TRUE(options.compress_residency);
    ASSERT_TRUE(options.share_catalog);
    RefreshService service(&disk, options);
    treatment = SeedThenFollowers(&service, wl);
    for (const JobResult& r : treatment) {
      ASSERT_TRUE(r.report.ok) << r.report.error;
    }
    treatment_spills = service.shared_catalog().spills();
    treatment_refills = service.shared_catalog().spill_refills();

    // The new monitoring surface: dictionary-column and spill-tier
    // gauges flow through the unified registry.
    const std::map<std::string, double> gauges =
        service.registry().Snapshot();
    ASSERT_TRUE(gauges.count("sc_dict_columns_total"));
    ASSERT_TRUE(gauges.count("sc_shared_spill_bytes"));
    ASSERT_TRUE(gauges.count("sc_shared_spills_total"));
    ASSERT_TRUE(gauges.count("sc_shared_refills_total"));
    EXPECT_GT(gauges.at("sc_dict_columns_total"), 0.0);
    EXPECT_EQ(gauges.at("sc_shared_spills_total"),
              static_cast<double>(treatment_spills));
    EXPECT_EQ(gauges.at("sc_shared_refills_total"),
              static_cast<double>(treatment_refills));
    service.Shutdown();
    EXPECT_EQ(service.shared_catalog().pinned_bytes(), 0);
  }

  // Baseline: the PR-8 representation — plain strings, evictions drop.
  storage::ThrottledDisk base_disk(FreshDir("baseline"), FastDisk());
  auto base_wl = AnnotatedStringHeavy(&base_disk, /*compress=*/false);
  std::vector<JobResult> baseline;
  {
    ServiceOptions options;
    options.num_workers = 4;
    options.global_budget = global_budget;
    options.compress_residency = false;
    RefreshService service(&base_disk, options);
    baseline = SeedThenFollowers(&service, base_wl);
    for (const JobResult& r : baseline) {
      ASSERT_TRUE(r.report.ok) << r.report.error;
    }
    EXPECT_EQ(service.shared_catalog().spills(), 0);
    service.Shutdown();
  }

  // The acceptance criterion: strictly more cross-job service and
  // strictly less follower recompute at the same budget.
  EXPECT_GT(SumCrossJobHits(treatment), SumCrossJobHits(baseline));
  EXPECT_LT(FollowerComputeSeconds(treatment),
            FollowerComputeSeconds(baseline));
}

TEST(CompressedResidencyTest, SpillTierServesRefillsUnderPressure) {
  // A budget well under the compressed working set: even encoded MVs
  // evict, so followers are served from the spill tier (refills, counted
  // as hits) instead of recomputing everything.
  storage::ThrottledDisk disk(FreshDir("spill_pressure"), FastDisk());
  auto wl = AnnotatedStringHeavy(&disk, /*compress=*/true);
  ServiceOptions options;
  options.num_workers = 2;
  options.global_budget = 64LL * 1024;
  options.spill_directory = FreshDir("spill_pressure_dir");
  RefreshService service(&disk, options);
  const std::vector<JobResult> results = SeedThenFollowers(&service, wl);
  for (const JobResult& r : results) {
    ASSERT_TRUE(r.report.ok) << r.report.error;
  }
  EXPECT_GT(service.shared_catalog().spills(), 0);
  EXPECT_GT(service.shared_catalog().spill_refills(), 0);
  // Refills served content without recompute: they count as hits.
  EXPECT_GT(service.shared_catalog().hits(), 0);
  service.Shutdown();
  EXPECT_EQ(service.shared_catalog().pinned_bytes(), 0);
}

}  // namespace
}  // namespace sc::service
