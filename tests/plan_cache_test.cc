#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "graph/topo.h"
#include "opt/stages.h"
#include "service/plan_cache.h"

namespace sc::service {
namespace {

graph::Graph DiamondGraph() {
  graph::Graph g;
  const auto a = g.AddNode("a", 100, 2.0);
  const auto b = g.AddNode("b", 200, 1.0);
  const auto c = g.AddNode("c", 300, 0.5);
  const auto d = g.AddNode("d", 50, 0.0);
  g.AddEdge(a, b);
  g.AddEdge(a, c);
  g.AddEdge(b, d);
  g.AddEdge(c, d);
  return g;
}

opt::Plan PlanFor(const graph::Graph& g,
                  const std::vector<graph::NodeId>& flagged) {
  opt::Plan plan;
  plan.order = graph::KahnTopologicalOrder(g);
  plan.flags = opt::MakeFlags(g.num_nodes(), flagged);
  return plan;
}

/// Inserts `plan` with its stage decomposition, the way the service does.
void InsertPlan(PlanCache& cache, const graph::Graph& g, std::uint64_t fp,
                std::int64_t budget, opt::Plan plan) {
  opt::StageDecomposition stages = opt::DecomposeStages(g, plan.order);
  cache.Insert(fp, budget, std::move(plan), std::move(stages));
}

TEST(FingerprintTest, StableAcrossIdenticalConstructions) {
  EXPECT_EQ(FingerprintGraph(DiamondGraph()),
            FingerprintGraph(DiamondGraph()));
}

TEST(FingerprintTest, SensitiveToMetadataAndStructure) {
  const std::uint64_t base = FingerprintGraph(DiamondGraph());

  graph::Graph resized = DiamondGraph();
  resized.mutable_node(0).size_bytes = 101;
  EXPECT_NE(FingerprintGraph(resized), base);

  graph::Graph rescored = DiamondGraph();
  rescored.mutable_node(1).speedup_score = 9.0;
  EXPECT_NE(FingerprintGraph(rescored), base);

  graph::Graph renamed = DiamondGraph();
  renamed.mutable_node(2).name = "c2";
  EXPECT_NE(FingerprintGraph(renamed), base);

  graph::Graph extra_edge = DiamondGraph();
  extra_edge.AddEdge(0, 3);
  EXPECT_NE(FingerprintGraph(extra_edge), base);
}

TEST(PlanCacheTest, LookupIsBudgetKeyed) {
  const graph::Graph g = DiamondGraph();
  const std::uint64_t fp = FingerprintGraph(g);
  PlanCache cache(8);
  InsertPlan(cache, g, fp, 1000, PlanFor(g, {0, 1}));
  InsertPlan(cache, g, fp, 500, PlanFor(g, {0}));

  auto at_1000 = cache.Lookup(fp, 1000);
  ASSERT_TRUE(at_1000.has_value());
  EXPECT_EQ(opt::FlaggedNodes(at_1000->plan.flags),
            (std::vector<graph::NodeId>{0, 1}));

  auto at_500 = cache.Lookup(fp, 500);
  ASSERT_TRUE(at_500.has_value());
  EXPECT_EQ(opt::FlaggedNodes(at_500->plan.flags),
            (std::vector<graph::NodeId>{0}));

  EXPECT_FALSE(cache.Lookup(fp, 250).has_value());
  EXPECT_FALSE(cache.Lookup(fp + 1, 1000).has_value());

  const PlanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 2);
  EXPECT_EQ(stats.misses, 2);
  EXPECT_EQ(stats.insertions, 2);
}

TEST(PlanCacheTest, StoresStageDecompositionNextToPlan) {
  const graph::Graph g = DiamondGraph();
  const std::uint64_t fp = FingerprintGraph(g);
  PlanCache cache(8);
  opt::Plan plan = PlanFor(g, {0});
  InsertPlan(cache, g, fp, 1000, plan);

  auto cached = cache.Lookup(fp, 1000);
  ASSERT_TRUE(cached.has_value());
  // The cached decomposition is exactly what a fresh DecomposeStages of
  // the cached plan yields — hits can skip the recomputation.
  const opt::StageDecomposition fresh =
      opt::DecomposeStages(g, cached->plan.order);
  EXPECT_EQ(cached->stages.stage_of, fresh.stage_of);
  EXPECT_EQ(cached->stages.stages, fresh.stages);
  EXPECT_EQ(cached->stages.width(), 2u);  // diamond: {b, c}
}

TEST(PlanCacheTest, EvictsLeastRecentlyUsed) {
  const graph::Graph g = DiamondGraph();
  const std::uint64_t fp = FingerprintGraph(g);
  PlanCache cache(2);
  InsertPlan(cache, g, fp, 1, PlanFor(g, {}));
  InsertPlan(cache, g, fp, 2, PlanFor(g, {}));
  cache.Lookup(fp, 1);         // budget 1 is now most recently used
  InsertPlan(cache, g, fp, 3, PlanFor(g, {}));  // evicts budget 2
  EXPECT_TRUE(cache.Lookup(fp, 1).has_value());
  EXPECT_FALSE(cache.Lookup(fp, 2).has_value());
  EXPECT_TRUE(cache.Lookup(fp, 3).has_value());
  EXPECT_EQ(cache.stats().evictions, 1);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(PlanCacheTest, ReinsertRefreshesEntry) {
  const graph::Graph g = DiamondGraph();
  const std::uint64_t fp = FingerprintGraph(g);
  PlanCache cache(4);
  InsertPlan(cache, g, fp, 1000, PlanFor(g, {0}));
  InsertPlan(cache, g, fp, 1000, PlanFor(g, {0, 1}));
  EXPECT_EQ(cache.size(), 1u);
  auto plan = cache.Lookup(fp, 1000);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(opt::FlaggedNodes(plan->plan.flags),
            (std::vector<graph::NodeId>{0, 1}));
}

TEST(PlanCacheTest, ConcurrentAccessIsSafe) {
  const graph::Graph g = DiamondGraph();
  const std::uint64_t fp = FingerprintGraph(g);
  PlanCache cache(16);
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 200; ++i) {
        const std::int64_t budget = (t * 7 + i) % 32;
        if (i % 3 == 0) {
          InsertPlan(cache, g, fp, budget, PlanFor(g, {}));
        } else {
          auto plan = cache.Lookup(fp, budget);
          if (plan.has_value()) {
            EXPECT_EQ(plan->plan.flags.size(),
                      static_cast<std::size_t>(g.num_nodes()));
            EXPECT_EQ(plan->stages.stage_of.size(),
                      static_cast<std::size_t>(g.num_nodes()));
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_LE(cache.size(), 16u);
}

}  // namespace
}  // namespace sc::service
