#include <gtest/gtest.h>

#include "common/bytes.h"
#include "opt/memory_usage.h"
#include "opt/optimizer.h"
#include "sim/cluster.h"
#include "sim/device.h"
#include "sim/lru_cache.h"
#include "sim/refresh_sim.h"
#include "test_util.h"

namespace sc::sim {
namespace {

graph::Graph MbGraph() {
  // Figure-7 topology with MB-scale sizes and compute costs, annotated
  // with paper-testbed speedup scores.
  graph::Graph g = test::Figure7Graph();
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    g.mutable_node(v).size_bytes *= 10 * kMB;  // 100GB node -> 1GB
    g.mutable_node(v).compute_seconds = 0.2;
    g.mutable_node(v).base_input_bytes = 50 * kMB;
  }
  cost::SpeedupEstimator{cost::CostModel{}}.AnnotateGraph(&g);
  return g;
}

SimOptions DefaultOptions(std::int64_t budget) {
  SimOptions options;
  options.budget = budget;
  return options;
}

TEST(FifoChannelTest, SerializesWork) {
  FifoChannel channel;
  EXPECT_DOUBLE_EQ(channel.Submit(0.0, 2.0), 2.0);
  // Submitted at t=1 while busy until 2: starts at 2, ends at 5.
  EXPECT_DOUBLE_EQ(channel.Submit(1.0, 3.0), 5.0);
  EXPECT_DOUBLE_EQ(channel.QueueDelay(3.0), 2.0);
  EXPECT_DOUBLE_EQ(channel.QueueDelay(10.0), 0.0);
  channel.Reset();
  EXPECT_DOUBLE_EQ(channel.free_at(), 0.0);
}

TEST(RefreshSimTest, EmptyFlagsEqualsNoOpt) {
  const graph::Graph g = MbGraph();
  const SimOptions options = DefaultOptions(0);
  opt::Plan plan;
  plan.order = graph::KahnTopologicalOrder(g);
  plan.flags = opt::EmptyFlags(g.num_nodes());
  const RunResult a = SimulateRun(g, plan, options);
  const RunResult b = SimulateNoOpt(g, options);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_DOUBLE_EQ(a.total_read_seconds, b.total_read_seconds);
}

TEST(RefreshSimTest, FlaggingNeverSlowsDown) {
  const graph::Graph g = MbGraph();
  const SimOptions options = DefaultOptions(2 * kGB);
  const opt::Optimizer optimizer;
  const auto result = optimizer.Optimize(g, options.budget);
  const double optimized = SimulateRun(g, result.plan, options).makespan;
  const double baseline = SimulateNoOpt(g, options).makespan;
  EXPECT_LE(optimized, baseline);
  EXPECT_GT(SpeedupOverNoOpt(g, result.plan, options), 1.0);
}

TEST(RefreshSimTest, PeakMemoryMatchesOptimizerModel) {
  const graph::Graph g = MbGraph();
  const SimOptions options = DefaultOptions(2 * kGB);
  const opt::Optimizer optimizer;
  const auto result = optimizer.Optimize(g, options.budget);
  const RunResult run = SimulateRun(g, result.plan, options);
  // The simulator's peak can exceed the slot-model peak only via
  // materialization lag; it must never exceed the budget for a valid plan
  // in which writes finish before release.
  EXPECT_GE(run.peak_memory,
            opt::PeakMemoryUsage(g, result.plan.order, result.plan.flags));
  EXPECT_FALSE(run.exceeded_budget);
}

TEST(RefreshSimTest, MemoryReadsFasterThanDisk) {
  const graph::Graph g = MbGraph();
  const SimOptions options = DefaultOptions(4 * kGB);
  opt::Plan all;
  all.order = graph::KahnTopologicalOrder(g);
  all.flags = opt::FlagSet(g.num_nodes(), true);
  const RunResult flagged = SimulateRun(g, all, options);
  const RunResult baseline = SimulateNoOpt(g, options);
  EXPECT_LT(flagged.total_read_seconds, baseline.total_read_seconds);
}

TEST(RefreshSimTest, BackgroundWritesOverlapButCountInMakespan) {
  // One producer, one cheap consumer: with background materialization the
  // makespan is bounded below by the write completing.
  graph::Graph g;
  const auto a = g.AddNode("a", 500 * kMB, 1.0);
  const auto b = g.AddNode("b", kMB, 1.0);
  g.AddEdge(a, b);
  g.mutable_node(a).compute_seconds = 0.1;
  g.mutable_node(b).compute_seconds = 0.1;
  SimOptions options = DefaultOptions(kGB);
  opt::Plan plan;
  plan.order = graph::Order::FromSequence({0, 1});
  plan.flags = opt::MakeFlags(2, {0});
  const RunResult run = SimulateRun(g, plan, options);
  const cost::CostModel model(options.device);
  EXPECT_GE(run.makespan, model.DiskWriteSeconds(500 * kMB));
  // But the downstream node did not wait for it: its read came from
  // memory.
  EXPECT_LT(run.per_node[b].read_seconds,
            model.DiskReadSeconds(500 * kMB));
}

TEST(RefreshSimTest, SynchronousMaterializationSlower) {
  const graph::Graph g = MbGraph();
  SimOptions background = DefaultOptions(4 * kGB);
  SimOptions blocking = background;
  blocking.background_materialize = false;
  opt::Plan all;
  all.order = graph::KahnTopologicalOrder(g);
  all.flags = opt::FlagSet(g.num_nodes(), true);
  EXPECT_LE(SimulateRun(g, all, background).makespan,
            SimulateRun(g, all, blocking).makespan);
}

TEST(RefreshSimTest, MoreBudgetNeverHurts) {
  const graph::Graph g = MbGraph();
  const opt::Optimizer optimizer;
  double previous = SimulateNoOpt(g, DefaultOptions(0)).makespan;
  for (const std::int64_t budget :
       {100 * kMB, 500 * kMB, 1 * kGB, 2 * kGB, 4 * kGB}) {
    const auto result = optimizer.Optimize(g, budget);
    const double makespan =
        SimulateRun(g, result.plan, DefaultOptions(budget)).makespan;
    EXPECT_LE(makespan, previous * 1.0001) << FormatBytes(budget);
    previous = makespan;
  }
}

TEST(LruCacheTest, EvictsLeastRecentlyUsed) {
  LruCache cache(100);
  cache.Insert(1, 40);
  cache.Insert(2, 40);
  EXPECT_TRUE(cache.Lookup(1));  // refresh 1; 2 becomes LRU
  cache.Insert(3, 40);           // evicts 2
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_FALSE(cache.Contains(2));
  EXPECT_TRUE(cache.Contains(3));
  EXPECT_EQ(cache.used_bytes(), 80);
}

TEST(LruCacheTest, OversizeEntriesNotCached) {
  LruCache cache(10);
  cache.Insert(1, 50);
  EXPECT_FALSE(cache.Contains(1));
  EXPECT_EQ(cache.used_bytes(), 0);
}

TEST(LruCacheTest, ReinsertUpdatesSize) {
  LruCache cache(100);
  cache.Insert(1, 30);
  cache.Insert(1, 60);
  EXPECT_EQ(cache.used_bytes(), 60);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(LruBaselineTest, ZeroCacheEqualsNoOpt) {
  const graph::Graph g = MbGraph();
  const SimOptions options = DefaultOptions(0);
  const RunResult lru = SimulateLruBaseline(g, 0, options);
  const RunResult noopt = SimulateNoOpt(g, options);
  EXPECT_NEAR(lru.makespan, noopt.makespan, 1e-9);
}

TEST(LruBaselineTest, CacheHelpsButWritesStillBlock) {
  const graph::Graph g = MbGraph();
  const SimOptions options = DefaultOptions(0);
  const RunResult lru = SimulateLruBaseline(g, 8 * kGB, options);
  const RunResult noopt = SimulateNoOpt(g, options);
  EXPECT_LT(lru.total_read_seconds, noopt.total_read_seconds);
  // Writes unchanged: the cache does not short-circuit persistence.
  EXPECT_NEAR(lru.total_write_seconds, noopt.total_write_seconds, 1e-9);
}

TEST(LruBaselineTest, ScWinsOverLruAtSameBudget) {
  // With the same extra memory, S/C (which also reorders and removes
  // blocking writes) should beat the LRU result cache (paper Figure 9).
  const graph::Graph g = MbGraph();
  const std::int64_t budget = 2 * kGB;
  const SimOptions options = DefaultOptions(budget);
  const opt::Optimizer optimizer;
  const auto result = optimizer.Optimize(g, budget);
  const double sc = SimulateRun(g, result.plan, options).makespan;
  const double lru = SimulateLruBaseline(g, budget, options).makespan;
  EXPECT_LT(sc, lru);
}

TEST(ClusterTest, MoreWorkersFasterRuntime) {
  const graph::Graph g = MbGraph();
  const ClusterModel cluster;
  const SimOptions base = DefaultOptions(kGB);
  double previous = 1e18;
  for (int workers = 1; workers <= 5; ++workers) {
    const SimOptions scaled = cluster.Scale(base, workers);
    const double makespan = SimulateNoOpt(g, scaled).makespan;
    EXPECT_LT(makespan, previous);
    previous = makespan;
  }
}

TEST(ClusterTest, SpeedupStaysRoughlyFlat) {
  // Paper Table V: S/C's relative speedup is insensitive to worker count.
  const graph::Graph g = MbGraph();
  const ClusterModel cluster;
  const opt::Optimizer optimizer;
  const std::int64_t budget = 2 * kGB;
  const auto result = optimizer.Optimize(g, budget);
  std::vector<double> speedups;
  for (int workers = 1; workers <= 5; ++workers) {
    const SimOptions scaled = cluster.Scale(DefaultOptions(budget), workers);
    speedups.push_back(SpeedupOverNoOpt(g, result.plan, scaled));
  }
  const auto [lo, hi] =
      std::minmax_element(speedups.begin(), speedups.end());
  EXPECT_LT(*hi / *lo, 1.5);
  EXPECT_GT(*lo, 1.0);
}

}  // namespace
}  // namespace sc::sim
