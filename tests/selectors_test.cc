#include <gtest/gtest.h>

#include "opt/memory_usage.h"
#include "opt/selectors.h"
#include "test_util.h"

namespace sc::opt {
namespace {

TEST(SelectorsTest, ToStringNames) {
  EXPECT_EQ(ToString(SelectorMethod::kMkp), "MKP");
  EXPECT_EQ(ToString(SelectorMethod::kGreedy), "Greedy");
  EXPECT_EQ(ToString(SelectorMethod::kRandom), "Random");
  EXPECT_EQ(ToString(SelectorMethod::kRatio), "Ratio");
}

TEST(GreedySelectorTest, FlagsInExecutionOrder) {
  const graph::Graph g = test::Figure7Graph();
  const graph::Order tau1 = graph::Order::FromSequence({0, 1, 2, 3, 4, 5});
  const FlagSet flags = SelectGreedy(g, tau1, /*budget=*/100);
  EXPECT_TRUE(IsFeasible(g, tau1, flags, 100));
  // Greedy flags v1 first, which then blocks v2 (overlap) and v3.
  EXPECT_TRUE(flags[0]);
  EXPECT_FALSE(flags[1]);
  EXPECT_FALSE(flags[2]);
}

TEST(GreedySelectorTest, SkipsOversizeNodes) {
  graph::Graph g;
  g.AddNode("huge", 1000, 50.0);
  g.AddNode("ok", 10, 5.0);
  const graph::Order order = graph::KahnTopologicalOrder(g);
  const FlagSet flags = SelectGreedy(g, order, /*budget=*/100);
  EXPECT_FALSE(flags[0]);
  EXPECT_TRUE(flags[1]);
}

TEST(RandomSelectorTest, DeterministicForSeed) {
  const graph::Graph g = test::RandomDag(20, 4);
  const graph::Order order = graph::KahnTopologicalOrder(g);
  EXPECT_EQ(SelectRandom(g, order, 100, 9), SelectRandom(g, order, 100, 9));
}

TEST(RandomSelectorTest, FeasibleAcrossSeeds) {
  const graph::Graph g = test::RandomDag(25, 2);
  const graph::Order order = graph::KahnTopologicalOrder(g);
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const FlagSet flags = SelectRandom(g, order, 120, seed);
    EXPECT_TRUE(IsFeasible(g, order, flags, 120)) << "seed " << seed;
  }
}

TEST(RatioSelectorTest, PrefersHighDensityNodes) {
  graph::Graph g;
  // Low density big node vs high density small nodes; budget fits either
  // the big one or both small ones.
  const auto big = g.AddNode("big", 100, 60.0);    // density 0.6
  const auto s1 = g.AddNode("s1", 50, 50.0);       // density 1.0
  const auto s2 = g.AddNode("s2", 50, 45.0);       // density 0.9
  const auto sink = g.AddNode("sink", 1, 0.0);
  g.AddEdge(big, sink);
  g.AddEdge(s1, sink);
  g.AddEdge(s2, sink);
  const graph::Order order = graph::KahnTopologicalOrder(g);
  const FlagSet flags = SelectRatio(g, order, /*budget=*/100);
  EXPECT_TRUE(flags[s1]);
  EXPECT_TRUE(flags[s2]);
  EXPECT_FALSE(flags[big]);
}

TEST(RatioSelectorTest, FeasibleOnRandomDags) {
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    const graph::Graph g = test::RandomDag(22, seed);
    const graph::Order order = graph::KahnTopologicalOrder(g);
    const FlagSet flags = SelectRatio(g, order, 100);
    EXPECT_TRUE(IsFeasible(g, order, flags, 100)) << seed;
  }
}

TEST(SelectFlagsTest, DispatchMatchesDirectCalls) {
  const graph::Graph g = test::Figure7Graph();
  const graph::Order order = graph::KahnTopologicalOrder(g);
  EXPECT_EQ(SelectFlags(SelectorMethod::kGreedy, g, order, 100, 1),
            SelectGreedy(g, order, 100));
  EXPECT_EQ(SelectFlags(SelectorMethod::kRatio, g, order, 100, 1),
            SelectRatio(g, order, 100));
  EXPECT_EQ(SelectFlags(SelectorMethod::kRandom, g, order, 100, 5),
            SelectRandom(g, order, 100, 5));
}

TEST(SelectorsTest, MkpDominatesHeuristicsOnFigure7) {
  const graph::Graph g = test::Figure7Graph();
  const graph::Order order = graph::Order::FromSequence({0, 1, 3, 2, 4, 5});
  const double mkp =
      TotalScore(g, SelectFlags(SelectorMethod::kMkp, g, order, 100, 1));
  for (const auto method :
       {SelectorMethod::kGreedy, SelectorMethod::kRandom,
        SelectorMethod::kRatio}) {
    EXPECT_GE(mkp, TotalScore(g, SelectFlags(method, g, order, 100, 1)))
        << ToString(method);
  }
}

TEST(SelectorsTest, ZeroBudgetFlagsNothing) {
  const graph::Graph g = test::Figure7Graph();
  const graph::Order order = graph::KahnTopologicalOrder(g);
  for (const auto method :
       {SelectorMethod::kGreedy, SelectorMethod::kRandom,
        SelectorMethod::kRatio, SelectorMethod::kMkp}) {
    const FlagSet flags = SelectFlags(method, g, order, 0, 1);
    EXPECT_TRUE(FlaggedNodes(flags).empty()) << ToString(method);
  }
}

}  // namespace
}  // namespace sc::opt
