#include <gtest/gtest.h>

#include "common/bytes.h"
#include "opt/memory_usage.h"
#include "opt/optimizer.h"
#include "test_util.h"

namespace sc::opt {
namespace {

TEST(ValidatePlanTest, AcceptsOptimizerOutput) {
  const graph::Graph g = test::Figure7Graph();
  const Optimizer optimizer;
  const AlternatingResult result = optimizer.Optimize(g, 100);
  std::string error;
  EXPECT_TRUE(ValidatePlan(g, result.plan, 100, &error)) << error;
}

TEST(ValidatePlanTest, RejectsWrongFlagSize) {
  const graph::Graph g = test::DiamondGraph();
  Plan plan;
  plan.order = graph::KahnTopologicalOrder(g);
  plan.flags = EmptyFlags(2);  // wrong length
  std::string error;
  EXPECT_FALSE(ValidatePlan(g, plan, 100, &error));
}

TEST(ValidatePlanTest, RejectsNonTopologicalOrder) {
  const graph::Graph g = test::DiamondGraph();
  Plan plan;
  plan.order = graph::Order::FromSequence({3, 2, 1, 0});
  plan.flags = EmptyFlags(4);
  std::string error;
  EXPECT_FALSE(ValidatePlan(g, plan, 100, &error));
  EXPECT_NE(error.find("topological"), std::string::npos);
}

TEST(ValidatePlanTest, RejectsOversizeFlaggedNode) {
  graph::Graph g;
  g.AddNode("huge", 500, 1.0);
  Plan plan;
  plan.order = graph::Order::FromSequence({0});
  plan.flags = MakeFlags(1, {0});
  std::string error;
  EXPECT_FALSE(ValidatePlan(g, plan, 100, &error));
  EXPECT_NE(error.find("exceeds"), std::string::npos);
}

TEST(ValidatePlanTest, RejectsPeakViolation) {
  const graph::Graph g = test::Figure7Graph();
  Plan plan;
  plan.order = graph::Order::FromSequence({0, 1, 2, 3, 4, 5});
  plan.flags = MakeFlags(6, {0, 2});  // 200 live at once
  std::string error;
  EXPECT_FALSE(ValidatePlan(g, plan, 100, &error));
  EXPECT_NE(error.find("peak"), std::string::npos);
}

TEST(OptimizerTest, OptimizeWithEstimatorAnnotatesScores) {
  graph::Graph g;
  const auto a = g.AddNode("a", 100 * kMB);
  const auto b = g.AddNode("b", kMB);
  g.AddEdge(a, b);
  const cost::SpeedupEstimator estimator{cost::CostModel{}};
  const Optimizer optimizer;
  const AlternatingResult result =
      optimizer.OptimizeWithEstimator(&g, /*budget=*/kGB, estimator);
  EXPECT_GT(g.node(a).speedup_score, 0.0);
  EXPECT_TRUE(result.plan.flags[a]);
}

TEST(DescribePlanTest, MentionsOrderAndFlags) {
  const graph::Graph g = test::Figure7Graph();
  const Optimizer optimizer;
  const AlternatingResult result = optimizer.Optimize(g, 100);
  const std::string text = DescribePlan(g, result.plan);
  EXPECT_NE(text.find("execution order:"), std::string::npos);
  EXPECT_NE(text.find("v1*"), std::string::npos);  // v1 flagged
  EXPECT_NE(text.find("peak memory"), std::string::npos);
}

TEST(OptimizerTest, OptionsArePropagated) {
  AlternatingOptions options;
  options.selector = SelectorMethod::kGreedy;
  const Optimizer optimizer(options);
  EXPECT_EQ(optimizer.options().selector, SelectorMethod::kGreedy);
}


TEST(ExplainPlanTest, ClassifiesEveryNode) {
  graph::Graph g;
  const auto big = g.AddNode("big", 500, 10.0);
  const auto zero = g.AddNode("zero", 10, 0.0);
  const auto kept = g.AddNode("kept", 10, 5.0);
  const auto loser = g.AddNode("loser", 90, 1.0);
  g.AddEdge(big, kept);
  g.AddEdge(zero, kept);
  g.AddEdge(kept, loser);
  const std::int64_t budget = 100;
  const AlternatingResult result = Optimizer{}.Optimize(g, budget);
  const auto rows = ExplainPlan(g, result.plan, budget);
  ASSERT_EQ(rows.size(), 4u);
  auto decision_of = [&](graph::NodeId v) {
    for (const auto& row : rows) {
      if (row.node == v) return row.decision;
    }
    return NodeDecision::kBudgetContention;
  };
  EXPECT_EQ(decision_of(big), NodeDecision::kOversize);
  EXPECT_EQ(decision_of(zero), NodeDecision::kZeroScore);
  EXPECT_EQ(decision_of(kept), NodeDecision::kFlagged);
}

TEST(ExplainPlanTest, FlaggedRowsCarryResidency) {
  const graph::Graph g = test::Figure7Graph();
  const AlternatingResult result = Optimizer{}.Optimize(g, 100);
  for (const auto& row : ExplainPlan(g, result.plan, 100)) {
    if (row.decision == NodeDecision::kFlagged) {
      EXPECT_GE(row.release_slot, row.slot);
    } else {
      EXPECT_EQ(row.release_slot, -1);
    }
    EXPECT_GE(row.slot, 0);
  }
}

TEST(ExplainPlanTest, RowsFollowExecutionOrder) {
  const graph::Graph g = test::Figure8Graph();
  const AlternatingResult result = Optimizer{}.Optimize(g, 100);
  const auto rows = ExplainPlan(g, result.plan, 100);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i].slot, static_cast<std::int32_t>(i));
  }
}

TEST(ExplainPlanTest, FormatMentionsDecisions) {
  const graph::Graph g = test::Figure7Graph();
  const AlternatingResult result = Optimizer{}.Optimize(g, 100);
  const std::string text =
      FormatExplanation(g, ExplainPlan(g, result.plan, 100));
  EXPECT_NE(text.find("kept in memory"), std::string::npos);
  EXPECT_NE(text.find("v1"), std::string::npos);
}

TEST(ExplainPlanTest, DecisionNames) {
  EXPECT_EQ(ToString(NodeDecision::kFlagged), "kept in memory");
  EXPECT_EQ(ToString(NodeDecision::kOversize), "exceeds Memory Catalog");
  EXPECT_EQ(ToString(NodeDecision::kZeroScore), "no speedup from caching");
  EXPECT_EQ(ToString(NodeDecision::kBudgetContention),
            "lost to other nodes");
}

// ---------------------------------------------------------------------------
// WidenStages (stage-aware ordering post-pass)
// ---------------------------------------------------------------------------

/// Two independent chains a0->a1->a2 and b0->b1->b2.
graph::Graph TwoChains(std::int64_t node_size = 0) {
  graph::Graph g;
  for (char c : {'a', 'b'}) {
    graph::NodeId prev = graph::kInvalidNode;
    for (int d = 0; d < 3; ++d) {
      const graph::NodeId v = g.AddNode(std::string(1, c) +
                                            std::to_string(d),
                                        node_size, 1.0);
      if (prev != graph::kInvalidNode) g.AddEdge(prev, v);
      prev = v;
    }
  }
  return g;
}

TEST(WidenStagesTest, InterleavesChainsStageMajor) {
  const graph::Graph g = TwoChains();
  Plan plan;
  // Depth-first order: all of chain a, then all of chain b.
  plan.order = graph::Order::FromSequence({0, 1, 2, 3, 4, 5});
  plan.flags = EmptyFlags(g.num_nodes());

  const Plan widened = WidenStages(g, plan);
  // Stage-major: both stage-0 roots first, then both stage-1 nodes, …
  EXPECT_EQ(widened.order.sequence,
            (std::vector<graph::NodeId>{0, 3, 1, 4, 2, 5}));
  EXPECT_TRUE(graph::IsTopologicalOrder(g, widened.order));
  EXPECT_EQ(widened.flags, plan.flags);
}

TEST(WidenStagesTest, StrictGateRejectsPeakGrowth) {
  // Flagging both chain roots: depth-first keeps one root resident at a
  // time (peak 100); stage-major would keep both (peak 200). Without a
  // budget the memory-equivalence gate must keep the original order.
  const graph::Graph g = TwoChains(/*node_size=*/100);
  Plan plan;
  plan.order = graph::Order::FromSequence({0, 1, 2, 3, 4, 5});
  plan.flags = MakeFlags(g.num_nodes(), {0, 3});
  const std::int64_t before = PeakMemoryUsage(g, plan.order, plan.flags);

  const Plan widened = WidenStages(g, plan);
  EXPECT_EQ(widened.order.sequence, plan.order.sequence);
  EXPECT_EQ(PeakMemoryUsage(g, widened.order, widened.flags), before);

  // A budget that cannot absorb the wider peak rejects too.
  EXPECT_EQ(WidenStages(g, plan, 150).order.sequence,
            plan.order.sequence);
}

TEST(WidenStagesTest, BudgetGateAcceptsWiderPeakWithinBudget) {
  const graph::Graph g = TwoChains(/*node_size=*/100);
  Plan plan;
  plan.order = graph::Order::FromSequence({0, 1, 2, 3, 4, 5});
  plan.flags = MakeFlags(g.num_nodes(), {0, 3});

  const Plan widened = WidenStages(g, plan, /*budget=*/400);
  EXPECT_EQ(widened.order.sequence,
            (std::vector<graph::NodeId>{0, 3, 1, 4, 2, 5}));
  EXPECT_LE(PeakMemoryUsage(g, widened.order, widened.flags), 400);
}

TEST(WidenStagesTest, PreservesPeakOnOptimizedPlans) {
  const graph::Graph g = test::Figure7Graph();
  const AlternatingResult base = Optimizer{}.Optimize(g, 100);
  const Plan widened = WidenStages(g, base.plan);
  EXPECT_TRUE(graph::IsTopologicalOrder(g, widened.order));
  EXPECT_EQ(widened.flags, base.plan.flags);
  EXPECT_LE(PeakMemoryUsage(g, widened.order, widened.flags),
            PeakMemoryUsage(g, base.plan.order, base.plan.flags));
}

TEST(WidenStagesTest, AlternatingPostPassKeepsPlanValid) {
  const graph::Graph g = test::Figure7Graph();
  AlternatingOptions options;
  options.widen_stages = true;
  const AlternatingResult widened = AlternatingOptimize(g, 100, options);
  std::string error;
  EXPECT_TRUE(ValidatePlan(g, widened.plan, 100, &error)) << error;
  // The post-pass never touches the flag set or the objective.
  const AlternatingResult base = AlternatingOptimize(g, 100);
  EXPECT_EQ(widened.plan.flags, base.plan.flags);
  EXPECT_DOUBLE_EQ(widened.total_score, base.total_score);
}

// The ISSUE-4 satellite case: flagged mid-chain nodes make the *full*
// stage-major reorder co-resident (peak doubles, infeasible under the
// strict gate), but widening only the leading stage keeps the peak and
// still front-loads both roots for the lanes — prefix widening wins
// where all-or-nothing widening must give up.
TEST(WidenStagesTest, PrefixWideningWinsWhenFullIsInfeasible) {
  graph::Graph g = TwoChains();
  g.mutable_node(1).size_bytes = 100;  // a1
  g.mutable_node(4).size_bytes = 100;  // b1
  Plan plan;
  plan.order = graph::Order::FromSequence({0, 1, 2, 3, 4, 5});
  plan.flags = MakeFlags(g.num_nodes(), {1, 4});
  const std::int64_t before = PeakMemoryUsage(g, plan.order, plan.flags);
  ASSERT_EQ(before, 100);

  // Full widening would interleave a1/b1 residency: rejected.
  EXPECT_EQ(WidenStages(g, plan).order.sequence, plan.order.sequence);

  const Plan prefix = WidenStagesPrefix(g, plan);
  EXPECT_EQ(prefix.order.sequence,
            (std::vector<graph::NodeId>{0, 3, 1, 2, 4, 5}));
  EXPECT_TRUE(graph::IsTopologicalOrder(g, prefix.order));
  EXPECT_EQ(prefix.flags, plan.flags);
  EXPECT_EQ(PeakMemoryUsage(g, prefix.order, prefix.flags), before);
  // Same rejection/acceptance at an explicit budget below the full
  // reorder's 200-byte peak.
  EXPECT_EQ(WidenStagesPrefix(g, plan, 150).order.sequence,
            prefix.order.sequence);
}

TEST(WidenStagesTest, PrefixEqualsFullWhenFullIsFeasible) {
  const graph::Graph g = TwoChains();
  Plan plan;
  plan.order = graph::Order::FromSequence({0, 1, 2, 3, 4, 5});
  plan.flags = EmptyFlags(g.num_nodes());
  EXPECT_EQ(WidenStagesPrefix(g, plan).order.sequence,
            WidenStages(g, plan).order.sequence);
  // Already stage-major: returned unchanged.
  const Plan widened = WidenStagesPrefix(g, plan);
  EXPECT_EQ(WidenStagesPrefix(g, widened).order.sequence,
            widened.order.sequence);
}

// ---------------------------------------------------------------------------
// ReOptimizeWithResidency (cross-job sharing-aware pre-pass)
// ---------------------------------------------------------------------------

TEST(SharingPrepassTest, ResidentNodeYieldsItsBudgetToOthers) {
  // Two independent flag candidates; budget fits only one, and `a` wins
  // on score. With `a` already resident cross-job, flagging it saves
  // nothing — the knapsack budget must flow to `b`.
  graph::Graph g;
  const auto a = g.AddNode("a", 80, 10.0);
  const auto b = g.AddNode("b", 80, 5.0);
  const auto sink = g.AddNode("sink", 10, 0.0);
  g.AddEdge(a, sink);
  g.AddEdge(b, sink);
  const std::int64_t budget = 100;
  const AlternatingResult base = Optimizer{}.Optimize(g, budget);
  ASSERT_TRUE(base.plan.flags[a]);
  ASSERT_FALSE(base.plan.flags[b]);

  std::vector<bool> resident(3, false);
  resident[static_cast<std::size_t>(a)] = true;
  const AlternatingResult adjusted =
      ReOptimizeWithResidency(g, base.plan, budget, resident);
  EXPECT_FALSE(adjusted.plan.flags[a]);
  EXPECT_TRUE(adjusted.plan.flags[b]);
  std::string error;
  EXPECT_TRUE(ValidatePlan(g, adjusted.plan, budget, &error)) << error;
}

TEST(SharingPrepassTest, NoResidencyReturnsPriorUnchanged) {
  const graph::Graph g = test::Figure7Graph();
  const AlternatingResult base = Optimizer{}.Optimize(g, 100);
  const std::vector<bool> none(
      static_cast<std::size_t>(g.num_nodes()), false);
  const AlternatingResult same =
      ReOptimizeWithResidency(g, base.plan, 100, none);
  EXPECT_EQ(same.iterations, 0);
  EXPECT_EQ(same.plan.flags, base.plan.flags);
  EXPECT_EQ(same.plan.order.sequence, base.plan.order.sequence);
  // A mismatched residency vector is ignored, not trusted.
  const AlternatingResult mismatched =
      ReOptimizeWithResidency(g, base.plan, 100, {true});
  EXPECT_EQ(mismatched.plan.flags, base.plan.flags);
}

TEST(WidenStagesTest, ThrowsOnNonTopologicalOrder) {
  const graph::Graph g = TwoChains();
  Plan plan;
  plan.order = graph::Order::FromSequence({2, 1, 0, 5, 4, 3});
  plan.flags = EmptyFlags(g.num_nodes());
  EXPECT_THROW(WidenStages(g, plan), std::invalid_argument);
}

}  // namespace
}  // namespace sc::opt
