#include <gtest/gtest.h>

#include "engine/executor.h"

namespace sc::engine {
namespace {

TablePtr MakeSales() {
  std::vector<Column> cols;
  cols.push_back(Column::FromInts({1, 1, 2, 3, 3, 3}));
  cols.push_back(Column::FromDoubles({10, 20, 5, 1, 2, 3}));
  return std::make_shared<Table>(
      Table(Schema({Field{"item", DataType::kInt64},
                    Field{"amount", DataType::kFloat64}}),
            std::move(cols)));
}

TablePtr MakeItems() {
  std::vector<Column> cols;
  cols.push_back(Column::FromInts({1, 2, 3}));
  cols.push_back(Column::FromStrings({"widget", "gadget", "gizmo"}));
  return std::make_shared<Table>(
      Table(Schema({Field{"item_id", DataType::kInt64},
                    Field{"item_name", DataType::kString}}),
            std::move(cols)));
}

std::unordered_map<std::string, TablePtr> MakeCatalog() {
  return {{"sales", MakeSales()}, {"items", MakeItems()}};
}

TEST(MapResolverTest, ReserveKeepsResolvesValidAcrossPuts) {
  MapResolver resolver;
  resolver.Reserve(64);
  resolver.Put("sales", MakeSales());
  const TablePtr before = resolver.Resolve("sales");
  for (int i = 0; i < 63; ++i) {
    resolver.Put("t" + std::to_string(i), MakeItems());
  }
  EXPECT_EQ(before->num_rows(), 6u);
  EXPECT_TRUE(resolver.Contains("t62"));
  EXPECT_EQ(resolver.Resolve("sales"), before);
}

TEST(ExecutorTest, ScanReturnsTable) {
  MapResolver resolver(MakeCatalog());
  const Table out = ExecutePlan(*Scan("sales"), resolver);
  EXPECT_EQ(out.num_rows(), 6u);
}

TEST(ExecutorTest, UnknownTableThrows) {
  MapResolver resolver(MakeCatalog());
  EXPECT_THROW(ExecutePlan(*Scan("nope"), resolver), std::out_of_range);
}

TEST(ExecutorTest, FilterProjectPipeline) {
  MapResolver resolver(MakeCatalog());
  const auto plan = Project(
      Filter(Scan("sales"), Ge(Col("amount"), Lit(5.0))),
      {NamedExpr{"item", Col("item")},
       NamedExpr{"half", Div(Col("amount"), Lit(2.0))}});
  const Table out = ExecutePlan(*plan, resolver);
  EXPECT_EQ(out.num_rows(), 3u);
  EXPECT_DOUBLE_EQ(out.column("half").GetDouble(0), 5.0);
}

TEST(ExecutorTest, JoinAggregateSortLimit) {
  MapResolver resolver(MakeCatalog());
  const auto plan = Limit(
      Sort(Aggregate(
               HashJoin(Scan("sales"), Scan("items"), {"item"},
                        {"item_id"}),
               {"item_name"}, {SumOf(Col("amount"), "total")}),
           {"total"}, {true}),
      2);
  const Table out = ExecutePlan(*plan, resolver);
  ASSERT_EQ(out.num_rows(), 2u);
  EXPECT_EQ(out.column("item_name").GetString(0), "widget");  // 30
  EXPECT_DOUBLE_EQ(out.column("total").GetDouble(0), 30.0);
  EXPECT_EQ(out.column("item_name").GetString(1), "gizmo");  // 6
}

TEST(ExecutorTest, UnionAllPlan) {
  MapResolver resolver(MakeCatalog());
  const auto plan = UnionAll(Scan("sales"), Scan("sales"));
  EXPECT_EQ(ExecutePlan(*plan, resolver).num_rows(), 12u);
}

TEST(ExecutorTest, FnResolverDelegates) {
  int calls = 0;
  FnResolver resolver([&](const std::string& name) -> TablePtr {
    ++calls;
    EXPECT_EQ(name, "sales");
    return MakeSales();
  });
  const auto plan = UnionAll(Scan("sales"), Scan("sales"));
  EXPECT_EQ(ExecutePlan(*plan, resolver).num_rows(), 12u);
  EXPECT_EQ(calls, 2);
}

TEST(PlanTest, ReferencedTablesCollectsScans) {
  const auto plan = HashJoin(Scan("a"), Filter(Scan("b"), Lit(std::int64_t{1})),
                             {"x"}, {"y"});
  const auto tables = plan->ReferencedTables();
  EXPECT_EQ(tables.size(), 2u);
  EXPECT_NE(std::find(tables.begin(), tables.end(), "a"), tables.end());
  EXPECT_NE(std::find(tables.begin(), tables.end(), "b"), tables.end());
}

TEST(PlanTest, ToStringShowsTree) {
  const auto plan =
      Limit(Sort(Scan("t"), {"k"}, {false}), 10);
  const std::string s = plan->ToString();
  EXPECT_NE(s.find("Limit(10)"), std::string::npos);
  EXPECT_NE(s.find("Sort(k)"), std::string::npos);
  EXPECT_NE(s.find("Scan(t)"), std::string::npos);
}

}  // namespace
}  // namespace sc::engine
