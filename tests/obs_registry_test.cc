#include "obs/registry.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace sc::obs {
namespace {

TEST(Counter, IncrementsAtomically) {
  Counter counter;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < 10000; ++i) counter.Increment();
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.value(), 40000);
}

TEST(Gauge, SetAndAdd) {
  Gauge gauge;
  EXPECT_DOUBLE_EQ(gauge.value(), 0.0);
  gauge.Set(2.5);
  EXPECT_DOUBLE_EQ(gauge.value(), 2.5);
  gauge.Add(1.5);
  EXPECT_DOUBLE_EQ(gauge.value(), 4.0);
  gauge.Add(-6.0);
  EXPECT_DOUBLE_EQ(gauge.value(), -2.0);
}

TEST(Gauge, ConcurrentAddLosesNothing) {
  Gauge gauge;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&gauge] {
      for (int i = 0; i < 5000; ++i) gauge.Add(1.0);
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_DOUBLE_EQ(gauge.value(), 20000.0);
}

TEST(Histogram, CumulativeBucketsAndSum) {
  Histogram h({0.01, 0.1, 1.0});
  h.Observe(0.005);  // <= 0.01
  h.Observe(0.05);   // <= 0.1
  h.Observe(0.05);
  h.Observe(0.5);  // <= 1.0
  h.Observe(5.0);  // +Inf only
  EXPECT_EQ(h.count(), 5);
  EXPECT_EQ(h.cumulative(0), 1);
  EXPECT_EQ(h.cumulative(1), 3);
  EXPECT_EQ(h.cumulative(2), 4);
  EXPECT_EQ(h.cumulative(3), 5);  // +Inf bucket == count
  EXPECT_NEAR(h.sum(), 5.605, 1e-6);
}

TEST(Registry, SameNameAndLabelsReturnsSameSeries) {
  Registry registry;
  Counter* a = registry.GetCounter("x_total", "help");
  Counter* b = registry.GetCounter("x_total", "help");
  EXPECT_EQ(a, b);
  Counter* labeled =
      registry.GetCounter("x_total", "help", {{"tenant", "t0"}});
  EXPECT_NE(a, labeled);
}

TEST(Registry, PrometheusGoldenText) {
  Registry registry;
  registry.GetCounter("sc_jobs_total", "Finished jobs",
                      {{"tenant", "a"}, {"status", "ok"}})
      ->Increment(3);
  registry.GetGauge("sc_queue_depth", "Queued jobs")->Set(2);
  Histogram* h = registry.GetHistogram("sc_wait_seconds", "Wait time", {},
                                       {0.5, 1.0});
  h->Observe(0.25);
  h->Observe(0.75);
  h->Observe(2.0);
  registry.RegisterCallbackGauge("sc_live", "Live value", {},
                                 [] { return 7.0; });

  // Families sorted by name; labels sorted by key; histogram exposes
  // cumulative le-buckets plus _sum/_count. This exact text is the
  // documented exposition contract.
  const std::string expected =
      "# HELP sc_jobs_total Finished jobs\n"
      "# TYPE sc_jobs_total counter\n"
      "sc_jobs_total{status=\"ok\",tenant=\"a\"} 3\n"
      "# HELP sc_live Live value\n"
      "# TYPE sc_live gauge\n"
      "sc_live 7\n"
      "# HELP sc_queue_depth Queued jobs\n"
      "# TYPE sc_queue_depth gauge\n"
      "sc_queue_depth 2\n"
      "# HELP sc_wait_seconds Wait time\n"
      "# TYPE sc_wait_seconds histogram\n"
      "sc_wait_seconds_bucket{le=\"0.5\"} 1\n"
      "sc_wait_seconds_bucket{le=\"1\"} 2\n"
      "sc_wait_seconds_bucket{le=\"+Inf\"} 3\n"
      "sc_wait_seconds_sum 3\n"
      "sc_wait_seconds_count 3\n";
  EXPECT_EQ(ToPrometheusText(registry), expected);
}

TEST(Registry, SnapshotAndDelta) {
  Registry registry;
  Counter* jobs = registry.GetCounter("jobs_total", "jobs");
  Histogram* wait =
      registry.GetHistogram("wait_seconds", "wait", {}, {1.0});
  jobs->Increment(2);
  wait->Observe(0.5);
  const auto before = registry.Snapshot();
  EXPECT_DOUBLE_EQ(before.at("jobs_total"), 2.0);
  EXPECT_DOUBLE_EQ(before.at("wait_seconds_count"), 1.0);

  jobs->Increment(3);
  wait->Observe(0.25);
  wait->Observe(0.25);
  registry.GetGauge("new_gauge", "appears later")->Set(9.0);
  const auto delta = SnapshotDelta(before, registry.Snapshot());
  EXPECT_DOUBLE_EQ(delta.at("jobs_total"), 3.0);
  EXPECT_DOUBLE_EQ(delta.at("wait_seconds_count"), 2.0);
  EXPECT_NEAR(delta.at("wait_seconds_sum"), 0.5, 1e-9);
  // Keys only in `after` report their full value.
  EXPECT_DOUBLE_EQ(delta.at("new_gauge"), 9.0);
}

TEST(Registry, CallbackGaugeReadsLiveValue) {
  Registry registry;
  double value = 1.0;
  registry.RegisterCallbackGauge("live", "", {}, [&value] { return value; });
  EXPECT_DOUBLE_EQ(registry.Snapshot().at("live"), 1.0);
  value = 42.0;
  EXPECT_DOUBLE_EQ(registry.Snapshot().at("live"), 42.0);
}

}  // namespace
}  // namespace sc::obs
