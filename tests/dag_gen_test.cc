#include <gtest/gtest.h>

#include <cmath>

#include "graph/topo.h"
#include "workload/dag_gen.h"
#include "workload/markov.h"

namespace sc::workload {
namespace {

TEST(MarkovTest, OpNamesReadable) {
  EXPECT_EQ(ToString(OpKind::kScan), "SCAN");
  EXPECT_EQ(ToString(OpKind::kJoin), "JOIN");
  EXPECT_EQ(ToString(OpKind::kAggregate), "AGG");
}

TEST(MarkovTest, RowsAreNormalized) {
  const MarkovOpChain chain = MarkovOpChain::TpcdsTrained();
  for (const auto& row : chain.transitions()) {
    double total = 0;
    for (double p : row) total += p;
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(MarkovTest, RejectsInvalidMatrices) {
  MarkovOpChain::Matrix negative{};
  negative[0][0] = -1.0;
  EXPECT_THROW(MarkovOpChain{negative}, std::invalid_argument);
  MarkovOpChain::Matrix zeros{};
  EXPECT_THROW(MarkovOpChain{zeros}, std::invalid_argument);
}

TEST(MarkovTest, NextSamplesFromRow) {
  const MarkovOpChain chain = MarkovOpChain::TpcdsTrained();
  Rng rng(1);
  // Sample many transitions from SCAN; all op kinds must be valid and
  // JOIN should be the most common successor (weight 0.44).
  std::array<int, kNumOpKinds> counts{};
  for (int i = 0; i < 2000; ++i) {
    counts[static_cast<std::size_t>(chain.Next(OpKind::kScan, rng))]++;
  }
  EXPECT_GT(counts[static_cast<std::size_t>(OpKind::kJoin)], 600);
}

TEST(MarkovTest, AggregatesShrinkOutput) {
  Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    const std::int64_t out =
        DeriveOutputSize(OpKind::kAggregate, 1'000'000, rng);
    EXPECT_LE(out, 50'000);
    EXPECT_GE(out, 1);
  }
}

TEST(MarkovTest, FiltersNeverGrowOutput) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_LE(DeriveOutputSize(OpKind::kFilter, 1'000'000, rng),
              600'000);
  }
}

class DagGenSizeTest : public testing::TestWithParam<std::int32_t> {};

TEST_P(DagGenSizeTest, ExactNodeCountAndAcyclic) {
  DagGenOptions options;
  options.num_nodes = GetParam();
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    options.seed = seed;
    const graph::Graph g = GenerateDag(options);
    EXPECT_EQ(g.num_nodes(), GetParam());
    std::string error;
    EXPECT_TRUE(g.Validate(&error)) << error;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, DagGenSizeTest,
                         testing::Values(1, 5, 10, 25, 50, 100));

TEST(DagGenTest, DeterministicPerSeed) {
  DagGenOptions options;
  options.num_nodes = 50;
  options.seed = 9;
  const graph::Graph a = GenerateDag(options);
  const graph::Graph b = GenerateDag(options);
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (graph::NodeId v = 0; v < a.num_nodes(); ++v) {
    EXPECT_EQ(a.node(v).size_bytes, b.node(v).size_bytes);
  }
}

TEST(DagGenTest, NonRootNodesHaveParents) {
  DagGenOptions options;
  options.num_nodes = 80;
  const graph::Graph g = GenerateDag(options);
  // First stage only: nodes with no parents must have positive base input
  // (they read base tables).
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    if (g.parents(v).empty()) {
      EXPECT_GT(g.node(v).base_input_bytes, 0);
    }
  }
}

TEST(DagGenTest, HeightTracksRatio) {
  DagGenOptions tall;
  tall.num_nodes = 64;
  tall.height_width_ratio = 4.0;
  DagGenOptions wide = tall;
  wide.height_width_ratio = 0.25;
  const auto tall_height = graph::LongestPathLength(GenerateDag(tall));
  const auto wide_height = graph::LongestPathLength(GenerateDag(wide));
  EXPECT_GT(tall_height, wide_height);
}

TEST(DagGenTest, MaxOutdegreeRespectedOnAverage) {
  DagGenOptions low;
  low.num_nodes = 60;
  low.max_outdegree = 1;
  DagGenOptions high = low;
  high.max_outdegree = 5;
  EXPECT_LT(GenerateDag(low).num_edges(), GenerateDag(high).num_edges());
}

TEST(DagGenTest, ScoresAnnotated) {
  DagGenOptions options;
  options.num_nodes = 40;
  const graph::Graph g = GenerateDag(options);
  bool any_positive = false;
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    if (g.node(v).speedup_score > 0) any_positive = true;
    EXPECT_GE(g.node(v).size_bytes, 0);
  }
  EXPECT_TRUE(any_positive);
}

TEST(DagGenTest, TableSizesPlausible) {
  const auto& sizes = Tpcds100GbTableSizes();
  ASSERT_FALSE(sizes.empty());
  std::int64_t total = 0;
  for (auto s : sizes) total += s;
  // Roughly 100GB total (facts dominate).
  EXPECT_GT(total, 80LL * 1000 * 1000 * 1000);
  EXPECT_LT(total, 120LL * 1000 * 1000 * 1000);
}

}  // namespace
}  // namespace sc::workload
