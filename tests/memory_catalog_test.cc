#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <tuple>
#include <vector>

#include "storage/memory_catalog.h"

namespace sc::storage {
namespace {

using engine::Column;
using engine::DataType;
using engine::Field;
using engine::Schema;
using engine::Table;

engine::TablePtr Tiny() {
  std::vector<Column> cols;
  cols.push_back(Column::FromInts({1}));
  return std::make_shared<Table>(
      Table(Schema({Field{"x", DataType::kInt64}}), std::move(cols)));
}

TEST(MemoryCatalogTest, PutGetRelease) {
  MemoryCatalog catalog(100);
  EXPECT_TRUE(catalog.Put("a", Tiny(), 40));
  EXPECT_NE(catalog.Get("a"), nullptr);
  EXPECT_TRUE(catalog.Contains("a"));
  EXPECT_EQ(catalog.used_bytes(), 40);
  catalog.Release("a");
  EXPECT_EQ(catalog.Get("a"), nullptr);
  EXPECT_EQ(catalog.used_bytes(), 0);
}

TEST(MemoryCatalogTest, BudgetStrictlyEnforced) {
  MemoryCatalog catalog(100);
  EXPECT_TRUE(catalog.Put("a", Tiny(), 60));
  EXPECT_FALSE(catalog.Put("b", Tiny(), 50));  // would exceed
  EXPECT_TRUE(catalog.Put("c", Tiny(), 40));   // exactly fits
  EXPECT_EQ(catalog.used_bytes(), 100);
}

TEST(MemoryCatalogTest, DuplicateNameRejected) {
  MemoryCatalog catalog(100);
  EXPECT_TRUE(catalog.Put("a", Tiny(), 10));
  EXPECT_FALSE(catalog.Put("a", Tiny(), 10));
  EXPECT_EQ(catalog.used_bytes(), 10);
}

TEST(MemoryCatalogTest, NegativeSizeRejected) {
  MemoryCatalog catalog(100);
  EXPECT_FALSE(catalog.Put("a", Tiny(), -5));
}

TEST(MemoryCatalogTest, PeakTracksHighWaterMark) {
  MemoryCatalog catalog(100);
  catalog.Put("a", Tiny(), 70);
  catalog.Release("a");
  catalog.Put("b", Tiny(), 30);
  EXPECT_EQ(catalog.peak_bytes(), 70);
  EXPECT_EQ(catalog.used_bytes(), 30);
}

TEST(MemoryCatalogTest, ReleaseUnknownIsNoOp) {
  MemoryCatalog catalog(100);
  catalog.Release("ghost");
  EXPECT_EQ(catalog.used_bytes(), 0);
}

TEST(MemoryCatalogTest, ClearDropsEverything) {
  MemoryCatalog catalog(100);
  catalog.Put("a", Tiny(), 10);
  catalog.Put("b", Tiny(), 20);
  catalog.Clear();
  EXPECT_EQ(catalog.size(), 0u);
  EXPECT_EQ(catalog.used_bytes(), 0);
  EXPECT_EQ(catalog.peak_bytes(), 30);  // peak survives Clear
}

TEST(MemoryCatalogTest, CountsHitsAndMisses) {
  MemoryCatalog catalog(100);
  catalog.Put("a", Tiny(), 10);
  EXPECT_NE(catalog.Get("a"), nullptr);
  EXPECT_NE(catalog.Get("a"), nullptr);
  EXPECT_EQ(catalog.Get("ghost"), nullptr);
  EXPECT_EQ(catalog.hits(), 2);
  EXPECT_EQ(catalog.misses(), 1);
  catalog.Clear();
  EXPECT_EQ(catalog.hits(), 2);  // counters survive Clear
}

TEST(MemoryCatalogTest, ConcurrentMixedOpsKeepAccountingConsistent) {
  MemoryCatalog catalog(10000);
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&catalog, t] {
      for (int i = 0; i < 200; ++i) {
        const std::string name =
            "t" + std::to_string(t) + "_" + std::to_string(i % 10);
        if (catalog.Put(name, Tiny(), 7)) {
          catalog.Get(name);
          catalog.Release(name);
        } else {
          catalog.Get(name);
        }
        catalog.used_bytes();  // lock-free monitoring read
        catalog.peak_bytes();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(catalog.used_bytes(), 0);
  EXPECT_LE(catalog.peak_bytes(), 10000);
  EXPECT_GT(catalog.hits() + catalog.misses(), 0);
}

TEST(MemoryCatalogTest, ReservationsGateConcurrentDispatch) {
  MemoryCatalog catalog(100);
  EXPECT_TRUE(catalog.Reserve("a", 60));
  EXPECT_EQ(catalog.reserved_bytes(), 60);
  EXPECT_FALSE(catalog.Reserve("b", 50));  // 60 + 50 > budget
  EXPECT_FALSE(catalog.Reserve("a", 10));  // duplicate name
  EXPECT_FALSE(catalog.Reserve("c", -1));
  catalog.CancelReservation("a");
  catalog.CancelReservation("a");  // idempotent
  EXPECT_EQ(catalog.reserved_bytes(), 0);
  EXPECT_TRUE(catalog.Reserve("b", 50));
  // Resident bytes count against future reservations too.
  EXPECT_TRUE(catalog.Put("t", Tiny(), 40));
  EXPECT_FALSE(catalog.Reserve("c", 20));  // 40 used + 50 reserved + 20
  EXPECT_TRUE(catalog.Reserve("c", 10));
}

TEST(MemoryCatalogTest, PutEnforcesResidentBudgetNotReservations) {
  // Reservations are dispatch backpressure; Put keeps the strict
  // sequential admission semantics against resident bytes alone.
  MemoryCatalog catalog(100);
  EXPECT_TRUE(catalog.Reserve("pending", 50));
  EXPECT_TRUE(catalog.Put("t", Tiny(), 100));
  EXPECT_FALSE(catalog.Put("u", Tiny(), 1));
  EXPECT_EQ(catalog.used_bytes(), 100);
  catalog.Clear();
  EXPECT_EQ(catalog.used_bytes(), 0);
  EXPECT_EQ(catalog.reserved_bytes(), 0);  // Clear drops reservations
}

TEST(MemoryCatalogTest, ConcurrentPutsStayWithinBudget) {
  MemoryCatalog catalog(1000);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&catalog, t] {
      for (int i = 0; i < 50; ++i) {
        catalog.Put("t" + std::to_string(t) + "_" + std::to_string(i),
                    Tiny(), 10);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_LE(catalog.used_bytes(), 1000);
  EXPECT_LE(catalog.peak_bytes(), 1000);
}

// ---------------------------------------------------------------------------
// Per-job view over the cross-job SharedCatalog (PR 4)
// ---------------------------------------------------------------------------

TEST(MemoryCatalogViewTest, PutPublishesUnderBoundKey) {
  SharedCatalog shared(1000);
  MemoryCatalog view(100, &shared);
  view.BindSharedKey("mv", 7);
  EXPECT_TRUE(view.Put("mv", Tiny(), 40));
  EXPECT_TRUE(shared.Contains(7));
  // Unbound names stay private.
  EXPECT_TRUE(view.Put("private", Tiny(), 40));
  EXPECT_EQ(shared.size(), 1u);
  // Private release keeps the shared copy resident.
  view.Release("mv");
  EXPECT_TRUE(shared.Contains(7));
  EXPECT_EQ(view.used_bytes(), 40);
}

TEST(MemoryCatalogViewTest, GetFallsThroughToSharedAndPins) {
  SharedCatalog shared(1000);
  engine::TablePtr table = Tiny();
  const std::int64_t size = table->ByteSize();
  ASSERT_TRUE(shared.Publish(7, table, size));

  MemoryCatalog view(100, &shared);
  view.BindSharedKey("mv", 7);
  // Cross-job hit: served from the shared layer, pinned, counted.
  EXPECT_EQ(view.Get("mv"), table);
  EXPECT_EQ(view.hits(), 1);
  EXPECT_EQ(view.cross_job_hits(), 1);
  EXPECT_EQ(view.cross_job_bytes_saved(), size);
  EXPECT_EQ(view.pinned_shared_bytes(), size);
  EXPECT_EQ(shared.pinned_bytes(), size);
  // Repeat reads are served from the retained pin and keep counting.
  EXPECT_EQ(view.Get("mv"), table);
  EXPECT_EQ(view.cross_job_hits(), 2);
  EXPECT_EQ(view.cross_job_bytes_saved(), 2 * size);
  // Unbound or absent names miss as before.
  EXPECT_EQ(view.Get("ghost"), nullptr);
  EXPECT_EQ(view.misses(), 1);
  // Last-consumer release: a single name's pin drops mid-run, the rest
  // stay held.
  view.BindSharedKey("mv2", 8);
  ASSERT_TRUE(shared.Publish(8, Tiny(), size));
  ASSERT_NE(view.Get("mv2"), nullptr);
  view.UnpinShared("mv");
  view.UnpinShared("mv");  // idempotent
  EXPECT_EQ(view.pinned_shared_bytes(), size);  // mv2 still held
  // End of run: pins drop, the entry becomes evictable again.
  view.UnpinShared();
  EXPECT_EQ(shared.pinned_bytes(), 0);
}

TEST(MemoryCatalogViewTest, PinSharedOutputReusesResidentContent) {
  SharedCatalog shared(1000);
  engine::TablePtr table = Tiny();
  ASSERT_TRUE(shared.Publish(7, table, table->ByteSize()));
  MemoryCatalog view(100, &shared);
  view.BindSharedKey("mv", 7);
  view.BindSharedKey("missing", 8);
  EXPECT_EQ(view.PinSharedOutput("mv"), table);
  EXPECT_EQ(view.cross_job_hits(), 1);
  // Absent content is not a miss — the node simply executes.
  EXPECT_EQ(view.PinSharedOutput("missing"), nullptr);
  EXPECT_EQ(view.misses(), 0);
}

TEST(MemoryCatalogViewTest, PinSharedInputCountsNothing) {
  SharedCatalog shared(1000);
  ASSERT_TRUE(shared.Publish(7, Tiny(), 10));
  MemoryCatalog view(100, &shared);
  view.BindSharedKey("mv", 7);
  EXPECT_TRUE(view.PinSharedInput("mv"));
  EXPECT_EQ(view.hits(), 0);
  EXPECT_EQ(view.cross_job_hits(), 0);
  EXPECT_EQ(shared.pinned_bytes(), 10);
  // The later read through Get() does the counting.
  EXPECT_NE(view.Get("mv"), nullptr);
  EXPECT_EQ(view.cross_job_hits(), 1);
  EXPECT_FALSE(view.PinSharedInput("unbound"));
}

TEST(MemoryCatalogViewTest, DestructorDropsPinsAndFiresListener) {
  SharedCatalog shared(1000);
  ASSERT_TRUE(shared.Publish(7, Tiny(), 10));
  std::vector<std::tuple<std::uint64_t, std::int64_t, bool>> events;
  {
    MemoryCatalog view(100, &shared);
    view.BindSharedKey("mv", 7);
    view.SetSharedPinListener(
        [&events](std::uint64_t key, std::int64_t bytes, bool pinned) {
          events.emplace_back(key, bytes, pinned);
        });
    EXPECT_NE(view.Get("mv"), nullptr);
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0], std::make_tuple(std::uint64_t{7},
                                         std::int64_t{10}, true));
    // A second read reuses the retained pin: no new event.
    EXPECT_NE(view.Get("mv"), nullptr);
    EXPECT_EQ(events.size(), 1u);
  }
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[1], std::make_tuple(std::uint64_t{7},
                                       std::int64_t{10}, false));
  EXPECT_EQ(shared.pinned_bytes(), 0);
}

TEST(MemoryCatalogViewTest, DurabilityFlowsThroughTheView) {
  SharedCatalog shared(1000);
  MemoryCatalog producer(100, &shared);
  producer.BindSharedKey("mv", 7);
  // Flagged-output publish (via Put): write still in flight.
  ASSERT_TRUE(producer.Put("mv", Tiny(), 10));
  MemoryCatalog reader(100, &shared);
  reader.BindSharedKey("mv", 7);
  bool durable = true;
  ASSERT_NE(reader.PinSharedOutput("mv", &durable), nullptr);
  EXPECT_FALSE(durable);  // the reusing job must write its own copy
  reader.UnpinShared();
  // The producer's materialization lands.
  producer.MarkSharedDurable("mv");
  MemoryCatalog late_reader(100, &shared);
  late_reader.BindSharedKey("mv", 7);
  ASSERT_NE(late_reader.PinSharedOutput("mv", &durable), nullptr);
  EXPECT_TRUE(durable);
  // PublishShared (unflagged outputs, written before their slot) is
  // durable from the start.
  MemoryCatalog unflagged(100, &shared);
  unflagged.BindSharedKey("u", 8);
  ASSERT_TRUE(unflagged.PublishShared("u", Tiny(), 10));
  MemoryCatalog u_reader(100, &shared);
  u_reader.BindSharedKey("u", 8);
  ASSERT_NE(u_reader.PinSharedOutput("u", &durable), nullptr);
  EXPECT_TRUE(durable);
}

TEST(MemoryCatalogViewTest, ReadingOwnPublishedOutputIsNotCrossJob) {
  SharedCatalog shared(1000);
  MemoryCatalog view(100, &shared);
  view.BindSharedKey("mv", 7);
  int pin_events = 0;
  view.SetSharedPinListener(
      [&pin_events](std::uint64_t, std::int64_t, bool) { ++pin_events; });
  engine::TablePtr table = Tiny();
  // An unflagged output published by this very view (PublishShared).
  ASSERT_TRUE(view.PublishShared("mv", table, table->ByteSize()));
  // Reading it back is a memory-speed hit but not cross-job service:
  // no gauge movement, no tenant charge.
  EXPECT_EQ(view.Get("mv"), table);
  EXPECT_EQ(view.hits(), 1);
  EXPECT_EQ(view.cross_job_hits(), 0);
  EXPECT_EQ(view.cross_job_bytes_saved(), 0);
  EXPECT_EQ(pin_events, 0);
  // A different view of the same shared layer *does* count it.
  MemoryCatalog other(100, &shared);
  other.BindSharedKey("mv", 7);
  EXPECT_EQ(other.Get("mv"), table);
  EXPECT_EQ(other.cross_job_hits(), 1);
}

TEST(MemoryCatalogViewTest, WithoutSharedLayerBehavesAsBefore) {
  MemoryCatalog catalog(100);
  catalog.BindSharedKey("mv", 7);  // binding without a layer is inert
  EXPECT_TRUE(catalog.Put("mv", Tiny(), 40));
  EXPECT_EQ(catalog.PinSharedOutput("mv"), nullptr);
  // Nothing can be pinned without a shared layer (lock-free fast path).
  EXPECT_FALSE(catalog.PinSharedInput("ghost"));
  EXPECT_FALSE(catalog.PinSharedInput("mv"));
  EXPECT_EQ(catalog.cross_job_hits(), 0);
  EXPECT_EQ(catalog.pinned_shared_bytes(), 0);
}

TEST(MemoryCatalogViewTest, PutReleasesSelfOutputPin) {
  // A reused output that the job then Puts privately is funded by the
  // grant: the cross-job pin (and its tenant charge) must drop.
  SharedCatalog shared(1000);
  engine::TablePtr table = Tiny();
  const std::int64_t size = table->ByteSize();
  ASSERT_TRUE(shared.Publish(7, table, size));
  std::vector<std::tuple<std::uint64_t, std::int64_t, bool>> events;
  MemoryCatalog view(100, &shared);
  view.BindSharedKey("mv", 7);
  view.SetSharedPinListener(
      [&events](std::uint64_t key, std::int64_t bytes, bool pinned) {
        events.emplace_back(key, bytes, pinned);
      });
  engine::TablePtr reused = view.PinSharedOutput("mv");
  ASSERT_EQ(reused, table);
  EXPECT_EQ(shared.pinned_bytes(), size);
  ASSERT_TRUE(view.Put("mv", reused, size));
  EXPECT_EQ(shared.pinned_bytes(), 0);
  EXPECT_EQ(view.pinned_shared_bytes(), 0);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_FALSE(std::get<2>(events[1]));  // unpin fired
  // Reads now hit the private entry.
  EXPECT_EQ(view.Get("mv"), table);
  EXPECT_EQ(view.cross_job_hits(), 1);  // only the reuse itself
}

}  // namespace
}  // namespace sc::storage
