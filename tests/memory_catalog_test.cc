#include <gtest/gtest.h>

#include <thread>

#include "storage/memory_catalog.h"

namespace sc::storage {
namespace {

using engine::Column;
using engine::DataType;
using engine::Field;
using engine::Schema;
using engine::Table;

engine::TablePtr Tiny() {
  std::vector<Column> cols;
  cols.push_back(Column::FromInts({1}));
  return std::make_shared<Table>(
      Table(Schema({Field{"x", DataType::kInt64}}), std::move(cols)));
}

TEST(MemoryCatalogTest, PutGetRelease) {
  MemoryCatalog catalog(100);
  EXPECT_TRUE(catalog.Put("a", Tiny(), 40));
  EXPECT_NE(catalog.Get("a"), nullptr);
  EXPECT_TRUE(catalog.Contains("a"));
  EXPECT_EQ(catalog.used_bytes(), 40);
  catalog.Release("a");
  EXPECT_EQ(catalog.Get("a"), nullptr);
  EXPECT_EQ(catalog.used_bytes(), 0);
}

TEST(MemoryCatalogTest, BudgetStrictlyEnforced) {
  MemoryCatalog catalog(100);
  EXPECT_TRUE(catalog.Put("a", Tiny(), 60));
  EXPECT_FALSE(catalog.Put("b", Tiny(), 50));  // would exceed
  EXPECT_TRUE(catalog.Put("c", Tiny(), 40));   // exactly fits
  EXPECT_EQ(catalog.used_bytes(), 100);
}

TEST(MemoryCatalogTest, DuplicateNameRejected) {
  MemoryCatalog catalog(100);
  EXPECT_TRUE(catalog.Put("a", Tiny(), 10));
  EXPECT_FALSE(catalog.Put("a", Tiny(), 10));
  EXPECT_EQ(catalog.used_bytes(), 10);
}

TEST(MemoryCatalogTest, NegativeSizeRejected) {
  MemoryCatalog catalog(100);
  EXPECT_FALSE(catalog.Put("a", Tiny(), -5));
}

TEST(MemoryCatalogTest, PeakTracksHighWaterMark) {
  MemoryCatalog catalog(100);
  catalog.Put("a", Tiny(), 70);
  catalog.Release("a");
  catalog.Put("b", Tiny(), 30);
  EXPECT_EQ(catalog.peak_bytes(), 70);
  EXPECT_EQ(catalog.used_bytes(), 30);
}

TEST(MemoryCatalogTest, ReleaseUnknownIsNoOp) {
  MemoryCatalog catalog(100);
  catalog.Release("ghost");
  EXPECT_EQ(catalog.used_bytes(), 0);
}

TEST(MemoryCatalogTest, ClearDropsEverything) {
  MemoryCatalog catalog(100);
  catalog.Put("a", Tiny(), 10);
  catalog.Put("b", Tiny(), 20);
  catalog.Clear();
  EXPECT_EQ(catalog.size(), 0u);
  EXPECT_EQ(catalog.used_bytes(), 0);
  EXPECT_EQ(catalog.peak_bytes(), 30);  // peak survives Clear
}

TEST(MemoryCatalogTest, CountsHitsAndMisses) {
  MemoryCatalog catalog(100);
  catalog.Put("a", Tiny(), 10);
  EXPECT_NE(catalog.Get("a"), nullptr);
  EXPECT_NE(catalog.Get("a"), nullptr);
  EXPECT_EQ(catalog.Get("ghost"), nullptr);
  EXPECT_EQ(catalog.hits(), 2);
  EXPECT_EQ(catalog.misses(), 1);
  catalog.Clear();
  EXPECT_EQ(catalog.hits(), 2);  // counters survive Clear
}

TEST(MemoryCatalogTest, ConcurrentMixedOpsKeepAccountingConsistent) {
  MemoryCatalog catalog(10000);
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&catalog, t] {
      for (int i = 0; i < 200; ++i) {
        const std::string name =
            "t" + std::to_string(t) + "_" + std::to_string(i % 10);
        if (catalog.Put(name, Tiny(), 7)) {
          catalog.Get(name);
          catalog.Release(name);
        } else {
          catalog.Get(name);
        }
        catalog.used_bytes();  // lock-free monitoring read
        catalog.peak_bytes();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(catalog.used_bytes(), 0);
  EXPECT_LE(catalog.peak_bytes(), 10000);
  EXPECT_GT(catalog.hits() + catalog.misses(), 0);
}

TEST(MemoryCatalogTest, ReservationsGateConcurrentDispatch) {
  MemoryCatalog catalog(100);
  EXPECT_TRUE(catalog.Reserve("a", 60));
  EXPECT_EQ(catalog.reserved_bytes(), 60);
  EXPECT_FALSE(catalog.Reserve("b", 50));  // 60 + 50 > budget
  EXPECT_FALSE(catalog.Reserve("a", 10));  // duplicate name
  EXPECT_FALSE(catalog.Reserve("c", -1));
  catalog.CancelReservation("a");
  catalog.CancelReservation("a");  // idempotent
  EXPECT_EQ(catalog.reserved_bytes(), 0);
  EXPECT_TRUE(catalog.Reserve("b", 50));
  // Resident bytes count against future reservations too.
  EXPECT_TRUE(catalog.Put("t", Tiny(), 40));
  EXPECT_FALSE(catalog.Reserve("c", 20));  // 40 used + 50 reserved + 20
  EXPECT_TRUE(catalog.Reserve("c", 10));
}

TEST(MemoryCatalogTest, PutEnforcesResidentBudgetNotReservations) {
  // Reservations are dispatch backpressure; Put keeps the strict
  // sequential admission semantics against resident bytes alone.
  MemoryCatalog catalog(100);
  EXPECT_TRUE(catalog.Reserve("pending", 50));
  EXPECT_TRUE(catalog.Put("t", Tiny(), 100));
  EXPECT_FALSE(catalog.Put("u", Tiny(), 1));
  EXPECT_EQ(catalog.used_bytes(), 100);
  catalog.Clear();
  EXPECT_EQ(catalog.used_bytes(), 0);
  EXPECT_EQ(catalog.reserved_bytes(), 0);  // Clear drops reservations
}

TEST(MemoryCatalogTest, ConcurrentPutsStayWithinBudget) {
  MemoryCatalog catalog(1000);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&catalog, t] {
      for (int i = 0; i < 50; ++i) {
        catalog.Put("t" + std::to_string(t) + "_" + std::to_string(i),
                    Tiny(), 10);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_LE(catalog.used_bytes(), 1000);
  EXPECT_LE(catalog.peak_bytes(), 1000);
}

}  // namespace
}  // namespace sc::storage
