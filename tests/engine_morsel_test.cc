// Determinism suite for morsel-driven intra-operator parallelism:
// HashJoinTables and AggregateTable are executed under a MorselScope at
// several morsel counts (real LanePool helpers via
// runtime::LaneMorselRunner) and asserted bit-identical — through
// Table::operator== — to both the single-threaded path and the scalar
// reference. Includes NaN / signed-zero doubles (Column::operator==
// compares doubles by bit pattern) and an 8-thread stress run in which
// concurrent jobs share one LanePool for their interior morsels (the
// TSAN target for this layer).
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "engine/morsel.h"
#include "engine/operators.h"
#include "engine/scalar_reference.h"
#include "runtime/lane_pool.h"
#include "runtime/morsel.h"

namespace sc::engine {
namespace {

/// Randomized table mirroring the vectorized suite's shape — skewed int
/// keys so joins/groups collide, strings with SSO and heap lengths —
/// plus adversarial doubles: NaN and -0.0 rows, which only survive a
/// merge that replays the exact sequential row order.
Table RandomTable(Rng* rng, std::size_t rows) {
  std::vector<std::int64_t> id(rows);
  std::vector<std::int64_t> key(rows);
  std::vector<std::int64_t> a(rows);
  std::vector<double> x(rows);
  std::vector<std::string> s(rows);
  const std::vector<std::string> pool = {"alpha", "beta", "gamma", "delta",
                                         "epsilon"};
  for (std::size_t r = 0; r < rows; ++r) {
    id[r] = static_cast<std::int64_t>(r);
    key[r] = rng->Zipf(17, 1.1);
    a[r] = rng->UniformInt(-50, 50);
    if (rng->Bernoulli(0.05)) {
      x[r] = std::numeric_limits<double>::quiet_NaN();
    } else if (rng->Bernoulli(0.05)) {
      x[r] = -0.0;
    } else if (rng->Bernoulli(0.2)) {
      x[r] = static_cast<double>(rng->UniformInt(0, 5));
    } else {
      x[r] = rng->UniformDouble(-10.0, 10.0);
    }
    s[r] = pool[static_cast<std::size_t>(rng->UniformInt(
        0, static_cast<std::int64_t>(pool.size()) - 1))];
    if (rng->Bernoulli(0.3)) {
      s[r] += "_" + std::string(
                        static_cast<std::size_t>(rng->UniformInt(0, 40)),
                        'z');
    }
  }
  return Table(Schema({Field{"id", DataType::kInt64},
                       Field{"key", DataType::kInt64},
                       Field{"a", DataType::kInt64},
                       Field{"x", DataType::kFloat64},
                       Field{"s", DataType::kString}}),
               {Column::FromInts(std::move(id)),
                Column::FromInts(std::move(key)),
                Column::FromInts(std::move(a)),
                Column::FromDoubles(std::move(x)),
                Column::FromStrings(std::move(s))});
}

std::vector<AggSpec> AggregateZoo() {
  std::vector<AggSpec> specs;
  specs.push_back(CountAll("n"));
  specs.push_back(SumOf(Col("a"), "sum_a"));
  specs.push_back(SumOf(Col("x"), "sum_x"));
  specs.push_back(AvgOf(Col("x"), "avg_x"));
  specs.push_back(MinOf(Col("a"), "min_a"));
  specs.push_back(MaxOf(Col("x"), "max_x"));
  specs.push_back(MinOf(Col("s"), "min_s"));
  specs.push_back(MaxOf(Col("s"), "max_s"));
  return specs;
}

/// Runs `body` inside a MorselScope whose runner fans out on `pool` with
/// at most `morsels` morsels and no row floor, so PlanMorsels always
/// splits when the operator is eligible.
template <typename Fn>
auto RunWithMorsels(runtime::LanePool* pool, int morsels, Fn&& body) {
  runtime::LaneMorselRunner runner(pool, /*trace=*/nullptr,
                                   /*trace_job_id=*/0, "test-node",
                                   /*task_counter=*/nullptr);
  MorselContext context(&runner, morsels, /*min_morsel_rows=*/1);
  MorselScope scope(&context);
  return body();
}

TEST(MorselJoinTest, BitIdenticalAcrossMorselCounts) {
  Rng rng(101);
  runtime::LanePool pool(4);
  const std::vector<std::vector<std::string>> key_sets = {
      {"key"}, {"key", "s"}, {"x"}, {"a"}};
  for (const std::size_t rows :
       {std::size_t{2}, std::size_t{17}, std::size_t{400},
        std::size_t{1500}}) {
    const Table left = RandomTable(&rng, rows);
    const Table right = RandomTable(&rng, rows / 2 + 1);
    for (const auto& keys : key_sets) {
      const Table ref =
          scalar::HashJoinTablesScalar(left, right, keys, keys);
      const Table seq = HashJoinTables(left, right, keys, keys);
      EXPECT_TRUE(seq == ref);
      for (const int morsels : {1, 2, 8}) {
        const Table par = RunWithMorsels(&pool, morsels, [&] {
          return HashJoinTables(left, right, keys, keys);
        });
        EXPECT_TRUE(par == seq)
            << "join keys[0]=" << keys[0] << " rows=" << rows
            << " morsels=" << morsels;
      }
    }
  }
}

TEST(MorselAggregateTest, BitIdenticalAcrossMorselCounts) {
  Rng rng(202);
  runtime::LanePool pool(4);
  const std::vector<std::vector<std::string>> key_sets = {
      {"key"}, {"s"}, {"key", "s"}, {"x"}};
  const std::vector<AggSpec> specs = AggregateZoo();
  for (const std::size_t rows :
       {std::size_t{2}, std::size_t{17}, std::size_t{400},
        std::size_t{1500}}) {
    const Table t = RandomTable(&rng, rows);
    for (const auto& keys : key_sets) {
      const Table ref = scalar::AggregateTableScalar(t, keys, specs);
      const Table seq = AggregateTable(t, keys, specs);
      EXPECT_TRUE(seq == ref);
      for (const int morsels : {1, 2, 8}) {
        const Table par = RunWithMorsels(&pool, morsels, [&] {
          return AggregateTable(t, keys, specs);
        });
        EXPECT_TRUE(par == seq)
            << "agg keys[0]=" << keys[0] << " rows=" << rows
            << " morsels=" << morsels;
      }
    }
  }
}

TEST(MorselAggregateTest, GlobalAggregateStaysSequentialAndIdentical) {
  Rng rng(303);
  runtime::LanePool pool(4);
  const Table t = RandomTable(&rng, 777);
  const std::vector<AggSpec> specs = AggregateZoo();
  const Table seq = AggregateTable(t, {}, specs);
  EXPECT_TRUE(seq == scalar::AggregateTableScalar(t, {}, specs));
  const Table par = RunWithMorsels(
      &pool, 8, [&] { return AggregateTable(t, {}, specs); });
  EXPECT_TRUE(par == seq);
}

TEST(MorselAggregateTest, StringArgumentThrowsThroughFanOut) {
  Rng rng(404);
  runtime::LanePool pool(4);
  const Table t = RandomTable(&rng, 300);
  const std::vector<AggSpec> bad = {SumOf(Col("s"), "sum_s")};
  EXPECT_THROW(AggregateTable(t, {"key"}, bad), std::invalid_argument);
  EXPECT_THROW(RunWithMorsels(
                   &pool, 8, [&] { return AggregateTable(t, {"key"}, bad); }),
               std::invalid_argument);
}

TEST(MorselPlanTest, BoundsAndBudget) {
  // MorselBounds: contiguous, ascending, concatenates to [0, rows).
  const auto b = MorselBounds(10, 4);
  ASSERT_EQ(b.size(), 5u);
  EXPECT_EQ(b.front(), 0u);
  EXPECT_EQ(b.back(), 10u);
  for (std::size_t m = 0; m + 1 < b.size() - 1; ++m) {
    EXPECT_LE(b[m + 1] - b[m] - (b[m + 2] - b[m + 1]), 1u);
  }
  // PlanMorsels honours the row floor and the runtime budget.
  runtime::LanePool pool(2);
  runtime::LaneMorselRunner runner(&pool, nullptr, 0, "t", nullptr);
  MorselContext ctx(&runner, /*max_morsels=*/8, /*min_morsel_rows=*/100);
  EXPECT_EQ(ctx.PlanMorsels(50), 1u);    // below the floor
  EXPECT_EQ(ctx.PlanMorsels(250), 2u);   // floor-limited
  EXPECT_EQ(ctx.PlanMorsels(100000), 8u);  // budget-limited
  MorselContext off(nullptr, 8, 1);
  EXPECT_EQ(off.PlanMorsels(100000), 1u);  // no runner -> sequential
}

/// Skew-aware morsel build: one heavy-hitter key owns ~90% of the build
/// rows, so per-partition row mass is wildly unequal and the LPT binning
/// (BalanceTaskBins) decides the build schedule. The output must stay
/// bit-identical to the sequential path and the scalar reference at
/// every morsel count regardless of how partitions were binned.
TEST(MorselJoinTest, HeavyHitterSkewStaysBitIdentical) {
  Rng rng(606);
  runtime::LanePool pool(4);
  const std::size_t rows = 4000;
  std::vector<std::int64_t> id(rows), key(rows);
  std::vector<std::string> s(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    id[r] = static_cast<std::int64_t>(r);
    // ~90% of rows share one key; the rest spread over 1000 keys.
    key[r] = rng.Bernoulli(0.9) ? 7 : rng.UniformInt(100, 1100);
    s[r] = "hh_" + std::to_string(key[r]);
  }
  const Table skewed(Schema({Field{"id", DataType::kInt64},
                             Field{"key", DataType::kInt64},
                             Field{"s", DataType::kString}}),
                     {Column::FromInts(std::move(id)),
                      Column::FromInts(std::move(key)),
                      Column::FromStrings(std::move(s))});
  const Table probe = RandomTable(&rng, 900);
  const Table ref =
      scalar::HashJoinTablesScalar(probe, skewed, {"key"}, {"key"});
  const Table seq = HashJoinTables(probe, skewed, {"key"}, {"key"});
  EXPECT_TRUE(seq == ref);
  for (const int morsels : {2, 3, 4, 8}) {
    const Table par = RunWithMorsels(&pool, morsels, [&] {
      return HashJoinTables(probe, skewed, {"key"}, {"key"});
    });
    EXPECT_TRUE(par == seq) << "morsels=" << morsels;
  }
}

TEST(MorselPlanTest, BalanceTaskBinsCoversAllItemsAndBalances) {
  // Every partition index appears in exactly one bin (zero-mass
  // partitions included — the probe side indexes every partition's
  // table), bins are capped, and LPT keeps the heaviest bin at most one
  // item above optimal for this shape.
  const std::vector<std::size_t> masses = {900, 1, 0, 50, 50, 3, 0, 400};
  const auto bins = BalanceTaskBins(masses, 3);
  ASSERT_LE(bins.size(), 3u);
  std::vector<int> seen(masses.size(), 0);
  for (const auto& bin : bins) {
    for (const std::uint32_t p : bin) {
      ASSERT_LT(p, masses.size());
      ++seen[p];
    }
  }
  for (std::size_t p = 0; p < masses.size(); ++p) {
    EXPECT_EQ(seen[p], 1) << "partition " << p;
  }
  // The 900-mass partition must sit alone in its bin under LPT with
  // these masses: everything else sums to 504.
  for (const auto& bin : bins) {
    std::size_t mass = 0;
    for (const std::uint32_t p : bin) mass += masses[p];
    EXPECT_LE(mass, 900u);
  }
  // Determinism: same input, same binning.
  EXPECT_EQ(bins, BalanceTaskBins(masses, 3));
  // Degenerate shapes: zero bins clamps to one; more bins than items
  // never produces empty bins.
  EXPECT_EQ(BalanceTaskBins(masses, 0).size(), 1u);
  for (const auto& bin : BalanceTaskBins({5, 5}, 8)) {
    EXPECT_FALSE(bin.empty());
  }
}

/// Concurrent jobs sharing one LanePool for interior morsels: each
/// thread runs its own join + aggregate under its own MorselScope while
/// helper tasks from all threads interleave on the same lanes. Verifies
/// thread-confined MorselContext state and the shared FanOutState under
/// TSAN, and bit-identical results under contention.
TEST(MorselStressTest, ConcurrentJobsShareOneLanePool) {
  constexpr int kThreads = 8;
  runtime::LanePool pool(4);
  std::vector<Table> inputs;
  std::vector<Table> join_refs;
  std::vector<Table> agg_refs;
  const std::vector<AggSpec> specs = AggregateZoo();
  {
    Rng rng(505);
    for (int i = 0; i < kThreads; ++i) {
      inputs.push_back(RandomTable(&rng, 600 + 37 * i));
      join_refs.push_back(HashJoinTables(inputs[i], inputs[i], {"key"},
                                         {"key"}));
      agg_refs.push_back(AggregateTable(inputs[i], {"key", "s"}, specs));
    }
  }
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      for (int iter = 0; iter < 5; ++iter) {
        const int morsels = 2 + (i + iter) % 7;
        const Table j = RunWithMorsels(&pool, morsels, [&] {
          return HashJoinTables(inputs[i], inputs[i], {"key"}, {"key"});
        });
        const Table a = RunWithMorsels(&pool, morsels, [&] {
          return AggregateTable(inputs[i], {"key", "s"}, specs);
        });
        if (!(j == join_refs[i]) || !(a == agg_refs[i])) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace sc::engine
