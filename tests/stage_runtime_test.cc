#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "opt/optimizer.h"
#include "opt/stages.h"
#include "runtime/controller.h"
#include "runtime/lane_pool.h"
#include "runtime/stage_scheduler.h"
#include "workload/datagen.h"
#include "workload/workloads.h"

namespace sc::runtime {
namespace {

storage::DiskProfile FastDisk() {
  storage::DiskProfile profile;
  profile.throttle = false;
  return profile;
}

std::string FreshDir(const std::string& tag) {
  const std::string dir = testing::TempDir() + "/sc_stage_" + tag;
  std::filesystem::remove_all(dir);
  return dir;
}

std::map<std::string, engine::TablePtr> TinyData() {
  workload::DataGenOptions options;
  options.scale = 0.03;
  return workload::GenerateTpcdsData(options);
}

workload::MvWorkload WideWorkload(int width) {
  return workload::BuildWideSynthetic(width);
}

// ---------------------------------------------------------------------------
// Stage decomposition
// ---------------------------------------------------------------------------

TEST(StageDecompositionTest, ChainYieldsOneNodePerStage) {
  graph::Graph g;
  const auto a = g.AddNode("a");
  const auto b = g.AddNode("b");
  const auto c = g.AddNode("c");
  g.AddEdge(a, b);
  g.AddEdge(b, c);
  const auto stages =
      opt::DecomposeStages(g, graph::KahnTopologicalOrder(g));
  ASSERT_EQ(stages.num_stages(), 3);
  EXPECT_EQ(stages.width(), 1u);
  EXPECT_EQ(stages.stage_of[a], 0);
  EXPECT_EQ(stages.stage_of[b], 1);
  EXPECT_EQ(stages.stage_of[c], 2);
}

TEST(StageDecompositionTest, DiamondYieldsAntichains) {
  graph::Graph g;
  const auto root = g.AddNode("root");
  const auto left = g.AddNode("left");
  const auto right = g.AddNode("right");
  const auto sink = g.AddNode("sink");
  g.AddEdge(root, left);
  g.AddEdge(root, right);
  g.AddEdge(left, sink);
  g.AddEdge(right, sink);
  const auto order = graph::KahnTopologicalOrder(g);
  const auto stages = opt::DecomposeStages(g, order);
  ASSERT_EQ(stages.num_stages(), 3);
  EXPECT_EQ(stages.width(), 2u);
  EXPECT_EQ(stages.stages[1].size(), 2u);
  // Every parent sits in a strictly earlier stage (antichain property).
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    for (graph::NodeId p : g.parents(v)) {
      EXPECT_LT(stages.stage_of[p], stages.stage_of[v]);
    }
  }
  // Intra-stage listing follows order position.
  EXPECT_LT(order.position[stages.stages[1][0]],
            order.position[stages.stages[1][1]]);
}

TEST(StageDecompositionTest, RejectsNonTopologicalOrder) {
  graph::Graph g;
  const auto a = g.AddNode("a");
  const auto b = g.AddNode("b");
  g.AddEdge(a, b);
  const auto order = graph::Order::FromSequence({b, a});
  EXPECT_THROW(opt::DecomposeStages(g, order), std::invalid_argument);
  EXPECT_THROW(
      opt::DecomposeStages(g, graph::Order::FromSequence({a})),
      std::invalid_argument);
}

// ---------------------------------------------------------------------------
// LanePool / StageScheduler
// ---------------------------------------------------------------------------

TEST(LanePoolRuntimeTest, RunsEveryTaskAcrossLanes) {
  LanePool pool(4);
  EXPECT_EQ(pool.capacity(), 4);
  std::atomic<int> done{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&done] { done.fetch_add(1); });
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (done.load() < 100 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  EXPECT_EQ(done.load(), 100);
  EXPECT_LE(pool.threads_started(), 4);
}

TEST(StageSchedulerTest, SingleLaneDispatchFollowsPlanOrder) {
  graph::Graph g;
  const auto root = g.AddNode("root");
  const auto left = g.AddNode("left");
  const auto right = g.AddNode("right");
  const auto sink = g.AddNode("sink");
  g.AddEdge(root, left);
  g.AddEdge(root, right);
  g.AddEdge(left, sink);
  g.AddEdge(right, sink);
  const auto order = graph::KahnTopologicalOrder(g);
  const auto stages = opt::DecomposeStages(g, order);
  StageScheduler scheduler(g, order, stages);
  std::vector<graph::NodeId> dispatched;
  while (scheduler.HasReady()) {
    const graph::NodeId v = scheduler.PopReady();
    dispatched.push_back(v);
    scheduler.MarkAvailable(v);  // 1-lane: done before the next dispatch
  }
  EXPECT_EQ(dispatched, order.sequence);
  EXPECT_TRUE(scheduler.AllDispatched());
}

TEST(StageSchedulerTest, ReadyRequiresEveryParentAvailable) {
  graph::Graph g;
  const auto a = g.AddNode("a");
  const auto b = g.AddNode("b");
  const auto c = g.AddNode("c");
  g.AddEdge(a, c);
  g.AddEdge(b, c);
  const auto order = graph::KahnTopologicalOrder(g);
  const auto stages = opt::DecomposeStages(g, order);
  StageScheduler scheduler(g, order, stages);
  EXPECT_EQ(scheduler.PopReady(), a);
  EXPECT_EQ(scheduler.PopReady(), b);
  EXPECT_FALSE(scheduler.HasReady());  // c waits for both parents
  scheduler.MarkAvailable(a);
  EXPECT_FALSE(scheduler.HasReady());
  scheduler.MarkAvailable(b);
  EXPECT_EQ(scheduler.PopReady(), c);
}

// ---------------------------------------------------------------------------
// Sequential-mode guarantee (acceptance regression test)
// ---------------------------------------------------------------------------

TEST(StageRuntimeTest, OneLaneStageRuntimeIdenticalToSequentialLoop) {
  const auto data = TinyData();
  workload::MvWorkload wl = workload::BuildIo1();

  storage::ThrottledDisk profile_disk(FreshDir("eq_profile"), FastDisk());
  Controller profiler(&profile_disk, ControllerOptions{});
  profiler.LoadBaseTables(data);
  ASSERT_TRUE(profiler.ProfileAndAnnotate(&wl).ok);

  const std::int64_t budget = 8LL * 1024 * 1024;
  const auto plan = opt::Optimizer{}.Optimize(wl.graph, budget).plan;
  ASSERT_FALSE(opt::FlaggedNodes(plan.flags).empty());

  storage::ThrottledDisk disk_seq(FreshDir("eq_seq"), FastDisk());
  ControllerOptions seq_options;
  seq_options.budget = budget;
  Controller sequential(&disk_seq, seq_options);
  sequential.LoadBaseTables(data);
  const RunReport seq = sequential.Run(wl, plan);
  ASSERT_TRUE(seq.ok) << seq.error;

  storage::ThrottledDisk disk_stage(FreshDir("eq_stage"), FastDisk());
  ControllerOptions stage_options;
  stage_options.budget = budget;
  stage_options.max_parallel_nodes = 1;
  stage_options.force_stage_runtime = true;
  Controller staged(&disk_stage, stage_options);
  staged.LoadBaseTables(data);
  const RunReport stage = staged.Run(wl, plan);
  ASSERT_TRUE(stage.ok) << stage.error;

  // The paper-semantics invariants: identical node stats (modulo wall
  // times), catalog hit/miss counts, and peak memory.
  EXPECT_EQ(stage.parallel_lanes, 1);
  EXPECT_EQ(seq.peak_memory, stage.peak_memory);
  EXPECT_EQ(seq.catalog_hits, stage.catalog_hits);
  EXPECT_EQ(seq.catalog_misses, stage.catalog_misses);
  ASSERT_EQ(seq.nodes.size(), stage.nodes.size());
  for (std::size_t i = 0; i < seq.nodes.size(); ++i) {
    EXPECT_EQ(seq.nodes[i].name, stage.nodes[i].name);
    EXPECT_EQ(seq.nodes[i].output_bytes, stage.nodes[i].output_bytes);
    EXPECT_EQ(seq.nodes[i].output_rows, stage.nodes[i].output_rows);
    EXPECT_EQ(seq.nodes[i].output_in_memory,
              stage.nodes[i].output_in_memory);
    EXPECT_EQ(seq.nodes[i].stage, stage.nodes[i].stage);
  }
  for (graph::NodeId v = 0; v < wl.graph.num_nodes(); ++v) {
    const std::string& name = wl.graph.node(v).name;
    EXPECT_TRUE(disk_seq.ReadTable(name) == disk_stage.ReadTable(name))
        << name;
  }
}

// ---------------------------------------------------------------------------
// Parallel execution
// ---------------------------------------------------------------------------

TEST(StageRuntimeTest, FourLanesProduceIdenticalMvsWithinBudget) {
  const auto data = TinyData();
  workload::MvWorkload wl = workload::BuildIo1();

  storage::ThrottledDisk profile_disk(FreshDir("par_profile"), FastDisk());
  Controller profiler(&profile_disk, ControllerOptions{});
  profiler.LoadBaseTables(data);
  ASSERT_TRUE(profiler.ProfileAndAnnotate(&wl).ok);

  const std::int64_t budget = 16LL * 1024 * 1024;
  const auto plan = opt::Optimizer{}.Optimize(wl.graph, budget).plan;

  storage::ThrottledDisk disk_seq(FreshDir("par_seq"), FastDisk());
  ControllerOptions seq_options;
  seq_options.budget = budget;
  Controller sequential(&disk_seq, seq_options);
  sequential.LoadBaseTables(data);
  const RunReport seq = sequential.Run(wl, plan);
  ASSERT_TRUE(seq.ok) << seq.error;

  storage::ThrottledDisk disk_par(FreshDir("par_par"), FastDisk());
  ControllerOptions par_options;
  par_options.budget = budget;
  par_options.max_parallel_nodes = 4;
  Controller parallel(&disk_par, par_options);
  parallel.LoadBaseTables(data);
  const RunReport par = parallel.Run(wl, plan);
  ASSERT_TRUE(par.ok) << par.error;

  EXPECT_GT(par.parallel_lanes, 1);
  EXPECT_GT(par.num_stages, 0);
  EXPECT_LE(par.peak_memory, budget);
  ASSERT_EQ(par.nodes.size(),
            static_cast<std::size_t>(wl.graph.num_nodes()));
  for (graph::NodeId v = 0; v < wl.graph.num_nodes(); ++v) {
    const std::string& name = wl.graph.node(v).name;
    EXPECT_TRUE(disk_seq.ReadTable(name) == disk_par.ReadTable(name))
        << name;
  }
}

TEST(StageRuntimeTest, WideDagExecutesOnAllLanes) {
  const auto data = TinyData();
  workload::MvWorkload wl = WideWorkload(8);
  std::string error;
  ASSERT_TRUE(wl.graph.Validate(&error)) << error;

  storage::ThrottledDisk disk(FreshDir("wide"), FastDisk());
  ControllerOptions options;
  options.max_parallel_nodes = 4;
  Controller controller(&disk, options);
  controller.LoadBaseTables(data);
  const RunReport report = controller.RunUnoptimized(wl);
  ASSERT_TRUE(report.ok) << report.error;
  EXPECT_EQ(report.parallel_lanes, 4);
  EXPECT_EQ(report.num_stages, 2);
  for (graph::NodeId v = 0; v < wl.graph.num_nodes(); ++v) {
    EXPECT_TRUE(disk.Exists(wl.graph.node(v).name));
  }

  // The same run with one lane yields byte-identical MV contents.
  storage::ThrottledDisk disk_seq(FreshDir("wide_seq"), FastDisk());
  Controller sequential(&disk_seq, ControllerOptions{});
  sequential.LoadBaseTables(data);
  ASSERT_TRUE(sequential.RunUnoptimized(wl).ok);
  for (graph::NodeId v = 0; v < wl.graph.num_nodes(); ++v) {
    const std::string& name = wl.graph.node(v).name;
    EXPECT_TRUE(disk.ReadTable(name) == disk_seq.ReadTable(name)) << name;
  }
}

// The relaxed publish protocol decouples dispatch from the in-order
// residency replay; this asserts the replay is still exactly the
// sequential Put / lazy-release sequence: node stats (deterministic
// fields), catalog hit/miss counts, and peak memory are identical to the
// sequential loop even at 4 lanes.
TEST(StageRuntimeTest, FourLaneRelaxedPublishMatchesSequentialStats) {
  const auto data = TinyData();
  workload::MvWorkload wl = workload::BuildIo1();

  storage::ThrottledDisk profile_disk(FreshDir("relax_profile"),
                                      FastDisk());
  Controller profiler(&profile_disk, ControllerOptions{});
  profiler.LoadBaseTables(data);
  ASSERT_TRUE(profiler.ProfileAndAnnotate(&wl).ok);

  const std::int64_t budget = 8LL * 1024 * 1024;
  const auto plan = opt::Optimizer{}.Optimize(wl.graph, budget).plan;
  ASSERT_FALSE(opt::FlaggedNodes(plan.flags).empty());

  storage::ThrottledDisk disk_seq(FreshDir("relax_seq"), FastDisk());
  ControllerOptions seq_options;
  seq_options.budget = budget;
  Controller sequential(&disk_seq, seq_options);
  sequential.LoadBaseTables(data);
  const RunReport seq = sequential.Run(wl, plan);
  ASSERT_TRUE(seq.ok) << seq.error;

  storage::ThrottledDisk disk_par(FreshDir("relax_par"), FastDisk());
  ControllerOptions par_options;
  par_options.budget = budget;
  par_options.max_parallel_nodes = 4;
  Controller parallel(&disk_par, par_options);
  parallel.LoadBaseTables(data);
  const RunReport par = parallel.Run(wl, plan);
  ASSERT_TRUE(par.ok) << par.error;

  EXPECT_GT(par.parallel_lanes, 1);
  EXPECT_EQ(seq.peak_memory, par.peak_memory);
  EXPECT_EQ(seq.catalog_hits, par.catalog_hits);
  EXPECT_EQ(seq.catalog_misses, par.catalog_misses);
  ASSERT_EQ(seq.nodes.size(), par.nodes.size());
  for (std::size_t i = 0; i < seq.nodes.size(); ++i) {
    EXPECT_EQ(seq.nodes[i].name, par.nodes[i].name);  // publish order
    EXPECT_EQ(seq.nodes[i].output_bytes, par.nodes[i].output_bytes);
    EXPECT_EQ(seq.nodes[i].output_rows, par.nodes[i].output_rows);
    EXPECT_EQ(seq.nodes[i].output_in_memory,
              par.nodes[i].output_in_memory);
    EXPECT_EQ(seq.nodes[i].stage, par.nodes[i].stage);
  }
  for (graph::NodeId v = 0; v < wl.graph.num_nodes(); ++v) {
    const std::string& name = wl.graph.node(v).name;
    EXPECT_TRUE(disk_seq.ReadTable(name) == disk_par.ReadTable(name))
        << name;
  }
}

// Inline small-node dispatch: nodes whose estimated cost falls below
// ControllerOptions::inline_node_cost_seconds execute on the coordinator
// thread instead of a LanePool lane. The sequential-equivalence contract
// must hold with the threshold active — identical node stats, catalog
// hit/miss counts, peak memory, and MV bytes at 1 *and* 4 lanes — and
// RunReport must expose how many nodes were inlined.
TEST(StageRuntimeTest, InlineDispatchKeepsSequentialEquivalence) {
  const auto data = TinyData();
  workload::MvWorkload wl = workload::BuildIo1();

  storage::ThrottledDisk profile_disk(FreshDir("inline_profile"),
                                      FastDisk());
  Controller profiler(&profile_disk, ControllerOptions{});
  profiler.LoadBaseTables(data);
  ASSERT_TRUE(profiler.ProfileAndAnnotate(&wl).ok);

  const std::int64_t budget = 8LL * 1024 * 1024;
  const auto plan = opt::Optimizer{}.Optimize(wl.graph, budget).plan;
  ASSERT_FALSE(opt::FlaggedNodes(plan.flags).empty());

  // Baseline: the classic sequential loop (no lanes, nothing to inline).
  storage::ThrottledDisk disk_seq(FreshDir("inline_seq"), FastDisk());
  ControllerOptions seq_options;
  seq_options.budget = budget;
  Controller sequential(&disk_seq, seq_options);
  sequential.LoadBaseTables(data);
  const RunReport seq = sequential.Run(wl, plan);
  ASSERT_TRUE(seq.ok) << seq.error;
  EXPECT_EQ(seq.inlined_nodes, 0);

  // A threshold large enough that every profiled node qualifies; the
  // whole run executes inline on the coordinator at any lane count.
  for (const int lanes : {1, 4}) {
    storage::ThrottledDisk disk_par(
        FreshDir("inline_par" + std::to_string(lanes)), FastDisk());
    ControllerOptions par_options;
    par_options.budget = budget;
    par_options.max_parallel_nodes = lanes;
    par_options.force_stage_runtime = true;
    par_options.inline_node_cost_seconds = 3600.0;
    Controller parallel(&disk_par, par_options);
    parallel.LoadBaseTables(data);
    const RunReport par = parallel.Run(wl, plan);
    ASSERT_TRUE(par.ok) << par.error;

    EXPECT_EQ(par.inlined_nodes,
              static_cast<std::int64_t>(wl.graph.num_nodes()))
        << lanes;
    EXPECT_EQ(seq.peak_memory, par.peak_memory) << lanes;
    EXPECT_EQ(seq.catalog_hits, par.catalog_hits) << lanes;
    EXPECT_EQ(seq.catalog_misses, par.catalog_misses) << lanes;
    ASSERT_EQ(seq.nodes.size(), par.nodes.size());
    for (std::size_t i = 0; i < seq.nodes.size(); ++i) {
      EXPECT_EQ(seq.nodes[i].name, par.nodes[i].name);  // publish order
      EXPECT_EQ(seq.nodes[i].output_bytes, par.nodes[i].output_bytes);
      EXPECT_EQ(seq.nodes[i].output_rows, par.nodes[i].output_rows);
      EXPECT_EQ(seq.nodes[i].output_in_memory,
                par.nodes[i].output_in_memory);
    }
    for (graph::NodeId v = 0; v < wl.graph.num_nodes(); ++v) {
      const std::string& name = wl.graph.node(v).name;
      EXPECT_TRUE(disk_seq.ReadTable(name) == disk_par.ReadTable(name))
          << name;
    }
  }
}

// Morsel-driven intra-operator parallelism must be invisible in every
// observable output: with interior fan-out forced on (tiny per-morsel
// cost target, no row floor), publish order, per-node stats, and the
// MV bytes written to disk are identical to a run with morsels disabled
// — at 1 lane (fan-out degenerates to the sequential path) and at 4
// lanes (joins and aggregates actually split). RunReport::morsel_tasks
// must expose the fan-out at 4 lanes.
TEST(StageRuntimeTest, MorselExecutionKeepsPublishOrderAndMvBytes) {
  const auto data = TinyData();
  workload::MvWorkload wl = workload::BuildIo1();

  // Baseline: morsels disabled entirely (target 0), classic loop.
  storage::ThrottledDisk disk_seq(FreshDir("morsel_seq"), FastDisk());
  ControllerOptions seq_options;
  seq_options.morsel_target_seconds = 0.0;
  Controller sequential(&disk_seq, seq_options);
  sequential.LoadBaseTables(data);
  const RunReport seq = sequential.RunUnoptimized(wl);
  ASSERT_TRUE(seq.ok) << seq.error;
  EXPECT_EQ(seq.morsel_tasks, 0);

  for (const int lanes : {1, 4}) {
    storage::ThrottledDisk disk_par(
        FreshDir("morsel_par" + std::to_string(lanes)), FastDisk());
    ControllerOptions par_options;
    par_options.max_parallel_nodes = lanes;
    par_options.force_stage_runtime = true;
    // Every node overshoots a 1ns target, so each one gets the full
    // lane-capacity morsel budget; the row floor of 1 makes even the
    // tiny-scale tables split.
    par_options.morsel_target_seconds = 1e-9;
    par_options.morsel_min_rows = 1;
    // Pin the fan-out cap so the morsel_tasks assertions below hold on
    // single-core runners too (0 would cap at hardware concurrency).
    par_options.morsel_max_lanes = 8;
    Controller parallel(&disk_par, par_options);
    parallel.LoadBaseTables(data);
    const RunReport par = parallel.RunUnoptimized(wl);
    ASSERT_TRUE(par.ok) << par.error;

    ASSERT_EQ(seq.nodes.size(), par.nodes.size());
    for (std::size_t i = 0; i < seq.nodes.size(); ++i) {
      EXPECT_EQ(seq.nodes[i].name, par.nodes[i].name);  // publish order
      EXPECT_EQ(seq.nodes[i].output_bytes, par.nodes[i].output_bytes);
      EXPECT_EQ(seq.nodes[i].output_rows, par.nodes[i].output_rows);
    }
    EXPECT_EQ(seq.peak_memory, par.peak_memory) << lanes;
    for (graph::NodeId v = 0; v < wl.graph.num_nodes(); ++v) {
      const std::string& name = wl.graph.node(v).name;
      EXPECT_TRUE(disk_seq.ReadTable(name) == disk_par.ReadTable(name))
          << name;
    }
    if (lanes > 1) {
      EXPECT_GT(par.morsel_tasks, 0) << lanes;
    } else {
      // A 1-lane pool caps every morsel budget at 1: no fan-out.
      EXPECT_EQ(par.morsel_tasks, 0);
    }
  }
}

// Unprofiled nodes have unknown cost and must never be inlined — the
// wide synthetic DAG carries no execution metadata, so its parallel
// speedup path (lanes) stays intact regardless of the threshold.
TEST(StageRuntimeTest, UnknownCostNodesAreNeverInlined) {
  const auto data = TinyData();
  const workload::MvWorkload wl = WideWorkload(6);
  storage::ThrottledDisk disk(FreshDir("inline_unknown"), FastDisk());
  ControllerOptions options;
  options.max_parallel_nodes = 4;
  options.inline_node_cost_seconds = 3600.0;
  Controller controller(&disk, options);
  controller.LoadBaseTables(data);
  const RunReport report = controller.RunUnoptimized(wl);
  ASSERT_TRUE(report.ok) << report.error;
  EXPECT_EQ(report.inlined_nodes, 0);
  EXPECT_EQ(report.parallel_lanes, 4);
}

// widen_stages must not break the error-report contract: an invalid plan
// still yields report.error (validation runs before the widening pass,
// whose DecomposeStages would otherwise throw out of Run).
TEST(StageRuntimeTest, WidenStagesKeepsInvalidPlanErrorContract) {
  const workload::MvWorkload wl = WideWorkload(4);
  storage::ThrottledDisk disk(FreshDir("widen_invalid"), FastDisk());
  ControllerOptions options;
  options.widen_stages = true;
  options.max_parallel_nodes = 4;
  Controller controller(&disk, options);
  opt::Plan bad;
  // Reversed order: sink before its parents — not topological.
  const graph::Order topo = graph::KahnTopologicalOrder(wl.graph);
  std::vector<graph::NodeId> reversed(topo.sequence.rbegin(),
                                      topo.sequence.rend());
  bad.order = graph::Order::FromSequence(reversed);
  bad.flags = opt::EmptyFlags(wl.graph.num_nodes());
  const RunReport report = controller.Run(wl, bad);
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.error.find("invalid plan"), std::string::npos);
}

// Borrowed-pool mode: back-to-back parallel runs on one shared LanePool
// reuse its lane threads instead of constructing a pool per run.
TEST(StageRuntimeTest, SharedLanePoolReusedAcrossRuns) {
  const auto data = TinyData();
  const workload::MvWorkload wl = WideWorkload(8);

  LanePool pool(4);
  storage::ThrottledDisk disk(FreshDir("shared_pool"), FastDisk());
  ControllerOptions options;
  options.max_parallel_nodes = 4;
  options.lane_pool = &pool;
  Controller controller(&disk, options);
  controller.LoadBaseTables(data);

  ASSERT_TRUE(controller.RunUnoptimized(wl).ok);
  const std::int64_t started_after_first = pool.threads_started();
  EXPECT_GE(started_after_first, 1);
  EXPECT_LE(started_after_first, 4);
  for (int i = 0; i < 3; ++i) {
    const RunReport report = controller.RunUnoptimized(wl);
    ASSERT_TRUE(report.ok) << report.error;
    EXPECT_EQ(report.parallel_lanes, 4);
  }
  // Zero thread construction per job in steady state.
  EXPECT_EQ(pool.threads_started(), started_after_first);
  for (graph::NodeId v = 0; v < wl.graph.num_nodes(); ++v) {
    EXPECT_TRUE(disk.Exists(wl.graph.node(v).name));
  }
}

TEST(StageRuntimeTest, ParallelExecutionFailureIsReported) {
  const auto data = TinyData();
  const workload::MvWorkload wl = WideWorkload(6);
  storage::ThrottledDisk disk(FreshDir("wide_fail"), FastDisk());
  ControllerOptions options;
  options.max_parallel_nodes = 4;
  Controller controller(&disk, options);
  controller.LoadBaseTables(data);
  disk.InjectWriteFailure("wide_mv_3");
  const RunReport report = controller.RunUnoptimized(wl);
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.error.find("injected write failure"),
            std::string::npos);
  // The failure is one-shot; a rerun completes.
  EXPECT_TRUE(controller.RunUnoptimized(wl).ok);
}

TEST(StageRuntimeTest, ParallelFlaggedRunStaysWithinTightBudget) {
  const auto data = TinyData();
  workload::MvWorkload wl = WideWorkload(8);
  storage::ThrottledDisk profile_disk(FreshDir("tight_profile"),
                                      FastDisk());
  Controller profiler(&profile_disk, ControllerOptions{});
  profiler.LoadBaseTables(data);
  ASSERT_TRUE(profiler.ProfileAndAnnotate(&wl).ok);

  // Budget only big enough for a few rollups at a time: concurrent
  // lanes must not jointly overshoot it.
  std::int64_t three_largest = 0;
  std::vector<std::int64_t> sizes;
  for (graph::NodeId v = 0; v < wl.graph.num_nodes(); ++v) {
    sizes.push_back(wl.graph.node(v).size_bytes);
  }
  std::sort(sizes.rbegin(), sizes.rend());
  for (int i = 0; i < 3 && i < static_cast<int>(sizes.size()); ++i) {
    three_largest += sizes[static_cast<std::size_t>(i)];
  }
  const std::int64_t budget = three_largest;
  const auto plan = opt::Optimizer{}.Optimize(wl.graph, budget).plan;

  storage::ThrottledDisk disk(FreshDir("tight"), FastDisk());
  ControllerOptions options;
  options.budget = budget;
  options.max_parallel_nodes = 4;
  Controller controller(&disk, options);
  controller.LoadBaseTables(data);
  const RunReport report = controller.Run(wl, plan);
  ASSERT_TRUE(report.ok) << report.error;
  EXPECT_LE(report.peak_memory, budget);
}

// ---------------------------------------------------------------------------
// Materializer under concurrent Enqueue (single-writer FIFO channel)
// ---------------------------------------------------------------------------

TEST(MaterializerTest, ConcurrentEnqueueKeepsFifoAndDrainRacesClean) {
  storage::ThrottledDisk disk(FreshDir("mat_conc"), FastDisk());
  std::vector<engine::Column> cols;
  cols.push_back(engine::Column::FromInts({1, 2, 3}));
  auto table = std::make_shared<engine::Table>(engine::Table(
      engine::Schema({engine::Field{"x", engine::DataType::kInt64}}),
      std::move(cols)));

  constexpr int kThreads = 4;
  constexpr int kPerThread = 16;
  std::vector<std::shared_future<void>> futures;  // global enqueue order
  std::mutex order_mutex;
  {
    Materializer materializer(&disk);
    std::atomic<bool> stop{false};
    // A drainer racing the producers: Drain must never crash or wedge.
    std::thread drainer([&] {
      while (!stop.load()) materializer.Drain();
    });
    std::vector<std::thread> producers;
    for (int t = 0; t < kThreads; ++t) {
      producers.emplace_back([&, t] {
        for (int i = 0; i < kPerThread; ++i) {
          const std::string name =
              "mat_" + std::to_string(t) + "_" + std::to_string(i);
          // Enqueue under the recording mutex so the recorded order is
          // the queue order.
          std::lock_guard<std::mutex> lock(order_mutex);
          futures.push_back(materializer.Enqueue(name, table));
        }
      });
    }
    for (auto& p : producers) p.join();
    futures.back().get();
    // Single-writer FIFO: once the last-enqueued write finished, every
    // earlier write has finished too.
    for (const auto& future : futures) {
      ASSERT_EQ(future.wait_for(std::chrono::seconds(0)),
                std::future_status::ready);
    }
    materializer.Drain();
    stop.store(true);
    drainer.join();
  }
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; ++i) {
      EXPECT_TRUE(disk.Exists("mat_" + std::to_string(t) + "_" +
                              std::to_string(i)));
    }
  }
}

}  // namespace
}  // namespace sc::runtime
