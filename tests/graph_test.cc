#include <gtest/gtest.h>

#include <algorithm>

#include "graph/dot.h"
#include "graph/fingerprint.h"
#include "graph/graph.h"
#include "graph/serde.h"
#include "graph/topo.h"
#include "test_util.h"

namespace sc::graph {
namespace {

TEST(GraphTest, AddNodeAssignsDenseIds) {
  Graph g;
  EXPECT_EQ(g.AddNode("a"), 0);
  EXPECT_EQ(g.AddNode("b"), 1);
  EXPECT_EQ(g.num_nodes(), 2);
}

TEST(GraphTest, DuplicateNameThrows) {
  Graph g;
  g.AddNode("a");
  EXPECT_THROW(g.AddNode("a"), std::invalid_argument);
}

TEST(GraphTest, EmptyNameThrows) {
  Graph g;
  EXPECT_THROW(g.AddNode(""), std::invalid_argument);
}

TEST(GraphTest, AddEdgeRejectsSelfLoopsAndDuplicates) {
  Graph g;
  const auto a = g.AddNode("a");
  const auto b = g.AddNode("b");
  EXPECT_TRUE(g.AddEdge(a, b));
  EXPECT_FALSE(g.AddEdge(a, b));  // duplicate
  EXPECT_FALSE(g.AddEdge(a, a));  // self loop
  EXPECT_FALSE(g.AddEdge(a, 99));  // out of range
  EXPECT_EQ(g.num_edges(), 1);
}

TEST(GraphTest, ParentsAndChildren) {
  Graph g = test::DiamondGraph();
  EXPECT_EQ(g.children(0).size(), 2u);
  EXPECT_EQ(g.parents(3).size(), 2u);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_FALSE(g.HasEdge(1, 0));
}

TEST(GraphTest, RootsAndLeaves) {
  Graph g = test::DiamondGraph();
  EXPECT_EQ(g.Roots(), std::vector<NodeId>{0});
  EXPECT_EQ(g.Leaves(), std::vector<NodeId>{3});
}

TEST(GraphTest, FindByName) {
  Graph g = test::DiamondGraph();
  EXPECT_EQ(g.FindByName("a"), std::optional<NodeId>{0});
  EXPECT_FALSE(g.FindByName("nope").has_value());
}

TEST(GraphTest, ValidateAcceptsDag) {
  Graph g = test::Figure7Graph();
  std::string error;
  EXPECT_TRUE(g.Validate(&error)) << error;
}

TEST(GraphTest, ValidateRejectsCycle) {
  Graph g;
  const auto a = g.AddNode("a");
  const auto b = g.AddNode("b");
  const auto c = g.AddNode("c");
  g.AddEdge(a, b);
  g.AddEdge(b, c);
  g.AddEdge(c, a);
  std::string error;
  EXPECT_FALSE(g.Validate(&error));
  EXPECT_NE(error.find("cycle"), std::string::npos);
}

TEST(GraphTest, TotalSizeAndScore) {
  Graph g = test::Figure7Graph();
  EXPECT_EQ(g.TotalSize(), 100 + 10 + 100 + 10 + 10 + 10);
  EXPECT_DOUBLE_EQ(g.TotalScore(), 240.0);
}

TEST(GraphTest, OutOfRangeAccessThrows) {
  Graph g;
  g.AddNode("a");
  EXPECT_THROW(g.node(5), std::out_of_range);
  EXPECT_THROW(g.node(-1), std::out_of_range);
}

TEST(OrderTest, FromSequenceBuildsPositions) {
  const Order order = Order::FromSequence({2, 0, 1});
  EXPECT_EQ(order.position[2], 0);
  EXPECT_EQ(order.position[0], 1);
  EXPECT_EQ(order.position[1], 2);
}

TEST(TopoTest, KahnProducesValidOrder) {
  const Graph g = test::Figure7Graph();
  const Order order = KahnTopologicalOrder(g);
  EXPECT_TRUE(IsTopologicalOrder(g, order));
}

TEST(TopoTest, KahnIsDeterministic) {
  const Graph g = test::RandomDag(40, 9);
  EXPECT_EQ(KahnTopologicalOrder(g).sequence,
            KahnTopologicalOrder(g).sequence);
}

TEST(TopoTest, IsTopologicalOrderRejectsViolations) {
  const Graph g = test::DiamondGraph();
  // d before its parents.
  EXPECT_FALSE(IsTopologicalOrder(g, Order::FromSequence({3, 0, 1, 2})));
  // Wrong length.
  EXPECT_FALSE(IsTopologicalOrder(g, Order::FromSequence({0, 1})));
  // Duplicate entry.
  EXPECT_FALSE(IsTopologicalOrder(g, Order::FromSequence({0, 1, 1, 2})));
}

TEST(TopoTest, DfsScheduleIsTopological) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const Graph g = test::RandomDag(30, seed);
    const Order order = DfsSchedule(g);
    EXPECT_TRUE(IsTopologicalOrder(g, order)) << "seed " << seed;
  }
}

TEST(TopoTest, DfsScheduleFinishesBranchesDepthFirst) {
  // Chain a->b->c plus root d: DFS must finish the chain before starting d
  // (with id tie-break, a < d).
  Graph g;
  const auto a = g.AddNode("a");
  const auto b = g.AddNode("b");
  const auto c = g.AddNode("c");
  g.AddNode("d");
  g.AddEdge(a, b);
  g.AddEdge(b, c);
  const Order order = DfsSchedule(g);
  EXPECT_EQ(order.sequence, (std::vector<NodeId>{0, 1, 2, 3}));
}

TEST(TopoTest, DfsTieBreakCallbackSelectsCandidate) {
  // Two roots 0 and 1; tie-break picks the LAST candidate.
  Graph g;
  g.AddNode("r0");
  g.AddNode("r1");
  const Order order = DfsSchedule(
      g, [](const std::vector<NodeId>& c) { return c.size() - 1; });
  EXPECT_EQ(order.sequence.front(), 1);
}

TEST(TopoTest, AncestorsDescendants) {
  const Graph g = test::Figure7Graph();
  // v3 (id 2) has ancestors v1 (0), v2 (1).
  EXPECT_EQ(Ancestors(g, 2), (std::vector<NodeId>{0, 1}));
  // Descendants of v3: v5 (4), v6 (5).
  EXPECT_EQ(Descendants(g, 2), (std::vector<NodeId>{4, 5}));
  EXPECT_TRUE(Ancestors(g, 0).empty());
}

TEST(TopoTest, LongestPath) {
  EXPECT_EQ(LongestPathLength(test::Figure7Graph()), 5);  // v1-v2-v3-v5-v6
  EXPECT_EQ(LongestPathLength(test::DiamondGraph()), 3);
  EXPECT_EQ(LongestPathLength(Graph{}), 0);
}

TEST(DotTest, RendersNodesAndEdges) {
  const Graph g = test::DiamondGraph();
  DotOptions options;
  options.highlighted = {1};
  const std::string dot = ToDot(g, options);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("n0 -> n1"), std::string::npos);
  EXPECT_NE(dot.find("lightblue"), std::string::npos);
}

TEST(SerdeTest, RoundTrip) {
  const Graph g = test::Figure7Graph();
  Graph parsed;
  std::string error;
  ASSERT_TRUE(Deserialize(Serialize(g), &parsed, &error)) << error;
  ASSERT_EQ(parsed.num_nodes(), g.num_nodes());
  ASSERT_EQ(parsed.num_edges(), g.num_edges());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(parsed.node(v).name, g.node(v).name);
    EXPECT_EQ(parsed.node(v).size_bytes, g.node(v).size_bytes);
    EXPECT_DOUBLE_EQ(parsed.node(v).speedup_score, g.node(v).speedup_score);
    EXPECT_EQ(parsed.children(v), g.children(v));
  }
}

TEST(SerdeTest, RejectsUnknownDirective) {
  Graph g;
  std::string error;
  EXPECT_FALSE(Deserialize("vertex a 1 2", &g, &error));
  EXPECT_NE(error.find("unknown directive"), std::string::npos);
}

TEST(SerdeTest, RejectsEdgeToUnknownNode) {
  Graph g;
  std::string error;
  EXPECT_FALSE(Deserialize("node a 1 0 0 0\nedge a b\n", &g, &error));
  EXPECT_NE(error.find("unknown node"), std::string::npos);
}

TEST(SerdeTest, IgnoresCommentsAndBlankLines) {
  Graph g;
  std::string error;
  ASSERT_TRUE(
      Deserialize("# hello\n\nnode a 5 1 0 0\n  \nnode b 6 2 0 0\nedge a b\n",
                  &g, &error))
      << error;
  EXPECT_EQ(g.num_nodes(), 2);
  EXPECT_EQ(g.num_edges(), 1);
}

TEST(FingerprintNodesTest, LineageSensitiveAndEdgeOrderInsensitive) {
  // Same names + same parent sets ⇒ same fingerprints, regardless of
  // node/edge insertion order.
  Graph a;
  const auto a_root = a.AddNode("root");
  const auto a_l = a.AddNode("l");
  const auto a_r = a.AddNode("r");
  const auto a_sink = a.AddNode("sink");
  a.AddEdge(a_root, a_l);
  a.AddEdge(a_root, a_r);
  a.AddEdge(a_l, a_sink);
  a.AddEdge(a_r, a_sink);

  Graph b;
  const auto b_r = b.AddNode("r");
  const auto b_sink = b.AddNode("sink");
  const auto b_root = b.AddNode("root");
  const auto b_l = b.AddNode("l");
  b.AddEdge(b_r, b_sink);
  b.AddEdge(b_l, b_sink);
  b.AddEdge(b_root, b_r);
  b.AddEdge(b_root, b_l);

  const auto fa = FingerprintNodes(a);
  const auto fb = FingerprintNodes(b);
  ASSERT_EQ(fa.size(), 4u);
  ASSERT_EQ(fb.size(), 4u);
  EXPECT_EQ(fa[a_sink], fb[b_sink]);
  EXPECT_EQ(fa[a_l], fb[b_l]);
  // Execution metadata is not content: sizes/scores don't change keys.
  Graph c = a;
  c.mutable_node(a_sink).size_bytes = 999;
  c.mutable_node(a_sink).speedup_score = 3.0;
  EXPECT_EQ(FingerprintNodes(c)[a_sink], fa[a_sink]);

  // Different lineage ⇒ different key, even with the same name.
  Graph d;
  const auto d_other = d.AddNode("other");
  const auto d_sink = d.AddNode("sink");
  d.AddEdge(d_other, d_sink);
  EXPECT_NE(FingerprintNodes(d)[d_sink], fa[a_sink]);

  // The salt versions the whole key space.
  const auto salted = FingerprintNodes(a, /*salt=*/1);
  EXPECT_NE(salted[a_sink], fa[a_sink]);
}

TEST(SerdeTest, FileRoundTrip) {
  const Graph g = test::Figure8Graph();
  const std::string path =
      testing::TempDir() + "/sc_serde_roundtrip.graph";
  std::string error;
  ASSERT_TRUE(SaveToFile(g, path, &error)) << error;
  Graph loaded;
  ASSERT_TRUE(LoadFromFile(path, &loaded, &error)) << error;
  EXPECT_EQ(loaded.num_nodes(), g.num_nodes());
  EXPECT_EQ(loaded.num_edges(), g.num_edges());
}

}  // namespace
}  // namespace sc::graph
