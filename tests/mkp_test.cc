#include <gtest/gtest.h>

#include "common/rng.h"
#include "opt/memory_usage.h"
#include "opt/mkp.h"
#include "test_util.h"

namespace sc::opt {
namespace {

MkpProblem SingleKnapsack(std::vector<double> profits,
                          std::vector<std::int64_t> weights,
                          std::int64_t capacity) {
  MkpProblem p;
  p.profits = std::move(profits);
  p.weights = std::move(weights);
  p.capacity = capacity;
  std::vector<std::int32_t> all(p.profits.size());
  for (std::size_t i = 0; i < all.size(); ++i) {
    all[i] = static_cast<std::int32_t>(i);
  }
  p.members.push_back(all);
  return p;
}

TEST(MkpTest, EmptyProblem) {
  const MkpResult r = SolveMkpBranchAndBound(MkpProblem{});
  EXPECT_TRUE(r.optimal);
  EXPECT_DOUBLE_EQ(r.objective, 0.0);
}

TEST(MkpTest, ClassicKnapsack) {
  // Items (profit, weight): (60,10) (100,20) (120,30), cap 50 -> 220.
  const MkpResult r = SolveMkpBranchAndBound(
      SingleKnapsack({60, 100, 120}, {10, 20, 30}, 50));
  EXPECT_TRUE(r.optimal);
  EXPECT_DOUBLE_EQ(r.objective, 220.0);
  EXPECT_FALSE(r.selected[0]);
  EXPECT_TRUE(r.selected[1]);
  EXPECT_TRUE(r.selected[2]);
}

TEST(MkpTest, GreedyIsSuboptimalHere) {
  // Density greedy takes item 0 (density 6) and then cannot fit both big
  // items; BnB must beat it.
  const MkpResult greedy =
      SolveMkpGreedy(SingleKnapsack({60, 100, 120}, {10, 20, 30}, 50));
  const MkpResult exact = SolveMkpBranchAndBound(
      SingleKnapsack({60, 100, 120}, {10, 20, 30}, 50));
  EXPECT_LT(greedy.objective, exact.objective);
}

TEST(MkpTest, TwoConstraintsInteract) {
  // Item 0 appears in both constraints; capacity lets only one big item
  // per constraint.
  MkpProblem p;
  p.profits = {10, 9, 9};
  p.weights = {8, 8, 8};
  p.members = {{0, 1}, {0, 2}};
  p.capacity = 10;
  const MkpResult r = SolveMkpBranchAndBound(p);
  EXPECT_TRUE(r.optimal);
  // Best: take items 1 and 2 (9+9=18) — item 0 blocks both constraints.
  EXPECT_DOUBLE_EQ(r.objective, 18.0);
}

TEST(MkpTest, ZeroWeightItemsAlwaysTaken) {
  const MkpResult r =
      SolveMkpBranchAndBound(SingleKnapsack({5, 7}, {0, 0}, 0));
  EXPECT_DOUBLE_EQ(r.objective, 12.0);
}

TEST(MkpTest, BruteForceAgreesOnTinyCases) {
  Rng rng(123);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t n = static_cast<std::size_t>(rng.UniformInt(1, 10));
    MkpProblem p;
    for (std::size_t i = 0; i < n; ++i) {
      p.profits.push_back(static_cast<double>(rng.UniformInt(0, 30)));
      p.weights.push_back(rng.UniformInt(1, 20));
    }
    const std::size_t num_constraints =
        static_cast<std::size_t>(rng.UniformInt(1, 4));
    for (std::size_t c = 0; c < num_constraints; ++c) {
      std::vector<std::int32_t> members;
      for (std::size_t i = 0; i < n; ++i) {
        if (rng.Bernoulli(0.6)) {
          members.push_back(static_cast<std::int32_t>(i));
        }
      }
      if (!members.empty()) p.members.push_back(members);
    }
    p.capacity = rng.UniformInt(5, 40);
    const MkpResult exact = SolveMkpBruteForce(p);
    const MkpResult bnb = SolveMkpBranchAndBound(p);
    EXPECT_TRUE(bnb.optimal);
    EXPECT_DOUBLE_EQ(bnb.objective, exact.objective) << "trial " << trial;
  }
}

TEST(MkpTest, NodeLimitFallsBackToIncumbent) {
  // A large instance with a 1-node budget must still return the greedy
  // incumbent and mark the result non-optimal.
  Rng rng(7);
  MkpProblem p;
  for (int i = 0; i < 40; ++i) {
    p.profits.push_back(static_cast<double>(rng.UniformInt(1, 100)));
    p.weights.push_back(rng.UniformInt(1, 50));
  }
  std::vector<std::int32_t> all(40);
  for (int i = 0; i < 40; ++i) all[i] = i;
  p.members = {all};
  p.capacity = 100;
  MkpOptions options;
  options.node_limit = 1;
  const MkpResult r = SolveMkpBranchAndBound(p, options);
  EXPECT_FALSE(r.optimal);
  EXPECT_GT(r.objective, 0.0);
}

TEST(BuildMkpProblemTest, MapsNodesToItems) {
  const graph::Graph g = test::DiamondGraph(/*size=*/10);
  const graph::Order order = graph::Order::FromSequence({0, 1, 2, 3});
  const ConstraintSets cs = GetConstraints(g, order, /*budget=*/15);
  const MkpProblem p = BuildMkpProblem(g, cs, 15);
  EXPECT_EQ(p.profits.size(), cs.mkp_nodes.size());
  EXPECT_EQ(p.capacity, 15);
  EXPECT_EQ(p.members.size(), cs.sets.size());
}

TEST(SimplifiedMkpTest, RespectsBudgetOnFigure7) {
  const graph::Graph g = test::Figure7Graph();
  // tau1: both 100GB nodes alive together -> only one can be flagged.
  const graph::Order tau1 = graph::Order::FromSequence({0, 1, 2, 3, 4, 5});
  const FlagSet flags = SimplifiedMkp(g, tau1, /*budget=*/100);
  EXPECT_TRUE(IsFeasible(g, tau1, flags, 100));
  // Paper: max score under tau1 is 120 (v1, v5, v6).
  EXPECT_DOUBLE_EQ(TotalScore(g, flags), 120.0);
}

TEST(SimplifiedMkpTest, BetterOrderUnlocksMoreScore) {
  const graph::Graph g = test::Figure7Graph();
  // tau2 separates the two 100GB nodes -> max score 210 (v1, v3, v6).
  const graph::Order tau2 = graph::Order::FromSequence({0, 1, 3, 2, 4, 5});
  const FlagSet flags = SimplifiedMkp(g, tau2, /*budget=*/100);
  EXPECT_TRUE(IsFeasible(g, tau2, flags, 100));
  EXPECT_DOUBLE_EQ(TotalScore(g, flags), 210.0);
}

TEST(SimplifiedMkpTest, FeasibleOnRandomDags) {
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    const graph::Graph g = test::RandomDag(24, seed);
    const graph::Order order = graph::KahnTopologicalOrder(g);
    for (const std::int64_t budget : {0LL, 50LL, 150LL, 100000LL}) {
      const FlagSet flags = SimplifiedMkp(g, order, budget);
      EXPECT_TRUE(IsFeasible(g, order, flags, budget))
          << "seed " << seed << " budget " << budget;
    }
  }
}

TEST(SimplifiedMkpTest, UnlimitedBudgetFlagsAllPositiveScoreNodes) {
  const graph::Graph g = test::Figure7Graph();
  const graph::Order order = graph::KahnTopologicalOrder(g);
  const FlagSet flags = SimplifiedMkp(g, order, /*budget=*/1000000);
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(flags[v], g.node(v).speedup_score > 0);
  }
}

TEST(SimplifiedMkpTest, NeverFlagsExcludedNodes) {
  graph::Graph g;
  const auto big = g.AddNode("big", 500, 100.0);
  const auto zero = g.AddNode("zero", 5, 0.0);
  const auto ok = g.AddNode("ok", 5, 3.0);
  g.AddEdge(big, ok);
  g.AddEdge(zero, ok);
  const graph::Order order = graph::KahnTopologicalOrder(g);
  const FlagSet flags = SimplifiedMkp(g, order, /*budget=*/100);
  EXPECT_FALSE(flags[big]);
  EXPECT_FALSE(flags[zero]);
  EXPECT_TRUE(flags[ok]);
}

}  // namespace
}  // namespace sc::opt
