#include <gtest/gtest.h>

#include "common/bytes.h"
#include "workload/scale_model.h"

namespace sc::workload {
namespace {

TEST(ScaleModelTest, BudgetForPercent) {
  EXPECT_EQ(BudgetForPercent(100.0, 1.6), 1600 * kMB);
  EXPECT_EQ(BudgetForPercent(10.0, 1.6), 160 * kMB);
  EXPECT_EQ(BudgetForPercent(100.0, 0.4), 400 * kMB);
}

TEST(ScaleModelTest, AnnotationFillsEveryNode) {
  MvWorkload wl = BuildIo1();
  ScaleModelOptions options;
  options.dataset_gb = 100.0;
  AnnotateWorkload(&wl, options);
  for (graph::NodeId v = 0; v < wl.graph.num_nodes(); ++v) {
    EXPECT_GT(wl.graph.node(v).size_bytes, 0) << v;
    EXPECT_GT(wl.graph.node(v).compute_seconds, 0.0) << v;
    EXPECT_GT(wl.graph.node(v).speedup_score, 0.0) << v;
  }
}

TEST(ScaleModelTest, SizesScaleLinearly) {
  MvWorkload at10 = BuildIo2();
  MvWorkload at100 = BuildIo2();
  ScaleModelOptions options;
  options.dataset_gb = 10.0;
  AnnotateWorkload(&at10, options);
  options.dataset_gb = 100.0;
  AnnotateWorkload(&at100, options);
  for (graph::NodeId v = 0; v < at10.graph.num_nodes(); ++v) {
    EXPECT_NEAR(static_cast<double>(at100.graph.node(v).size_bytes),
                10.0 * static_cast<double>(at10.graph.node(v).size_bytes),
                10.0);
  }
}

TEST(ScaleModelTest, PartitionedIntermediatesSmaller) {
  // TPC-DSp: date-partitioned scans yield smaller intermediates on the
  // fact-derived nodes (paper §VI-A).
  MvWorkload normal = BuildIo1();
  MvWorkload partitioned = BuildIo1();
  ScaleModelOptions options;
  options.dataset_gb = 100.0;
  AnnotateWorkload(&normal, options);
  options.partitioned = true;
  AnnotateWorkload(&partitioned, options);
  std::int64_t normal_total = 0;
  std::int64_t part_total = 0;
  for (graph::NodeId v = 0; v < normal.graph.num_nodes(); ++v) {
    EXPECT_LE(partitioned.graph.node(v).size_bytes,
              normal.graph.node(v).size_bytes);
    normal_total += normal.graph.node(v).size_bytes;
    part_total += partitioned.graph.node(v).size_bytes;
  }
  EXPECT_LT(part_total, normal_total / 2);
}

TEST(ScaleModelTest, IoRatiosMatchTableIIIOrdering) {
  // Table III: I/O workloads have high intermediate-I/O ratios (46-59%),
  // Compute 1 is ~1%, Compute 2 in between (~28%). We assert the ordering
  // and coarse bands rather than exact percentages.
  const auto workloads = StandardWorkloads();
  ScaleModelOptions options;
  options.dataset_gb = 100.0;
  std::vector<double> ratios;
  for (MvWorkload wl : workloads) {
    AnnotateWorkload(&wl, options);
    ratios.push_back(IntermediateIoRatio(wl, options));
  }
  // io1, io2, io3 are I/O-heavy.
  for (int i = 0; i < 3; ++i) {
    EXPECT_GT(ratios[static_cast<std::size_t>(i)], 0.35) << i;
  }
  // compute1 is compute-dominated.
  EXPECT_LT(ratios[3], 0.10);
  // compute2 sits in between.
  EXPECT_GT(ratios[4], ratios[3]);
  EXPECT_LT(ratios[4], ratios[0]);
}

TEST(ScaleModelTest, ScoresTrackDeviceSpeed) {
  // A slower disk makes keeping data in memory more valuable.
  MvWorkload fast = BuildIo3();
  MvWorkload slow = BuildIo3();
  ScaleModelOptions options;
  options.dataset_gb = 50.0;
  AnnotateWorkload(&fast, options);
  options.device = cost::DeviceProfile::SlowNfs();
  AnnotateWorkload(&slow, options);
  double fast_total = 0;
  double slow_total = 0;
  for (graph::NodeId v = 0; v < fast.graph.num_nodes(); ++v) {
    fast_total += fast.graph.node(v).speedup_score;
    slow_total += slow.graph.node(v).speedup_score;
  }
  EXPECT_GT(slow_total, fast_total);
}

}  // namespace
}  // namespace sc::workload
