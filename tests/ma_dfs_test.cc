#include <gtest/gtest.h>

#include "opt/ma_dfs.h"
#include "opt/memory_usage.h"
#include "opt/mkp.h"
#include "test_util.h"

namespace sc::opt {
namespace {

TEST(MaDfsTest, ProducesTopologicalOrder) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const graph::Graph g = test::RandomDag(30, seed);
    FlagSet flags(g.num_nodes());
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
      flags[v] = (v % 3) == 0;
    }
    const graph::Order order = MaDfsOrder(g, flags);
    EXPECT_TRUE(graph::IsTopologicalOrder(g, order)) << "seed " << seed;
  }
}

TEST(MaDfsTest, Figure8SchedulesUnflaggedBranchFirst) {
  // Paper Figure 8: at the v2-vs-v3 tie-break, v2 (unflagged, actual
  // memory 0) must be scheduled before v3 (flagged, 80GB).
  const graph::Graph g = test::Figure8Graph();
  const FlagSet flags = MakeFlags(7, {0, 2, 3, 4});  // v1, v3, v4, v5
  const graph::Order order = MaDfsOrder(g, flags);
  EXPECT_LT(order.position[1], order.position[2])
      << "v2 should execute before v3";
}

TEST(MaDfsTest, Figure8LowersAverageMemoryVsWorstTieBreak) {
  const graph::Graph g = test::Figure8Graph();
  const FlagSet flags = MakeFlags(7, {0, 2, 3, 4});
  const graph::Order ma = MaDfsOrder(g, flags);
  // Adversarial DFS: always pick the candidate with the HIGHEST actual
  // memory consumption.
  const graph::Order bad = graph::DfsSchedule(
      g, [&](const std::vector<graph::NodeId>& c) {
        std::size_t worst = 0;
        auto amc = [&](graph::NodeId v) {
          return flags[v] ? g.node(v).size_bytes : 0;
        };
        for (std::size_t i = 1; i < c.size(); ++i) {
          if (amc(c[i]) > amc(c[worst])) worst = i;
        }
        return worst;
      });
  EXPECT_LE(AverageMemoryUsage(g, ma, flags),
            AverageMemoryUsage(g, bad, flags));
}

TEST(MaDfsTest, EmptyFlagsFinishesBranchesDepthFirst) {
  // Chain a->b->c plus isolated root d: with no flags the recency rule
  // makes MA-DFS behave like plain DFS — the chain completes before d.
  graph::Graph g;
  const auto a = g.AddNode("a", 1, 1.0);
  const auto b = g.AddNode("b", 1, 1.0);
  g.AddNode("c", 1, 1.0);
  g.AddNode("d", 1, 1.0);
  g.AddEdge(a, b);
  g.AddEdge(b, 2);
  const graph::Order order = MaDfsOrder(g, EmptyFlags(4));
  EXPECT_EQ(order.sequence, (std::vector<graph::NodeId>{0, 1, 2, 3}));
}

TEST(MaDfsTest, DeterministicGivenFlags) {
  const graph::Graph g = test::RandomDag(40, 8);
  const FlagSet flags = MakeFlags(g.num_nodes(), {1, 5, 9, 13});
  EXPECT_EQ(MaDfsOrder(g, flags).sequence, MaDfsOrder(g, flags).sequence);
}

TEST(MaDfsTest, EnablesMoreFlaggingOnFigure8) {
  // MA-DFS order should admit at least the MKP score achievable under the
  // adversarial order on Figure 8 with M = 100.
  const graph::Graph g = test::Figure8Graph();
  const FlagSet seed_flags = MakeFlags(7, {0, 2, 3, 4});
  const graph::Order ma = MaDfsOrder(g, seed_flags);
  const graph::Order kahn = graph::KahnTopologicalOrder(g);
  const double score_ma = TotalScore(g, SimplifiedMkp(g, ma, 100));
  const double score_kahn = TotalScore(g, SimplifiedMkp(g, kahn, 100));
  EXPECT_GE(score_ma, score_kahn);
}

TEST(RandomDfsTest, TopologicalAndSeedDeterministic) {
  const graph::Graph g = test::RandomDag(30, 5);
  const graph::Order a = RandomDfsOrder(g, 42);
  EXPECT_TRUE(graph::IsTopologicalOrder(g, a));
  EXPECT_EQ(a.sequence, RandomDfsOrder(g, 42).sequence);
}

TEST(RandomDfsTest, DifferentSeedsCanDiffer) {
  // With enough branching some pair of seeds should produce different
  // orders.
  const graph::Graph g = test::RandomDag(30, 6);
  bool any_different = false;
  const graph::Order base = RandomDfsOrder(g, 0);
  for (std::uint64_t seed = 1; seed < 10 && !any_different; ++seed) {
    any_different = RandomDfsOrder(g, seed).sequence != base.sequence;
  }
  EXPECT_TRUE(any_different);
}

}  // namespace
}  // namespace sc::opt
