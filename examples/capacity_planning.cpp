// Capacity planning: how much Memory Catalog does a workload need? Sweeps
// the memory budget over the five standard workloads at warehouse scale
// (simulated) and prints the speedup curve plus the flagged-MV counts —
// the what-if analysis a database admin would run before provisioning.
//
//   $ ./examples/capacity_planning [dataset_gb]   (default 100)
#include <cstdlib>
#include <iostream>

#include "api/sc.h"

int main(int argc, char** argv) {
  using namespace sc;
  const double dataset_gb = argc > 1 ? std::atof(argv[1]) : 100.0;

  std::cout << "S/C capacity planning for the five standard workloads at "
            << dataset_gb << "GB\n\n";
  TablePrinter table({"Memory Catalog", "% of data", "end-to-end (s)",
                      "speedup", "MVs flagged", "peak memory"});

  // Annotate all workloads once per sweep point (scores depend only on
  // sizes, not on the budget).
  double noopt_total = 0;
  std::vector<workload::MvWorkload> workloads;
  for (int i = 0; i < 5; ++i) {
    workload::MvWorkload wl = workload::StandardWorkloads()[
        static_cast<std::size_t>(i)];
    workload::ScaleModelOptions sm;
    sm.dataset_gb = dataset_gb;
    workload::AnnotateWorkload(&wl, sm);
    sim::SimOptions sim_options;
    noopt_total += sim::SimulateNoOpt(wl.graph, sim_options).makespan;
    workloads.push_back(std::move(wl));
  }

  for (const double percent : {0.2, 0.4, 0.8, 1.6, 3.2, 6.4, 12.8}) {
    const std::int64_t budget =
        workload::BudgetForPercent(dataset_gb, percent);
    double sc_total = 0;
    std::size_t flagged = 0;
    std::int64_t peak = 0;
    for (const auto& wl : workloads) {
      const opt::AlternatingResult result =
          opt::Optimizer{}.Optimize(wl.graph, budget);
      sim::SimOptions sim_options;
      sim_options.budget = budget;
      const sim::RunResult run =
          sim::SimulateRun(wl.graph, result.plan, sim_options);
      sc_total += run.makespan;
      flagged += opt::FlaggedNodes(result.plan.flags).size();
      peak = std::max(peak, run.peak_memory);
    }
    table.AddRow({FormatBytes(budget), StrFormat("%.1f%%", percent),
                  StrFormat("%.1f", sc_total),
                  StrFormat("%.2fx", noopt_total / sc_total),
                  StrFormat("%zu / 103", flagged), FormatBytes(peak)});
  }
  table.Print(std::cout);
  std::cout << "\nunoptimized total: " << StrFormat("%.1f", noopt_total)
            << "s\nRead the curve for the knee: beyond it, extra memory "
               "buys little speedup.\n";
  return 0;
}
