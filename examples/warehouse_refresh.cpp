// End-to-end warehouse scenario on the REAL execution substrate: generate
// TPC-DS-like data, persist base tables to (throttled) external storage,
// profile a refresh run to collect execution metadata, optimize with S/C,
// and re-run — verifying both the wall-clock speedup and that every
// materialized MV is byte-identical to the unoptimized run.
//
//   $ ./examples/warehouse_refresh [scale]   (default 0.3 ~ a few MB)
#include <cstdlib>
#include <filesystem>
#include <iostream>

#include "api/sc.h"

int main(int argc, char** argv) {
  using namespace sc;
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.3;

  // Slow NFS-like storage so that I/O short-circuiting is visible at
  // laptop scale (80/50 MB/s, 2ms latency).
  storage::DiskProfile profile;
  profile.read_bw = 80e6;
  profile.write_bw = 50e6;
  profile.latency = 2e-3;
  const std::string dir =
      std::filesystem::temp_directory_path() / "sc_warehouse_example";
  std::filesystem::remove_all(dir);

  std::cout << "generating TPC-DS data at micro-scale " << scale << "...\n";
  workload::DataGenOptions datagen;
  datagen.scale = scale;
  const auto base_tables = workload::GenerateTpcdsData(datagen);

  storage::ThrottledDisk disk(dir, profile);
  runtime::ControllerOptions options;
  options.budget = 24LL * 1024 * 1024;  // 24 MiB Memory Catalog
  runtime::Controller controller(&disk, options);
  controller.LoadBaseTables(base_tables);

  workload::MvWorkload wl = workload::BuildIo1();
  std::cout << "workload " << wl.name << ": " << wl.num_nodes()
            << " MVs from TPC-DS queries 5/77/80\n";

  // Run 1 (unoptimized) doubles as the profiling run collecting the
  // execution metadata S/C Opt consumes.
  std::cout << "profiling run (no optimization)...\n";
  const runtime::RunReport baseline = controller.ProfileAndAnnotate(&wl);
  if (!baseline.ok) {
    std::cerr << "baseline failed: " << baseline.error << "\n";
    return 1;
  }
  std::cout << StrFormat("  wall time %.2fs (read %.2fs, compute %.2fs, "
                         "write %.2fs)\n",
                         baseline.wall_seconds,
                         baseline.TotalReadSeconds(),
                         baseline.TotalComputeSeconds(),
                         baseline.TotalWriteSeconds());

  // Keep a copy of every materialized MV for the correctness check.
  std::map<std::string, engine::Table> reference;
  for (graph::NodeId v = 0; v < wl.graph.num_nodes(); ++v) {
    const std::string& name = wl.graph.node(v).name;
    reference.emplace(name, disk.ReadTable(name));
  }

  // Optimize and re-run.
  const opt::AlternatingResult result =
      opt::Optimizer{}.Optimize(wl.graph, options.budget);
  std::cout << "\nS/C plan: "
            << opt::FlaggedNodes(result.plan.flags).size()
            << " MVs flagged for the " << FormatBytes(options.budget)
            << " Memory Catalog\n";

  std::cout << "optimized run...\n";
  const runtime::RunReport optimized = controller.Run(wl, result.plan);
  if (!optimized.ok) {
    std::cerr << "optimized run failed: " << optimized.error << "\n";
    return 1;
  }
  std::cout << StrFormat("  wall time %.2fs (peak Memory Catalog %s)\n",
                         optimized.wall_seconds,
                         FormatBytes(optimized.peak_memory).c_str());
  std::cout << StrFormat("\nend-to-end speedup: %.2fx\n",
                         baseline.wall_seconds / optimized.wall_seconds);

  // Correctness: all MVs materialized identically (§I: "S/C still
  // materializes all data exactly as defined in MV definitions").
  for (const auto& [name, expected] : reference) {
    const engine::Table actual = disk.ReadTable(name);
    if (!(actual == expected)) {
      std::cerr << "MISMATCH in MV " << name << "\n";
      return 1;
    }
  }
  std::cout << "verified: all " << reference.size()
            << " MVs byte-identical to the unoptimized run\n";
  return 0;
}
