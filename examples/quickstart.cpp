// Quickstart: define a small MV dependency graph, estimate speedup scores
// from a device model, run S/C Opt, and simulate the refresh run.
//
//   $ ./examples/quickstart
#include <iostream>

#include "api/sc.h"

int main() {
  using namespace sc;

  // 1. Describe the MV refresh run as a dependency graph. Each node is
  //    one MV update; sizes are the expected output sizes; compute times
  //    and base-table input volumes come from past runs (§III-A).
  graph::Graph g;
  auto add = [&](const char* name, std::int64_t size_mb, double compute_s,
                 std::int64_t base_in_mb) {
    graph::NodeInfo info;
    info.name = name;
    info.size_bytes = size_mb * kMB;
    info.compute_seconds = compute_s;
    info.base_input_bytes = base_in_mb * kMB;
    return g.AddNode(std::move(info));
  };
  const auto daily_sales = add("daily_sales", 800, 4.0, 2000);
  const auto sales_by_store = add("sales_by_store", 120, 2.0, 0);
  const auto sales_by_item = add("sales_by_item", 300, 2.5, 0);
  const auto top_stores = add("top_stores", 4, 0.5, 0);
  const auto top_items = add("top_items", 6, 0.5, 0);
  const auto exec_dashboard = add("exec_dashboard", 2, 0.3, 0);
  g.AddEdge(daily_sales, sales_by_store);
  g.AddEdge(daily_sales, sales_by_item);
  g.AddEdge(sales_by_store, top_stores);
  g.AddEdge(sales_by_item, top_items);
  g.AddEdge(top_stores, exec_dashboard);
  g.AddEdge(top_items, exec_dashboard);

  // 2. Estimate speedup scores T from the storage device profile.
  const cost::CostModel model{cost::DeviceProfile::PaperTestbed()};
  cost::SpeedupEstimator{model}.AnnotateGraph(&g);
  std::cout << "speedup scores (seconds saved by keeping each MV in "
               "memory):\n";
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    std::cout << "  " << g.node(v).name << ": "
              << StrFormat("%.2f s", g.node(v).speedup_score) << "\n";
  }

  // 3. Solve S/C Opt with a 1GB Memory Catalog.
  const std::int64_t budget = 1 * kGB;
  const opt::Optimizer optimizer;
  const opt::AlternatingResult result = optimizer.Optimize(g, budget);
  std::cout << "\nS/C plan (Memory Catalog " << FormatBytes(budget)
            << ", converged in " << result.iterations << " iterations):\n"
            << opt::DescribePlan(g, result.plan);

  // 4. Simulate the run against the device model and compare to the
  //    unoptimized baseline.
  sim::SimOptions sim_options;
  sim_options.budget = budget;
  const double noopt = sim::SimulateNoOpt(g, sim_options).makespan;
  const double sc = sim::SimulateRun(g, result.plan, sim_options).makespan;
  std::cout << "\nsimulated refresh time: " << StrFormat("%.2f", noopt)
            << "s unoptimized -> " << StrFormat("%.2f", sc)
            << "s with S/C (" << StrFormat("%.2fx", noopt / sc)
            << " speedup)\n";

  // 5. Export the annotated graph for visualization.
  graph::DotOptions dot;
  dot.highlighted = opt::FlaggedNodes(result.plan.flags);
  std::cout << "\nGraphviz (flagged nodes filled):\n"
            << graph::ToDot(g, dot);
  return 0;
}
