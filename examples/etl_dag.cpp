// Generic DAG-job scheduling (the paper's §VIII future-work direction):
// S/C's optimizer is oblivious to what each node computes, so it applies
// to any recurring workload of jobs with acyclic dependencies — here an
// Airflow-style ETL pipeline loaded from the text graph format.
//
//   $ ./examples/etl_dag
#include <iostream>

#include "api/sc.h"

namespace {

// An ETL pipeline spec in the serde text format:
//   node <name> <size_bytes> <speedup_score> <compute_s> <base_input_bytes>
// (speedup scores left at 0 here; they are derived from the device model.)
constexpr const char* kPipeline = R"(
# nightly clickstream ETL
node raw_events      6000000000 0 30.0 9000000000
node sessionized     2500000000 0 22.0 0
node enriched        2800000000 0 15.0 500000000
node user_profiles    400000000 0 12.0 0
node funnel_daily      80000000 0  6.0 0
node retention_7d      60000000 0  8.0 0
node ads_attribution  900000000 0 10.0 200000000
node revenue_report     5000000 0  2.0 0
edge raw_events sessionized
edge sessionized enriched
edge enriched user_profiles
edge enriched funnel_daily
edge user_profiles retention_7d
edge sessionized ads_attribution
edge ads_attribution revenue_report
edge funnel_daily revenue_report
)";

}  // namespace

int main() {
  using namespace sc;

  graph::Graph g;
  std::string error;
  if (!graph::Deserialize(kPipeline, &g, &error)) {
    std::cerr << "failed to parse pipeline: " << error << "\n";
    return 1;
  }
  std::cout << "loaded ETL DAG: " << g.num_nodes() << " jobs, "
            << g.num_edges() << " dependencies, total intermediate data "
            << FormatBytes(g.TotalSize()) << "\n";

  // Derive speedup scores for a slower, NFS-like storage tier.
  const cost::CostModel model{cost::DeviceProfile::SlowNfs()};
  cost::SpeedupEstimator{model}.AnnotateGraph(&g);

  for (const std::int64_t budget : {1 * kGB, 4 * kGB, 8 * kGB}) {
    const opt::AlternatingResult result =
        opt::Optimizer{}.Optimize(g, budget);
    sim::SimOptions sim_options;
    sim_options.budget = budget;
    sim_options.device = cost::DeviceProfile::SlowNfs();
    const double noopt = sim::SimulateNoOpt(g, sim_options).makespan;
    const double sc =
        sim::SimulateRun(g, result.plan, sim_options).makespan;
    std::cout << "\nwith " << FormatBytes(budget) << " of memory: "
              << StrFormat("%.0fs -> %.0fs (%.2fx)", noopt, sc, noopt / sc)
              << "\n  kept in memory:";
    for (graph::NodeId v : opt::FlaggedNodes(result.plan.flags)) {
      std::cout << " " << g.node(v).name;
    }
    std::cout << "\n  order:";
    for (graph::NodeId v : result.plan.order.sequence) {
      std::cout << " " << g.node(v).name;
    }
    std::cout << "\n";
  }
  return 0;
}
