// Inspects a Chrome/Perfetto trace produced by the observability layer
// (ServiceOptions::trace_path, bench_service_throughput --trace, or
// obs::WriteChromeTraceFile): prints per-lane utilization, the per-job
// queued / waiting-budget / executing / publishing breakdown, and the
// longest node executions (critical-path suspects).
//
//   trace_inspect <trace.json> [--check]
//
// With --check, exits nonzero unless the trace contains at least one
// span in each phase a service run must emit (job, budget, plan, node,
// publish) — the CI bench-smoke validation that a traced run actually
// reconstructs end to end.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "obs/trace.h"

int main(int argc, char** argv) {
  const char* path = nullptr;
  bool check = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else if (path == nullptr) {
      path = argv[i];
    } else {
      std::fprintf(stderr, "usage: %s <trace.json> [--check]\n", argv[0]);
      return 2;
    }
  }
  if (path == nullptr) {
    std::fprintf(stderr, "usage: %s <trace.json> [--check]\n", argv[0]);
    return 2;
  }

  std::vector<sc::obs::TraceEvent> events;
  std::string error;
  if (!sc::obs::LoadChromeTraceFile(path, &events, &error)) {
    std::fprintf(stderr, "trace_inspect: cannot load %s: %s\n", path,
                 error.c_str());
    return 1;
  }

  const sc::obs::TraceAnalysis analysis = sc::obs::AnalyzeTrace(events);
  std::fputs(sc::obs::FormatTraceAnalysis(analysis).c_str(), stdout);

  if (check) {
    // A complete service trace has at least one span per phase.
    const char* required[] = {"job", "budget", "plan", "node", "publish"};
    bool ok = true;
    for (const char* category : required) {
      const auto it = analysis.category_counts.find(category);
      if (it == analysis.category_counts.end() || it->second <= 0) {
        std::fprintf(stderr,
                     "trace_inspect: check FAILED: no \"%s\" events\n",
                     category);
        ok = false;
      }
    }
    if (!ok) return 1;
    std::printf("check OK: all required phases present\n");
  }
  return 0;
}
