// Multi-tenant serving: run many refresh jobs from several tenants
// through the RefreshService, which arbitrates one shared Memory-Catalog
// budget, caches plans, and reports per-tenant metrics.
//
//   $ ./examples/multi_tenant_service
#include <filesystem>
#include <iostream>
#include <memory>
#include <vector>

#include "api/sc.h"

int main() {
  using namespace sc;

  // External storage shared by every worker (unthrottled for the demo).
  const std::string dir =
      (std::filesystem::temp_directory_path() / "sc_service_example")
          .string();
  std::filesystem::remove_all(dir);
  storage::DiskProfile profile;
  profile.throttle = false;
  storage::ThrottledDisk disk(dir, profile);

  // Ingest tiny TPC-DS base tables and profile the workload once so the
  // graph carries observed sizes, compute times, and speedup scores.
  workload::DataGenOptions data_options;
  data_options.scale = 0.03;
  runtime::Controller profiler(&disk, runtime::ControllerOptions{});
  profiler.LoadBaseTables(workload::GenerateTpcdsData(data_options));
  auto wl = std::make_shared<workload::MvWorkload>(workload::BuildIo1());
  const runtime::RunReport profiled = profiler.ProfileAndAnnotate(wl.get());
  if (!profiled.ok) {
    std::cerr << "profiling failed: " << profiled.error << "\n";
    return 1;
  }

  // A 4-worker service with a 16MiB global Memory Catalog. The "batch"
  // tenant is quota-capped to a quarter of the budget so interactive
  // tenants keep headroom.
  service::ServiceOptions options;
  options.num_workers = 4;
  options.global_budget = 16LL * 1024 * 1024;
  service::RefreshService service(&disk, options);
  service.SetTenantQuota("batch", options.global_budget / 4);

  std::cout << "submitting 12 refresh jobs from 3 tenants...\n";
  std::vector<std::future<service::JobResult>> futures;
  for (int i = 0; i < 12; ++i) {
    service::RefreshJobSpec spec;
    spec.workload = wl;
    spec.tenant = i % 3 == 0 ? "batch" : i % 3 == 1 ? "bi" : "dashboards";
    spec.priority = spec.tenant == "dashboards" ? 1 : 0;  // latency-sensitive
    spec.requested_budget = options.global_budget / 2;
    futures.push_back(service.Submit(std::move(spec)));
  }

  for (auto& future : futures) {
    const service::JobResult r = future.get();
    std::cout << StrFormat(
        "job %2llu  tenant=%-10s ok=%d granted=%-8s wait=%.3fs exec=%.3fs "
        "catalog-hit=%.0f%% %s%s\n",
        static_cast<unsigned long long>(r.job_id), r.tenant.c_str(),
        r.report.ok ? 1 : 0, FormatBytes(r.granted_budget).c_str(),
        r.queue_wait_seconds, r.exec_seconds,
        100.0 * r.report.CatalogHitRate(),
        r.plan_cache_hit ? "[plan cache]" : "",
        r.reoptimized ? "[re-optimized]" : "");
  }

  std::cout << "\nper-tenant metrics:\n" << service.metrics().FormatTable();
  std::cout << "\npeak concurrent Memory-Catalog reservation: "
            << FormatBytes(service.broker().peak_reserved_bytes()) << " / "
            << FormatBytes(options.global_budget) << " global budget\n";
  return 0;
}
