#ifndef SC_COST_SPEEDUP_H_
#define SC_COST_SPEEDUP_H_

#include "cost/cost_model.h"
#include "graph/graph.h"

namespace sc::cost {

/// Computes the paper's speedup scores T (§IV):
///
///   t_i = sum over children j of [ read(v_i | disk) - read(v_i | memory) ]
///       + [ create(v_i | disk) - create(v_i | memory) ]
///
/// i.e. the seconds saved by keeping v_i's output in the Memory Catalog:
/// every downstream consumer reads it from memory instead of disk, and the
/// blocking disk write is replaced by a memory create (the disk
/// materialization then overlaps downstream compute, §III-C).
class SpeedupEstimator {
 public:
  explicit SpeedupEstimator(CostModel model) : model_(std::move(model)) {}

  /// Speedup score for a single node (does not mutate the graph).
  double ScoreFor(const graph::Graph& g, graph::NodeId id) const;

  /// Fills `speedup_score` on every node of `g` from its size and fan-out.
  void AnnotateGraph(graph::Graph* g) const;

  const CostModel& model() const { return model_; }

 private:
  CostModel model_;
};

}  // namespace sc::cost

#endif  // SC_COST_SPEEDUP_H_
