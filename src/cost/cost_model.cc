#include "cost/cost_model.h"

#include <stdexcept>

namespace sc::cost {

DeviceProfile DeviceProfile::PaperTestbed() { return DeviceProfile{}; }

DeviceProfile DeviceProfile::SlowNfs() {
  DeviceProfile p;
  p.disk_read_bw = 80.0e6;
  p.disk_write_bw = 50.0e6;
  p.disk_latency = 2e-3;
  return p;
}

CostModel::CostModel(DeviceProfile profile) : profile_(profile) {
  if (profile_.disk_read_bw <= 0 || profile_.disk_write_bw <= 0 ||
      profile_.mem_read_bw <= 0 || profile_.mem_write_bw <= 0) {
    throw std::invalid_argument("CostModel: bandwidths must be positive");
  }
}

double CostModel::DiskReadSeconds(std::int64_t bytes, double files) const {
  if (bytes <= 0) return 0.0;
  return profile_.table_read_overhead * files + profile_.disk_latency +
         static_cast<double>(bytes) / profile_.disk_read_bw;
}

double CostModel::DiskWriteSeconds(std::int64_t bytes, double files) const {
  if (bytes <= 0) return 0.0;
  return profile_.table_write_overhead * files +
         DiskWriteChannelSeconds(bytes);
}

double CostModel::DiskWriteChannelSeconds(std::int64_t bytes) const {
  if (bytes <= 0) return 0.0;
  return profile_.disk_latency +
         static_cast<double>(bytes) * profile_.write_amplification /
             profile_.disk_write_bw;
}

double CostModel::NodeExecSeconds(double compute_seconds,
                                  std::int64_t read_bytes,
                                  std::int64_t write_bytes,
                                  double files) const {
  return compute_seconds + DiskReadSeconds(read_bytes, files) +
         DiskWriteSeconds(write_bytes, files);
}

double CostModel::MemReadSeconds(std::int64_t bytes) const {
  if (bytes <= 0) return 0.0;
  return static_cast<double>(bytes) / profile_.mem_read_bw;
}

double CostModel::MemWriteSeconds(std::int64_t bytes) const {
  if (bytes <= 0) return 0.0;
  return static_cast<double>(bytes) / profile_.mem_write_bw;
}

}  // namespace sc::cost
