#ifndef SC_COST_COST_MODEL_H_
#define SC_COST_COST_MODEL_H_

#include <cstdint>

namespace sc::cost {

/// Physical characteristics of the storage/memory devices an MV refresh run
/// reads and writes. Defaults are calibrated to the paper's testbed (§VI-A):
/// disk read 519.8 MB/s, write 358.9 MB/s, read latency 175 us. Memory
/// bandwidths approximate a DDR4 server. `write_amplification` models the
/// serialization + compression overhead of persisting columnar files on top
/// of raw bandwidth (paper §II-C observes write-dominated materialization).
struct DeviceProfile {
  double disk_read_bw = 519.8e6;    // bytes/second
  double disk_write_bw = 358.9e6;   // bytes/second
  double disk_latency = 175e-6;     // seconds per access
  double mem_read_bw = 12.0e9;      // bytes/second
  double mem_write_bw = 10.0e9;     // bytes/second
  double write_amplification = 1.0; // multiplies disk write volume
  /// Fixed per-table costs of materializing/opening a table on warehouse
  /// storage (file creation, serialization setup, commit, catalog/metastore
  /// round-trips). These dominate small tables — the paper's Figure 3
  /// measures 37-69% of CTAS time going to the write path even at 1GB —
  /// and are what S/C's short-circuiting removes from the blocking path.
  double table_write_overhead = 2.0;  // seconds per table written
  double table_read_overhead = 0.3;   // seconds per table opened

  /// The single-node server used in the paper's experiments.
  static DeviceProfile PaperTestbed();

  /// A deliberately slow disk (NFS-like) used by examples/tests to make
  /// I/O savings visible at small data scales.
  static DeviceProfile SlowNfs();
};

/// Converts byte volumes into access times (seconds) for each device and
/// placement. This is the only place where "time" enters the optimizer: the
/// speedup scores T of S/C Opt are derived from these costs.
class CostModel {
 public:
  explicit CostModel(DeviceProfile profile = DeviceProfile::PaperTestbed());

  const DeviceProfile& profile() const { return profile_; }

  /// Time to read `bytes` from external storage: `files` table/partition
  /// opens plus a sequential scan.
  double DiskReadSeconds(std::int64_t bytes, double files = 1.0) const;
  /// Time to materialize `bytes` to external storage: `files` per-file
  /// commit overheads plus the bandwidth-bound transfer.
  double DiskWriteSeconds(std::int64_t bytes, double files = 1.0) const;
  /// The bandwidth-bound portion of a write (no per-table overhead): the
  /// only part that occupies the shared storage write channel; metadata/
  /// commit overheads of concurrent materializations proceed in parallel.
  double DiskWriteChannelSeconds(std::int64_t bytes) const;
  /// Time to read `bytes` from the Memory Catalog.
  double MemReadSeconds(std::int64_t bytes) const;
  /// Time to create `bytes` in the Memory Catalog.
  double MemWriteSeconds(std::int64_t bytes) const;

  /// Estimated wall-seconds one refresh node occupies an execution lane:
  /// its compute time plus the device-bound input read and blocking
  /// output write. The runtime's inline-dispatch decision (run a cheap
  /// node on the scheduler thread instead of paying a lane handoff)
  /// thresholds against this.
  double NodeExecSeconds(double compute_seconds, std::int64_t read_bytes,
                         std::int64_t write_bytes,
                         double files = 1.0) const;

 private:
  DeviceProfile profile_;
};

}  // namespace sc::cost

#endif  // SC_COST_COST_MODEL_H_
