#include "cost/speedup.h"

#include <algorithm>

namespace sc::cost {

double SpeedupEstimator::ScoreFor(const graph::Graph& g,
                                  graph::NodeId id) const {
  const std::int64_t size = g.node(id).size_bytes;
  const double files = g.node(id).file_count;
  if (size <= 0) return 0.0;
  const double per_read_saving =
      model_.DiskReadSeconds(size, files) - model_.MemReadSeconds(size);
  const double write_saving =
      model_.DiskWriteSeconds(size, files) - model_.MemWriteSeconds(size);
  const double num_children = static_cast<double>(g.children(id).size());
  return std::max(0.0, num_children * per_read_saving + write_saving);
}

void SpeedupEstimator::AnnotateGraph(graph::Graph* g) const {
  for (graph::NodeId i = 0; i < g->num_nodes(); ++i) {
    g->mutable_node(i).speedup_score = ScoreFor(*g, i);
  }
}

}  // namespace sc::cost
