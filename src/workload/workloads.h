#ifndef SC_WORKLOAD_WORKLOADS_H_
#define SC_WORKLOAD_WORKLOADS_H_

#include <string>
#include <vector>

#include "engine/plan.h"
#include "graph/graph.h"

namespace sc::workload {

/// Analytic scaling coefficients for one MV node: how its output size,
/// compute time, and base-table input volume grow with the dataset size.
/// The `part_*` multipliers apply for the date-partitioned dataset variant
/// (TPC-DSp), whose pruned scans yield smaller intermediates (paper §VI-A).
struct NodeScale {
  double out_mb_per_gb = 1.0;       // intermediate size, MB per dataset GB
  double compute_sec_per_gb = 0.1;  // compute seconds per dataset GB
  double base_in_mb_per_gb = 0.0;   // base-table bytes read, MB per GB
  double part_out = 1.0;
  double part_compute = 1.0;
  double part_in = 1.0;
};

/// One MV refresh workload: a dependency graph, one executable logical
/// plan per node (for the real engine), and one NodeScale per node (for
/// the analytic model / simulator). Node names double as MV table names;
/// plan scan leaves reference either base tables or parent MV names.
struct MvWorkload {
  std::string name;
  std::string description;
  std::vector<int> tpcds_queries;
  graph::Graph graph;
  std::vector<engine::PlanPtr> plans;
  std::vector<NodeScale> scale;

  std::int32_t num_nodes() const { return graph.num_nodes(); }
};

/// The five workloads of Table III. Node counts match the paper:
/// I/O 1 (q5,77,80): 21, I/O 2 (q2,59,74,75): 19, I/O 3 (q44,49): 26,
/// Compute 1 (q33,56,60,61): 21, Compute 2 (q14,23): 16.
MvWorkload BuildIo1();
MvWorkload BuildIo2();
MvWorkload BuildIo3();
MvWorkload BuildCompute1();
MvWorkload BuildCompute2();

/// All five, in Table III order.
std::vector<MvWorkload> StandardWorkloads();

/// A synthetic wide workload exercising the intra-job parallel runtime:
/// `width` independent channel-fact-table rollups ("wide_mv_<i>")
/// feeding one union-aggregate sink ("wide_sink"), i.e. two antichain
/// stages of width `width` and 1. With `heavy`, each rollup also sorts
/// and aggregates net profit (the benchmark shape — more compute per
/// node); tests use the light shape.
MvWorkload BuildWideSynthetic(int width, bool heavy = false);

/// A synthetic string-heavy workload over the GenerateStringHeavyData
/// base tables: `width` independent category rollups
/// ("strheavy_mv_<i>"), each a fact-dimension hash join on the string
/// `category` key aggregated by (category, bucket) — so every MV output
/// repeats each category string ~32x and dictionary encoding compresses
/// it hard — feeding one union-aggregate sink ("strheavy_sink"). The
/// shape where compressed residency packs visibly more MVs per byte of
/// Memory-Catalog budget.
MvWorkload BuildStringHeavySynthetic(int width);

/// A synthetic multi-chain workload: `chains` independent linear chains
/// of `depth` rollups over the sales channels ("chain_<c>_<d>"), i.e.
/// `depth` antichain stages of width `chains`. This is the shape where
/// execution-order choice matters to the parallel runtime: a depth-first
/// order starves early antichains, a stage-major order feeds every lane
/// (see opt::WidenStages).
MvWorkload BuildChainsSynthetic(int chains, int depth);

/// Consistency check used by tests: every plan's scan leaves are either
/// base tables or names of graph parents, and edges match plan references.
bool ValidateWorkload(const MvWorkload& wl, std::string* error);

}  // namespace sc::workload

#endif  // SC_WORKLOAD_WORKLOADS_H_
