#ifndef SC_WORKLOAD_MARKOV_H_
#define SC_WORKLOAD_MARKOV_H_

#include <array>
#include <cstdint>
#include <string>

#include "common/rng.h"

namespace sc::workload {

/// Relational operator kinds assigned to synthetic DAG nodes (paper §VI-A:
/// "a Markov chain — trained on the same query set — for determining node
/// operations (i.e. JOIN, AGG)").
enum class OpKind : std::uint8_t {
  kScan = 0,     // read base table(s)
  kFilter = 1,
  kProject = 2,
  kJoin = 3,
  kAggregate = 4,
};
inline constexpr std::size_t kNumOpKinds = 5;

std::string ToString(OpKind op);

/// First-order Markov chain over operator kinds: the operation of a node
/// is sampled conditioned on the operation of its (primary) parent. The
/// default transition matrix encodes operator bigram frequencies measured
/// from the SPJ decomposition of the TPC-DS queries used in this repo plus
/// typical Spider query shapes (joins follow scans/filters; aggregates
/// terminate chains; projects interleave).
class MarkovOpChain {
 public:
  using Matrix = std::array<std::array<double, kNumOpKinds>, kNumOpKinds>;

  explicit MarkovOpChain(Matrix transitions);

  /// The built-in TPC-DS/Spider-derived chain.
  static MarkovOpChain TpcdsTrained();

  /// Samples the op of a node whose primary parent has op `parent`.
  OpKind Next(OpKind parent, Rng& rng) const;

  /// Samples an op for a root node (stationary-ish start distribution:
  /// roots are scans with high probability).
  OpKind Root(Rng& rng) const;

  const Matrix& transitions() const { return transitions_; }

 private:
  Matrix transitions_;
};

/// Output size of a node given its op and the sizes of its inputs
/// (paper: "operations are used to derive the sizes ... of nodes from
/// their inputs"). Deterministic given the rng state.
std::int64_t DeriveOutputSize(OpKind op, std::int64_t max_input_bytes,
                              Rng& rng);

}  // namespace sc::workload

#endif  // SC_WORKLOAD_MARKOV_H_
