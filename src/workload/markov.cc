#include "workload/markov.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sc::workload {

std::string ToString(OpKind op) {
  switch (op) {
    case OpKind::kScan: return "SCAN";
    case OpKind::kFilter: return "FILTER";
    case OpKind::kProject: return "PROJECT";
    case OpKind::kJoin: return "JOIN";
    case OpKind::kAggregate: return "AGG";
  }
  return "?";
}

MarkovOpChain::MarkovOpChain(Matrix transitions)
    : transitions_(transitions) {
  for (auto& row : transitions_) {
    double total = 0;
    for (double p : row) {
      if (p < 0) throw std::invalid_argument("negative transition weight");
      total += p;
    }
    if (total <= 0) throw std::invalid_argument("empty transition row");
    for (double& p : row) p /= total;
  }
}

MarkovOpChain MarkovOpChain::TpcdsTrained() {
  // Rows: parent op; columns: child op in order
  // {SCAN, FILTER, PROJECT, JOIN, AGG}. Weights are bigram counts from the
  // SPJ units of the TPC-DS queries in Table III (q2,5,14,23,33,44,49,56,
  // 59,60,61,74,75,77,80) normalized per row, smoothed (+0.02).
  Matrix m = {{
      // SCAN ->
      {{0.02, 0.30, 0.12, 0.44, 0.12}},
      // FILTER ->
      {{0.02, 0.06, 0.22, 0.46, 0.24}},
      // PROJECT ->
      {{0.02, 0.10, 0.08, 0.38, 0.42}},
      // JOIN ->
      {{0.02, 0.18, 0.24, 0.26, 0.30}},
      // AGG ->
      {{0.02, 0.12, 0.34, 0.32, 0.20}},
  }};
  return MarkovOpChain(m);
}

OpKind MarkovOpChain::Next(OpKind parent, Rng& rng) const {
  const auto& row = transitions_[static_cast<std::size_t>(parent)];
  std::vector<double> weights(row.begin(), row.end());
  return static_cast<OpKind>(rng.WeightedIndex(weights));
}

OpKind MarkovOpChain::Root(Rng& rng) const {
  // Roots read base tables: overwhelmingly scans, occasionally an
  // aggregation pushed straight onto a base table.
  return rng.Bernoulli(0.85) ? OpKind::kScan : OpKind::kAggregate;
}

std::int64_t DeriveOutputSize(OpKind op, std::int64_t max_input_bytes,
                              Rng& rng) {
  const double input = std::max<double>(1.0, static_cast<double>(
      max_input_bytes));
  double factor = 1.0;
  switch (op) {
    case OpKind::kScan:
      factor = rng.UniformDouble(0.8, 1.0);
      break;
    case OpKind::kFilter:
      factor = rng.UniformDouble(0.05, 0.6);
      break;
    case OpKind::kProject:
      factor = rng.UniformDouble(0.3, 0.8);
      break;
    case OpKind::kJoin:
      factor = rng.UniformDouble(0.2, 1.4);
      break;
    case OpKind::kAggregate:
      factor = rng.UniformDouble(0.002, 0.05);
      break;
  }
  return static_cast<std::int64_t>(std::llround(input * factor));
}

}  // namespace sc::workload
