#ifndef SC_WORKLOAD_TPCDS_H_
#define SC_WORKLOAD_TPCDS_H_

#include <string>
#include <vector>

#include "engine/table.h"

namespace sc::workload {

/// Schemas for the subset of TPC-DS tables the paper's five workloads
/// touch (simplified columns; surrogate keys and the measures the queries
/// aggregate). The three channel fact tables are store_sales,
/// catalog_sales, and web_sales; dimensions are date_dim, item, customer,
/// store, and promotion.

engine::Schema DateDimSchema();
engine::Schema ItemSchema();
engine::Schema CustomerSchema();
engine::Schema StoreSchema();
engine::Schema PromotionSchema();
/// All three channel fact tables share this layout with a channel-specific
/// column prefix ("ss", "cs", "ws").
engine::Schema SalesSchema(const std::string& prefix);

/// Names of all base tables, in generation order.
std::vector<std::string> BaseTableNames();

/// Column prefix for a channel fact table name ("store_sales" -> "ss").
std::string ChannelPrefix(const std::string& fact_table);

}  // namespace sc::workload

#endif  // SC_WORKLOAD_TPCDS_H_
