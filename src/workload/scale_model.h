#ifndef SC_WORKLOAD_SCALE_MODEL_H_
#define SC_WORKLOAD_SCALE_MODEL_H_

#include <cstdint>

#include "cost/cost_model.h"
#include "workload/workloads.h"

namespace sc::workload {

/// Analytic scale model: instantiates a workload's graph metadata (node
/// sizes, compute seconds, base-table input bytes, speedup scores) for a
/// given dataset size, standing in for the paper's "execution metadata
/// from past MV refresh runs" (§III-A) at warehouse scales where real
/// execution is impractical on a laptop.
struct ScaleModelOptions {
  /// Dataset size in (decimal) GB, e.g. 100 for the 100GB TPC-DS dataset.
  double dataset_gb = 100.0;
  /// Use the date-partitioned variant (TPC-DSp): pruned scans, smaller
  /// intermediates (applies the NodeScale part_* multipliers).
  bool partitioned = false;
  /// Device model used to derive speedup scores from sizes.
  cost::DeviceProfile device;
};

/// Fills `size_bytes`, `compute_seconds`, `base_input_bytes`, and
/// `speedup_score` on every node of `wl->graph`.
void AnnotateWorkload(MvWorkload* wl, const ScaleModelOptions& options);

/// Memory Catalog size for "`percent` of dataset size" (paper Figures
/// 10-11 express budgets as percentages).
std::int64_t BudgetForPercent(double dataset_gb, double percent);

/// Fraction of a workload's simulated NoOpt runtime spent reading/writing
/// intermediate MVs (the "I/O ratio" column of Table III). Requires the
/// workload to be annotated first.
double IntermediateIoRatio(const MvWorkload& wl,
                           const ScaleModelOptions& options);

}  // namespace sc::workload

#endif  // SC_WORKLOAD_SCALE_MODEL_H_
