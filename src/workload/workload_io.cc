#include "workload/workload_io.h"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/str_util.h"
#include "engine/plan_serde.h"
#include "graph/serde.h"

namespace sc::workload {

namespace fs = std::filesystem;

bool SaveWorkload(const MvWorkload& wl, const std::string& dir,
                  std::string* error) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    if (error != nullptr) *error = "cannot create directory " + dir;
    return false;
  }
  if (!graph::SaveToFile(wl.graph, dir + "/graph.scg", error)) return false;

  std::ofstream plans(dir + "/plans.scp");
  if (!plans) {
    if (error != nullptr) *error = "cannot write plans.scp";
    return false;
  }
  for (graph::NodeId v = 0; v < wl.graph.num_nodes(); ++v) {
    plans << wl.graph.node(v).name << ' '
          << engine::SerializePlan(*wl.plans[v]) << '\n';
  }

  std::ofstream meta(dir + "/meta.sct");
  if (!meta) {
    if (error != nullptr) *error = "cannot write meta.sct";
    return false;
  }
  meta << "name " << wl.name << '\n';
  meta << "description " << wl.description << '\n';
  meta << "queries";
  for (int q : wl.tpcds_queries) meta << ' ' << q;
  meta << '\n';
  return static_cast<bool>(plans) && static_cast<bool>(meta);
}

bool LoadWorkload(const std::string& dir, MvWorkload* wl,
                  std::string* error) {
  *wl = MvWorkload();
  if (!graph::LoadFromFile(dir + "/graph.scg", &wl->graph, error)) {
    return false;
  }
  wl->plans.assign(static_cast<std::size_t>(wl->graph.num_nodes()),
                   nullptr);
  wl->scale.assign(static_cast<std::size_t>(wl->graph.num_nodes()),
                   NodeScale{});

  std::ifstream plans(dir + "/plans.scp");
  if (!plans) {
    if (error != nullptr) *error = "cannot read plans.scp";
    return false;
  }
  std::string line;
  int lineno = 0;
  while (std::getline(plans, line)) {
    ++lineno;
    const std::string trimmed = Trim(line);
    if (trimmed.empty()) continue;
    const std::size_t space = trimmed.find(' ');
    if (space == std::string::npos) {
      if (error != nullptr) {
        *error = StrFormat("plans.scp line %d: missing plan", lineno);
      }
      return false;
    }
    const std::string name = trimmed.substr(0, space);
    auto id = wl->graph.FindByName(name);
    if (!id.has_value()) {
      if (error != nullptr) {
        *error = "plans.scp references unknown MV " + name;
      }
      return false;
    }
    std::string parse_error;
    engine::PlanPtr plan =
        engine::ParsePlan(trimmed.substr(space + 1), &parse_error);
    if (plan == nullptr) {
      if (error != nullptr) {
        *error = "plan for " + name + ": " + parse_error;
      }
      return false;
    }
    wl->plans[static_cast<std::size_t>(*id)] = std::move(plan);
  }

  std::ifstream meta(dir + "/meta.sct");
  if (meta) {
    while (std::getline(meta, line)) {
      std::istringstream fields(line);
      std::string key;
      fields >> key;
      if (key == "name") {
        fields >> wl->name;
      } else if (key == "description") {
        std::getline(fields, wl->description);
        wl->description = Trim(wl->description);
      } else if (key == "queries") {
        int q;
        while (fields >> q) wl->tpcds_queries.push_back(q);
      }
    }
  }

  for (const auto& plan : wl->plans) {
    if (plan == nullptr) {
      if (error != nullptr) *error = "plans.scp is missing an MV plan";
      return false;
    }
  }
  return ValidateWorkload(*wl, error);
}

}  // namespace sc::workload
