#include "workload/dag_gen.h"

#include <algorithm>
#include <cmath>

#include "common/bytes.h"
#include "common/rng.h"
#include "cost/speedup.h"

namespace sc::workload {

const std::vector<std::int64_t>& Tpcds100GbTableSizes() {
  // Approximate on-disk sizes of TPC-DS tables at scale factor 100
  // (store_sales ~38GB, catalog_sales ~28GB, web_sales ~14GB, inventory
  // ~8GB, the rest dimensions).
  static const std::vector<std::int64_t> kSizes = {
      38 * kGB, 28 * kGB, 14 * kGB, 8 * kGB,  2 * kGB,
      1 * kGB,  500 * kMB, 240 * kMB, 120 * kMB, 40 * kMB,
  };
  return kSizes;
}

graph::Graph GenerateDag(const DagGenOptions& options) {
  Rng rng(options.seed);
  const MarkovOpChain chain = MarkovOpChain::TpcdsTrained();
  const std::int32_t n = std::max(1, options.num_nodes);

  // Stage layout: height/width = r and height*width ~= n give
  // height = sqrt(n*r). Stage sizes are drawn around the mean width with
  // the configured standard deviation, then adjusted to total exactly n.
  const double ratio = std::max(0.01, options.height_width_ratio);
  std::int32_t height = static_cast<std::int32_t>(std::lround(
      std::sqrt(static_cast<double>(n) * ratio)));
  height = std::clamp(height, 1, n);
  const double mean_width = static_cast<double>(n) / height;

  std::vector<std::int32_t> stage_sizes(height, 0);
  std::int32_t assigned = 0;
  for (std::int32_t s = 0; s < height; ++s) {
    double draw = rng.Normal(mean_width, options.stage_stdev);
    std::int32_t size = std::max<std::int32_t>(
        1, static_cast<std::int32_t>(std::lround(draw)));
    // Never over-assign: leave at least one node per remaining stage.
    const std::int32_t remaining_stages = height - s - 1;
    size = std::min<std::int32_t>(size, n - assigned - remaining_stages);
    size = std::max(1, size);
    stage_sizes[s] = size;
    assigned += size;
  }
  // Distribute any remainder over stages round-robin.
  std::int32_t leftover = n - assigned;
  for (std::int32_t s = 0; leftover > 0; s = (s + 1) % height) {
    stage_sizes[s]++;
    --leftover;
  }

  graph::Graph g;
  std::vector<std::vector<graph::NodeId>> stages(height);
  std::vector<OpKind> ops(n);
  std::int32_t counter = 0;
  for (std::int32_t s = 0; s < height; ++s) {
    for (std::int32_t k = 0; k < stage_sizes[s]; ++k) {
      graph::NodeInfo info;
      info.name = "n" + std::to_string(counter++);
      stages[s].push_back(g.AddNode(std::move(info)));
    }
  }

  // Edges: each node draws outdegree ~ U[0, max_outdegree] edges to nodes
  // in later stages (strongly preferring the next stage, like Spark
  // shuffle boundaries).
  for (std::int32_t s = 0; s + 1 < height; ++s) {
    for (graph::NodeId v : stages[s]) {
      const std::int64_t degree =
          rng.UniformInt(0, options.max_outdegree);
      for (std::int64_t e = 0; e < degree; ++e) {
        const std::int32_t target_stage =
            rng.Bernoulli(0.8) || s + 2 >= height
                ? s + 1
                : static_cast<std::int32_t>(
                      rng.UniformInt(s + 1, height - 1));
        const auto& pool = stages[target_stage];
        const graph::NodeId to = pool[static_cast<std::size_t>(
            rng.UniformInt(0, static_cast<std::int64_t>(pool.size()) - 1))];
        g.AddEdge(v, to);  // duplicate edges are rejected internally
      }
    }
  }
  // Connectivity: every non-first-stage node needs at least one parent.
  for (std::int32_t s = 1; s < height; ++s) {
    for (graph::NodeId v : stages[s]) {
      if (g.parents(v).empty()) {
        const auto& pool = stages[s - 1];
        const graph::NodeId from = pool[static_cast<std::size_t>(
            rng.UniformInt(0, static_cast<std::int64_t>(pool.size()) - 1))];
        g.AddEdge(from, v);
      }
    }
  }

  // Ops, then sizes from ops (roots sample base-table sizes).
  const auto& table_sizes = Tpcds100GbTableSizes();
  for (std::int32_t s = 0; s < height; ++s) {
    for (graph::NodeId v : stages[s]) {
      if (g.parents(v).empty()) {
        ops[v] = chain.Root(rng);
        const std::int64_t base = table_sizes[static_cast<std::size_t>(
            rng.UniformInt(0,
                           static_cast<std::int64_t>(table_sizes.size()) -
                               1))];
        // Roots already apply their op to the base table they read.
        g.mutable_node(v).base_input_bytes = base;
        g.mutable_node(v).size_bytes =
            DeriveOutputSize(ops[v], base / 16, rng);
      } else {
        // Primary parent: the largest input.
        graph::NodeId primary = g.parents(v)[0];
        std::int64_t max_in = 0;
        for (graph::NodeId p : g.parents(v)) {
          if (g.node(p).size_bytes >= max_in) {
            max_in = g.node(p).size_bytes;
            primary = p;
          }
        }
        ops[v] = chain.Next(ops[primary], rng);
        g.mutable_node(v).size_bytes = DeriveOutputSize(ops[v], max_in, rng);
      }
      // Compute time grows with input volume; aggregation is the most
      // compute-intensive per byte.
      std::int64_t in_bytes = g.node(v).base_input_bytes;
      for (graph::NodeId p : g.parents(v)) in_bytes += g.node(p).size_bytes;
      const double per_byte =
          ops[v] == OpKind::kAggregate ? 2.0e-9 : 0.6e-9;
      g.mutable_node(v).compute_seconds =
          static_cast<double>(in_bytes) * per_byte;
    }
  }

  // File counts follow table sizes (same calibration as the scale model).
  for (graph::NodeId v = 0; v < n; ++v) {
    g.mutable_node(v).file_count = std::clamp(
        std::sqrt(static_cast<double>(g.node(v).size_bytes) / (1.2e9)),
        0.3, 10.0);
  }

  cost::SpeedupEstimator estimator{cost::CostModel(options.device)};
  estimator.AnnotateGraph(&g);
  return g;
}

}  // namespace sc::workload
