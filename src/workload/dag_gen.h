#ifndef SC_WORKLOAD_DAG_GEN_H_
#define SC_WORKLOAD_DAG_GEN_H_

#include <cstdint>

#include "cost/cost_model.h"
#include "graph/graph.h"
#include "workload/markov.h"

namespace sc::workload {

/// Synthetic workload generator (paper §VI-A "Generated Workload",
/// §VI-H): layered DAGs following the structure of Spark workloads, where
/// height = number of stages and width = nodes per stage. Node operations
/// come from the Markov chain; operations derive node sizes from their
/// inputs; root sizes are sampled from the base-table sizes of the 100GB
/// TPC-DS dataset; speedup scores follow from sizes via the cost model.
struct DagGenOptions {
  std::int32_t num_nodes = 100;       // "DAG size"
  double height_width_ratio = 1.0;    // "DAG height/width"
  std::int32_t max_outdegree = 4;     // "Node max. outdegree"
  double stage_stdev = 1.0;           // "Stage node count StDev"
  std::uint64_t seed = 42;
  cost::DeviceProfile device;         // for speedup-score annotation
};

/// Generates one synthetic dependency graph with sizes, compute times, and
/// speedup scores filled in. The result is always a valid DAG with
/// `num_nodes` nodes; every non-root stage node has at least one parent in
/// an earlier stage.
graph::Graph GenerateDag(const DagGenOptions& options);

/// Base-table sizes (bytes) of the 100GB TPC-DS dataset used to seed root
/// node sizes (store_sales &c. dominate; dimensions are small).
const std::vector<std::int64_t>& Tpcds100GbTableSizes();

}  // namespace sc::workload

#endif  // SC_WORKLOAD_DAG_GEN_H_
