#include "workload/workloads.h"

#include <algorithm>
#include <set>
#include <stdexcept>

#include "workload/tpcds.h"

namespace sc::workload {

namespace {

using engine::AggSpec;
using engine::AvgOf;
using engine::Col;
using engine::CountAll;
using engine::Lit;
using engine::MaxOf;
using engine::NamedExpr;
using engine::PlanPtr;
using engine::SumOf;

// ---------------------------------------------------------------------------
// NodeScale presets. Values are calibrated so that, fed through the analytic
// scale model and the simulator, workload runtimes and I/O ratios land in the
// neighbourhood of Table III / Figure 9 (shape, not absolute numbers).
// ---------------------------------------------------------------------------

/// Wide fact-table scan producing a large intermediate (normalized sales).
NodeScale BigMv() {
  return NodeScale{.out_mb_per_gb = 12.0,
                   .compute_sec_per_gb = 0.030,
                   .base_in_mb_per_gb = 12.0,
                   .part_out = 0.40,
                   .part_compute = 0.30,
                   .part_in = 0.15};
}

/// Join with a dimension on top of a large intermediate.
NodeScale BigJoinMv() {
  return NodeScale{.out_mb_per_gb = 8.0,
                   .compute_sec_per_gb = 0.025,
                   .base_in_mb_per_gb = 2.0,
                   .part_out = 0.40,
                   .part_compute = 0.30,
                   .part_in = 0.80};
}

/// Medium intermediate (per-item / per-customer rollups).
NodeScale MedMv() {
  return NodeScale{.out_mb_per_gb = 2.0,
                   .compute_sec_per_gb = 0.012,
                   .base_in_mb_per_gb = 0.0,
                   .part_out = 0.40,
                   .part_compute = 0.40,
                   .part_in = 1.0};
}

/// Medium intermediate that scans a fact table directly (Compute 2 sales).
NodeScale MedScanMv() {
  return NodeScale{.out_mb_per_gb = 5.0,
                   .compute_sec_per_gb = 0.050,
                   .base_in_mb_per_gb = 20.0,
                   .part_out = 0.40,
                   .part_compute = 0.35,
                   .part_in = 0.15};
}

/// Small aggregate output.
NodeScale SmallMv() {
  return NodeScale{.out_mb_per_gb = 0.20,
                   .compute_sec_per_gb = 0.008,
                   .base_in_mb_per_gb = 0.0,
                   .part_out = 0.60,
                   .part_compute = 0.80,
                   .part_in = 1.0};
}

/// Compute-dominated aggregation straight over base tables (Compute 1).
NodeScale AggHeavyMv() {
  return NodeScale{.out_mb_per_gb = 0.06,
                   .compute_sec_per_gb = 0.10,
                   .base_in_mb_per_gb = 25.0,
                   .part_out = 1.0,
                   .part_compute = 0.90,
                   .part_in = 0.50};
}

/// Terminal report MV (sort + limit).
NodeScale ReportMv() {
  return NodeScale{.out_mb_per_gb = 0.01,
                   .compute_sec_per_gb = 0.004,
                   .base_in_mb_per_gb = 0.0};
}

// ---------------------------------------------------------------------------
// Builder.
// ---------------------------------------------------------------------------

class Builder {
 public:
  explicit Builder(std::string name, std::string description,
                   std::vector<int> queries) {
    wl_.name = std::move(name);
    wl_.description = std::move(description);
    wl_.tpcds_queries = std::move(queries);
  }

  graph::NodeId Add(const std::string& name, PlanPtr plan, NodeScale scale,
                    const std::vector<std::string>& parents) {
    const graph::NodeId id = wl_.graph.AddNode(name);
    wl_.plans.push_back(std::move(plan));
    wl_.scale.push_back(scale);
    for (const std::string& parent : parents) {
      auto pid = wl_.graph.FindByName(parent);
      if (!pid.has_value()) {
        throw std::logic_error("workload builder: unknown parent " + parent);
      }
      wl_.graph.AddEdge(*pid, id);
    }
    return id;
  }

  MvWorkload Take() { return std::move(wl_); }

 private:
  MvWorkload wl_;
};

/// Channel descriptors: fact table, column prefix, channel literal.
struct Channel {
  const char* fact;
  const char* prefix;
  std::int64_t id;
};
const Channel kChannels[] = {{"store_sales", "ss", 1},
                             {"catalog_sales", "cs", 2},
                             {"web_sales", "ws", 3}};

/// Normalized channel sales: fact JOIN date_dim, filtered to a year range,
/// projected to channel-agnostic column names. The canonical "big
/// intermediate" every workload starts from.
PlanPtr NormalizedSales(const Channel& ch, std::int64_t year_lo,
                        std::int64_t year_hi) {
  const std::string p = ch.prefix;
  auto c = [&p](const char* suffix) { return Col(p + "_" + suffix); };
  PlanPtr joined =
      engine::HashJoin(engine::Scan(ch.fact), engine::Scan("date_dim"),
                       {p + "_sold_date_sk"}, {"d_date_sk"});
  PlanPtr filtered = engine::Filter(
      joined, engine::And(engine::Ge(Col("d_year"), Lit(year_lo)),
                          engine::Le(Col("d_year"), Lit(year_hi))));
  return engine::Project(
      filtered,
      {NamedExpr{"item_sk", c("item_sk")},
       NamedExpr{"customer_sk", c("customer_sk")},
       NamedExpr{"store_sk", c("store_sk")},
       NamedExpr{"promo_sk", c("promo_sk")},
       NamedExpr{"quantity", c("quantity")},
       NamedExpr{"sales_price", c("sales_price")},
       NamedExpr{"ext_price", c("ext_sales_price")},
       NamedExpr{"profit", c("net_profit")},
       NamedExpr{"year", Col("d_year")},
       NamedExpr{"moy", Col("d_moy")},
       NamedExpr{"day_name", Col("d_day_name")}});
}

/// Three-way UnionAll over same-schema MVs.
PlanPtr Union3(const std::string& a, const std::string& b,
               const std::string& c) {
  return engine::UnionAll(
      engine::UnionAll(engine::Scan(a), engine::Scan(b)), engine::Scan(c));
}

}  // namespace

// ---------------------------------------------------------------------------
// I/O 1 — TPC-DS q5, q77, q80 (21 nodes): channel profit reports.
// ---------------------------------------------------------------------------
MvWorkload BuildIo1() {
  Builder b("io1", "Channel profit reports (TPC-DS 5, 77, 80)", {5, 77, 80});
  for (const Channel& ch : kChannels) {
    const std::string p = ch.prefix;
    b.Add("io1_" + p + "_sales", NormalizedSales(ch, 1998, 2002), BigMv(),
          {});
    b.Add("io1_" + p + "_enriched",
          engine::HashJoin(engine::Scan("io1_" + p + "_sales"),
                           engine::Scan("item"), {"item_sk"}, {"i_item_sk"}),
          BigJoinMv(), {"io1_" + p + "_sales"});
    b.Add("io1_" + p + "_profit",
          engine::Project(
              engine::Aggregate(engine::Scan("io1_" + p + "_enriched"),
                                {"store_sk"},
                                {SumOf(Col("ext_price"), "revenue"),
                                 SumOf(Col("profit"), "profit"),
                                 CountAll("cnt")}),
              {NamedExpr{"channel", Lit(ch.id)},
               NamedExpr{"store_sk", Col("store_sk")},
               NamedExpr{"revenue", Col("revenue")},
               NamedExpr{"profit", Col("profit")},
               NamedExpr{"cnt", Col("cnt")}}),
          SmallMv(), {"io1_" + p + "_enriched"});
  }
  b.Add("io1_q5_union",
        Union3("io1_ss_profit", "io1_cs_profit", "io1_ws_profit"), SmallMv(),
        {"io1_ss_profit", "io1_cs_profit", "io1_ws_profit"});
  b.Add("io1_q5_report",
        engine::Limit(engine::Sort(engine::Scan("io1_q5_union"), {"revenue"},
                                   {true}),
                      100),
        ReportMv(), {"io1_q5_union"});
  for (const Channel& ch : kChannels) {
    const std::string p = ch.prefix;
    b.Add("io1_" + p + "_rev",
          engine::Project(
              engine::Aggregate(engine::Scan("io1_" + p + "_sales"), {"moy"},
                                {SumOf(Col("ext_price"), "revenue"),
                                 CountAll("cnt")}),
              {NamedExpr{"channel", Lit(ch.id)},
               NamedExpr{"moy", Col("moy")},
               NamedExpr{"revenue", Col("revenue")},
               NamedExpr{"cnt", Col("cnt")}}),
          SmallMv(), {"io1_" + p + "_sales"});
  }
  b.Add("io1_q77_union", Union3("io1_ss_rev", "io1_cs_rev", "io1_ws_rev"),
        SmallMv(), {"io1_ss_rev", "io1_cs_rev", "io1_ws_rev"});
  b.Add("io1_q77_report",
        engine::Limit(engine::Sort(engine::Scan("io1_q77_union"),
                                   {"revenue"}, {true}),
                      50),
        ReportMv(), {"io1_q77_union"});
  for (const Channel& ch : kChannels) {
    const std::string p = ch.prefix;
    b.Add("io1_" + p + "_promo",
          engine::Project(
              engine::Aggregate(
                  engine::Filter(
                      engine::HashJoin(engine::Scan("io1_" + p + "_enriched"),
                                       engine::Scan("promotion"),
                                       {"promo_sk"}, {"p_promo_sk"}),
                      engine::Eq(Col("p_channel_email"), Lit(std::int64_t{1}))),
                  {"i_category_id"},
                  {SumOf(Col("ext_price"), "revenue"),
                   SumOf(Col("profit"), "profit")}),
              {NamedExpr{"channel", Lit(ch.id)},
               NamedExpr{"i_category_id", Col("i_category_id")},
               NamedExpr{"revenue", Col("revenue")},
               NamedExpr{"profit", Col("profit")}}),
          MedMv(), {"io1_" + p + "_enriched"});
  }
  b.Add("io1_q80_union",
        Union3("io1_ss_promo", "io1_cs_promo", "io1_ws_promo"), SmallMv(),
        {"io1_ss_promo", "io1_cs_promo", "io1_ws_promo"});
  b.Add("io1_q80_report",
        engine::Limit(engine::Sort(engine::Scan("io1_q80_union"), {"profit"},
                                   {true}),
                      100),
        ReportMv(), {"io1_q80_union"});
  return b.Take();
}

// ---------------------------------------------------------------------------
// I/O 2 — TPC-DS q2, q59, q74, q75 (19 nodes): weekly / yearly comparisons.
// ---------------------------------------------------------------------------
MvWorkload BuildIo2() {
  Builder b("io2", "Weekly and yearly sales comparisons (TPC-DS 2, 59, 74, 75)",
            {2, 59, 74, 75});
  for (const Channel& ch : kChannels) {
    b.Add(std::string("io2_") + ch.prefix + "_sales",
          NormalizedSales(ch, 1998, 2002), BigMv(), {});
  }
  // q2: web vs catalog revenue by day-of-week and year.
  b.Add("io2_ws_weekly",
        engine::Project(
            engine::Aggregate(engine::Scan("io2_ws_sales"),
                              {"day_name", "year"},
                              {SumOf(Col("ext_price"), "ws_revenue")}),
            {NamedExpr{"day_name", Col("day_name")},
             NamedExpr{"year", Col("year")},
             NamedExpr{"ws_revenue", Col("ws_revenue")}}),
        SmallMv(), {"io2_ws_sales"});
  b.Add("io2_cs_weekly",
        engine::Project(
            engine::Aggregate(engine::Scan("io2_cs_sales"),
                              {"day_name", "year"},
                              {SumOf(Col("ext_price"), "cs_revenue")}),
            {NamedExpr{"day_name", Col("day_name")},
             NamedExpr{"year", Col("year")},
             NamedExpr{"cs_revenue", Col("cs_revenue")}}),
        SmallMv(), {"io2_cs_sales"});
  b.Add("io2_q2_join",
        engine::HashJoin(engine::Scan("io2_ws_weekly"),
                         engine::Scan("io2_cs_weekly"),
                         {"day_name", "year"}, {"day_name", "year"}),
        SmallMv(), {"io2_ws_weekly", "io2_cs_weekly"});
  b.Add("io2_q2_ratio",
        engine::Project(engine::Scan("io2_q2_join"),
                        {NamedExpr{"day_name", Col("day_name")},
                         NamedExpr{"year", Col("year")},
                         NamedExpr{"ratio", engine::Div(Col("ws_revenue"),
                                                        Col("cs_revenue"))}}),
        SmallMv(), {"io2_q2_join"});
  b.Add("io2_q2_report",
        engine::Sort(engine::Scan("io2_q2_ratio"), {"year", "ratio"},
                     {false, true}),
        ReportMv(), {"io2_q2_ratio"});
  // q59: store monthly revenue.
  b.Add("io2_q59_weekly",
        engine::Aggregate(engine::Scan("io2_ss_sales"),
                          {"store_sk", "year", "moy"},
                          {SumOf(Col("ext_price"), "monthly_rev")}),
        MedMv(), {"io2_ss_sales"});
  b.Add("io2_q59_store",
        engine::HashJoin(engine::Scan("io2_q59_weekly"),
                         engine::Scan("store"), {"store_sk"},
                         {"s_store_sk"}),
        SmallMv(), {"io2_q59_weekly"});
  b.Add("io2_q59_report",
        engine::Limit(engine::Sort(engine::Scan("io2_q59_store"),
                                   {"monthly_rev"}, {true}),
                      100),
        ReportMv(), {"io2_q59_store"});
  // q74: customers whose web spend outgrew store spend.
  b.Add("io2_ss_cust",
        engine::Aggregate(engine::Scan("io2_ss_sales"),
                          {"customer_sk", "year"},
                          {SumOf(Col("ext_price"), "ss_total")}),
        MedMv(), {"io2_ss_sales"});
  b.Add("io2_ws_cust",
        engine::Aggregate(engine::Scan("io2_ws_sales"),
                          {"customer_sk", "year"},
                          {SumOf(Col("ext_price"), "ws_total")}),
        MedMv(), {"io2_ws_sales"});
  b.Add("io2_q74_join",
        engine::HashJoin(engine::Scan("io2_ss_cust"),
                         engine::Scan("io2_ws_cust"),
                         {"customer_sk", "year"}, {"customer_sk", "year"}),
        MedMv(), {"io2_ss_cust", "io2_ws_cust"});
  b.Add("io2_q74_report",
        engine::Limit(
            engine::Sort(
                engine::Filter(engine::Scan("io2_q74_join"),
                               engine::Gt(Col("ws_total"), Col("ss_total"))),
                {"ws_total"}, {true}),
            100),
        ReportMv(), {"io2_q74_join"});
  // q75: catalog category year-over-year delta.
  b.Add("io2_cs_item",
        engine::HashJoin(engine::Scan("io2_cs_sales"), engine::Scan("item"),
                         {"item_sk"}, {"i_item_sk"}),
        BigJoinMv(), {"io2_cs_sales"});
  b.Add("io2_q75_yearly",
        engine::Aggregate(engine::Scan("io2_cs_item"),
                          {"i_category_id", "year"},
                          {SumOf(Col("quantity"), "qty"),
                           SumOf(Col("ext_price"), "amt")}),
        SmallMv(), {"io2_cs_item"});
  b.Add("io2_q75_delta",
        engine::HashJoin(
            engine::Filter(engine::Scan("io2_q75_yearly"),
                           engine::Eq(Col("year"), Lit(std::int64_t{2000}))),
            engine::Project(
                engine::Filter(engine::Scan("io2_q75_yearly"),
                               engine::Eq(Col("year"),
                                          Lit(std::int64_t{1999}))),
                {NamedExpr{"category", Col("i_category_id")},
                 NamedExpr{"prev_qty", Col("qty")},
                 NamedExpr{"prev_amt", Col("amt")}}),
            {"i_category_id"}, {"category"}),
        SmallMv(), {"io2_q75_yearly"});
  b.Add("io2_q75_report",
        engine::Sort(
            engine::Project(
                engine::Scan("io2_q75_delta"),
                {NamedExpr{"i_category_id", Col("i_category_id")},
                 NamedExpr{"qty_delta",
                           engine::Sub(Col("qty"), Col("prev_qty"))},
                 NamedExpr{"amt_delta",
                           engine::Sub(Col("amt"), Col("prev_amt"))}}),
            {"amt_delta"}, {true}),
        ReportMv(), {"io2_q75_delta"});
  return b.Take();
}

// ---------------------------------------------------------------------------
// I/O 3 — TPC-DS q44, q49 (26 nodes): best/worst item rankings per channel.
// ---------------------------------------------------------------------------
MvWorkload BuildIo3() {
  Builder b("io3", "Best/worst performing items per channel (TPC-DS 44, 49)",
            {44, 49});
  for (const Channel& ch : kChannels) {
    const std::string p = ch.prefix;
    const std::string sales = "io3_" + p + "_sales";
    const std::string enriched = "io3_" + p + "_enriched";
    const std::string by_item = "io3_" + p + "_by_item";
    const std::string avg_item = "io3_" + p + "_avg";
    b.Add(sales, NormalizedSales(ch, 1998, 2002), BigMv(), {});
    b.Add(enriched,
          engine::HashJoin(engine::Scan(sales), engine::Scan("item"),
                           {"item_sk"}, {"i_item_sk"}),
          BigJoinMv(), {sales});
    b.Add(by_item,
          engine::Aggregate(engine::Scan(enriched), {"item_sk"},
                            {SumOf(Col("profit"), "profit"),
                             SumOf(Col("ext_price"), "revenue"),
                             CountAll("cnt")}),
          MedMv(), {enriched});
    b.Add(avg_item,
          engine::Project(
              engine::Aggregate(engine::Scan(by_item), {},
                                {AvgOf(Col("profit"), "avg_profit")}),
              {NamedExpr{"key", Lit(std::int64_t{1})},
               NamedExpr{"avg_profit", Col("avg_profit")}}),
          SmallMv(), {by_item});
    auto keyed_items = [&]() {
      return engine::Project(engine::Scan(by_item),
                             {NamedExpr{"key", Lit(std::int64_t{1})},
                              NamedExpr{"item_sk", Col("item_sk")},
                              NamedExpr{"profit", Col("profit")},
                              NamedExpr{"revenue", Col("revenue")},
                              NamedExpr{"cnt", Col("cnt")}});
    };
    auto ranked = [&](bool best) {
      PlanPtr joined = engine::HashJoin(keyed_items(),
                                        engine::Scan(avg_item), {"key"},
                                        {"key"});
      PlanPtr filtered = engine::Filter(
          joined, best ? engine::Gt(Col("profit"), Col("avg_profit"))
                       : engine::Lt(Col("profit"), Col("avg_profit")));
      PlanPtr projected = engine::Project(
          filtered, {NamedExpr{"channel", Lit(ch.id)},
                     NamedExpr{"item_sk", Col("item_sk")},
                     NamedExpr{"profit", Col("profit")},
                     NamedExpr{"revenue", Col("revenue")}});
      return engine::Limit(
          engine::Sort(projected, {"profit"}, {best}), 100);
    };
    b.Add("io3_" + p + "_best", ranked(true), SmallMv(), {by_item, avg_item});
    b.Add("io3_" + p + "_worst", ranked(false), SmallMv(),
          {by_item, avg_item});
  }
  b.Add("io3_q44_best",
        Union3("io3_ss_best", "io3_cs_best", "io3_ws_best"), SmallMv(),
        {"io3_ss_best", "io3_cs_best", "io3_ws_best"});
  b.Add("io3_q44_worst",
        Union3("io3_ss_worst", "io3_cs_worst", "io3_ws_worst"), SmallMv(),
        {"io3_ss_worst", "io3_cs_worst", "io3_ws_worst"});
  b.Add("io3_q44_report",
        engine::Sort(engine::UnionAll(engine::Scan("io3_q44_best"),
                                      engine::Scan("io3_q44_worst")),
                     {"channel", "profit"}, {false, true}),
        ReportMv(), {"io3_q44_best", "io3_q44_worst"});
  for (const Channel& ch : kChannels) {
    const std::string p = ch.prefix;
    b.Add("io3_" + p + "_ratio",
          engine::Project(
              engine::Scan("io3_" + p + "_by_item"),
              {NamedExpr{"channel", Lit(ch.id)},
               NamedExpr{"item_sk", Col("item_sk")},
               NamedExpr{"ratio",
                         engine::Div(Col("profit"), Col("revenue"))}}),
          MedMv(), {"io3_" + p + "_by_item"});
  }
  b.Add("io3_q49_union",
        Union3("io3_ss_ratio", "io3_cs_ratio", "io3_ws_ratio"), MedMv(),
        {"io3_ss_ratio", "io3_cs_ratio", "io3_ws_ratio"});
  b.Add("io3_q49_report",
        engine::Limit(engine::Sort(engine::Scan("io3_q49_union"), {"ratio"},
                                   {true}),
                      100),
        ReportMv(), {"io3_q49_union"});
  return b.Take();
}

// ---------------------------------------------------------------------------
// Compute 1 — TPC-DS q33, q56, q60, q61 (21 nodes): category rollups.
// Aggregations straight over base tables: heavy compute, tiny intermediates.
// ---------------------------------------------------------------------------
MvWorkload BuildCompute1() {
  Builder b("compute1",
            "Category revenue rollups (TPC-DS 33, 56, 60, 61)",
            {33, 56, 60, 61});
  for (const Channel& ch : kChannels) {
    const std::string p = ch.prefix;
    auto c = [&p](const char* suffix) { return Col(p + "_" + suffix); };
    PlanPtr joined = engine::HashJoin(
        engine::HashJoin(engine::Scan(ch.fact), engine::Scan("date_dim"),
                         {p + "_sold_date_sk"}, {"d_date_sk"}),
        engine::Scan("item"), {p + "_item_sk"}, {"i_item_sk"});
    PlanPtr filtered = engine::Filter(
        joined,
        engine::And(engine::Le(Col("i_category_id"), Lit(std::int64_t{5})),
                    engine::Ge(Col("d_year"), Lit(std::int64_t{1999}))));
    b.Add("c1_" + p + "_cat",
          engine::Project(
              engine::Aggregate(
                  filtered,
                  {"i_brand_id", "i_class_id", "i_category_id",
                   "i_manufact_id"},
                  {SumOf(c("ext_sales_price"), "revenue"),
                   SumOf(c("net_profit"), "profit"), CountAll("cnt")}),
              {NamedExpr{"channel", Lit(ch.id)},
               NamedExpr{"i_brand_id", Col("i_brand_id")},
               NamedExpr{"i_class_id", Col("i_class_id")},
               NamedExpr{"i_category_id", Col("i_category_id")},
               NamedExpr{"i_manufact_id", Col("i_manufact_id")},
               NamedExpr{"revenue", Col("revenue")},
               NamedExpr{"profit", Col("profit")},
               NamedExpr{"cnt", Col("cnt")}}),
          AggHeavyMv(), {});
  }
  struct Rollup {
    const char* query;
    const char* key;
  };
  const Rollup rollups[] = {{"q33", "i_manufact_id"},
                            {"q56", "i_class_id"},
                            {"q60", "i_brand_id"}};
  for (const Rollup& rollup : rollups) {
    std::vector<std::string> parts;
    for (const Channel& ch : kChannels) {
      const std::string p = ch.prefix;
      const std::string name =
          std::string("c1_") + rollup.query + "_" + p;
      b.Add(name,
            engine::Project(
                engine::Aggregate(engine::Scan("c1_" + p + "_cat"),
                                  {rollup.key},
                                  {SumOf(Col("revenue"), "revenue")}),
                {NamedExpr{"channel", Lit(ch.id)},
                 NamedExpr{rollup.key, Col(rollup.key)},
                 NamedExpr{"revenue", Col("revenue")}}),
            SmallMv(), {"c1_" + p + "_cat"});
      parts.push_back(name);
    }
    const std::string union_name = std::string("c1_") + rollup.query +
                                   "_union";
    b.Add(union_name, Union3(parts[0], parts[1], parts[2]), SmallMv(),
          parts);
    b.Add(std::string("c1_") + rollup.query + "_report",
          engine::Limit(engine::Sort(engine::Scan(union_name), {"revenue"},
                                     {true}),
                        100),
          ReportMv(), {union_name});
  }
  // q61: promotional revenue share for store sales.
  b.Add("c1_q61_promo",
        engine::Project(
            engine::Aggregate(
                engine::Filter(
                    engine::HashJoin(engine::Scan("store_sales"),
                                     engine::Scan("promotion"),
                                     {"ss_promo_sk"}, {"p_promo_sk"}),
                    engine::Eq(Col("p_channel_email"), Lit(std::int64_t{1}))),
                {}, {SumOf(Col("ss_ext_sales_price"), "promo_rev")}),
            {NamedExpr{"key", Lit(std::int64_t{1})},
             NamedExpr{"promo_rev", Col("promo_rev")}}),
        AggHeavyMv(), {});
  b.Add("c1_q61_total",
        engine::Project(
            engine::Aggregate(engine::Scan("c1_ss_cat"), {},
                              {SumOf(Col("revenue"), "total_rev")}),
            {NamedExpr{"key", Lit(std::int64_t{1})},
             NamedExpr{"total_rev", Col("total_rev")}}),
        SmallMv(), {"c1_ss_cat"});
  b.Add("c1_q61_report",
        engine::Project(
            engine::HashJoin(engine::Scan("c1_q61_promo"),
                             engine::Scan("c1_q61_total"), {"key"}, {"key"}),
            {NamedExpr{"promo_rev", Col("promo_rev")},
             NamedExpr{"total_rev", Col("total_rev")},
             NamedExpr{"share",
                       engine::Div(Col("promo_rev"), Col("total_rev"))}}),
        ReportMv(), {"c1_q61_promo", "c1_q61_total"});
  return b.Take();
}

// ---------------------------------------------------------------------------
// Compute 2 — TPC-DS q14, q23 (16 nodes): cross-channel frequent items.
// ---------------------------------------------------------------------------
MvWorkload BuildCompute2() {
  Builder b("compute2", "Cross-channel frequent items (TPC-DS 14, 23)",
            {14, 23});
  for (const Channel& ch : kChannels) {
    const std::string p = ch.prefix;
    b.Add("c2_" + p + "_sales", NormalizedSales(ch, 1999, 2001),
          MedScanMv(), {});
    b.Add("c2_" + p + "_items",
          engine::Aggregate(engine::Scan("c2_" + p + "_sales"), {"item_sk"},
                            {SumOf(Col("quantity"), "qty"),
                             SumOf(Col("ext_price"), "revenue"),
                             CountAll("cnt")}),
          MedMv(), {"c2_" + p + "_sales"});
  }
  // q14: items sold through all three channels.
  b.Add("c2_common",
        engine::HashJoin(
            engine::HashJoin(
                engine::Scan("c2_ss_items"),
                engine::Project(engine::Scan("c2_cs_items"),
                                {NamedExpr{"cs_item_sk", Col("item_sk")},
                                 NamedExpr{"cs_qty", Col("qty")},
                                 NamedExpr{"cs_revenue", Col("revenue")}}),
                {"item_sk"}, {"cs_item_sk"}),
            engine::Project(engine::Scan("c2_ws_items"),
                            {NamedExpr{"ws_item_sk", Col("item_sk")},
                             NamedExpr{"ws_qty", Col("qty")},
                             NamedExpr{"ws_revenue", Col("revenue")}}),
            {"item_sk"}, {"ws_item_sk"}),
        MedMv(), {"c2_ss_items", "c2_cs_items", "c2_ws_items"});
  b.Add("c2_q14_agg",
        engine::Aggregate(engine::Scan("c2_common"), {},
                          {SumOf(Col("revenue"), "ss_total"),
                           SumOf(Col("cs_revenue"), "cs_total"),
                           SumOf(Col("ws_revenue"), "ws_total"),
                           CountAll("common_items")}),
        SmallMv(), {"c2_common"});
  b.Add("c2_q14_best",
        engine::Limit(
            engine::Sort(
                engine::Project(
                    engine::Scan("c2_common"),
                    {NamedExpr{"item_sk", Col("item_sk")},
                     NamedExpr{"total",
                               engine::Add(engine::Add(Col("revenue"),
                                                       Col("cs_revenue")),
                                           Col("ws_revenue"))}}),
                {"total"}, {true}),
            100),
        SmallMv(), {"c2_common"});
  b.Add("c2_q14_report",
        engine::Sort(engine::HashJoin(engine::Scan("c2_q14_best"),
                                      engine::Scan("item"), {"item_sk"},
                                      {"i_item_sk"}),
                     {"total"}, {true}),
        ReportMv(), {"c2_q14_best"});
  // q23: frequent store items bought by the biggest customers.
  b.Add("c2_cust_totals",
        engine::Aggregate(engine::Scan("c2_ss_sales"), {"customer_sk"},
                          {SumOf(Col("ext_price"), "total")}),
        MedMv(), {"c2_ss_sales"});
  b.Add("c2_freq_items",
        engine::Filter(engine::Scan("c2_ss_items"),
                       engine::Gt(Col("cnt"), Lit(std::int64_t{4}))),
        MedMv(), {"c2_ss_items"});
  b.Add("c2_q23_join",
        engine::HashJoin(engine::Scan("c2_ss_sales"),
                         engine::Scan("c2_freq_items"), {"item_sk"},
                         {"item_sk"}),
        MedMv(), {"c2_ss_sales", "c2_freq_items"});
  b.Add("c2_q23_agg",
        engine::Aggregate(engine::Scan("c2_q23_join"), {"customer_sk"},
                          {SumOf(Col("ext_price"), "freq_total")}),
        SmallMv(), {"c2_q23_join"});
  b.Add("c2_q23_max",
        engine::Project(
            engine::Aggregate(engine::Scan("c2_cust_totals"), {},
                              {MaxOf(Col("total"), "max_total")}),
            {NamedExpr{"key", Lit(std::int64_t{1})},
             NamedExpr{"max_total", Col("max_total")}}),
        SmallMv(), {"c2_cust_totals"});
  b.Add("c2_q23_report",
        engine::Limit(
            engine::Sort(
                engine::Filter(
                    engine::HashJoin(
                        engine::Project(
                            engine::Scan("c2_q23_agg"),
                            {NamedExpr{"key", Lit(std::int64_t{1})},
                             NamedExpr{"customer_sk", Col("customer_sk")},
                             NamedExpr{"freq_total", Col("freq_total")}}),
                        engine::Scan("c2_q23_max"), {"key"}, {"key"}),
                    engine::Gt(Col("freq_total"),
                               engine::Mul(Col("max_total"), Lit(0.1)))),
                {"freq_total"}, {true}),
            100),
        ReportMv(), {"c2_q23_agg", "c2_q23_max"});
  return b.Take();
}

std::vector<MvWorkload> StandardWorkloads() {
  std::vector<MvWorkload> out;
  out.push_back(BuildIo1());
  out.push_back(BuildIo2());
  out.push_back(BuildIo3());
  out.push_back(BuildCompute1());
  out.push_back(BuildCompute2());
  return out;
}

MvWorkload BuildWideSynthetic(int width, bool heavy) {
  using engine::Col;
  using engine::CountAll;
  using engine::Lit;
  using engine::Scan;
  MvWorkload wl;
  wl.name = "wide_synthetic";
  wl.description = "wide antichain of fact-table rollups + union sink";
  const std::vector<std::string> facts = {"store_sales", "catalog_sales",
                                          "web_sales"};
  std::vector<std::string> names;
  for (int i = 0; i < width; ++i) {
    const std::string& fact =
        facts[static_cast<std::size_t>(i) % facts.size()];
    const std::string prefix = ChannelPrefix(fact);
    std::vector<engine::AggSpec> aggs = {
        SumOf(Col(prefix + "_quantity"), "qty"), CountAll("cnt")};
    if (heavy) {
      aggs.push_back(SumOf(Col(prefix + "_net_profit"), "profit"));
    }
    PlanPtr rollup = engine::Aggregate(
        engine::Filter(Scan(fact),
                       engine::Gt(Col(prefix + "_customer_sk"),
                                  Lit(static_cast<std::int64_t>(i)))),
        {prefix + "_item_sk"}, std::move(aggs));
    if (heavy) rollup = engine::Sort(rollup, {"qty"}, {true});
    std::vector<NamedExpr> projections = {
        NamedExpr{"item_sk", Col(prefix + "_item_sk")},
        NamedExpr{"qty", Col("qty")}, NamedExpr{"cnt", Col("cnt")}};
    if (heavy) projections.push_back(NamedExpr{"profit", Col("profit")});
    const std::string name = "wide_mv_" + std::to_string(i);
    wl.graph.AddNode(name);
    wl.plans.push_back(
        engine::Project(std::move(rollup), std::move(projections)));
    wl.scale.push_back(MedMv());
    names.push_back(name);
  }
  PlanPtr all = Scan(names[0]);
  for (std::size_t i = 1; i < names.size(); ++i) {
    all = engine::UnionAll(all, Scan(names[i]));
  }
  const graph::NodeId sink = wl.graph.AddNode("wide_sink");
  wl.plans.push_back(engine::Aggregate(all, {"item_sk"},
                                       {SumOf(Col("qty"), "total_qty")}));
  wl.scale.push_back(SmallMv());
  for (const std::string& name : names) {
    wl.graph.AddEdge(*wl.graph.FindByName(name), sink);
  }
  return wl;
}

MvWorkload BuildStringHeavySynthetic(int width) {
  using engine::Col;
  using engine::CountAll;
  using engine::Lit;
  using engine::Scan;
  MvWorkload wl;
  wl.name = "string_heavy_synthetic";
  wl.description =
      "string-keyed join + rollup antichain over the events/category_dim "
      "tables (compressed-residency shape)";
  std::vector<std::string> names;
  for (int i = 0; i < width; ++i) {
    // Each MV filters a different qty slice so the content fingerprints
    // (and outputs) are distinct, then joins on the string category key
    // and rolls up by (category, bucket): every category string recurs
    // once per bucket in the output, the dictionary-friendly shape.
    PlanPtr rollup = engine::Aggregate(
        engine::HashJoin(
            engine::Filter(Scan("events"),
                           engine::Gt(Col("qty"),
                                      Lit(static_cast<std::int64_t>(i)))),
            Scan("category_dim"), {"category"}, {"category"}),
        {"category", "bucket"},
        {SumOf(Col("qty"), "qty"), SumOf(Col("weight"), "wt"),
         CountAll("cnt")});
    const std::string name = "strheavy_mv_" + std::to_string(i);
    wl.graph.AddNode(name);
    wl.plans.push_back(std::move(rollup));
    wl.scale.push_back(MedMv());
    names.push_back(name);
  }
  PlanPtr all = Scan(names[0]);
  for (std::size_t i = 1; i < names.size(); ++i) {
    all = engine::UnionAll(all, Scan(names[i]));
  }
  const graph::NodeId sink = wl.graph.AddNode("strheavy_sink");
  wl.plans.push_back(engine::Aggregate(
      all, {"category"},
      {SumOf(Col("qty"), "total_qty"), SumOf(Col("cnt"), "total_cnt")}));
  wl.scale.push_back(SmallMv());
  for (const std::string& name : names) {
    wl.graph.AddEdge(*wl.graph.FindByName(name), sink);
  }
  return wl;
}

MvWorkload BuildChainsSynthetic(int chains, int depth) {
  using engine::Col;
  using engine::CountAll;
  using engine::Lit;
  using engine::Scan;
  MvWorkload wl;
  wl.name = "chains_synthetic";
  wl.description = "independent rollup chains (stage-aware ordering shape)";
  const std::vector<std::string> facts = {"store_sales", "catalog_sales",
                                          "web_sales"};
  for (int c = 0; c < chains; ++c) {
    const std::string& fact =
        facts[static_cast<std::size_t>(c) % facts.size()];
    const std::string prefix = ChannelPrefix(fact);
    std::string parent;
    for (int d = 0; d < depth; ++d) {
      const std::string name =
          "chain_" + std::to_string(c) + "_" + std::to_string(d);
      PlanPtr plan;
      if (d == 0) {
        // Chain root: per-item rollup of one sales channel.
        plan = engine::Aggregate(
            engine::Filter(Scan(fact),
                           engine::Gt(Col(prefix + "_customer_sk"),
                                      Lit(static_cast<std::int64_t>(c)))),
            {prefix + "_item_sk"},
            {SumOf(Col(prefix + "_quantity"), "qty"), CountAll("cnt")});
        plan = engine::Project(
            std::move(plan),
            {NamedExpr{"item_sk", Col(prefix + "_item_sk")},
             NamedExpr{"qty", Col("qty")}, NamedExpr{"cnt", Col("cnt")}});
      } else {
        // Each link refines its parent against the fact table (the
        // incremental-refinement MV shape), keeping the schema stable.
        // Every link therefore performs real warehouse I/O — which is
        // what makes execution-order choice matter to lane utilization.
        plan = engine::Aggregate(
            engine::HashJoin(
                engine::Filter(
                    Scan(fact),
                    engine::Gt(Col(prefix + "_quantity"),
                               Lit(static_cast<std::int64_t>(d)))),
                Scan(parent), {prefix + "_item_sk"}, {"item_sk"}),
            {prefix + "_item_sk"},
            {SumOf(Col(prefix + "_quantity"), "qty"), CountAll("cnt")});
        plan = engine::Project(
            std::move(plan),
            {NamedExpr{"item_sk", Col(prefix + "_item_sk")},
             NamedExpr{"qty", Col("qty")}, NamedExpr{"cnt", Col("cnt")}});
      }
      const graph::NodeId v = wl.graph.AddNode(name);
      wl.plans.push_back(std::move(plan));
      wl.scale.push_back(d == 0 ? MedMv() : SmallMv());
      if (d > 0) {
        wl.graph.AddEdge(*wl.graph.FindByName(parent), v);
      }
      parent = name;
    }
  }
  return wl;
}

bool ValidateWorkload(const MvWorkload& wl, std::string* error) {
  auto fail = [&](const std::string& msg) {
    if (error != nullptr) *error = wl.name + ": " + msg;
    return false;
  };
  const std::int32_t n = wl.graph.num_nodes();
  if (wl.plans.size() != static_cast<std::size_t>(n)) {
    return fail("plan count mismatch");
  }
  if (wl.scale.size() != static_cast<std::size_t>(n)) {
    return fail("scale count mismatch");
  }
  std::string graph_error;
  if (!wl.graph.Validate(&graph_error)) return fail(graph_error);

  const std::vector<std::string> base = BaseTableNames();
  const std::set<std::string> base_set(base.begin(), base.end());
  for (graph::NodeId v = 0; v < n; ++v) {
    if (wl.plans[v] == nullptr) return fail("null plan");
    std::set<std::string> parent_names;
    for (graph::NodeId p : wl.graph.parents(v)) {
      parent_names.insert(wl.graph.node(p).name);
    }
    std::set<std::string> referenced_mvs;
    for (const std::string& t : wl.plans[v]->ReferencedTables()) {
      if (base_set.count(t) > 0) continue;
      if (parent_names.count(t) == 0) {
        return fail("node " + wl.graph.node(v).name +
                    " scans non-parent table " + t);
      }
      referenced_mvs.insert(t);
    }
    if (referenced_mvs != parent_names) {
      return fail("node " + wl.graph.node(v).name +
                  " has edges not reflected in its plan");
    }
  }
  return true;
}

}  // namespace sc::workload
