#ifndef SC_WORKLOAD_DATAGEN_H_
#define SC_WORKLOAD_DATAGEN_H_

#include <cstdint>
#include <map>
#include <string>

#include "engine/table.h"

namespace sc::workload {

/// Seeded synthetic data generator for the TPC-DS-like tables (the stand-in
/// for dsdgen). `scale` is a micro scale factor: scale 1.0 produces a few
/// MB of data — large enough to exercise every operator and the throttled
/// disk, small enough for CI. Row counts grow linearly with scale for the
/// fact tables and sub-linearly for dimensions, mirroring TPC-DS.
struct DataGenOptions {
  double scale = 1.0;
  std::uint64_t seed = 42;
  /// Years covered by date_dim and sales dates (TPC-DS spans 1998-2003).
  std::int64_t first_year = 1998;
  std::int64_t num_years = 5;
};

/// Derived row counts for a given scale, exposed for tests.
struct RowCounts {
  std::int64_t date_dim;
  std::int64_t item;
  std::int64_t customer;
  std::int64_t store;
  std::int64_t promotion;
  std::int64_t sales_per_channel;
};
RowCounts RowCountsFor(const DataGenOptions& options);

/// Generates all base tables. Foreign keys are guaranteed to resolve
/// (every *_sk references an existing dimension row), so joins never
/// silently produce empty results.
std::map<std::string, engine::TablePtr> GenerateTpcdsData(
    const DataGenOptions& options);

/// String-column cardinality knob for the string-heavy generator below:
/// how many distinct category strings the fact table draws from.
enum class StringCardinality { kLow, kMedium, kHigh };

/// Distinct category values per knob setting: 32 / 1024 / 65536.
std::int64_t StringCardinalityValues(StringCardinality cardinality);

/// Options for the string-heavy dataset (the dictionary-encoding /
/// compressed-residency benchmark shape — no TPC-DS counterpart).
struct StringHeavyOptions {
  /// Fact rows scale linearly: scale 1.0 is 60k events.
  double scale = 1.0;
  std::uint64_t seed = 43;
  StringCardinality cardinality = StringCardinality::kMedium;
  /// When true, the `category` columns of both tables are built
  /// dictionary-encoded over ONE shared engine::Column::DictionaryPtr,
  /// so joins and aggregates between them take the int32-code fast
  /// paths end-to-end. When false, plain string columns with identical
  /// contents (the pre-dictionary baseline representation).
  bool dictionary_encode = true;
};

/// Generates the string-heavy base tables:
///   events(category:str, bucket:i64, qty:i64, amount:f64) — fact,
///     Zipf-skewed category draws (heavy hitters exercise the
///     skew-aware morsel build);
///   category_dim(category:str, region:str, weight:f64, priority:i64)
///     — one row per distinct category.
/// Every fact category resolves in category_dim, so the canonical
/// join is never silently empty.
std::map<std::string, engine::TablePtr> GenerateStringHeavyData(
    const StringHeavyOptions& options);

}  // namespace sc::workload

#endif  // SC_WORKLOAD_DATAGEN_H_
