#include "workload/scale_model.h"

#include <algorithm>
#include <cmath>

#include "common/bytes.h"
#include "cost/speedup.h"

namespace sc::workload {

void AnnotateWorkload(MvWorkload* wl, const ScaleModelOptions& options) {
  const double gb = options.dataset_gb;
  for (graph::NodeId v = 0; v < wl->graph.num_nodes(); ++v) {
    const NodeScale& s = wl->scale[v];
    const double out_mult = options.partitioned ? s.part_out : 1.0;
    const double compute_mult = options.partitioned ? s.part_compute : 1.0;
    const double in_mult = options.partitioned ? s.part_in : 1.0;
    graph::NodeInfo& info = wl->graph.mutable_node(v);
    info.size_bytes = static_cast<std::int64_t>(
        std::llround(s.out_mb_per_gb * out_mult * gb * kMB));
    info.compute_seconds = s.compute_sec_per_gb * compute_mult * gb;
    info.base_input_bytes = static_cast<std::int64_t>(
        std::llround(s.base_in_mb_per_gb * in_mult * gb * kMB));
    // Per-table overhead scales with the number of files the MV
    // materializes into: larger tables split across more writer/partition
    // files. Calibrated so a 1.2GB table costs one unit of the device's
    // per-table overhead. Date-partitioned datasets produce more, smaller
    // files per byte.
    const double partition_files = options.partitioned ? 1.5 : 1.0;
    info.file_count = std::clamp(
        std::sqrt(static_cast<double>(info.size_bytes) / (1.2 * kGB)) *
            partition_files,
        0.3, 10.0);
  }
  cost::SpeedupEstimator estimator{cost::CostModel(options.device)};
  estimator.AnnotateGraph(&wl->graph);
}

std::int64_t BudgetForPercent(double dataset_gb, double percent) {
  return static_cast<std::int64_t>(
      std::llround(dataset_gb * kGB * percent / 100.0));
}

double IntermediateIoRatio(const MvWorkload& wl,
                           const ScaleModelOptions& options) {
  // Mirrors the paper's Table III estimate, which profiles the pure data
  // path with Polars: raw transfer time only, no warehouse-side per-table
  // materialization overheads.
  cost::DeviceProfile profile = options.device;
  profile.table_read_overhead = 0.0;
  profile.table_write_overhead = 0.0;
  const cost::CostModel model{profile};
  double intermediate_io = 0.0;
  double total = 0.0;
  for (graph::NodeId v = 0; v < wl.graph.num_nodes(); ++v) {
    const graph::NodeInfo& info = wl.graph.node(v);
    const double write = model.DiskWriteSeconds(info.size_bytes);
    const double reads_by_children =
        static_cast<double>(wl.graph.children(v).size()) *
        model.DiskReadSeconds(info.size_bytes);
    const double base_read = model.DiskReadSeconds(info.base_input_bytes);
    intermediate_io += write + reads_by_children;
    total += write + reads_by_children + base_read + info.compute_seconds;
  }
  return total > 0 ? intermediate_io / total : 0.0;
}

}  // namespace sc::workload
