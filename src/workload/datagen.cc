#include "workload/datagen.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "workload/tpcds.h"

namespace sc::workload {

namespace {

using engine::Column;
using engine::Table;
using engine::TablePtr;

TablePtr MakeDateDim(const DataGenOptions& options) {
  std::vector<std::int64_t> sk, year, moy, dom, qoy;
  std::vector<std::string> day_name;
  static const char* kDays[] = {"Sunday",   "Monday", "Tuesday", "Wednesday",
                                "Thursday", "Friday", "Saturday"};
  std::int64_t next_sk = 2450000;  // TPC-DS-style surrogate keys.
  for (std::int64_t y = 0; y < options.num_years; ++y) {
    for (std::int64_t m = 1; m <= 12; ++m) {
      for (std::int64_t d = 1; d <= 28; ++d) {  // uniform months, simple
        sk.push_back(next_sk);
        year.push_back(options.first_year + y);
        moy.push_back(m);
        dom.push_back(d);
        qoy.push_back((m - 1) / 3 + 1);
        day_name.push_back(kDays[next_sk % 7]);
        ++next_sk;
      }
    }
  }
  std::vector<Column> cols;
  cols.push_back(Column::FromInts(std::move(sk)));
  cols.push_back(Column::FromInts(std::move(year)));
  cols.push_back(Column::FromInts(std::move(moy)));
  cols.push_back(Column::FromInts(std::move(dom)));
  cols.push_back(Column::FromInts(std::move(qoy)));
  cols.push_back(Column::FromStrings(std::move(day_name)));
  return std::make_shared<Table>(DateDimSchema(), std::move(cols));
}

TablePtr MakeItem(std::int64_t rows, Rng& rng) {
  std::vector<std::int64_t> sk(rows), brand(rows), cls(rows), cat(rows),
      manu(rows);
  std::vector<double> price(rows);
  for (std::int64_t r = 0; r < rows; ++r) {
    sk[r] = r + 1;
    brand[r] = rng.UniformInt(1, 1000);
    cls[r] = rng.UniformInt(1, 100);
    cat[r] = rng.UniformInt(1, 10);
    manu[r] = rng.UniformInt(1, 500);
    price[r] = rng.UniformDouble(0.5, 300.0);
  }
  std::vector<Column> cols;
  cols.push_back(Column::FromInts(std::move(sk)));
  cols.push_back(Column::FromInts(std::move(brand)));
  cols.push_back(Column::FromInts(std::move(cls)));
  cols.push_back(Column::FromInts(std::move(cat)));
  cols.push_back(Column::FromInts(std::move(manu)));
  cols.push_back(Column::FromDoubles(std::move(price)));
  return std::make_shared<Table>(ItemSchema(), std::move(cols));
}

TablePtr MakeCustomer(std::int64_t rows, Rng& rng) {
  std::vector<std::int64_t> sk(rows), by(rows), bm(rows), addr(rows);
  for (std::int64_t r = 0; r < rows; ++r) {
    sk[r] = r + 1;
    by[r] = rng.UniformInt(1930, 2000);
    bm[r] = rng.UniformInt(1, 12);
    addr[r] = rng.UniformInt(1, rows);
  }
  std::vector<Column> cols;
  cols.push_back(Column::FromInts(std::move(sk)));
  cols.push_back(Column::FromInts(std::move(by)));
  cols.push_back(Column::FromInts(std::move(bm)));
  cols.push_back(Column::FromInts(std::move(addr)));
  return std::make_shared<Table>(CustomerSchema(), std::move(cols));
}

TablePtr MakeStore(std::int64_t rows, Rng& rng) {
  static const char* kStates[] = {"TN", "CA", "IL", "TX", "NY", "WA"};
  std::vector<std::int64_t> sk(rows), emp(rows), floor(rows);
  std::vector<std::string> state(rows);
  for (std::int64_t r = 0; r < rows; ++r) {
    sk[r] = r + 1;
    emp[r] = rng.UniformInt(50, 300);
    floor[r] = rng.UniformInt(5000, 10000000);
    state[r] = kStates[rng.UniformInt(0, 5)];
  }
  std::vector<Column> cols;
  cols.push_back(Column::FromInts(std::move(sk)));
  cols.push_back(Column::FromStrings(std::move(state)));
  cols.push_back(Column::FromInts(std::move(emp)));
  cols.push_back(Column::FromInts(std::move(floor)));
  return std::make_shared<Table>(StoreSchema(), std::move(cols));
}

TablePtr MakePromotion(std::int64_t rows, Rng& rng) {
  std::vector<std::int64_t> sk(rows), email(rows), tv(rows);
  std::vector<double> cost(rows);
  for (std::int64_t r = 0; r < rows; ++r) {
    sk[r] = r + 1;
    email[r] = rng.Bernoulli(0.5) ? 1 : 0;
    tv[r] = rng.Bernoulli(0.3) ? 1 : 0;
    cost[r] = rng.UniformDouble(100.0, 5000.0);
  }
  std::vector<Column> cols;
  cols.push_back(Column::FromInts(std::move(sk)));
  cols.push_back(Column::FromInts(std::move(email)));
  cols.push_back(Column::FromInts(std::move(tv)));
  cols.push_back(Column::FromDoubles(std::move(cost)));
  return std::make_shared<Table>(PromotionSchema(), std::move(cols));
}

TablePtr MakeSales(const std::string& prefix, std::int64_t rows,
                   const Table& date_dim, std::int64_t items,
                   std::int64_t customers, std::int64_t stores,
                   std::int64_t promos, Rng& rng) {
  const auto& date_sks = date_dim.column("d_date_sk").ints();
  std::vector<std::int64_t> date(rows), item(rows), cust(rows), store(rows),
      promo(rows), qty(rows);
  std::vector<double> price(rows), ext(rows), profit(rows);
  const std::int64_t num_dates = static_cast<std::int64_t>(date_sks.size());
  for (std::int64_t r = 0; r < rows; ++r) {
    date[r] = date_sks[static_cast<std::size_t>(
        rng.UniformInt(0, num_dates - 1))];
    item[r] = rng.Zipf(items, 1.1);  // skewed item popularity
    cust[r] = rng.UniformInt(1, customers);
    store[r] = rng.UniformInt(1, stores);
    promo[r] = rng.UniformInt(1, promos);
    qty[r] = rng.UniformInt(1, 100);
    price[r] = rng.UniformDouble(0.5, 200.0);
    ext[r] = price[r] * static_cast<double>(qty[r]);
    profit[r] = ext[r] * rng.UniformDouble(-0.2, 0.4);
  }
  std::vector<Column> cols;
  cols.push_back(Column::FromInts(std::move(date)));
  cols.push_back(Column::FromInts(std::move(item)));
  cols.push_back(Column::FromInts(std::move(cust)));
  cols.push_back(Column::FromInts(std::move(store)));
  cols.push_back(Column::FromInts(std::move(promo)));
  cols.push_back(Column::FromInts(std::move(qty)));
  cols.push_back(Column::FromDoubles(std::move(price)));
  cols.push_back(Column::FromDoubles(std::move(ext)));
  cols.push_back(Column::FromDoubles(std::move(profit)));
  return std::make_shared<Table>(SalesSchema(prefix), std::move(cols));
}

}  // namespace

RowCounts RowCountsFor(const DataGenOptions& options) {
  const double s = options.scale;
  RowCounts counts;
  counts.date_dim = options.num_years * 12 * 28;
  counts.item = static_cast<std::int64_t>(std::llround(300 * std::sqrt(s))) + 20;
  counts.customer =
      static_cast<std::int64_t>(std::llround(500 * std::sqrt(s))) + 20;
  counts.store = 12;
  counts.promotion = 50;
  counts.sales_per_channel =
      static_cast<std::int64_t>(std::llround(20000 * s));
  return counts;
}

std::map<std::string, engine::TablePtr> GenerateTpcdsData(
    const DataGenOptions& options) {
  Rng rng(options.seed);
  const RowCounts counts = RowCountsFor(options);
  std::map<std::string, engine::TablePtr> tables;
  TablePtr date_dim = MakeDateDim(options);
  tables["date_dim"] = date_dim;
  tables["item"] = MakeItem(counts.item, rng);
  tables["customer"] = MakeCustomer(counts.customer, rng);
  tables["store"] = MakeStore(counts.store, rng);
  tables["promotion"] = MakePromotion(counts.promotion, rng);
  for (const char* fact : {"store_sales", "catalog_sales", "web_sales"}) {
    tables[fact] = MakeSales(ChannelPrefix(fact), counts.sales_per_channel,
                             *date_dim, counts.item, counts.customer,
                             counts.store, counts.promotion, rng);
  }
  return tables;
}

namespace {

/// Zero-padded so the sorted string order equals the numeric order, and
/// long enough (25 chars) to defeat SSO — every plain value carries a
/// heap block, which is exactly the footprint dictionary encoding wins
/// back.
std::string CategoryName(std::int64_t i) {
  std::string digits = std::to_string(i);
  return "warehouse_category_" + std::string(6 - digits.size(), '0') +
         std::move(digits);
}

engine::Column CategoryColumn(const engine::Column::DictionaryPtr& dict,
                              std::vector<std::int32_t> codes,
                              bool dictionary_encode) {
  if (dictionary_encode) {
    return Column::FromDictionary(dict, std::move(codes));
  }
  std::vector<std::string> plain;
  plain.reserve(codes.size());
  for (const std::int32_t code : codes) {
    plain.push_back((*dict)[static_cast<std::size_t>(code)]);
  }
  return Column::FromStrings(std::move(plain));
}

}  // namespace

std::int64_t StringCardinalityValues(StringCardinality cardinality) {
  switch (cardinality) {
    case StringCardinality::kLow:
      return 32;
    case StringCardinality::kMedium:
      return 1024;
    case StringCardinality::kHigh:
      return 65536;
  }
  return 1024;
}

std::map<std::string, engine::TablePtr> GenerateStringHeavyData(
    const StringHeavyOptions& options) {
  Rng rng(options.seed);
  const std::int64_t cardinality =
      StringCardinalityValues(options.cardinality);
  const std::int64_t events =
      std::max<std::int64_t>(1, std::llround(60000 * options.scale));

  // One dictionary per logical string domain, shared by both tables:
  // with dictionary_encode on, the fact and dimension category columns
  // carry the same DictionaryPtr object, so joins and aggregates
  // between them stay on the int32-code fast paths.
  std::vector<std::string> domain;
  domain.reserve(static_cast<std::size_t>(cardinality));
  for (std::int64_t i = 0; i < cardinality; ++i) {
    domain.push_back(CategoryName(i));
  }
  const engine::Column::DictionaryPtr dict =
      Column::MakeDictionary(std::move(domain));

  std::vector<std::int32_t> fact_codes(static_cast<std::size_t>(events));
  std::vector<std::int64_t> bucket(static_cast<std::size_t>(events));
  std::vector<std::int64_t> qty(static_cast<std::size_t>(events));
  std::vector<double> amount(static_cast<std::size_t>(events));
  for (std::int64_t r = 0; r < events; ++r) {
    const auto row = static_cast<std::size_t>(r);
    // Zipf-skewed category popularity: a few heavy hitters dominate, so
    // join-build partitions have very unequal row mass (the skew-aware
    // morsel shape).
    fact_codes[row] =
        static_cast<std::int32_t>(rng.Zipf(cardinality, 1.2) - 1);
    bucket[row] = rng.UniformInt(0, 31);
    qty[row] = rng.UniformInt(1, 100);
    amount[row] = rng.UniformDouble(0.5, 500.0);
  }

  std::vector<std::int32_t> dim_codes(
      static_cast<std::size_t>(cardinality));
  std::vector<std::string> region(static_cast<std::size_t>(cardinality));
  std::vector<double> weight(static_cast<std::size_t>(cardinality));
  std::vector<std::int64_t> priority(
      static_cast<std::size_t>(cardinality));
  static const char* kRegions[] = {"north", "south", "east",
                                   "west",  "core",  "edge"};
  for (std::int64_t i = 0; i < cardinality; ++i) {
    const auto row = static_cast<std::size_t>(i);
    dim_codes[row] = static_cast<std::int32_t>(i);
    region[row] = kRegions[rng.UniformInt(0, 5)];
    weight[row] = rng.UniformDouble(0.1, 2.0);
    priority[row] = rng.UniformInt(1, 5);
  }

  using engine::DataType;
  using engine::Field;
  using engine::Schema;
  std::map<std::string, engine::TablePtr> tables;
  {
    std::vector<Column> cols;
    cols.push_back(CategoryColumn(dict, std::move(fact_codes),
                                  options.dictionary_encode));
    cols.push_back(Column::FromInts(std::move(bucket)));
    cols.push_back(Column::FromInts(std::move(qty)));
    cols.push_back(Column::FromDoubles(std::move(amount)));
    tables["events"] = std::make_shared<Table>(
        Schema({Field{"category", DataType::kString},
                Field{"bucket", DataType::kInt64},
                Field{"qty", DataType::kInt64},
                Field{"amount", DataType::kFloat64}}),
        std::move(cols));
  }
  {
    std::vector<Column> cols;
    cols.push_back(CategoryColumn(dict, std::move(dim_codes),
                                  options.dictionary_encode));
    cols.push_back(Column::FromStrings(std::move(region)));
    cols.push_back(Column::FromDoubles(std::move(weight)));
    cols.push_back(Column::FromInts(std::move(priority)));
    tables["category_dim"] = std::make_shared<Table>(
        Schema({Field{"category", DataType::kString},
                Field{"region", DataType::kString},
                Field{"weight", DataType::kFloat64},
                Field{"priority", DataType::kInt64}}),
        std::move(cols));
  }
  return tables;
}

}  // namespace sc::workload
