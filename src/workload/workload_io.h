#ifndef SC_WORKLOAD_WORKLOAD_IO_H_
#define SC_WORKLOAD_WORKLOAD_IO_H_

#include <string>

#include "workload/workloads.h"

namespace sc::workload {

/// Persists a workload to a directory (dbt-project style):
///   <dir>/graph.scg    — dependency graph in the graph text format
///   <dir>/plans.scp    — one "<mv-name> <s-expression plan>" line per MV
///   <dir>/meta.sct     — name, description, TPC-DS query list
/// NodeScale coefficients are not persisted (they are a property of the
/// analytic model, not of the workload definition); loaded workloads get
/// default NodeScale entries.
bool SaveWorkload(const MvWorkload& wl, const std::string& dir,
                  std::string* error);

/// Loads a workload previously written by SaveWorkload. Returns false and
/// fills `error` on parse or I/O failure; validates the result with
/// ValidateWorkload.
bool LoadWorkload(const std::string& dir, MvWorkload* wl,
                  std::string* error);

}  // namespace sc::workload

#endif  // SC_WORKLOAD_WORKLOAD_IO_H_
