#include "workload/tpcds.h"

#include <stdexcept>

namespace sc::workload {

using engine::DataType;
using engine::Field;
using engine::Schema;

Schema DateDimSchema() {
  return Schema({
      Field{"d_date_sk", DataType::kInt64},
      Field{"d_year", DataType::kInt64},
      Field{"d_moy", DataType::kInt64},
      Field{"d_dom", DataType::kInt64},
      Field{"d_qoy", DataType::kInt64},
      Field{"d_day_name", DataType::kString},
  });
}

Schema ItemSchema() {
  return Schema({
      Field{"i_item_sk", DataType::kInt64},
      Field{"i_brand_id", DataType::kInt64},
      Field{"i_class_id", DataType::kInt64},
      Field{"i_category_id", DataType::kInt64},
      Field{"i_manufact_id", DataType::kInt64},
      Field{"i_current_price", DataType::kFloat64},
  });
}

Schema CustomerSchema() {
  return Schema({
      Field{"c_customer_sk", DataType::kInt64},
      Field{"c_birth_year", DataType::kInt64},
      Field{"c_birth_month", DataType::kInt64},
      Field{"c_current_addr_sk", DataType::kInt64},
  });
}

Schema StoreSchema() {
  return Schema({
      Field{"s_store_sk", DataType::kInt64},
      Field{"s_state", DataType::kString},
      Field{"s_number_employees", DataType::kInt64},
      Field{"s_floor_space", DataType::kInt64},
  });
}

Schema PromotionSchema() {
  return Schema({
      Field{"p_promo_sk", DataType::kInt64},
      Field{"p_channel_email", DataType::kInt64},
      Field{"p_channel_tv", DataType::kInt64},
      Field{"p_cost", DataType::kFloat64},
  });
}

Schema SalesSchema(const std::string& prefix) {
  auto col = [&prefix](const char* suffix) {
    return prefix + "_" + suffix;
  };
  return Schema({
      Field{col("sold_date_sk"), DataType::kInt64},
      Field{col("item_sk"), DataType::kInt64},
      Field{col("customer_sk"), DataType::kInt64},
      Field{col("store_sk"), DataType::kInt64},
      Field{col("promo_sk"), DataType::kInt64},
      Field{col("quantity"), DataType::kInt64},
      Field{col("sales_price"), DataType::kFloat64},
      Field{col("ext_sales_price"), DataType::kFloat64},
      Field{col("net_profit"), DataType::kFloat64},
  });
}

std::vector<std::string> BaseTableNames() {
  return {"date_dim", "item",          "customer",
          "store",    "promotion",     "store_sales",
          "catalog_sales", "web_sales"};
}

std::string ChannelPrefix(const std::string& fact_table) {
  if (fact_table == "store_sales") return "ss";
  if (fact_table == "catalog_sales") return "cs";
  if (fact_table == "web_sales") return "ws";
  throw std::invalid_argument("not a channel fact table: " + fact_table);
}

}  // namespace sc::workload
