#ifndef SC_FAULT_FAULT_H_
#define SC_FAULT_FAULT_H_

#include <cstdint>
#include <mutex>
#include <random>
#include <stdexcept>
#include <string>
#include <vector>

namespace sc::fault {

/// Where in the stack a fault fires. Each site corresponds to one
/// explicit `MaybeThrow` (or degrade) hook in production code.
enum class Site {
  kDiskRead = 0,
  kDiskWrite = 1,
  kCatalogPublish = 2,
  kBudgetGrant = 3,
  kNodeExecute = 4,
};

const char* SiteName(Site site);

/// Marker base: exceptions deriving from this are retryable. Real I/O
/// errors can opt in by inheriting it; injected faults carry an explicit
/// flag instead.
struct TransientTag {
  virtual ~TransientTag() = default;
};

/// Raised by FaultInjector::MaybeThrow at a firing site.
class FaultError : public std::runtime_error {
 public:
  FaultError(Site site, const std::string& name, bool transient)
      : std::runtime_error(std::string("injected fault at ") +
                           SiteName(site) + " (" + name + ")"),
        site_(site),
        transient_(transient) {}

  Site site() const { return site_; }
  bool transient() const { return transient_; }

 private:
  Site site_;
  bool transient_;
};

/// True when `error` is safe to retry: an injected transient FaultError,
/// or any exception type tagged TransientTag.
bool IsTransient(const std::exception& error);

/// One deterministic trigger. Either probabilistic (`probability` of
/// firing per hit, driven by the plan's seeded RNG) or positional
/// (`nth_hit` == fire on exactly the Nth matching hit, 1-based).
/// `match` is a substring filter on the site's operand name (table name,
/// node name, tenant) — empty matches everything. `max_fires` bounds the
/// total number of firings (<= 0 means unlimited).
struct FaultRule {
  Site site = Site::kNodeExecute;
  std::string match;
  double probability = 0.0;
  std::int64_t nth_hit = 0;
  std::int64_t max_fires = 1;
  bool transient = true;
};

/// A seeded failure schedule. Thread-safe; the same seed + same sequence
/// of hits replays the same firings, which is what lets chaos tests
/// assert exact invariants and then re-run clean.
class FaultInjector {
 public:
  explicit FaultInjector(std::uint64_t seed) : rng_(seed) {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  void AddRule(const FaultRule& rule);

  /// Records a hit at `site` and throws FaultError if a rule fires.
  void MaybeThrow(Site site, const std::string& name);

  /// Non-throwing probe for sites that degrade instead of failing
  /// (SharedCatalog publish). Returns true when a rule fired.
  bool ShouldFail(Site site, const std::string& name);

  std::int64_t hits(Site site) const;
  std::int64_t total_fires() const;

 private:
  struct RuleState {
    FaultRule rule;
    std::int64_t hits = 0;
    std::int64_t fires = 0;
  };

  bool CheckLocked(Site site, const std::string& name, bool* transient);

  mutable std::mutex mutex_;
  std::mt19937_64 rng_;
  std::vector<RuleState> rules_;
  std::int64_t site_hits_[5] = {0, 0, 0, 0, 0};
  std::int64_t fires_ = 0;
};

}  // namespace sc::fault

#endif  // SC_FAULT_FAULT_H_
