#ifndef SC_FAULT_FAULT_H_
#define SC_FAULT_FAULT_H_

#include <cstdint>
#include <mutex>
#include <random>
#include <stdexcept>
#include <string>
#include <vector>

namespace sc::fault {

/// Where in the stack a fault fires. Each site corresponds to one
/// explicit `MaybeThrow` (or degrade / corrupt) hook in production code.
enum class Site {
  kDiskRead = 0,
  kDiskWrite = 1,
  kCatalogPublish = 2,
  kBudgetGrant = 3,
  kNodeExecute = 4,
  /// SharedCatalog spill-file writes (eviction demotions).
  kSpillWrite = 5,
};

inline constexpr int kNumSites = 6;

const char* SiteName(Site site);

/// On-disk corruption injected *after* a write lands — the chaos proof
/// for the checksummed storage formats. A rule carrying one of these
/// never throws at its site; instead the writer damages the just-written
/// file, and the harness asserts the *reader* detects it
/// (storage::CorruptFileError) instead of serving garbage.
enum class CorruptKind {
  kNone = 0,
  /// Flip one bit at a seeded offset (silent media corruption).
  kBitFlip = 1,
  /// Cut the file at a seeded offset (crash mid-append).
  kTruncate = 2,
  /// Keep a seeded prefix, zero-fill the tail to the original length
  /// (torn multi-page write racing a rename: size right, content not).
  kTornRename = 3,
};

const char* CorruptKindName(CorruptKind kind);

/// A fired corruption: the kind plus two seeded uniforms in [0, 1) that
/// the applier turns into a byte offset and a bit index, so the same
/// injector seed damages the same file the same way on every run.
struct CorruptionSpec {
  CorruptKind kind = CorruptKind::kNone;
  double offset_u = 0.0;
  double bit_u = 0.0;
};

/// Applies `spec` to the file at `path` (no-op for kNone, a missing
/// file, or an empty file). Lives here rather than in storage so chaos
/// tests can also damage files directly, without a disk in the loop.
void CorruptFile(const std::string& path, const CorruptionSpec& spec);

/// Marker base: exceptions deriving from this are retryable. Real I/O
/// errors can opt in by inheriting it; injected faults carry an explicit
/// flag instead.
struct TransientTag {
  virtual ~TransientTag() = default;
};

/// Raised by FaultInjector::MaybeThrow at a firing site.
class FaultError : public std::runtime_error {
 public:
  FaultError(Site site, const std::string& name, bool transient)
      : std::runtime_error(std::string("injected fault at ") +
                           SiteName(site) + " (" + name + ")"),
        site_(site),
        transient_(transient) {}

  Site site() const { return site_; }
  bool transient() const { return transient_; }

 private:
  Site site_;
  bool transient_;
};

/// True when `error` is safe to retry: an injected transient FaultError,
/// or any exception type tagged TransientTag.
bool IsTransient(const std::exception& error);

/// One deterministic trigger. Either probabilistic (`probability` of
/// firing per hit, driven by the plan's seeded RNG) or positional
/// (`nth_hit` == fire on exactly the Nth matching hit, 1-based).
/// `match` is a substring filter on the site's operand name (table name,
/// node name, tenant) — empty matches everything. `max_fires` bounds the
/// total number of firings (<= 0 means unlimited).
struct FaultRule {
  Site site = Site::kNodeExecute;
  std::string match;
  double probability = 0.0;
  std::int64_t nth_hit = 0;
  std::int64_t max_fires = 1;
  bool transient = true;
  /// != kNone turns this into a corruption rule: it is only consulted by
  /// ShouldCorrupt (post-write file damage) and never makes MaybeThrow /
  /// ShouldFail fire.
  CorruptKind corrupt = CorruptKind::kNone;
};

/// A seeded failure schedule. Thread-safe; the same seed + same sequence
/// of hits replays the same firings, which is what lets chaos tests
/// assert exact invariants and then re-run clean.
class FaultInjector {
 public:
  explicit FaultInjector(std::uint64_t seed) : rng_(seed) {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  void AddRule(const FaultRule& rule);

  /// Records a hit at `site` and throws FaultError if a rule fires.
  void MaybeThrow(Site site, const std::string& name);

  /// Non-throwing probe for sites that degrade instead of failing
  /// (SharedCatalog publish). Returns true when a rule fired.
  bool ShouldFail(Site site, const std::string& name);

  /// Probes the corruption rules for `site` after a write of `name`
  /// landed; returns the damage to apply (kind == kNone when no rule
  /// fired). Does not count toward hits(site) — the write itself already
  /// did.
  CorruptionSpec ShouldCorrupt(Site site, const std::string& name);

  std::int64_t hits(Site site) const;
  std::int64_t total_fires() const;
  /// Corruption rules fired (subset of total_fires()).
  std::int64_t total_corruptions() const;

 private:
  struct RuleState {
    FaultRule rule;
    std::int64_t hits = 0;
    std::int64_t fires = 0;
  };

  bool CheckLocked(Site site, const std::string& name, bool* transient);

  mutable std::mutex mutex_;
  std::mt19937_64 rng_;
  std::vector<RuleState> rules_;
  std::int64_t site_hits_[kNumSites] = {0, 0, 0, 0, 0, 0};
  std::int64_t fires_ = 0;
  std::int64_t corruptions_ = 0;
};

}  // namespace sc::fault

#endif  // SC_FAULT_FAULT_H_
