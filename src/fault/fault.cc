#include "fault/fault.h"

#include <algorithm>
#include <filesystem>
#include <fstream>

namespace sc::fault {

const char* SiteName(Site site) {
  switch (site) {
    case Site::kDiskRead: return "disk-read";
    case Site::kDiskWrite: return "disk-write";
    case Site::kCatalogPublish: return "catalog-publish";
    case Site::kBudgetGrant: return "budget-grant";
    case Site::kNodeExecute: return "node-execute";
    case Site::kSpillWrite: return "spill-write";
  }
  return "unknown";
}

const char* CorruptKindName(CorruptKind kind) {
  switch (kind) {
    case CorruptKind::kNone: return "none";
    case CorruptKind::kBitFlip: return "bit-flip";
    case CorruptKind::kTruncate: return "truncate";
    case CorruptKind::kTornRename: return "torn-rename";
  }
  return "unknown";
}

void CorruptFile(const std::string& path, const CorruptionSpec& spec) {
  namespace fs = std::filesystem;
  if (spec.kind == CorruptKind::kNone) return;
  std::error_code ec;
  const std::uintmax_t size = fs::file_size(path, ec);
  if (ec || size == 0) return;
  const auto offset = static_cast<std::uintmax_t>(
      std::clamp(spec.offset_u, 0.0, 1.0) * static_cast<double>(size));
  switch (spec.kind) {
    case CorruptKind::kNone:
      return;
    case CorruptKind::kBitFlip: {
      const std::uintmax_t at = std::min<std::uintmax_t>(offset, size - 1);
      std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
      if (!f) return;
      f.seekg(static_cast<std::streamoff>(at));
      char byte = 0;
      f.read(&byte, 1);
      byte = static_cast<char>(
          byte ^ static_cast<char>(1 << (static_cast<int>(spec.bit_u * 8) & 7)));
      f.seekp(static_cast<std::streamoff>(at));
      f.write(&byte, 1);
      return;
    }
    case CorruptKind::kTruncate:
      fs::resize_file(path, std::min<std::uintmax_t>(offset, size - 1), ec);
      return;
    case CorruptKind::kTornRename:
      // Shrink-then-regrow leaves the original length with a zero-filled
      // tail: the "rename landed but the tail pages never did" shape that
      // structural EOF checks cannot see — only checksums (or the footer
      // end marker) catch it.
      fs::resize_file(path, std::min<std::uintmax_t>(offset, size - 1), ec);
      if (!ec) fs::resize_file(path, size, ec);
      return;
  }
}

bool IsTransient(const std::exception& error) {
  if (const auto* fault = dynamic_cast<const FaultError*>(&error)) {
    return fault->transient();
  }
  return dynamic_cast<const TransientTag*>(&error) != nullptr;
}

void FaultInjector::AddRule(const FaultRule& rule) {
  std::lock_guard<std::mutex> lock(mutex_);
  rules_.push_back(RuleState{rule, 0, 0});
}

bool FaultInjector::CheckLocked(Site site, const std::string& name,
                                bool* transient) {
  ++site_hits_[static_cast<int>(site)];
  for (RuleState& state : rules_) {
    const FaultRule& rule = state.rule;
    if (rule.site != site) continue;
    // Corruption rules damage files post-write via ShouldCorrupt; they
    // never surface as thrown/degraded faults.
    if (rule.corrupt != CorruptKind::kNone) continue;
    if (!rule.match.empty() && name.find(rule.match) == std::string::npos) {
      continue;
    }
    ++state.hits;
    if (rule.max_fires > 0 && state.fires >= rule.max_fires) continue;
    bool fire = false;
    if (rule.nth_hit > 0) {
      fire = state.hits == rule.nth_hit;
    } else if (rule.probability > 0.0) {
      std::uniform_real_distribution<double> dist(0.0, 1.0);
      fire = dist(rng_) < rule.probability;
    }
    if (fire) {
      ++state.fires;
      ++fires_;
      *transient = rule.transient;
      return true;
    }
  }
  return false;
}

void FaultInjector::MaybeThrow(Site site, const std::string& name) {
  bool transient = false;
  bool fire = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    fire = CheckLocked(site, name, &transient);
  }
  if (fire) throw FaultError(site, name, transient);
}

bool FaultInjector::ShouldFail(Site site, const std::string& name) {
  bool transient = false;
  std::lock_guard<std::mutex> lock(mutex_);
  return CheckLocked(site, name, &transient);
}

CorruptionSpec FaultInjector::ShouldCorrupt(Site site,
                                            const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (RuleState& state : rules_) {
    const FaultRule& rule = state.rule;
    if (rule.corrupt == CorruptKind::kNone || rule.site != site) continue;
    if (!rule.match.empty() && name.find(rule.match) == std::string::npos) {
      continue;
    }
    ++state.hits;
    if (rule.max_fires > 0 && state.fires >= rule.max_fires) continue;
    bool fire = false;
    if (rule.nth_hit > 0) {
      fire = state.hits == rule.nth_hit;
    } else if (rule.probability > 0.0) {
      std::uniform_real_distribution<double> dist(0.0, 1.0);
      fire = dist(rng_) < rule.probability;
    }
    if (fire) {
      ++state.fires;
      ++fires_;
      ++corruptions_;
      std::uniform_real_distribution<double> dist(0.0, 1.0);
      CorruptionSpec spec;
      spec.kind = rule.corrupt;
      spec.offset_u = dist(rng_);
      spec.bit_u = dist(rng_);
      return spec;
    }
  }
  return CorruptionSpec{};
}

std::int64_t FaultInjector::hits(Site site) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return site_hits_[static_cast<int>(site)];
}

std::int64_t FaultInjector::total_fires() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return fires_;
}

std::int64_t FaultInjector::total_corruptions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return corruptions_;
}

}  // namespace sc::fault
