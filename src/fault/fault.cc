#include "fault/fault.h"

namespace sc::fault {

const char* SiteName(Site site) {
  switch (site) {
    case Site::kDiskRead: return "disk-read";
    case Site::kDiskWrite: return "disk-write";
    case Site::kCatalogPublish: return "catalog-publish";
    case Site::kBudgetGrant: return "budget-grant";
    case Site::kNodeExecute: return "node-execute";
  }
  return "unknown";
}

bool IsTransient(const std::exception& error) {
  if (const auto* fault = dynamic_cast<const FaultError*>(&error)) {
    return fault->transient();
  }
  return dynamic_cast<const TransientTag*>(&error) != nullptr;
}

void FaultInjector::AddRule(const FaultRule& rule) {
  std::lock_guard<std::mutex> lock(mutex_);
  rules_.push_back(RuleState{rule, 0, 0});
}

bool FaultInjector::CheckLocked(Site site, const std::string& name,
                                bool* transient) {
  ++site_hits_[static_cast<int>(site)];
  for (RuleState& state : rules_) {
    const FaultRule& rule = state.rule;
    if (rule.site != site) continue;
    if (!rule.match.empty() && name.find(rule.match) == std::string::npos) {
      continue;
    }
    ++state.hits;
    if (rule.max_fires > 0 && state.fires >= rule.max_fires) continue;
    bool fire = false;
    if (rule.nth_hit > 0) {
      fire = state.hits == rule.nth_hit;
    } else if (rule.probability > 0.0) {
      std::uniform_real_distribution<double> dist(0.0, 1.0);
      fire = dist(rng_) < rule.probability;
    }
    if (fire) {
      ++state.fires;
      ++fires_;
      *transient = rule.transient;
      return true;
    }
  }
  return false;
}

void FaultInjector::MaybeThrow(Site site, const std::string& name) {
  bool transient = false;
  bool fire = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    fire = CheckLocked(site, name, &transient);
  }
  if (fire) throw FaultError(site, name, transient);
}

bool FaultInjector::ShouldFail(Site site, const std::string& name) {
  bool transient = false;
  std::lock_guard<std::mutex> lock(mutex_);
  return CheckLocked(site, name, &transient);
}

std::int64_t FaultInjector::hits(Site site) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return site_hits_[static_cast<int>(site)];
}

std::int64_t FaultInjector::total_fires() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return fires_;
}

}  // namespace sc::fault
