#include "engine/plan.h"

#include <sstream>

namespace sc::engine {

namespace {

const char* KindName(PlanNode::Kind kind) {
  switch (kind) {
    case PlanNode::Kind::kScan: return "Scan";
    case PlanNode::Kind::kFilter: return "Filter";
    case PlanNode::Kind::kProject: return "Project";
    case PlanNode::Kind::kHashJoin: return "HashJoin";
    case PlanNode::Kind::kAggregate: return "Aggregate";
    case PlanNode::Kind::kSort: return "Sort";
    case PlanNode::Kind::kLimit: return "Limit";
    case PlanNode::Kind::kUnionAll: return "UnionAll";
  }
  return "?";
}

void CollectTables(const PlanNode& node, std::vector<std::string>* out) {
  if (node.kind == PlanNode::Kind::kScan) {
    out->push_back(node.table_name);
  }
  if (node.child) CollectTables(*node.child, out);
  if (node.right) CollectTables(*node.right, out);
}

}  // namespace

std::string PlanNode::ToString(int indent) const {
  std::ostringstream out;
  out << std::string(static_cast<std::size_t>(indent) * 2, ' ')
      << KindName(kind);
  switch (kind) {
    case Kind::kScan:
      out << "(" << table_name << ")";
      break;
    case Kind::kFilter:
      out << "(" << predicate->ToString() << ")";
      break;
    case Kind::kProject: {
      out << "(";
      for (std::size_t i = 0; i < projections.size(); ++i) {
        if (i > 0) out << ", ";
        out << projections[i].name << "=" << projections[i].expr->ToString();
      }
      out << ")";
      break;
    }
    case Kind::kHashJoin: {
      out << "(";
      for (std::size_t i = 0; i < left_keys.size(); ++i) {
        if (i > 0) out << ", ";
        out << left_keys[i] << "=" << right_keys[i];
      }
      out << ")";
      break;
    }
    case Kind::kAggregate: {
      out << "(keys=[";
      for (std::size_t i = 0; i < group_keys.size(); ++i) {
        if (i > 0) out << ", ";
        out << group_keys[i];
      }
      out << "], aggs=" << aggregates.size() << ")";
      break;
    }
    case Kind::kSort: {
      out << "(";
      for (std::size_t i = 0; i < sort_keys.size(); ++i) {
        if (i > 0) out << ", ";
        out << sort_keys[i];
      }
      out << ")";
      break;
    }
    case Kind::kLimit:
      out << "(" << limit << ")";
      break;
    case Kind::kUnionAll:
      break;
  }
  out << "\n";
  if (child) out << child->ToString(indent + 1);
  if (right) out << right->ToString(indent + 1);
  return out.str();
}

std::vector<std::string> PlanNode::ReferencedTables() const {
  std::vector<std::string> out;
  CollectTables(*this, &out);
  return out;
}

PlanPtr Scan(std::string table_name) {
  auto node = std::make_shared<PlanNode>();
  node->kind = PlanNode::Kind::kScan;
  node->table_name = std::move(table_name);
  return node;
}

PlanPtr Filter(PlanPtr child, ExprPtr predicate) {
  auto node = std::make_shared<PlanNode>();
  node->kind = PlanNode::Kind::kFilter;
  node->child = std::move(child);
  node->predicate = std::move(predicate);
  return node;
}

PlanPtr Project(PlanPtr child, std::vector<NamedExpr> projections) {
  auto node = std::make_shared<PlanNode>();
  node->kind = PlanNode::Kind::kProject;
  node->child = std::move(child);
  node->projections = std::move(projections);
  return node;
}

PlanPtr HashJoin(PlanPtr left, PlanPtr right,
                 std::vector<std::string> left_keys,
                 std::vector<std::string> right_keys) {
  auto node = std::make_shared<PlanNode>();
  node->kind = PlanNode::Kind::kHashJoin;
  node->child = std::move(left);
  node->right = std::move(right);
  node->left_keys = std::move(left_keys);
  node->right_keys = std::move(right_keys);
  return node;
}

PlanPtr Aggregate(PlanPtr child, std::vector<std::string> group_keys,
                  std::vector<AggSpec> aggregates) {
  auto node = std::make_shared<PlanNode>();
  node->kind = PlanNode::Kind::kAggregate;
  node->child = std::move(child);
  node->group_keys = std::move(group_keys);
  node->aggregates = std::move(aggregates);
  return node;
}

PlanPtr Sort(PlanPtr child, std::vector<std::string> keys,
             std::vector<bool> descending) {
  auto node = std::make_shared<PlanNode>();
  node->kind = PlanNode::Kind::kSort;
  node->child = std::move(child);
  node->sort_keys = std::move(keys);
  node->sort_descending = std::move(descending);
  node->sort_descending.resize(node->sort_keys.size(), false);
  return node;
}

PlanPtr Limit(PlanPtr child, std::int64_t limit) {
  auto node = std::make_shared<PlanNode>();
  node->kind = PlanNode::Kind::kLimit;
  node->child = std::move(child);
  node->limit = limit;
  return node;
}

PlanPtr UnionAll(PlanPtr left, PlanPtr right) {
  auto node = std::make_shared<PlanNode>();
  node->kind = PlanNode::Kind::kUnionAll;
  node->child = std::move(left);
  node->right = std::move(right);
  return node;
}

AggSpec SumOf(ExprPtr arg, std::string output_name) {
  return AggSpec{AggSpec::Func::kSum, std::move(arg), std::move(output_name)};
}

AggSpec CountAll(std::string output_name) {
  return AggSpec{AggSpec::Func::kCount, nullptr, std::move(output_name)};
}

AggSpec MinOf(ExprPtr arg, std::string output_name) {
  return AggSpec{AggSpec::Func::kMin, std::move(arg), std::move(output_name)};
}

AggSpec MaxOf(ExprPtr arg, std::string output_name) {
  return AggSpec{AggSpec::Func::kMax, std::move(arg), std::move(output_name)};
}

AggSpec AvgOf(ExprPtr arg, std::string output_name) {
  return AggSpec{AggSpec::Func::kAvg, std::move(arg), std::move(output_name)};
}

}  // namespace sc::engine
