#include "engine/column.h"

#include <cstring>
#include <stdexcept>

namespace sc::engine {

Column Column::FromInts(std::vector<std::int64_t> values) {
  Column c(DataType::kInt64);
  c.ints_ = std::move(values);
  return c;
}

Column Column::FromDoubles(std::vector<double> values) {
  Column c(DataType::kFloat64);
  c.doubles_ = std::move(values);
  return c;
}

Column Column::FromStrings(std::vector<std::string> values) {
  Column c(DataType::kString);
  c.strings_ = std::move(values);
  return c;
}

std::size_t Column::size() const {
  switch (type_) {
    case DataType::kInt64:
      return ints_.size();
    case DataType::kFloat64:
      return doubles_.size();
    case DataType::kString:
      return strings_.size();
  }
  return 0;
}

Value Column::GetValue(std::size_t row) const {
  switch (type_) {
    case DataType::kInt64:
      return ints_[row];
    case DataType::kFloat64:
      return doubles_[row];
    case DataType::kString:
      return strings_[row];
  }
  throw std::logic_error("Column::GetValue: bad type");
}

void Column::AppendValue(const Value& value) {
  switch (type_) {
    case DataType::kInt64:
      ints_.push_back(AsInt64(value));
      return;
    case DataType::kFloat64:
      doubles_.push_back(AsDouble(value));
      return;
    case DataType::kString:
      strings_.push_back(std::get<std::string>(value));
      return;
  }
  throw std::logic_error("Column::AppendValue: bad type");
}

void Column::AppendFrom(const Column& other, std::size_t row) {
  if (other.type_ != type_) {
    throw std::invalid_argument("Column::AppendFrom: type mismatch");
  }
  switch (type_) {
    case DataType::kInt64:
      ints_.push_back(other.ints_[row]);
      return;
    case DataType::kFloat64:
      doubles_.push_back(other.doubles_[row]);
      return;
    case DataType::kString:
      strings_.push_back(other.strings_[row]);
      return;
  }
}

void Column::GatherFrom(const Column& other,
                        const std::vector<std::uint32_t>& rows) {
  if (other.type_ != type_) {
    throw std::invalid_argument("Column::GatherFrom: type mismatch");
  }
  switch (type_) {
    case DataType::kInt64: {
      const std::size_t base = ints_.size();
      // Exact reserve before resize: morsel merges gather many chunks
      // into one output, and libstdc++'s geometric resize would
      // over-allocate up to 2x on each of them.
      if (base + rows.size() > ints_.capacity()) {
        ints_.reserve(base + rows.size());
      }
      ints_.resize(base + rows.size());
      const std::int64_t* src = other.ints_.data();
      std::int64_t* dst = ints_.data() + base;
      for (std::size_t i = 0; i < rows.size(); ++i) dst[i] = src[rows[i]];
      return;
    }
    case DataType::kFloat64: {
      const std::size_t base = doubles_.size();
      if (base + rows.size() > doubles_.capacity()) {
        doubles_.reserve(base + rows.size());
      }
      doubles_.resize(base + rows.size());
      const double* src = other.doubles_.data();
      double* dst = doubles_.data() + base;
      for (std::size_t i = 0; i < rows.size(); ++i) dst[i] = src[rows[i]];
      return;
    }
    case DataType::kString: {
      strings_.reserve(strings_.size() + rows.size());
      for (const std::uint32_t r : rows) {
        strings_.push_back(other.strings_[r]);
      }
      return;
    }
  }
}

void Column::AppendRangeFrom(const Column& other, std::size_t begin,
                             std::size_t end) {
  if (other.type_ != type_) {
    throw std::invalid_argument("Column::AppendRangeFrom: type mismatch");
  }
  // Exact reserve: vector::insert grows geometrically when the range
  // overflows capacity, which over-allocates on chunked appends.
  switch (type_) {
    case DataType::kInt64:
      if (ints_.size() + (end - begin) > ints_.capacity()) {
        ints_.reserve(ints_.size() + (end - begin));
      }
      ints_.insert(ints_.end(), other.ints_.begin() + begin,
                   other.ints_.begin() + end);
      return;
    case DataType::kFloat64:
      if (doubles_.size() + (end - begin) > doubles_.capacity()) {
        doubles_.reserve(doubles_.size() + (end - begin));
      }
      doubles_.insert(doubles_.end(), other.doubles_.begin() + begin,
                      other.doubles_.begin() + end);
      return;
    case DataType::kString:
      if (strings_.size() + (end - begin) > strings_.capacity()) {
        strings_.reserve(strings_.size() + (end - begin));
      }
      strings_.insert(strings_.end(), other.strings_.begin() + begin,
                      other.strings_.begin() + end);
      return;
  }
}

void Column::Reserve(std::size_t n) {
  switch (type_) {
    case DataType::kInt64:
      ints_.reserve(n);
      return;
    case DataType::kFloat64:
      doubles_.reserve(n);
      return;
    case DataType::kString:
      strings_.reserve(n);
      return;
  }
}

std::int64_t Column::ByteSize() const {
  switch (type_) {
    case DataType::kInt64:
      return static_cast<std::int64_t>(ints_.size() * sizeof(std::int64_t));
    case DataType::kFloat64:
      return static_cast<std::int64_t>(doubles_.size() * sizeof(double));
    case DataType::kString: {
      // The std::string objects themselves, plus each string's heap
      // block. Heap blocks are sized by capacity (what the allocator
      // handed out), not size; strings short enough for the small-string
      // optimization live inside the object and add nothing.
      static const std::size_t kSsoCapacity = std::string().capacity();
      std::int64_t total = static_cast<std::int64_t>(
          strings_.size() * sizeof(std::string));
      for (const auto& s : strings_) {
        if (s.capacity() > kSsoCapacity) {
          total += static_cast<std::int64_t>(s.capacity()) + 1;
        }
      }
      return total;
    }
  }
  return 0;
}

double Column::NumericAt(std::size_t row) const {
  switch (type_) {
    case DataType::kInt64:
      return static_cast<double>(ints_[row]);
    case DataType::kFloat64:
      return doubles_[row];
    case DataType::kString:
      throw std::invalid_argument("NumericAt: string column");
  }
  return 0;
}

bool Column::operator==(const Column& other) const {
  if (type_ != other.type_ || ints_ != other.ints_ ||
      strings_ != other.strings_) {
    return false;
  }
  // Doubles compare by bit pattern (NaN == NaN, 0.0 != -0.0): equality
  // means bit-identical contents, which is what the golden equivalence
  // suite and the runtime's disk round-trip checks assert.
  if (doubles_.size() != other.doubles_.size()) return false;
  return doubles_.empty() ||
         std::memcmp(doubles_.data(), other.doubles_.data(),
                     doubles_.size() * sizeof(double)) == 0;
}

}  // namespace sc::engine
