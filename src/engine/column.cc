#include "engine/column.h"

#include <stdexcept>

namespace sc::engine {

Column Column::FromInts(std::vector<std::int64_t> values) {
  Column c(DataType::kInt64);
  c.ints_ = std::move(values);
  return c;
}

Column Column::FromDoubles(std::vector<double> values) {
  Column c(DataType::kFloat64);
  c.doubles_ = std::move(values);
  return c;
}

Column Column::FromStrings(std::vector<std::string> values) {
  Column c(DataType::kString);
  c.strings_ = std::move(values);
  return c;
}

std::size_t Column::size() const {
  switch (type_) {
    case DataType::kInt64:
      return ints_.size();
    case DataType::kFloat64:
      return doubles_.size();
    case DataType::kString:
      return strings_.size();
  }
  return 0;
}

Value Column::GetValue(std::size_t row) const {
  switch (type_) {
    case DataType::kInt64:
      return ints_[row];
    case DataType::kFloat64:
      return doubles_[row];
    case DataType::kString:
      return strings_[row];
  }
  throw std::logic_error("Column::GetValue: bad type");
}

void Column::AppendValue(const Value& value) {
  switch (type_) {
    case DataType::kInt64:
      ints_.push_back(AsInt64(value));
      return;
    case DataType::kFloat64:
      doubles_.push_back(AsDouble(value));
      return;
    case DataType::kString:
      strings_.push_back(std::get<std::string>(value));
      return;
  }
  throw std::logic_error("Column::AppendValue: bad type");
}

void Column::AppendFrom(const Column& other, std::size_t row) {
  if (other.type_ != type_) {
    throw std::invalid_argument("Column::AppendFrom: type mismatch");
  }
  switch (type_) {
    case DataType::kInt64:
      ints_.push_back(other.ints_[row]);
      return;
    case DataType::kFloat64:
      doubles_.push_back(other.doubles_[row]);
      return;
    case DataType::kString:
      strings_.push_back(other.strings_[row]);
      return;
  }
}

void Column::Reserve(std::size_t n) {
  switch (type_) {
    case DataType::kInt64:
      ints_.reserve(n);
      return;
    case DataType::kFloat64:
      doubles_.reserve(n);
      return;
    case DataType::kString:
      strings_.reserve(n);
      return;
  }
}

std::int64_t Column::ByteSize() const {
  switch (type_) {
    case DataType::kInt64:
      return static_cast<std::int64_t>(ints_.size() * sizeof(std::int64_t));
    case DataType::kFloat64:
      return static_cast<std::int64_t>(doubles_.size() * sizeof(double));
    case DataType::kString: {
      std::int64_t total = 0;
      for (const auto& s : strings_) {
        total += static_cast<std::int64_t>(s.size()) + 16;  // len + overhead
      }
      return total;
    }
  }
  return 0;
}

double Column::NumericAt(std::size_t row) const {
  switch (type_) {
    case DataType::kInt64:
      return static_cast<double>(ints_[row]);
    case DataType::kFloat64:
      return doubles_[row];
    case DataType::kString:
      throw std::invalid_argument("NumericAt: string column");
  }
  return 0;
}

bool Column::operator==(const Column& other) const {
  return type_ == other.type_ && ints_ == other.ints_ &&
         doubles_ == other.doubles_ && strings_ == other.strings_;
}

}  // namespace sc::engine
