#include "engine/column.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace sc::engine {

namespace {
// Process-wide tally backing the sc_dict_columns_total gauge.
std::atomic<std::int64_t> g_dict_columns_created{0};
}  // namespace

Column Column::FromInts(std::vector<std::int64_t> values) {
  Column c(DataType::kInt64);
  c.ints_ = std::move(values);
  return c;
}

Column Column::FromDoubles(std::vector<double> values) {
  Column c(DataType::kFloat64);
  c.doubles_ = std::move(values);
  return c;
}

Column Column::FromStrings(std::vector<std::string> values) {
  Column c(DataType::kString);
  c.strings_ = std::move(values);
  return c;
}

Column Column::FromDictionary(DictionaryPtr dictionary,
                              std::vector<std::int32_t> codes) {
  if (dictionary == nullptr) {
    throw std::invalid_argument("Column::FromDictionary: null dictionary");
  }
  Column c(DataType::kString);
  c.AdoptDictionary(dictionary);
  c.codes_ = std::move(codes);
  return c;
}

Column::DictionaryPtr Column::MakeDictionary(
    std::vector<std::string> values) {
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  return std::make_shared<const Dictionary>(std::move(values));
}

void Column::AdoptDictionary(const DictionaryPtr& dict) {
  dict_ = dict;
  g_dict_columns_created.fetch_add(1, std::memory_order_relaxed);
}

std::int64_t Column::dict_columns_created() {
  return g_dict_columns_created.load(std::memory_order_relaxed);
}

void Column::EnsurePlainStrings() {
  if (dict_ == nullptr) return;
  std::vector<std::string> plain;
  plain.reserve(codes_.size());
  const Dictionary& dict = *dict_;
  for (const std::int32_t code : codes_) {
    plain.push_back(dict[static_cast<std::size_t>(code)]);
  }
  strings_ = std::move(plain);
  codes_.clear();
  codes_.shrink_to_fit();
  dict_.reset();
}

Column Column::DictionaryEncode() const {
  if (type_ != DataType::kString) {
    throw std::invalid_argument("Column::DictionaryEncode: not a string column");
  }
  if (dict_ != nullptr) return *this;
  DictionaryPtr dict = MakeDictionary(strings_);
  std::vector<std::int32_t> codes(strings_.size());
  const auto begin = dict->begin();
  const auto end = dict->end();
  for (std::size_t r = 0; r < strings_.size(); ++r) {
    codes[r] = static_cast<std::int32_t>(
        std::lower_bound(begin, end, strings_[r]) - begin);
  }
  return FromDictionary(std::move(dict), std::move(codes));
}

Column Column::DecodeDictionary() const {
  if (type_ != DataType::kString) {
    throw std::invalid_argument("Column::DecodeDictionary: not a string column");
  }
  if (dict_ == nullptr) return *this;
  Column c(DataType::kString);
  c.strings_.reserve(codes_.size());
  const Dictionary& dict = *dict_;
  for (const std::int32_t code : codes_) {
    c.strings_.push_back(dict[static_cast<std::size_t>(code)]);
  }
  return c;
}

std::size_t Column::size() const {
  switch (type_) {
    case DataType::kInt64:
      return ints_.size();
    case DataType::kFloat64:
      return doubles_.size();
    case DataType::kString:
      return dict_ != nullptr ? codes_.size() : strings_.size();
  }
  return 0;
}

Value Column::GetValue(std::size_t row) const {
  switch (type_) {
    case DataType::kInt64:
      return ints_[row];
    case DataType::kFloat64:
      return doubles_[row];
    case DataType::kString:
      return GetString(row);
  }
  throw std::logic_error("Column::GetValue: bad type");
}

void Column::AppendValue(const Value& value) {
  switch (type_) {
    case DataType::kInt64:
      ints_.push_back(AsInt64(value));
      return;
    case DataType::kFloat64:
      doubles_.push_back(AsDouble(value));
      return;
    case DataType::kString:
      AppendString(std::get<std::string>(value));
      return;
  }
  throw std::logic_error("Column::AppendValue: bad type");
}

void Column::AppendString(std::string v) {
  if (dict_ != nullptr) {
    // Appending an arbitrary string cannot stay on a shared immutable
    // dictionary; decode first. Hot paths append via AppendFrom /
    // GatherFrom, which keep the encoding.
    EnsurePlainStrings();
  }
  strings_.push_back(std::move(v));
}

void Column::AppendFrom(const Column& other, std::size_t row) {
  if (other.type_ != type_) {
    throw std::invalid_argument("Column::AppendFrom: type mismatch");
  }
  switch (type_) {
    case DataType::kInt64:
      ints_.push_back(other.ints_[row]);
      return;
    case DataType::kFloat64:
      doubles_.push_back(other.doubles_[row]);
      return;
    case DataType::kString:
      if (other.dict_ != nullptr) {
        if (dict_ == other.dict_) {
          codes_.push_back(other.codes_[row]);
          return;
        }
        if (dict_ == nullptr && strings_.empty()) {
          // Fresh destination adopts the source's dictionary, so
          // row-at-a-time materialization keeps the encoding.
          AdoptDictionary(other.dict_);
          codes_.push_back(other.codes_[row]);
          return;
        }
      }
      EnsurePlainStrings();
      strings_.push_back(other.GetString(row));
      return;
  }
}

void Column::GatherFrom(const Column& other,
                        const std::vector<std::uint32_t>& rows) {
  if (other.type_ != type_) {
    throw std::invalid_argument("Column::GatherFrom: type mismatch");
  }
  switch (type_) {
    case DataType::kInt64: {
      const std::size_t base = ints_.size();
      // Exact reserve before resize: morsel merges gather many chunks
      // into one output, and libstdc++'s geometric resize would
      // over-allocate up to 2x on each of them.
      if (base + rows.size() > ints_.capacity()) {
        ints_.reserve(base + rows.size());
      }
      ints_.resize(base + rows.size());
      const std::int64_t* src = other.ints_.data();
      std::int64_t* dst = ints_.data() + base;
      for (std::size_t i = 0; i < rows.size(); ++i) dst[i] = src[rows[i]];
      return;
    }
    case DataType::kFloat64: {
      const std::size_t base = doubles_.size();
      if (base + rows.size() > doubles_.capacity()) {
        doubles_.reserve(base + rows.size());
      }
      doubles_.resize(base + rows.size());
      const double* src = other.doubles_.data();
      double* dst = doubles_.data() + base;
      for (std::size_t i = 0; i < rows.size(); ++i) dst[i] = src[rows[i]];
      return;
    }
    case DataType::kString: {
      if (other.dict_ != nullptr &&
          (dict_ == other.dict_ ||
           (dict_ == nullptr && strings_.empty()))) {
        if (dict_ == nullptr) AdoptDictionary(other.dict_);
        // Selection/join materialization of an encoded column is an
        // int32 gather — no string copies at all.
        const std::size_t base = codes_.size();
        if (base + rows.size() > codes_.capacity()) {
          codes_.reserve(base + rows.size());
        }
        codes_.resize(base + rows.size());
        const std::int32_t* src = other.codes_.data();
        std::int32_t* dst = codes_.data() + base;
        for (std::size_t i = 0; i < rows.size(); ++i) dst[i] = src[rows[i]];
        return;
      }
      EnsurePlainStrings();
      strings_.reserve(strings_.size() + rows.size());
      for (const std::uint32_t r : rows) {
        strings_.push_back(other.GetString(r));
      }
      return;
    }
  }
}

void Column::AppendRangeFrom(const Column& other, std::size_t begin,
                             std::size_t end) {
  if (other.type_ != type_) {
    throw std::invalid_argument("Column::AppendRangeFrom: type mismatch");
  }
  // Exact reserve: vector::insert grows geometrically when the range
  // overflows capacity, which over-allocates on chunked appends.
  switch (type_) {
    case DataType::kInt64:
      if (ints_.size() + (end - begin) > ints_.capacity()) {
        ints_.reserve(ints_.size() + (end - begin));
      }
      ints_.insert(ints_.end(), other.ints_.begin() + begin,
                   other.ints_.begin() + end);
      return;
    case DataType::kFloat64:
      if (doubles_.size() + (end - begin) > doubles_.capacity()) {
        doubles_.reserve(doubles_.size() + (end - begin));
      }
      doubles_.insert(doubles_.end(), other.doubles_.begin() + begin,
                      other.doubles_.begin() + end);
      return;
    case DataType::kString:
      if (other.dict_ != nullptr &&
          (dict_ == other.dict_ ||
           (dict_ == nullptr && strings_.empty()))) {
        if (dict_ == nullptr) AdoptDictionary(other.dict_);
        if (codes_.size() + (end - begin) > codes_.capacity()) {
          codes_.reserve(codes_.size() + (end - begin));
        }
        codes_.insert(codes_.end(), other.codes_.begin() + begin,
                      other.codes_.begin() + end);
        return;
      }
      EnsurePlainStrings();
      if (strings_.size() + (end - begin) > strings_.capacity()) {
        strings_.reserve(strings_.size() + (end - begin));
      }
      for (std::size_t r = begin; r < end; ++r) {
        strings_.push_back(other.GetString(r));
      }
      return;
  }
}

void Column::Reserve(std::size_t n) {
  switch (type_) {
    case DataType::kInt64:
      ints_.reserve(n);
      return;
    case DataType::kFloat64:
      doubles_.reserve(n);
      return;
    case DataType::kString:
      if (dict_ != nullptr) {
        codes_.reserve(n);
      } else {
        strings_.reserve(n);
      }
      return;
  }
}

std::int64_t Column::ByteSize() const {
  switch (type_) {
    case DataType::kInt64:
      return static_cast<std::int64_t>(ints_.size() * sizeof(std::int64_t));
    case DataType::kFloat64:
      return static_cast<std::int64_t>(doubles_.size() * sizeof(double));
    case DataType::kString: {
      static const std::size_t kSsoCapacity = std::string().capacity();
      if (dict_ != nullptr) {
        // Encoded footprint: 4 bytes per row plus the dictionary. The
        // dictionary is charged in full to each referencing column —
        // conservative when shared, but it keeps per-column accounting
        // local, and dictionaries are small (<=~64k entries) next to
        // the row vectors they replace.
        std::int64_t total = static_cast<std::int64_t>(
            codes_.size() * sizeof(std::int32_t));
        total += static_cast<std::int64_t>(dict_->size() *
                                           sizeof(std::string));
        for (const auto& s : *dict_) {
          if (s.capacity() > kSsoCapacity) {
            total += static_cast<std::int64_t>(s.capacity()) + 1;
          }
        }
        return total;
      }
      // The std::string objects themselves, plus each string's heap
      // block. Heap blocks are sized by capacity (what the allocator
      // handed out), not size; strings short enough for the small-string
      // optimization live inside the object and add nothing.
      std::int64_t total = static_cast<std::int64_t>(
          strings_.size() * sizeof(std::string));
      for (const auto& s : strings_) {
        if (s.capacity() > kSsoCapacity) {
          total += static_cast<std::int64_t>(s.capacity()) + 1;
        }
      }
      return total;
    }
  }
  return 0;
}

double Column::NumericAt(std::size_t row) const {
  switch (type_) {
    case DataType::kInt64:
      return static_cast<double>(ints_[row]);
    case DataType::kFloat64:
      return doubles_[row];
    case DataType::kString:
      throw std::invalid_argument("NumericAt: string column");
  }
  return 0;
}

bool Column::operator==(const Column& other) const {
  if (type_ != other.type_) return false;
  if (type_ == DataType::kString) {
    const std::size_t n = size();
    if (n != other.size()) return false;
    if (dict_ != nullptr && dict_ == other.dict_) {
      return codes_ == other.codes_;
    }
    if (dict_ == nullptr && other.dict_ == nullptr) {
      return strings_ == other.strings_;
    }
    // Mixed (or differently-dictionaried) representations: compare
    // logical content row by row.
    for (std::size_t r = 0; r < n; ++r) {
      if (GetString(r) != other.GetString(r)) return false;
    }
    return true;
  }
  if (ints_ != other.ints_) return false;
  // Doubles compare by bit pattern (NaN == NaN, 0.0 != -0.0): equality
  // means bit-identical contents, which is what the golden equivalence
  // suite and the runtime's disk round-trip checks assert.
  if (doubles_.size() != other.doubles_.size()) return false;
  return doubles_.empty() ||
         std::memcmp(doubles_.data(), other.doubles_.data(),
                     doubles_.size() * sizeof(double)) == 0;
}

}  // namespace sc::engine
