#ifndef SC_ENGINE_TYPES_H_
#define SC_ENGINE_TYPES_H_

#include <cstdint>
#include <string>
#include <variant>

namespace sc::engine {

/// Column data types supported by the engine. Dates are stored as int64
/// day numbers (like TPC-DS surrogate date keys).
enum class DataType {
  kInt64,
  kFloat64,
  kString,
};

std::string ToString(DataType type);

/// A single scalar value. The variant alternative must match the column's
/// DataType (int64 <-> kInt64, double <-> kFloat64, string <-> kString).
using Value = std::variant<std::int64_t, double, std::string>;

/// DataType of a Value's current alternative.
DataType TypeOf(const Value& value);

/// Renders a value for debugging / CSV output.
std::string ToString(const Value& value);

/// Three-way comparison used by sort and join keys. Values of different
/// numeric types compare numerically; comparing a string with a number is
/// a programming error (throws std::invalid_argument).
int CompareValues(const Value& a, const Value& b);

/// Numeric coercion helpers (throw std::invalid_argument on strings).
double AsDouble(const Value& value);
std::int64_t AsInt64(const Value& value);

}  // namespace sc::engine

#endif  // SC_ENGINE_TYPES_H_
