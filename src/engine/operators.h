#ifndef SC_ENGINE_OPERATORS_H_
#define SC_ENGINE_OPERATORS_H_

#include "engine/plan.h"
#include "engine/table.h"

namespace sc::engine {

/// Physical operator implementations, one function per logical operator.
/// All operators are blocking (materialize their full output), matching
/// how a warehouse materializes each MV in one statement.
///
/// Execution is vectorized (MonetDB/X100-style, applied to blocking
/// materialization): joins and aggregates hash typed composite keys with
/// FNV over the raw column values (no per-row key allocation), filters
/// produce selection vectors that are gathered column-at-a-time
/// (Column::GatherFrom), and expressions evaluate through tight typed
/// loops (engine/expr.h). The pre-vectorization row-at-a-time
/// implementations are retained in engine/scalar_reference.h as the
/// golden reference; tests/engine_vectorized_test.cc asserts every
/// operator bit-identical against them (two documented exceptions where
/// the scalar behaviour was a latent bug — int64 values beyond 2^53 now
/// compare exactly instead of via double rounding, and empty-input
/// global string MIN/MAX no longer throws; see scalar_reference.h).

/// Rows of `input` where `predicate` evaluates non-zero.
Table FilterTable(const Table& input, const Expr& predicate);

/// Evaluates each projection over `input`; output columns take the
/// projection names.
Table ProjectTable(const Table& input, const std::vector<NamedExpr>& exprs);

/// Inner equi-join: builds a hash table on `right`, probes with `left`.
/// Output schema = left fields followed by right fields whose names do not
/// collide with a left field (key columns with identical names appear
/// once).
Table HashJoinTables(const Table& left, const Table& right,
                     const std::vector<std::string>& left_keys,
                     const std::vector<std::string>& right_keys);

/// Hash aggregation. With empty `group_keys` produces a single global row.
/// Output schema = group keys followed by one column per aggregate
/// (kSum keeps int64 for int64 args, otherwise float64; kCount is int64;
/// kAvg is float64; kMin/kMax keep the argument type).
Table AggregateTable(const Table& input,
                     const std::vector<std::string>& group_keys,
                     const std::vector<AggSpec>& aggregates);

/// Stable multi-key sort.
Table SortTable(const Table& input, const std::vector<std::string>& keys,
                const std::vector<bool>& descending);

/// First `limit` rows (all rows if limit < 0).
Table LimitTable(const Table& input, std::int64_t limit);

/// Concatenation; schemas must match exactly.
Table UnionAllTables(const Table& left, const Table& right);

}  // namespace sc::engine

#endif  // SC_ENGINE_OPERATORS_H_
