#include "engine/types.h"

#include <cmath>
#include <stdexcept>

#include "common/str_util.h"

namespace sc::engine {

std::string ToString(DataType type) {
  switch (type) {
    case DataType::kInt64:
      return "int64";
    case DataType::kFloat64:
      return "float64";
    case DataType::kString:
      return "string";
  }
  return "unknown";
}

DataType TypeOf(const Value& value) {
  if (std::holds_alternative<std::int64_t>(value)) return DataType::kInt64;
  if (std::holds_alternative<double>(value)) return DataType::kFloat64;
  return DataType::kString;
}

std::string ToString(const Value& value) {
  if (const auto* i = std::get_if<std::int64_t>(&value)) {
    return std::to_string(*i);
  }
  if (const auto* d = std::get_if<double>(&value)) {
    return StrFormat("%.6g", *d);
  }
  return std::get<std::string>(value);
}

int CompareValues(const Value& a, const Value& b) {
  const bool a_str = std::holds_alternative<std::string>(a);
  const bool b_str = std::holds_alternative<std::string>(b);
  if (a_str != b_str) {
    throw std::invalid_argument("CompareValues: string vs numeric");
  }
  if (a_str) {
    const auto& sa = std::get<std::string>(a);
    const auto& sb = std::get<std::string>(b);
    if (sa < sb) return -1;
    if (sb < sa) return 1;
    return 0;
  }
  const double da = AsDouble(a);
  const double db = AsDouble(b);
  if (da < db) return -1;
  if (db < da) return 1;
  return 0;
}

double AsDouble(const Value& value) {
  if (const auto* i = std::get_if<std::int64_t>(&value)) {
    return static_cast<double>(*i);
  }
  if (const auto* d = std::get_if<double>(&value)) return *d;
  throw std::invalid_argument("AsDouble: value is a string");
}

std::int64_t AsInt64(const Value& value) {
  if (const auto* i = std::get_if<std::int64_t>(&value)) return *i;
  if (const auto* d = std::get_if<double>(&value)) {
    return static_cast<std::int64_t>(std::llround(*d));
  }
  throw std::invalid_argument("AsInt64: value is a string");
}

}  // namespace sc::engine
