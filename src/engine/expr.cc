#include "engine/expr.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <stdexcept>
#include <type_traits>

namespace sc::engine {

namespace {

std::string OpName(Expr::Op op) {
  switch (op) {
    case Expr::Op::kAdd: return "+";
    case Expr::Op::kSub: return "-";
    case Expr::Op::kMul: return "*";
    case Expr::Op::kDiv: return "/";
    case Expr::Op::kMod: return "%";
    case Expr::Op::kLt: return "<";
    case Expr::Op::kLe: return "<=";
    case Expr::Op::kGt: return ">";
    case Expr::Op::kGe: return ">=";
    case Expr::Op::kEq: return "==";
    case Expr::Op::kNe: return "!=";
    case Expr::Op::kAnd: return "AND";
    case Expr::Op::kOr: return "OR";
    case Expr::Op::kNot: return "NOT";
    case Expr::Op::kNeg: return "-";
  }
  return "?";
}

bool IsComparison(Expr::Op op) {
  switch (op) {
    case Expr::Op::kLt:
    case Expr::Op::kLe:
    case Expr::Op::kGt:
    case Expr::Op::kGe:
    case Expr::Op::kEq:
    case Expr::Op::kNe:
      return true;
    default:
      return false;
  }
}

bool IsLogical(Expr::Op op) {
  return op == Expr::Op::kAnd || op == Expr::Op::kOr || op == Expr::Op::kNot;
}

}  // namespace

std::string Expr::ToString() const {
  switch (kind) {
    case Kind::kColumn:
      return column_name;
    case Kind::kLiteral:
      return sc::engine::ToString(literal);
    case Kind::kBinary:
      return "(" + left->ToString() + " " + OpName(op) + " " +
             right->ToString() + ")";
    case Kind::kUnary:
      return OpName(op) + "(" + left->ToString() + ")";
  }
  return "?";
}

ExprPtr Col(std::string name) {
  auto e = std::make_shared<Expr>();
  e->kind = Expr::Kind::kColumn;
  e->column_name = std::move(name);
  return e;
}

namespace {
ExprPtr MakeLiteral(Value v) {
  auto e = std::make_shared<Expr>();
  e->kind = Expr::Kind::kLiteral;
  e->literal = std::move(v);
  return e;
}
}  // namespace

ExprPtr Lit(std::int64_t v) { return MakeLiteral(Value{v}); }
ExprPtr Lit(double v) { return MakeLiteral(Value{v}); }
ExprPtr Lit(std::string v) { return MakeLiteral(Value{std::move(v)}); }

ExprPtr Binary(Expr::Op op, ExprPtr left, ExprPtr right) {
  auto e = std::make_shared<Expr>();
  e->kind = Expr::Kind::kBinary;
  e->op = op;
  e->left = std::move(left);
  e->right = std::move(right);
  return e;
}

ExprPtr Add(ExprPtr l, ExprPtr r) { return Binary(Expr::Op::kAdd, l, r); }
ExprPtr Sub(ExprPtr l, ExprPtr r) { return Binary(Expr::Op::kSub, l, r); }
ExprPtr Mul(ExprPtr l, ExprPtr r) { return Binary(Expr::Op::kMul, l, r); }
ExprPtr Div(ExprPtr l, ExprPtr r) { return Binary(Expr::Op::kDiv, l, r); }
ExprPtr Mod(ExprPtr l, ExprPtr r) { return Binary(Expr::Op::kMod, l, r); }
ExprPtr Lt(ExprPtr l, ExprPtr r) { return Binary(Expr::Op::kLt, l, r); }
ExprPtr Le(ExprPtr l, ExprPtr r) { return Binary(Expr::Op::kLe, l, r); }
ExprPtr Gt(ExprPtr l, ExprPtr r) { return Binary(Expr::Op::kGt, l, r); }
ExprPtr Ge(ExprPtr l, ExprPtr r) { return Binary(Expr::Op::kGe, l, r); }
ExprPtr Eq(ExprPtr l, ExprPtr r) { return Binary(Expr::Op::kEq, l, r); }
ExprPtr Ne(ExprPtr l, ExprPtr r) { return Binary(Expr::Op::kNe, l, r); }
ExprPtr And(ExprPtr l, ExprPtr r) { return Binary(Expr::Op::kAnd, l, r); }
ExprPtr Or(ExprPtr l, ExprPtr r) { return Binary(Expr::Op::kOr, l, r); }

ExprPtr Not(ExprPtr e) {
  auto out = std::make_shared<Expr>();
  out->kind = Expr::Kind::kUnary;
  out->op = Expr::Op::kNot;
  out->left = std::move(e);
  return out;
}

ExprPtr Neg(ExprPtr e) {
  auto out = std::make_shared<Expr>();
  out->kind = Expr::Kind::kUnary;
  out->op = Expr::Op::kNeg;
  out->left = std::move(e);
  return out;
}

DataType ResultType(const Expr& expr, const Schema& schema) {
  switch (expr.kind) {
    case Expr::Kind::kColumn: {
      const std::int32_t i = schema.IndexOf(expr.column_name);
      if (i < 0) {
        throw std::invalid_argument("unknown column '" + expr.column_name +
                                    "'");
      }
      return schema.field(static_cast<std::size_t>(i)).type;
    }
    case Expr::Kind::kLiteral:
      return TypeOf(expr.literal);
    case Expr::Kind::kUnary:
      return expr.op == Expr::Op::kNot ? DataType::kInt64
                                       : ResultType(*expr.left, schema);
    case Expr::Kind::kBinary: {
      if (IsComparison(expr.op) || IsLogical(expr.op)) return DataType::kInt64;
      const DataType lt = ResultType(*expr.left, schema);
      const DataType rt = ResultType(*expr.right, schema);
      if (lt == DataType::kString || rt == DataType::kString) {
        throw std::invalid_argument("arithmetic on string column");
      }
      if (expr.op == Expr::Op::kDiv) return DataType::kFloat64;
      if (lt == DataType::kFloat64 || rt == DataType::kFloat64) {
        return DataType::kFloat64;
      }
      return DataType::kInt64;
    }
  }
  throw std::logic_error("ResultType: bad expr kind");
}

// ---------------------------------------------------------------------------
// Vectorized evaluation
//
// The evaluator is column-at-a-time with three result representations:
// a *borrowed* column (scan of an input column — zero copy), an *owned*
// column (computed intermediate), or a *literal* (broadcast scalar,
// never materialized as a column; literal-only subtrees are folded to a
// single scalar). Each operator node dispatches ONCE on the operand
// types and then runs a tight typed loop over the raw vectors — no
// per-row type switch, no per-row Value boxing. Owned int64/double
// intermediates are recycled as the output buffer of their consuming
// node (scratch reuse), so a deep arithmetic tree allocates O(1)
// buffers, not one per node.
// ---------------------------------------------------------------------------

namespace {

/// Result of evaluating a sub-expression: borrowed column, owned column,
/// or broadcast literal. Exactly one alternative is active.
struct EvalOut {
  const Column* borrowed = nullptr;
  std::optional<Column> owned;
  std::optional<Value> literal;

  static EvalOut Borrow(const Column* c) {
    EvalOut e;
    e.borrowed = c;
    return e;
  }
  static EvalOut Own(Column c) {
    EvalOut e;
    e.owned.emplace(std::move(c));
    return e;
  }
  static EvalOut Const(Value v) {
    EvalOut e;
    e.literal.emplace(std::move(v));
    return e;
  }

  bool is_literal() const { return literal.has_value(); }
  const Column& col() const {
    return borrowed != nullptr ? *borrowed : *owned;
  }
  DataType type() const {
    return is_literal() ? TypeOf(*literal) : col().type();
  }
};

// Typed row accessors: the per-row "get" is resolved to a concrete type
// once per operator node, so the compiler sees plain array/constant
// reads inside the loops.
struct IntVecAcc {
  const std::int64_t* p;
  std::int64_t operator()(std::size_t r) const { return p[r]; }
};
struct DblVecAcc {
  const double* p;
  double operator()(std::size_t r) const { return p[r]; }
};
struct IntConstAcc {
  std::int64_t v;
  std::int64_t operator()(std::size_t) const { return v; }
};
struct DblConstAcc {
  double v;
  double operator()(std::size_t) const { return v; }
};
struct StrVecAcc {
  const std::string* p;
  const std::string& operator()(std::size_t r) const { return p[r]; }
};
struct StrDictAcc {
  const std::string* dict;
  const std::int32_t* codes;
  const std::string& operator()(std::size_t r) const {
    return dict[codes[r]];
  }
};
struct StrConstAcc {
  const std::string* v;
  const std::string& operator()(std::size_t) const { return *v; }
};

template <typename Fn>
decltype(auto) WithNumericAcc(const EvalOut& e, Fn&& fn) {
  if (e.is_literal()) {
    if (const auto* i = std::get_if<std::int64_t>(&*e.literal)) {
      return fn(IntConstAcc{*i});
    }
    if (const auto* d = std::get_if<double>(&*e.literal)) {
      return fn(DblConstAcc{*d});
    }
    throw std::invalid_argument("arithmetic on string column");
  }
  const Column& c = e.col();
  switch (c.type()) {
    case DataType::kInt64:
      return fn(IntVecAcc{c.ints().data()});
    case DataType::kFloat64:
      return fn(DblVecAcc{c.doubles().data()});
    case DataType::kString:
      throw std::invalid_argument("arithmetic on string column");
  }
  throw std::logic_error("bad column type");
}

template <typename Fn>
decltype(auto) WithStringAcc(const EvalOut& e, Fn&& fn) {
  if (e.is_literal()) {
    return fn(StrConstAcc{&std::get<std::string>(*e.literal)});
  }
  const Column& c = e.col();
  if (c.dictionary_encoded()) {
    return fn(StrDictAcc{c.dictionary()->data(), c.codes().data()});
  }
  return fn(StrVecAcc{c.strings().data()});
}

/// Claims an operand's owned buffer of the right type and length as the
/// output buffer (scratch reuse), else allocates. Safe even when the
/// claimed buffer is aliased by an accessor: the heap block survives the
/// vector move, and every write to out[r] happens after the reads at r.
std::vector<std::int64_t> ClaimIntScratch(EvalOut* a, EvalOut* b,
                                          std::size_t n) {
  for (EvalOut* e : {a, b}) {
    if (e != nullptr && e->owned.has_value() &&
        e->owned->type() == DataType::kInt64 && e->owned->size() == n) {
      return std::move(*e->owned).TakeInts();
    }
  }
  return std::vector<std::int64_t>(n);
}

std::vector<double> ClaimDblScratch(EvalOut* a, EvalOut* b,
                                    std::size_t n) {
  for (EvalOut* e : {a, b}) {
    if (e != nullptr && e->owned.has_value() &&
        e->owned->type() == DataType::kFloat64 && e->owned->size() == n) {
      return std::move(*e->owned).TakeDoubles();
    }
  }
  return std::vector<double>(n);
}

// ---------------------------------------------------------------------------
// Constant folding (literal-only subtrees evaluate once, not per row)
// ---------------------------------------------------------------------------

Value FoldBinary(Expr::Op op, const Value& a, const Value& b) {
  if (IsComparison(op)) {
    const bool a_str = std::holds_alternative<std::string>(a);
    const bool b_str = std::holds_alternative<std::string>(b);
    if (a_str != b_str) {
      throw std::invalid_argument("comparison of string vs numeric");
    }
    int cmp;
    if (a_str) {
      const auto& sa = std::get<std::string>(a);
      const auto& sb = std::get<std::string>(b);
      cmp = sa < sb ? -1 : (sb < sa ? 1 : 0);
    } else {
      const double da = AsDouble(a);
      const double db = AsDouble(b);
      cmp = da < db ? -1 : (db < da ? 1 : 0);
    }
    bool v = false;
    switch (op) {
      case Expr::Op::kLt: v = cmp < 0; break;
      case Expr::Op::kLe: v = cmp <= 0; break;
      case Expr::Op::kGt: v = cmp > 0; break;
      case Expr::Op::kGe: v = cmp >= 0; break;
      case Expr::Op::kEq: v = cmp == 0; break;
      case Expr::Op::kNe: v = cmp != 0; break;
      default: break;
    }
    return Value{std::int64_t{v ? 1 : 0}};
  }
  if (IsLogical(op)) {
    const bool av = AsDouble(a) != 0;
    const bool bv = AsDouble(b) != 0;
    const bool v = op == Expr::Op::kAnd ? (av && bv) : (av || bv);
    return Value{std::int64_t{v ? 1 : 0}};
  }
  if (std::holds_alternative<std::string>(a) ||
      std::holds_alternative<std::string>(b)) {
    throw std::invalid_argument("arithmetic on string column");
  }
  const bool as_double = op == Expr::Op::kDiv ||
                         std::holds_alternative<double>(a) ||
                         std::holds_alternative<double>(b);
  if (as_double) {
    const double da = AsDouble(a);
    const double db = AsDouble(b);
    switch (op) {
      case Expr::Op::kAdd: return Value{da + db};
      case Expr::Op::kSub: return Value{da - db};
      case Expr::Op::kMul: return Value{da * db};
      case Expr::Op::kDiv: return Value{db != 0 ? da / db : 0.0};
      case Expr::Op::kMod:
        return Value{db != 0 ? std::fmod(da, db) : 0.0};
      default: throw std::logic_error("bad arithmetic op");
    }
  }
  const std::int64_t ia = std::get<std::int64_t>(a);
  const std::int64_t ib = std::get<std::int64_t>(b);
  switch (op) {
    case Expr::Op::kAdd: return Value{ia + ib};
    case Expr::Op::kSub: return Value{ia - ib};
    case Expr::Op::kMul: return Value{ia * ib};
    case Expr::Op::kMod: return Value{ib != 0 ? ia % ib : std::int64_t{0}};
    default: throw std::logic_error("bad arithmetic op");
  }
}

Value FoldUnary(Expr::Op op, const Value& a) {
  if (op == Expr::Op::kNot) {
    return Value{std::int64_t{AsDouble(a) == 0 ? 1 : 0}};
  }
  // kNeg
  if (const auto* i = std::get_if<std::int64_t>(&a)) return Value{-*i};
  return Value{-AsDouble(a)};
}

// ---------------------------------------------------------------------------
// Vectorized kernels (one type dispatch, then a tight loop)
// ---------------------------------------------------------------------------

Column EvalComparison(Expr::Op op, EvalOut& lhs, EvalOut& rhs,
                      std::size_t n) {
  const bool a_str = lhs.type() == DataType::kString;
  const bool b_str = rhs.type() == DataType::kString;
  if (a_str != b_str) {
    throw std::invalid_argument("comparison of string vs numeric");
  }
  std::vector<std::int64_t> out(n);
  // Comparisons go through the same three-way cmp as the scalar path so
  // NaN semantics (cmp == 0) are preserved exactly.
  auto run = [&](auto ga, auto gb) {
    switch (op) {
      case Expr::Op::kLt:
        for (std::size_t r = 0; r < n; ++r) out[r] = ga(r) < gb(r) ? 1 : 0;
        break;
      case Expr::Op::kGt:
        for (std::size_t r = 0; r < n; ++r) out[r] = gb(r) < ga(r) ? 1 : 0;
        break;
      case Expr::Op::kLe:
        for (std::size_t r = 0; r < n; ++r) out[r] = gb(r) < ga(r) ? 0 : 1;
        break;
      case Expr::Op::kGe:
        for (std::size_t r = 0; r < n; ++r) out[r] = ga(r) < gb(r) ? 0 : 1;
        break;
      case Expr::Op::kEq:
        for (std::size_t r = 0; r < n; ++r) {
          out[r] = !(ga(r) < gb(r)) && !(gb(r) < ga(r)) ? 1 : 0;
        }
        break;
      case Expr::Op::kNe:
        for (std::size_t r = 0; r < n; ++r) {
          out[r] = ga(r) < gb(r) || gb(r) < ga(r) ? 1 : 0;
        }
        break;
      default:
        throw std::logic_error("bad comparison op");
    }
  };
  if (a_str) {
    // Dictionary-vs-literal fast path: on a sorted dictionary the
    // literal resolves to one binary search (`lo` = first code not less
    // than it, `hit` = exact member), after which every row comparison
    // is int32-only. Equivalent to the generic three-way string loop:
    // dict[c] < lit <=> c < lo, dict[c] == lit <=> hit && c == lo.
    const EvalOut* col_side = nullptr;
    const EvalOut* lit_side = nullptr;
    bool col_is_lhs = true;
    if (!lhs.is_literal() && lhs.col().dictionary_encoded() &&
        rhs.is_literal()) {
      col_side = &lhs;
      lit_side = &rhs;
    } else if (!rhs.is_literal() && rhs.col().dictionary_encoded() &&
               lhs.is_literal()) {
      col_side = &rhs;
      lit_side = &lhs;
      col_is_lhs = false;
    }
    if (col_side != nullptr) {
      const Column::Dictionary& dict = *col_side->col().dictionary();
      const std::string& lit = std::get<std::string>(*lit_side->literal);
      const std::int32_t lo = static_cast<std::int32_t>(
          std::lower_bound(dict.begin(), dict.end(), lit) - dict.begin());
      const bool hit = static_cast<std::size_t>(lo) < dict.size() &&
                       dict[static_cast<std::size_t>(lo)] == lit;
      const std::int32_t* codes = col_side->col().codes().data();
      // Canonical orientation: column on the left (flip the op when the
      // literal was the lhs).
      Expr::Op cop = op;
      if (!col_is_lhs) {
        switch (op) {
          case Expr::Op::kLt: cop = Expr::Op::kGt; break;
          case Expr::Op::kGt: cop = Expr::Op::kLt; break;
          case Expr::Op::kLe: cop = Expr::Op::kGe; break;
          case Expr::Op::kGe: cop = Expr::Op::kLe; break;
          default: break;  // kEq / kNe are symmetric
        }
      }
      switch (cop) {
        case Expr::Op::kLt:
          for (std::size_t r = 0; r < n; ++r) out[r] = codes[r] < lo;
          break;
        case Expr::Op::kLe:
          for (std::size_t r = 0; r < n; ++r) {
            out[r] = codes[r] < lo || (hit && codes[r] == lo);
          }
          break;
        case Expr::Op::kGt:
          for (std::size_t r = 0; r < n; ++r) {
            out[r] = !(codes[r] < lo || (hit && codes[r] == lo));
          }
          break;
        case Expr::Op::kGe:
          for (std::size_t r = 0; r < n; ++r) out[r] = !(codes[r] < lo);
          break;
        case Expr::Op::kEq:
          for (std::size_t r = 0; r < n; ++r) {
            out[r] = hit && codes[r] == lo;
          }
          break;
        case Expr::Op::kNe:
          for (std::size_t r = 0; r < n; ++r) {
            out[r] = !(hit && codes[r] == lo);
          }
          break;
        default:
          throw std::logic_error("bad comparison op");
      }
      return Column::FromInts(std::move(out));
    }
    WithStringAcc(lhs, [&](auto ga) {
      WithStringAcc(rhs, [&](auto gb) { run(ga, gb); });
    });
  } else {
    WithNumericAcc(lhs, [&](auto ga) {
      WithNumericAcc(rhs, [&](auto gb) { run(ga, gb); });
    });
  }
  return Column::FromInts(std::move(out));
}

Column EvalLogical(Expr::Op op, EvalOut& lhs, EvalOut& rhs,
                   std::size_t n) {
  std::vector<std::int64_t> out(n);
  // The scalar path only type-checked logical operands per row, so an
  // empty input never threw regardless of operand types; dispatch on
  // the accessors only when there are rows to read.
  if (n == 0) return Column::FromInts(std::move(out));
  WithNumericAcc(lhs, [&](auto ga) {
    WithNumericAcc(rhs, [&](auto gb) {
      if (op == Expr::Op::kAnd) {
        for (std::size_t r = 0; r < n; ++r) {
          out[r] = (ga(r) != 0 && gb(r) != 0) ? 1 : 0;
        }
      } else {
        for (std::size_t r = 0; r < n; ++r) {
          out[r] = (ga(r) != 0 || gb(r) != 0) ? 1 : 0;
        }
      }
    });
  });
  return Column::FromInts(std::move(out));
}

Column EvalArithmetic(Expr::Op op, EvalOut& lhs, EvalOut& rhs,
                      std::size_t n) {
  return WithNumericAcc(lhs, [&](auto ga) {
    return WithNumericAcc(rhs, [&](auto gb) -> Column {
      constexpr bool both_int =
          std::is_same_v<decltype(ga(std::size_t{0})), std::int64_t> &&
          std::is_same_v<decltype(gb(std::size_t{0})), std::int64_t>;
      if constexpr (both_int) {
        if (op != Expr::Op::kDiv) {
          std::vector<std::int64_t> out = ClaimIntScratch(&lhs, &rhs, n);
          switch (op) {
            case Expr::Op::kAdd:
              for (std::size_t r = 0; r < n; ++r) out[r] = ga(r) + gb(r);
              break;
            case Expr::Op::kSub:
              for (std::size_t r = 0; r < n; ++r) out[r] = ga(r) - gb(r);
              break;
            case Expr::Op::kMul:
              for (std::size_t r = 0; r < n; ++r) out[r] = ga(r) * gb(r);
              break;
            case Expr::Op::kMod:
              for (std::size_t r = 0; r < n; ++r) {
                const std::int64_t b = gb(r);
                out[r] = b != 0 ? ga(r) % b : 0;
              }
              break;
            default:
              throw std::logic_error("bad arithmetic op");
          }
          return Column::FromInts(std::move(out));
        }
      }
      std::vector<double> out = ClaimDblScratch(&lhs, &rhs, n);
      switch (op) {
        case Expr::Op::kAdd:
          for (std::size_t r = 0; r < n; ++r) {
            out[r] = static_cast<double>(ga(r)) + static_cast<double>(gb(r));
          }
          break;
        case Expr::Op::kSub:
          for (std::size_t r = 0; r < n; ++r) {
            out[r] = static_cast<double>(ga(r)) - static_cast<double>(gb(r));
          }
          break;
        case Expr::Op::kMul:
          for (std::size_t r = 0; r < n; ++r) {
            out[r] = static_cast<double>(ga(r)) * static_cast<double>(gb(r));
          }
          break;
        case Expr::Op::kDiv:
          for (std::size_t r = 0; r < n; ++r) {
            const double b = static_cast<double>(gb(r));
            out[r] = b != 0 ? static_cast<double>(ga(r)) / b : 0.0;
          }
          break;
        case Expr::Op::kMod:
          for (std::size_t r = 0; r < n; ++r) {
            const double b = static_cast<double>(gb(r));
            out[r] = b != 0 ? std::fmod(static_cast<double>(ga(r)), b) : 0.0;
          }
          break;
        default:
          throw std::logic_error("bad arithmetic op");
      }
      return Column::FromDoubles(std::move(out));
    });
  });
}

Column EvalUnary(Expr::Op op, EvalOut& child, std::size_t n) {
  if (op == Expr::Op::kNot) {
    std::vector<std::int64_t> out(n);
    // Per-row type checking in the scalar path: empty inputs never
    // threw, whatever the operand type.
    if (n == 0) return Column::FromInts(std::move(out));
    WithNumericAcc(child, [&](auto ga) {
      for (std::size_t r = 0; r < n; ++r) out[r] = ga(r) == 0 ? 1 : 0;
    });
    return Column::FromInts(std::move(out));
  }
  // kNeg. The scalar path negated int64 columns as int64 and everything
  // else through per-row NumericAt (double), so an empty non-int column
  // yields an empty float64 column without a type check.
  if (n == 0) {
    return child.type() == DataType::kInt64
               ? Column::FromInts({})
               : Column::FromDoubles({});
  }
  return WithNumericAcc(child, [&](auto ga) -> Column {
    if constexpr (std::is_same_v<decltype(ga(std::size_t{0})),
                                 std::int64_t>) {
      std::vector<std::int64_t> out = ClaimIntScratch(&child, nullptr, n);
      for (std::size_t r = 0; r < n; ++r) out[r] = -ga(r);
      return Column::FromInts(std::move(out));
    } else {
      std::vector<double> out = ClaimDblScratch(&child, nullptr, n);
      for (std::size_t r = 0; r < n; ++r) out[r] = -ga(r);
      return Column::FromDoubles(std::move(out));
    }
  });
}

EvalOut EvalNode(const Expr& expr, const Table& input) {
  switch (expr.kind) {
    case Expr::Kind::kColumn:
      return EvalOut::Borrow(&input.column(expr.column_name));
    case Expr::Kind::kLiteral:
      return EvalOut::Const(expr.literal);
    case Expr::Kind::kUnary: {
      EvalOut child = EvalNode(*expr.left, input);
      if (child.is_literal()) {
        return EvalOut::Const(FoldUnary(expr.op, *child.literal));
      }
      return EvalOut::Own(EvalUnary(expr.op, child, input.num_rows()));
    }
    case Expr::Kind::kBinary: {
      EvalOut lhs = EvalNode(*expr.left, input);
      EvalOut rhs = EvalNode(*expr.right, input);
      if (lhs.is_literal() && rhs.is_literal()) {
        return EvalOut::Const(FoldBinary(expr.op, *lhs.literal,
                                         *rhs.literal));
      }
      const std::size_t n = input.num_rows();
      if (IsComparison(expr.op)) {
        return EvalOut::Own(EvalComparison(expr.op, lhs, rhs, n));
      }
      if (IsLogical(expr.op)) {
        return EvalOut::Own(EvalLogical(expr.op, lhs, rhs, n));
      }
      return EvalOut::Own(EvalArithmetic(expr.op, lhs, rhs, n));
    }
  }
  throw std::logic_error("Eval: bad expr kind");
}

/// Broadcasts a folded literal to a full column (only at the evaluator
/// boundary — inner nodes never materialize literals).
Column BroadcastLiteral(const Value& v, std::size_t n) {
  if (const auto* i = std::get_if<std::int64_t>(&v)) {
    return Column::FromInts(std::vector<std::int64_t>(n, *i));
  }
  if (const auto* d = std::get_if<double>(&v)) {
    return Column::FromDoubles(std::vector<double>(n, *d));
  }
  return Column::FromStrings(
      std::vector<std::string>(n, std::get<std::string>(v)));
}

}  // namespace

Column EvalExpr(const Expr& expr, const Table& input) {
  EvalOut out = EvalNode(expr, input);
  if (out.is_literal()) return BroadcastLiteral(*out.literal,
                                                input.num_rows());
  if (out.borrowed != nullptr) return *out.borrowed;  // copy, as before
  return std::move(*out.owned);
}

EvalRef EvalExprBorrow(const Expr& expr, const Table& input) {
  EvalOut out = EvalNode(expr, input);
  if (out.borrowed != nullptr) return EvalRef(out.borrowed);
  if (out.is_literal()) {
    return EvalRef(BroadcastLiteral(*out.literal, input.num_rows()));
  }
  return EvalRef(std::move(*out.owned));
}

}  // namespace sc::engine
