#include "engine/expr.h"

#include <cmath>
#include <stdexcept>

namespace sc::engine {

namespace {

std::string OpName(Expr::Op op) {
  switch (op) {
    case Expr::Op::kAdd: return "+";
    case Expr::Op::kSub: return "-";
    case Expr::Op::kMul: return "*";
    case Expr::Op::kDiv: return "/";
    case Expr::Op::kMod: return "%";
    case Expr::Op::kLt: return "<";
    case Expr::Op::kLe: return "<=";
    case Expr::Op::kGt: return ">";
    case Expr::Op::kGe: return ">=";
    case Expr::Op::kEq: return "==";
    case Expr::Op::kNe: return "!=";
    case Expr::Op::kAnd: return "AND";
    case Expr::Op::kOr: return "OR";
    case Expr::Op::kNot: return "NOT";
    case Expr::Op::kNeg: return "-";
  }
  return "?";
}

bool IsComparison(Expr::Op op) {
  switch (op) {
    case Expr::Op::kLt:
    case Expr::Op::kLe:
    case Expr::Op::kGt:
    case Expr::Op::kGe:
    case Expr::Op::kEq:
    case Expr::Op::kNe:
      return true;
    default:
      return false;
  }
}

bool IsLogical(Expr::Op op) {
  return op == Expr::Op::kAnd || op == Expr::Op::kOr || op == Expr::Op::kNot;
}

}  // namespace

std::string Expr::ToString() const {
  switch (kind) {
    case Kind::kColumn:
      return column_name;
    case Kind::kLiteral:
      return sc::engine::ToString(literal);
    case Kind::kBinary:
      return "(" + left->ToString() + " " + OpName(op) + " " +
             right->ToString() + ")";
    case Kind::kUnary:
      return OpName(op) + "(" + left->ToString() + ")";
  }
  return "?";
}

ExprPtr Col(std::string name) {
  auto e = std::make_shared<Expr>();
  e->kind = Expr::Kind::kColumn;
  e->column_name = std::move(name);
  return e;
}

namespace {
ExprPtr MakeLiteral(Value v) {
  auto e = std::make_shared<Expr>();
  e->kind = Expr::Kind::kLiteral;
  e->literal = std::move(v);
  return e;
}
}  // namespace

ExprPtr Lit(std::int64_t v) { return MakeLiteral(Value{v}); }
ExprPtr Lit(double v) { return MakeLiteral(Value{v}); }
ExprPtr Lit(std::string v) { return MakeLiteral(Value{std::move(v)}); }

ExprPtr Binary(Expr::Op op, ExprPtr left, ExprPtr right) {
  auto e = std::make_shared<Expr>();
  e->kind = Expr::Kind::kBinary;
  e->op = op;
  e->left = std::move(left);
  e->right = std::move(right);
  return e;
}

ExprPtr Add(ExprPtr l, ExprPtr r) { return Binary(Expr::Op::kAdd, l, r); }
ExprPtr Sub(ExprPtr l, ExprPtr r) { return Binary(Expr::Op::kSub, l, r); }
ExprPtr Mul(ExprPtr l, ExprPtr r) { return Binary(Expr::Op::kMul, l, r); }
ExprPtr Div(ExprPtr l, ExprPtr r) { return Binary(Expr::Op::kDiv, l, r); }
ExprPtr Mod(ExprPtr l, ExprPtr r) { return Binary(Expr::Op::kMod, l, r); }
ExprPtr Lt(ExprPtr l, ExprPtr r) { return Binary(Expr::Op::kLt, l, r); }
ExprPtr Le(ExprPtr l, ExprPtr r) { return Binary(Expr::Op::kLe, l, r); }
ExprPtr Gt(ExprPtr l, ExprPtr r) { return Binary(Expr::Op::kGt, l, r); }
ExprPtr Ge(ExprPtr l, ExprPtr r) { return Binary(Expr::Op::kGe, l, r); }
ExprPtr Eq(ExprPtr l, ExprPtr r) { return Binary(Expr::Op::kEq, l, r); }
ExprPtr Ne(ExprPtr l, ExprPtr r) { return Binary(Expr::Op::kNe, l, r); }
ExprPtr And(ExprPtr l, ExprPtr r) { return Binary(Expr::Op::kAnd, l, r); }
ExprPtr Or(ExprPtr l, ExprPtr r) { return Binary(Expr::Op::kOr, l, r); }

ExprPtr Not(ExprPtr e) {
  auto out = std::make_shared<Expr>();
  out->kind = Expr::Kind::kUnary;
  out->op = Expr::Op::kNot;
  out->left = std::move(e);
  return out;
}

ExprPtr Neg(ExprPtr e) {
  auto out = std::make_shared<Expr>();
  out->kind = Expr::Kind::kUnary;
  out->op = Expr::Op::kNeg;
  out->left = std::move(e);
  return out;
}

DataType ResultType(const Expr& expr, const Schema& schema) {
  switch (expr.kind) {
    case Expr::Kind::kColumn: {
      const std::int32_t i = schema.IndexOf(expr.column_name);
      if (i < 0) {
        throw std::invalid_argument("unknown column '" + expr.column_name +
                                    "'");
      }
      return schema.field(static_cast<std::size_t>(i)).type;
    }
    case Expr::Kind::kLiteral:
      return TypeOf(expr.literal);
    case Expr::Kind::kUnary:
      return expr.op == Expr::Op::kNot ? DataType::kInt64
                                       : ResultType(*expr.left, schema);
    case Expr::Kind::kBinary: {
      if (IsComparison(expr.op) || IsLogical(expr.op)) return DataType::kInt64;
      const DataType lt = ResultType(*expr.left, schema);
      const DataType rt = ResultType(*expr.right, schema);
      if (lt == DataType::kString || rt == DataType::kString) {
        throw std::invalid_argument("arithmetic on string column");
      }
      if (expr.op == Expr::Op::kDiv) return DataType::kFloat64;
      if (lt == DataType::kFloat64 || rt == DataType::kFloat64) {
        return DataType::kFloat64;
      }
      return DataType::kInt64;
    }
  }
  throw std::logic_error("ResultType: bad expr kind");
}

namespace {

/// Evaluates a sub-expression and returns a column of input.num_rows()
/// entries (literals are broadcast).
Column Eval(const Expr& expr, const Table& input);

Column EvalBinary(const Expr& expr, const Table& input) {
  const Column lhs = Eval(*expr.left, input);
  const Column rhs = Eval(*expr.right, input);
  const std::size_t n = input.num_rows();

  if (IsComparison(expr.op)) {
    std::vector<std::int64_t> out(n);
    const bool strings = lhs.type() == DataType::kString;
    if (strings != (rhs.type() == DataType::kString)) {
      throw std::invalid_argument("comparison of string vs numeric");
    }
    for (std::size_t r = 0; r < n; ++r) {
      int cmp;
      if (strings) {
        const auto& a = lhs.GetString(r);
        const auto& b = rhs.GetString(r);
        cmp = a < b ? -1 : (b < a ? 1 : 0);
      } else {
        const double a = lhs.NumericAt(r);
        const double b = rhs.NumericAt(r);
        cmp = a < b ? -1 : (b < a ? 1 : 0);
      }
      bool v = false;
      switch (expr.op) {
        case Expr::Op::kLt: v = cmp < 0; break;
        case Expr::Op::kLe: v = cmp <= 0; break;
        case Expr::Op::kGt: v = cmp > 0; break;
        case Expr::Op::kGe: v = cmp >= 0; break;
        case Expr::Op::kEq: v = cmp == 0; break;
        case Expr::Op::kNe: v = cmp != 0; break;
        default: break;
      }
      out[r] = v ? 1 : 0;
    }
    return Column::FromInts(std::move(out));
  }

  if (IsLogical(expr.op)) {
    std::vector<std::int64_t> out(n);
    for (std::size_t r = 0; r < n; ++r) {
      const bool a = lhs.NumericAt(r) != 0;
      const bool b = rhs.NumericAt(r) != 0;
      out[r] = (expr.op == Expr::Op::kAnd ? (a && b) : (a || b)) ? 1 : 0;
    }
    return Column::FromInts(std::move(out));
  }

  // Arithmetic.
  if (lhs.type() == DataType::kString || rhs.type() == DataType::kString) {
    throw std::invalid_argument("arithmetic on string column");
  }
  const bool as_double = expr.op == Expr::Op::kDiv ||
                         lhs.type() == DataType::kFloat64 ||
                         rhs.type() == DataType::kFloat64;
  if (as_double) {
    std::vector<double> out(n);
    for (std::size_t r = 0; r < n; ++r) {
      const double a = lhs.NumericAt(r);
      const double b = rhs.NumericAt(r);
      switch (expr.op) {
        case Expr::Op::kAdd: out[r] = a + b; break;
        case Expr::Op::kSub: out[r] = a - b; break;
        case Expr::Op::kMul: out[r] = a * b; break;
        case Expr::Op::kDiv: out[r] = b != 0 ? a / b : 0.0; break;
        case Expr::Op::kMod: out[r] = b != 0 ? std::fmod(a, b) : 0.0; break;
        default: throw std::logic_error("bad arithmetic op");
      }
    }
    return Column::FromDoubles(std::move(out));
  }
  std::vector<std::int64_t> out(n);
  for (std::size_t r = 0; r < n; ++r) {
    const std::int64_t a = lhs.GetInt(r);
    const std::int64_t b = rhs.GetInt(r);
    switch (expr.op) {
      case Expr::Op::kAdd: out[r] = a + b; break;
      case Expr::Op::kSub: out[r] = a - b; break;
      case Expr::Op::kMul: out[r] = a * b; break;
      case Expr::Op::kMod: out[r] = b != 0 ? a % b : 0; break;
      default: throw std::logic_error("bad arithmetic op");
    }
  }
  return Column::FromInts(std::move(out));
}

Column Eval(const Expr& expr, const Table& input) {
  const std::size_t n = input.num_rows();
  switch (expr.kind) {
    case Expr::Kind::kColumn:
      return input.column(expr.column_name);
    case Expr::Kind::kLiteral: {
      Column out(TypeOf(expr.literal));
      out.Reserve(n);
      for (std::size_t r = 0; r < n; ++r) out.AppendValue(expr.literal);
      return out;
    }
    case Expr::Kind::kUnary: {
      const Column child = Eval(*expr.left, input);
      if (expr.op == Expr::Op::kNot) {
        std::vector<std::int64_t> out(n);
        for (std::size_t r = 0; r < n; ++r) {
          out[r] = child.NumericAt(r) == 0 ? 1 : 0;
        }
        return Column::FromInts(std::move(out));
      }
      // kNeg
      if (child.type() == DataType::kInt64) {
        std::vector<std::int64_t> out(n);
        for (std::size_t r = 0; r < n; ++r) out[r] = -child.GetInt(r);
        return Column::FromInts(std::move(out));
      }
      std::vector<double> out(n);
      for (std::size_t r = 0; r < n; ++r) out[r] = -child.NumericAt(r);
      return Column::FromDoubles(std::move(out));
    }
    case Expr::Kind::kBinary:
      return EvalBinary(expr, input);
  }
  throw std::logic_error("Eval: bad expr kind");
}

}  // namespace

Column EvalExpr(const Expr& expr, const Table& input) {
  return Eval(expr, input);
}

}  // namespace sc::engine
