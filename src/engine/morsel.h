#ifndef SC_ENGINE_MORSEL_H_
#define SC_ENGINE_MORSEL_H_

#include <cstdint>
#include <functional>
#include <vector>

namespace sc::engine {

/// Executes the interior morsels of one operator. The engine defines only
/// this interface; the runtime implements it on the service-wide LanePool
/// (runtime::LaneMorselRunner), which is how intra-operator parallelism
/// borrows the same execution lanes that run whole DAG nodes without the
/// engine depending on the runtime layer.
class MorselRunner {
 public:
  virtual ~MorselRunner() = default;

  /// Maximum tasks that may execute concurrently, including the calling
  /// thread. Operators use this to bound partition counts.
  virtual int parallelism() const = 0;

  /// Runs `fn(0) .. fn(count - 1)`, possibly concurrently, and blocks
  /// until every call returned. The calling thread always participates,
  /// so progress never depends on helper threads being available. Any
  /// exception a task throws is rethrown on the caller after all tasks
  /// finish. `fn` must tolerate concurrent invocation for distinct
  /// indices (morsel bodies write disjoint ranges).
  virtual void Run(std::size_t count,
                   const std::function<void(std::size_t)>& fn) = 0;
};

/// Per-node morsel execution context. The runtime installs one around a
/// node's ExecuteNode (MorselScope) after deciding — from the PR-5 cost
/// model — how far the node's interior may fan out; operators consult
/// CurrentMorselContext() and split their hash build/probe and aggregate
/// passes into morsels when the input is large enough to pay for it. A
/// null context (or max_morsels <= 1) keeps every operator on the exact
/// pre-morsel single-threaded code path.
class MorselContext {
 public:
  MorselContext(MorselRunner* runner, int max_morsels,
                std::size_t min_morsel_rows)
      : runner_(runner),
        max_morsels_(max_morsels),
        min_morsel_rows_(min_morsel_rows < 1 ? 1 : min_morsel_rows) {}

  MorselRunner* runner() const { return runner_; }
  int max_morsels() const { return max_morsels_; }
  std::size_t min_morsel_rows() const { return min_morsel_rows_; }

  /// Morsels to split `rows` input rows into: bounded by the runtime's
  /// per-node budget (max_morsels) and by the row floor — a morsel below
  /// min_morsel_rows pays more in dispatch than it saves. Returns 1 when
  /// fan-out is not worth it (the caller then takes the sequential path).
  std::size_t PlanMorsels(std::size_t rows) const;

  /// Hash-buffer scratch pool: HashKeyRows buffers are borrowed and
  /// returned here so the morsels of one node (join build + probe sides,
  /// several operators of one plan tree) reuse allocations instead of
  /// growing a fresh vector each time. Single-threaded by contract: only
  /// the node's driving thread borrows/returns, never morsel helpers.
  std::vector<std::uint64_t> BorrowHashBuffer(std::size_t size);
  void ReturnHashBuffer(std::vector<std::uint64_t> buffer);

 private:
  MorselRunner* runner_;
  int max_morsels_;
  std::size_t min_morsel_rows_;
  std::vector<std::vector<std::uint64_t>> hash_scratch_;
};

/// The context installed for the calling thread, or null. Operators
/// running outside any scope (sequential Controller loop, direct library
/// use, morsel helper tasks) see null and stay single-threaded.
MorselContext* CurrentMorselContext();

/// RAII installer: the runtime wraps a node's execution in one scope so
/// every operator of that node's plan tree sees the same context. Scopes
/// nest (the previous context is restored on destruction), though the
/// runtime never nests them in practice.
class MorselScope {
 public:
  explicit MorselScope(MorselContext* context);
  ~MorselScope();

  MorselScope(const MorselScope&) = delete;
  MorselScope& operator=(const MorselScope&) = delete;

 private:
  MorselContext* previous_;
};

/// Splits `rows` into `morsels` contiguous ranges: morsel m covers
/// [bounds[m], bounds[m+1]). Ranges differ in size by at most one row and
/// concatenate in morsel order to [0, rows) — the order contract behind
/// bit-identical morsel merges.
std::vector<std::size_t> MorselBounds(std::size_t rows,
                                      std::size_t morsels);

/// Skew-aware task binning: assigns items (hash-join build partitions,
/// identified by index into `masses`) to at most `bins` task bins so the
/// per-bin mass is balanced even when one item dominates. Deterministic
/// longest-processing-time-first: items in (mass desc, index asc) order,
/// each into the currently lightest bin (ties to the lowest bin index);
/// item indices within a bin are returned ascending. Empty bins are
/// dropped, so every returned bin holds at least one item.
std::vector<std::vector<std::uint32_t>> BalanceTaskBins(
    const std::vector<std::size_t>& masses, std::size_t bins);

}  // namespace sc::engine

#endif  // SC_ENGINE_MORSEL_H_
