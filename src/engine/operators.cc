#include "engine/operators.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "common/fnv.h"

namespace sc::engine {

namespace {

constexpr std::uint32_t kNoRow = std::numeric_limits<std::uint32_t>::max();

std::vector<const Column*> ResolveColumns(
    const Table& table, const std::vector<std::string>& names) {
  std::vector<const Column*> out;
  out.reserve(names.size());
  for (const std::string& name : names) {
    out.push_back(&table.column(name));
  }
  return out;
}

/// Column-at-a-time FNV-1a hashes over the raw key values of every row:
/// the typed replacement for the scalar reference's per-row EncodeKey
/// string (which allocated one std::string per input row). Doubles hash
/// by bit pattern, strings by length + bytes; hash collisions are
/// resolved by KeyRowsEqual, never trusted.
std::vector<std::uint64_t> HashKeyRows(
    const std::vector<const Column*>& cols, std::size_t n) {
  std::vector<std::uint64_t> hashes(n, kFnvOffset);
  std::uint64_t* h = hashes.data();
  for (const Column* c : cols) {
    switch (c->type()) {
      case DataType::kInt64: {
        const std::int64_t* v = c->ints().data();
        for (std::size_t r = 0; r < n; ++r) FnvMixInt(&h[r], v[r]);
        break;
      }
      case DataType::kFloat64: {
        const double* v = c->doubles().data();
        for (std::size_t r = 0; r < n; ++r) FnvMixDouble(&h[r], v[r]);
        break;
      }
      case DataType::kString: {
        const std::string* v = c->strings().data();
        for (std::size_t r = 0; r < n; ++r) FnvMixString(&h[r], v[r]);
        break;
      }
    }
  }
  return hashes;
}

/// Typed composite-key equality between row `ra` of key set `a` and row
/// `rb` of key set `b`. Doubles compare by bit pattern, preserving the
/// encoded-key semantics of the scalar reference (-0.0 != 0.0 and
/// NaN == NaN group/join exactly as before).
bool KeyRowsEqual(const std::vector<const Column*>& a, std::size_t ra,
                  const std::vector<const Column*>& b, std::size_t rb) {
  for (std::size_t k = 0; k < a.size(); ++k) {
    switch (a[k]->type()) {
      case DataType::kInt64:
        if (a[k]->ints()[ra] != b[k]->ints()[rb]) return false;
        break;
      case DataType::kFloat64: {
        std::uint64_t bits_a;
        std::uint64_t bits_b;
        std::memcpy(&bits_a, &a[k]->doubles()[ra], sizeof(bits_a));
        std::memcpy(&bits_b, &b[k]->doubles()[rb], sizeof(bits_b));
        if (bits_a != bits_b) return false;
        break;
      }
      case DataType::kString:
        if (a[k]->strings()[ra] != b[k]->strings()[rb]) return false;
        break;
    }
  }
  return true;
}

std::size_t NextPow2(std::size_t n) {
  std::size_t cap = 1;
  while (cap < n) cap <<= 1;
  return cap;
}

/// Builds the selection vector of rows where `mask` is non-zero.
std::vector<std::uint32_t> SelectionFromMask(const Column& mask) {
  const std::size_t n = mask.size();
  std::vector<std::uint32_t> sel;
  sel.reserve(n);
  switch (mask.type()) {
    case DataType::kInt64: {
      const std::int64_t* v = mask.ints().data();
      for (std::size_t r = 0; r < n; ++r) {
        if (v[r] != 0) sel.push_back(static_cast<std::uint32_t>(r));
      }
      break;
    }
    case DataType::kFloat64: {
      const double* v = mask.doubles().data();
      for (std::size_t r = 0; r < n; ++r) {
        if (v[r] != 0) sel.push_back(static_cast<std::uint32_t>(r));
      }
      break;
    }
    case DataType::kString:
      if (n > 0) {
        throw std::invalid_argument("NumericAt: string column");
      }
      break;
  }
  return sel;
}

}  // namespace

Table FilterTable(const Table& input, const Expr& predicate) {
  const EvalRef mask = EvalExprBorrow(predicate, input);
  const std::vector<std::uint32_t> sel = SelectionFromMask(mask.col());
  Table out = Table::Empty(input.schema());
  out.GatherRowsFrom(input, sel);
  return out;
}

Table ProjectTable(const Table& input, const std::vector<NamedExpr>& exprs) {
  std::vector<Field> fields;
  std::vector<Column> columns;
  fields.reserve(exprs.size());
  columns.reserve(exprs.size());
  for (const NamedExpr& ne : exprs) {
    Column col = EvalExpr(*ne.expr, input);
    fields.push_back(Field{ne.name, col.type()});
    columns.push_back(std::move(col));
  }
  return Table(Schema(std::move(fields)), std::move(columns));
}

Table HashJoinTables(const Table& left, const Table& right,
                     const std::vector<std::string>& left_keys,
                     const std::vector<std::string>& right_keys) {
  if (left_keys.size() != right_keys.size() || left_keys.empty()) {
    throw std::invalid_argument("HashJoin: bad key lists");
  }
  const auto lcols = ResolveColumns(left, left_keys);
  const auto rcols = ResolveColumns(right, right_keys);
  for (std::size_t k = 0; k < lcols.size(); ++k) {
    if (lcols[k]->type() != rcols[k]->type()) {
      throw std::invalid_argument("HashJoin: key type mismatch on '" +
                                  left_keys[k] + "'");
    }
  }

  // Output schema: all left fields, plus right fields with fresh names.
  std::vector<Field> fields = left.schema().fields();
  std::vector<std::size_t> right_cols_kept;
  for (std::size_t c = 0; c < right.schema().num_fields(); ++c) {
    const Field& f = right.schema().field(c);
    if (left.schema().Contains(f.name)) continue;  // de-duplicate keys
    fields.push_back(f);
    right_cols_kept.push_back(c);
  }
  Table out = Table::Empty(Schema(std::move(fields)));

  // Build side: a chained bucket table over typed FNV hashes of the
  // right rows — two flat arrays, zero per-row allocation. Rows are
  // inserted in reverse so each chain lists its rows in ascending right
  // order, preserving the scalar reference's match order per key.
  const std::size_t rn = right.num_rows();
  const std::size_t ln = left.num_rows();
  const std::vector<std::uint64_t> rh = HashKeyRows(rcols, rn);
  const std::size_t cap = NextPow2(std::max<std::size_t>(rn * 2, 1));
  const std::size_t slot_mask = cap - 1;
  std::vector<std::uint32_t> head(cap, kNoRow);
  std::vector<std::uint32_t> next(rn);
  for (std::size_t r = rn; r > 0;) {
    --r;
    const std::size_t slot = rh[r] & slot_mask;
    next[r] = head[slot];
    head[slot] = static_cast<std::uint32_t>(r);
  }

  // Probe side: collect matching (left, right) row pairs, then gather
  // both sides column-at-a-time instead of appending cell-by-cell.
  const std::vector<std::uint64_t> lh = HashKeyRows(lcols, ln);
  std::vector<std::uint32_t> match_left;
  std::vector<std::uint32_t> match_right;
  match_left.reserve(ln);
  match_right.reserve(ln);
  for (std::size_t l = 0; l < ln; ++l) {
    for (std::uint32_t r = head[lh[l] & slot_mask]; r != kNoRow;
         r = next[r]) {
      if (rh[r] == lh[l] && KeyRowsEqual(lcols, l, rcols, r)) {
        match_left.push_back(static_cast<std::uint32_t>(l));
        match_right.push_back(r);
      }
    }
  }

  const std::size_t left_width = left.num_columns();
  for (std::size_t c = 0; c < left_width; ++c) {
    out.mutable_column(c).GatherFrom(left.column(c), match_left);
  }
  for (std::size_t k = 0; k < right_cols_kept.size(); ++k) {
    out.mutable_column(left_width + k)
        .GatherFrom(right.column(right_cols_kept[k]), match_right);
  }
  out.SyncRowCount();
  return out;
}

namespace {

DataType AggOutputType(const AggSpec& spec, const Schema& schema) {
  switch (spec.func) {
    case AggSpec::Func::kCount:
      return DataType::kInt64;
    case AggSpec::Func::kAvg:
      return DataType::kFloat64;
    case AggSpec::Func::kSum: {
      return ResultType(*spec.arg, schema) == DataType::kInt64
                 ? DataType::kInt64
                 : DataType::kFloat64;
    }
    case AggSpec::Func::kMin:
    case AggSpec::Func::kMax:
      return ResultType(*spec.arg, schema);
  }
  return DataType::kFloat64;
}

}  // namespace

Table AggregateTable(const Table& input,
                     const std::vector<std::string>& group_keys,
                     const std::vector<AggSpec>& aggregates) {
  const auto key_cols = ResolveColumns(input, group_keys);
  const std::size_t n = input.num_rows();

  // Pre-evaluate aggregate arguments column-at-a-time (borrowing the
  // input column outright for plain Col(...) arguments).
  std::vector<EvalRef> args(aggregates.size());
  for (std::size_t a = 0; a < aggregates.size(); ++a) {
    if (aggregates[a].func != AggSpec::Func::kCount) {
      args[a] = EvalExprBorrow(*aggregates[a].arg, input);
    }
  }

  // Pass 1 — group assignment. An incremental chained hash table over
  // typed FNV key hashes maps every row to a dense group id; groups are
  // numbered in first-occurrence order (the scalar reference's output
  // order). No per-row allocation: the scalar path built a std::string
  // key per row here.
  const bool global = group_keys.empty();
  std::vector<std::uint32_t> group_of_row(n);
  std::vector<std::uint32_t> representative;  // first row of each group
  if (global) {
    representative.push_back(0);
    std::fill(group_of_row.begin(), group_of_row.end(), 0u);
  } else {
    const std::vector<std::uint64_t> h = HashKeyRows(key_cols, n);
    const std::size_t cap = NextPow2(std::max<std::size_t>(n * 2, 1));
    const std::size_t slot_mask = cap - 1;
    std::vector<std::uint32_t> head(cap, kNoRow);
    std::vector<std::uint32_t> next_group;
    std::vector<std::uint64_t> group_hash;
    for (std::size_t r = 0; r < n; ++r) {
      const std::size_t slot = h[r] & slot_mask;
      std::uint32_t g = head[slot];
      while (g != kNoRow &&
             !(group_hash[g] == h[r] &&
               KeyRowsEqual(key_cols, r, key_cols, representative[g]))) {
        g = next_group[g];
      }
      if (g == kNoRow) {
        g = static_cast<std::uint32_t>(representative.size());
        representative.push_back(static_cast<std::uint32_t>(r));
        group_hash.push_back(h[r]);
        next_group.push_back(head[slot]);
        head[slot] = g;
      }
      group_of_row[r] = g;
    }
  }
  const std::size_t num_groups = representative.size();

  // Shared row counts per group (what AggState::count accumulated for
  // every aggregate in the scalar path).
  std::vector<std::int64_t> counts(num_groups, 0);
  for (std::size_t r = 0; r < n; ++r) counts[group_of_row[r]]++;

  // Output schema.
  std::vector<Field> fields;
  for (const std::string& k : group_keys) {
    const std::int32_t i = input.schema().IndexOf(k);
    if (i < 0) throw std::invalid_argument("Aggregate: unknown key " + k);
    fields.push_back(input.schema().field(static_cast<std::size_t>(i)));
  }
  for (const AggSpec& spec : aggregates) {
    fields.push_back(
        Field{spec.output_name, AggOutputType(spec, input.schema())});
  }
  Schema schema(std::move(fields));

  // Group key columns: gather each key's representative rows in bulk.
  std::vector<Column> columns;
  columns.reserve(schema.num_fields());
  for (std::size_t k = 0; k < group_keys.size(); ++k) {
    Column col(key_cols[k]->type());
    col.GatherFrom(*key_cols[k], representative);
    columns.push_back(std::move(col));
  }

  // Pass 2 — one tight typed accumulation loop per aggregate. Updates
  // run in row order per group, so floating-point sums are bit-identical
  // to the scalar reference's row-at-a-time accumulation.
  for (std::size_t a = 0; a < aggregates.size(); ++a) {
    const AggSpec& spec = aggregates[a];
    const DataType out_type =
        schema.field(group_keys.size() + a).type;
    const std::uint32_t* gid = group_of_row.data();
    switch (spec.func) {
      case AggSpec::Func::kCount:
        columns.push_back(Column::FromInts(
            std::vector<std::int64_t>(counts.begin(), counts.end())));
        break;
      case AggSpec::Func::kSum:
      case AggSpec::Func::kAvg: {
        const Column& arg = args[a].col();
        if (arg.type() == DataType::kString && n > 0) {
          throw std::invalid_argument("NumericAt: string column");
        }
        std::vector<double> sum(num_groups, 0.0);
        std::vector<std::int64_t> isum;
        if (arg.type() == DataType::kInt64) {
          isum.assign(num_groups, 0);
          const std::int64_t* v = arg.ints().data();
          for (std::size_t r = 0; r < n; ++r) {
            isum[gid[r]] += v[r];
            sum[gid[r]] += static_cast<double>(v[r]);
          }
        } else if (arg.type() == DataType::kFloat64) {
          const double* v = arg.doubles().data();
          for (std::size_t r = 0; r < n; ++r) sum[gid[r]] += v[r];
        }
        if (spec.func == AggSpec::Func::kAvg) {
          std::vector<double> avg(num_groups);
          for (std::size_t g = 0; g < num_groups; ++g) {
            avg[g] = counts[g] > 0
                         ? sum[g] / static_cast<double>(counts[g])
                         : 0.0;
          }
          columns.push_back(Column::FromDoubles(std::move(avg)));
        } else if (out_type == DataType::kInt64) {
          columns.push_back(Column::FromInts(std::move(isum)));
        } else {
          columns.push_back(Column::FromDoubles(std::move(sum)));
        }
        break;
      }
      case AggSpec::Func::kMin:
      case AggSpec::Func::kMax: {
        const Column& arg = args[a].col();
        const bool want_min = spec.func == AggSpec::Func::kMin;
        std::vector<char> has(num_groups, 0);
        switch (arg.type()) {
          case DataType::kInt64: {
            std::vector<std::int64_t> best(num_groups, 0);
            const std::int64_t* v = arg.ints().data();
            for (std::size_t r = 0; r < n; ++r) {
              const std::uint32_t g = gid[r];
              if (!has[g]) {
                best[g] = v[r];
                has[g] = 1;
              } else if (want_min ? v[r] < best[g] : best[g] < v[r]) {
                best[g] = v[r];
              }
            }
            columns.push_back(Column::FromInts(std::move(best)));
            break;
          }
          case DataType::kFloat64: {
            // The replace rule mirrors CompareValues: strictly-less /
            // strictly-greater, so NaNs never replace an incumbent.
            std::vector<double> best(num_groups, 0.0);
            const double* v = arg.doubles().data();
            for (std::size_t r = 0; r < n; ++r) {
              const std::uint32_t g = gid[r];
              if (!has[g]) {
                best[g] = v[r];
                has[g] = 1;
              } else if (want_min ? v[r] < best[g] : best[g] < v[r]) {
                best[g] = v[r];
              }
            }
            columns.push_back(Column::FromDoubles(std::move(best)));
            break;
          }
          case DataType::kString: {
            std::vector<std::string> best(num_groups);
            const std::string* v = arg.strings().data();
            for (std::size_t r = 0; r < n; ++r) {
              const std::uint32_t g = gid[r];
              if (!has[g]) {
                best[g] = v[r];
                has[g] = 1;
              } else if (want_min ? v[r] < best[g] : best[g] < v[r]) {
                best[g] = v[r];
              }
            }
            columns.push_back(Column::FromStrings(std::move(best)));
            break;
          }
        }
        break;
      }
    }
  }
  return Table(std::move(schema), std::move(columns));
}

Table SortTable(const Table& input, const std::vector<std::string>& keys,
                const std::vector<bool>& descending) {
  const auto key_cols = ResolveColumns(input, keys);
  std::vector<std::uint32_t> perm(input.num_rows());
  std::iota(perm.begin(), perm.end(), 0u);
  // Typed three-way compare per key — no per-comparison Value boxing
  // (the scalar reference allocated a std::string per string-key
  // comparison through Column::GetValue).
  auto compare_key = [](const Column& c, std::uint32_t a,
                        std::uint32_t b) -> int {
    switch (c.type()) {
      case DataType::kInt64: {
        const std::int64_t va = c.ints()[a];
        const std::int64_t vb = c.ints()[b];
        return va < vb ? -1 : (vb < va ? 1 : 0);
      }
      case DataType::kFloat64: {
        const double va = c.doubles()[a];
        const double vb = c.doubles()[b];
        return va < vb ? -1 : (vb < va ? 1 : 0);
      }
      case DataType::kString: {
        const std::string& va = c.strings()[a];
        const std::string& vb = c.strings()[b];
        return va < vb ? -1 : (vb < va ? 1 : 0);
      }
    }
    return 0;
  };
  std::stable_sort(perm.begin(), perm.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     for (std::size_t k = 0; k < key_cols.size(); ++k) {
                       const int cmp = compare_key(*key_cols[k], a, b);
                       if (cmp != 0) {
                         const bool desc =
                             k < descending.size() && descending[k];
                         return desc ? cmp > 0 : cmp < 0;
                       }
                     }
                     return false;
                   });
  Table out = Table::Empty(input.schema());
  out.GatherRowsFrom(input, perm);
  return out;
}

Table LimitTable(const Table& input, std::int64_t limit) {
  if (limit < 0 ||
      static_cast<std::size_t>(limit) >= input.num_rows()) {
    return input;
  }
  Table out = Table::Empty(input.schema());
  out.AppendRangeFrom(input, 0, static_cast<std::size_t>(limit));
  return out;
}

Table UnionAllTables(const Table& left, const Table& right) {
  if (!(left.schema() == right.schema())) {
    throw std::invalid_argument("UnionAll: schema mismatch");
  }
  Table out = left;
  out.AppendRangeFrom(right, 0, right.num_rows());
  return out;
}

}  // namespace sc::engine
