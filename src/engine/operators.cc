#include "engine/operators.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "common/fnv.h"
#include "engine/morsel.h"

namespace sc::engine {

namespace {

constexpr std::uint32_t kNoRow = std::numeric_limits<std::uint32_t>::max();

std::vector<const Column*> ResolveColumns(
    const Table& table, const std::vector<std::string>& names) {
  std::vector<const Column*> out;
  out.reserve(names.size());
  for (const std::string& name : names) {
    out.push_back(&table.column(name));
  }
  return out;
}

/// Column-at-a-time FNV-1a hashes over the raw key values of rows
/// [begin, end), written into the caller-owned buffer (h[r] for r in the
/// range): the typed replacement for the scalar reference's per-row
/// EncodeKey string (which allocated one std::string per input row).
/// Doubles hash by bit pattern, strings by length + bytes; hash
/// collisions are resolved by KeyRowsEqual, never trusted. The range
/// form is the morsel body: concurrent morsels hash disjoint row ranges
/// of one shared buffer.
///
/// `code_keys` selects the dictionary fast path for string columns:
/// hash the int32 code instead of the string bytes. Hashes must agree
/// between a join's build and probe side, so the caller may only set it
/// after proving every string key column (on both sides) carries the
/// same dictionary object — see SharedDictStringKeys. An encoded column
/// hashed WITHOUT the flag hashes its decoded strings, staying
/// compatible with a plain other side.
void HashKeyRowsRange(const std::vector<const Column*>& cols,
                      std::size_t begin, std::size_t end, std::uint64_t* h,
                      bool code_keys) {
  for (std::size_t r = begin; r < end; ++r) h[r] = kFnvOffset;
  for (const Column* c : cols) {
    switch (c->type()) {
      case DataType::kInt64: {
        const std::int64_t* v = c->ints().data();
        for (std::size_t r = begin; r < end; ++r) FnvMixInt(&h[r], v[r]);
        break;
      }
      case DataType::kFloat64: {
        const double* v = c->doubles().data();
        for (std::size_t r = begin; r < end; ++r) {
          FnvMixDouble(&h[r], v[r]);
        }
        break;
      }
      case DataType::kString: {
        if (c->dictionary_encoded()) {
          const std::int32_t* v = c->codes().data();
          if (code_keys) {
            for (std::size_t r = begin; r < end; ++r) {
              FnvMixInt(&h[r], v[r]);
            }
          } else {
            const std::string* dict = c->dictionary()->data();
            for (std::size_t r = begin; r < end; ++r) {
              FnvMixString(&h[r], dict[v[r]]);
            }
          }
        } else {
          const std::string* v = c->strings().data();
          for (std::size_t r = begin; r < end; ++r) {
            FnvMixString(&h[r], v[r]);
          }
        }
        break;
      }
    }
  }
}

/// True iff the key lists contain at least one string column and every
/// string column pair shares one dictionary object — the precondition
/// for hashing string keys as int32 codes on both sides. Pass the same
/// list twice for single-table (aggregate) keys.
bool SharedDictStringKeys(const std::vector<const Column*>& a,
                          const std::vector<const Column*>& b) {
  bool any_string = false;
  for (std::size_t k = 0; k < a.size(); ++k) {
    if (a[k]->type() != DataType::kString) continue;
    any_string = true;
    if (!a[k]->dictionary_encoded() ||
        a[k]->dictionary() != b[k]->dictionary()) {
      return false;
    }
  }
  return any_string;
}

/// HashKeyRows buffer that recycles allocations through the current
/// MorselContext's scratch pool (satellite: morsels of one node reuse
/// hash buffers instead of growing fresh vectors per operator call).
class HashBuffer {
 public:
  HashBuffer(MorselContext* context, std::size_t n) : context_(context) {
    if (context_ != nullptr) {
      buffer_ = context_->BorrowHashBuffer(n);
    } else {
      buffer_.resize(n);
    }
  }
  ~HashBuffer() {
    if (context_ != nullptr) {
      context_->ReturnHashBuffer(std::move(buffer_));
    }
  }
  HashBuffer(const HashBuffer&) = delete;
  HashBuffer& operator=(const HashBuffer&) = delete;

  std::uint64_t* data() { return buffer_.data(); }
  std::uint64_t operator[](std::size_t i) const { return buffer_[i]; }

 private:
  MorselContext* context_;
  std::vector<std::uint64_t> buffer_;
};

/// Typed composite-key equality between row `ra` of key set `a` and row
/// `rb` of key set `b`. Doubles compare by bit pattern, preserving the
/// encoded-key semantics of the scalar reference (-0.0 != 0.0 and
/// NaN == NaN group/join exactly as before).
bool KeyRowsEqual(const std::vector<const Column*>& a, std::size_t ra,
                  const std::vector<const Column*>& b, std::size_t rb) {
  for (std::size_t k = 0; k < a.size(); ++k) {
    switch (a[k]->type()) {
      case DataType::kInt64:
        if (a[k]->ints()[ra] != b[k]->ints()[rb]) return false;
        break;
      case DataType::kFloat64: {
        std::uint64_t bits_a;
        std::uint64_t bits_b;
        std::memcpy(&bits_a, &a[k]->doubles()[ra], sizeof(bits_a));
        std::memcpy(&bits_b, &b[k]->doubles()[rb], sizeof(bits_b));
        if (bits_a != bits_b) return false;
        break;
      }
      case DataType::kString:
        // Same dictionary object => codes compare as the strings do (no
        // flag needed: this check is per-column and always sound, unlike
        // hashing, which must agree across both sides up front).
        if (a[k]->dictionary_encoded() &&
            a[k]->dictionary() == b[k]->dictionary()) {
          if (a[k]->codes()[ra] != b[k]->codes()[rb]) return false;
        } else if (a[k]->GetString(ra) != b[k]->GetString(rb)) {
          return false;
        }
        break;
    }
  }
  return true;
}

std::size_t NextPow2(std::size_t n) {
  std::size_t cap = 1;
  while (cap < n) cap <<= 1;
  return cap;
}

/// Builds the selection vector of rows where `mask` is non-zero.
std::vector<std::uint32_t> SelectionFromMask(const Column& mask) {
  const std::size_t n = mask.size();
  std::vector<std::uint32_t> sel;
  sel.reserve(n);
  switch (mask.type()) {
    case DataType::kInt64: {
      const std::int64_t* v = mask.ints().data();
      for (std::size_t r = 0; r < n; ++r) {
        if (v[r] != 0) sel.push_back(static_cast<std::uint32_t>(r));
      }
      break;
    }
    case DataType::kFloat64: {
      const double* v = mask.doubles().data();
      for (std::size_t r = 0; r < n; ++r) {
        if (v[r] != 0) sel.push_back(static_cast<std::uint32_t>(r));
      }
      break;
    }
    case DataType::kString:
      if (n > 0) {
        throw std::invalid_argument("NumericAt: string column");
      }
      break;
  }
  return sel;
}

/// Morsel-parallel interior of HashJoinTables. Build rows are scattered
/// into partitions by the high bits of their FNV hash (FNV's multiply
/// mixes high bits hardest; the low bits still index slots within a
/// partition), each partition's chained table is built by one task, and
/// probe morsels scan disjoint probe ranges. A probe key's entire chain
/// lives in exactly one partition, the partition scatter preserves
/// ascending build-row order, and per-morsel match chunks concatenate in
/// morsel order — so the emitted (left, right) pairs are exactly the
/// sequential probe's output.
void PartitionedJoinMatches(MorselContext& ctx, std::size_t morsels,
                            const std::vector<const Column*>& lcols,
                            std::size_t ln, const std::uint64_t* lh,
                            const std::vector<const Column*>& rcols,
                            std::size_t rn, const std::uint64_t* rh,
                            std::vector<std::uint32_t>* match_left,
                            std::vector<std::uint32_t>* match_right) {
  MorselRunner& runner = *ctx.runner();
  // Over-partition 4x past the morsel count, then bin partitions onto
  // build tasks by measured row mass (LPT below). With one partition
  // per task, a heavy-hitter key made its partition dominant and the
  // build ran at the speed of the slowest task; with 4x partitions the
  // balancer can pack the heavy partition alone and spread the rest.
  const std::size_t partitions =
      NextPow2(std::max<std::size_t>(morsels * 4, 2));
  int bits = 0;
  while ((static_cast<std::size_t>(1) << bits) < partitions) ++bits;
  const int shift = 64 - bits;

  // Scatter build rows into partitions: count per (morsel, partition),
  // prefix into write cursors, then place. Cursors advance in morsel
  // order, so each partition lists its rows ascending.
  const std::vector<std::size_t> rb = MorselBounds(rn, morsels);
  std::vector<std::vector<std::uint32_t>> part_count(
      morsels, std::vector<std::uint32_t>(partitions, 0));
  runner.Run(morsels, [&](std::size_t m) {
    std::vector<std::uint32_t>& count = part_count[m];
    for (std::size_t r = rb[m]; r < rb[m + 1]; ++r) {
      count[rh[r] >> shift]++;
    }
  });
  std::vector<std::size_t> part_begin(partitions + 1, 0);
  for (std::size_t p = 0; p < partitions; ++p) {
    std::size_t total = 0;
    for (std::size_t m = 0; m < morsels; ++m) total += part_count[m][p];
    part_begin[p + 1] = part_begin[p] + total;
  }
  std::vector<std::vector<std::size_t>> cursor(
      morsels, std::vector<std::size_t>(partitions));
  {
    std::vector<std::size_t> running(part_begin.begin(),
                                     part_begin.end() - 1);
    for (std::size_t m = 0; m < morsels; ++m) {
      for (std::size_t p = 0; p < partitions; ++p) {
        cursor[m][p] = running[p];
        running[p] += part_count[m][p];
      }
    }
  }
  std::vector<std::uint32_t> part_rows(rn);
  runner.Run(morsels, [&](std::size_t m) {
    std::vector<std::size_t>& cur = cursor[m];
    for (std::size_t r = rb[m]; r < rb[m + 1]; ++r) {
      part_rows[cur[rh[r] >> shift]++] = static_cast<std::uint32_t>(r);
    }
  });

  // Per-partition chained tables. `next` is indexed by global build row,
  // so probes walk it directly; only `head` and the slot mask are
  // per-partition. Reverse insertion keeps chains ascending, as in the
  // sequential build.
  struct PartTable {
    std::vector<std::uint32_t> head;
    std::size_t slot_mask = 0;
  };
  std::vector<PartTable> tables(partitions);
  std::vector<std::uint32_t> next(rn);
  // Skew-aware build scheduling: partitions carry their exact row mass
  // (part_begin deltas), so bin them onto `morsels` build tasks with
  // longest-processing-time-first instead of one task per partition.
  // Partition builds are independent, so the binning cannot change the
  // emitted matches — only which lane builds which table.
  std::vector<std::size_t> part_mass(partitions);
  for (std::size_t p = 0; p < partitions; ++p) {
    part_mass[p] = part_begin[p + 1] - part_begin[p];
  }
  const std::vector<std::vector<std::uint32_t>> bins =
      BalanceTaskBins(part_mass, morsels);
  runner.Run(bins.size(), [&](std::size_t b) {
    for (const std::uint32_t p : bins[b]) {
      const std::size_t lo = part_begin[p];
      const std::size_t hi = part_begin[p + 1];
      PartTable& t = tables[p];
      const std::size_t cap =
          NextPow2(std::max<std::size_t>((hi - lo) * 2, 1));
      t.slot_mask = cap - 1;
      t.head.assign(cap, kNoRow);
      for (std::size_t i = hi; i > lo;) {
        --i;
        const std::uint32_t r = part_rows[i];
        const std::size_t slot = rh[r] & t.slot_mask;
        next[r] = t.head[slot];
        t.head[slot] = r;
      }
    }
  });

  // Probe morsels into per-morsel chunks, concatenated in morsel order.
  const std::vector<std::size_t> lb = MorselBounds(ln, morsels);
  std::vector<std::vector<std::uint32_t>> chunk_left(morsels);
  std::vector<std::vector<std::uint32_t>> chunk_right(morsels);
  runner.Run(morsels, [&](std::size_t m) {
    std::vector<std::uint32_t>& ml = chunk_left[m];
    std::vector<std::uint32_t>& mr = chunk_right[m];
    ml.reserve(lb[m + 1] - lb[m]);
    mr.reserve(lb[m + 1] - lb[m]);
    for (std::size_t l = lb[m]; l < lb[m + 1]; ++l) {
      const PartTable& t = tables[lh[l] >> shift];
      for (std::uint32_t r = t.head[lh[l] & t.slot_mask]; r != kNoRow;
           r = next[r]) {
        if (rh[r] == lh[l] && KeyRowsEqual(lcols, l, rcols, r)) {
          ml.push_back(static_cast<std::uint32_t>(l));
          mr.push_back(r);
        }
      }
    }
  });
  std::vector<std::size_t> out_at(morsels + 1, 0);
  for (std::size_t m = 0; m < morsels; ++m) {
    out_at[m + 1] = out_at[m] + chunk_left[m].size();
  }
  match_left->resize(out_at[morsels]);
  match_right->resize(out_at[morsels]);
  runner.Run(morsels, [&](std::size_t m) {
    std::copy(chunk_left[m].begin(), chunk_left[m].end(),
              match_left->begin() + out_at[m]);
    std::copy(chunk_right[m].begin(), chunk_right[m].end(),
              match_right->begin() + out_at[m]);
  });
}

/// Morsel-parallel pass 1 of AggregateTable. Each morsel builds a
/// partial group table over its contiguous row range; a sequential merge
/// in (morsel, local-group) order then assigns global ids. Because
/// morsels are ascending contiguous ranges, that merge order IS global
/// first-occurrence order: every key first seen in morsel m precedes
/// every key first seen in a later morsel, and within a morsel local ids
/// are already first-occurrence-ordered. Group numbering,
/// representatives, and counts therefore match the sequential pass
/// exactly.
void ParallelGroupRows(MorselContext& ctx, std::size_t morsels,
                       const std::vector<const Column*>& key_cols,
                       std::size_t n, bool code_keys,
                       std::vector<std::uint32_t>* group_of_row,
                       std::vector<std::uint32_t>* representative,
                       std::vector<std::int64_t>* counts) {
  MorselRunner& runner = *ctx.runner();
  const std::vector<std::size_t> bounds = MorselBounds(n, morsels);
  HashBuffer h(&ctx, n);
  runner.Run(morsels, [&](std::size_t m) {
    HashKeyRowsRange(key_cols, bounds[m], bounds[m + 1], h.data(),
                     code_keys);
  });

  // Per-morsel partial group tables over the shared hashes.
  // group_of_row holds local ids until the final pass translates them.
  struct LocalGroups {
    std::vector<std::uint32_t> rep;        // global row of local group
    std::vector<std::uint32_t> count;      // rows per local group
    std::vector<std::uint32_t> to_global;  // local id -> global id
  };
  std::vector<LocalGroups> locals(morsels);
  group_of_row->resize(n);
  std::uint32_t* gid = group_of_row->data();
  const std::uint64_t* hashes = h.data();
  runner.Run(morsels, [&](std::size_t m) {
    LocalGroups& lg = locals[m];
    const std::size_t lo = bounds[m];
    const std::size_t hi = bounds[m + 1];
    const std::size_t cap =
        NextPow2(std::max<std::size_t>((hi - lo) * 2, 1));
    const std::size_t slot_mask = cap - 1;
    std::vector<std::uint32_t> head(cap, kNoRow);
    std::vector<std::uint32_t> next_group;
    for (std::size_t r = lo; r < hi; ++r) {
      const std::size_t slot = hashes[r] & slot_mask;
      std::uint32_t g = head[slot];
      while (g != kNoRow &&
             !(hashes[lg.rep[g]] == hashes[r] &&
               KeyRowsEqual(key_cols, r, key_cols, lg.rep[g]))) {
        g = next_group[g];
      }
      if (g == kNoRow) {
        g = static_cast<std::uint32_t>(lg.rep.size());
        lg.rep.push_back(static_cast<std::uint32_t>(r));
        lg.count.push_back(0);
        next_group.push_back(head[slot]);
        head[slot] = g;
      }
      lg.count[g]++;
      gid[r] = g;
    }
  });

  // Deterministic sequential merge: global group table keyed by the
  // local representatives, visited in (morsel, local id) order.
  std::size_t total_local = 0;
  for (const LocalGroups& lg : locals) total_local += lg.rep.size();
  const std::size_t cap =
      NextPow2(std::max<std::size_t>(total_local * 2, 1));
  const std::size_t slot_mask = cap - 1;
  std::vector<std::uint32_t> head(cap, kNoRow);
  std::vector<std::uint32_t> next_group;
  representative->clear();
  counts->clear();
  for (std::size_t m = 0; m < morsels; ++m) {
    LocalGroups& lg = locals[m];
    lg.to_global.resize(lg.rep.size());
    for (std::size_t i = 0; i < lg.rep.size(); ++i) {
      const std::uint32_t row = lg.rep[i];
      const std::size_t slot = hashes[row] & slot_mask;
      std::uint32_t g = head[slot];
      while (g != kNoRow &&
             !(hashes[(*representative)[g]] == hashes[row] &&
               KeyRowsEqual(key_cols, row, key_cols,
                            (*representative)[g]))) {
        g = next_group[g];
      }
      if (g == kNoRow) {
        g = static_cast<std::uint32_t>(representative->size());
        representative->push_back(row);
        counts->push_back(0);
        next_group.push_back(head[slot]);
        head[slot] = g;
      }
      lg.to_global[i] = g;
      (*counts)[g] += lg.count[i];
    }
  }

  // Translate local ids to global in one parallel pass.
  runner.Run(morsels, [&](std::size_t m) {
    const LocalGroups& lg = locals[m];
    for (std::size_t r = bounds[m]; r < bounds[m + 1]; ++r) {
      gid[r] = lg.to_global[gid[r]];
    }
  });
}

}  // namespace

Table FilterTable(const Table& input, const Expr& predicate) {
  const EvalRef mask = EvalExprBorrow(predicate, input);
  const std::vector<std::uint32_t> sel = SelectionFromMask(mask.col());
  Table out = Table::Empty(input.schema());
  out.GatherRowsFrom(input, sel);
  return out;
}

Table ProjectTable(const Table& input, const std::vector<NamedExpr>& exprs) {
  std::vector<Field> fields;
  std::vector<Column> columns;
  fields.reserve(exprs.size());
  columns.reserve(exprs.size());
  for (const NamedExpr& ne : exprs) {
    Column col = EvalExpr(*ne.expr, input);
    fields.push_back(Field{ne.name, col.type()});
    columns.push_back(std::move(col));
  }
  return Table(Schema(std::move(fields)), std::move(columns));
}

Table HashJoinTables(const Table& left, const Table& right,
                     const std::vector<std::string>& left_keys,
                     const std::vector<std::string>& right_keys) {
  if (left_keys.size() != right_keys.size() || left_keys.empty()) {
    throw std::invalid_argument("HashJoin: bad key lists");
  }
  const auto lcols = ResolveColumns(left, left_keys);
  const auto rcols = ResolveColumns(right, right_keys);
  for (std::size_t k = 0; k < lcols.size(); ++k) {
    if (lcols[k]->type() != rcols[k]->type()) {
      throw std::invalid_argument("HashJoin: key type mismatch on '" +
                                  left_keys[k] + "'");
    }
  }

  // Output schema: all left fields, plus right fields with fresh names.
  std::vector<Field> fields = left.schema().fields();
  std::vector<std::size_t> right_cols_kept;
  for (std::size_t c = 0; c < right.schema().num_fields(); ++c) {
    const Field& f = right.schema().field(c);
    if (left.schema().Contains(f.name)) continue;  // de-duplicate keys
    fields.push_back(f);
    right_cols_kept.push_back(c);
  }
  Table out = Table::Empty(Schema(std::move(fields)));

  // Both sides hash first (typed FNV over the key columns); the probe
  // side's row count decides the morsel fan-out. With a morsel context
  // installed, hashing itself runs as morsels over disjoint row ranges
  // of shared scratch buffers.
  const std::size_t rn = right.num_rows();
  const std::size_t ln = left.num_rows();
  // Dictionary fast path: when every string key column shares one
  // dictionary object across both sides, hash and compare int32 codes
  // instead of string bytes. Cross-dictionary (or mixed plain/encoded)
  // sides fall back to decoded-string hashing, which is representation-
  // agnostic and therefore always consistent.
  const bool code_keys = SharedDictStringKeys(lcols, rcols);
  MorselContext* ctx = CurrentMorselContext();
  const std::size_t morsels = ctx != nullptr ? ctx->PlanMorsels(ln) : 1;
  HashBuffer rh(ctx, rn);
  HashBuffer lh(ctx, ln);
  if (morsels > 1) {
    const std::vector<std::size_t> rb = MorselBounds(rn, morsels);
    const std::vector<std::size_t> lb = MorselBounds(ln, morsels);
    ctx->runner()->Run(2 * morsels, [&](std::size_t t) {
      if (t < morsels) {
        HashKeyRowsRange(rcols, rb[t], rb[t + 1], rh.data(), code_keys);
      } else {
        const std::size_t m = t - morsels;
        HashKeyRowsRange(lcols, lb[m], lb[m + 1], lh.data(), code_keys);
      }
    });
  } else {
    HashKeyRowsRange(rcols, 0, rn, rh.data(), code_keys);
    HashKeyRowsRange(lcols, 0, ln, lh.data(), code_keys);
  }

  std::vector<std::uint32_t> match_left;
  std::vector<std::uint32_t> match_right;
  if (morsels > 1) {
    PartitionedJoinMatches(*ctx, morsels, lcols, ln, lh.data(), rcols, rn,
                           rh.data(), &match_left, &match_right);
  } else {
    // Build side: a chained bucket table over the right-row hashes — two
    // flat arrays, zero per-row allocation. Rows are inserted in reverse
    // so each chain lists its rows in ascending right order, preserving
    // the scalar reference's match order per key.
    const std::size_t cap = NextPow2(std::max<std::size_t>(rn * 2, 1));
    const std::size_t slot_mask = cap - 1;
    std::vector<std::uint32_t> head(cap, kNoRow);
    std::vector<std::uint32_t> next(rn);
    for (std::size_t r = rn; r > 0;) {
      --r;
      const std::size_t slot = rh[r] & slot_mask;
      next[r] = head[slot];
      head[slot] = static_cast<std::uint32_t>(r);
    }

    // Probe side: collect matching (left, right) row pairs, then gather
    // both sides column-at-a-time instead of appending cell-by-cell.
    match_left.reserve(ln);
    match_right.reserve(ln);
    for (std::size_t l = 0; l < ln; ++l) {
      for (std::uint32_t r = head[lh[l] & slot_mask]; r != kNoRow;
           r = next[r]) {
        if (rh[r] == lh[l] && KeyRowsEqual(lcols, l, rcols, r)) {
          match_left.push_back(static_cast<std::uint32_t>(l));
          match_right.push_back(r);
        }
      }
    }
  }

  const std::size_t left_width = left.num_columns();
  const std::size_t out_cols = left_width + right_cols_kept.size();
  auto gather_one = [&](std::size_t c) {
    if (c < left_width) {
      out.mutable_column(c).GatherFrom(left.column(c), match_left);
    } else {
      out.mutable_column(c).GatherFrom(
          right.column(right_cols_kept[c - left_width]), match_right);
    }
  };
  if (morsels > 1 && out_cols > 1) {
    // Columns are independent output vectors — gather them concurrently.
    ctx->runner()->Run(out_cols, gather_one);
  } else {
    for (std::size_t c = 0; c < out_cols; ++c) gather_one(c);
  }
  out.SyncRowCount();
  return out;
}

namespace {

DataType AggOutputType(const AggSpec& spec, const Schema& schema) {
  switch (spec.func) {
    case AggSpec::Func::kCount:
      return DataType::kInt64;
    case AggSpec::Func::kAvg:
      return DataType::kFloat64;
    case AggSpec::Func::kSum: {
      return ResultType(*spec.arg, schema) == DataType::kInt64
                 ? DataType::kInt64
                 : DataType::kFloat64;
    }
    case AggSpec::Func::kMin:
    case AggSpec::Func::kMax:
      return ResultType(*spec.arg, schema);
  }
  return DataType::kFloat64;
}

}  // namespace

Table AggregateTable(const Table& input,
                     const std::vector<std::string>& group_keys,
                     const std::vector<AggSpec>& aggregates) {
  const auto key_cols = ResolveColumns(input, group_keys);
  const std::size_t n = input.num_rows();

  // Pre-evaluate aggregate arguments column-at-a-time (borrowing the
  // input column outright for plain Col(...) arguments).
  std::vector<EvalRef> args(aggregates.size());
  for (std::size_t a = 0; a < aggregates.size(); ++a) {
    if (aggregates[a].func != AggSpec::Func::kCount) {
      args[a] = EvalExprBorrow(*aggregates[a].arg, input);
    }
  }

  // Pass 1 — group assignment. An incremental chained hash table over
  // typed FNV key hashes maps every row to a dense group id; groups are
  // numbered in first-occurrence order (the scalar reference's output
  // order). No per-row allocation: the scalar path built a std::string
  // key per row here.
  const bool global = group_keys.empty();
  // Single-table keys: each string key column trivially "shares" its
  // dictionary with itself, so any fully-encoded key set groups on
  // int32 codes.
  const bool code_keys = SharedDictStringKeys(key_cols, key_cols);
  MorselContext* ctx = CurrentMorselContext();
  const std::size_t morsels =
      (!global && ctx != nullptr) ? ctx->PlanMorsels(n) : 1;
  std::vector<std::uint32_t> group_of_row(n);
  std::vector<std::uint32_t> representative;  // first row of each group
  // counts: shared row counts per group (what AggState::count
  // accumulated for every aggregate in the scalar path).
  std::vector<std::int64_t> counts;
  if (global) {
    representative.push_back(0);
    std::fill(group_of_row.begin(), group_of_row.end(), 0u);
    counts.assign(1, static_cast<std::int64_t>(n));
  } else if (morsels > 1) {
    ParallelGroupRows(*ctx, morsels, key_cols, n, code_keys, &group_of_row,
                      &representative, &counts);
  } else {
    HashBuffer hb(ctx, n);
    HashKeyRowsRange(key_cols, 0, n, hb.data(), code_keys);
    const std::uint64_t* h = hb.data();
    const std::size_t cap = NextPow2(std::max<std::size_t>(n * 2, 1));
    const std::size_t slot_mask = cap - 1;
    std::vector<std::uint32_t> head(cap, kNoRow);
    std::vector<std::uint32_t> next_group;
    std::vector<std::uint64_t> group_hash;
    for (std::size_t r = 0; r < n; ++r) {
      const std::size_t slot = h[r] & slot_mask;
      std::uint32_t g = head[slot];
      while (g != kNoRow &&
             !(group_hash[g] == h[r] &&
               KeyRowsEqual(key_cols, r, key_cols, representative[g]))) {
        g = next_group[g];
      }
      if (g == kNoRow) {
        g = static_cast<std::uint32_t>(representative.size());
        representative.push_back(static_cast<std::uint32_t>(r));
        group_hash.push_back(h[r]);
        next_group.push_back(head[slot]);
        head[slot] = g;
      }
      group_of_row[r] = g;
    }
    counts.assign(representative.size(), 0);
    for (std::size_t r = 0; r < n; ++r) counts[group_of_row[r]]++;
  }
  const std::size_t num_groups = representative.size();

  // Output schema.
  std::vector<Field> fields;
  for (const std::string& k : group_keys) {
    const std::int32_t i = input.schema().IndexOf(k);
    if (i < 0) throw std::invalid_argument("Aggregate: unknown key " + k);
    fields.push_back(input.schema().field(static_cast<std::size_t>(i)));
  }
  for (const AggSpec& spec : aggregates) {
    fields.push_back(
        Field{spec.output_name, AggOutputType(spec, input.schema())});
  }
  Schema schema(std::move(fields));

  // Group key columns: gather each key's representative rows in bulk.
  std::vector<Column> columns;
  columns.reserve(schema.num_fields());
  for (std::size_t k = 0; k < group_keys.size(); ++k) {
    Column col(key_cols[k]->type());
    col.GatherFrom(*key_cols[k], representative);
    columns.push_back(std::move(col));
  }

  // Pass 2 — one tight typed accumulation loop per aggregate, always a
  // linear row scan accumulating into per-group slots: a linear scan
  // visits each group's rows in ascending row order, so floating-point
  // sums and NaN-sensitive MIN/MAX replay the scalar reference's
  // row-at-a-time fold exactly. Under morsel execution the *aggregates*
  // fan out across lanes (each builds an independent output column)
  // rather than the rows — parallel and bit-identical at once, with
  // every lane streaming its argument column sequentially.
  auto build_aggregate = [&](std::size_t a) -> Column {
    const AggSpec& spec = aggregates[a];
    const DataType out_type = schema.field(group_keys.size() + a).type;
    const std::uint32_t* gid = group_of_row.data();
    switch (spec.func) {
      case AggSpec::Func::kCount:
        return Column::FromInts(
            std::vector<std::int64_t>(counts.begin(), counts.end()));
      case AggSpec::Func::kSum:
      case AggSpec::Func::kAvg: {
        const Column& arg = args[a].col();
        if (arg.type() == DataType::kString && n > 0) {
          throw std::invalid_argument("NumericAt: string column");
        }
        std::vector<double> sum(num_groups, 0.0);
        std::vector<std::int64_t> isum;
        if (arg.type() == DataType::kInt64) {
          isum.assign(num_groups, 0);
          const std::int64_t* v = arg.ints().data();
          for (std::size_t r = 0; r < n; ++r) {
            isum[gid[r]] += v[r];
            sum[gid[r]] += static_cast<double>(v[r]);
          }
        } else if (arg.type() == DataType::kFloat64) {
          const double* v = arg.doubles().data();
          for (std::size_t r = 0; r < n; ++r) sum[gid[r]] += v[r];
        }
        if (spec.func == AggSpec::Func::kAvg) {
          std::vector<double> avg(num_groups);
          for (std::size_t g = 0; g < num_groups; ++g) {
            avg[g] = counts[g] > 0
                         ? sum[g] / static_cast<double>(counts[g])
                         : 0.0;
          }
          return Column::FromDoubles(std::move(avg));
        }
        if (out_type == DataType::kInt64) {
          return Column::FromInts(std::move(isum));
        }
        return Column::FromDoubles(std::move(sum));
      }
      case AggSpec::Func::kMin:
      case AggSpec::Func::kMax: {
        const Column& arg = args[a].col();
        const bool want_min = spec.func == AggSpec::Func::kMin;
        std::vector<char> has(num_groups, 0);
        switch (arg.type()) {
          case DataType::kInt64: {
            std::vector<std::int64_t> best(num_groups, 0);
            const std::int64_t* v = arg.ints().data();
            for (std::size_t r = 0; r < n; ++r) {
              const std::uint32_t g = gid[r];
              if (!has[g]) {
                best[g] = v[r];
                has[g] = 1;
              } else if (want_min ? v[r] < best[g] : best[g] < v[r]) {
                best[g] = v[r];
              }
            }
            return Column::FromInts(std::move(best));
          }
          case DataType::kFloat64: {
            // The replace rule mirrors CompareValues: strictly-less /
            // strictly-greater, so NaNs never replace an incumbent.
            std::vector<double> best(num_groups, 0.0);
            const double* v = arg.doubles().data();
            for (std::size_t r = 0; r < n; ++r) {
              const std::uint32_t g = gid[r];
              if (!has[g]) {
                best[g] = v[r];
                has[g] = 1;
              } else if (want_min ? v[r] < best[g] : best[g] < v[r]) {
                best[g] = v[r];
              }
            }
            return Column::FromDoubles(std::move(best));
          }
          case DataType::kString: {
            if (arg.dictionary_encoded()) {
              // Sorted dictionary => code order is string order, so
              // MIN/MAX fold over int32 codes and the result keeps the
              // input's dictionary (no string copies at all).
              std::vector<std::int32_t> best(num_groups, 0);
              const std::int32_t* v = arg.codes().data();
              for (std::size_t r = 0; r < n; ++r) {
                const std::uint32_t g = gid[r];
                if (!has[g]) {
                  best[g] = v[r];
                  has[g] = 1;
                } else if (want_min ? v[r] < best[g] : best[g] < v[r]) {
                  best[g] = v[r];
                }
              }
              return Column::FromDictionary(arg.dictionary(),
                                            std::move(best));
            }
            std::vector<std::string> best(num_groups);
            const std::string* v = arg.strings().data();
            for (std::size_t r = 0; r < n; ++r) {
              const std::uint32_t g = gid[r];
              if (!has[g]) {
                best[g] = v[r];
                has[g] = 1;
              } else if (want_min ? v[r] < best[g] : best[g] < v[r]) {
                best[g] = v[r];
              }
            }
            return Column::FromStrings(std::move(best));
          }
        }
        break;
      }
    }
    return Column(out_type);
  };
  if (morsels > 1 && aggregates.size() > 1) {
    std::vector<Column> agg_cols;
    agg_cols.reserve(aggregates.size());
    for (std::size_t a = 0; a < aggregates.size(); ++a) {
      agg_cols.emplace_back(schema.field(group_keys.size() + a).type);
    }
    ctx->runner()->Run(aggregates.size(), [&](std::size_t a) {
      agg_cols[a] = build_aggregate(a);
    });
    for (Column& c : agg_cols) columns.push_back(std::move(c));
  } else {
    for (std::size_t a = 0; a < aggregates.size(); ++a) {
      columns.push_back(build_aggregate(a));
    }
  }
  return Table(std::move(schema), std::move(columns));
}

Table SortTable(const Table& input, const std::vector<std::string>& keys,
                const std::vector<bool>& descending) {
  const auto key_cols = ResolveColumns(input, keys);
  std::vector<std::uint32_t> perm(input.num_rows());
  std::iota(perm.begin(), perm.end(), 0u);
  // Typed three-way compare per key — no per-comparison Value boxing
  // (the scalar reference allocated a std::string per string-key
  // comparison through Column::GetValue).
  auto compare_key = [](const Column& c, std::uint32_t a,
                        std::uint32_t b) -> int {
    switch (c.type()) {
      case DataType::kInt64: {
        const std::int64_t va = c.ints()[a];
        const std::int64_t vb = c.ints()[b];
        return va < vb ? -1 : (vb < va ? 1 : 0);
      }
      case DataType::kFloat64: {
        const double va = c.doubles()[a];
        const double vb = c.doubles()[b];
        return va < vb ? -1 : (vb < va ? 1 : 0);
      }
      case DataType::kString: {
        if (c.dictionary_encoded()) {
          // Sorted dictionary: comparing codes compares the strings.
          const std::int32_t va = c.codes()[a];
          const std::int32_t vb = c.codes()[b];
          return va < vb ? -1 : (vb < va ? 1 : 0);
        }
        const std::string& va = c.strings()[a];
        const std::string& vb = c.strings()[b];
        return va < vb ? -1 : (vb < va ? 1 : 0);
      }
    }
    return 0;
  };
  std::stable_sort(perm.begin(), perm.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     for (std::size_t k = 0; k < key_cols.size(); ++k) {
                       const int cmp = compare_key(*key_cols[k], a, b);
                       if (cmp != 0) {
                         const bool desc =
                             k < descending.size() && descending[k];
                         return desc ? cmp > 0 : cmp < 0;
                       }
                     }
                     return false;
                   });
  Table out = Table::Empty(input.schema());
  out.GatherRowsFrom(input, perm);
  return out;
}

Table LimitTable(const Table& input, std::int64_t limit) {
  if (limit < 0 ||
      static_cast<std::size_t>(limit) >= input.num_rows()) {
    return input;
  }
  Table out = Table::Empty(input.schema());
  out.AppendRangeFrom(input, 0, static_cast<std::size_t>(limit));
  return out;
}

Table UnionAllTables(const Table& left, const Table& right) {
  if (!(left.schema() == right.schema())) {
    throw std::invalid_argument("UnionAll: schema mismatch");
  }
  Table out = left;
  out.AppendRangeFrom(right, 0, right.num_rows());
  return out;
}

}  // namespace sc::engine
