#include "engine/executor.h"

#include <stdexcept>

namespace sc::engine {

TablePtr MapResolver::Resolve(const std::string& name) {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    throw std::out_of_range("MapResolver: unknown table '" + name + "'");
  }
  return it->second;
}

Table ExecutePlan(const PlanNode& plan, TableResolver& resolver) {
  switch (plan.kind) {
    case PlanNode::Kind::kScan: {
      TablePtr t = resolver.Resolve(plan.table_name);
      if (t == nullptr) {
        throw std::out_of_range("ExecutePlan: null table '" +
                                plan.table_name + "'");
      }
      return *t;
    }
    case PlanNode::Kind::kFilter:
      return FilterTable(ExecutePlan(*plan.child, resolver),
                         *plan.predicate);
    case PlanNode::Kind::kProject:
      return ProjectTable(ExecutePlan(*plan.child, resolver),
                          plan.projections);
    case PlanNode::Kind::kHashJoin:
      return HashJoinTables(ExecutePlan(*plan.child, resolver),
                            ExecutePlan(*plan.right, resolver),
                            plan.left_keys, plan.right_keys);
    case PlanNode::Kind::kAggregate:
      return AggregateTable(ExecutePlan(*plan.child, resolver),
                            plan.group_keys, plan.aggregates);
    case PlanNode::Kind::kSort:
      return SortTable(ExecutePlan(*plan.child, resolver), plan.sort_keys,
                       plan.sort_descending);
    case PlanNode::Kind::kLimit:
      return LimitTable(ExecutePlan(*plan.child, resolver), plan.limit);
    case PlanNode::Kind::kUnionAll:
      return UnionAllTables(ExecutePlan(*plan.child, resolver),
                            ExecutePlan(*plan.right, resolver));
  }
  throw std::logic_error("ExecutePlan: bad plan kind");
}

}  // namespace sc::engine
