#include "engine/morsel.h"

#include <algorithm>
#include <numeric>
#include <utility>

namespace sc::engine {

namespace {
thread_local MorselContext* current_context = nullptr;
}  // namespace

std::size_t MorselContext::PlanMorsels(std::size_t rows) const {
  if (runner_ == nullptr || max_morsels_ <= 1 || rows < 2) return 1;
  const std::size_t by_rows = rows / min_morsel_rows_;
  const std::size_t cap = static_cast<std::size_t>(max_morsels_);
  const std::size_t morsels = by_rows < cap ? by_rows : cap;
  return morsels < 1 ? 1 : morsels;
}

std::vector<std::uint64_t> MorselContext::BorrowHashBuffer(
    std::size_t size) {
  std::vector<std::uint64_t> buffer;
  if (!hash_scratch_.empty()) {
    buffer = std::move(hash_scratch_.back());
    hash_scratch_.pop_back();
  }
  buffer.resize(size);
  return buffer;
}

void MorselContext::ReturnHashBuffer(std::vector<std::uint64_t> buffer) {
  if (hash_scratch_.size() < 4) {
    hash_scratch_.push_back(std::move(buffer));
  }
}

MorselContext* CurrentMorselContext() { return current_context; }

MorselScope::MorselScope(MorselContext* context)
    : previous_(current_context) {
  current_context = context;
}

MorselScope::~MorselScope() { current_context = previous_; }

std::vector<std::size_t> MorselBounds(std::size_t rows,
                                      std::size_t morsels) {
  if (morsels < 1) morsels = 1;
  std::vector<std::size_t> bounds(morsels + 1, 0);
  const std::size_t base = rows / morsels;
  const std::size_t extra = rows % morsels;
  for (std::size_t m = 0; m < morsels; ++m) {
    bounds[m + 1] = bounds[m] + base + (m < extra ? 1 : 0);
  }
  return bounds;
}

std::vector<std::vector<std::uint32_t>> BalanceTaskBins(
    const std::vector<std::size_t>& masses, std::size_t bins) {
  if (bins < 1) bins = 1;
  if (bins > masses.size()) bins = masses.size();
  if (bins == 0) return {};

  // Deterministic LPT: heaviest item first into the lightest bin.
  // stable_sort on descending mass keeps equal-mass items in index
  // order, and the lightest-bin scan breaks ties toward the lowest bin
  // index — same inputs, same binning, every run.
  std::vector<std::uint32_t> order(masses.size());
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return masses[a] > masses[b];
                   });

  std::vector<std::vector<std::uint32_t>> out(bins);
  std::vector<std::size_t> load(bins, 0);
  for (const std::uint32_t item : order) {
    std::size_t lightest = 0;
    for (std::size_t b = 1; b < bins; ++b) {
      if (load[b] < load[lightest]) lightest = b;
    }
    out[lightest].push_back(item);
    load[lightest] += masses[item];
  }
  // Ascending item order within a bin (cache-friendly partition walks);
  // drop bins left empty by zero-mass inputs.
  for (auto& bin : out) std::sort(bin.begin(), bin.end());
  out.erase(std::remove_if(out.begin(), out.end(),
                           [](const std::vector<std::uint32_t>& b) {
                             return b.empty();
                           }),
            out.end());
  return out;
}

}  // namespace sc::engine
