#ifndef SC_ENGINE_TABLE_H_
#define SC_ENGINE_TABLE_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "engine/column.h"

namespace sc::engine {

/// A named, typed column slot in a schema.
struct Field {
  std::string name;
  DataType type;

  bool operator==(const Field&) const = default;
};

/// Ordered list of fields. Field names must be unique within a schema.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields);

  const std::vector<Field>& fields() const { return fields_; }
  std::size_t num_fields() const { return fields_.size(); }
  const Field& field(std::size_t i) const { return fields_[i]; }

  /// Index of the field named `name`, or -1.
  std::int32_t IndexOf(const std::string& name) const;
  bool Contains(const std::string& name) const { return IndexOf(name) >= 0; }

  bool operator==(const Schema& other) const {
    return fields_ == other.fields_;
  }

 private:
  std::vector<Field> fields_;
  std::unordered_map<std::string, std::int32_t> index_;
};

/// An immutable-by-convention columnar table: a schema plus one Column per
/// field, all of equal length.
class Table {
 public:
  Table() = default;
  Table(Schema schema, std::vector<Column> columns);

  /// Builds an empty table with the given schema.
  static Table Empty(Schema schema);

  const Schema& schema() const { return schema_; }
  std::size_t num_rows() const { return num_rows_; }
  std::size_t num_columns() const { return columns_.size(); }

  const Column& column(std::size_t i) const { return columns_[i]; }
  Column& mutable_column(std::size_t i) { return columns_[i]; }

  /// Column by name; throws std::out_of_range if absent.
  const Column& column(const std::string& name) const;

  /// Appends row `row` of `other` (same schema) to this table.
  void AppendRowFrom(const Table& other, std::size_t row);

  /// Bulk row gather: appends `other`'s rows listed in `rows` (in order),
  /// column-at-a-time. The vectorized materialization path for selection
  /// vectors (filter) and sort permutations.
  void GatherRowsFrom(const Table& other,
                      const std::vector<std::uint32_t>& rows);

  /// Bulk range append of `other`'s rows [begin, end), column-at-a-time.
  void AppendRangeFrom(const Table& other, std::size_t begin,
                       std::size_t end);

  /// Reserves capacity for `rows` rows in every column. Callers that
  /// append many chunks (morsel merges) reserve the final total once so
  /// the exact-capacity appends below never reallocate.
  void Reserve(std::size_t rows);

  /// Recomputes num_rows after direct column mutation; throws
  /// std::logic_error if columns disagree on length.
  void SyncRowCount();

  /// Approximate in-memory footprint: sum of column byte sizes.
  std::int64_t ByteSize() const;

  /// First `max_rows` rows as an aligned ASCII table (debugging).
  std::string ToString(std::size_t max_rows = 20) const;

  bool operator==(const Table& other) const;

 private:
  Schema schema_;
  std::vector<Column> columns_;
  std::size_t num_rows_ = 0;
};

using TablePtr = std::shared_ptr<const Table>;

}  // namespace sc::engine

#endif  // SC_ENGINE_TABLE_H_
