#ifndef SC_ENGINE_EXPR_H_
#define SC_ENGINE_EXPR_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "engine/table.h"

namespace sc::engine {

struct Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// Scalar expression tree evaluated column-at-a-time. Comparison and
/// logical operators produce int64 columns of 0/1.
struct Expr {
  enum class Kind { kColumn, kLiteral, kBinary, kUnary };
  enum class Op {
    // Binary arithmetic.
    kAdd, kSub, kMul, kDiv, kMod,
    // Binary comparison.
    kLt, kLe, kGt, kGe, kEq, kNe,
    // Binary logical.
    kAnd, kOr,
    // Unary.
    kNot, kNeg,
  };

  Kind kind;
  // kColumn:
  std::string column_name;
  // kLiteral:
  Value literal = std::int64_t{0};
  // kBinary / kUnary:
  Op op = Op::kAdd;
  ExprPtr left;
  ExprPtr right;

  /// Human-readable rendering for plan dumps.
  std::string ToString() const;
};

/// Builders (free functions keep call sites compact).
ExprPtr Col(std::string name);
ExprPtr Lit(std::int64_t v);
ExprPtr Lit(double v);
ExprPtr Lit(std::string v);
ExprPtr Binary(Expr::Op op, ExprPtr left, ExprPtr right);
ExprPtr Add(ExprPtr l, ExprPtr r);
ExprPtr Sub(ExprPtr l, ExprPtr r);
ExprPtr Mul(ExprPtr l, ExprPtr r);
ExprPtr Div(ExprPtr l, ExprPtr r);
ExprPtr Mod(ExprPtr l, ExprPtr r);
ExprPtr Lt(ExprPtr l, ExprPtr r);
ExprPtr Le(ExprPtr l, ExprPtr r);
ExprPtr Gt(ExprPtr l, ExprPtr r);
ExprPtr Ge(ExprPtr l, ExprPtr r);
ExprPtr Eq(ExprPtr l, ExprPtr r);
ExprPtr Ne(ExprPtr l, ExprPtr r);
ExprPtr And(ExprPtr l, ExprPtr r);
ExprPtr Or(ExprPtr l, ExprPtr r);
ExprPtr Not(ExprPtr e);
ExprPtr Neg(ExprPtr e);

/// Evaluates `expr` against every row of `input`; the result has
/// input.num_rows() entries. Throws std::invalid_argument on unknown
/// columns or type errors (e.g. arithmetic on strings).
///
/// Evaluation is vectorized: each operator node dispatches once on its
/// operand types and runs a tight typed loop, literal-only subtrees are
/// constant-folded, literals are never materialized as columns inside the
/// tree, and owned intermediate buffers are recycled across nodes.
Column EvalExpr(const Expr& expr, const Table& input);

/// Zero-copy variant of EvalExpr: when the expression is a bare column
/// reference, col() points straight into `input` and nothing is copied;
/// otherwise the result is materialized into owned storage. col() is
/// valid while both `input` and this object are alive (safe to move).
/// Operators use this for masks and aggregate arguments so a plain
/// Col(...) argument costs no column copy.
class EvalRef {
 public:
  EvalRef() = default;
  explicit EvalRef(const Column* external) : external_(external) {}
  explicit EvalRef(Column owned) : storage_(std::move(owned)) {}

  const Column& col() const {
    return external_ != nullptr ? *external_ : *storage_;
  }

 private:
  const Column* external_ = nullptr;
  std::optional<Column> storage_;
};
EvalRef EvalExprBorrow(const Expr& expr, const Table& input);

/// Result type of `expr` over `schema` (static type checking).
DataType ResultType(const Expr& expr, const Schema& schema);

}  // namespace sc::engine

#endif  // SC_ENGINE_EXPR_H_
