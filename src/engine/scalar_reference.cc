#include "engine/scalar_reference.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <numeric>
#include <stdexcept>
#include <unordered_map>

namespace sc::engine::scalar {

namespace {

/// Serializes the values of `columns` at `row` into a byte string usable
/// as a hash key (exact equality semantics; int64 values are encoded raw,
/// doubles via their bit pattern, strings length-prefixed). This per-row
/// allocation is exactly what the vectorized operators' typed FNV keys
/// eliminate.
std::string EncodeKey(const std::vector<const Column*>& columns,
                      std::size_t row) {
  std::string key;
  key.reserve(columns.size() * 9);
  for (const Column* c : columns) {
    switch (c->type()) {
      case DataType::kInt64: {
        const std::int64_t v = c->GetInt(row);
        key.push_back('i');
        key.append(reinterpret_cast<const char*>(&v), sizeof(v));
        break;
      }
      case DataType::kFloat64: {
        const double v = c->GetDouble(row);
        key.push_back('d');
        key.append(reinterpret_cast<const char*>(&v), sizeof(v));
        break;
      }
      case DataType::kString: {
        const std::string& v = c->GetString(row);
        const std::uint32_t len = static_cast<std::uint32_t>(v.size());
        key.push_back('s');
        key.append(reinterpret_cast<const char*>(&len), sizeof(len));
        key.append(v);
        break;
      }
    }
  }
  return key;
}

std::vector<const Column*> ResolveColumns(
    const Table& table, const std::vector<std::string>& names) {
  std::vector<const Column*> out;
  out.reserve(names.size());
  for (const std::string& name : names) {
    out.push_back(&table.column(name));
  }
  return out;
}

bool IsComparison(Expr::Op op) {
  switch (op) {
    case Expr::Op::kLt:
    case Expr::Op::kLe:
    case Expr::Op::kGt:
    case Expr::Op::kGe:
    case Expr::Op::kEq:
    case Expr::Op::kNe:
      return true;
    default:
      return false;
  }
}

bool IsLogical(Expr::Op op) {
  return op == Expr::Op::kAnd || op == Expr::Op::kOr || op == Expr::Op::kNot;
}

Column Eval(const Expr& expr, const Table& input);

Column EvalBinary(const Expr& expr, const Table& input) {
  const Column lhs = Eval(*expr.left, input);
  const Column rhs = Eval(*expr.right, input);
  const std::size_t n = input.num_rows();

  if (IsComparison(expr.op)) {
    std::vector<std::int64_t> out(n);
    const bool strings = lhs.type() == DataType::kString;
    if (strings != (rhs.type() == DataType::kString)) {
      throw std::invalid_argument("comparison of string vs numeric");
    }
    for (std::size_t r = 0; r < n; ++r) {
      int cmp;
      if (strings) {
        const auto& a = lhs.GetString(r);
        const auto& b = rhs.GetString(r);
        cmp = a < b ? -1 : (b < a ? 1 : 0);
      } else {
        const double a = lhs.NumericAt(r);
        const double b = rhs.NumericAt(r);
        cmp = a < b ? -1 : (b < a ? 1 : 0);
      }
      bool v = false;
      switch (expr.op) {
        case Expr::Op::kLt: v = cmp < 0; break;
        case Expr::Op::kLe: v = cmp <= 0; break;
        case Expr::Op::kGt: v = cmp > 0; break;
        case Expr::Op::kGe: v = cmp >= 0; break;
        case Expr::Op::kEq: v = cmp == 0; break;
        case Expr::Op::kNe: v = cmp != 0; break;
        default: break;
      }
      out[r] = v ? 1 : 0;
    }
    return Column::FromInts(std::move(out));
  }

  if (IsLogical(expr.op)) {
    std::vector<std::int64_t> out(n);
    for (std::size_t r = 0; r < n; ++r) {
      const bool a = lhs.NumericAt(r) != 0;
      const bool b = rhs.NumericAt(r) != 0;
      out[r] = (expr.op == Expr::Op::kAnd ? (a && b) : (a || b)) ? 1 : 0;
    }
    return Column::FromInts(std::move(out));
  }

  // Arithmetic.
  if (lhs.type() == DataType::kString || rhs.type() == DataType::kString) {
    throw std::invalid_argument("arithmetic on string column");
  }
  const bool as_double = expr.op == Expr::Op::kDiv ||
                         lhs.type() == DataType::kFloat64 ||
                         rhs.type() == DataType::kFloat64;
  if (as_double) {
    std::vector<double> out(n);
    for (std::size_t r = 0; r < n; ++r) {
      const double a = lhs.NumericAt(r);
      const double b = rhs.NumericAt(r);
      switch (expr.op) {
        case Expr::Op::kAdd: out[r] = a + b; break;
        case Expr::Op::kSub: out[r] = a - b; break;
        case Expr::Op::kMul: out[r] = a * b; break;
        case Expr::Op::kDiv: out[r] = b != 0 ? a / b : 0.0; break;
        case Expr::Op::kMod: out[r] = b != 0 ? std::fmod(a, b) : 0.0; break;
        default: throw std::logic_error("bad arithmetic op");
      }
    }
    return Column::FromDoubles(std::move(out));
  }
  std::vector<std::int64_t> out(n);
  for (std::size_t r = 0; r < n; ++r) {
    const std::int64_t a = lhs.GetInt(r);
    const std::int64_t b = rhs.GetInt(r);
    switch (expr.op) {
      case Expr::Op::kAdd: out[r] = a + b; break;
      case Expr::Op::kSub: out[r] = a - b; break;
      case Expr::Op::kMul: out[r] = a * b; break;
      case Expr::Op::kMod: out[r] = b != 0 ? a % b : 0; break;
      default: throw std::logic_error("bad arithmetic op");
    }
  }
  return Column::FromInts(std::move(out));
}

Column Eval(const Expr& expr, const Table& input) {
  const std::size_t n = input.num_rows();
  switch (expr.kind) {
    case Expr::Kind::kColumn:
      return input.column(expr.column_name);
    case Expr::Kind::kLiteral: {
      Column out(TypeOf(expr.literal));
      out.Reserve(n);
      for (std::size_t r = 0; r < n; ++r) out.AppendValue(expr.literal);
      return out;
    }
    case Expr::Kind::kUnary: {
      const Column child = Eval(*expr.left, input);
      if (expr.op == Expr::Op::kNot) {
        std::vector<std::int64_t> out(n);
        for (std::size_t r = 0; r < n; ++r) {
          out[r] = child.NumericAt(r) == 0 ? 1 : 0;
        }
        return Column::FromInts(std::move(out));
      }
      // kNeg
      if (child.type() == DataType::kInt64) {
        std::vector<std::int64_t> out(n);
        for (std::size_t r = 0; r < n; ++r) out[r] = -child.GetInt(r);
        return Column::FromInts(std::move(out));
      }
      std::vector<double> out(n);
      for (std::size_t r = 0; r < n; ++r) out[r] = -child.NumericAt(r);
      return Column::FromDoubles(std::move(out));
    }
    case Expr::Kind::kBinary:
      return EvalBinary(expr, input);
  }
  throw std::logic_error("Eval: bad expr kind");
}

/// Accumulator for one (group, aggregate) pair.
struct AggState {
  double sum = 0.0;
  std::int64_t isum = 0;
  std::int64_t count = 0;
  bool has_value = false;
  Value min_value;
  Value max_value;
};

DataType AggOutputType(const AggSpec& spec, const Schema& schema) {
  switch (spec.func) {
    case AggSpec::Func::kCount:
      return DataType::kInt64;
    case AggSpec::Func::kAvg:
      return DataType::kFloat64;
    case AggSpec::Func::kSum: {
      return ResultType(*spec.arg, schema) == DataType::kInt64
                 ? DataType::kInt64
                 : DataType::kFloat64;
    }
    case AggSpec::Func::kMin:
    case AggSpec::Func::kMax:
      return ResultType(*spec.arg, schema);
  }
  return DataType::kFloat64;
}

}  // namespace

Column EvalExprScalar(const Expr& expr, const Table& input) {
  return Eval(expr, input);
}

Table FilterTableScalar(const Table& input, const Expr& predicate) {
  const Column mask = EvalExprScalar(predicate, input);
  Table out = Table::Empty(input.schema());
  for (std::size_t r = 0; r < input.num_rows(); ++r) {
    if (mask.NumericAt(r) != 0) out.AppendRowFrom(input, r);
  }
  return out;
}

Table ProjectTableScalar(const Table& input,
                         const std::vector<NamedExpr>& exprs) {
  std::vector<Field> fields;
  std::vector<Column> columns;
  fields.reserve(exprs.size());
  columns.reserve(exprs.size());
  for (const NamedExpr& ne : exprs) {
    Column col = EvalExprScalar(*ne.expr, input);
    fields.push_back(Field{ne.name, col.type()});
    columns.push_back(std::move(col));
  }
  return Table(Schema(std::move(fields)), std::move(columns));
}

Table HashJoinTablesScalar(const Table& left, const Table& right,
                           const std::vector<std::string>& left_keys,
                           const std::vector<std::string>& right_keys) {
  if (left_keys.size() != right_keys.size() || left_keys.empty()) {
    throw std::invalid_argument("HashJoin: bad key lists");
  }
  const auto lcols = ResolveColumns(left, left_keys);
  const auto rcols = ResolveColumns(right, right_keys);
  for (std::size_t k = 0; k < lcols.size(); ++k) {
    if (lcols[k]->type() != rcols[k]->type()) {
      throw std::invalid_argument("HashJoin: key type mismatch on '" +
                                  left_keys[k] + "'");
    }
  }

  // Output schema: all left fields, plus right fields with fresh names.
  std::vector<Field> fields = left.schema().fields();
  std::vector<std::size_t> right_cols_kept;
  for (std::size_t c = 0; c < right.schema().num_fields(); ++c) {
    const Field& f = right.schema().field(c);
    if (left.schema().Contains(f.name)) continue;  // de-duplicate keys
    fields.push_back(f);
    right_cols_kept.push_back(c);
  }
  Table out = Table::Empty(Schema(std::move(fields)));

  // Build side: right table.
  std::unordered_map<std::string, std::vector<std::size_t>> build;
  build.reserve(right.num_rows() * 2);
  for (std::size_t r = 0; r < right.num_rows(); ++r) {
    build[EncodeKey(rcols, r)].push_back(r);
  }

  // Probe side: left table.
  const std::size_t left_width = left.num_columns();
  for (std::size_t l = 0; l < left.num_rows(); ++l) {
    auto it = build.find(EncodeKey(lcols, l));
    if (it == build.end()) continue;
    for (std::size_t r : it->second) {
      for (std::size_t c = 0; c < left_width; ++c) {
        out.mutable_column(c).AppendFrom(left.column(c), l);
      }
      for (std::size_t k = 0; k < right_cols_kept.size(); ++k) {
        out.mutable_column(left_width + k)
            .AppendFrom(right.column(right_cols_kept[k]), r);
      }
    }
  }
  out.SyncRowCount();
  return out;
}

Table AggregateTableScalar(const Table& input,
                           const std::vector<std::string>& group_keys,
                           const std::vector<AggSpec>& aggregates) {
  const auto key_cols = ResolveColumns(input, group_keys);

  // Pre-evaluate aggregate arguments column-at-a-time.
  std::vector<Column> args;
  args.reserve(aggregates.size());
  for (const AggSpec& spec : aggregates) {
    if (spec.func == AggSpec::Func::kCount) {
      args.emplace_back(DataType::kInt64);  // unused placeholder
    } else {
      args.push_back(EvalExprScalar(*spec.arg, input));
    }
  }

  // Group rows.
  std::unordered_map<std::string, std::size_t> group_of;
  std::vector<std::size_t> representative_row;
  std::vector<std::vector<AggState>> states;
  const bool global = group_keys.empty();
  if (global) {
    group_of.emplace("", 0);
    representative_row.push_back(0);
    states.emplace_back(aggregates.size());
  }
  for (std::size_t r = 0; r < input.num_rows(); ++r) {
    std::size_t g;
    if (global) {
      g = 0;
    } else {
      const std::string key = EncodeKey(key_cols, r);
      auto [it, inserted] = group_of.emplace(key, states.size());
      if (inserted) {
        representative_row.push_back(r);
        states.emplace_back(aggregates.size());
      }
      g = it->second;
    }
    for (std::size_t a = 0; a < aggregates.size(); ++a) {
      AggState& st = states[g][a];
      st.count++;
      if (aggregates[a].func == AggSpec::Func::kCount) continue;
      const Column& arg = args[a];
      switch (aggregates[a].func) {
        case AggSpec::Func::kSum:
        case AggSpec::Func::kAvg:
          if (arg.type() == DataType::kInt64) {
            st.isum += arg.GetInt(r);
            st.sum += static_cast<double>(arg.GetInt(r));
          } else {
            st.sum += arg.NumericAt(r);
          }
          break;
        case AggSpec::Func::kMin:
        case AggSpec::Func::kMax: {
          const Value v = arg.GetValue(r);
          if (!st.has_value) {
            st.min_value = v;
            st.max_value = v;
            st.has_value = true;
          } else {
            if (CompareValues(v, st.min_value) < 0) st.min_value = v;
            if (CompareValues(v, st.max_value) > 0) st.max_value = v;
          }
          break;
        }
        case AggSpec::Func::kCount:
          break;
      }
    }
  }

  // Assemble output.
  std::vector<Field> fields;
  for (const std::string& k : group_keys) {
    const std::int32_t i = input.schema().IndexOf(k);
    if (i < 0) throw std::invalid_argument("Aggregate: unknown key " + k);
    fields.push_back(input.schema().field(static_cast<std::size_t>(i)));
  }
  for (const AggSpec& spec : aggregates) {
    fields.push_back(
        Field{spec.output_name, AggOutputType(spec, input.schema())});
  }
  Table out = Table::Empty(Schema(std::move(fields)));
  const std::size_t num_groups =
      global && input.num_rows() == 0 ? 1 : states.size();
  for (std::size_t g = 0; g < num_groups; ++g) {
    for (std::size_t k = 0; k < group_keys.size(); ++k) {
      out.mutable_column(k).AppendFrom(*key_cols[k], representative_row[g]);
    }
    for (std::size_t a = 0; a < aggregates.size(); ++a) {
      const AggState& st = states[g][a];
      Column& col = out.mutable_column(group_keys.size() + a);
      switch (aggregates[a].func) {
        case AggSpec::Func::kCount:
          col.AppendInt(st.count);
          break;
        case AggSpec::Func::kSum:
          if (col.type() == DataType::kInt64) {
            col.AppendInt(st.isum);
          } else {
            col.AppendDouble(st.sum);
          }
          break;
        case AggSpec::Func::kAvg:
          col.AppendDouble(st.count > 0
                               ? st.sum / static_cast<double>(st.count)
                               : 0.0);
          break;
        case AggSpec::Func::kMin:
          col.AppendValue(st.has_value ? st.min_value
                                       : Value{std::int64_t{0}});
          break;
        case AggSpec::Func::kMax:
          col.AppendValue(st.has_value ? st.max_value
                                       : Value{std::int64_t{0}});
          break;
      }
    }
  }
  out.SyncRowCount();
  return out;
}

Table SortTableScalar(const Table& input,
                      const std::vector<std::string>& keys,
                      const std::vector<bool>& descending) {
  const auto key_cols = ResolveColumns(input, keys);
  std::vector<std::size_t> perm(input.num_rows());
  std::iota(perm.begin(), perm.end(), 0);
  std::stable_sort(perm.begin(), perm.end(),
                   [&](std::size_t a, std::size_t b) {
                     for (std::size_t k = 0; k < key_cols.size(); ++k) {
                       const int cmp = CompareValues(
                           key_cols[k]->GetValue(a),
                           key_cols[k]->GetValue(b));
                       if (cmp != 0) {
                         const bool desc =
                             k < descending.size() && descending[k];
                         return desc ? cmp > 0 : cmp < 0;
                       }
                     }
                     return false;
                   });
  Table out = Table::Empty(input.schema());
  for (std::size_t r : perm) out.AppendRowFrom(input, r);
  return out;
}

Table LimitTableScalar(const Table& input, std::int64_t limit) {
  if (limit < 0 ||
      static_cast<std::size_t>(limit) >= input.num_rows()) {
    return input;
  }
  Table out = Table::Empty(input.schema());
  for (std::size_t r = 0; r < static_cast<std::size_t>(limit); ++r) {
    out.AppendRowFrom(input, r);
  }
  return out;
}

Table UnionAllTablesScalar(const Table& left, const Table& right) {
  if (!(left.schema() == right.schema())) {
    throw std::invalid_argument("UnionAll: schema mismatch");
  }
  Table out = left;
  for (std::size_t r = 0; r < right.num_rows(); ++r) {
    out.AppendRowFrom(right, r);
  }
  return out;
}

}  // namespace sc::engine::scalar
