#ifndef SC_ENGINE_EXECUTOR_H_
#define SC_ENGINE_EXECUTOR_H_

#include <functional>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>

#include "engine/operators.h"
#include "engine/plan.h"
#include "engine/table.h"

namespace sc::engine {

/// Resolves scan leaves to tables. The Controller supplies a resolver that
/// serves parent MVs from the Memory Catalog when resident and from
/// external storage otherwise — which is exactly how S/C short-circuits
/// reads without changing plans.
///
/// Thread-safety contract: the parallel runtime executes independent DAG
/// nodes concurrently, so a resolver shared across node executions must
/// tolerate concurrent Resolve calls. (The Controller's per-node
/// FnResolver closes over thread-safe stores — MemoryCatalog and
/// ThrottledDisk — plus lane-local timing state, so each lane resolves
/// independently.)
class TableResolver {
 public:
  virtual ~TableResolver() = default;
  /// Returns the table for `name`; throws std::out_of_range if unknown.
  virtual TablePtr Resolve(const std::string& name) = 0;
};

/// Simple in-memory resolver backed by a name -> table hash map (it sits
/// on every scan resolve, so lookups are O(1) rather than a red-black
/// tree walk). Thread-safe: concurrent Resolve calls (executor lanes)
/// may overlap each other and a Put (reader-writer lock); the returned
/// TablePtr stays valid across a concurrent Put of the same name.
class MapResolver : public TableResolver {
 public:
  MapResolver() = default;
  explicit MapResolver(std::unordered_map<std::string, TablePtr> tables)
      : tables_(std::move(tables)) {}

  /// Pre-sizes the hash map for `tables` entries (callers pass the
  /// workload's node + base-table count) so Put never rehashes while
  /// lanes hold Resolve results.
  void Reserve(std::size_t tables) {
    std::unique_lock<std::shared_mutex> lock(mutex_);
    tables_.reserve(tables);
  }
  void Put(const std::string& name, TablePtr table) {
    std::unique_lock<std::shared_mutex> lock(mutex_);
    tables_[name] = std::move(table);
  }
  bool Contains(const std::string& name) const {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    return tables_.count(name) > 0;
  }
  TablePtr Resolve(const std::string& name) override;

 private:
  mutable std::shared_mutex mutex_;
  std::unordered_map<std::string, TablePtr> tables_;
};

/// Resolver that delegates to a callback (used by the Controller).
class FnResolver : public TableResolver {
 public:
  using Fn = std::function<TablePtr(const std::string&)>;
  explicit FnResolver(Fn fn) : fn_(std::move(fn)) {}
  TablePtr Resolve(const std::string& name) override { return fn_(name); }

 private:
  Fn fn_;
};

/// Recursively evaluates `plan`, resolving scans through `resolver`.
Table ExecutePlan(const PlanNode& plan, TableResolver& resolver);

}  // namespace sc::engine

#endif  // SC_ENGINE_EXECUTOR_H_
