#ifndef SC_ENGINE_EXECUTOR_H_
#define SC_ENGINE_EXECUTOR_H_

#include <functional>
#include <map>
#include <string>

#include "engine/operators.h"
#include "engine/plan.h"
#include "engine/table.h"

namespace sc::engine {

/// Resolves scan leaves to tables. The Controller supplies a resolver that
/// serves parent MVs from the Memory Catalog when resident and from
/// external storage otherwise — which is exactly how S/C short-circuits
/// reads without changing plans.
class TableResolver {
 public:
  virtual ~TableResolver() = default;
  /// Returns the table for `name`; throws std::out_of_range if unknown.
  virtual TablePtr Resolve(const std::string& name) = 0;
};

/// Simple in-memory resolver backed by a name -> table map.
class MapResolver : public TableResolver {
 public:
  MapResolver() = default;
  explicit MapResolver(std::map<std::string, TablePtr> tables)
      : tables_(std::move(tables)) {}

  void Put(const std::string& name, TablePtr table) {
    tables_[name] = std::move(table);
  }
  bool Contains(const std::string& name) const {
    return tables_.count(name) > 0;
  }
  TablePtr Resolve(const std::string& name) override;

 private:
  std::map<std::string, TablePtr> tables_;
};

/// Resolver that delegates to a callback (used by the Controller).
class FnResolver : public TableResolver {
 public:
  using Fn = std::function<TablePtr(const std::string&)>;
  explicit FnResolver(Fn fn) : fn_(std::move(fn)) {}
  TablePtr Resolve(const std::string& name) override { return fn_(name); }

 private:
  Fn fn_;
};

/// Recursively evaluates `plan`, resolving scans through `resolver`.
Table ExecutePlan(const PlanNode& plan, TableResolver& resolver);

}  // namespace sc::engine

#endif  // SC_ENGINE_EXECUTOR_H_
