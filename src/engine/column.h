#ifndef SC_ENGINE_COLUMN_H_
#define SC_ENGINE_COLUMN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "engine/types.h"

namespace sc::engine {

/// A typed columnar vector. Storage is one contiguous std::vector of the
/// native type; only the vector matching `type()` is populated.
///
/// String columns have two representations:
///  - *plain*: one std::string per row (`strings()`), and
///  - *dictionary-encoded*: a shared sorted-unique dictionary plus one
///    int32 code per row (`dictionary()` / `codes()`). Because the
///    dictionary is sorted, codes compare exactly like the strings they
///    stand for, so hash/compare/sort/gather hot paths can run on the
///    codes. The dictionary is shared by shared_ptr: columns produced
///    from the same source carry the *same* dictionary object, which is
///    what join/aggregate fast paths test for.
/// Both representations are logically interchangeable: accessors decode
/// on the fly and operator== compares logical content.
class Column {
 public:
  using Dictionary = std::vector<std::string>;
  using DictionaryPtr = std::shared_ptr<const Dictionary>;

  explicit Column(DataType type) : type_(type) {}

  static Column FromInts(std::vector<std::int64_t> values);
  static Column FromDoubles(std::vector<double> values);
  static Column FromStrings(std::vector<std::string> values);
  /// Dictionary-encoded string column: `dictionary` must be sorted and
  /// unique, every code in [0, dictionary->size()).
  static Column FromDictionary(DictionaryPtr dictionary,
                               std::vector<std::int32_t> codes);
  /// Sorts + uniques `values` into a Dictionary (the canonical form
  /// FromDictionary expects). Workload generators build one dictionary
  /// per logical string domain and share it across tables so joins take
  /// the code path.
  static DictionaryPtr MakeDictionary(std::vector<std::string> values);

  DataType type() const { return type_; }
  std::size_t size() const;
  bool empty() const { return size() == 0; }

  /// Typed accessors; the caller must respect type(). Bounds-checked in
  /// debug builds only (hot path).
  std::int64_t GetInt(std::size_t row) const { return ints_[row]; }
  double GetDouble(std::size_t row) const { return doubles_[row]; }
  const std::string& GetString(std::size_t row) const {
    return dict_ != nullptr
               ? (*dict_)[static_cast<std::size_t>(codes_[row])]
               : strings_[row];
  }

  /// Generic accessors (allocate for strings; use typed paths in loops).
  Value GetValue(std::size_t row) const;
  void AppendValue(const Value& value);

  void AppendInt(std::int64_t v) { ints_.push_back(v); }
  void AppendDouble(double v) { doubles_.push_back(v); }
  void AppendString(std::string v);

  /// Appends row `row` of `other` (same type) to this column.
  void AppendFrom(const Column& other, std::size_t row);

  /// Bulk row gather: appends `other`'s rows listed in `rows` (in order)
  /// to this column. One type check + one reserve for the whole batch —
  /// this is the vectorized replacement for per-cell AppendFrom loops in
  /// filter/join/sort materialization. A dictionary-encoded source
  /// gathers int32 codes (and an empty plain destination adopts the
  /// dictionary), so selection/join materialization of encoded columns
  /// never touches the strings.
  void GatherFrom(const Column& other,
                  const std::vector<std::uint32_t>& rows);

  /// Bulk range append: appends `other`'s rows [begin, end) to this
  /// column (memcpy-speed for numeric columns and shared-dictionary
  /// codes).
  void AppendRangeFrom(const Column& other, std::size_t begin,
                       std::size_t end);

  void Reserve(std::size_t n);

  /// Approximate in-memory footprint in bytes (used for Memory Catalog
  /// accounting and node sizes). Plain string columns count the
  /// std::string object array plus each string's heap block (capacity,
  /// not size) — SSO-resident strings contribute no heap block.
  /// Dictionary-encoded columns count 4 bytes per row plus the
  /// dictionary's own footprint: the encoded size is what the knapsack,
  /// grant accounting, and the shared catalog see, so compression
  /// directly buys residency.
  std::int64_t ByteSize() const;

  /// Numeric value of a row as double (throws for string columns).
  double NumericAt(std::size_t row) const;

  /// Logical content equality, representation-agnostic for strings (a
  /// dictionary-encoded column equals its plain decoding). Float64
  /// values compare by bit pattern (NaN == NaN, 0.0 != -0.0), so equal
  /// numeric columns are byte-identical.
  bool operator==(const Column& other) const;

  const std::vector<std::int64_t>& ints() const { return ints_; }
  const std::vector<double>& doubles() const { return doubles_; }
  /// Plain-representation rows; empty for dictionary-encoded columns —
  /// callers on string hot paths must check dictionary_encoded() (or go
  /// through GetString, which handles both).
  const std::vector<std::string>& strings() const { return strings_; }

  /// Dictionary representation. `dictionary()` is null for plain
  /// columns; `codes()` is valid iff dictionary_encoded().
  bool dictionary_encoded() const { return dict_ != nullptr; }
  const DictionaryPtr& dictionary() const { return dict_; }
  const std::vector<std::int32_t>& codes() const { return codes_; }

  /// Returns a dictionary-encoded copy of this string column (builds a
  /// sorted-unique dictionary from its values). Already-encoded columns
  /// copy as-is. Throws std::invalid_argument for non-string columns.
  Column DictionaryEncode() const;
  /// Returns a plain copy (decodes if dictionary-encoded).
  Column DecodeDictionary() const;

  /// Process-wide count of dictionary-encoded string columns ever
  /// materialized (explicit encodes, compressed-format reads, and
  /// operator outputs that kept their input's dictionary). Exported as
  /// the sc_dict_columns_total gauge.
  static std::int64_t dict_columns_created();

  /// Move out the underlying typed storage, leaving the column empty.
  /// The expression evaluator recycles intermediate buffers this way
  /// (scratch reuse) instead of allocating per tree node.
  std::vector<std::int64_t> TakeInts() && { return std::move(ints_); }
  std::vector<double> TakeDoubles() && { return std::move(doubles_); }

 private:
  /// Attaches `dict` (bumps the process-wide dict-column counter).
  void AdoptDictionary(const DictionaryPtr& dict);
  /// Decodes in place to the plain representation (no-op when plain).
  /// The escape hatch for appends that cannot stay on one dictionary.
  void EnsurePlainStrings();

  DataType type_;
  std::vector<std::int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<std::string> strings_;
  DictionaryPtr dict_;                // non-null iff dictionary-encoded
  std::vector<std::int32_t> codes_;   // valid iff dict_ != nullptr
};

}  // namespace sc::engine

#endif  // SC_ENGINE_COLUMN_H_
