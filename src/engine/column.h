#ifndef SC_ENGINE_COLUMN_H_
#define SC_ENGINE_COLUMN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "engine/types.h"

namespace sc::engine {

/// A typed columnar vector. Storage is one contiguous std::vector of the
/// native type; only the vector matching `type()` is populated.
class Column {
 public:
  explicit Column(DataType type) : type_(type) {}

  static Column FromInts(std::vector<std::int64_t> values);
  static Column FromDoubles(std::vector<double> values);
  static Column FromStrings(std::vector<std::string> values);

  DataType type() const { return type_; }
  std::size_t size() const;
  bool empty() const { return size() == 0; }

  /// Typed accessors; the caller must respect type(). Bounds-checked in
  /// debug builds only (hot path).
  std::int64_t GetInt(std::size_t row) const { return ints_[row]; }
  double GetDouble(std::size_t row) const { return doubles_[row]; }
  const std::string& GetString(std::size_t row) const {
    return strings_[row];
  }

  /// Generic accessors (allocate for strings; use typed paths in loops).
  Value GetValue(std::size_t row) const;
  void AppendValue(const Value& value);

  void AppendInt(std::int64_t v) { ints_.push_back(v); }
  void AppendDouble(double v) { doubles_.push_back(v); }
  void AppendString(std::string v) { strings_.push_back(std::move(v)); }

  /// Appends row `row` of `other` (same type) to this column.
  void AppendFrom(const Column& other, std::size_t row);

  /// Bulk row gather: appends `other`'s rows listed in `rows` (in order)
  /// to this column. One type check + one reserve for the whole batch —
  /// this is the vectorized replacement for per-cell AppendFrom loops in
  /// filter/join/sort materialization.
  void GatherFrom(const Column& other,
                  const std::vector<std::uint32_t>& rows);

  /// Bulk range append: appends `other`'s rows [begin, end) to this
  /// column (memcpy-speed for numeric columns).
  void AppendRangeFrom(const Column& other, std::size_t begin,
                       std::size_t end);

  void Reserve(std::size_t n);

  /// Approximate in-memory footprint in bytes (used for Memory Catalog
  /// accounting and node sizes). String columns count the std::string
  /// object array plus each string's heap block (capacity, not size) —
  /// SSO-resident strings contribute no heap block.
  std::int64_t ByteSize() const;

  /// Numeric value of a row as double (throws for string columns).
  double NumericAt(std::size_t row) const;

  /// Bit-exact content equality: float64 values compare by bit pattern
  /// (NaN == NaN, 0.0 != -0.0), so equal columns are byte-identical.
  bool operator==(const Column& other) const;

  const std::vector<std::int64_t>& ints() const { return ints_; }
  const std::vector<double>& doubles() const { return doubles_; }
  const std::vector<std::string>& strings() const { return strings_; }

  /// Move out the underlying typed storage, leaving the column empty.
  /// The expression evaluator recycles intermediate buffers this way
  /// (scratch reuse) instead of allocating per tree node.
  std::vector<std::int64_t> TakeInts() && { return std::move(ints_); }
  std::vector<double> TakeDoubles() && { return std::move(doubles_); }

 private:
  DataType type_;
  std::vector<std::int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<std::string> strings_;
};

}  // namespace sc::engine

#endif  // SC_ENGINE_COLUMN_H_
