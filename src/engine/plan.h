#ifndef SC_ENGINE_PLAN_H_
#define SC_ENGINE_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "engine/expr.h"

namespace sc::engine {

struct PlanNode;
using PlanPtr = std::shared_ptr<const PlanNode>;

/// One aggregate in an Aggregate node. kCount ignores `arg` (may be null).
struct AggSpec {
  enum class Func { kSum, kCount, kMin, kMax, kAvg };
  Func func = Func::kSum;
  ExprPtr arg;
  std::string output_name;
};

/// A named projection expression.
struct NamedExpr {
  std::string name;
  ExprPtr expr;
};

/// Logical plan tree for one MV definition (one SPJ/aggregation unit).
/// Scan leaves reference base tables or upstream MVs by name; the executor
/// resolves them through a TableResolver, which is how the Controller
/// redirects reads to the Memory Catalog versus external storage.
struct PlanNode {
  enum class Kind {
    kScan,
    kFilter,
    kProject,
    kHashJoin,
    kAggregate,
    kSort,
    kLimit,
    kUnionAll,
  };

  Kind kind;
  // kScan:
  std::string table_name;
  // Unary inputs use `child`; kHashJoin/kUnionAll also use `right`.
  PlanPtr child;
  PlanPtr right;
  // kFilter:
  ExprPtr predicate;
  // kProject:
  std::vector<NamedExpr> projections;
  // kHashJoin (inner, equi-join): pairwise key columns.
  std::vector<std::string> left_keys;
  std::vector<std::string> right_keys;
  // kAggregate:
  std::vector<std::string> group_keys;
  std::vector<AggSpec> aggregates;
  // kSort:
  std::vector<std::string> sort_keys;
  std::vector<bool> sort_descending;
  // kLimit:
  std::int64_t limit = -1;

  /// Indented plan dump for debugging.
  std::string ToString(int indent = 0) const;

  /// Names of all tables scanned anywhere in this plan tree.
  std::vector<std::string> ReferencedTables() const;
};

/// Builders.
PlanPtr Scan(std::string table_name);
PlanPtr Filter(PlanPtr child, ExprPtr predicate);
PlanPtr Project(PlanPtr child, std::vector<NamedExpr> projections);
PlanPtr HashJoin(PlanPtr left, PlanPtr right,
                 std::vector<std::string> left_keys,
                 std::vector<std::string> right_keys);
PlanPtr Aggregate(PlanPtr child, std::vector<std::string> group_keys,
                  std::vector<AggSpec> aggregates);
PlanPtr Sort(PlanPtr child, std::vector<std::string> keys,
             std::vector<bool> descending = {});
PlanPtr Limit(PlanPtr child, std::int64_t limit);
PlanPtr UnionAll(PlanPtr left, PlanPtr right);

/// Aggregate spec helpers.
AggSpec SumOf(ExprPtr arg, std::string output_name);
AggSpec CountAll(std::string output_name);
AggSpec MinOf(ExprPtr arg, std::string output_name);
AggSpec MaxOf(ExprPtr arg, std::string output_name);
AggSpec AvgOf(ExprPtr arg, std::string output_name);

}  // namespace sc::engine

#endif  // SC_ENGINE_PLAN_H_
