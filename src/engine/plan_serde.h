#ifndef SC_ENGINE_PLAN_SERDE_H_
#define SC_ENGINE_PLAN_SERDE_H_

#include <string>

#include "engine/plan.h"

namespace sc::engine {

/// Text serialization for logical plans and expressions, so that MV
/// definitions can be stored alongside the dependency graph (dbt-style
/// model files). S-expression syntax:
///
///   plans:
///     (scan "table")
///     (filter <plan> <expr>)
///     (project <plan> (field "name" <expr>) ...)
///     (join <plan> <plan> (keys "lkey" "rkey" ...))      ; pairwise
///     (agg <plan> (keys "k" ...) (sum "out" <expr>) (count "out")
///          (min "out" <expr>) (max "out" <expr>) (avg "out" <expr>))
///     (sort <plan> (key "name" asc|desc) ...)
///     (limit <plan> <integer>)
///     (union <plan> <plan>)
///   expressions:
///     (col "name") | (i 42) | (f 2.5) | (s "text")
///     (+ a b) (- a b) (* a b) (/ a b) (% a b)
///     (< a b) (<= a b) (> a b) (>= a b) (= a b) (!= a b)
///     (and a b) (or a b) (not a) (neg a)
///
/// Whitespace (including newlines) separates tokens; strings are
/// double-quoted with backslash escapes for `"` and `\`.

/// Serializes a plan (single line).
std::string SerializePlan(const PlanNode& plan);

/// Serializes an expression (single line).
std::string SerializeExpr(const Expr& expr);

/// Parses a plan; returns nullptr and fills `error` on failure.
PlanPtr ParsePlan(const std::string& text, std::string* error);

/// Parses an expression; returns nullptr and fills `error` on failure.
ExprPtr ParseExpr(const std::string& text, std::string* error);

}  // namespace sc::engine

#endif  // SC_ENGINE_PLAN_SERDE_H_
