#ifndef SC_ENGINE_SCALAR_REFERENCE_H_
#define SC_ENGINE_SCALAR_REFERENCE_H_

#include "engine/plan.h"
#include "engine/table.h"

namespace sc::engine::scalar {

/// The pre-vectorization row-at-a-time operator implementations, retained
/// verbatim as the golden reference: string-encoded hash keys
/// (one std::string allocation per input row), cell-by-cell
/// Column::AppendFrom output materialization, and per-row Value-based
/// expression evaluation. The vectorized operators in operators.cc are
/// asserted bit-identical to these (tests/engine_vectorized_test.cc), and
/// bench_engine_operators measures old-vs-new throughput against them.
/// Never call these from production code paths.
///
/// Two deliberate divergences where the scalar path's behaviour was a
/// latent bug (both pinned in engine_vectorized_test):
///  - int64 comparisons/min/max/sort here route through double
///    (NumericAt / CompareValues), silently rounding |v| >= 2^53; the
///    vectorized engine compares int64 exactly. Identical results for
///    every exactly-representable value.
///  - global (no group keys) MIN/MAX over a string column of an empty
///    table throws bad_variant_access here (AppendValue of the int64
///    placeholder into a string column); the vectorized engine returns
///    one row with an empty string.

Column EvalExprScalar(const Expr& expr, const Table& input);

Table FilterTableScalar(const Table& input, const Expr& predicate);

Table ProjectTableScalar(const Table& input,
                         const std::vector<NamedExpr>& exprs);

Table HashJoinTablesScalar(const Table& left, const Table& right,
                           const std::vector<std::string>& left_keys,
                           const std::vector<std::string>& right_keys);

Table AggregateTableScalar(const Table& input,
                           const std::vector<std::string>& group_keys,
                           const std::vector<AggSpec>& aggregates);

Table SortTableScalar(const Table& input,
                      const std::vector<std::string>& keys,
                      const std::vector<bool>& descending);

Table LimitTableScalar(const Table& input, std::int64_t limit);

Table UnionAllTablesScalar(const Table& left, const Table& right);

}  // namespace sc::engine::scalar

#endif  // SC_ENGINE_SCALAR_REFERENCE_H_
