#include "engine/plan_serde.h"

#include <cctype>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "common/str_util.h"

namespace sc::engine {

namespace {

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

std::string Quote(const std::string& text) {
  std::string out = "\"";
  for (char c : text) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

const char* OpAtom(Expr::Op op) {
  switch (op) {
    case Expr::Op::kAdd: return "+";
    case Expr::Op::kSub: return "-";
    case Expr::Op::kMul: return "*";
    case Expr::Op::kDiv: return "/";
    case Expr::Op::kMod: return "%";
    case Expr::Op::kLt: return "<";
    case Expr::Op::kLe: return "<=";
    case Expr::Op::kGt: return ">";
    case Expr::Op::kGe: return ">=";
    case Expr::Op::kEq: return "=";
    case Expr::Op::kNe: return "!=";
    case Expr::Op::kAnd: return "and";
    case Expr::Op::kOr: return "or";
    case Expr::Op::kNot: return "not";
    case Expr::Op::kNeg: return "neg";
  }
  return "?";
}

void WriteExpr(const Expr& expr, std::ostream& out) {
  switch (expr.kind) {
    case Expr::Kind::kColumn:
      out << "(col " << Quote(expr.column_name) << ")";
      return;
    case Expr::Kind::kLiteral:
      if (const auto* i = std::get_if<std::int64_t>(&expr.literal)) {
        out << "(i " << *i << ")";
      } else if (const auto* d = std::get_if<double>(&expr.literal)) {
        out << "(f " << StrFormat("%.17g", *d) << ")";
      } else {
        out << "(s " << Quote(std::get<std::string>(expr.literal)) << ")";
      }
      return;
    case Expr::Kind::kUnary:
      out << "(" << OpAtom(expr.op) << " ";
      WriteExpr(*expr.left, out);
      out << ")";
      return;
    case Expr::Kind::kBinary:
      out << "(" << OpAtom(expr.op) << " ";
      WriteExpr(*expr.left, out);
      out << " ";
      WriteExpr(*expr.right, out);
      out << ")";
      return;
  }
}

const char* AggAtom(AggSpec::Func func) {
  switch (func) {
    case AggSpec::Func::kSum: return "sum";
    case AggSpec::Func::kCount: return "count";
    case AggSpec::Func::kMin: return "min";
    case AggSpec::Func::kMax: return "max";
    case AggSpec::Func::kAvg: return "avg";
  }
  return "?";
}

void WritePlan(const PlanNode& plan, std::ostream& out) {
  switch (plan.kind) {
    case PlanNode::Kind::kScan:
      out << "(scan " << Quote(plan.table_name) << ")";
      return;
    case PlanNode::Kind::kFilter:
      out << "(filter ";
      WritePlan(*plan.child, out);
      out << " ";
      WriteExpr(*plan.predicate, out);
      out << ")";
      return;
    case PlanNode::Kind::kProject: {
      out << "(project ";
      WritePlan(*plan.child, out);
      for (const NamedExpr& p : plan.projections) {
        out << " (field " << Quote(p.name) << " ";
        WriteExpr(*p.expr, out);
        out << ")";
      }
      out << ")";
      return;
    }
    case PlanNode::Kind::kHashJoin: {
      out << "(join ";
      WritePlan(*plan.child, out);
      out << " ";
      WritePlan(*plan.right, out);
      out << " (keys";
      for (std::size_t k = 0; k < plan.left_keys.size(); ++k) {
        out << " " << Quote(plan.left_keys[k]) << " "
            << Quote(plan.right_keys[k]);
      }
      out << "))";
      return;
    }
    case PlanNode::Kind::kAggregate: {
      out << "(agg ";
      WritePlan(*plan.child, out);
      out << " (keys";
      for (const std::string& k : plan.group_keys) out << " " << Quote(k);
      out << ")";
      for (const AggSpec& spec : plan.aggregates) {
        out << " (" << AggAtom(spec.func) << " " << Quote(spec.output_name);
        if (spec.func != AggSpec::Func::kCount) {
          out << " ";
          WriteExpr(*spec.arg, out);
        }
        out << ")";
      }
      out << ")";
      return;
    }
    case PlanNode::Kind::kSort: {
      out << "(sort ";
      WritePlan(*plan.child, out);
      for (std::size_t k = 0; k < plan.sort_keys.size(); ++k) {
        out << " (key " << Quote(plan.sort_keys[k]) << " "
            << (plan.sort_descending[k] ? "desc" : "asc") << ")";
      }
      out << ")";
      return;
    }
    case PlanNode::Kind::kLimit:
      out << "(limit ";
      WritePlan(*plan.child, out);
      out << " " << plan.limit << ")";
      return;
    case PlanNode::Kind::kUnionAll:
      out << "(union ";
      WritePlan(*plan.child, out);
      out << " ";
      WritePlan(*plan.right, out);
      out << ")";
      return;
  }
}

// ---------------------------------------------------------------------------
// Parsing: tokenizer + recursive descent over a tiny s-expression tree.
// ---------------------------------------------------------------------------

struct Sexp {
  // Either an atom (possibly a quoted string) or a list.
  bool is_atom = false;
  bool quoted = false;
  std::string atom;
  std::vector<Sexp> items;
};

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Sexp Parse() {
    Sexp root = ParseValue();
    SkipSpace();
    if (pos_ != text_.size()) Fail("trailing characters after expression");
    return root;
  }

 private:
  [[noreturn]] void Fail(const std::string& message) const {
    throw std::runtime_error(
        StrFormat("parse error at offset %zu: %s", pos_, message.c_str()));
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  Sexp ParseValue() {
    SkipSpace();
    if (pos_ >= text_.size()) Fail("unexpected end of input");
    if (text_[pos_] == '(') return ParseList();
    if (text_[pos_] == ')') Fail("unexpected ')'");
    return ParseAtom();
  }

  Sexp ParseList() {
    Sexp list;
    ++pos_;  // consume '('
    for (;;) {
      SkipSpace();
      if (pos_ >= text_.size()) Fail("unterminated list");
      if (text_[pos_] == ')') {
        ++pos_;
        return list;
      }
      list.items.push_back(ParseValue());
    }
  }

  Sexp ParseAtom() {
    Sexp atom;
    atom.is_atom = true;
    if (text_[pos_] == '"') {
      atom.quoted = true;
      ++pos_;
      while (pos_ < text_.size() && text_[pos_] != '"') {
        if (text_[pos_] == '\\' && pos_ + 1 < text_.size()) ++pos_;
        atom.atom.push_back(text_[pos_++]);
      }
      if (pos_ >= text_.size()) Fail("unterminated string");
      ++pos_;  // closing quote
      return atom;
    }
    while (pos_ < text_.size() && text_[pos_] != '(' && text_[pos_] != ')' &&
           !std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      atom.atom.push_back(text_[pos_++]);
    }
    if (atom.atom.empty()) Fail("empty atom");
    return atom;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

[[noreturn]] void Bad(const std::string& message) {
  throw std::runtime_error(message);
}

const std::string& AtomOf(const Sexp& s, const char* what) {
  if (!s.is_atom) Bad(std::string("expected atom for ") + what);
  return s.atom;
}

const std::string& StringOf(const Sexp& s, const char* what) {
  if (!s.is_atom || !s.quoted) {
    Bad(std::string("expected quoted string for ") + what);
  }
  return s.atom;
}

std::int64_t IntOf(const Sexp& s, const char* what) {
  try {
    return std::stoll(AtomOf(s, what));
  } catch (...) {
    Bad(std::string("expected integer for ") + what);
  }
}

ExprPtr BuildExpr(const Sexp& s);

Expr::Op BinaryOpFor(const std::string& head) {
  if (head == "+") return Expr::Op::kAdd;
  if (head == "-") return Expr::Op::kSub;
  if (head == "*") return Expr::Op::kMul;
  if (head == "/") return Expr::Op::kDiv;
  if (head == "%") return Expr::Op::kMod;
  if (head == "<") return Expr::Op::kLt;
  if (head == "<=") return Expr::Op::kLe;
  if (head == ">") return Expr::Op::kGt;
  if (head == ">=") return Expr::Op::kGe;
  if (head == "=") return Expr::Op::kEq;
  if (head == "!=") return Expr::Op::kNe;
  if (head == "and") return Expr::Op::kAnd;
  if (head == "or") return Expr::Op::kOr;
  Bad("unknown operator '" + head + "'");
}

ExprPtr BuildExpr(const Sexp& s) {
  if (s.is_atom) Bad("expected expression list, got atom '" + s.atom + "'");
  if (s.items.empty()) Bad("empty expression");
  const std::string& head = AtomOf(s.items[0], "expression head");
  auto arity = [&](std::size_t n) {
    if (s.items.size() != n + 1) {
      Bad(StrFormat("'%s' expects %zu argument(s)", head.c_str(), n));
    }
  };
  if (head == "col") {
    arity(1);
    return Col(StringOf(s.items[1], "column name"));
  }
  if (head == "i") {
    arity(1);
    return Lit(IntOf(s.items[1], "integer literal"));
  }
  if (head == "f") {
    arity(1);
    try {
      return Lit(std::stod(AtomOf(s.items[1], "float literal")));
    } catch (...) {
      Bad("expected float literal");
    }
  }
  if (head == "s") {
    arity(1);
    return Lit(StringOf(s.items[1], "string literal"));
  }
  if (head == "not") {
    arity(1);
    return Not(BuildExpr(s.items[1]));
  }
  if (head == "neg") {
    arity(1);
    return Neg(BuildExpr(s.items[1]));
  }
  arity(2);
  return Binary(BinaryOpFor(head), BuildExpr(s.items[1]),
                BuildExpr(s.items[2]));
}

PlanPtr BuildPlan(const Sexp& s);

AggSpec BuildAgg(const Sexp& s) {
  if (s.is_atom || s.items.empty()) Bad("expected aggregate list");
  const std::string& head = AtomOf(s.items[0], "aggregate head");
  AggSpec spec;
  if (head == "sum") {
    spec.func = AggSpec::Func::kSum;
  } else if (head == "count") {
    spec.func = AggSpec::Func::kCount;
  } else if (head == "min") {
    spec.func = AggSpec::Func::kMin;
  } else if (head == "max") {
    spec.func = AggSpec::Func::kMax;
  } else if (head == "avg") {
    spec.func = AggSpec::Func::kAvg;
  } else {
    Bad("unknown aggregate '" + head + "'");
  }
  const std::size_t expected = spec.func == AggSpec::Func::kCount ? 2 : 3;
  if (s.items.size() != expected) {
    Bad("aggregate '" + head + "' has wrong arity");
  }
  spec.output_name = StringOf(s.items[1], "aggregate output name");
  if (spec.func != AggSpec::Func::kCount) {
    spec.arg = BuildExpr(s.items[2]);
  }
  return spec;
}

PlanPtr BuildPlan(const Sexp& s) {
  if (s.is_atom) Bad("expected plan list, got atom '" + s.atom + "'");
  if (s.items.empty()) Bad("empty plan");
  const std::string& head = AtomOf(s.items[0], "plan head");
  if (head == "scan") {
    if (s.items.size() != 2) Bad("scan expects a table name");
    return Scan(StringOf(s.items[1], "table name"));
  }
  if (head == "filter") {
    if (s.items.size() != 3) Bad("filter expects (plan, expr)");
    return Filter(BuildPlan(s.items[1]), BuildExpr(s.items[2]));
  }
  if (head == "project") {
    if (s.items.size() < 3) Bad("project expects a plan and fields");
    std::vector<NamedExpr> fields;
    for (std::size_t i = 2; i < s.items.size(); ++i) {
      const Sexp& f = s.items[i];
      if (f.is_atom || f.items.size() != 3 ||
          AtomOf(f.items[0], "field") != "field") {
        Bad("project fields must be (field \"name\" <expr>)");
      }
      fields.push_back(NamedExpr{StringOf(f.items[1], "field name"),
                                 BuildExpr(f.items[2])});
    }
    return Project(BuildPlan(s.items[1]), std::move(fields));
  }
  if (head == "join") {
    if (s.items.size() != 4) Bad("join expects (left, right, keys)");
    const Sexp& keys = s.items[3];
    if (keys.is_atom || keys.items.empty() ||
        AtomOf(keys.items[0], "keys") != "keys" ||
        keys.items.size() % 2 == 0) {
      Bad("join keys must be (keys \"l\" \"r\" ...)");
    }
    std::vector<std::string> left_keys;
    std::vector<std::string> right_keys;
    for (std::size_t i = 1; i < keys.items.size(); i += 2) {
      left_keys.push_back(StringOf(keys.items[i], "left key"));
      right_keys.push_back(StringOf(keys.items[i + 1], "right key"));
    }
    return HashJoin(BuildPlan(s.items[1]), BuildPlan(s.items[2]),
                    std::move(left_keys), std::move(right_keys));
  }
  if (head == "agg") {
    if (s.items.size() < 3) Bad("agg expects (plan, keys, aggs...)");
    const Sexp& keys = s.items[2];
    if (keys.is_atom || keys.items.empty() ||
        AtomOf(keys.items[0], "keys") != "keys") {
      Bad("agg keys must be (keys ...)");
    }
    std::vector<std::string> group_keys;
    for (std::size_t i = 1; i < keys.items.size(); ++i) {
      group_keys.push_back(StringOf(keys.items[i], "group key"));
    }
    std::vector<AggSpec> aggs;
    for (std::size_t i = 3; i < s.items.size(); ++i) {
      aggs.push_back(BuildAgg(s.items[i]));
    }
    return Aggregate(BuildPlan(s.items[1]), std::move(group_keys),
                     std::move(aggs));
  }
  if (head == "sort") {
    if (s.items.size() < 3) Bad("sort expects a plan and keys");
    std::vector<std::string> keys;
    std::vector<bool> descending;
    for (std::size_t i = 2; i < s.items.size(); ++i) {
      const Sexp& k = s.items[i];
      if (k.is_atom || k.items.size() != 3 ||
          AtomOf(k.items[0], "sort key") != "key") {
        Bad("sort keys must be (key \"name\" asc|desc)");
      }
      keys.push_back(StringOf(k.items[1], "sort key name"));
      const std::string& dir = AtomOf(k.items[2], "sort direction");
      if (dir != "asc" && dir != "desc") Bad("sort direction asc|desc");
      descending.push_back(dir == "desc");
    }
    return Sort(BuildPlan(s.items[1]), std::move(keys),
                std::move(descending));
  }
  if (head == "limit") {
    if (s.items.size() != 3) Bad("limit expects (plan, count)");
    return Limit(BuildPlan(s.items[1]), IntOf(s.items[2], "limit"));
  }
  if (head == "union") {
    if (s.items.size() != 3) Bad("union expects (left, right)");
    return UnionAll(BuildPlan(s.items[1]), BuildPlan(s.items[2]));
  }
  Bad("unknown plan node '" + head + "'");
}

}  // namespace

std::string SerializePlan(const PlanNode& plan) {
  std::ostringstream out;
  WritePlan(plan, out);
  return out.str();
}

std::string SerializeExpr(const Expr& expr) {
  std::ostringstream out;
  WriteExpr(expr, out);
  return out.str();
}

PlanPtr ParsePlan(const std::string& text, std::string* error) {
  try {
    return BuildPlan(Parser(text).Parse());
  } catch (const std::exception& e) {
    if (error != nullptr) *error = e.what();
    return nullptr;
  }
}

ExprPtr ParseExpr(const std::string& text, std::string* error) {
  try {
    return BuildExpr(Parser(text).Parse());
  } catch (const std::exception& e) {
    if (error != nullptr) *error = e.what();
    return nullptr;
  }
}

}  // namespace sc::engine
