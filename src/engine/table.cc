#include "engine/table.h"

#include <sstream>
#include <stdexcept>

#include "common/table_printer.h"

namespace sc::engine {

Schema::Schema(std::vector<Field> fields) : fields_(std::move(fields)) {
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    auto [it, inserted] =
        index_.emplace(fields_[i].name, static_cast<std::int32_t>(i));
    if (!inserted) {
      throw std::invalid_argument("Schema: duplicate field '" +
                                  fields_[i].name + "'");
    }
  }
}

std::int32_t Schema::IndexOf(const std::string& name) const {
  auto it = index_.find(name);
  return it == index_.end() ? -1 : it->second;
}

Table::Table(Schema schema, std::vector<Column> columns)
    : schema_(std::move(schema)), columns_(std::move(columns)) {
  if (schema_.num_fields() != columns_.size()) {
    throw std::invalid_argument("Table: schema/column count mismatch");
  }
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].type() != schema_.field(i).type) {
      throw std::invalid_argument("Table: column type mismatch for '" +
                                  schema_.field(i).name + "'");
    }
  }
  SyncRowCount();
}

Table Table::Empty(Schema schema) {
  std::vector<Column> columns;
  columns.reserve(schema.num_fields());
  for (const Field& f : schema.fields()) {
    columns.emplace_back(f.type);
  }
  return Table(std::move(schema), std::move(columns));
}

const Column& Table::column(const std::string& name) const {
  const std::int32_t i = schema_.IndexOf(name);
  if (i < 0) {
    throw std::out_of_range("Table: no column named '" + name + "'");
  }
  return columns_[static_cast<std::size_t>(i)];
}

void Table::AppendRowFrom(const Table& other, std::size_t row) {
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    columns_[c].AppendFrom(other.columns_[c], row);
  }
  ++num_rows_;
}

void Table::GatherRowsFrom(const Table& other,
                           const std::vector<std::uint32_t>& rows) {
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    columns_[c].GatherFrom(other.columns_[c], rows);
  }
  num_rows_ += rows.size();
}

void Table::AppendRangeFrom(const Table& other, std::size_t begin,
                            std::size_t end) {
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    columns_[c].AppendRangeFrom(other.columns_[c], begin, end);
  }
  num_rows_ += end - begin;
}

void Table::Reserve(std::size_t rows) {
  for (Column& c : columns_) c.Reserve(rows);
}

void Table::SyncRowCount() {
  num_rows_ = columns_.empty() ? 0 : columns_[0].size();
  for (const Column& c : columns_) {
    if (c.size() != num_rows_) {
      throw std::logic_error("Table: ragged columns");
    }
  }
}

std::int64_t Table::ByteSize() const {
  std::int64_t total = 0;
  for (const Column& c : columns_) total += c.ByteSize();
  return total;
}

std::string Table::ToString(std::size_t max_rows) const {
  std::vector<std::string> header;
  for (const Field& f : schema_.fields()) header.push_back(f.name);
  TablePrinter printer(header);
  const std::size_t rows = std::min(max_rows, num_rows_);
  for (std::size_t r = 0; r < rows; ++r) {
    std::vector<std::string> row;
    for (const Column& c : columns_) {
      row.push_back(sc::engine::ToString(c.GetValue(r)));
    }
    printer.AddRow(std::move(row));
  }
  std::ostringstream out;
  printer.Print(out);
  if (rows < num_rows_) {
    out << "... (" << num_rows_ - rows << " more rows)\n";
  }
  return out.str();
}

bool Table::operator==(const Table& other) const {
  return schema_ == other.schema_ && columns_ == other.columns_;
}

}  // namespace sc::engine
