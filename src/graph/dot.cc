#include "graph/dot.h"

#include <sstream>
#include <unordered_set>

#include "common/bytes.h"

namespace sc::graph {

std::string ToDot(const Graph& g, const DotOptions& options) {
  std::unordered_set<NodeId> highlighted(options.highlighted.begin(),
                                         options.highlighted.end());
  std::ostringstream out;
  out << "digraph " << options.graph_name << " {\n";
  out << "  rankdir=LR;\n";
  out << "  node [shape=box, fontname=\"Helvetica\"];\n";
  for (NodeId i = 0; i < g.num_nodes(); ++i) {
    const NodeInfo& info = g.node(i);
    out << "  n" << i << " [label=\"" << info.name;
    if (options.show_sizes) {
      out << "\\n" << FormatBytes(info.size_bytes);
    }
    if (options.show_scores) {
      out << "\\nt=" << info.speedup_score;
    }
    out << "\"";
    if (highlighted.count(i) > 0) {
      out << ", style=filled, fillcolor=lightblue";
    }
    out << "];\n";
  }
  for (NodeId i = 0; i < g.num_nodes(); ++i) {
    for (NodeId c : g.children(i)) {
      out << "  n" << i << " -> n" << c << ";\n";
    }
  }
  out << "}\n";
  return out.str();
}

}  // namespace sc::graph
