#ifndef SC_GRAPH_SERDE_H_
#define SC_GRAPH_SERDE_H_

#include <iosfwd>
#include <string>

#include "graph/graph.h"

namespace sc::graph {

/// Line-oriented text format for dependency graphs, so that workloads can
/// be exchanged with external tools (dbt-style DAG dumps). Format:
///
///   # comment
///   node <name> <size_bytes> <speedup_score> <compute_seconds> <input_bytes>
///   edge <from_name> <to_name>
///
/// Fields after <name> are optional (default 0). Unknown directives are an
/// error. Edge lines must refer to previously declared nodes.

/// Serializes `g` into the text format.
std::string Serialize(const Graph& g);

/// Parses the text format. On failure returns false and sets `error`.
bool Deserialize(const std::string& text, Graph* g, std::string* error);

/// File helpers; return false on I/O or parse failure.
bool SaveToFile(const Graph& g, const std::string& path, std::string* error);
bool LoadFromFile(const std::string& path, Graph* g, std::string* error);

}  // namespace sc::graph

#endif  // SC_GRAPH_SERDE_H_
