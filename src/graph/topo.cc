#include "graph/topo.h"

#include <algorithm>
#include <cassert>
#include <queue>

namespace sc::graph {

Order Order::FromSequence(std::vector<NodeId> seq) {
  Order order;
  order.sequence = std::move(seq);
  NodeId max_id = -1;
  for (NodeId v : order.sequence) max_id = std::max(max_id, v);
  order.position.assign(static_cast<std::size_t>(max_id) + 1, -1);
  for (std::size_t k = 0; k < order.sequence.size(); ++k) {
    order.position[order.sequence[k]] = static_cast<std::int32_t>(k);
  }
  return order;
}

bool IsTopologicalOrder(const Graph& g, const Order& order) {
  if (order.sequence.size() != static_cast<std::size_t>(g.num_nodes())) {
    return false;
  }
  std::vector<bool> seen(g.num_nodes(), false);
  for (NodeId v : order.sequence) {
    if (v < 0 || v >= g.num_nodes() || seen[v]) return false;
    for (NodeId p : g.parents(v)) {
      if (!seen[p]) return false;
    }
    seen[v] = true;
  }
  return true;
}

Order KahnTopologicalOrder(const Graph& g) {
  std::vector<std::int32_t> indegree(g.num_nodes(), 0);
  for (NodeId i = 0; i < g.num_nodes(); ++i) {
    for (NodeId c : g.children(i)) indegree[c]++;
  }
  // FIFO frontier (deterministic, BFS-flavoured) — matches the behaviour
  // of networkx.topological_sort, which the paper's implementation uses
  // for the initial execution order of Algorithm 2.
  std::queue<NodeId> ready;
  for (NodeId i = 0; i < g.num_nodes(); ++i) {
    if (indegree[i] == 0) ready.push(i);
  }
  std::vector<NodeId> seq;
  seq.reserve(g.num_nodes());
  while (!ready.empty()) {
    NodeId n = ready.front();
    ready.pop();
    seq.push_back(n);
    for (NodeId c : g.children(n)) {
      if (--indegree[c] == 0) ready.push(c);
    }
  }
  assert(seq.size() == static_cast<std::size_t>(g.num_nodes()));
  return Order::FromSequence(std::move(seq));
}

Order DfsSchedule(const Graph& g, const TieBreak& tie_break) {
  const std::int32_t n = g.num_nodes();
  std::vector<std::int32_t> unexecuted_parents(n, 0);
  for (NodeId i = 0; i < n; ++i) {
    unexecuted_parents[i] =
        static_cast<std::int32_t>(g.parents(i).size());
  }
  std::vector<bool> executed(n, false);
  std::vector<NodeId> seq;
  seq.reserve(n);
  // DFS stack of executed nodes whose subtrees may still have ready work.
  std::vector<NodeId> stack;

  auto pick = [&](std::vector<NodeId>& candidates) -> NodeId {
    std::sort(candidates.begin(), candidates.end());
    std::size_t idx = 0;
    if (tie_break && candidates.size() > 1) {
      idx = tie_break(candidates);
      if (idx >= candidates.size()) idx = 0;
    }
    return candidates[idx];
  };

  auto ready_children_of = [&](NodeId v) {
    std::vector<NodeId> out;
    for (NodeId c : g.children(v)) {
      if (!executed[c] && unexecuted_parents[c] == 0) out.push_back(c);
    }
    return out;
  };

  auto execute = [&](NodeId v) {
    executed[v] = true;
    seq.push_back(v);
    stack.push_back(v);
    for (NodeId c : g.children(v)) unexecuted_parents[c]--;
  };

  // Ready roots not yet executed (recomputed lazily).
  auto ready_roots = [&]() {
    std::vector<NodeId> out;
    for (NodeId i = 0; i < n; ++i) {
      if (!executed[i] && unexecuted_parents[i] == 0) out.push_back(i);
    }
    return out;
  };

  while (static_cast<std::int32_t>(seq.size()) < n) {
    NodeId next = kInvalidNode;
    // Prefer to deepen from the DFS stack (finish the current branch).
    while (!stack.empty()) {
      std::vector<NodeId> cands = ready_children_of(stack.back());
      if (!cands.empty()) {
        next = pick(cands);
        break;
      }
      stack.pop_back();
    }
    if (next == kInvalidNode) {
      std::vector<NodeId> cands = ready_roots();
      assert(!cands.empty() && "graph must be acyclic");
      next = pick(cands);
    }
    execute(next);
  }
  return Order::FromSequence(std::move(seq));
}

namespace {

std::vector<NodeId> Closure(const Graph& g, NodeId id, bool upstream) {
  std::vector<bool> visited(g.num_nodes(), false);
  std::vector<NodeId> frontier = {id};
  std::vector<NodeId> out;
  visited[id] = true;
  while (!frontier.empty()) {
    NodeId v = frontier.back();
    frontier.pop_back();
    const auto& next = upstream ? g.parents(v) : g.children(v);
    for (NodeId u : next) {
      if (!visited[u]) {
        visited[u] = true;
        out.push_back(u);
        frontier.push_back(u);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

std::vector<NodeId> Ancestors(const Graph& g, NodeId id) {
  return Closure(g, id, /*upstream=*/true);
}

std::vector<NodeId> Descendants(const Graph& g, NodeId id) {
  return Closure(g, id, /*upstream=*/false);
}

std::int32_t LongestPathLength(const Graph& g) {
  if (g.num_nodes() == 0) return 0;
  Order topo = KahnTopologicalOrder(g);
  std::vector<std::int32_t> depth(g.num_nodes(), 1);
  std::int32_t best = 1;
  for (NodeId v : topo.sequence) {
    for (NodeId c : g.children(v)) {
      depth[c] = std::max(depth[c], depth[v] + 1);
      best = std::max(best, depth[c]);
    }
  }
  return best;
}

}  // namespace sc::graph
