#include "graph/graph.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "common/str_util.h"

namespace sc::graph {

NodeId Graph::AddNode(NodeInfo info) {
  if (info.name.empty()) {
    throw std::invalid_argument("Graph::AddNode: empty node name");
  }
  if (by_name_.count(info.name) > 0) {
    throw std::invalid_argument(
        StrFormat("Graph::AddNode: duplicate node name '%s'",
                  info.name.c_str()));
  }
  const NodeId id = static_cast<NodeId>(nodes_.size());
  by_name_.emplace(info.name, id);
  nodes_.push_back(std::move(info));
  children_.emplace_back();
  parents_.emplace_back();
  return id;
}

NodeId Graph::AddNode(const std::string& name, std::int64_t size_bytes,
                      double speedup_score) {
  NodeInfo info;
  info.name = name;
  info.size_bytes = size_bytes;
  info.speedup_score = speedup_score;
  return AddNode(std::move(info));
}

bool Graph::AddEdge(NodeId from, NodeId to) {
  if (from < 0 || to < 0 || from >= num_nodes() || to >= num_nodes()) {
    return false;
  }
  if (from == to) return false;
  if (HasEdge(from, to)) return false;
  children_[from].push_back(to);
  parents_[to].push_back(from);
  ++num_edges_;
  return true;
}

bool Graph::HasEdge(NodeId from, NodeId to) const {
  if (from < 0 || from >= num_nodes()) return false;
  const auto& kids = children_[from];
  return std::find(kids.begin(), kids.end(), to) != kids.end();
}

std::vector<NodeId> Graph::Roots() const {
  std::vector<NodeId> out;
  for (NodeId i = 0; i < num_nodes(); ++i) {
    if (parents_[i].empty()) out.push_back(i);
  }
  return out;
}

std::vector<NodeId> Graph::Leaves() const {
  std::vector<NodeId> out;
  for (NodeId i = 0; i < num_nodes(); ++i) {
    if (children_[i].empty()) out.push_back(i);
  }
  return out;
}

std::optional<NodeId> Graph::FindByName(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return std::nullopt;
  return it->second;
}

bool Graph::Validate(std::string* error) const {
  // Kahn's algorithm: the graph is acyclic iff all nodes are drained.
  std::vector<std::int32_t> indegree(nodes_.size(), 0);
  for (NodeId i = 0; i < num_nodes(); ++i) {
    for (NodeId c : children_[i]) indegree[c]++;
  }
  std::vector<NodeId> frontier;
  for (NodeId i = 0; i < num_nodes(); ++i) {
    if (indegree[i] == 0) frontier.push_back(i);
  }
  std::int32_t drained = 0;
  while (!frontier.empty()) {
    NodeId n = frontier.back();
    frontier.pop_back();
    ++drained;
    for (NodeId c : children_[n]) {
      if (--indegree[c] == 0) frontier.push_back(c);
    }
  }
  if (drained != num_nodes()) {
    if (error != nullptr) {
      *error = StrFormat("graph contains a cycle (%d of %d nodes reachable)",
                         drained, num_nodes());
    }
    return false;
  }
  for (NodeId i = 0; i < num_nodes(); ++i) {
    if (nodes_[i].size_bytes < 0) {
      if (error != nullptr) {
        *error = StrFormat("node '%s' has negative size",
                           nodes_[i].name.c_str());
      }
      return false;
    }
  }
  return true;
}

std::int64_t Graph::TotalSize() const {
  std::int64_t total = 0;
  for (const auto& n : nodes_) total += n.size_bytes;
  return total;
}

double Graph::TotalScore() const {
  double total = 0;
  for (const auto& n : nodes_) total += n.speedup_score;
  return total;
}

NodeId Graph::ValidateId(NodeId id) const {
  if (id < 0 || id >= num_nodes()) {
    throw std::out_of_range(StrFormat("node id %d out of range [0, %d)",
                                      id, num_nodes()));
  }
  return id;
}

}  // namespace sc::graph
