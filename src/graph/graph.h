#ifndef SC_GRAPH_GRAPH_H_
#define SC_GRAPH_GRAPH_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace sc::graph {

/// Node identifier: dense index into the graph's node array.
using NodeId = std::int32_t;
inline constexpr NodeId kInvalidNode = -1;

/// Per-node metadata for one MV update (paper §IV, Table II).
///
/// `size_bytes` is s_i: memory required to keep the node's output resident.
/// `speedup_score` is t_i: estimated end-to-end seconds saved by flagging
/// the node (keeping its output in the Memory Catalog).
/// `compute_seconds` and `base_input_bytes` are execution metadata used by
/// the simulator / engine, not by the optimizer itself.
struct NodeInfo {
  std::string name;
  std::int64_t size_bytes = 0;
  double speedup_score = 0.0;
  double compute_seconds = 0.0;
  /// Bytes read from base tables (inputs that are not parent MVs).
  std::int64_t base_input_bytes = 0;
  /// Relative number of files/partitions this MV materializes into
  /// (scales the per-table open/commit overheads of the cost model;
  /// larger tables split into more files on warehouse storage).
  double file_count = 1.0;
};

/// Directed acyclic dependency graph of an MV refresh run (paper §IV).
///
/// Nodes are individual MV updates; an edge (u, v) means v consumes the
/// output of u (u must execute before v). The graph owns per-node metadata
/// and adjacency in both directions.
///
/// Invariants: node ids are dense [0, num_nodes); duplicate edges are
/// rejected; self-edges are rejected. Acyclicity is checked on demand via
/// Validate() (construction order is unconstrained).
class Graph {
 public:
  Graph() = default;

  /// Adds a node and returns its id. Names must be unique and non-empty.
  NodeId AddNode(NodeInfo info);

  /// Convenience: adds a node with just a name and size.
  NodeId AddNode(const std::string& name, std::int64_t size_bytes = 0,
                 double speedup_score = 0.0);

  /// Adds dependency edge `from` -> `to` (to reads from's output).
  /// Returns false (and does nothing) for self-edges, duplicate edges, or
  /// out-of-range ids.
  bool AddEdge(NodeId from, NodeId to);

  bool HasEdge(NodeId from, NodeId to) const;

  std::int32_t num_nodes() const {
    return static_cast<std::int32_t>(nodes_.size());
  }
  std::int64_t num_edges() const { return num_edges_; }

  const NodeInfo& node(NodeId id) const { return nodes_[ValidateId(id)]; }
  NodeInfo& mutable_node(NodeId id) { return nodes_[ValidateId(id)]; }

  /// Downstream consumers of `id` (nodes that read its output).
  const std::vector<NodeId>& children(NodeId id) const {
    return children_[ValidateId(id)];
  }
  /// Upstream dependencies of `id`.
  const std::vector<NodeId>& parents(NodeId id) const {
    return parents_[ValidateId(id)];
  }

  /// Nodes with no parents (read only base tables).
  std::vector<NodeId> Roots() const;
  /// Nodes with no children (terminal MVs).
  std::vector<NodeId> Leaves() const;

  /// Looks up a node id by name; nullopt if absent.
  std::optional<NodeId> FindByName(const std::string& name) const;

  /// True iff the graph is acyclic. `error` (optional) receives a
  /// description of the first problem found.
  bool Validate(std::string* error = nullptr) const;

  /// Sum of all node sizes.
  std::int64_t TotalSize() const;
  /// Sum of all speedup scores.
  double TotalScore() const;

 private:
  NodeId ValidateId(NodeId id) const;

  std::vector<NodeInfo> nodes_;
  std::vector<std::vector<NodeId>> children_;
  std::vector<std::vector<NodeId>> parents_;
  std::unordered_map<std::string, NodeId> by_name_;
  std::int64_t num_edges_ = 0;
};

}  // namespace sc::graph

#endif  // SC_GRAPH_GRAPH_H_
