#include "graph/serde.h"

#include <fstream>
#include <sstream>

#include "common/str_util.h"

namespace sc::graph {

std::string Serialize(const Graph& g) {
  std::ostringstream out;
  out << "# S/C dependency graph: " << g.num_nodes() << " nodes, "
      << g.num_edges() << " edges\n";
  for (NodeId i = 0; i < g.num_nodes(); ++i) {
    const NodeInfo& n = g.node(i);
    out << "node " << n.name << ' ' << n.size_bytes << ' ' << n.speedup_score
        << ' ' << n.compute_seconds << ' ' << n.base_input_bytes << ' '
        << n.file_count << '\n';
  }
  for (NodeId i = 0; i < g.num_nodes(); ++i) {
    for (NodeId c : g.children(i)) {
      out << "edge " << g.node(i).name << ' ' << g.node(c).name << '\n';
    }
  }
  return out.str();
}

bool Deserialize(const std::string& text, Graph* g, std::string* error) {
  *g = Graph();
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  auto fail = [&](const std::string& msg) {
    if (error != nullptr) {
      *error = StrFormat("line %d: %s", lineno, msg.c_str());
    }
    return false;
  };
  while (std::getline(in, line)) {
    ++lineno;
    const std::string trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    std::istringstream fields(trimmed);
    std::string directive;
    fields >> directive;
    if (directive == "node") {
      NodeInfo info;
      fields >> info.name;
      if (info.name.empty()) return fail("node line missing name");
      // Optional numeric fields.
      fields >> info.size_bytes >> info.speedup_score >>
          info.compute_seconds >> info.base_input_bytes >> info.file_count;
      if (info.file_count <= 0) info.file_count = 1.0;
      if (g->FindByName(info.name).has_value()) {
        return fail("duplicate node '" + info.name + "'");
      }
      g->AddNode(std::move(info));
    } else if (directive == "edge") {
      std::string from, to;
      fields >> from >> to;
      auto from_id = g->FindByName(from);
      auto to_id = g->FindByName(to);
      if (!from_id.has_value()) return fail("unknown node '" + from + "'");
      if (!to_id.has_value()) return fail("unknown node '" + to + "'");
      if (!g->AddEdge(*from_id, *to_id)) {
        return fail("invalid or duplicate edge " + from + " -> " + to);
      }
    } else {
      return fail("unknown directive '" + directive + "'");
    }
  }
  std::string validate_error;
  if (!g->Validate(&validate_error)) {
    if (error != nullptr) *error = validate_error;
    return false;
  }
  return true;
}

bool SaveToFile(const Graph& g, const std::string& path, std::string* error) {
  std::ofstream out(path);
  if (!out) {
    if (error != nullptr) *error = "cannot open '" + path + "' for writing";
    return false;
  }
  out << Serialize(g);
  return static_cast<bool>(out);
}

bool LoadFromFile(const std::string& path, Graph* g, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open '" + path + "' for reading";
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return Deserialize(buffer.str(), g, error);
}

}  // namespace sc::graph
