#ifndef SC_GRAPH_TOPO_H_
#define SC_GRAPH_TOPO_H_

#include <functional>
#include <vector>

#include "graph/graph.h"

namespace sc::graph {

/// An MV refresh execution order τ (paper Table II).
///
/// `sequence[k]` is the id of the k-th executed node;
/// `position[v]` = τ(v) is the 0-based slot in which node v executes.
/// Both views are kept consistent by FromSequence().
struct Order {
  std::vector<NodeId> sequence;
  std::vector<std::int32_t> position;

  static Order FromSequence(std::vector<NodeId> seq);

  bool empty() const { return sequence.empty(); }
  std::size_t size() const { return sequence.size(); }
};

/// True iff `order` is a permutation of the graph's nodes in which every
/// node appears after all of its parents.
bool IsTopologicalOrder(const Graph& g, const Order& order);

/// Deterministic Kahn topological sort; ties broken by smallest node id.
/// This is the GetTopologicalOrder subroutine of Algorithm 2.
Order KahnTopologicalOrder(const Graph& g);

/// Tie-break callback for DfsSchedule: given the candidate set (ready
/// children of the current DFS frontier, or ready roots), returns the index
/// of the candidate to execute next.
using TieBreak =
    std::function<std::size_t(const std::vector<NodeId>& candidates)>;

/// DFS-based scheduling (paper §V-B): finishes a branch of execution before
/// starting a new one. A node becomes *ready* when all its parents have
/// executed. The scheduler repeatedly executes, preferring ready children
/// of the most recently executed node (depth-first), backtracking through
/// the DFS stack when the current branch is exhausted. `tie_break` selects
/// among equally eligible candidates; pass {} for smallest-id ties.
Order DfsSchedule(const Graph& g, const TieBreak& tie_break = {});

/// All ancestors (transitive parents) of `id`, excluding `id`.
std::vector<NodeId> Ancestors(const Graph& g, NodeId id);

/// All descendants (transitive children) of `id`, excluding `id`.
std::vector<NodeId> Descendants(const Graph& g, NodeId id);

/// Length of the longest path (in nodes) in the DAG; 0 for empty graphs.
std::int32_t LongestPathLength(const Graph& g);

}  // namespace sc::graph

#endif  // SC_GRAPH_TOPO_H_
