#include "graph/fingerprint.h"

#include <algorithm>

#include "common/fnv.h"
#include "graph/topo.h"

namespace sc::graph {

std::vector<std::uint64_t> FingerprintNodes(const Graph& g,
                                            std::uint64_t salt) {
  const Order order = KahnTopologicalOrder(g);
  if (order.sequence.size() != static_cast<std::size_t>(g.num_nodes())) {
    return {};  // cyclic: no well-defined lineage
  }
  std::vector<std::uint64_t> fps(
      static_cast<std::size_t>(g.num_nodes()), 0);
  std::vector<std::uint64_t> parent_fps;
  for (const NodeId v : order.sequence) {
    std::uint64_t h = kFnvOffset;
    FnvMixUint(&h, salt);
    FnvMixString(&h, g.node(v).name);
    // Sorted, so the fingerprint depends on the parent *set*, not the
    // incidental edge-insertion order.
    parent_fps.clear();
    for (const NodeId p : g.parents(v)) {
      parent_fps.push_back(fps[static_cast<std::size_t>(p)]);
    }
    std::sort(parent_fps.begin(), parent_fps.end());
    FnvMixInt(&h, static_cast<std::int64_t>(parent_fps.size()));
    for (const std::uint64_t pf : parent_fps) FnvMixUint(&h, pf);
    fps[static_cast<std::size_t>(v)] = h;
  }
  return fps;
}

}  // namespace sc::graph
