#ifndef SC_GRAPH_DOT_H_
#define SC_GRAPH_DOT_H_

#include <string>
#include <vector>

#include "graph/graph.h"

namespace sc::graph {

/// Options for Graphviz rendering of a dependency graph.
struct DotOptions {
  /// Nodes to highlight (e.g. the flagged set U); rendered filled.
  std::vector<NodeId> highlighted;
  /// Annotate nodes with size / score.
  bool show_sizes = true;
  bool show_scores = false;
  /// Graph name in the dot output.
  std::string graph_name = "sc_workload";
};

/// Renders the graph in Graphviz dot format (left-to-right layout). Useful
/// for debugging workloads and for documentation figures.
std::string ToDot(const Graph& g, const DotOptions& options = {});

}  // namespace sc::graph

#endif  // SC_GRAPH_DOT_H_
