#ifndef SC_GRAPH_FINGERPRINT_H_
#define SC_GRAPH_FINGERPRINT_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace sc::graph {

/// Per-node content fingerprints: fingerprint[v] identifies *what node v
/// computes* — its MV name combined with the fingerprints of its parents
/// (upstream lineage) — so two nodes of different jobs agree exactly when
/// they refresh the same MV from the same upstream chain. This is the key
/// space of the cross-job storage::SharedCatalog: a fingerprint match
/// means another job's resident output is byte-equivalent and can be read
/// instead of recomputed.
///
/// Execution metadata (sizes, speedup scores, observed timings) is
/// deliberately excluded: it describes the *output*, not the content
/// identity, and varies between profiling runs of the same workload —
/// mixing it in (as the plan cache's FingerprintGraph does) would defeat
/// cross-tenant matches between independently profiled copies of one
/// workload. Name+lineage keying therefore inherits the service's
/// warehouse contract (see RefreshJobSpec): MV names form one global
/// namespace on the service's disk, and workloads that must not share
/// state must use distinct node names — the same rule that already
/// governs their on-disk tables governs their shared-catalog entries.
/// `salt` versions the whole key space (a data epoch): bumping it
/// invalidates every cross-job match, e.g. after base tables change.
///
/// Returns an empty vector if `g` is not a DAG (no fingerprints can be
/// assigned); callers treat that as "sharing unavailable".
std::vector<std::uint64_t> FingerprintNodes(const Graph& g,
                                            std::uint64_t salt = 0);

}  // namespace sc::graph

#endif  // SC_GRAPH_FINGERPRINT_H_
