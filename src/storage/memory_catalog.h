#ifndef SC_STORAGE_MEMORY_CATALOG_H_
#define SC_STORAGE_MEMORY_CATALOG_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "engine/table.h"

namespace sc::storage {

/// The Memory Catalog (paper §III): a budget-enforced in-memory table
/// store. Flagged node outputs are created here; downstream reads are
/// served at memory speed; entries are released once every dependent node
/// has consumed them and the background materialization finished.
///
/// Thread-safe. Put() enforces the budget strictly: the Controller (and
/// the optimizer's feasibility guarantee) must release entries before
/// creating new ones, so a failed Put is a plan bug, not a runtime
/// condition to paper over.
class MemoryCatalog {
 public:
  explicit MemoryCatalog(std::int64_t budget_bytes);

  /// Inserts `table` under `name`, accounting `size` bytes (callers pass
  /// the table's in-memory footprint). Returns false if the entry would
  /// exceed the budget or the name already exists.
  bool Put(const std::string& name, engine::TablePtr table,
           std::int64_t size);

  /// Returns the table or nullptr if not resident.
  engine::TablePtr Get(const std::string& name) const;

  bool Contains(const std::string& name) const;

  /// Releases `name`, freeing its bytes. No-op if absent.
  void Release(const std::string& name);

  std::int64_t used_bytes() const;
  std::int64_t budget_bytes() const { return budget_; }
  /// High-water mark of used_bytes over the catalog's lifetime.
  std::int64_t peak_bytes() const;
  std::size_t size() const;

  /// Drops all entries (end of a refresh run).
  void Clear();

 private:
  struct Entry {
    engine::TablePtr table;
    std::int64_t size;
  };

  const std::int64_t budget_;
  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;
  std::int64_t used_ = 0;
  std::int64_t peak_ = 0;
};

}  // namespace sc::storage

#endif  // SC_STORAGE_MEMORY_CATALOG_H_
