#ifndef SC_STORAGE_MEMORY_CATALOG_H_
#define SC_STORAGE_MEMORY_CATALOG_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "engine/table.h"

namespace sc::storage {

/// The Memory Catalog (paper §III): a budget-enforced in-memory table
/// store. Flagged node outputs are created here; downstream reads are
/// served at memory speed; entries are released once every dependent node
/// has consumed them and the background materialization finished.
///
/// Thread-safe: map mutations are mutex-guarded; byte usage, high-water
/// mark, and hit/miss counters are atomics so that monitoring reads
/// (used_bytes(), peak_bytes(), hits(), misses()) never contend with
/// concurrent Put/Get/Release from refresh workers.
///
/// Put() enforces the budget strictly: the Controller (and the optimizer's
/// feasibility guarantee) must release entries before creating new ones,
/// so a failed Put is a plan bug, not a runtime condition to paper over.
class MemoryCatalog {
 public:
  explicit MemoryCatalog(std::int64_t budget_bytes);

  /// Inserts `table` under `name`, accounting `size` bytes (callers pass
  /// the table's in-memory footprint). Returns false if the entry would
  /// exceed the budget or the name already exists.
  bool Put(const std::string& name, engine::TablePtr table,
           std::int64_t size);

  /// Returns the table or nullptr if not resident. Counts a hit or miss.
  engine::TablePtr Get(const std::string& name) const;

  bool Contains(const std::string& name) const;

  /// Releases `name`, freeing its bytes. No-op if absent.
  void Release(const std::string& name);

  /// Reservation API for the parallel runtime: earmarks `bytes` for a
  /// future Put of `name` so concurrently *executing* nodes cannot
  /// jointly overshoot the budget while their outputs are still being
  /// produced. Returns false if resident + reserved + `bytes` would
  /// exceed the budget, if `bytes` is negative, or if `name` already
  /// holds a reservation. Reservations gate dispatch only: Put itself
  /// keeps enforcing the budget against resident bytes alone, so the
  /// sequential admission semantics (lazy release until Put fits) are
  /// unchanged. Callers cancel the reservation before the final Put —
  /// the actual output size replaces the estimate — or on failure.
  bool Reserve(const std::string& name, std::int64_t bytes);

  /// Drops `name`'s reservation. No-op if absent.
  void CancelReservation(const std::string& name);

  /// Sum of outstanding reservations (not counted in used_bytes()).
  std::int64_t reserved_bytes() const {
    return reserved_.load(std::memory_order_relaxed);
  }

  /// Denied Reserve() calls — how often the parallel runtime's dispatch
  /// was backpressured to keep in-flight flagged outputs within the
  /// budget. Monitoring only; survives Clear().
  std::int64_t reserve_denials() const {
    return reserve_denials_.load(std::memory_order_relaxed);
  }

  std::int64_t used_bytes() const {
    return used_.load(std::memory_order_relaxed);
  }
  std::int64_t budget_bytes() const { return budget_; }
  /// High-water mark of used_bytes over the catalog's lifetime.
  std::int64_t peak_bytes() const {
    return peak_.load(std::memory_order_relaxed);
  }
  std::size_t size() const;

  /// Lookup counters: a hit is a Get() served from memory, a miss a Get()
  /// that fell through to external storage. Survive Clear().
  std::int64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  std::int64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }

  /// Drops all entries (end of a refresh run).
  void Clear();

 private:
  struct Entry {
    engine::TablePtr table;
    std::int64_t size;
  };

  const std::int64_t budget_;
  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;
  std::map<std::string, std::int64_t> reservations_;
  std::atomic<std::int64_t> reserved_{0};
  mutable std::atomic<std::int64_t> reserve_denials_{0};
  std::atomic<std::int64_t> used_{0};
  std::atomic<std::int64_t> peak_{0};
  mutable std::atomic<std::int64_t> hits_{0};
  mutable std::atomic<std::int64_t> misses_{0};
};

}  // namespace sc::storage

#endif  // SC_STORAGE_MEMORY_CATALOG_H_
