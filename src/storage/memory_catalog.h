#ifndef SC_STORAGE_MEMORY_CATALOG_H_
#define SC_STORAGE_MEMORY_CATALOG_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <set>
#include <string>

#include "engine/table.h"
#include "storage/shared_catalog.h"

namespace sc::storage {

/// The Memory Catalog (paper §III): a budget-enforced in-memory table
/// store. Flagged node outputs are created here; downstream reads are
/// served at memory speed; entries are released once every dependent node
/// has consumed them and the background materialization finished.
///
/// Since PR 4 this is also the *per-job view* onto the cross-job
/// SharedCatalog: constructed with a SharedCatalog, the name-keyed API
/// becomes a name → content-fingerprint binding layer (BindSharedKey)
/// over the content-keyed shared store. The private budget accounting is
/// untouched — a job's own flagged outputs charge its granted budget
/// exactly as in the sequential paper semantics — and the shared layer is
/// additive:
///
///  - Put() additionally publishes the output under its bound content
///    key, making it readable by concurrent jobs.
///  - Get() falls through, on a private miss, to pinning the bound entry
///    in the shared layer: a *cross-job hit*, served at memory speed and
///    held pinned (unevictable) until UnpinShared()/Clear()/destruction.
///  - PinSharedOutput() checks whether the node's *own* output is
///    already resident cross-job — if so the caller reuses it outright
///    instead of recomputing.
///
/// Without a SharedCatalog the behaviour is bit-identical to the
/// pre-sharing catalog (the 1-lane equivalence contract of
/// stage_runtime_test).
///
/// Thread-safe: map mutations are mutex-guarded; byte usage, high-water
/// mark, and hit/miss counters are atomics so that monitoring reads
/// (used_bytes(), peak_bytes(), hits(), misses()) never contend with
/// concurrent Put/Get/Release from refresh workers.
///
/// Put() enforces the budget strictly: the Controller (and the optimizer's
/// feasibility guarantee) must release entries before creating new ones,
/// so a failed Put is a plan bug, not a runtime condition to paper over.
class MemoryCatalog {
 public:
  /// Observes cross-job pin lifecycle: (content key, bytes, pinned).
  /// The RefreshService charges pinned shared bytes to the reading
  /// tenant's quota through this hook.
  using SharedPinListener =
      std::function<void(std::uint64_t, std::int64_t, bool)>;

  explicit MemoryCatalog(std::int64_t budget_bytes,
                         SharedCatalog* shared = nullptr);
  /// Releases every cross-job pin still held.
  ~MemoryCatalog();

  MemoryCatalog(const MemoryCatalog&) = delete;
  MemoryCatalog& operator=(const MemoryCatalog&) = delete;

  /// Binds `name` to its content fingerprint in the shared layer. Only
  /// bound names participate in cross-job publish/pin. Call before the
  /// run starts; not synchronized against concurrent Put/Get.
  void BindSharedKey(const std::string& name, std::uint64_t key);

  /// Installs the pin observer. Call before the run starts.
  void SetSharedPinListener(SharedPinListener listener);

  /// Inserts `table` under `name`, accounting `size` bytes (callers pass
  /// the table's in-memory footprint). Returns false if the entry would
  /// exceed the budget or the name already exists. With a shared layer,
  /// a successful Put also publishes the table under `name`'s bound
  /// content key (unpinned, LRU-evictable — never charged to this
  /// job's private budget twice).
  bool Put(const std::string& name, engine::TablePtr table,
           std::int64_t size);

  /// Returns the table or nullptr if not resident. Counts a hit or miss.
  /// With a shared layer, a private miss falls through to the cross-job
  /// store: a resident bound entry is pinned, retained for the rest of
  /// the run, counted as a hit *and* a cross-job hit, and its bytes
  /// added to cross_job_bytes_saved() on every read it serves.
  engine::TablePtr Get(const std::string& name) const;

  bool Contains(const std::string& name) const;

  /// Releases `name`, freeing its bytes. No-op if absent. The shared
  /// copy (if published) stays — cross-job residency outlives the
  /// producing job's private residency.
  void Release(const std::string& name);

  /// Cross-job output reuse: if `name`'s bound content key is resident
  /// in the shared layer, pins it, retains the pin for the rest of the
  /// run, counts a (cross-job) hit, and returns the table — the caller
  /// skips recomputing the node. `durable` (optional) receives whether
  /// the content is known to be on external storage (callers that skip
  /// their own write must check it). Returns nullptr without a shared
  /// layer, binding, or resident entry (no miss counted: the node is
  /// then simply executed).
  /// `bytes` (optional) receives the entry's accounted size, saving the
  /// caller a full-table ByteSize() walk on the reuse hot path.
  engine::TablePtr PinSharedOutput(const std::string& name,
                                   bool* durable = nullptr,
                                   std::int64_t* bytes = nullptr);

  /// Publishes `table` into the cross-job layer under `name`'s bound
  /// content key without touching the private, budget-charged entries —
  /// used for unflagged outputs, which are computed anyway and may serve
  /// other jobs. The caller guarantees the content is already on
  /// external storage (unflagged outputs write synchronously before
  /// their publish slot), so the entry is marked durable. No-op
  /// (returns false) without a shared layer or binding, or when the
  /// shared layer rejects the entry.
  bool PublishShared(const std::string& name,
                     const engine::TablePtr& table, std::int64_t size);

  /// Records that `name`'s published content reached external storage
  /// (its background materialization completed). No-op without a shared
  /// layer or binding.
  void MarkSharedDurable(const std::string& name);

  /// Failure unwind for an optimistic publish: condemns the shared entry
  /// this view published for `name` (stamp-guarded, see
  /// SharedCatalog::Invalidate) because its materialization failed or
  /// was cancelled before the write landed. A later republish or an
  /// already-durable entry is untouched. Returns true when an entry was
  /// quarantined.
  bool QuarantineShared(const std::string& name);

  /// Dispatch-time pin: ensures `name`'s bound shared entry (if any) is
  /// pinned by this view so it cannot be evicted between a scheduling
  /// decision and the read. Counts nothing; reads through Get() do the
  /// counting. Returns true if the entry is pinned after the call or
  /// privately resident; always false (without locking) when the view
  /// has no shared layer.
  bool PinSharedInput(const std::string& name);

  /// Drops every cross-job pin held by this view (end of run).
  void UnpinShared();

  /// Drops the single cross-job pin held for `name` — the run's last
  /// consumer of that input finished, so the entry may re-enter the
  /// shared LRU (and the tenant's charge is released) before the run
  /// ends. No-op if `name` holds no pin.
  void UnpinShared(const std::string& name);

  /// Reservation API for the parallel runtime: earmarks `bytes` for a
  /// future Put of `name` so concurrently *executing* nodes cannot
  /// jointly overshoot the budget while their outputs are still being
  /// produced. Returns false if resident + reserved + `bytes` would
  /// exceed the budget, if `bytes` is negative, or if `name` already
  /// holds a reservation. Reservations gate dispatch only: Put itself
  /// keeps enforcing the budget against resident bytes alone, so the
  /// sequential admission semantics (lazy release until Put fits) are
  /// unchanged. Callers cancel the reservation before the final Put —
  /// the actual output size replaces the estimate — or on failure.
  bool Reserve(const std::string& name, std::int64_t bytes);

  /// Drops `name`'s reservation. No-op if absent.
  void CancelReservation(const std::string& name);

  /// Sum of outstanding reservations (not counted in used_bytes()).
  std::int64_t reserved_bytes() const {
    return reserved_.load(std::memory_order_relaxed);
  }

  /// Denied Reserve() calls — how often the parallel runtime's dispatch
  /// was backpressured to keep in-flight flagged outputs within the
  /// budget. Monitoring only; survives Clear().
  std::int64_t reserve_denials() const {
    return reserve_denials_.load(std::memory_order_relaxed);
  }

  std::int64_t used_bytes() const {
    return used_.load(std::memory_order_relaxed);
  }
  std::int64_t budget_bytes() const { return budget_; }
  /// High-water mark of used_bytes over the catalog's lifetime.
  std::int64_t peak_bytes() const {
    return peak_.load(std::memory_order_relaxed);
  }
  std::size_t size() const;

  /// Lookup counters: a hit is a Get() served from memory, a miss a Get()
  /// that fell through to external storage. Survive Clear().
  std::int64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  std::int64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }

  /// Cross-job counters (subset of hits): resolutions and whole-output
  /// reuses served from the SharedCatalog, and the bytes those served
  /// in place of disk reads or recomputation. Survive Clear().
  std::int64_t cross_job_hits() const {
    return cross_job_hits_.load(std::memory_order_relaxed);
  }
  std::int64_t cross_job_bytes_saved() const {
    return cross_job_bytes_saved_.load(std::memory_order_relaxed);
  }
  /// Shared-layer bytes currently pinned by this view.
  std::int64_t pinned_shared_bytes() const;

  /// Drops all entries and cross-job pins (end of a refresh run).
  void Clear();

 private:
  struct Entry {
    engine::TablePtr table;
    std::int64_t size;
  };
  struct SharedPin {
    std::uint64_t key = 0;
    engine::TablePtr table;
    std::int64_t size = 0;
    /// The pin was reported through the listener (cross-job content);
    /// pins of the job's own published outputs are never charged.
    bool charged = false;
    /// Pin-time durability snapshot (content known to be on disk).
    bool durable = false;
  };

  /// Serves `name` from the cross-job layer (already-pinned first, then
  /// a fresh shared pin), counting `count_hit` ? hit+cross-job stats :
  /// nothing. `durable` (optional) receives the entry's pin-time
  /// durability. Returns nullptr when unavailable. Takes mutex_; fires
  /// the pin listener outside it.
  engine::TablePtr SharedLookup(const std::string& name, bool count_hit,
                                bool* durable = nullptr,
                                std::int64_t* bytes = nullptr) const;

  const std::int64_t budget_;
  SharedCatalog* const shared_;  // not owned; may be null
  SharedPinListener listener_;
  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;
  std::map<std::string, std::int64_t> reservations_;
  std::map<std::string, std::uint64_t> bindings_;
  /// Names this view itself published into the shared layer: reading
  /// them back is *not* a cross-job hit (no gauge, no tenant charge).
  std::set<std::string> self_published_;
  /// name → (content key, publish stamp) for entries this view inserted
  /// non-durably (write still in flight) — the claim tickets
  /// QuarantineShared() redeems on failure.
  std::map<std::string, std::pair<std::uint64_t, std::uint64_t>>
      publish_stamps_;
  mutable std::map<std::string, SharedPin> pinned_;
  std::atomic<std::int64_t> reserved_{0};
  mutable std::atomic<std::int64_t> reserve_denials_{0};
  std::atomic<std::int64_t> used_{0};
  std::atomic<std::int64_t> peak_{0};
  mutable std::atomic<std::int64_t> hits_{0};
  mutable std::atomic<std::int64_t> misses_{0};
  mutable std::atomic<std::int64_t> cross_job_hits_{0};
  mutable std::atomic<std::int64_t> cross_job_bytes_saved_{0};
};

}  // namespace sc::storage

#endif  // SC_STORAGE_MEMORY_CATALOG_H_
