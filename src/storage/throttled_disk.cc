#include "storage/throttled_disk.h"

#include <chrono>
#include <filesystem>
#include <stdexcept>
#include <thread>

#include "storage/format.h"

namespace sc::storage {

namespace fs = std::filesystem;

ThrottledDisk::ThrottledDisk(std::string root_dir, DiskProfile profile)
    : root_dir_(std::move(root_dir)), profile_(profile) {
  fs::create_directories(root_dir_);
}

std::string ThrottledDisk::PathFor(const std::string& name) const {
  return root_dir_ + "/" + name + ".sct";
}

double ThrottledDisk::Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void ThrottledDisk::PadToTarget(double start_monotonic, std::int64_t bytes,
                                double bandwidth) {
  if (!profile_.throttle) return;
  const double target =
      profile_.latency + static_cast<double>(bytes) / bandwidth;
  const double elapsed = Now() - start_monotonic;
  if (elapsed < target) {
    std::this_thread::sleep_for(
        std::chrono::duration<double>(target - elapsed));
  }
}

void ThrottledDisk::InjectWriteFailure(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  write_failures_.insert(name);
}

std::int64_t ThrottledDisk::WriteTable(const std::string& name,
                                       const engine::Table& table) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (auto it = write_failures_.find(name); it != write_failures_.end()) {
    write_failures_.erase(it);
    throw std::runtime_error("injected write failure for table " + name);
  }
  const double start = Now();
  const std::int64_t bytes = WriteTableFile(table, PathFor(name));
  PadToTarget(start, bytes, profile_.write_bw);
  total_write_seconds_ += Now() - start;
  return bytes;
}

engine::Table ThrottledDisk::ReadTable(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  const double start = Now();
  engine::Table table = ReadTableFile(PathFor(name));
  const std::int64_t bytes = SerializedSize(table);
  PadToTarget(start, bytes, profile_.read_bw);
  total_read_seconds_ += Now() - start;
  return table;
}

bool ThrottledDisk::Exists(const std::string& name) const {
  return fs::exists(PathFor(name));
}

void ThrottledDisk::Remove(const std::string& name) {
  std::error_code ec;
  fs::remove(PathFor(name), ec);
}

std::int64_t ThrottledDisk::FileSize(const std::string& name) const {
  std::error_code ec;
  const auto size = fs::file_size(PathFor(name), ec);
  if (ec) return -1;
  return static_cast<std::int64_t>(size);
}

}  // namespace sc::storage
