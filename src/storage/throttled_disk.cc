#include "storage/throttled_disk.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <optional>
#include <shared_mutex>
#include <stdexcept>
#include <thread>

#include "storage/format.h"

namespace sc::storage {

namespace fs = std::filesystem;

ThrottledDisk::ThrottledDisk(std::string root_dir, DiskProfile profile)
    : root_dir_(std::move(root_dir)), profile_(profile) {
  profile_.channels = std::max(1, profile_.channels);
  fs::create_directories(root_dir_);
}

std::string ThrottledDisk::PathFor(const std::string& name) const {
  return root_dir_ + "/" + name + ".sct";
}

double ThrottledDisk::Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void ThrottledDisk::PadToTarget(double start_monotonic, std::int64_t bytes,
                                double bandwidth) {
  if (!profile_.throttle) return;
  const double target =
      profile_.latency + static_cast<double>(bytes) / bandwidth;
  const double elapsed = Now() - start_monotonic;
  if (elapsed < target) {
    std::this_thread::sleep_for(
        std::chrono::duration<double>(target - elapsed));
  }
}

std::shared_ptr<std::shared_mutex> ThrottledDisk::FileLock(
    const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = file_locks_[name];
  if (slot == nullptr) slot = std::make_shared<std::shared_mutex>();
  return slot;
}

void ThrottledDisk::AcquireChannel() {
  std::unique_lock<std::mutex> lock(mutex_);
  channel_cv_.wait(lock,
                   [this] { return active_channels_ < profile_.channels; });
  ++active_channels_;
}

void ThrottledDisk::ReleaseChannel() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    --active_channels_;
  }
  channel_cv_.notify_one();
}

void ThrottledDisk::InjectWriteFailure(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  write_failures_.insert(name);
}

void ThrottledDisk::SetFaultInjector(fault::FaultInjector* injector) {
  std::lock_guard<std::mutex> lock(mutex_);
  fault_injector_ = injector;
}

std::int64_t ThrottledDisk::WriteTable(const std::string& name,
                                       const engine::Table& table) {
  // Lock order: per-file lock, then a channel slot. Writers exclude
  // everything on the same name; operations on distinct files overlap up
  // to the channel count.
  const std::shared_ptr<std::shared_mutex> file_lock = FileLock(name);
  std::unique_lock<std::shared_mutex> file_guard(*file_lock);
  fault::FaultInjector* injector = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (auto it = write_failures_.find(name);
        it != write_failures_.end()) {
      write_failures_.erase(it);
      throw std::runtime_error("injected write failure for table " + name);
    }
    injector = fault_injector_;
  }
  // Faults fire before any bytes land, so a failed write never leaves a
  // partial file behind (the Materializer still Remove()s defensively).
  if (injector != nullptr) {
    injector->MaybeThrow(fault::Site::kDiskWrite, name);
  }
  AcquireChannel();
  const double start = Now();
  std::int64_t bytes = 0;
  try {
    bytes = WriteTableFile(table, PathFor(name));
    // Post-write corruption probe: the write "succeeded" but the device
    // lied. Damage the landed file; a verified read must catch it.
    if (injector != nullptr) {
      const fault::CorruptionSpec spec =
          injector->ShouldCorrupt(fault::Site::kDiskWrite, name);
      if (spec.kind != fault::CorruptKind::kNone) {
        fault::CorruptFile(PathFor(name), spec);
      }
    }
    PadToTarget(start, bytes, profile_.write_bw);
  } catch (...) {
    ReleaseChannel();
    throw;
  }
  ReleaseChannel();
  const double elapsed = Now() - start;
  std::lock_guard<std::mutex> lock(mutex_);
  total_write_seconds_ += elapsed;
  return bytes;
}

engine::Table ThrottledDisk::ReadTable(const std::string& name) {
  const std::shared_ptr<std::shared_mutex> file_lock = FileLock(name);
  std::shared_lock<std::shared_mutex> file_guard(*file_lock);
  fault::FaultInjector* injector = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    injector = fault_injector_;
  }
  if (injector != nullptr) {
    injector->MaybeThrow(fault::Site::kDiskRead, name);
  }
  AcquireChannel();
  const double start = Now();
  std::optional<engine::Table> table;
  try {
    table.emplace(ReadTableFile(PathFor(name),
                                ReadOptions{profile_.verify_reads}));
    PadToTarget(start, SerializedSize(*table), profile_.read_bw);
  } catch (...) {
    ReleaseChannel();
    throw;
  }
  ReleaseChannel();
  const double elapsed = Now() - start;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    total_read_seconds_ += elapsed;
  }
  return std::move(*table);
}

bool ThrottledDisk::Exists(const std::string& name) const {
  return fs::exists(PathFor(name));
}

void ThrottledDisk::Remove(const std::string& name) {
  std::error_code ec;
  fs::remove(PathFor(name), ec);
  // Drop the per-file lock unless an operation still holds a reference,
  // so run-scoped table names don't accumulate locks forever.
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = file_locks_.find(name);
  if (it != file_locks_.end() && it->second.use_count() == 1) {
    file_locks_.erase(it);
  }
}

std::int64_t ThrottledDisk::FileSize(const std::string& name) const {
  std::error_code ec;
  const auto size = fs::file_size(PathFor(name), ec);
  if (ec) return -1;
  return static_cast<std::int64_t>(size);
}

double ThrottledDisk::total_read_seconds() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_read_seconds_;
}

double ThrottledDisk::total_write_seconds() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_write_seconds_;
}

}  // namespace sc::storage
