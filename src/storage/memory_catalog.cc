#include "storage/memory_catalog.h"

#include <algorithm>

namespace sc::storage {

MemoryCatalog::MemoryCatalog(std::int64_t budget_bytes)
    : budget_(budget_bytes) {}

bool MemoryCatalog::Put(const std::string& name, engine::TablePtr table,
                        std::int64_t size) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::int64_t used = used_.load(std::memory_order_relaxed);
  if (size < 0 || used + size > budget_) return false;
  auto [it, inserted] = entries_.emplace(name, Entry{std::move(table), size});
  if (!inserted) return false;
  const std::int64_t now = used + size;
  used_.store(now, std::memory_order_relaxed);
  // The mutex serializes writers, so a plain max-update suffices.
  if (now > peak_.load(std::memory_order_relaxed)) {
    peak_.store(now, std::memory_order_relaxed);
  }
  return true;
}

engine::TablePtr MemoryCatalog::Get(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second.table;
}

bool MemoryCatalog::Contains(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.count(name) > 0;
}

void MemoryCatalog::Release(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(name);
  if (it == entries_.end()) return;
  used_.fetch_sub(it->second.size, std::memory_order_relaxed);
  entries_.erase(it);
}

bool MemoryCatalog::Reserve(const std::string& name, std::int64_t bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (bytes < 0) return false;
  const std::int64_t used = used_.load(std::memory_order_relaxed);
  const std::int64_t reserved = reserved_.load(std::memory_order_relaxed);
  if (used + reserved + bytes > budget_) {
    reserve_denials_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  auto [it, inserted] = reservations_.emplace(name, bytes);
  if (!inserted) return false;
  reserved_.store(reserved + bytes, std::memory_order_relaxed);
  return true;
}

void MemoryCatalog::CancelReservation(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = reservations_.find(name);
  if (it == reservations_.end()) return;
  reserved_.fetch_sub(it->second, std::memory_order_relaxed);
  reservations_.erase(it);
}

std::size_t MemoryCatalog::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

void MemoryCatalog::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  reservations_.clear();
  used_.store(0, std::memory_order_relaxed);
  reserved_.store(0, std::memory_order_relaxed);
}

}  // namespace sc::storage
