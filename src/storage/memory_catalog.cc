#include "storage/memory_catalog.h"

#include <algorithm>
#include <optional>
#include <utility>

namespace sc::storage {

MemoryCatalog::MemoryCatalog(std::int64_t budget_bytes,
                             SharedCatalog* shared)
    : budget_(budget_bytes), shared_(shared) {}

MemoryCatalog::~MemoryCatalog() { UnpinShared(); }

void MemoryCatalog::BindSharedKey(const std::string& name,
                                  std::uint64_t key) {
  std::lock_guard<std::mutex> lock(mutex_);
  bindings_[name] = key;
}

void MemoryCatalog::SetSharedPinListener(SharedPinListener listener) {
  listener_ = std::move(listener);
}

bool MemoryCatalog::Put(const std::string& name, engine::TablePtr table,
                        std::int64_t size) {
  std::uint64_t key = 0;
  bool publish = false;
  std::optional<SharedPin> released;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const std::int64_t used = used_.load(std::memory_order_relaxed);
    if (size < 0 || used + size > budget_) return false;
    auto [it, inserted] = entries_.emplace(name, Entry{table, size});
    if (!inserted) return false;
    const std::int64_t now = used + size;
    used_.store(now, std::memory_order_relaxed);
    // The mutex serializes writers, so a plain max-update suffices.
    if (now > peak_.load(std::memory_order_relaxed)) {
      peak_.store(now, std::memory_order_relaxed);
    }
    if (shared_ != nullptr) {
      auto b = bindings_.find(name);
      if (b != bindings_.end()) {
        key = b->second;
        publish = true;
        self_published_.insert(name);
      }
      // A reused output now held privately is funded by the job's grant:
      // drop the cross-job pin so the same bytes are not also charged to
      // the tenant's shared-residency accounting.
      auto pin = pinned_.find(name);
      if (pin != pinned_.end()) {
        released = std::move(pin->second);
        pinned_.erase(pin);
      }
    }
  }
  // Outside the view lock: the shared layer has its own mutex, and a
  // rejected publish (shared pressure) never affects private admission.
  if (publish) {
    std::uint64_t stamp = 0;
    if (shared_->Publish(key, std::move(table), size, /*durable=*/false,
                         &stamp) &&
        stamp != 0) {
      // Remember the claim ticket: if this output's materialization
      // later fails, QuarantineShared(name) condemns exactly this entry.
      std::lock_guard<std::mutex> lock(mutex_);
      publish_stamps_[name] = {key, stamp};
    }
  }
  if (released.has_value()) {
    shared_->Unpin(released->key);
    if (released->charged && listener_) {
      listener_(released->key, released->size, false);
    }
  }
  return true;
}

bool MemoryCatalog::PublishShared(const std::string& name,
                                  const engine::TablePtr& table,
                                  std::int64_t size) {
  if (shared_ == nullptr) return false;
  std::uint64_t key = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = bindings_.find(name);
    if (it == bindings_.end()) return false;
    key = it->second;
    self_published_.insert(name);
  }
  return shared_->Publish(key, table, size, /*durable=*/true);
}

void MemoryCatalog::MarkSharedDurable(const std::string& name) {
  if (shared_ == nullptr) return;
  std::uint64_t key = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = bindings_.find(name);
    if (it == bindings_.end()) return;
    key = it->second;
    publish_stamps_.erase(name);  // write landed: nothing to quarantine
  }
  shared_->MarkDurable(key);
}

bool MemoryCatalog::QuarantineShared(const std::string& name) {
  if (shared_ == nullptr) return false;
  std::uint64_t key = 0;
  std::uint64_t stamp = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = publish_stamps_.find(name);
    if (it == publish_stamps_.end()) return false;
    key = it->second.first;
    stamp = it->second.second;
    publish_stamps_.erase(it);
  }
  return shared_->Invalidate(key, stamp);
}

engine::TablePtr MemoryCatalog::SharedLookup(const std::string& name,
                                             bool count_hit,
                                             bool* durable,
                                             std::int64_t* bytes) const {
  std::uint64_t key = 0;
  std::int64_t size = 0;
  engine::TablePtr table;
  bool fresh_charged_pin = false;
  bool cross_job = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto pinned = pinned_.find(name);
    if (pinned != pinned_.end()) {
      table = pinned->second.table;
      size = pinned->second.size;
      cross_job = pinned->second.charged;
      if (durable != nullptr) *durable = pinned->second.durable;
    } else if (shared_ != nullptr) {
      auto binding = bindings_.find(name);
      if (binding != bindings_.end()) {
        // view mutex → shared mutex; the shared layer never calls back.
        // Speculative (non-counting) lookups keep the shared layer's
        // hit-rate monitoring meaningful.
        bool entry_durable = false;
        table = shared_->Pin(binding->second, &size, count_hit,
                             &entry_durable);
        if (table != nullptr) {
          key = binding->second;
          // Reading back an output this view itself published is a
          // memory-speed win but not cross-job service: no gauge, no
          // tenant charge.
          cross_job = self_published_.count(name) == 0;
          pinned_.emplace(name, SharedPin{key, table, size, cross_job,
                                          entry_durable});
          fresh_charged_pin = cross_job;
          if (durable != nullptr) *durable = entry_durable;
        }
      }
    }
    if (table != nullptr && count_hit) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      if (cross_job) {
        cross_job_hits_.fetch_add(1, std::memory_order_relaxed);
        cross_job_bytes_saved_.fetch_add(size,
                                         std::memory_order_relaxed);
      }
    }
  }
  if (table != nullptr && bytes != nullptr) *bytes = size;
  if (fresh_charged_pin && listener_) listener_(key, size, true);
  return table;
}

engine::TablePtr MemoryCatalog::Get(const std::string& name) const {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(name);
    if (it != entries_.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second.table;
    }
    // Without a shared layer a private miss is final — the PR-3 resolve
    // hot path keeps its single lock acquisition.
    if (shared_ == nullptr) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      return nullptr;
    }
  }
  engine::TablePtr shared = SharedLookup(name, /*count_hit=*/true);
  if (shared != nullptr) return shared;
  misses_.fetch_add(1, std::memory_order_relaxed);
  return nullptr;
}

engine::TablePtr MemoryCatalog::PinSharedOutput(const std::string& name,
                                                bool* durable,
                                                std::int64_t* bytes) {
  return SharedLookup(name, /*count_hit=*/true, durable, bytes);
}

bool MemoryCatalog::PinSharedInput(const std::string& name) {
  if (shared_ == nullptr) return false;  // lock-free on the PR-3 path
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (entries_.count(name) > 0) return true;  // privately resident
  }
  return SharedLookup(name, /*count_hit=*/false) != nullptr;
}

void MemoryCatalog::UnpinShared(const std::string& name) {
  std::optional<SharedPin> pin;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = pinned_.find(name);
    if (it == pinned_.end()) return;
    pin = std::move(it->second);
    pinned_.erase(it);
  }
  shared_->Unpin(pin->key);
  if (pin->charged && listener_) listener_(pin->key, pin->size, false);
}

void MemoryCatalog::UnpinShared() {
  std::map<std::string, SharedPin> pins;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    pins.swap(pinned_);
  }
  for (const auto& [name, pin] : pins) {
    shared_->Unpin(pin.key);  // non-null: pins exist only with a shared layer
    if (pin.charged && listener_) listener_(pin.key, pin.size, false);
  }
}

std::int64_t MemoryCatalog::pinned_shared_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::int64_t total = 0;
  for (const auto& [name, pin] : pinned_) total += pin.size;
  return total;
}

bool MemoryCatalog::Contains(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.count(name) > 0;
}

void MemoryCatalog::Release(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(name);
  if (it == entries_.end()) return;
  used_.fetch_sub(it->second.size, std::memory_order_relaxed);
  entries_.erase(it);
}

bool MemoryCatalog::Reserve(const std::string& name, std::int64_t bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (bytes < 0) return false;
  const std::int64_t used = used_.load(std::memory_order_relaxed);
  const std::int64_t reserved = reserved_.load(std::memory_order_relaxed);
  if (used + reserved + bytes > budget_) {
    reserve_denials_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  auto [it, inserted] = reservations_.emplace(name, bytes);
  if (!inserted) return false;
  reserved_.store(reserved + bytes, std::memory_order_relaxed);
  return true;
}

void MemoryCatalog::CancelReservation(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = reservations_.find(name);
  if (it == reservations_.end()) return;
  reserved_.fetch_sub(it->second, std::memory_order_relaxed);
  reservations_.erase(it);
}

std::size_t MemoryCatalog::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

void MemoryCatalog::Clear() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.clear();
    reservations_.clear();
    used_.store(0, std::memory_order_relaxed);
    reserved_.store(0, std::memory_order_relaxed);
  }
  UnpinShared();
}

}  // namespace sc::storage
