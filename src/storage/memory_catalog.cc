#include "storage/memory_catalog.h"

#include <algorithm>

namespace sc::storage {

MemoryCatalog::MemoryCatalog(std::int64_t budget_bytes)
    : budget_(budget_bytes) {}

bool MemoryCatalog::Put(const std::string& name, engine::TablePtr table,
                        std::int64_t size) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (size < 0 || used_ + size > budget_) return false;
  auto [it, inserted] = entries_.emplace(name, Entry{std::move(table), size});
  if (!inserted) return false;
  used_ += size;
  peak_ = std::max(peak_, used_);
  return true;
}

engine::TablePtr MemoryCatalog::Get(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : it->second.table;
}

bool MemoryCatalog::Contains(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.count(name) > 0;
}

void MemoryCatalog::Release(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(name);
  if (it == entries_.end()) return;
  used_ -= it->second.size;
  entries_.erase(it);
}

std::int64_t MemoryCatalog::used_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return used_;
}

std::int64_t MemoryCatalog::peak_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return peak_;
}

std::size_t MemoryCatalog::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

void MemoryCatalog::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  used_ = 0;
}

}  // namespace sc::storage
