#ifndef SC_STORAGE_SHARED_CATALOG_H_
#define SC_STORAGE_SHARED_CATALOG_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "engine/table.h"
#include "fault/fault.h"
#include "obs/trace.h"
#include "storage/spill_manifest.h"

namespace sc::storage {

/// Spill/refill configuration for SharedCatalog. An empty directory
/// disables spilling entirely (evictions drop entries, the pre-spill
/// behaviour). With a directory set, entries evicted under budget
/// pressure are demoted to compressed SCC1 files there and lazily
/// refilled — counted as spill_refills, not recomputes — on their next
/// Pin.
struct SpillOptions {
  /// Directory for spill files (created if missing); empty = disabled.
  std::string directory;
  /// Cap on total compressed spill bytes on disk; <= 0 = unbounded.
  /// When exceeded, the oldest spill files are dropped (those entries
  /// fall back to recompute, exactly as without spilling).
  std::int64_t max_bytes = 0;
  /// Crash-recovery mode. When true the spill tier is *durable*: spill
  /// files and the manifest journal survive catalog destruction, and a
  /// new catalog pointed at the same directory re-registers every
  /// manifest-live file as a warm spilled entry (content fingerprints
  /// are stable across restarts, so a recovered entry serves the same
  /// cross-job hits it would have before the crash). Recovered files
  /// are size-checked at adoption and fully checksum-verified on their
  /// first refill — a damaged file is deleted and counted, never
  /// served. Files in the directory that the manifest does not name are
  /// orphans (crash between file write and journal append) and are
  /// removed at startup. When false (default), the prior lifecycle
  /// stands: the directory is treated as scratch, wiped at destruction.
  bool recover = false;
  /// Journal size that triggers an atomic rotate/compact of the spill
  /// manifest (rewrite as the live set); <= 0 compacts on every append.
  std::int64_t manifest_compact_bytes = 64 * 1024;
};

/// Cross-job shared residency layer: a content-keyed, budget-bounded
/// table store that outlives any single refresh run. Keys are per-node
/// content fingerprints (graph::FingerprintNodes — MV name + upstream
/// lineage), so entries published by one job are directly readable by
/// every concurrent or later job refreshing the same content, no matter
/// which tenant produced them.
///
/// Lifetime model, by contrast with the per-job MemoryCatalog view:
///
///  - Publish() inserts an entry unpinned. Under budget pressure,
///    *unpinned* entries are evicted LRU-style to make room — a full
///    shared layer is normal operating pressure, not a plan bug.
///  - Pin() hands out the table and takes a reference: pinned entries
///    are never evicted, so a job can rely on a cross-job input staying
///    resident from dispatch until it drops the pin (Unpin).
///
/// Invariants (asserted by shared_catalog_test under TSAN): used bytes
/// never exceed the budget, and a pinned entry is never evicted.
/// Thread-safe; monitoring reads are atomics and never contend.
class SharedCatalog {
 public:
  /// `negative_lookup_damp_limit` bounds repeated miss-path probes per
  /// key per epoch (an epoch = the interval between successful
  /// publishes): the first N misses of a key count as misses, every
  /// further probe of the same still-absent key counts as *damped*
  /// instead — repeated fingerprint probes for content nobody publishes
  /// (private workloads, cold tenants) stop distorting the miss-rate
  /// monitoring, and the damped counter itself exposes how much probe
  /// traffic the shared layer absorbs for nothing. A publish starts a
  /// new epoch (fresh content can turn any miss into a hit).
  /// <= 0 disables damping.
  ///
  /// `spill` (see SpillOptions) demotes evicted entries to compressed
  /// on-disk files instead of dropping them; defaults to disabled.
  explicit SharedCatalog(std::int64_t budget_bytes,
                         int negative_lookup_damp_limit = 8,
                         SpillOptions spill = {});

  /// Removes this catalog's spill files and manifest (best-effort) —
  /// unless SpillOptions::recover is set, in which case both are left
  /// behind for the next catalog to adopt.
  ~SharedCatalog();

  SharedCatalog(const SharedCatalog&) = delete;
  SharedCatalog& operator=(const SharedCatalog&) = delete;

  /// Mirrors publish / evict / reject lifecycle moments into `trace` as
  /// instant events (category "shared"). Not owned; call before
  /// concurrent use; nullptr detaches.
  void SetTraceRecorder(obs::TraceRecorder* trace) { trace_ = trace; }

  /// Attaches a seeded fault injector probed at Site::kCatalogPublish.
  /// A firing rule degrades the publish into a reject (returns false)
  /// rather than throwing — losing shared residency is the designed
  /// overload behaviour, so injected publish faults must never corrupt a
  /// run. nullptr detaches. Call before concurrent use.
  void SetFaultInjector(fault::FaultInjector* injector) {
    fault_injector_ = injector;
  }

  /// Inserts `table` under content key `key`, accounting `size` bytes.
  /// Evicts unpinned entries (least-recently-used first) as needed to
  /// fit. Returns false if the entry still cannot fit (pinned bytes or
  /// the entry's own size exceed the budget) or `size` is negative.
  /// Publishing an existing key refreshes its recency and returns true —
  /// content keys are immutable, so the first publisher's table stands
  /// (`durable` still upgrades). `durable` records whether the content
  /// already sits on external storage; publishers whose write is still
  /// in flight pass false and MarkDurable() once it lands, so readers
  /// know when skipping their own write is safe.
  /// `stamp` (optional) receives a unique per-insert publish stamp; a
  /// refresh of an existing key returns the standing entry's stamp. The
  /// stamp is the publisher's claim ticket for Invalidate(): it lets a
  /// failed materialization quarantine exactly the entry it published
  /// and never a later republish of the same content.
  bool Publish(std::uint64_t key, engine::TablePtr table,
               std::int64_t size, bool durable = false,
               std::uint64_t* stamp = nullptr);

  /// Records that `key`'s content has reached external storage (the
  /// publisher's materialization completed). No-op if absent.
  void MarkDurable(std::uint64_t key);

  /// Returns the table for `key` and takes a pin reference (entry
  /// becomes unevictable until the matching Unpin), or nullptr on a
  /// miss. `size` (optional) receives the entry's accounted bytes on a
  /// hit, `durable` (optional) whether the content is known to be on
  /// external storage. Counts a hit or miss unless `count` is false —
  /// speculative probes (dispatch-time input pinning) must not distort
  /// the layer's hit-rate monitoring.
  engine::TablePtr Pin(std::uint64_t key, std::int64_t* size = nullptr,
                       bool count = true, bool* durable = nullptr);

  /// Drops one pin reference of `key`; at zero references the entry
  /// re-enters the LRU list as most recently used. No-op if absent.
  void Unpin(std::uint64_t key);

  /// Quarantines the entry for `key` if it still carries publish stamp
  /// `stamp` and its write never landed (durable == false): the entry
  /// stops being served immediately and is erased once the last pin
  /// drops (immediately when unpinned). Called by the failure-unwind
  /// path when a materialization dies after its optimistic publish, so
  /// the shared layer only ever serves complete, persisted MVs. A
  /// durable or republished (stamp mismatch) entry is left alone.
  /// Returns true when an entry was quarantined.
  bool Invalidate(std::uint64_t key, std::uint64_t stamp);

  /// True if `key` is resident right now (no pin taken, no hit/miss
  /// counted). A sharing-aware optimizer pre-pass uses this snapshot;
  /// the entry may still be evicted before the run reads it, so runs
  /// pin at dispatch.
  bool Contains(std::uint64_t key) const;

  /// Residency snapshot for a whole key set under one lock acquisition
  /// (the per-job pre-pass probe; N Contains calls would contend with
  /// every worker's Pin/Publish path N times).
  std::vector<bool> ContainsAll(
      const std::vector<std::uint64_t>& keys) const;

  std::int64_t budget_bytes() const { return budget_; }
  std::int64_t used_bytes() const {
    return used_.load(std::memory_order_relaxed);
  }
  /// Bytes of entries currently holding at least one pin.
  std::int64_t pinned_bytes() const {
    return pinned_.load(std::memory_order_relaxed);
  }
  std::int64_t peak_bytes() const {
    return peak_.load(std::memory_order_relaxed);
  }
  std::size_t size() const;

  /// Lookup/lifetime counters (survive Clear): hits/misses count Pin()
  /// calls, publishes successful inserts, rejects failed ones, and
  /// evictions entries dropped under budget pressure.
  std::int64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  std::int64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }
  std::int64_t publishes() const {
    return publishes_.load(std::memory_order_relaxed);
  }
  std::int64_t rejects() const {
    return rejects_.load(std::memory_order_relaxed);
  }
  std::int64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  /// Entries quarantined by Invalidate() (failed materializations).
  std::int64_t quarantines() const {
    return quarantines_.load(std::memory_order_relaxed);
  }
  /// Miss-path probes short-circuited by negative-lookup damping (the
  /// key had already missed `negative_lookup_damp_limit` times this
  /// epoch). Not counted in misses().
  std::int64_t damped_lookups() const {
    return damped_.load(std::memory_order_relaxed);
  }
  /// Evictions demoted to a compressed spill file instead of dropped
  /// (subset of evictions()).
  std::int64_t spills() const {
    return spills_.load(std::memory_order_relaxed);
  }
  /// Pins served by reading a spill file back instead of recomputing
  /// (each also counts as a hit).
  std::int64_t spill_refills() const {
    return spill_refills_.load(std::memory_order_relaxed);
  }
  /// Compressed bytes currently parked in spill files.
  std::int64_t spill_bytes() const {
    return spill_bytes_.load(std::memory_order_relaxed);
  }
  /// Entries currently spilled (on disk, not resident).
  std::size_t spilled_entries() const;
  /// Damaged spill files detected and removed instead of served: size
  /// mismatches at recovery, checksum/parse failures (CorruptFileError)
  /// on refill, and manifest records whose file vanished.
  std::int64_t corrupt_files() const {
    return corrupt_files_.load(std::memory_order_relaxed);
  }
  /// Spilled entries adopted from the manifest at construction
  /// (SpillOptions::recover), and their compressed bytes.
  std::int64_t recovered_entries() const {
    return recovered_entries_.load(std::memory_order_relaxed);
  }
  std::int64_t recovered_bytes() const {
    return recovered_bytes_.load(std::memory_order_relaxed);
  }
  /// Startup hygiene: files in the spill directory the manifest did not
  /// name (crash between file write and journal append), removed.
  std::int64_t orphans_removed() const {
    return orphans_removed_.load(std::memory_order_relaxed);
  }
  /// Atomic rotate/compact cycles of the spill manifest journal.
  std::int64_t manifest_compactions() const {
    return manifest_ != nullptr ? manifest_->compactions() : 0;
  }
  /// Publish epoch: bumps on every successful publish (and Clear), the
  /// boundary at which negative-lookup damping forgets past misses.
  std::uint64_t epoch() const {
    return epoch_.load(std::memory_order_relaxed);
  }

  /// Drops every *unpinned* entry; pinned entries stay (a job still
  /// holds them).
  void Clear();

 private:
  struct Entry {
    engine::TablePtr table;
    std::int64_t size = 0;
    std::int64_t pins = 0;
    /// Content has reached external storage (publisher's write landed).
    bool durable = false;
    /// Condemned by Invalidate() while pinned: served to nobody new,
    /// erased when the last pin drops.
    bool quarantined = false;
    /// Unique per-insert publish stamp (Invalidate's ABA guard).
    std::uint64_t stamp = 0;
    /// Position in lru_; valid iff pins == 0.
    std::list<std::uint64_t>::iterator lru;
  };

  /// One evicted-to-disk entry. Carries the publish stamp and durable
  /// flag across the spill so Invalidate() and a refill behave exactly
  /// as if the entry had stayed resident.
  struct SpillRecord {
    std::string path;
    /// File name relative to the spill directory (the manifest key for
    /// this file).
    std::string file;
    std::int64_t file_bytes = 0;  // compressed bytes on disk
    bool durable = false;
    std::uint64_t stamp = 0;
    /// Position in spill_lru_ (front = most recently spilled).
    std::list<std::uint64_t>::iterator lru;
  };

  /// Erases the LRU tail entry, spilling it to disk first when spill is
  /// enabled (a failed spill write degrades to a plain drop). Requires
  /// mutex_; lru_ must be non-empty.
  void EvictOneLocked();
  /// Counts a miss or a damped probe for absent `key`. Requires mutex_.
  void CountMissLocked(std::uint64_t key);
  /// Deletes `key`'s spill file and record, if any. Requires mutex_.
  void EraseSpillLocked(std::uint64_t key);
  /// Drops oldest spill files until within spill_.max_bytes. Requires
  /// mutex_.
  void EnforceSpillCapLocked();
  /// Refills `key` from its spill record (file reads happen under
  /// mutex_ — acceptable for the spill tier, noted as a follow-up) and
  /// returns the pinned table, or nullptr when the refill cannot fit or
  /// the file is unreadable. Requires mutex_.
  engine::TablePtr RefillLocked(std::uint64_t key, std::int64_t* size,
                                bool count, bool* durable);
  /// Construction-time crash recovery: adopts manifest-live spill files
  /// (size-checked now, checksum-verified on first refill), drops and
  /// counts damaged ones, removes orphan files, and advances the stamp
  /// and file-name counters past everything recovered. Runs before any
  /// concurrent use, so no lock is required.
  void RecoverSpillDirectory(SpillManifest::OpenResult opened);

  const std::int64_t budget_;
  const int damp_limit_;
  const SpillOptions spill_;
  bool spill_enabled_ = false;
  obs::TraceRecorder* trace_ = nullptr;  // not owned; may be null
  fault::FaultInjector* fault_injector_ = nullptr;  // not owned
  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, Entry> entries_;
  std::list<std::uint64_t> lru_;  // unpinned keys, front = most recent
  std::atomic<std::int64_t> used_{0};
  std::atomic<std::int64_t> pinned_{0};
  std::atomic<std::int64_t> peak_{0};
  mutable std::atomic<std::int64_t> hits_{0};
  mutable std::atomic<std::int64_t> misses_{0};
  std::atomic<std::int64_t> publishes_{0};
  std::atomic<std::int64_t> rejects_{0};
  std::atomic<std::int64_t> evictions_{0};
  std::atomic<std::int64_t> quarantines_{0};
  mutable std::atomic<std::int64_t> damped_{0};
  std::atomic<std::int64_t> spills_{0};
  std::atomic<std::int64_t> spill_refills_{0};
  std::atomic<std::int64_t> spill_bytes_{0};
  std::atomic<std::int64_t> corrupt_files_{0};
  std::atomic<std::int64_t> recovered_entries_{0};
  std::atomic<std::int64_t> recovered_bytes_{0};
  std::atomic<std::int64_t> orphans_removed_{0};
  std::atomic<std::uint64_t> epoch_{0};
  std::uint64_t next_stamp_ = 1;  // guarded by mutex_; 0 = "no stamp"
  std::uint64_t next_spill_file_ = 0;  // guarded by mutex_
  /// Spilled (on-disk) entries; disjoint from entries_. Guarded by
  /// mutex_.
  std::unordered_map<std::uint64_t, SpillRecord> spilled_;
  std::list<std::uint64_t> spill_lru_;  // front = most recently spilled
  /// Journal of the spill directory; non-null iff spill is enabled.
  /// Mutations happen under mutex_ (ctor/dtor excepted).
  std::unique_ptr<SpillManifest> manifest_;
  /// Per-key miss bookkeeping for negative-lookup damping: stamped with
  /// the epoch the count belongs to, so a publish invalidates every
  /// stale count in O(1) (no sweep). Guarded by mutex_.
  mutable std::unordered_map<std::uint64_t,
                             std::pair<std::uint64_t, int>>
      miss_counts_;
};

}  // namespace sc::storage

#endif  // SC_STORAGE_SHARED_CATALOG_H_
