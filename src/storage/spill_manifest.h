#ifndef SC_STORAGE_SPILL_MANIFEST_H_
#define SC_STORAGE_SPILL_MANIFEST_H_

#include <atomic>
#include <cstdint>
#include <fstream>
#include <string>
#include <unordered_map>
#include <vector>

namespace sc::storage {

/// Append-only journal of the SharedCatalog spill directory: the
/// recovery authority for which spill files hold live, complete entries.
/// One text line per operation, each sealed by its own CRC32C:
///
///   A <key> <file_bytes> <stamp> <durable> <file_name> <crc32c-hex>
///   R <key> <crc32c-hex>
///
/// `A` records (re)register a spill file under its content fingerprint;
/// `R` records tombstone one (refill consumed it, cap eviction, explicit
/// invalidation). Later records win, so an append after a tombstone
/// revives the key. Every append is flushed before the caller proceeds —
/// the journal must name a file before the catalog relies on it.
///
/// Crash tolerance: a torn final line (the classic crash-mid-append
/// shape) and flipped bits anywhere simply fail their line checksum; the
/// loader skips and counts such lines and keeps parsing, so one damaged
/// record never takes down the rest of the directory.
///
/// When the journal grows past `compact_threshold_bytes`, the next
/// mutation rewrites it as the live `A` set into a temp file and
/// atomically renames over the old journal (rotate/compact), so the
/// journal stays proportional to the live population, not the churn.
///
/// Not internally synchronized: the owning SharedCatalog serializes all
/// calls under its own mutex. `compactions()` alone is readable without
/// that lock (monitoring gauge).
class SpillManifest {
 public:
  struct Entry {
    std::uint64_t key = 0;
    /// Compressed size of the spill file when it was written (recovery
    /// cross-checks it against the file on disk before trusting it).
    std::int64_t file_bytes = 0;
    /// The entry's publish stamp, carried across restart so
    /// Invalidate()'s ABA guard keeps working on recovered entries.
    std::uint64_t stamp = 0;
    bool durable = false;
    /// File name relative to the spill directory (no separators).
    std::string file;
  };

  struct OpenResult {
    std::vector<Entry> live;
    /// Journal lines skipped for a failed parse or checksum (torn
    /// appends, bit rot).
    std::int64_t corrupt_lines = 0;
  };

  /// The journal lives at `<directory>/manifest.scm`.
  explicit SpillManifest(std::string directory,
                         std::int64_t compact_threshold_bytes = 64 * 1024);

  SpillManifest(const SpillManifest&) = delete;
  SpillManifest& operator=(const SpillManifest&) = delete;

  /// Loads the existing journal (tolerating damage as documented above)
  /// and opens the append stream. Returns the surviving live set in
  /// journal order. Call exactly once, before any mutation.
  OpenResult Open();

  /// Appends (or refreshes) a live record. Flushed before returning.
  void Append(const Entry& entry);

  /// Appends a tombstone for `key`. No-op if the key is not live.
  void Remove(std::uint64_t key);

  /// Deletes the journal file (explicit teardown of the spill tier).
  void Erase();

  std::int64_t compactions() const {
    return compactions_.load(std::memory_order_relaxed);
  }
  /// Current journal size in bytes (live records + not-yet-compacted
  /// churn).
  std::int64_t bytes() const { return bytes_; }
  std::size_t live_entries() const { return live_.size(); }
  const std::string& path() const { return path_; }

  static constexpr const char kFileName[] = "manifest.scm";

 private:
  void AppendLine(const std::string& body);
  /// Rewrites the journal as the live set when past the threshold.
  void MaybeCompact();
  /// Unconditional rotate/compact: atomically rewrites the journal as
  /// the live `A` set (also the Open-time repair for damaged journals).
  void Compact();

  const std::string directory_;
  const std::string path_;
  const std::int64_t compact_threshold_;
  std::ofstream out_;
  std::int64_t bytes_ = 0;
  std::unordered_map<std::uint64_t, Entry> live_;
  std::atomic<std::int64_t> compactions_{0};
};

}  // namespace sc::storage

#endif  // SC_STORAGE_SPILL_MANIFEST_H_
