#ifndef SC_STORAGE_FORMAT_H_
#define SC_STORAGE_FORMAT_H_

#include <iosfwd>
#include <string>

#include "engine/table.h"

namespace sc::storage {

/// Binary columnar table format ("SCT1"): the stand-in for the paper's
/// Parquet/ORC files on external storage. Layout:
///
///   magic "SCT1" | u32 num_cols | u64 num_rows
///   per column: u32 name_len | name | u8 type | payload
///   payload: int64/float64 -> raw array; string -> per value u32 len+bytes
///
/// All integers little-endian (host order; the format is not meant for
/// cross-architecture exchange).

/// Serializes `table` to `out`. Returns bytes written.
std::int64_t WriteTable(const engine::Table& table, std::ostream& out);

/// Deserializes a table from `in`. Throws std::runtime_error on a
/// malformed stream.
engine::Table ReadTable(std::istream& in);

/// Size in bytes WriteTable would produce (without serializing).
std::int64_t SerializedSize(const engine::Table& table);

/// File convenience wrappers; throw std::runtime_error on I/O failure.
std::int64_t WriteTableFile(const engine::Table& table,
                            const std::string& path);
engine::Table ReadTableFile(const std::string& path);

}  // namespace sc::storage

#endif  // SC_STORAGE_FORMAT_H_
