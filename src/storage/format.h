#ifndef SC_STORAGE_FORMAT_H_
#define SC_STORAGE_FORMAT_H_

#include <iosfwd>
#include <string>

#include "engine/table.h"

namespace sc::storage {

/// Binary columnar table format ("SCT1"): the stand-in for the paper's
/// Parquet/ORC files on external storage. Layout:
///
///   magic "SCT1" | u32 num_cols | u64 num_rows
///   per column: u32 name_len | name | u8 type | payload
///   payload: int64/float64 -> raw array; string -> per value u32 len+bytes
///
/// All integers little-endian (host order; the format is not meant for
/// cross-architecture exchange). Dictionary-encoded string columns are
/// written decoded, so SCT1 bytes are representation-independent.

/// Serializes `table` to `out`. Returns bytes written.
std::int64_t WriteTable(const engine::Table& table, std::ostream& out);

/// Deserializes a table from `in`. Throws std::runtime_error on a
/// malformed stream.
engine::Table ReadTable(std::istream& in);

/// Size in bytes WriteTable would produce (without serializing).
std::int64_t SerializedSize(const engine::Table& table);

/// File convenience wrappers; throw std::runtime_error on I/O failure.
std::int64_t WriteTableFile(const engine::Table& table,
                            const std::string& path);
engine::Table ReadTableFile(const std::string& path);

/// Compressed columnar block format ("SCC1"): what SharedCatalog spill
/// files use, sized for residency rather than exchange. Layout:
///
///   magic "SCC1" | u32 num_cols | u64 num_rows
///   per column: u32 name_len | name | u8 type | u8 encoding | payload
///
/// Encodings:
///   0 raw      — float64 payload, raw array (doubles round-trip by bit
///                pattern; no lossy packing).
///   1 for-varint — int64 payload: raw i64 frame minimum, then one
///                zig-zag LEB128 varint per value of (v - min). Cold
///                surrogate-key/date columns shrink to 1-2 bytes/value.
///   2 dict     — string payload: u32 dict_size, dictionary entries
///                (u32 len + bytes, sorted unique), then one LEB128
///                varint code per row. Plain string columns are
///                dictionary-encoded on write; the reader always
///                returns a dictionary-encoded engine::Column, so a
///                refilled entry stays compressed in memory too.

/// Serializes `table` compressed to `out`. Returns bytes written.
std::int64_t WriteTableCompressed(const engine::Table& table,
                                  std::ostream& out);

/// Deserializes an SCC1 stream. String columns come back
/// dictionary-encoded. Throws std::runtime_error on a malformed stream.
engine::Table ReadTableCompressed(std::istream& in);

/// File wrappers with the same write-then-rename atomicity as
/// WriteTableFile; throw std::runtime_error on I/O failure.
std::int64_t WriteTableFileCompressed(const engine::Table& table,
                                      const std::string& path);
engine::Table ReadTableFileCompressed(const std::string& path);

}  // namespace sc::storage

#endif  // SC_STORAGE_FORMAT_H_
