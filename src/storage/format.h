#ifndef SC_STORAGE_FORMAT_H_
#define SC_STORAGE_FORMAT_H_

#include <iosfwd>
#include <stdexcept>
#include <string>

#include "engine/table.h"

namespace sc::storage {

/// Raised by the readers for any integrity failure in an SCT1/SCC1
/// stream: bad magic, structurally impossible headers, truncation, torn
/// writes, and (in verifying mode) checksum mismatches. Derives from
/// std::runtime_error so pre-durability catch sites keep working; new
/// code catches the precise type to distinguish "the file is damaged"
/// (fall back to recompute / quarantine) from environmental I/O errors.
class CorruptFileError : public std::runtime_error {
 public:
  explicit CorruptFileError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Read-side integrity knob. With verify_checksums (the default) every
/// column payload is checked against its stored CRC32C and the footer's
/// whole-file checksum is recomputed — a single flipped bit anywhere in
/// the stream raises CorruptFileError. Without it, readers still parse
/// defensively (bounded allocations, structural bounds checks, footer
/// row/column cross-check and end marker — truncation and torn tails are
/// still caught) but skip the checksum arithmetic; the bench gate keeps
/// the verified mode within 5% of this fast path.
struct ReadOptions {
  bool verify_checksums = true;
};

/// Binary columnar table format ("SCT1"): the stand-in for the paper's
/// Parquet/ORC files on external storage. Layout:
///
///   magic "SCT1" | u32 num_cols | u64 num_rows
///   per column: u32 name_len | name | u8 type
///               | u64 payload_len | payload | u32 payload_crc32c
///   payload: int64/float64 -> raw array; string -> per value u32 len+bytes
///   footer: u64 num_rows | u32 num_cols | u32 file_crc32c | "SCTF"
///
/// The file checksum covers every metadata byte from the magic up to
/// (excluding) the footer — counts, column headers, payload lengths, and
/// the per-column checksum words. Payload bytes are covered by their own
/// per-column CRC32C (hashed exactly once), which the file checksum
/// seals in turn, so a flip anywhere still fails verification. Both SCC1
/// and SCT1 share this coverage rule. All integers
/// little-endian (host order; the format is not meant for
/// cross-architecture exchange). Dictionary-encoded string columns are
/// written decoded, so SCT1 bytes are representation-independent.

/// Serializes `table` to `out`. Returns bytes written.
std::int64_t WriteTable(const engine::Table& table, std::ostream& out);

/// Deserializes a table from `in`. Throws CorruptFileError on a
/// malformed, truncated, or (when verifying) corrupted stream. Hostile
/// length fields never cause over-allocation: payloads are read in
/// bounded chunks, so memory use is capped by the bytes actually
/// present plus one chunk.
engine::Table ReadTable(std::istream& in, const ReadOptions& options = {});

/// Size in bytes WriteTable would produce (without serializing).
std::int64_t SerializedSize(const engine::Table& table);

/// File convenience wrappers; throw std::runtime_error on I/O failure
/// and CorruptFileError on damaged content.
std::int64_t WriteTableFile(const engine::Table& table,
                            const std::string& path);
engine::Table ReadTableFile(const std::string& path,
                            const ReadOptions& options = {});

/// Compressed columnar block format ("SCC1"): what SharedCatalog spill
/// files use, sized for residency rather than exchange. Layout:
///
///   magic "SCC1" | u32 num_cols | u64 num_rows
///   per column: u32 name_len | name | u8 type | u8 encoding
///               [| i64 frame_min when encoding == for-varint]
///               | u64 payload_len | payload | u32 payload_crc32c
///   footer: u64 num_rows | u32 num_cols | u32 file_crc32c | "SCCF"
///
/// Encodings:
///   0 raw      — float64 payload, raw array (doubles round-trip by bit
///                pattern; no lossy packing).
///   1 for-varint — int64 payload: raw i64 frame minimum, then one
///                zig-zag LEB128 varint per value of (v - min). Cold
///                surrogate-key/date columns shrink to 1-2 bytes/value.
///   2 dict     — string payload: u32 dict_size, dictionary entries
///                (u32 len + bytes, sorted unique), then one LEB128
///                varint code per row. Plain string columns are
///                dictionary-encoded on write; the reader always
///                returns a dictionary-encoded engine::Column, so a
///                refilled entry stays compressed in memory too.

/// Serializes `table` compressed to `out`. Returns bytes written.
std::int64_t WriteTableCompressed(const engine::Table& table,
                                  std::ostream& out);

/// Deserializes an SCC1 stream. String columns come back
/// dictionary-encoded. Throws CorruptFileError on a malformed,
/// truncated, or (when verifying) corrupted stream, with the same
/// bounded-allocation guarantees as ReadTable.
engine::Table ReadTableCompressed(std::istream& in,
                                  const ReadOptions& options = {});

/// File wrappers with the same write-then-rename atomicity as
/// WriteTableFile; throw std::runtime_error on I/O failure and
/// CorruptFileError on damaged content.
std::int64_t WriteTableFileCompressed(const engine::Table& table,
                                      const std::string& path);
engine::Table ReadTableFileCompressed(const std::string& path,
                                      const ReadOptions& options = {});

}  // namespace sc::storage

#endif  // SC_STORAGE_FORMAT_H_
