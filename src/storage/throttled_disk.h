#ifndef SC_STORAGE_THROTTLED_DISK_H_
#define SC_STORAGE_THROTTLED_DISK_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <shared_mutex>
#include <string>

#include "engine/table.h"
#include "fault/fault.h"

namespace sc::storage {

/// Bandwidth/latency parameters for the emulated external storage.
struct DiskProfile {
  double read_bw = 519.8e6;   // bytes/second
  double write_bw = 358.9e6;  // bytes/second
  double latency = 175e-6;    // seconds per access
  /// When false, operations run at native speed (unit tests).
  bool throttle = true;
  /// Number of independent storage channels: at most this many
  /// operations make progress concurrently, each at full bandwidth. 1
  /// (the default) reproduces the paper's single-channel NFS model;
  /// serving deployments (RefreshService) raise it to match their
  /// worker count.
  int channels = 1;
  /// Verify SCT1 checksums on every read (the serving default): a
  /// damaged warehouse file surfaces as storage::CorruptFileError
  /// instead of a garbage table. False skips the checksum arithmetic
  /// (structural bounds checks still apply) — the bench overhead gate
  /// compares the two modes.
  bool verify_reads = true;
};

/// External storage emulation: persists tables as SCT1 files under a root
/// directory and pads each operation's wall time to what the configured
/// device would need (sleeping the remainder after the real I/O). This
/// stands in for the paper's NFS + Hive warehouse directory so that
/// read/write short-circuiting produces measurable wall-clock savings at
/// laptop scale.
///
/// Thread-safe: a per-table reader-writer lock lets concurrent reads of
/// the same file overlap while a writer never races a reader, and at
/// most `profile.channels` operations run concurrently overall. With the
/// default single channel, background materialization genuinely competes
/// with foreground I/O, as in §III-C.
class ThrottledDisk {
 public:
  ThrottledDisk(std::string root_dir, DiskProfile profile);

  /// Persists `table` as `<root>/<name>.sct`; returns bytes written.
  /// Throws std::runtime_error on I/O failure.
  std::int64_t WriteTable(const std::string& name,
                          const engine::Table& table);

  /// Loads `<root>/<name>.sct`. With DiskProfile::verify_reads the read
  /// is checksum-verified and throws storage::CorruptFileError on any
  /// damage.
  engine::Table ReadTable(const std::string& name);

  bool Exists(const std::string& name) const;
  /// Deletes the file if present.
  void Remove(const std::string& name);

  /// Bytes of the stored table file, or -1 if absent.
  std::int64_t FileSize(const std::string& name) const;

  const std::string& root_dir() const { return root_dir_; }
  const DiskProfile& profile() const { return profile_; }

  /// Cumulative seconds spent inside read/write calls (throttled time).
  double total_read_seconds() const;
  double total_write_seconds() const;

  /// Failure injection (tests): the next write of table `name` throws
  /// std::runtime_error instead of persisting (one-shot). Used to verify
  /// that materialization failures propagate through the background
  /// writer into the Controller's run report.
  void InjectWriteFailure(const std::string& name);

  /// Attaches a seeded fault injector: every read/write first probes it
  /// at Site::kDiskRead / kDiskWrite with the table name and throws
  /// fault::FaultError when a rule fires. Corruption rules at kDiskWrite
  /// instead fire *after* the write lands and damage the on-disk file —
  /// a later verified read detects them as CorruptFileError. nullptr
  /// detaches. The injector must outlive the disk.
  void SetFaultInjector(fault::FaultInjector* injector);

 private:
  std::string PathFor(const std::string& name) const;
  /// Sleeps until `elapsed` reaches the target duration for `bytes`.
  void PadToTarget(double start_monotonic, std::int64_t bytes,
                   double bandwidth);
  static double Now();
  std::shared_ptr<std::shared_mutex> FileLock(const std::string& name);
  void AcquireChannel();
  void ReleaseChannel();

  std::string root_dir_;
  DiskProfile profile_;
  mutable std::mutex mutex_;  // guards everything below
  std::condition_variable channel_cv_;
  int active_channels_ = 0;
  std::map<std::string, std::shared_ptr<std::shared_mutex>> file_locks_;
  double total_read_seconds_ = 0.0;
  double total_write_seconds_ = 0.0;
  std::set<std::string> write_failures_;
  fault::FaultInjector* fault_injector_ = nullptr;  // not owned
};

}  // namespace sc::storage

#endif  // SC_STORAGE_THROTTLED_DISK_H_
