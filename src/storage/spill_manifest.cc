#include "storage/spill_manifest.h"

#include <cstdio>
#include <filesystem>
#include <sstream>

#include "common/crc32c.h"

namespace sc::storage {

namespace {

/// Seals a record body with its own CRC32C: "<body> <crc-hex>".
std::string SealLine(const std::string& body) {
  char hex[16];
  std::snprintf(hex, sizeof(hex), "%08x",
                common::Crc32c(body.data(), body.size()));
  return body + " " + hex;
}

/// Splits "<body> <crc-hex>" and validates the checksum. Returns false
/// for any parse or checksum failure.
bool UnsealLine(const std::string& line, std::string* body) {
  const std::size_t space = line.find_last_of(' ');
  if (space == std::string::npos || line.size() - space - 1 != 8) return false;
  std::uint32_t stored = 0;
  for (std::size_t i = space + 1; i < line.size(); ++i) {
    const char c = line[i];
    stored <<= 4;
    if (c >= '0' && c <= '9') {
      stored |= static_cast<std::uint32_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      stored |= static_cast<std::uint32_t>(c - 'a' + 10);
    } else {
      return false;
    }
  }
  *body = line.substr(0, space);
  return common::Crc32c(body->data(), body->size()) == stored;
}

std::string FormatAdd(const SpillManifest::Entry& entry) {
  std::ostringstream body;
  body << "A " << entry.key << " " << entry.file_bytes << " " << entry.stamp
       << " " << (entry.durable ? 1 : 0) << " " << entry.file;
  return body.str();
}

}  // namespace

SpillManifest::SpillManifest(std::string directory,
                             std::int64_t compact_threshold_bytes)
    : directory_(std::move(directory)),
      path_(directory_ + "/" + kFileName),
      compact_threshold_(compact_threshold_bytes) {}

SpillManifest::OpenResult SpillManifest::Open() {
  OpenResult result;
  bool torn_tail = false;
  {
    std::ifstream in(path_, std::ios::binary);
    std::stringstream buffer;
    buffer << in.rdbuf();
    const std::string data = buffer.str();
    bytes_ = static_cast<std::int64_t>(data.size());
    // A journal that does not end in a newline was cut mid-append; its
    // final fragment will fail its checksum below, but the file also
    // needs a repair rewrite or the next append would glue onto the
    // fragment.
    torn_tail = !data.empty() && data.back() != '\n';
    std::istringstream in_lines(data);
    std::string line;
    while (std::getline(in_lines, line)) {
      if (line.empty()) continue;
      std::string body;
      if (!UnsealLine(line, &body)) {
        ++result.corrupt_lines;
        continue;
      }
      std::istringstream fields(body);
      char op = 0;
      fields >> op;
      if (op == 'A') {
        Entry entry;
        int durable = 0;
        fields >> entry.key >> entry.file_bytes >> entry.stamp >> durable >>
            entry.file;
        if (!fields || entry.file.empty() ||
            entry.file.find('/') != std::string::npos) {
          ++result.corrupt_lines;
          continue;
        }
        entry.durable = durable != 0;
        live_[entry.key] = entry;
      } else if (op == 'R') {
        std::uint64_t key = 0;
        fields >> key;
        if (!fields) {
          ++result.corrupt_lines;
          continue;
        }
        live_.erase(key);
      } else {
        ++result.corrupt_lines;
      }
    }
  }
  result.live.reserve(live_.size());
  for (const auto& [key, entry] : live_) result.live.push_back(entry);
  out_.open(path_, std::ios::app);
  // Damage anywhere (or a torn tail) earns an immediate repair rewrite:
  // the journal on disk returns to exactly the surviving live set.
  if (result.corrupt_lines > 0 || torn_tail) Compact();
  return result;
}

void SpillManifest::Append(const Entry& entry) {
  live_[entry.key] = entry;
  AppendLine(FormatAdd(entry));
}

void SpillManifest::Remove(std::uint64_t key) {
  if (live_.erase(key) == 0) return;
  AppendLine("R " + std::to_string(key));
}

void SpillManifest::Erase() {
  out_.close();
  std::error_code ec;
  std::filesystem::remove(path_, ec);
  bytes_ = 0;
  live_.clear();
}

void SpillManifest::AppendLine(const std::string& body) {
  const std::string line = SealLine(body);
  out_ << line << "\n";
  out_.flush();
  bytes_ += static_cast<std::int64_t>(line.size()) + 1;
  MaybeCompact();
}

void SpillManifest::MaybeCompact() {
  if (bytes_ <= compact_threshold_) return;
  Compact();
}

void SpillManifest::Compact() {
  const std::string tmp = path_ + ".tmp";
  std::int64_t rewritten = 0;
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return;  // compaction is best-effort; the journal stays valid
    for (const auto& [key, entry] : live_) {
      const std::string line = SealLine(FormatAdd(entry));
      out << line << "\n";
      rewritten += static_cast<std::int64_t>(line.size()) + 1;
    }
    out.flush();
    if (!out) return;
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path_, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return;
  }
  out_.close();
  out_.open(path_, std::ios::app);
  bytes_ = rewritten;
  compactions_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace sc::storage
