#include "storage/format.h"

#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <stdexcept>

namespace sc::storage {

namespace {

constexpr char kMagic[4] = {'S', 'C', 'T', '1'};
constexpr char kMagicCompressed[4] = {'S', 'C', 'C', '1'};

// SCC1 per-column encodings (the u8 after the type byte).
constexpr std::uint8_t kEncRaw = 0;
constexpr std::uint8_t kEncForVarint = 1;
constexpr std::uint8_t kEncDict = 2;

template <typename T>
void WriteRaw(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T ReadRaw(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) throw std::runtime_error("SCT1: truncated stream");
  return value;
}

// LEB128 varints, buffered into `buf` (one buffer per column payload —
// spill writes go through the stream once, not byte-at-a-time).
void PutVarint(std::string* buf, std::uint64_t v) {
  while (v >= 0x80) {
    buf->push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  buf->push_back(static_cast<char>(v));
}

std::uint64_t GetVarint(const char* data, std::size_t size,
                        std::size_t* pos) {
  std::uint64_t v = 0;
  int shift = 0;
  while (true) {
    if (*pos >= size || shift > 63) {
      throw std::runtime_error("SCC1: bad varint");
    }
    const std::uint8_t byte = static_cast<std::uint8_t>(data[(*pos)++]);
    v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return v;
    shift += 7;
  }
}

// Zig-zag maps signed deltas onto small unsigned varints. Arithmetic is
// done in uint64 so int64-range-spanning frames wrap instead of
// overflowing; the decode wraps back identically.
std::uint64_t ZigZag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

std::int64_t UnZigZag(std::uint64_t u) {
  return static_cast<std::int64_t>((u >> 1) ^ (~(u & 1) + 1));
}

std::string ReadPayload(std::istream& in, std::uint64_t bytes) {
  std::string buf(bytes, '\0');
  in.read(buf.data(), static_cast<std::streamsize>(bytes));
  if (!in) throw std::runtime_error("SCC1: truncated column payload");
  return buf;
}

template <typename WriteFn>
std::int64_t WriteFileAtomic(const std::string& path, WriteFn&& write_fn) {
  // Write-then-rename so the destination is atomically either the old
  // complete table or the new one: a write that dies mid-stream (fault
  // injection, full disk, crash) must never leave a partial or truncated
  // MV where readers — or a retry — expect a whole file.
  const std::string tmp = path + ".tmp";
  std::int64_t bytes = 0;
  try {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("cannot open for write: " + path);
    bytes = write_fn(out);
    out.flush();
    if (!out) throw std::runtime_error("write failed: " + path);
  } catch (...) {
    std::error_code ec;
    std::filesystem::remove(tmp, ec);
    throw;
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    throw std::runtime_error("cannot commit write: " + path);
  }
  return bytes;
}

}  // namespace

std::int64_t WriteTable(const engine::Table& table, std::ostream& out) {
  const std::streampos begin = out.tellp();
  out.write(kMagic, sizeof(kMagic));
  WriteRaw<std::uint32_t>(out,
                          static_cast<std::uint32_t>(table.num_columns()));
  WriteRaw<std::uint64_t>(out, static_cast<std::uint64_t>(table.num_rows()));
  for (std::size_t c = 0; c < table.num_columns(); ++c) {
    const engine::Field& field = table.schema().field(c);
    WriteRaw<std::uint32_t>(out,
                            static_cast<std::uint32_t>(field.name.size()));
    out.write(field.name.data(),
              static_cast<std::streamsize>(field.name.size()));
    WriteRaw<std::uint8_t>(out, static_cast<std::uint8_t>(field.type));
    const engine::Column& col = table.column(c);
    switch (field.type) {
      case engine::DataType::kInt64:
        out.write(reinterpret_cast<const char*>(col.ints().data()),
                  static_cast<std::streamsize>(col.ints().size() *
                                               sizeof(std::int64_t)));
        break;
      case engine::DataType::kFloat64:
        out.write(reinterpret_cast<const char*>(col.doubles().data()),
                  static_cast<std::streamsize>(col.doubles().size() *
                                               sizeof(double)));
        break;
      case engine::DataType::kString:
        // Row-wise through GetString: dictionary-encoded columns write
        // the same decoded bytes a plain column would, keeping SCT1
        // representation-independent.
        for (std::size_t r = 0; r < col.size(); ++r) {
          const std::string& s = col.GetString(r);
          WriteRaw<std::uint32_t>(out, static_cast<std::uint32_t>(s.size()));
          out.write(s.data(), static_cast<std::streamsize>(s.size()));
        }
        break;
    }
  }
  if (!out) throw std::runtime_error("SCT1: write failure");
  return static_cast<std::int64_t>(out.tellp() - begin);
}

engine::Table ReadTable(std::istream& in) {
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("SCT1: bad magic");
  }
  const std::uint32_t num_cols = ReadRaw<std::uint32_t>(in);
  const std::uint64_t num_rows = ReadRaw<std::uint64_t>(in);
  std::vector<engine::Field> fields;
  std::vector<engine::Column> columns;
  fields.reserve(num_cols);
  columns.reserve(num_cols);
  for (std::uint32_t c = 0; c < num_cols; ++c) {
    const std::uint32_t name_len = ReadRaw<std::uint32_t>(in);
    std::string name(name_len, '\0');
    in.read(name.data(), name_len);
    const auto type =
        static_cast<engine::DataType>(ReadRaw<std::uint8_t>(in));
    switch (type) {
      case engine::DataType::kInt64: {
        std::vector<std::int64_t> values(num_rows);
        in.read(reinterpret_cast<char*>(values.data()),
                static_cast<std::streamsize>(num_rows *
                                             sizeof(std::int64_t)));
        columns.push_back(engine::Column::FromInts(std::move(values)));
        break;
      }
      case engine::DataType::kFloat64: {
        std::vector<double> values(num_rows);
        in.read(reinterpret_cast<char*>(values.data()),
                static_cast<std::streamsize>(num_rows * sizeof(double)));
        columns.push_back(engine::Column::FromDoubles(std::move(values)));
        break;
      }
      case engine::DataType::kString: {
        std::vector<std::string> values;
        values.reserve(num_rows);
        for (std::uint64_t r = 0; r < num_rows; ++r) {
          const std::uint32_t len = ReadRaw<std::uint32_t>(in);
          std::string s(len, '\0');
          in.read(s.data(), len);
          values.push_back(std::move(s));
        }
        columns.push_back(engine::Column::FromStrings(std::move(values)));
        break;
      }
      default:
        throw std::runtime_error("SCT1: bad column type");
    }
    if (!in) throw std::runtime_error("SCT1: truncated column data");
    fields.push_back(engine::Field{std::move(name), type});
  }
  return engine::Table(engine::Schema(std::move(fields)),
                       std::move(columns));
}

std::int64_t SerializedSize(const engine::Table& table) {
  std::int64_t total = 4 + 4 + 8;
  for (std::size_t c = 0; c < table.num_columns(); ++c) {
    const engine::Field& field = table.schema().field(c);
    total += 4 + static_cast<std::int64_t>(field.name.size()) + 1;
    const engine::Column& col = table.column(c);
    switch (field.type) {
      case engine::DataType::kInt64:
        total += static_cast<std::int64_t>(col.ints().size() * 8);
        break;
      case engine::DataType::kFloat64:
        total += static_cast<std::int64_t>(col.doubles().size() * 8);
        break;
      case engine::DataType::kString:
        for (std::size_t r = 0; r < col.size(); ++r) {
          total += 4 + static_cast<std::int64_t>(col.GetString(r).size());
        }
        break;
    }
  }
  return total;
}

std::int64_t WriteTableFile(const engine::Table& table,
                            const std::string& path) {
  return WriteFileAtomic(
      path, [&](std::ostream& out) { return WriteTable(table, out); });
}

engine::Table ReadTableFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open for read: " + path);
  return ReadTable(in);
}

std::int64_t WriteTableCompressed(const engine::Table& table,
                                  std::ostream& out) {
  const std::streampos begin = out.tellp();
  out.write(kMagicCompressed, sizeof(kMagicCompressed));
  WriteRaw<std::uint32_t>(out,
                          static_cast<std::uint32_t>(table.num_columns()));
  WriteRaw<std::uint64_t>(out, static_cast<std::uint64_t>(table.num_rows()));
  std::string buf;  // reused per-column payload buffer
  for (std::size_t c = 0; c < table.num_columns(); ++c) {
    const engine::Field& field = table.schema().field(c);
    WriteRaw<std::uint32_t>(out,
                            static_cast<std::uint32_t>(field.name.size()));
    out.write(field.name.data(),
              static_cast<std::streamsize>(field.name.size()));
    WriteRaw<std::uint8_t>(out, static_cast<std::uint8_t>(field.type));
    const engine::Column& col = table.column(c);
    buf.clear();
    switch (field.type) {
      case engine::DataType::kInt64: {
        // Frame-of-reference: one raw minimum, zig-zag varint deltas.
        WriteRaw<std::uint8_t>(out, kEncForVarint);
        std::int64_t min = 0;
        for (std::size_t r = 0; r < col.ints().size(); ++r) {
          if (r == 0 || col.ints()[r] < min) min = col.ints()[r];
        }
        for (const std::int64_t v : col.ints()) {
          PutVarint(&buf, ZigZag(static_cast<std::int64_t>(
                              static_cast<std::uint64_t>(v) -
                              static_cast<std::uint64_t>(min))));
        }
        WriteRaw<std::int64_t>(out, min);
        break;
      }
      case engine::DataType::kFloat64: {
        // Doubles stay raw: the bit-identity contract (NaN payloads,
        // -0.0) leaves no room for lossy packing, and these columns are
        // rarely the budget's heavy end.
        WriteRaw<std::uint8_t>(out, kEncRaw);
        buf.assign(reinterpret_cast<const char*>(col.doubles().data()),
                   col.doubles().size() * sizeof(double));
        break;
      }
      case engine::DataType::kString: {
        // Dictionary page. Plain columns are encoded on the fly, so a
        // spilled plain MV refills compressed.
        WriteRaw<std::uint8_t>(out, kEncDict);
        const engine::Column encoded =
            col.dictionary_encoded() ? col : col.DictionaryEncode();
        const engine::Column::Dictionary& dict = *encoded.dictionary();
        PutVarint(&buf, dict.size());
        for (const std::string& s : dict) {
          PutVarint(&buf, s.size());
          buf.append(s);
        }
        for (const std::int32_t code : encoded.codes()) {
          PutVarint(&buf, static_cast<std::uint64_t>(
                              static_cast<std::uint32_t>(code)));
        }
        break;
      }
    }
    WriteRaw<std::uint64_t>(out, static_cast<std::uint64_t>(buf.size()));
    out.write(buf.data(), static_cast<std::streamsize>(buf.size()));
  }
  if (!out) throw std::runtime_error("SCC1: write failure");
  return static_cast<std::int64_t>(out.tellp() - begin);
}

engine::Table ReadTableCompressed(std::istream& in) {
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in ||
      std::memcmp(magic, kMagicCompressed, sizeof(kMagicCompressed)) != 0) {
    throw std::runtime_error("SCC1: bad magic");
  }
  const std::uint32_t num_cols = ReadRaw<std::uint32_t>(in);
  const std::uint64_t num_rows = ReadRaw<std::uint64_t>(in);
  std::vector<engine::Field> fields;
  std::vector<engine::Column> columns;
  fields.reserve(num_cols);
  columns.reserve(num_cols);
  for (std::uint32_t c = 0; c < num_cols; ++c) {
    const std::uint32_t name_len = ReadRaw<std::uint32_t>(in);
    std::string name(name_len, '\0');
    in.read(name.data(), name_len);
    const auto type =
        static_cast<engine::DataType>(ReadRaw<std::uint8_t>(in));
    const std::uint8_t encoding = ReadRaw<std::uint8_t>(in);
    switch (type) {
      case engine::DataType::kInt64: {
        if (encoding != kEncForVarint) {
          throw std::runtime_error("SCC1: bad int64 encoding");
        }
        const std::int64_t min = ReadRaw<std::int64_t>(in);
        const std::uint64_t bytes = ReadRaw<std::uint64_t>(in);
        const std::string buf = ReadPayload(in, bytes);
        std::vector<std::int64_t> values(num_rows);
        std::size_t pos = 0;
        for (std::uint64_t r = 0; r < num_rows; ++r) {
          values[r] = static_cast<std::int64_t>(
              static_cast<std::uint64_t>(min) +
              static_cast<std::uint64_t>(
                  UnZigZag(GetVarint(buf.data(), buf.size(), &pos))));
        }
        columns.push_back(engine::Column::FromInts(std::move(values)));
        break;
      }
      case engine::DataType::kFloat64: {
        if (encoding != kEncRaw) {
          throw std::runtime_error("SCC1: bad float64 encoding");
        }
        const std::uint64_t bytes = ReadRaw<std::uint64_t>(in);
        if (bytes != num_rows * sizeof(double)) {
          throw std::runtime_error("SCC1: bad float64 payload size");
        }
        std::vector<double> values(num_rows);
        in.read(reinterpret_cast<char*>(values.data()),
                static_cast<std::streamsize>(bytes));
        columns.push_back(engine::Column::FromDoubles(std::move(values)));
        break;
      }
      case engine::DataType::kString: {
        if (encoding != kEncDict) {
          throw std::runtime_error("SCC1: bad string encoding");
        }
        const std::uint64_t bytes = ReadRaw<std::uint64_t>(in);
        const std::string buf = ReadPayload(in, bytes);
        std::size_t pos = 0;
        const std::uint64_t dict_size =
            GetVarint(buf.data(), buf.size(), &pos);
        std::vector<std::string> dict(dict_size);
        for (std::uint64_t i = 0; i < dict_size; ++i) {
          const std::uint64_t len = GetVarint(buf.data(), buf.size(), &pos);
          if (pos + len > buf.size()) {
            throw std::runtime_error("SCC1: truncated dictionary entry");
          }
          dict[i].assign(buf.data() + pos, len);
          pos += len;
        }
        std::vector<std::int32_t> codes(num_rows);
        for (std::uint64_t r = 0; r < num_rows; ++r) {
          const std::uint64_t code = GetVarint(buf.data(), buf.size(), &pos);
          if (code >= dict_size) {
            throw std::runtime_error("SCC1: code out of dictionary range");
          }
          codes[r] = static_cast<std::int32_t>(code);
        }
        columns.push_back(engine::Column::FromDictionary(
            std::make_shared<const engine::Column::Dictionary>(
                std::move(dict)),
            std::move(codes)));
        break;
      }
      default:
        throw std::runtime_error("SCC1: bad column type");
    }
    if (!in) throw std::runtime_error("SCC1: truncated column data");
    fields.push_back(engine::Field{std::move(name), type});
  }
  return engine::Table(engine::Schema(std::move(fields)),
                       std::move(columns));
}

std::int64_t WriteTableFileCompressed(const engine::Table& table,
                                      const std::string& path) {
  return WriteFileAtomic(path, [&](std::ostream& out) {
    return WriteTableCompressed(table, out);
  });
}

engine::Table ReadTableFileCompressed(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open for read: " + path);
  return ReadTableCompressed(in);
}

}  // namespace sc::storage
