#include "storage/format.h"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <stdexcept>

#include "common/crc32c.h"

namespace sc::storage {

namespace {

constexpr char kMagic[4] = {'S', 'C', 'T', '1'};
constexpr char kMagicCompressed[4] = {'S', 'C', 'C', '1'};
constexpr char kFooterMagic[4] = {'S', 'C', 'T', 'F'};
constexpr char kFooterMagicCompressed[4] = {'S', 'C', 'C', 'F'};

// SCC1 per-column encodings (the u8 after the type byte).
constexpr std::uint8_t kEncRaw = 0;
constexpr std::uint8_t kEncForVarint = 1;
constexpr std::uint8_t kEncDict = 2;

// Structural sanity caps: headers declaring more than this are treated
// as corruption before a single byte of payload is allocated. Both are
// far above anything the engine produces (tables here are MV outputs
// with at most a handful of columns).
constexpr std::uint32_t kMaxColumns = 1u << 16;
constexpr std::uint32_t kMaxNameLen = 1u << 16;

// Hostile or torn length fields must never translate into allocations:
// payloads are read in chunks of this many bytes, so a declared
// multi-terabyte payload over a 1 KB file fails after at most one chunk
// of over-allocation.
constexpr std::uint64_t kReadChunk = 4u << 20;

// Footer size: u64 num_rows + u32 num_cols + u32 file_crc + 4-byte end
// marker.
constexpr std::int64_t kFooterBytes = 8 + 4 + 4 + 4;

template <typename T>
void AppendRaw(std::string* buf, const T& value) {
  buf->append(reinterpret_cast<const char*>(&value), sizeof(T));
}

/// Write-side stream wrapper: every metadata byte written is folded into
/// the running whole-file CRC32C, so the footer checksum seals the
/// header, the column descriptors, and the per-column checksum words.
/// Column payload bytes go through WriteUnfolded — they are sealed by
/// their own per-column CRC32C, which the file checksum in turn covers,
/// so each byte is hashed exactly once while integrity stays transitive.
class CrcSink {
 public:
  explicit CrcSink(std::ostream& out) : out_(out) {}

  void Write(const void* data, std::size_t size) {
    out_.write(static_cast<const char*>(data),
               static_cast<std::streamsize>(size));
    crc_ = common::Crc32c(data, size, crc_);
    bytes_ += static_cast<std::int64_t>(size);
  }

  /// Writes payload bytes without folding them into the file checksum
  /// (their per-column checksum covers them).
  void WriteUnfolded(const void* data, std::size_t size) {
    out_.write(static_cast<const char*>(data),
               static_cast<std::streamsize>(size));
    bytes_ += static_cast<std::int64_t>(size);
  }

  template <typename T>
  void WriteRaw(const T& value) {
    Write(&value, sizeof(T));
  }

  std::uint32_t crc() const { return crc_; }
  std::int64_t bytes() const { return bytes_; }
  std::ostream& stream() { return out_; }

 private:
  std::ostream& out_;
  std::uint32_t crc_ = 0;
  std::int64_t bytes_ = 0;
};

/// Read-side mirror of CrcSink: folds consumed bytes into the running
/// file checksum only when verification is on (the unverified fast path
/// costs a branch per read). Every structural read failure throws
/// CorruptFileError — a short read is indistinguishable from truncation.
class CrcSource {
 public:
  CrcSource(std::istream& in, bool verify, const char* format)
      : in_(in), verify_(verify), format_(format) {}

  void Read(void* data, std::size_t size, const char* what) {
    in_.read(static_cast<char*>(data),
             static_cast<std::streamsize>(size));
    if (!in_) Fail(what);
    if (verify_) crc_ = common::Crc32c(data, size, crc_);
  }

  template <typename T>
  T ReadRaw(const char* what) {
    T value{};
    Read(&value, sizeof(T), what);
    return value;
  }

  /// Reads `size` bytes in bounded chunks: a hostile length field fails
  /// with at most kReadChunk bytes of speculative allocation instead of
  /// reserving the declared size up front. Folds the bytes into the file
  /// checksum (metadata blobs such as column names); payloads go through
  /// ReadPayloadBlob instead.
  std::string ReadBlob(std::uint64_t size, const char* what) {
    std::string buf = ReadPayloadBlob(size, what);
    if (verify_) crc_ = common::Crc32c(buf.data(), buf.size(), crc_);
    return buf;
  }

  /// ReadBlob minus the file-checksum fold: column payloads are verified
  /// against their own per-column checksum (one CRC pass per byte), and
  /// the file checksum seals that checksum word instead.
  std::string ReadPayloadBlob(std::uint64_t size, const char* what) {
    std::string buf;
    while (buf.size() < size) {
      const std::uint64_t step =
          std::min<std::uint64_t>(kReadChunk, size - buf.size());
      const std::size_t old = buf.size();
      buf.resize(old + static_cast<std::size_t>(step));
      in_.read(buf.data() + old, static_cast<std::streamsize>(step));
      if (!in_) Fail(what);
    }
    return buf;
  }

  [[noreturn]] void Fail(const char* what) const {
    throw CorruptFileError(std::string(format_) + ": truncated " + what);
  }

  /// Folds bytes consumed outside Read (the magic, matched raw) into the
  /// running file checksum.
  void FoldCrc(const void* data, std::size_t size) {
    if (verify_) crc_ = common::Crc32c(data, size, crc_);
  }

  bool verify() const { return verify_; }
  std::uint32_t crc() const { return crc_; }
  std::istream& stream() { return in_; }
  const char* format() const { return format_; }

 private:
  std::istream& in_;
  const bool verify_;
  const char* format_;
  std::uint32_t crc_ = 0;
};

void WriteFooter(CrcSink& sink, std::uint64_t num_rows,
                 std::uint32_t num_cols, const char magic[4]) {
  // The footer itself is excluded from the file checksum (it contains
  // it); capture before writing.
  const std::uint32_t file_crc = sink.crc();
  sink.WriteRaw<std::uint64_t>(num_rows);
  sink.WriteRaw<std::uint32_t>(num_cols);
  sink.WriteRaw<std::uint32_t>(file_crc);
  sink.Write(magic, 4);
}

/// Footer validation runs in both modes: the row/column cross-check and
/// the end marker catch truncation and torn (zero-filled) tails even
/// without checksum arithmetic; the file CRC comparison is gated on
/// verify.
void ReadFooter(CrcSource& source, std::uint64_t num_rows,
                std::uint32_t num_cols, const char magic[4]) {
  const std::uint32_t computed = source.crc();
  std::istream& in = source.stream();
  std::uint64_t footer_rows = 0;
  std::uint32_t footer_cols = 0;
  std::uint32_t file_crc = 0;
  char tail[4] = {0, 0, 0, 0};
  in.read(reinterpret_cast<char*>(&footer_rows), sizeof(footer_rows));
  in.read(reinterpret_cast<char*>(&footer_cols), sizeof(footer_cols));
  in.read(reinterpret_cast<char*>(&file_crc), sizeof(file_crc));
  in.read(tail, sizeof(tail));
  if (!in) source.Fail("footer");
  if (std::memcmp(tail, magic, 4) != 0) {
    throw CorruptFileError(std::string(source.format()) +
                           ": bad footer marker");
  }
  if (footer_rows != num_rows || footer_cols != num_cols) {
    throw CorruptFileError(std::string(source.format()) +
                           ": footer row/column mismatch");
  }
  if (source.verify() && file_crc != computed) {
    throw CorruptFileError(std::string(source.format()) +
                           ": file checksum mismatch");
  }
}

/// Writes one column's buffered payload with its length prefix and
/// CRC32C trailer — the per-block integrity unit of both formats.
void WriteColumnPayload(CrcSink& sink, const std::string& buf) {
  sink.WriteRaw<std::uint64_t>(static_cast<std::uint64_t>(buf.size()));
  sink.WriteUnfolded(buf.data(), buf.size());
  sink.WriteRaw<std::uint32_t>(common::Crc32c(buf.data(), buf.size()));
}

/// Reads one column payload and its checksum trailer; verifies when the
/// source does.
std::string ReadColumnPayload(CrcSource& source) {
  const auto payload_len = source.ReadRaw<std::uint64_t>("payload length");
  std::string buf = source.ReadPayloadBlob(payload_len, "column payload");
  const auto stored = source.ReadRaw<std::uint32_t>("column checksum");
  if (source.verify() &&
      stored != common::Crc32c(buf.data(), buf.size())) {
    throw CorruptFileError(std::string(source.format()) +
                           ": column checksum mismatch");
  }
  return buf;
}

// LEB128 varints, buffered into `buf` (one buffer per column payload —
// spill writes go through the stream once, not byte-at-a-time).
void PutVarint(std::string* buf, std::uint64_t v) {
  while (v >= 0x80) {
    buf->push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  buf->push_back(static_cast<char>(v));
}

std::uint64_t GetVarint(const char* data, std::size_t size,
                        std::size_t* pos) {
  std::uint64_t v = 0;
  int shift = 0;
  while (true) {
    if (*pos >= size || shift > 63) {
      throw CorruptFileError("SCC1: bad varint");
    }
    const std::uint8_t byte = static_cast<std::uint8_t>(data[(*pos)++]);
    v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return v;
    shift += 7;
  }
}

// Zig-zag maps signed deltas onto small unsigned varints. Arithmetic is
// done in uint64 so int64-range-spanning frames wrap instead of
// overflowing; the decode wraps back identically.
std::uint64_t ZigZag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

std::int64_t UnZigZag(std::uint64_t u) {
  return static_cast<std::int64_t>((u >> 1) ^ (~(u & 1) + 1));
}

struct ColumnHeader {
  std::string name;
  engine::DataType type = engine::DataType::kInt64;
};

ColumnHeader ReadColumnHeader(CrcSource& source) {
  ColumnHeader header;
  const auto name_len = source.ReadRaw<std::uint32_t>("column name length");
  if (name_len > kMaxNameLen) {
    throw CorruptFileError(std::string(source.format()) +
                           ": column name length exceeds sanity cap");
  }
  header.name = source.ReadBlob(name_len, "column name");
  const auto type_byte = source.ReadRaw<std::uint8_t>("column type");
  if (type_byte > static_cast<std::uint8_t>(engine::DataType::kString)) {
    throw CorruptFileError(std::string(source.format()) +
                           ": bad column type");
  }
  header.type = static_cast<engine::DataType>(type_byte);
  return header;
}

template <typename WriteFn>
std::int64_t WriteFileAtomic(const std::string& path, WriteFn&& write_fn) {
  // Write-then-rename so the destination is atomically either the old
  // complete table or the new one: a write that dies mid-stream (fault
  // injection, full disk, crash) must never leave a partial or truncated
  // MV where readers — or a retry — expect a whole file.
  const std::string tmp = path + ".tmp";
  std::int64_t bytes = 0;
  try {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("cannot open for write: " + path);
    bytes = write_fn(out);
    out.flush();
    if (!out) throw std::runtime_error("write failed: " + path);
  } catch (...) {
    std::error_code ec;
    std::filesystem::remove(tmp, ec);
    throw;
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    throw std::runtime_error("cannot commit write: " + path);
  }
  return bytes;
}

}  // namespace

std::int64_t WriteTable(const engine::Table& table, std::ostream& out) {
  CrcSink sink(out);
  sink.Write(kMagic, sizeof(kMagic));
  sink.WriteRaw<std::uint32_t>(
      static_cast<std::uint32_t>(table.num_columns()));
  sink.WriteRaw<std::uint64_t>(
      static_cast<std::uint64_t>(table.num_rows()));
  std::string buf;  // reused per-column payload buffer
  for (std::size_t c = 0; c < table.num_columns(); ++c) {
    const engine::Field& field = table.schema().field(c);
    sink.WriteRaw<std::uint32_t>(
        static_cast<std::uint32_t>(field.name.size()));
    sink.Write(field.name.data(), field.name.size());
    sink.WriteRaw<std::uint8_t>(static_cast<std::uint8_t>(field.type));
    const engine::Column& col = table.column(c);
    buf.clear();
    switch (field.type) {
      case engine::DataType::kInt64:
        buf.assign(reinterpret_cast<const char*>(col.ints().data()),
                   col.ints().size() * sizeof(std::int64_t));
        break;
      case engine::DataType::kFloat64:
        buf.assign(reinterpret_cast<const char*>(col.doubles().data()),
                   col.doubles().size() * sizeof(double));
        break;
      case engine::DataType::kString:
        // Row-wise through GetString: dictionary-encoded columns write
        // the same decoded bytes a plain column would, keeping SCT1
        // representation-independent.
        for (std::size_t r = 0; r < col.size(); ++r) {
          const std::string& s = col.GetString(r);
          AppendRaw<std::uint32_t>(&buf,
                                   static_cast<std::uint32_t>(s.size()));
          buf.append(s);
        }
        break;
    }
    WriteColumnPayload(sink, buf);
  }
  WriteFooter(sink, static_cast<std::uint64_t>(table.num_rows()),
              static_cast<std::uint32_t>(table.num_columns()),
              kFooterMagic);
  if (!out) throw std::runtime_error("SCT1: write failure");
  return sink.bytes();
}

engine::Table ReadTable(std::istream& in, const ReadOptions& options) {
  CrcSource source(in, options.verify_checksums, "SCT1");
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw CorruptFileError("SCT1: bad magic");
  }
  source.FoldCrc(magic, sizeof(magic));
  const auto num_cols = source.ReadRaw<std::uint32_t>("column count");
  if (num_cols > kMaxColumns) {
    throw CorruptFileError("SCT1: column count exceeds sanity cap");
  }
  const auto num_rows = source.ReadRaw<std::uint64_t>("row count");
  std::vector<engine::Field> fields;
  std::vector<engine::Column> columns;
  fields.reserve(num_cols);
  columns.reserve(num_cols);
  for (std::uint32_t c = 0; c < num_cols; ++c) {
    ColumnHeader header = ReadColumnHeader(source);
    const std::string payload = ReadColumnPayload(source);
    switch (header.type) {
      case engine::DataType::kInt64: {
        // Division form: num_rows * 8 could wrap for hostile row counts.
        if (payload.size() % sizeof(std::int64_t) != 0 ||
            num_rows != payload.size() / sizeof(std::int64_t)) {
          throw CorruptFileError("SCT1: bad int64 payload size");
        }
        std::vector<std::int64_t> values(num_rows);
        std::memcpy(values.data(), payload.data(), payload.size());
        columns.push_back(engine::Column::FromInts(std::move(values)));
        break;
      }
      case engine::DataType::kFloat64: {
        if (payload.size() % sizeof(double) != 0 ||
            num_rows != payload.size() / sizeof(double)) {
          throw CorruptFileError("SCT1: bad float64 payload size");
        }
        std::vector<double> values(num_rows);
        std::memcpy(values.data(), payload.data(), payload.size());
        columns.push_back(engine::Column::FromDoubles(std::move(values)));
        break;
      }
      case engine::DataType::kString: {
        std::vector<std::string> values;
        // Each value costs at least its 4-byte length prefix, so the
        // payload bounds the row count — reserve never exceeds it.
        values.reserve(static_cast<std::size_t>(std::min<std::uint64_t>(
            num_rows, payload.size() / 4 + 1)));
        std::size_t pos = 0;
        for (std::uint64_t r = 0; r < num_rows; ++r) {
          if (pos + 4 > payload.size()) {
            throw CorruptFileError("SCT1: truncated string length");
          }
          std::uint32_t len = 0;
          std::memcpy(&len, payload.data() + pos, 4);
          pos += 4;
          if (pos + len > payload.size()) {
            throw CorruptFileError("SCT1: truncated string value");
          }
          values.emplace_back(payload.data() + pos, len);
          pos += len;
        }
        if (pos != payload.size()) {
          throw CorruptFileError("SCT1: string payload has trailing bytes");
        }
        columns.push_back(engine::Column::FromStrings(std::move(values)));
        break;
      }
    }
    fields.push_back(engine::Field{std::move(header.name), header.type});
  }
  ReadFooter(source, num_rows, num_cols, kFooterMagic);
  return engine::Table(engine::Schema(std::move(fields)),
                       std::move(columns));
}

std::int64_t SerializedSize(const engine::Table& table) {
  std::int64_t total = 4 + 4 + 8;
  for (std::size_t c = 0; c < table.num_columns(); ++c) {
    const engine::Field& field = table.schema().field(c);
    // name_len + name + type + payload_len + payload + payload_crc
    total += 4 + static_cast<std::int64_t>(field.name.size()) + 1 + 8 + 4;
    const engine::Column& col = table.column(c);
    switch (field.type) {
      case engine::DataType::kInt64:
        total += static_cast<std::int64_t>(col.ints().size() * 8);
        break;
      case engine::DataType::kFloat64:
        total += static_cast<std::int64_t>(col.doubles().size() * 8);
        break;
      case engine::DataType::kString:
        for (std::size_t r = 0; r < col.size(); ++r) {
          total += 4 + static_cast<std::int64_t>(col.GetString(r).size());
        }
        break;
    }
  }
  return total + kFooterBytes;
}

std::int64_t WriteTableFile(const engine::Table& table,
                            const std::string& path) {
  return WriteFileAtomic(
      path, [&](std::ostream& out) { return WriteTable(table, out); });
}

engine::Table ReadTableFile(const std::string& path,
                            const ReadOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open for read: " + path);
  return ReadTable(in, options);
}

std::int64_t WriteTableCompressed(const engine::Table& table,
                                  std::ostream& out) {
  CrcSink sink(out);
  sink.Write(kMagicCompressed, sizeof(kMagicCompressed));
  sink.WriteRaw<std::uint32_t>(
      static_cast<std::uint32_t>(table.num_columns()));
  sink.WriteRaw<std::uint64_t>(
      static_cast<std::uint64_t>(table.num_rows()));
  std::string buf;  // reused per-column payload buffer
  for (std::size_t c = 0; c < table.num_columns(); ++c) {
    const engine::Field& field = table.schema().field(c);
    sink.WriteRaw<std::uint32_t>(
        static_cast<std::uint32_t>(field.name.size()));
    sink.Write(field.name.data(), field.name.size());
    sink.WriteRaw<std::uint8_t>(static_cast<std::uint8_t>(field.type));
    const engine::Column& col = table.column(c);
    buf.clear();
    switch (field.type) {
      case engine::DataType::kInt64: {
        // Frame-of-reference: one raw minimum, zig-zag varint deltas.
        sink.WriteRaw<std::uint8_t>(kEncForVarint);
        std::int64_t min = 0;
        for (std::size_t r = 0; r < col.ints().size(); ++r) {
          if (r == 0 || col.ints()[r] < min) min = col.ints()[r];
        }
        for (const std::int64_t v : col.ints()) {
          PutVarint(&buf, ZigZag(static_cast<std::int64_t>(
                              static_cast<std::uint64_t>(v) -
                              static_cast<std::uint64_t>(min))));
        }
        sink.WriteRaw<std::int64_t>(min);
        break;
      }
      case engine::DataType::kFloat64: {
        // Doubles stay raw: the bit-identity contract (NaN payloads,
        // -0.0) leaves no room for lossy packing, and these columns are
        // rarely the budget's heavy end.
        sink.WriteRaw<std::uint8_t>(kEncRaw);
        buf.assign(reinterpret_cast<const char*>(col.doubles().data()),
                   col.doubles().size() * sizeof(double));
        break;
      }
      case engine::DataType::kString: {
        // Dictionary page. Plain columns are encoded on the fly, so a
        // spilled plain MV refills compressed.
        sink.WriteRaw<std::uint8_t>(kEncDict);
        const engine::Column encoded =
            col.dictionary_encoded() ? col : col.DictionaryEncode();
        const engine::Column::Dictionary& dict = *encoded.dictionary();
        PutVarint(&buf, dict.size());
        for (const std::string& s : dict) {
          PutVarint(&buf, s.size());
          buf.append(s);
        }
        for (const std::int32_t code : encoded.codes()) {
          PutVarint(&buf, static_cast<std::uint64_t>(
                              static_cast<std::uint32_t>(code)));
        }
        break;
      }
    }
    WriteColumnPayload(sink, buf);
  }
  WriteFooter(sink, static_cast<std::uint64_t>(table.num_rows()),
              static_cast<std::uint32_t>(table.num_columns()),
              kFooterMagicCompressed);
  if (!out) throw std::runtime_error("SCC1: write failure");
  return sink.bytes();
}

engine::Table ReadTableCompressed(std::istream& in,
                                  const ReadOptions& options) {
  CrcSource source(in, options.verify_checksums, "SCC1");
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in ||
      std::memcmp(magic, kMagicCompressed, sizeof(kMagicCompressed)) != 0) {
    throw CorruptFileError("SCC1: bad magic");
  }
  source.FoldCrc(magic, sizeof(magic));
  const auto num_cols = source.ReadRaw<std::uint32_t>("column count");
  if (num_cols > kMaxColumns) {
    throw CorruptFileError("SCC1: column count exceeds sanity cap");
  }
  const auto num_rows = source.ReadRaw<std::uint64_t>("row count");
  std::vector<engine::Field> fields;
  std::vector<engine::Column> columns;
  fields.reserve(num_cols);
  columns.reserve(num_cols);
  for (std::uint32_t c = 0; c < num_cols; ++c) {
    ColumnHeader header = ReadColumnHeader(source);
    const auto encoding = source.ReadRaw<std::uint8_t>("column encoding");
    switch (header.type) {
      case engine::DataType::kInt64: {
        if (encoding != kEncForVarint) {
          throw CorruptFileError("SCC1: bad int64 encoding");
        }
        const auto min = source.ReadRaw<std::int64_t>("frame minimum");
        const std::string buf = ReadColumnPayload(source);
        // Every varint is at least one byte: a row count beyond the
        // payload size is structurally impossible, and checking before
        // the allocation keeps hostile counts from reserving anything.
        if (num_rows > buf.size()) {
          throw CorruptFileError("SCC1: row count exceeds int64 payload");
        }
        std::vector<std::int64_t> values(num_rows);
        std::size_t pos = 0;
        for (std::uint64_t r = 0; r < num_rows; ++r) {
          values[r] = static_cast<std::int64_t>(
              static_cast<std::uint64_t>(min) +
              static_cast<std::uint64_t>(
                  UnZigZag(GetVarint(buf.data(), buf.size(), &pos))));
        }
        if (pos != buf.size()) {
          throw CorruptFileError("SCC1: int64 payload has trailing bytes");
        }
        columns.push_back(engine::Column::FromInts(std::move(values)));
        break;
      }
      case engine::DataType::kFloat64: {
        if (encoding != kEncRaw) {
          throw CorruptFileError("SCC1: bad float64 encoding");
        }
        const std::string buf = ReadColumnPayload(source);
        if (buf.size() % sizeof(double) != 0 ||
            num_rows != buf.size() / sizeof(double)) {
          throw CorruptFileError("SCC1: bad float64 payload size");
        }
        std::vector<double> values(num_rows);
        std::memcpy(values.data(), buf.data(), buf.size());
        columns.push_back(engine::Column::FromDoubles(std::move(values)));
        break;
      }
      case engine::DataType::kString: {
        if (encoding != kEncDict) {
          throw CorruptFileError("SCC1: bad string encoding");
        }
        const std::string buf = ReadColumnPayload(source);
        std::size_t pos = 0;
        const std::uint64_t dict_size =
            GetVarint(buf.data(), buf.size(), &pos);
        // Each dictionary entry needs at least its length varint, so the
        // remaining payload bounds the dictionary size (allocation cap).
        if (dict_size > buf.size() - pos) {
          throw CorruptFileError("SCC1: dictionary size exceeds payload");
        }
        std::vector<std::string> dict(dict_size);
        for (std::uint64_t i = 0; i < dict_size; ++i) {
          const std::uint64_t len = GetVarint(buf.data(), buf.size(), &pos);
          if (len > buf.size() - pos) {
            throw CorruptFileError("SCC1: truncated dictionary entry");
          }
          dict[i].assign(buf.data() + pos, len);
          pos += len;
        }
        if (num_rows > buf.size() - pos) {
          throw CorruptFileError("SCC1: row count exceeds code payload");
        }
        std::vector<std::int32_t> codes(num_rows);
        for (std::uint64_t r = 0; r < num_rows; ++r) {
          const std::uint64_t code = GetVarint(buf.data(), buf.size(), &pos);
          if (code >= dict_size) {
            throw CorruptFileError("SCC1: code out of dictionary range");
          }
          codes[r] = static_cast<std::int32_t>(code);
        }
        if (pos != buf.size()) {
          throw CorruptFileError("SCC1: string payload has trailing bytes");
        }
        columns.push_back(engine::Column::FromDictionary(
            std::make_shared<const engine::Column::Dictionary>(
                std::move(dict)),
            std::move(codes)));
        break;
      }
    }
    fields.push_back(engine::Field{std::move(header.name), header.type});
  }
  ReadFooter(source, num_rows, num_cols, kFooterMagicCompressed);
  return engine::Table(engine::Schema(std::move(fields)),
                       std::move(columns));
}

std::int64_t WriteTableFileCompressed(const engine::Table& table,
                                      const std::string& path) {
  return WriteFileAtomic(path, [&](std::ostream& out) {
    return WriteTableCompressed(table, out);
  });
}

engine::Table ReadTableFileCompressed(const std::string& path,
                                      const ReadOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open for read: " + path);
  return ReadTableCompressed(in, options);
}

}  // namespace sc::storage
