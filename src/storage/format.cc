#include "storage/format.h"

#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>

namespace sc::storage {

namespace {

constexpr char kMagic[4] = {'S', 'C', 'T', '1'};

template <typename T>
void WriteRaw(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T ReadRaw(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) throw std::runtime_error("SCT1: truncated stream");
  return value;
}

}  // namespace

std::int64_t WriteTable(const engine::Table& table, std::ostream& out) {
  const std::streampos begin = out.tellp();
  out.write(kMagic, sizeof(kMagic));
  WriteRaw<std::uint32_t>(out,
                          static_cast<std::uint32_t>(table.num_columns()));
  WriteRaw<std::uint64_t>(out, static_cast<std::uint64_t>(table.num_rows()));
  for (std::size_t c = 0; c < table.num_columns(); ++c) {
    const engine::Field& field = table.schema().field(c);
    WriteRaw<std::uint32_t>(out,
                            static_cast<std::uint32_t>(field.name.size()));
    out.write(field.name.data(),
              static_cast<std::streamsize>(field.name.size()));
    WriteRaw<std::uint8_t>(out, static_cast<std::uint8_t>(field.type));
    const engine::Column& col = table.column(c);
    switch (field.type) {
      case engine::DataType::kInt64:
        out.write(reinterpret_cast<const char*>(col.ints().data()),
                  static_cast<std::streamsize>(col.ints().size() *
                                               sizeof(std::int64_t)));
        break;
      case engine::DataType::kFloat64:
        out.write(reinterpret_cast<const char*>(col.doubles().data()),
                  static_cast<std::streamsize>(col.doubles().size() *
                                               sizeof(double)));
        break;
      case engine::DataType::kString:
        for (const std::string& s : col.strings()) {
          WriteRaw<std::uint32_t>(out, static_cast<std::uint32_t>(s.size()));
          out.write(s.data(), static_cast<std::streamsize>(s.size()));
        }
        break;
    }
  }
  if (!out) throw std::runtime_error("SCT1: write failure");
  return static_cast<std::int64_t>(out.tellp() - begin);
}

engine::Table ReadTable(std::istream& in) {
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("SCT1: bad magic");
  }
  const std::uint32_t num_cols = ReadRaw<std::uint32_t>(in);
  const std::uint64_t num_rows = ReadRaw<std::uint64_t>(in);
  std::vector<engine::Field> fields;
  std::vector<engine::Column> columns;
  fields.reserve(num_cols);
  columns.reserve(num_cols);
  for (std::uint32_t c = 0; c < num_cols; ++c) {
    const std::uint32_t name_len = ReadRaw<std::uint32_t>(in);
    std::string name(name_len, '\0');
    in.read(name.data(), name_len);
    const auto type =
        static_cast<engine::DataType>(ReadRaw<std::uint8_t>(in));
    switch (type) {
      case engine::DataType::kInt64: {
        std::vector<std::int64_t> values(num_rows);
        in.read(reinterpret_cast<char*>(values.data()),
                static_cast<std::streamsize>(num_rows *
                                             sizeof(std::int64_t)));
        columns.push_back(engine::Column::FromInts(std::move(values)));
        break;
      }
      case engine::DataType::kFloat64: {
        std::vector<double> values(num_rows);
        in.read(reinterpret_cast<char*>(values.data()),
                static_cast<std::streamsize>(num_rows * sizeof(double)));
        columns.push_back(engine::Column::FromDoubles(std::move(values)));
        break;
      }
      case engine::DataType::kString: {
        std::vector<std::string> values;
        values.reserve(num_rows);
        for (std::uint64_t r = 0; r < num_rows; ++r) {
          const std::uint32_t len = ReadRaw<std::uint32_t>(in);
          std::string s(len, '\0');
          in.read(s.data(), len);
          values.push_back(std::move(s));
        }
        columns.push_back(engine::Column::FromStrings(std::move(values)));
        break;
      }
      default:
        throw std::runtime_error("SCT1: bad column type");
    }
    if (!in) throw std::runtime_error("SCT1: truncated column data");
    fields.push_back(engine::Field{std::move(name), type});
  }
  return engine::Table(engine::Schema(std::move(fields)),
                       std::move(columns));
}

std::int64_t SerializedSize(const engine::Table& table) {
  std::int64_t total = 4 + 4 + 8;
  for (std::size_t c = 0; c < table.num_columns(); ++c) {
    const engine::Field& field = table.schema().field(c);
    total += 4 + static_cast<std::int64_t>(field.name.size()) + 1;
    const engine::Column& col = table.column(c);
    switch (field.type) {
      case engine::DataType::kInt64:
        total += static_cast<std::int64_t>(col.ints().size() * 8);
        break;
      case engine::DataType::kFloat64:
        total += static_cast<std::int64_t>(col.doubles().size() * 8);
        break;
      case engine::DataType::kString:
        for (const std::string& s : col.strings()) {
          total += 4 + static_cast<std::int64_t>(s.size());
        }
        break;
    }
  }
  return total;
}

std::int64_t WriteTableFile(const engine::Table& table,
                            const std::string& path) {
  // Write-then-rename so the destination is atomically either the old
  // complete table or the new one: a write that dies mid-stream (fault
  // injection, full disk, crash) must never leave a partial or truncated
  // MV where readers — or a retry — expect a whole file.
  const std::string tmp = path + ".tmp";
  std::int64_t bytes = 0;
  try {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("cannot open for write: " + path);
    bytes = WriteTable(table, out);
    out.flush();
    if (!out) throw std::runtime_error("write failed: " + path);
  } catch (...) {
    std::error_code ec;
    std::filesystem::remove(tmp, ec);
    throw;
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    throw std::runtime_error("cannot commit write: " + path);
  }
  return bytes;
}

engine::Table ReadTableFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open for read: " + path);
  return ReadTable(in);
}

}  // namespace sc::storage
